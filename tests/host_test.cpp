//===- tests/host_test.cpp - Execution host tests ---------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "host/Host.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

CompiledProgram compileErased(const std::string &Src) {
  LowerOptions Opts;
  Opts.EraseGhosts = true;
  CompileResult R = compileString(Src, Opts);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

const char *Counter = R"(
event Inc(int);
event Get;
event Reply(int);
main machine CounterM {
  var Total: int;
  var Client: id;
  state S {
    entry { Total = 0; }
    on Inc do Add;
    on Get do Answer;
  }
  action Add { Total = Total + arg; }
  action Answer { send(Client, Reply, Total); }
}
machine Probe {
  var Seen: int;
  state S {
    entry { }
    on Reply do Note;
  }
  action Note { Seen = arg; }
}
)";

TEST(Host, CreateUnknownMachineFails) {
  CompiledProgram Prog = compileErased(Counter);
  Host H(Prog);
  EXPECT_EQ(H.createMachine("Nonexistent"), -1);
  EXPECT_EQ(H.lastHostError(), HostError::UnknownMachine);
}

TEST(Host, AddUnknownEventFails) {
  CompiledProgram Prog = compileErased(Counter);
  Host H(Prog);
  int32_t Id = H.createMachine("CounterM");
  EXPECT_EQ(H.lastHostError(), HostError::None);
  EXPECT_FALSE(H.addEvent(Id, "Nonexistent"));
  EXPECT_EQ(H.lastHostError(), HostError::UnknownEvent);
}

TEST(Host, LastHostErrorClassifiesApiMisuse) {
  CompiledProgram Prog = compileErased(R"(
event Die;
event Nop;
main machine M {
  state S {
    entry { }
    on Nop do Ignore;
    on Die do Kill;
  }
  action Ignore { skip; }
  action Kill { delete; }
}
)");
  Host H(Prog);
  int32_t Id = H.createMachine("M");
  ASSERT_GE(Id, 0);

  // Out-of-range target: never was a machine.
  EXPECT_FALSE(H.addEvent(99, "Nop"));
  EXPECT_EQ(H.lastHostError(), HostError::UnknownMachine);

  // A successful call resets the classification.
  EXPECT_TRUE(H.addEvent(Id, "Nop"));
  EXPECT_EQ(H.lastHostError(), HostError::None);

  // The machine deletes itself; further sends hit a dead target. This
  // is API misuse by the caller ("OS"), distinct from the program-level
  // send-to-deleted error a P machine would raise.
  EXPECT_TRUE(H.addEvent(Id, "Die"));
  EXPECT_FALSE(H.addEvent(Id, "Nop"));
  EXPECT_EQ(H.lastHostError(), HostError::DeadTarget);
  EXPECT_FALSE(H.hasError());

  // The names are stable identifiers for logs/tests.
  EXPECT_STREQ(hostErrorName(HostError::None), "none");
  EXPECT_STREQ(hostErrorName(HostError::UnknownMachine), "unknown-machine");
  EXPECT_STREQ(hostErrorName(HostError::UnknownEvent), "unknown-event");
  EXPECT_STREQ(hostErrorName(HostError::DeadTarget), "dead-target");
}

TEST(Host, EventsDriveTheMachine) {
  CompiledProgram Prog = compileErased(Counter);
  Host H(Prog);
  int32_t Id = H.createMachine("CounterM");
  ASSERT_GE(Id, 0);
  EXPECT_EQ(H.readVar(Id, "Total"), Value::integer(0));
  ASSERT_TRUE(H.addEvent(Id, "Inc", Value::integer(5)));
  ASSERT_TRUE(H.addEvent(Id, "Inc", Value::integer(7)));
  EXPECT_EQ(H.readVar(Id, "Total"), Value::integer(12));
  EXPECT_EQ(H.stats().EventsDelivered, 2u);
  EXPECT_EQ(H.stats().MachinesCreated, 1u);
}

TEST(Host, InitializersWireMachinesTogether) {
  CompiledProgram Prog = compileErased(Counter);
  Host H(Prog);
  int32_t Probe = H.createMachine("Probe");
  int32_t Ctr = H.createMachine(
      "CounterM", {{"Client", Value::machine(Probe)}});
  ASSERT_TRUE(H.addEvent(Ctr, "Inc", Value::integer(3)));
  ASSERT_TRUE(H.addEvent(Ctr, "Get"));
  // The reply flowed Counter -> Probe within the same pump.
  EXPECT_EQ(H.readVar(Probe, "Seen"), Value::integer(3));
}

TEST(Host, ErrorsSurfaceThroughTheApi) {
  CompiledProgram Prog = compileErased(R"(
event Boom;
main machine M {
  state S {
    entry { }
    on Boom do Blow;
  }
  action Blow { assert(false); }
}
)");
  Host H(Prog);
  int32_t Id = H.createMachine("M");
  EXPECT_FALSE(H.addEvent(Id, "Boom"));
  EXPECT_TRUE(H.hasError());
  EXPECT_EQ(H.error(), ErrorKind::AssertFailed);
}

TEST(Host, ForeignFunctionsAndContexts) {
  CompiledProgram Prog = compileErased(R"(
event Probe;
main machine M {
  var X: int;
  foreign fun ReadSensor(): int;
  state S {
    entry { }
    on Probe do Sample;
  }
  action Sample { X = ReadSensor(); }
}
)");
  Host H(Prog);
  // The foreign function reads the per-machine external memory, as the
  // paper's foreign code does through SMGetContext.
  int Sensor = 451;
  H.registerForeign("M", "ReadSensor",
                    [&H](Config &, int32_t Self,
                         const std::vector<Value> &) {
                      int *Mem = static_cast<int *>(H.getContext(Self));
                      return Value::integer(Mem ? *Mem : -1);
                    });
  int32_t Id = H.createMachine("M");
  H.setContext(Id, &Sensor);
  ASSERT_TRUE(H.addEvent(Id, "Probe"));
  EXPECT_EQ(H.readVar(Id, "X"), Value::integer(451));
}

TEST(Host, RunToCompletionDrainsCrossMachineChatter) {
  CompiledProgram Prog = compileErased(R"(
event Ball(int);
main machine Player {
  var Peer: id;
  var Count: int;
  state S {
    entry { Count = 0; }
    on Ball do Hit;
  }
  action Hit {
    Count = arg;
    if (arg < 10) {
      send(Peer, Ball, arg + 1);
    }
  }
}
)");
  Host H(Prog);
  int32_t A = H.createMachine("Player");
  int32_t B = H.createMachine("Player", {{"Peer", Value::machine(A)}});
  // Close the cycle: A's peer is B. Initializers cannot be circular, so
  // wire A by creating it second in a fresh host.
  (void)B;
  Host H2(Prog);
  int32_t X = H2.createMachine("Player");
  int32_t Y = H2.createMachine("Player", {{"Peer", Value::machine(X)}});
  // X has no peer; serve the rally at Y so the last hit (arg >= 10)
  // lands on a machine that stops rallying.
  ASSERT_TRUE(H2.addEvent(Y, "Ball", Value::integer(9)));
  // Y.Count = 9, rallies 10 to X; X.Count = 10, stops.
  EXPECT_EQ(H2.readVar(Y, "Count"), Value::integer(9));
  EXPECT_EQ(H2.readVar(X, "Count"), Value::integer(10));
  EXPECT_EQ(H2.stats().EventsDelivered, 1u);
  EXPECT_FALSE(H2.hasError());
}

} // namespace
