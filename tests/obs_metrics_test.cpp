//===- tests/obs_metrics_test.cpp - Metrics registry tests ------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace p::obs;

namespace {

TEST(MetricsTest, CounterIsMonotonic) {
  Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.inc(41);
  EXPECT_EQ(C.value(), 42u);
}

TEST(MetricsTest, GaugeIsLastWriteWins) {
  Gauge G;
  G.set(3.5);
  G.set(-1.25);
  EXPECT_DOUBLE_EQ(G.value(), -1.25);
}

TEST(MetricsTest, HistogramBucketsAndSum) {
  Histogram H({1, 10, 100});
  H.observe(0.5);  // le=1
  H.observe(5);    // le=10
  H.observe(50);   // le=100
  H.observe(500);  // +Inf
  H.observe(10);   // le=10 (bounds are inclusive upper edges)
  EXPECT_EQ(H.count(), 5u);
  EXPECT_DOUBLE_EQ(H.sum(), 565.5);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(1), 2u);
  EXPECT_EQ(H.bucketCount(2), 1u);
  EXPECT_EQ(H.bucketCount(3), 1u); // +Inf
}

TEST(MetricsTest, ExponentialBounds) {
  std::vector<double> B = exponentialBounds(1, 2, 4);
  ASSERT_EQ(B.size(), 4u);
  EXPECT_DOUBLE_EQ(B[0], 1);
  EXPECT_DOUBLE_EQ(B[1], 2);
  EXPECT_DOUBLE_EQ(B[2], 4);
  EXPECT_DOUBLE_EQ(B[3], 8);
}

TEST(MetricsTest, RegistryLookupIsIdempotent) {
  MetricsRegistry R;
  Counter &A = R.counter("x_total", "help one");
  Counter &B = R.counter("x_total", "help two (ignored)");
  EXPECT_EQ(&A, &B);
  A.inc(7);
  EXPECT_EQ(R.counter("x_total").value(), 7u);

  EXPECT_EQ(R.findCounter("x_total"), &A);
  EXPECT_EQ(R.findCounter("missing"), nullptr);
  EXPECT_EQ(R.findGauge("x_total"), nullptr); // Wrong type.
}

TEST(MetricsTest, PrometheusRenderFormat) {
  MetricsRegistry R;
  R.counter("p_nodes_total", "Nodes expanded").inc(12);
  R.gauge("p_live", "Live machines").set(3);
  Histogram &H = R.histogram("p_depth", {1, 2}, "Depth distribution");
  H.observe(1);
  H.observe(5);

  std::string Text = R.renderPrometheus();
  EXPECT_NE(Text.find("# HELP p_nodes_total Nodes expanded"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("# TYPE p_nodes_total counter"), std::string::npos);
  EXPECT_NE(Text.find("p_nodes_total 12"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE p_live gauge"), std::string::npos);
  EXPECT_NE(Text.find("p_live 3"), std::string::npos);
  // Histogram buckets are cumulative and end at +Inf == count.
  EXPECT_NE(Text.find("p_depth_bucket{le=\"1\"} 1"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("p_depth_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(Text.find("p_depth_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(Text.find("p_depth_count 2"), std::string::npos);
  EXPECT_NE(Text.find("p_depth_sum 6"), std::string::npos);
}

TEST(MetricsTest, ConcurrentIncrementsDoNotLose) {
  MetricsRegistry R;
  Counter &C = R.counter("c_total");
  Histogram &H = R.histogram("h", exponentialBounds(1, 2, 8));
  constexpr int Threads = 4, PerThread = 10000;
  std::vector<std::thread> Ts;
  for (int T = 0; T != Threads; ++T)
    Ts.emplace_back([&C, &H] {
      for (int I = 0; I != PerThread; ++I) {
        C.inc();
        H.observe(static_cast<double>(I % 100));
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(C.value(), static_cast<uint64_t>(Threads * PerThread));
  EXPECT_EQ(H.count(), static_cast<uint64_t>(Threads * PerThread));
}

} // namespace
