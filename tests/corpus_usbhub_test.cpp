//===- tests/corpus_usbhub_test.cpp - USB hub model verification -----------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

CompiledProgram compileOrDie(const std::string &Src) {
  CompileResult R = compileString(Src);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

std::string traceStr(const CheckResult &R) {
  std::string T;
  for (const auto &L : R.Trace)
    T += L + "\n";
  return T;
}

TEST(UsbHubCorpus, OnePortVerifiesCleanAtLowBounds) {
  CompiledProgram Prog = compileOrDie(corpus::usbHub(1));
  for (int D = 0; D <= 1; ++D) {
    CheckOptions Opts;
    Opts.DelayBound = D;
    CheckResult R = check(Prog, Opts);
    EXPECT_FALSE(R.ErrorFound)
        << "d=" << D << " " << errorKindName(R.Error) << ": "
        << R.ErrorMessage << "\n"
        << traceStr(R);
    EXPECT_TRUE(R.Stats.Exhausted);
  }
}

TEST(UsbHubCorpus, TwoPortsVerifyCleanAtZero) {
  CompiledProgram Prog = compileOrDie(corpus::usbHub(2));
  CheckOptions Opts;
  Opts.DelayBound = 0;
  CheckResult R = check(Prog, Opts);
  EXPECT_FALSE(R.ErrorFound)
      << errorKindName(R.Error) << ": " << R.ErrorMessage << "\n"
      << traceStr(R);
}

TEST(UsbHubCorpus, TwoPortsBoundedSweepFindsNoError) {
  CompiledProgram Prog = compileOrDie(corpus::usbHub(2));
  CheckOptions Opts;
  Opts.DelayBound = 2;
  Opts.MaxNodes = 200000; // Bounded exploration; a smoke sweep.
  CheckResult R = check(Prog, Opts);
  EXPECT_FALSE(R.ErrorFound)
      << errorKindName(R.Error) << ": " << R.ErrorMessage << "\n"
      << traceStr(R);
}

TEST(UsbHubCorpus, SurpriseRemoveBugIsCaught) {
  CompiledProgram Prog = compileOrDie(
      corpus::usbHub(1, corpus::UsbHubBug::SurpriseRemoveDuringReset));
  bool Found = false;
  for (int D = 0; D <= 2 && !Found; ++D) {
    CheckOptions Opts;
    Opts.DelayBound = D;
    Opts.MaxNodes = 500000;
    CheckResult R = check(Prog, Opts);
    if (R.ErrorFound) {
      EXPECT_EQ(R.Error, ErrorKind::UnhandledEvent) << R.ErrorMessage;
      Found = true;
    }
  }
  EXPECT_TRUE(Found) << "paper: bugs found within delay bound 2";
}

} // namespace
