//===- tests/codegen_test.cpp - C backend tests -----------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Structure checks on the emitted C, plus full compile-and-run tests:
// the generated elevator driver is built with the system C compiler
// against the portable C runtime and driven through a scripted session
// (the role the KMDF interface code plays in the paper).
//
//===----------------------------------------------------------------------===//

#include "codegen/CCodeGen.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace p;

namespace {

Program parseOrDie(const std::string &Src, DiagnosticEngine &Diags) {
  Program Prog = parseAndAnalyze(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Prog;
}

void writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path);
  ASSERT_TRUE(Out.good()) << "cannot write " << Path;
  Out << Contents;
}

std::string runCommand(const std::string &Cmd, int &ExitCode) {
  std::string Full = Cmd + " 2>&1";
  FILE *Pipe = popen(Full.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  std::string Output;
  char Buf[512];
  while (Pipe && fgets(Buf, sizeof(Buf), Pipe))
    Output += Buf;
  ExitCode = Pipe ? pclose(Pipe) : -1;
  return Output;
}

TEST(Codegen, EmitsTablesAndEnums) {
  DiagnosticEngine Diags;
  Program Prog = parseOrDie(corpus::elevator(), Diags);
  CodegenOptions Opts;
  Opts.BaseName = "elev";
  CodegenResult R = generateC(Prog, Opts);
  ASSERT_TRUE(R.ok()) << R.Errors.front();

  // Header: event and machine enumerations (Section 4's generated
  // enumerations).
  EXPECT_NE(R.Header.find("PEV_OpenDoor"), std::string::npos);
  EXPECT_NE(R.Header.find("PMT_Elevator"), std::string::npos);
  EXPECT_NE(R.Header.find("PVAR_Elevator_TimerV"), std::string::npos);
  EXPECT_NE(R.Header.find("elev_program"), std::string::npos);
  // Ghost main: no runtime main machine.
  EXPECT_NE(R.Header.find("#define elev_MAIN_MACHINE -1"),
            std::string::npos);

  // Source: state tables and entry functions for the real machine...
  EXPECT_NE(R.Source.find("p_Elevator_states"), std::string::npos);
  EXPECT_NE(R.Source.find("p_Elevator_DoorOpening_entry"),
            std::string::npos);
  // ...but no bodies for ghost machines.
  EXPECT_EQ(R.Source.find("p_User_Loop_entry"), std::string::npos);
  // Ghost sends are erased: the elevator's real bodies never call
  // prt_send (every target is a ghost machine).
  EXPECT_EQ(R.Source.find("prt_send"), std::string::npos);
}

TEST(Codegen, RejectsNonTailCallStatement) {
  const char *Src = R"(
event unit;
main machine M {
  var X: int;
  state A {
    entry {
      call B;
      X = 1;
    }
  }
  state B { entry { } }
}
)";
  DiagnosticEngine Diags;
  Program Prog = parseOrDie(Src, Diags);
  CodegenOptions Opts;
  CodegenResult R = generateC(Prog, Opts);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors.front().find("tail position"), std::string::npos);
}

TEST(Codegen, GeneratedElevatorCompilesAndRuns) {
  DiagnosticEngine Diags;
  Program Prog = parseOrDie(corpus::elevator(), Diags);
  CodegenOptions Opts;
  Opts.BaseName = "elev";
  CodegenResult R = generateC(Prog, Opts);
  ASSERT_TRUE(R.ok()) << R.Errors.front();

  std::string Dir = ::testing::TempDir() + "/pgen_elev";
  int Exit = 0;
  runCommand("mkdir -p " + Dir, Exit);
  writeFile(Dir + "/elev.h", R.Header);
  writeFile(Dir + "/elev.c", R.Source);

  // The host main: plays the role of the KMDF interface code and of the
  // erased environment (door and timer hardware).
  const char *Main = R"(
#include "elev.h"
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

static void on_error(PrtRuntime *rt, int mid, const char *kind,
                     const char *msg) {
  (void)rt;
  fprintf(stderr, "error in machine %d: %s: %s\n", mid, kind, msg);
  exit(2);
}

static void expect_state(PrtRuntime *rt, int id, const char *want) {
  const char *got = PrtCurrentStateName(rt, id);
  printf("state: %s\n", got);
  if (strcmp(got, want) != 0) {
    fprintf(stderr, "expected state %s, got %s\n", want, got);
    exit(3);
  }
}

int main(void) {
  PrtRuntime *rt = PrtCreateRuntime(&elev_program, on_error);
  int id = PrtCreateMachine(rt, PMT_Elevator, 0, 0, 0);
  expect_state(rt, id, "DoorClosed");

  PrtAddEvent(rt, id, PEV_OpenDoor, prt_null());
  expect_state(rt, id, "DoorOpening");

  PrtAddEvent(rt, id, PEV_DoorOpened, prt_null());
  expect_state(rt, id, "DoorOpened");

  PrtAddEvent(rt, id, PEV_TimerFired, prt_null());
  expect_state(rt, id, "DoorOpenedOkToClose");

  /* Close request: the elevator calls into StoppingTimer; the timer
     "hardware" answers with OperationSuccess, the subroutine returns,
     and the close command goes out. */
  PrtAddEvent(rt, id, PEV_CloseDoor, prt_null());
  expect_state(rt, id, "StoppingTimer");
  PrtAddEvent(rt, id, PEV_OperationSuccess, prt_null());
  expect_state(rt, id, "DoorClosing");
  PrtAddEvent(rt, id, PEV_DoorClosed, prt_null());
  expect_state(rt, id, "DoorClosed");

  /* Deferral check: CloseDoor while opening is deferred, not dropped. */
  PrtAddEvent(rt, id, PEV_OpenDoor, prt_null());
  expect_state(rt, id, "DoorOpening");
  PrtAddEvent(rt, id, PEV_CloseDoor, prt_null());
  expect_state(rt, id, "DoorOpening");
  PrtAddEvent(rt, id, PEV_DoorOpened, prt_null());
  expect_state(rt, id, "DoorOpened");

  printf("ok\n");
  PrtDestroyRuntime(rt);
  return 0;
}
)";
  writeFile(Dir + "/main.c", Main);

  std::string Compile = "cc -std=c99 -Wall -Wextra -Werror -I" + Dir +
                        " -I" + cRuntimeDir() + " " + Dir + "/elev.c " +
                        Dir + "/main.c " + cRuntimeDir() +
                        "/prt_runtime.c -o " + Dir + "/elev_driver";
  std::string Output = runCommand(Compile, Exit);
  ASSERT_EQ(Exit, 0) << "C compilation failed:\n" << Output;

  Output = runCommand(Dir + "/elev_driver", Exit);
  EXPECT_EQ(Exit, 0) << Output;
  EXPECT_NE(Output.find("ok"), std::string::npos) << Output;
}

TEST(Codegen, GeneratedSwitchLedCompiles) {
  DiagnosticEngine Diags;
  Program Prog = parseOrDie(corpus::switchLed(), Diags);
  CodegenOptions Opts;
  Opts.BaseName = "swled";
  CodegenResult R = generateC(Prog, Opts);
  ASSERT_TRUE(R.ok()) << R.Errors.front();

  std::string Dir = ::testing::TempDir() + "/pgen_swled";
  int Exit = 0;
  runCommand("mkdir -p " + Dir, Exit);
  writeFile(Dir + "/swled.h", R.Header);
  writeFile(Dir + "/swled.c", R.Source);
  std::string Compile = "cc -std=c99 -Wall -Wextra -Werror -c -I" + Dir +
                        " -I" + cRuntimeDir() + " " + Dir + "/swled.c -o " +
                        Dir + "/swled.o";
  std::string Output = runCommand(Compile, Exit);
  EXPECT_EQ(Exit, 0) << "C compilation failed:\n" << Output;
}

} // namespace
