//===- tests/checkpoint_test.cpp - Crash-safe exploration tests -------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Checkpoint/resume differentials: a search killed mid-flight (MaxNodes
// cut or cooperative interrupt) and resumed from its final checkpoint
// must report results bit-identical to an uninterrupted run — across
// every VisitedMode, with and without reductions, serial and parallel,
// and even when the worker count changes across the restart. Plus
// corruption-injection units (bit flip, truncation, version skew,
// option mismatch): a damaged checkpoint is rejected with a clear
// error, never silently reused — and never silently restarted-over.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/Checkpoint.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

using namespace p;

namespace {

CompiledProgram compile(const std::string &Src) {
  CompileResult R = compileString(Src);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

/// A per-test scratch path, removed on destruction (plus the spill
/// sibling the engine may create next to it).
struct TempCkpt {
  std::string Path;
  explicit TempCkpt(const std::string &Tag) {
    const ::testing::TestInfo *TI =
        ::testing::UnitTest::GetInstance()->current_test_info();
    Path = ::testing::TempDir() + "p_ckpt_" + TI->test_suite_name() + "_" +
           TI->name() + "_" + Tag + ".ckpt";
    std::remove(Path.c_str());
  }
  ~TempCkpt() {
    std::remove(Path.c_str());
    std::remove((Path + ".spill").c_str());
  }
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void dump(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

CheckOptions baseOpts(int Workers, VisitedMode Mode, Reduction Reduce) {
  CheckOptions Opts;
  Opts.DelayBound = 2;
  Opts.Workers = Workers;
  Opts.StopOnFirstError = false;
  Opts.CollectTerminals = true;
  Opts.Visited = Mode;
  // Keep Compact-mode checkpoints small: the image embeds the whole
  // slot array, so the default 64 MiB cap would dominate the test.
  if (Mode == VisitedMode::Compact)
    Opts.VisitedCapBytes = 1u << 20;
  Opts.Reduce = Reduce;
  return Opts;
}

/// The determinism contract's bit-identical slice, which resume must
/// preserve: DistinctStates, Terminals, TerminalHashes-as-a-set.
void expectIdentical(const CheckResult &Full, const CheckResult &Resumed,
                     const std::string &What) {
  ASSERT_TRUE(Resumed.ResumeError.empty()) << What << ": "
                                           << Resumed.ResumeError;
  ASSERT_TRUE(Full.Stats.Exhausted) << What;
  ASSERT_TRUE(Resumed.Stats.Exhausted) << What;
  EXPECT_EQ(Full.Stats.DistinctStates, Resumed.Stats.DistinctStates) << What;
  EXPECT_EQ(Full.Stats.Terminals, Resumed.Stats.Terminals) << What;
  std::set<uint64_t> A(Full.TerminalHashes.begin(),
                       Full.TerminalHashes.end());
  std::set<uint64_t> B(Resumed.TerminalHashes.begin(),
                       Resumed.TerminalHashes.end());
  EXPECT_EQ(A, B) << What;
}

/// Runs the full differential for one configuration: uninterrupted
/// baseline, then a MaxNodes-cut run writing a final checkpoint, then a
/// resume with the cap lifted (the fingerprint deliberately excludes
/// MaxNodes and Workers so exactly this works).
void killAndResume(const CompiledProgram &Prog, VisitedMode Mode,
                   Reduction Reduce, int CutWorkers, int ResumeWorkers,
                   const std::string &What) {
  CheckOptions Full = baseOpts(ResumeWorkers, Mode, Reduce);
  CheckResult Baseline = check(Prog, Full);
  ASSERT_TRUE(Baseline.Stats.Exhausted) << What;
  ASSERT_GT(Baseline.Stats.NodesExplored, 30u) << What;

  TempCkpt C("kr");
  CheckOptions Cut = baseOpts(CutWorkers, Mode, Reduce);
  Cut.MaxNodes = Baseline.Stats.NodesExplored / 3;
  Cut.CheckpointPath = C.Path;
  CheckResult Partial = check(Prog, Cut);
  ASSERT_TRUE(Partial.ResumeError.empty()) << Partial.ResumeError;
  EXPECT_FALSE(Partial.Stats.Exhausted) << What;
  EXPECT_GE(Partial.Stats.CheckpointsWritten, 1u) << What;

  CheckOptions Res = baseOpts(ResumeWorkers, Mode, Reduce);
  Res.CheckpointPath = C.Path;
  Res.Resume = true;
  CheckResult Resumed = check(Prog, Res);
  EXPECT_TRUE(Resumed.Stats.Resumed) << What;
  expectIdentical(Baseline, Resumed, What);
}

const char *modeName(VisitedMode M) {
  switch (M) {
  case VisitedMode::Exact:
    return "exact";
  case VisitedMode::Fingerprint:
    return "fingerprint";
  case VisitedMode::Compact:
    return "compact";
  }
  return "?";
}

TEST(Checkpoint, KillAndResumeAcrossVisitedModes) {
  CompiledProgram Prog = compile(corpus::german(1));
  for (VisitedMode Mode : {VisitedMode::Exact, VisitedMode::Fingerprint,
                           VisitedMode::Compact})
    killAndResume(Prog, Mode, Reduction::Off, 1, 1,
                  std::string("german1 mode=") + modeName(Mode));
}

TEST(Checkpoint, KillAndResumeUnderReductions) {
  CompiledProgram Prog = compile(corpus::german(1));
  for (Reduction R :
       {Reduction::Sleep, Reduction::Symmetry, Reduction::Both})
    killAndResume(Prog, VisitedMode::Fingerprint, R, 1, 1,
                  std::string("german1 reduce=") + reductionName(R));
}

TEST(Checkpoint, KillAndResumeAcrossWorkerCounts) {
  CompiledProgram Prog = compile(corpus::elevator());
  // Checkpoint under one worker count, resume under another, in both
  // directions: the fingerprint excludes Workers by design.
  killAndResume(Prog, VisitedMode::Fingerprint, Reduction::Off, 1, 4,
                "elevator cut@1 resume@4");
  killAndResume(Prog, VisitedMode::Fingerprint, Reduction::Off, 4, 1,
                "elevator cut@4 resume@1");
}

TEST(Checkpoint, ResumingCompletedRunReproducesFinalStats) {
  CompiledProgram Prog = compile(corpus::elevator());
  TempCkpt C("done");
  CheckOptions Opts = baseOpts(1, VisitedMode::Fingerprint, Reduction::Off);
  Opts.CheckpointPath = C.Path;
  CheckResult Full = check(Prog, Opts);
  ASSERT_TRUE(Full.Stats.Exhausted);

  Opts.Resume = true;
  CheckResult Again = check(Prog, Opts);
  EXPECT_TRUE(Again.Stats.Resumed);
  expectIdentical(Full, Again, "completed-resume");
  // Nothing was pending, so the resumed run explored nothing new.
  EXPECT_EQ(Again.Stats.NodesExplored, Full.Stats.NodesExplored);
}

TEST(Checkpoint, InterruptFlagStopsSearchAndCheckpointCompletes) {
  CompiledProgram Prog = compile(corpus::german(1));
  CheckOptions Base = baseOpts(1, VisitedMode::Fingerprint, Reduction::Off);
  CheckResult Baseline = check(Prog, Base);

  // A pre-raised flag is the degenerate interrupt: the run must stop at
  // the first scheduling point, report Interrupted, and still leave a
  // resumable final checkpoint behind.
  TempCkpt C("intr");
  std::atomic<bool> Flag{true};
  CheckOptions Cut = Base;
  Cut.CheckpointPath = C.Path;
  Cut.InterruptFlag = &Flag;
  CheckResult Partial = check(Prog, Cut);
  EXPECT_TRUE(Partial.Stats.Interrupted);
  EXPECT_FALSE(Partial.Stats.Exhausted);
  EXPECT_LT(Partial.Stats.NodesExplored, Baseline.Stats.NodesExplored);

  CheckOptions Res = Base;
  Res.CheckpointPath = C.Path;
  Res.Resume = true;
  CheckResult Resumed = check(Prog, Res);
  EXPECT_FALSE(Resumed.Stats.Interrupted);
  expectIdentical(Baseline, Resumed, "interrupt-resume");
}

TEST(Checkpoint, SpilledFrontierMatchesInMemory) {
  // german(1)'s DFS frontier never reaches the spill floor (the store
  // keeps a minimum resident working set); german(2) at d=1 spills
  // thousands of nodes in well under a second.
  CompiledProgram Prog = compile(corpus::german(2));
  CheckOptions Base = baseOpts(1, VisitedMode::Fingerprint, Reduction::Off);
  Base.DelayBound = 1;
  CheckResult Baseline = check(Prog, Base);

  TempCkpt C("spill");
  CheckOptions Spill = Base;
  Spill.CheckpointPath = C.Path; // Spill file lands next to it.
  // A 1-byte cap means "spill whenever the resident floor allows": the
  // engine keeps a minimum working set in memory and pushes every cold
  // half-frontier to disk.
  Spill.FrontierMemLimitBytes = 1;
  CheckResult Spilled = check(Prog, Spill);
  ASSERT_TRUE(Spilled.ResumeError.empty());
  EXPECT_GT(Spilled.Stats.FrontierSpilledNodes, 0u);
  EXPECT_GT(Spilled.Stats.FrontierSpillBytes, 0u);
  expectIdentical(Baseline, Spilled, "spill-differential");
}

TEST(Checkpoint, KillAndResumeWithSpillActive) {
  CompiledProgram Prog = compile(corpus::german(2));
  CheckOptions Base = baseOpts(1, VisitedMode::Fingerprint, Reduction::Off);
  Base.DelayBound = 1;
  CheckResult Baseline = check(Prog, Base);

  // Cut mid-flight while cold frontier segments sit on disk: the final
  // checkpoint must embed the spilled nodes too (snapshot()), or the
  // resume comes up short.
  TempCkpt C("spillkr");
  CheckOptions Cut = Base;
  Cut.CheckpointPath = C.Path;
  Cut.FrontierMemLimitBytes = 1;
  Cut.MaxNodes = Baseline.Stats.NodesExplored / 3;
  CheckResult Partial = check(Prog, Cut);
  ASSERT_TRUE(Partial.ResumeError.empty());
  EXPECT_FALSE(Partial.Stats.Exhausted);
  EXPECT_GT(Partial.Stats.FrontierSpilledNodes, 0u);

  CheckOptions Res = Base;
  Res.CheckpointPath = C.Path;
  Res.Resume = true;
  CheckResult Resumed = check(Prog, Res);
  expectIdentical(Baseline, Resumed, "spill-kill-resume");
}

//===----------------------------------------------------------------------===//
// Corruption injection: damaged checkpoints are rejected, loudly.
//===----------------------------------------------------------------------===//

/// Writes a real mid-flight checkpoint for the corruption tests.
std::string makeCheckpoint(const CompiledProgram &Prog,
                           const std::string &Path) {
  CheckOptions Opts = baseOpts(1, VisitedMode::Fingerprint, Reduction::Off);
  Opts.MaxNodes = 50;
  Opts.CheckpointPath = Path;
  CheckResult R = check(Prog, Opts);
  EXPECT_TRUE(R.ResumeError.empty());
  EXPECT_GE(R.Stats.CheckpointsWritten, 1u);
  return slurp(Path);
}

CheckResult tryResume(const CompiledProgram &Prog, const std::string &Path) {
  CheckOptions Opts = baseOpts(1, VisitedMode::Fingerprint, Reduction::Off);
  Opts.CheckpointPath = Path;
  Opts.Resume = true;
  return check(Prog, Opts);
}

TEST(CheckpointCorruption, BitFlipIsRejectedByCrc) {
  CompiledProgram Prog = compile(corpus::german(1));
  TempCkpt C("flip");
  std::string Bytes = makeCheckpoint(Prog, C.Path);
  ASSERT_GT(Bytes.size(), 64u);
  Bytes[Bytes.size() / 2] ^= 0x40;
  dump(C.Path, Bytes);
  CheckResult R = tryResume(Prog, C.Path);
  ASSERT_FALSE(R.ResumeError.empty());
  EXPECT_NE(R.ResumeError.find("CRC"), std::string::npos) << R.ResumeError;
  EXPECT_EQ(R.Stats.NodesExplored, 0u); // Refused — no silent restart.
}

TEST(CheckpointCorruption, TruncationIsRejected) {
  CompiledProgram Prog = compile(corpus::german(1));
  TempCkpt C("trunc");
  std::string Bytes = makeCheckpoint(Prog, C.Path);
  dump(C.Path, Bytes.substr(0, Bytes.size() / 2));
  CheckResult R = tryResume(Prog, C.Path);
  ASSERT_FALSE(R.ResumeError.empty());
  EXPECT_EQ(R.Stats.NodesExplored, 0u);

  // Truncating into the fixed header is detected too.
  dump(C.Path, Bytes.substr(0, 10));
  CheckResult R2 = tryResume(Prog, C.Path);
  ASSERT_FALSE(R2.ResumeError.empty());
}

TEST(CheckpointCorruption, StaleFormatVersionIsRejected) {
  CompiledProgram Prog = compile(corpus::german(1));
  TempCkpt C("ver");
  std::string Bytes = makeCheckpoint(Prog, C.Path);
  ASSERT_GT(Bytes.size(), 16u);
  // Forge a future format version and re-seal the CRC, simulating a
  // file from a newer build: the load must fail on the version, not
  // misparse the payload.
  const uint32_t Forged = ckpt::FormatVersion + 7;
  for (int I = 0; I != 4; ++I)
    Bytes[8 + I] = static_cast<char>((Forged >> (8 * I)) & 0xff);
  const uint32_t Crc = ckpt::crc32(Bytes.data(), Bytes.size() - 4);
  for (int I = 0; I != 4; ++I)
    Bytes[Bytes.size() - 4 + I] = static_cast<char>((Crc >> (8 * I)) & 0xff);
  dump(C.Path, Bytes);
  CheckResult R = tryResume(Prog, C.Path);
  ASSERT_FALSE(R.ResumeError.empty());
  EXPECT_NE(R.ResumeError.find("version"), std::string::npos)
      << R.ResumeError;
}

TEST(CheckpointCorruption, OptionMismatchIsRejectedByFingerprint) {
  CompiledProgram Prog = compile(corpus::german(1));
  TempCkpt C("fp");
  makeCheckpoint(Prog, C.Path);

  // Same file, different search: the delay bound changed, so resuming
  // would silently answer a different question. Fingerprint says no.
  CheckOptions Opts = baseOpts(1, VisitedMode::Fingerprint, Reduction::Off);
  Opts.DelayBound = 1;
  Opts.CheckpointPath = C.Path;
  Opts.Resume = true;
  CheckResult R = check(Prog, Opts);
  ASSERT_FALSE(R.ResumeError.empty());
  EXPECT_EQ(R.Stats.NodesExplored, 0u);

  // A different program under the same options is refused the same way.
  CompiledProgram Other = compile(corpus::elevator());
  CheckResult R2 = tryResume(Other, C.Path);
  ASSERT_FALSE(R2.ResumeError.empty());
}

TEST(CheckpointCorruption, MissingFileAndMissingPathAreErrors) {
  CompiledProgram Prog = compile(corpus::german(1));
  CheckResult R =
      tryResume(Prog, ::testing::TempDir() + "p_ckpt_never_written.ckpt");
  ASSERT_FALSE(R.ResumeError.empty());

  CheckOptions Opts = baseOpts(1, VisitedMode::Fingerprint, Reduction::Off);
  Opts.Resume = true; // No CheckpointPath at all.
  CheckResult R2 = check(Prog, Opts);
  ASSERT_FALSE(R2.ResumeError.empty());
}

} // namespace
