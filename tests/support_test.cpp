//===- tests/support_test.cpp - Support library tests -----------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/StateHash.h"
#include "pir/Program.h"
#include "runtime/Value.h"
#include "support/Diagnostics.h"
#include "support/Hashing.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

TEST(Diagnostics, CountsAndRenders) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning(SourceLoc(1, 2), "watch out");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(3, 4), "bad");
  Diags.note(SourceLoc(), "context");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  std::string Text = Diags.str();
  EXPECT_NE(Text.find("1:2: warning: watch out"), std::string::npos);
  EXPECT_NE(Text.find("3:4: error: bad"), std::string::npos);
  EXPECT_NE(Text.find("note: context"), std::string::npos);
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(Hashing, DeterministicAndSensitive) {
  EXPECT_EQ(hashBytes("abc", 3), hashBytes("abc", 3));
  EXPECT_NE(hashBytes("abc", 3), hashBytes("abd", 3));
  EXPECT_NE(hashBytes("abc", 3), hashBytes("abc", 2));
  uint64_t H1 = hashCombine(1, 2);
  uint64_t H2 = hashCombine(2, 1);
  EXPECT_NE(H1, H2) << "hashCombine must be order-sensitive";
}

TEST(Values, ConstructorsAndEquality) {
  EXPECT_TRUE(Value::null().isNull());
  EXPECT_EQ(Value::boolean(true).asBool(), true);
  EXPECT_EQ(Value::integer(-7).asInt(), -7);
  EXPECT_EQ(Value::event(3).asEvent(), 3);
  EXPECT_EQ(Value::machine(5).asMachine(), 5);
  // Structural equality distinguishes kinds with equal payloads.
  EXPECT_NE(Value::integer(3), Value::event(3));
  EXPECT_EQ(Value::integer(3), Value::integer(3));
  EXPECT_EQ(Value::null(), Value::null());
}

TEST(Values, Rendering) {
  EXPECT_EQ(Value::null().str(), "null");
  EXPECT_EQ(Value::boolean(false).str(), "false");
  EXPECT_EQ(Value::integer(12).str(), "12");
  EXPECT_EQ(Value::machine(2).str(), "mid(2)");
}

TEST(StateHash, EqualConfigsSerializeEqually) {
  Config A;
  MachineState M;
  M.MachineIndex = 0;
  M.Alive = true;
  M.Vars = {Value::integer(1), Value::null()};
  StateFrame F;
  F.State = 2;
  F.Inherit = {InheritNone, InheritDeferred, 3};
  M.Frames.push_back(F);
  M.Queue = {{1, Value::integer(9)}};
  A.Machines.push_back(CowMachine(M));

  Config B = A;
  EXPECT_EQ(hashConfig(A), hashConfig(B));

  std::string SA, SB;
  serializeConfig(A, SA);
  serializeConfig(B, SB);
  EXPECT_EQ(SA, SB);
}

TEST(StateHash, SensitiveToEverySemanticComponent) {
  Config Base;
  MachineState M;
  M.MachineIndex = 0;
  M.Alive = true;
  M.Vars = {Value::integer(1)};
  StateFrame F;
  F.State = 0;
  F.Inherit = {InheritNone};
  M.Frames.push_back(F);
  Base.Machines.push_back(CowMachine(M));
  uint64_t H0 = hashConfig(Base);

  {
    Config C = Base;
    C.mutableMachine(0).Vars[0] = Value::integer(2);
    EXPECT_NE(hashConfig(C), H0) << "variable values";
  }
  {
    Config C = Base;
    C.mutableMachine(0).Frames[0].State = 1;
    EXPECT_NE(hashConfig(C), H0) << "control state";
  }
  {
    Config C = Base;
    C.mutableMachine(0).Frames[0].Inherit[0] = InheritDeferred;
    EXPECT_NE(hashConfig(C), H0) << "inherited handler map";
  }
  {
    Config C = Base;
    C.mutableMachine(0).Queue.push_back({0, Value::null()});
    EXPECT_NE(hashConfig(C), H0) << "queue contents";
  }
  {
    Config C = Base;
    C.mutableMachine(0).HasRaise = true;
    C.mutableMachine(0).RaiseEvent = 0;
    EXPECT_NE(hashConfig(C), H0) << "pending raise";
  }
  {
    Config C = Base;
    C.mutableMachine(0).Transfer = TransferKind::PopRaise;
    EXPECT_NE(hashConfig(C), H0) << "pending transfer";
  }
  {
    Config C = Base;
    ExecFrame E;
    E.Body = 0;
    E.PC = 3;
    E.Operands = {Value::integer(4)};
    C.mutableMachine(0).Exec.push_back(E);
    EXPECT_NE(hashConfig(C), H0) << "resumable exec frames";
  }
  {
    Config C = Base;
    C.mutableMachine(0).InjectedChoice = true;
    EXPECT_NE(hashConfig(C), H0) << "injected choices";
  }
  {
    Config C = Base;
    C.mutableMachine(0).Alive = false;
    EXPECT_NE(hashConfig(C), H0) << "deleted machines";
  }
  {
    Config C = Base;
    StateFrame G;
    G.State = 0;
    G.Inherit = {InheritNone};
    ExecFrame Cont;
    Cont.Body = 1;
    G.SavedCont.push_back(Cont);
    C.mutableMachine(0).Frames.push_back(G);
    EXPECT_NE(hashConfig(C), H0) << "saved continuations";
  }
}

TEST(EventSet, BasicOperations) {
  EventSet S(130); // Multiple words.
  EXPECT_FALSE(S.test(0));
  EXPECT_FALSE(S.test(129));
  S.set(0);
  S.set(64);
  S.set(129);
  EXPECT_TRUE(S.test(0));
  EXPECT_TRUE(S.test(64));
  EXPECT_TRUE(S.test(129));
  EXPECT_FALSE(S.test(63));
  EXPECT_FALSE(S.test(500)) << "out-of-range probes are false";
  EventSet T(130);
  T.set(0);
  T.set(64);
  T.set(129);
  EXPECT_EQ(S, T);
}

} // namespace
