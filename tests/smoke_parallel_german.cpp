//===- tests/smoke_parallel_german.cpp - Parallel determinism smoke ---------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// CTest smoke target (registered as parallel_german_smoke): the Figure 7
// German sweep row at d = 4, run with 1 and 4 workers under a node cap,
// diffing the state counts. Exercises the determinism contract on the
// corpus row the acceptance criterion measures, in a few seconds.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"

#include <cstdio>
#include <cstdlib>

using namespace p;

int main() {
  CompileResult C = compileString(corpus::german(2));
  if (!C.ok()) {
    std::fprintf(stderr, "compile error:\n%s", C.Diags.str().c_str());
    return 1;
  }
  const CompiledProgram &Prog = *C.Program;

  const int Delay = 4;
  const uint64_t NodeCap = 3500000; // d=4 exhausts at ~2.64M nodes
  CheckResult Results[2];
  const int WorkerCounts[2] = {1, 4};
  for (int I = 0; I != 2; ++I) {
    CheckOptions Opts;
    Opts.DelayBound = Delay;
    Opts.MaxNodes = NodeCap;
    Opts.StopOnFirstError = false;
    Opts.Workers = WorkerCounts[I];
    Results[I] = check(Prog, Opts);
    std::printf("workers=%d: states=%llu nodes=%llu seconds=%.3f "
                "steals=%llu exhausted=%s\n",
                WorkerCounts[I],
                static_cast<unsigned long long>(Results[I].Stats.DistinctStates),
                static_cast<unsigned long long>(Results[I].Stats.NodesExplored),
                Results[I].Stats.Seconds,
                static_cast<unsigned long long>(Results[I].Stats.StealCount),
                Results[I].Stats.Exhausted ? "yes" : "no");
    if (Results[I].ErrorFound) {
      std::fprintf(stderr, "FAIL: unexpected error in clean German: %s\n",
                   Results[I].ErrorMessage.c_str());
      return 1;
    }
  }

  if (!Results[0].Stats.Exhausted || !Results[1].Stats.Exhausted) {
    std::fprintf(stderr,
                 "FAIL: node cap %llu hit; raise it — the determinism "
                 "diff needs exhausted searches\n",
                 static_cast<unsigned long long>(NodeCap));
    return 1;
  }
  if (Results[0].Stats.DistinctStates != Results[1].Stats.DistinctStates) {
    std::fprintf(stderr, "FAIL: state counts differ: %llu vs %llu\n",
                 static_cast<unsigned long long>(Results[0].Stats.DistinctStates),
                 static_cast<unsigned long long>(Results[1].Stats.DistinctStates));
    return 1;
  }
  if (Results[0].Stats.Terminals != Results[1].Stats.Terminals) {
    std::fprintf(stderr, "FAIL: terminal counts differ: %llu vs %llu\n",
                 static_cast<unsigned long long>(Results[0].Stats.Terminals),
                 static_cast<unsigned long long>(Results[1].Stats.Terminals));
    return 1;
  }
  std::printf("parallel_german_smoke ok: d=%d states=%llu identical across "
              "1 and 4 workers\n",
              Delay,
              static_cast<unsigned long long>(Results[0].Stats.DistinctStates));
  return 0;
}
