//===- tests/fault_test.cpp - Fault-injection subsystem tests ---------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the three layers of the fault model (fault/Fault.h):
//
//  * checker: bounded-fault exploration (CheckOptions::Faults) — budget
//    monotonicity, worker-count determinism, counterexample replay;
//  * host: seeded/scripted FaultPlan schedules, crash/restart;
//  * runtime: bounded queues under all three OverflowPolicy values.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/Replay.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "host/Host.h"
#include "obs/Metrics.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace p;

namespace {

CompiledProgram compileOrDie(const std::string &Src, bool Erase = false) {
  LowerOptions LO;
  LO.EraseGhosts = Erase;
  CompileResult R = compileString(Src, LO);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

int32_t eventId(const CompiledProgram &Prog, const std::string &Name) {
  for (size_t I = 0; I != Prog.Events.size(); ++I)
    if (Prog.Events[I].Name == Name)
      return static_cast<int32_t>(I);
  ADD_FAILURE() << "no event named " << Name;
  return -1;
}

/// German(2) with the fault-seeded bug: Idle "handles" a stale InvAck
/// through CountAck, whose AcksNeeded > 0 assertion only a duplicated
/// InvAck can violate.
CompiledProgram droppableInvAck() {
  return compileOrDie(
      corpus::german(2, corpus::GermanBug::DroppableInvAck));
}

/// Aim the adversary at the protocol's ack message only, so the
/// counterexample is the seeded bug and not the (also real, but
/// shallower) duplicated-grant unhandled event.
CheckOptions dupInvAckOpts(const CompiledProgram &Prog, int Budget,
                           int Delays = 0) {
  CheckOptions Opts;
  Opts.DelayBound = Delays;
  Opts.Faults.Budget = Budget;
  Opts.Faults.Drop = false;
  Opts.Faults.Duplicate = true;
  Opts.Faults.Events.push_back(eventId(Prog, "InvAck"));
  return Opts;
}

// --------------------------------------------------------------- checker

TEST(FaultChecker, BudgetZeroIsIdenticalToNoFaultLayer) {
  CompiledProgram Prog = droppableInvAck();
  CheckOptions Plain;
  CheckResult A = check(Prog, Plain);
  // Budget 0 with every kind enabled still explores no fault edge and
  // must not even perturb the visited-set keys.
  CheckOptions Zero = dupInvAckOpts(Prog, 0);
  Zero.Faults.Drop = Zero.Faults.Crash = Zero.Faults.FailForeign = true;
  Zero.Faults.Budget = 0;
  CheckResult B = check(Prog, Zero);
  EXPECT_FALSE(A.ErrorFound);
  EXPECT_FALSE(B.ErrorFound);
  EXPECT_EQ(A.Stats.DistinctStates, B.Stats.DistinctStates);
  EXPECT_EQ(A.Stats.NodesExplored, B.Stats.NodesExplored);
  EXPECT_EQ(B.Stats.FaultsInjected, 0u);
  EXPECT_EQ(B.FaultsUsedOnError, -1);
}

TEST(FaultChecker, SeededBugNeedsAFaultBudget) {
  CompiledProgram Prog = droppableInvAck();
  // Fault-free exploration is clean: no execution delivers an InvAck
  // in Idle without the transport misbehaving.
  CheckResult Clean = check(Prog, dupInvAckOpts(Prog, /*Budget=*/0));
  EXPECT_FALSE(Clean.ErrorFound);
  EXPECT_TRUE(Clean.Stats.Exhausted);
  // One duplicated InvAck delivers a stale ack after the grant and
  // fires the CountAck assertion.
  CheckResult Buggy = check(Prog, dupInvAckOpts(Prog, /*Budget=*/1));
  ASSERT_TRUE(Buggy.ErrorFound);
  EXPECT_EQ(Buggy.Error, ErrorKind::AssertFailed);
  // The counterexample declares the environment had to misbehave.
  EXPECT_EQ(Buggy.FaultsUsedOnError, 1);
  EXPECT_GT(Buggy.Stats.FaultsInjected, 0u);
}

TEST(FaultChecker, BudgetIsMonotone) {
  CompiledProgram Prog = droppableInvAck();
  uint64_t PrevStates = 0, PrevErrors = 0;
  for (int Budget = 0; Budget <= 2; ++Budget) {
    CheckOptions Opts = dupInvAckOpts(Prog, Budget);
    Opts.StopOnFirstError = false;
    CheckResult R = check(Prog, Opts);
    ASSERT_TRUE(R.Stats.Exhausted) << "budget " << Budget;
    // A budget-k path is also a budget-(k+1) path (FaultsUsed, not the
    // budget, is in the dedup key), so the explored tree only grows.
    EXPECT_GE(R.Stats.DistinctStates, PrevStates) << "budget " << Budget;
    EXPECT_GE(R.Stats.ErrorsFound, PrevErrors) << "budget " << Budget;
    EXPECT_EQ(R.ErrorFound, Budget > 0);
    PrevStates = R.Stats.DistinctStates;
    PrevErrors = R.Stats.ErrorsFound;
  }
}

TEST(FaultChecker, WorkerCountDoesNotChangeFaultExploration) {
  CompiledProgram Prog = droppableInvAck();
  CheckOptions Opts = dupInvAckOpts(Prog, /*Budget=*/1, /*Delays=*/1);
  Opts.StopOnFirstError = false;
  CheckResult Serial = check(Prog, Opts);
  Opts.Workers = 4;
  CheckResult Parallel = check(Prog, Opts);
  ASSERT_TRUE(Serial.Stats.Exhausted);
  ASSERT_TRUE(Parallel.Stats.Exhausted);
  EXPECT_EQ(Serial.Stats.DistinctStates, Parallel.Stats.DistinctStates);
  EXPECT_EQ(Serial.Stats.ErrorsFound, Parallel.Stats.ErrorsFound);
  EXPECT_EQ(Serial.ErrorFound, Parallel.ErrorFound);
  EXPECT_EQ(Serial.Error, Parallel.Error);
  EXPECT_EQ(Serial.FaultsUsedOnError, Parallel.FaultsUsedOnError);
}

TEST(FaultChecker, FaultCounterexampleReplaysDeterministically) {
  CompiledProgram Prog = droppableInvAck();
  CheckResult R = check(Prog, dupInvAckOpts(Prog, /*Budget=*/1));
  ASSERT_TRUE(R.ErrorFound);
  // The schedule carries the fault decision itself.
  bool HasDup = false;
  for (const SchedDecision &D : R.Schedule)
    HasDup |= D.K == SchedDecision::Kind::DupEvent;
  EXPECT_TRUE(HasDup);
  ReplayResult First = replaySchedule(Prog, R.Schedule);
  ASSERT_TRUE(First.ErrorReached);
  EXPECT_EQ(First.Error, R.Error);
  // Replay is a pure function of the schedule.
  ReplayResult Second = replaySchedule(Prog, R.Schedule);
  ASSERT_TRUE(Second.ErrorReached);
  EXPECT_EQ(Second.Error, First.Error);
  EXPECT_EQ(Second.ErrorMessage, First.ErrorMessage);
  EXPECT_EQ(Second.Steps, First.Steps);
}

TEST(FaultChecker, DroppedGrantBreaksBaseGerman) {
  // No seeded bug needed: dropping a grant strands a client in its
  // Asking state, where the next Inv is unhandled — a responsiveness
  // bug only a lossy transport can produce.
  CompiledProgram Prog = compileOrDie(corpus::german(2));
  CheckOptions Opts;
  Opts.Faults.Budget = 1;
  Opts.Faults.Drop = true;
  Opts.Faults.Duplicate = false;
  CheckResult R = check(Prog, Opts);
  ASSERT_TRUE(R.ErrorFound);
  EXPECT_EQ(R.Error, ErrorKind::UnhandledEvent);
  EXPECT_EQ(R.FaultsUsedOnError, 1);
  ReplayResult RR = replaySchedule(Prog, R.Schedule);
  ASSERT_TRUE(RR.ErrorReached);
  EXPECT_EQ(RR.Error, ErrorKind::UnhandledEvent);
}

TEST(FaultChecker, ForeignFailureIsExplorable) {
  // FindBuddy's model body yields a valid id; a failed foreign call
  // skips the body and returns ⊥ instead, which the send then
  // dereferences. (An assert cannot detect the failure: like the
  // paper's ASSERT-PASS, an undefined condition behaves like skip.)
  CompiledProgram Prog = compileOrDie(R"(
event Ping;
main machine M {
  var Buddy: id;
  foreign fun FindBuddy(): id model { result = this; }
  state S {
    entry {
      Buddy = FindBuddy();
      send(Buddy, Ping);
    }
    on Ping do Ignore;
  }
  action Ignore { skip; }
}
)");
  CheckOptions Opts;
  Opts.Faults.Budget = 1;
  Opts.Faults.Drop = Opts.Faults.Duplicate = false;
  Opts.Faults.FailForeign = true;
  CheckResult R = check(Prog, Opts);
  ASSERT_TRUE(R.ErrorFound);
  EXPECT_EQ(R.Error, ErrorKind::SendToNull);
  EXPECT_EQ(R.FaultsUsedOnError, 1);
  bool HasFF = false;
  for (const SchedDecision &D : R.Schedule)
    HasFF |= D.K == SchedDecision::Kind::ForeignFault && D.Choice;
  EXPECT_TRUE(HasFF);
  ReplayResult RR = replaySchedule(Prog, R.Schedule);
  ASSERT_TRUE(RR.ErrorReached);
  EXPECT_EQ(RR.Error, ErrorKind::SendToNull);
  // Budget 0 never takes the failing branch.
  Opts.Faults.Budget = 0;
  EXPECT_FALSE(check(Prog, Opts).ErrorFound);
}

TEST(FaultChecker, CrashExplorationIsCleanAndDeterministic) {
  // Crashing a machine silences it (sends to it vanish; no error
  // transition), so exploration stays clean while covering the
  // partial-failure states a crash exposes.
  CompiledProgram Prog = compileOrDie(R"(
event Ping;
event Pong;
main machine A {
  var B: id;
  state S {
    entry { B = new Bm(Peer = this); send(B, Ping); }
    on Pong goto Done;
  }
  state Done { entry { } }
}
machine Bm {
  var Peer: id;
  state S {
    entry { }
    on Ping do Reply;
  }
  action Reply { send(Peer, Pong); }
}
)");
  CheckOptions Plain;
  CheckResult Base = check(Prog, Plain);
  CheckOptions Opts;
  Opts.Faults.Budget = 1;
  Opts.Faults.Drop = Opts.Faults.Duplicate = false;
  Opts.Faults.Crash = true;
  CheckResult R = check(Prog, Opts);
  EXPECT_FALSE(R.ErrorFound);
  EXPECT_TRUE(R.Stats.Exhausted);
  EXPECT_GT(R.Stats.DistinctStates, Base.Stats.DistinctStates);
  EXPECT_GT(R.Stats.FaultsInjected, 0u);
  Opts.Workers = 2;
  CheckResult R2 = check(Prog, Opts);
  EXPECT_EQ(R.Stats.DistinctStates, R2.Stats.DistinctStates);
  EXPECT_EQ(R.Stats.Terminals, R2.Stats.Terminals);
}

TEST(FaultChecker, FaultMetricsAreExported) {
  CompiledProgram Prog = droppableInvAck();
  obs::MetricsRegistry Reg;
  CheckOptions Opts = dupInvAckOpts(Prog, /*Budget=*/1);
  Opts.Metrics = &Reg;
  CheckResult R = check(Prog, Opts);
  ASSERT_TRUE(R.ErrorFound);
  const obs::Counter *Injected = Reg.findCounter("p_check_fault_injections_total");
  ASSERT_NE(Injected, nullptr);
  EXPECT_EQ(Injected->value(), R.Stats.FaultsInjected);
  const obs::Gauge *Budget = Reg.findGauge("p_check_fault_budget");
  ASSERT_NE(Budget, nullptr);
  EXPECT_DOUBLE_EQ(Budget->value(), 1.0);
}

// ------------------------------------------------------------------ host

const char *Counter = R"(
event Inc(int);
event Go;
main machine CounterM {
  var Total: int;
  state S {
    entry { Total = 0; }
    on Inc do Add;
  }
  action Add { Total = Total + arg; }
}
machine DeferrerM {
  var Sum: int;
  state Wait {
    defer Inc;
    entry { Sum = 0; }
    on Go goto Work;
  }
  state Work {
    entry { }
    on Inc do Add;
  }
  action Add { Sum = Sum + arg; }
}
)";

TEST(FaultHost, ScriptedPlanDropsDuplicatesAndDelays) {
  CompiledProgram Prog = compileOrDie(Counter, /*Erase=*/true);
  Host H(Prog);
  int32_t Id = H.createMachine("CounterM");
  FaultPlan Plan;
  Plan.Script.push_back({1, FaultKind::DropEvent});
  Plan.Script.push_back({2, FaultKind::DuplicateEvent});
  Plan.Script.push_back({3, FaultKind::DelayEvent});
  H.setFaultPlan(Plan);
  // Call 1 is swallowed whole.
  EXPECT_TRUE(H.addEvent(Id, "Inc", Value::integer(100)));
  EXPECT_EQ(H.readVar(Id, "Total"), Value::integer(0));
  // Call 2 lands twice.
  EXPECT_TRUE(H.addEvent(Id, "Inc", Value::integer(5)));
  EXPECT_EQ(H.readVar(Id, "Total"), Value::integer(10));
  // Call 3 is deferred to a later pump...
  EXPECT_TRUE(H.addEvent(Id, "Inc", Value::integer(1)));
  EXPECT_EQ(H.readVar(Id, "Total"), Value::integer(10));
  // ...and runToCompletion flushes it.
  EXPECT_TRUE(H.runToCompletion());
  EXPECT_EQ(H.readVar(Id, "Total"), Value::integer(11));
  EXPECT_EQ(H.stats().EventsDropped, 1u);
  EXPECT_EQ(H.stats().EventsDuplicated, 1u);
  EXPECT_EQ(H.stats().EventsDelayed, 1u);
}

TEST(FaultHost, SeededPlansReplayIdentically) {
  CompiledProgram Prog = compileOrDie(Counter, /*Erase=*/true);
  FaultPlan Plan;
  Plan.Seed = 42;
  Plan.DropProb = 0.3;
  Plan.DuplicateProb = 0.2;
  auto RunOnce = [&Prog, &Plan] {
    Host H(Prog);
    int32_t Id = H.createMachine("CounterM");
    H.setFaultPlan(Plan); // setFaultPlan reseeds: same stream each run.
    for (int I = 1; I <= 64; ++I)
      EXPECT_TRUE(H.addEvent(Id, "Inc", Value::integer(I)));
    return std::make_tuple(H.readVar(Id, "Total"),
                           H.stats().EventsDropped,
                           H.stats().EventsDuplicated);
  };
  auto A = RunOnce();
  auto B = RunOnce();
  EXPECT_EQ(A, B);
  // The probabilities actually bit: some events dropped, some doubled.
  EXPECT_GT(std::get<1>(A), 0u);
  EXPECT_GT(std::get<2>(A), 0u);
}

TEST(FaultHost, CrashAndRestartRecoverTheMachine) {
  CompiledProgram Prog = compileOrDie(Counter, /*Erase=*/true);
  Host H(Prog);
  int32_t Id = H.createMachine("CounterM");
  ASSERT_TRUE(H.addEvent(Id, "Inc", Value::integer(3)));
  ASSERT_TRUE(H.crashMachine(Id));
  EXPECT_EQ(H.currentStateName(Id), "");
  // Sends to a crashed machine vanish silently: the call is accepted,
  // not an API misuse, and not a program error.
  EXPECT_TRUE(H.addEvent(Id, "Inc", Value::integer(7)));
  EXPECT_EQ(H.lastHostError(), HostError::None);
  EXPECT_FALSE(H.hasError());
  // Restart re-runs the entry statement (Total = 0) and the machine
  // serves events again; the lost in-flight Inc stays lost.
  ASSERT_TRUE(H.restartMachine(Id));
  EXPECT_EQ(H.currentStateName(Id), "S");
  ASSERT_TRUE(H.addEvent(Id, "Inc", Value::integer(2)));
  EXPECT_EQ(H.readVar(Id, "Total"), Value::integer(2));
  EXPECT_EQ(H.stats().MachinesCrashed, 1u);
  EXPECT_EQ(H.stats().MachinesRestarted, 1u);
  // Crashing a dead machine or restarting a live one are no-ops.
  EXPECT_FALSE(H.restartMachine(Id));
  ASSERT_TRUE(H.crashMachine(Id));
  EXPECT_FALSE(H.crashMachine(Id));
}

TEST(FaultHost, RestartReappliesCreationInitializers) {
  CompiledProgram Prog = compileOrDie(R"(
event Poke;
event Tick;
main machine Pinger {
  var Friend: id;
  state S {
    entry { }
    on Poke do Fwd;
  }
  action Fwd { send(Friend, Tick); }
}
machine Sink {
  var Ticks: int;
  state S {
    entry { Ticks = 0; }
    on Tick do Note;
  }
  action Note { Ticks = Ticks + 1; }
}
)",
                                     /*Erase=*/true);
  Host H(Prog);
  int32_t Snk = H.createMachine("Sink");
  int32_t Png = H.createMachine("Pinger", {{"Friend", Value::machine(Snk)}});
  ASSERT_TRUE(H.addEvent(Png, "Poke"));
  EXPECT_EQ(H.readVar(Snk, "Ticks"), Value::integer(1));
  ASSERT_TRUE(H.crashMachine(Png));
  ASSERT_TRUE(H.restartMachine(Png));
  // The Friend wiring survived the restart.
  ASSERT_TRUE(H.addEvent(Png, "Poke"));
  EXPECT_EQ(H.readVar(Snk, "Ticks"), Value::integer(2));
}

TEST(FaultHost, QueueOverflowErrorPolicy) {
  CompiledProgram Prog = compileOrDie(Counter, /*Erase=*/true);
  Host H(Prog);
  int32_t Id = H.createMachine("DeferrerM");
  H.setQueueLimit(1, OverflowPolicy::Error);
  // The deferred Inc parks in the queue; the second one overflows.
  EXPECT_TRUE(H.addEvent(Id, "Inc", Value::integer(1)));
  EXPECT_FALSE(H.addEvent(Id, "Inc", Value::integer(2)));
  EXPECT_TRUE(H.hasError());
  EXPECT_EQ(H.error(), ErrorKind::QueueOverflow);
  // Overflow is a program error, not API misuse.
  EXPECT_EQ(H.lastHostError(), HostError::None);
}

TEST(FaultHost, QueueOverflowDropNewestPolicy) {
  CompiledProgram Prog = compileOrDie(Counter, /*Erase=*/true);
  Host H(Prog);
  int32_t Id = H.createMachine("DeferrerM");
  H.setQueueLimit(2, OverflowPolicy::DropNewest);
  EXPECT_TRUE(H.addEvent(Id, "Inc", Value::integer(1)));
  EXPECT_TRUE(H.addEvent(Id, "Inc", Value::integer(2)));
  // Graceful degradation: the overflowing event is counted and shed.
  EXPECT_TRUE(H.addEvent(Id, "Inc", Value::integer(4)));
  EXPECT_FALSE(H.hasError());
  EXPECT_EQ(H.config().OverflowDropped, 1u);
  // Lift the bound so Go is deliverable; only the first two Incs
  // survived to be processed.
  H.setQueueLimit(0);
  ASSERT_TRUE(H.addEvent(Id, "Go"));
  EXPECT_EQ(H.readVar(Id, "Sum"), Value::integer(3));
}

TEST(FaultHost, QueueOverflowBlockUnblocksOnCrash) {
  CompiledProgram Prog = compileOrDie(Counter, /*Erase=*/true);
  Host H(Prog);
  int32_t Id = H.createMachine("DeferrerM");
  H.setQueueLimit(1, OverflowPolicy::Block);
  EXPECT_TRUE(H.addEvent(Id, "Inc", Value::integer(1)));
  // The next addEvent must block until space frees up; crashing the
  // target discards its queue and wakes the waiter (whose delivery
  // then vanishes into the dead machine).
  std::thread Unblocker([&H, Id] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    H.crashMachine(Id);
  });
  auto Start = std::chrono::steady_clock::now();
  EXPECT_TRUE(H.addEvent(Id, "Inc", Value::integer(2)));
  auto Waited = std::chrono::steady_clock::now() - Start;
  Unblocker.join();
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(Waited)
                .count(),
            20);
  EXPECT_FALSE(H.hasError());
  EXPECT_EQ(H.stats().MachinesCrashed, 1u);
}

TEST(FaultHost, IdenticalEntriesNeverBlock) {
  CompiledProgram Prog = compileOrDie(Counter, /*Erase=*/true);
  Host H(Prog);
  int32_t Id = H.createMachine("DeferrerM");
  H.setQueueLimit(1, OverflowPolicy::Block);
  EXPECT_TRUE(H.addEvent(Id, "Inc", Value::integer(1)));
  // The ⊎ dedup makes an identical (event, payload) entry a no-op, so
  // it needs no queue space and must not wait.
  EXPECT_TRUE(H.addEvent(Id, "Inc", Value::integer(1)));
  EXPECT_FALSE(H.hasError());
}

TEST(FaultHost, FaultMetricsAreExported) {
  CompiledProgram Prog = compileOrDie(Counter, /*Erase=*/true);
  Host H(Prog);
  int32_t Id = H.createMachine("CounterM");
  FaultPlan Plan;
  Plan.Script.push_back({1, FaultKind::DropEvent});
  H.setFaultPlan(Plan);
  EXPECT_TRUE(H.addEvent(Id, "Inc", Value::integer(1)));
  obs::MetricsRegistry Reg;
  H.exportMetrics(Reg);
  const obs::Counter *Dropped = Reg.findCounter("p_host_faults_dropped_total");
  ASSERT_NE(Dropped, nullptr);
  EXPECT_EQ(Dropped->value(), 1u);
  ASSERT_NE(Reg.findCounter("p_host_faults_duplicated_total"), nullptr);
  ASSERT_NE(Reg.findCounter("p_host_faults_crashed_total"), nullptr);
  ASSERT_NE(Reg.findCounter("p_host_overflow_dropped_total"), nullptr);
}

} // namespace
