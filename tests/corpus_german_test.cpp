//===- tests/corpus_german_test.cpp - German protocol verification ---------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

CompiledProgram compileOrDie(const std::string &Src) {
  CompileResult R = compileString(Src);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

std::string traceStr(const CheckResult &R) {
  std::string T;
  for (const auto &L : R.Trace)
    T += L + "\n";
  return T;
}

class GermanDelayBound : public ::testing::TestWithParam<int> {};

TEST_P(GermanDelayBound, TwoClientsVerifyClean) {
  CompiledProgram Prog = compileOrDie(corpus::german(2));
  CheckOptions Opts;
  Opts.DelayBound = GetParam();
  CheckResult R = check(Prog, Opts);
  EXPECT_FALSE(R.ErrorFound)
      << errorKindName(R.Error) << ": " << R.ErrorMessage << "\n"
      << traceStr(R);
  EXPECT_TRUE(R.Stats.Exhausted);
}

INSTANTIATE_TEST_SUITE_P(DelayBounds, GermanDelayBound,
                         ::testing::Values(0, 1, 2));

TEST(GermanCorpus, ThreeClientsVerifyCleanAtZero) {
  CompiledProgram Prog = compileOrDie(corpus::german(3));
  CheckOptions Opts;
  Opts.DelayBound = 0;
  CheckResult R = check(Prog, Opts);
  EXPECT_FALSE(R.ErrorFound)
      << errorKindName(R.Error) << ": " << R.ErrorMessage << "\n"
      << traceStr(R);
}

TEST(GermanCorpus, SkippedOwnerInvalidationViolatesCoherence) {
  CompiledProgram Prog =
      compileOrDie(corpus::german(2, corpus::GermanBug::SkipOwnerInvalidation));
  bool Found = false;
  int FoundAt = -1;
  for (int D = 0; D <= 2 && !Found; ++D) {
    CheckOptions Opts;
    Opts.DelayBound = D;
    CheckResult R = check(Prog, Opts);
    if (R.ErrorFound) {
      EXPECT_EQ(R.Error, ErrorKind::AssertFailed) << R.ErrorMessage;
      Found = true;
      FoundAt = D;
    }
  }
  EXPECT_TRUE(Found);
  EXPECT_LE(FoundAt, 2) << "paper: bugs found within delay bound 2";
}

TEST(GermanCorpus, StateCountGrowsWithClients) {
  // At d = 0 the sweep stays cheap; growth with N is what Figure 8's
  // "explored states" column is about.
  CheckOptions Opts;
  Opts.DelayBound = 0;
  uint64_t Prev = 0;
  for (int N = 1; N <= 3; ++N) {
    CompiledProgram Prog = compileOrDie(corpus::german(N));
    CheckResult R = check(Prog, Opts);
    EXPECT_FALSE(R.ErrorFound) << R.ErrorMessage;
    EXPECT_GT(R.Stats.DistinctStates, Prev);
    Prev = R.Stats.DistinctStates;
  }
}

} // namespace
