//===- tests/obs_json_test.cpp - Minimal JSON library tests -----------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <gtest/gtest.h>

using namespace p::obs;

namespace {

TEST(JsonTest, BuildAndSerialize) {
  Json Obj = Json::object();
  Obj.set("name", "german");
  Obj.set("delay", 4);
  Obj.set("exhausted", true);
  Obj.set("ratio", 0.5);
  Obj.set("none", Json());
  Json Arr = Json::array();
  Arr.push(1);
  Arr.push(2);
  Obj.set("list", std::move(Arr));

  // Insertion order is preserved; integers print without a decimal.
  EXPECT_EQ(Obj.str(),
            "{\"name\":\"german\",\"delay\":4,\"exhausted\":true,"
            "\"ratio\":0.5,\"none\":null,\"list\":[1,2]}");
}

TEST(JsonTest, ParseRoundTrip) {
  const std::string Text =
      "{\"a\":[1,2.5,-3,true,false,null],\"b\":{\"c\":\"x\"},"
      "\"big\":123456789012}";
  Json J;
  std::string Err;
  ASSERT_TRUE(Json::parse(Text, J, &Err)) << Err;
  EXPECT_EQ(J.get("a").size(), 6u);
  EXPECT_DOUBLE_EQ(J.get("a").at(1).asNumber(), 2.5);
  EXPECT_DOUBLE_EQ(J.get("a").at(2).asNumber(), -3);
  EXPECT_TRUE(J.get("a").at(3).asBool());
  EXPECT_TRUE(J.get("a").at(5).isNull());
  EXPECT_EQ(J.get("b").get("c").asString(), "x");
  EXPECT_EQ(J.get("big").asInt(), 123456789012);
  // Serialize-then-parse is a fixpoint.
  Json Again;
  ASSERT_TRUE(Json::parse(J.str(), Again, &Err)) << Err;
  EXPECT_EQ(Again.str(), J.str());
}

TEST(JsonTest, StringEscapes) {
  Json S = Json(std::string("a\"b\\c\n\t\x01"));
  std::string Text = S.str();
  Json Back;
  std::string Err;
  ASSERT_TRUE(Json::parse(Text, Back, &Err)) << Err;
  EXPECT_EQ(Back.asString(), S.asString());

  Json U;
  ASSERT_TRUE(Json::parse("\"\\u0041\\u00e9\"", U, &Err)) << Err;
  EXPECT_EQ(U.asString(), "A\xc3\xa9"); // UTF-8 for "Aé".
}

TEST(JsonTest, ParseErrorsAreReported) {
  Json J;
  std::string Err;
  EXPECT_FALSE(Json::parse("{\"a\":}", J, &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(Json::parse("[1,2", J, &Err));
  EXPECT_FALSE(Json::parse("", J, &Err));
  EXPECT_FALSE(Json::parse("{} trailing", J, &Err));
  EXPECT_FALSE(Json::parse("'single'", J, &Err));
}

TEST(JsonTest, MissingKeysAreSharedNull) {
  Json Obj = Json::object();
  Obj.set("x", 1);
  EXPECT_TRUE(Obj.has("x"));
  EXPECT_FALSE(Obj.has("y"));
  EXPECT_EQ(Obj.find("y"), nullptr);
  EXPECT_TRUE(Obj.get("y").isNull());
  EXPECT_FALSE(Obj.get("y").isNumber());
}

TEST(JsonTest, PrettyPrintIsStable) {
  Json Obj = Json::object();
  Obj.set("a", 1);
  Json Inner = Json::array();
  Inner.push("x");
  Obj.set("b", std::move(Inner));
  EXPECT_EQ(Obj.str(2), "{\n  \"a\": 1,\n  \"b\": [\n    \"x\"\n  ]\n}");
}

} // namespace
