//===- tests/obs_report_test.cpp - Profiler and run-report tests ------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The observatory contracts: the search profiler is a pure observer
// (CheckStats bit-identical with Profile on or off, across reductions,
// visited modes, and worker counts) whose merged attribution reconciles
// exactly with the stat counters; coverage reports name dead handlers;
// the Host exports queue high-water and dispatch-latency metrics; and
// RunReport documents validate, render, and round-trip through disk.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "host/Host.h"
#include "host/LatencyProbe.h"
#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "obs/Report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace p;

namespace {

CompiledProgram compile(const std::string &Src,
                        const LowerOptions &Opts = {}) {
  CompileResult R = compileString(Src, Opts);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  return std::move(*R.Program);
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

//===----------------------------------------------------------------------===//
// ProfileHistogram
//===----------------------------------------------------------------------===//

TEST(ProfileHistogramTest, ObserveMergeQuantile) {
  obs::ProfileHistogram A;
  A.init({1.0, 2.0, 4.0});
  ASSERT_EQ(A.Counts.size(), 4u); // Three bounds + the +Inf bucket.

  A.observe(0.5);
  A.observe(1.5);
  A.observe(3.0);
  A.observe(100.0); // +Inf bucket.
  EXPECT_EQ(A.N, 4u);
  EXPECT_DOUBLE_EQ(A.Sum, 105.0);
  EXPECT_EQ(A.Counts[0], 1u);
  EXPECT_EQ(A.Counts[1], 1u);
  EXPECT_EQ(A.Counts[2], 1u);
  EXPECT_EQ(A.Counts[3], 1u);

  obs::ProfileHistogram B;
  B.init({1.0, 2.0, 4.0});
  B.observe(0.25);
  A.merge(B);
  EXPECT_EQ(A.N, 5u);
  EXPECT_EQ(A.Counts[0], 2u);

  // The +Inf bucket clamps to the last finite bound.
  EXPECT_LE(A.quantile(1.0), 4.0);
  EXPECT_GT(A.quantile(0.5), 0.0);

  obs::ProfileHistogram Empty;
  Empty.init({1.0});
  EXPECT_EQ(Empty.quantile(0.5), 0.0);
}

TEST(ProfileHistogramTest, AtomicHistogramMergeAndQuantile) {
  obs::Histogram A({1.0, 10.0});
  obs::Histogram B({1.0, 10.0});
  for (int I = 0; I != 10; ++I)
    A.observe(0.5);
  B.observe(5.0);
  A.merge(B);
  EXPECT_EQ(A.count(), 11u);
  EXPECT_DOUBLE_EQ(A.sum(), 10.0);
  // 10 of 11 observations sit in the first bucket: the median
  // interpolates inside it, the p99 lands in the second.
  EXPECT_LE(histogramQuantile(A, 0.5), 1.0);
  EXPECT_GT(histogramQuantile(A, 0.99), 1.0);

  obs::Histogram Empty({1.0});
  EXPECT_EQ(histogramQuantile(Empty, 0.5), 0.0);
}

//===----------------------------------------------------------------------===//
// Profiler determinism: Profile is an observer
//===----------------------------------------------------------------------===//

// Fields deterministic on exhausted serial searches; all must be
// bit-identical with the profiler on or off.
void expectStatsIdentical(const CheckStats &A, const CheckStats &B) {
  EXPECT_EQ(A.DistinctStates, B.DistinctStates);
  EXPECT_EQ(A.NodesExplored, B.NodesExplored);
  EXPECT_EQ(A.Slices, B.Slices);
  EXPECT_EQ(A.Terminals, B.Terminals);
  EXPECT_EQ(A.ErrorsFound, B.ErrorsFound);
  EXPECT_EQ(A.MaxDepth, B.MaxDepth);
  EXPECT_EQ(A.Exhausted, B.Exhausted);
  EXPECT_EQ(A.VisitedBytes, B.VisitedBytes);
  EXPECT_EQ(A.PrunedByIndependence, B.PrunedByIndependence);
  EXPECT_EQ(A.SymmetryCollapsed, B.SymmetryCollapsed);
  EXPECT_EQ(A.FaultsInjected, B.FaultsInjected);
}

TEST(ProfileTest, OffIsBitIdenticalAcrossReduceVisitedWorkers) {
  CompiledProgram Prog = compile(corpus::workerPool(3));
  for (Reduction Reduce : {Reduction::Off, Reduction::Both}) {
    for (VisitedMode Visited :
         {VisitedMode::Fingerprint, VisitedMode::Exact}) {
      for (int Workers : {1, 2}) {
        CheckOptions Opts;
        Opts.DelayBound = 1;
        Opts.Workers = Workers;
        Opts.Reduce = Reduce;
        Opts.Visited = Visited;
        Opts.StopOnFirstError = false;
        CheckOptions WithProf = Opts;
        WithProf.Profile = true;

        CheckResult Off = check(Prog, Opts);
        CheckResult On = check(Prog, WithProf);
        SCOPED_TRACE("reduce=" + std::string(reductionName(Reduce)) +
                     " visited=" + std::to_string(int(Visited)) +
                     " workers=" + std::to_string(Workers));
        ASSERT_TRUE(Off.Stats.Exhausted);
        ASSERT_TRUE(On.Stats.Exhausted);
        EXPECT_FALSE(Off.Profile.Enabled);
        EXPECT_TRUE(On.Profile.Enabled);
        if (Workers == 1) {
          expectStatsIdentical(Off.Stats, On.Stats);
        } else {
          // Parallel runs pin the worker-count-independent fields (the
          // determinism contract in DESIGN.md).
          EXPECT_EQ(Off.Stats.DistinctStates, On.Stats.DistinctStates);
          EXPECT_EQ(Off.Stats.Terminals, On.Stats.Terminals);
          EXPECT_EQ(Off.Stats.ErrorsFound, On.Stats.ErrorsFound);
          EXPECT_EQ(Off.Stats.Exhausted, On.Stats.Exhausted);
        }
      }
    }
  }
}

TEST(ProfileTest, AttributionReconcilesWithStats) {
  CompiledProgram Prog = compile(corpus::workerPool(3));
  CheckOptions Opts;
  Opts.DelayBound = 1;
  Opts.Reduce = Reduction::Both;
  Opts.Profile = true;
  Opts.StopOnFirstError = false;
  CheckResult R = check(Prog, Opts);
  ASSERT_TRUE(R.Stats.Exhausted);
  const obs::SearchProfile &P = R.Profile;
  ASSERT_TRUE(P.Enabled);
  ASSERT_EQ(P.Machines.size(), Prog.Machines.size() + 1);

  // Every explored node is credited somewhere, and all but the root to
  // a real machine type: the trailing row holds exactly the root, which
  // is what makes the >= 99% acceptance bar hold on any real run.
  EXPECT_EQ(P.totalNodes(), R.Stats.NodesExplored);
  EXPECT_EQ(P.attributedNodes() + 1, P.totalNodes());

  uint64_t States = 0, Slices = 0, Sleep = 0, Sym = 0;
  for (const obs::MachineProfile &M : P.Machines) {
    States += M.States;
    Slices += M.Slices;
    Sleep += M.SleepPruned;
    Sym += M.SymmetryCollapsed;
  }
  EXPECT_EQ(States, R.Stats.DistinctStates);
  EXPECT_EQ(Slices, R.Stats.Slices);
  EXPECT_EQ(Sleep, R.Stats.PrunedByIndependence);
  EXPECT_EQ(Sym, R.Stats.SymmetryCollapsed);

  // One depth/delay observation per explored node.
  EXPECT_EQ(P.Depth.N, R.Stats.NodesExplored);
  EXPECT_EQ(P.DelaysUsed.N, R.Stats.NodesExplored);
  // No faults configured: the fault histogram stays untouched.
  EXPECT_EQ(P.FaultsUsed.N, 0u);
  // The pool actually dispatched something.
  EXPECT_FALSE(P.Transitions.empty());
  uint64_t SliceTimed = 0;
  EXPECT_EQ(P.SliceSeconds.N, Slices);
  for (const obs::MachineProfile &M : P.Machines)
    SliceTimed += M.Slices;
  EXPECT_EQ(SliceTimed, Slices);

  // toJson resolves names and reconciles its own totals.
  obs::Json J = P.toJson(Prog);
  EXPECT_EQ(J.get("nodes_total").asNumber(),
            static_cast<double>(R.Stats.NodesExplored));
  EXPECT_TRUE(J.get("machines").isArray());
  EXPECT_TRUE(J.get("hot_transitions").isArray());
  EXPECT_GT(J.get("hot_transitions").size(), 0u);
}

TEST(ProfileTest, MergedParallelAttributionStillReconciles) {
  CompiledProgram Prog = compile(corpus::workerPool(3));
  CheckOptions Opts;
  Opts.DelayBound = 1;
  Opts.Workers = 2;
  Opts.Profile = true;
  Opts.StopOnFirstError = false;
  CheckResult R = check(Prog, Opts);
  ASSERT_TRUE(R.Stats.Exhausted);
  // NodesExplored races across workers, but whatever it counted, the
  // profile counted identically (the hooks share the fetch_add sites).
  EXPECT_EQ(R.Profile.totalNodes(), R.Stats.NodesExplored);
  EXPECT_EQ(R.Profile.attributedNodes() + 1, R.Profile.totalNodes());
  uint64_t States = 0;
  for (const obs::MachineProfile &M : R.Profile.Machines)
    States += M.States;
  EXPECT_EQ(States, R.Stats.DistinctStates);
}

//===----------------------------------------------------------------------===//
// Coverage: dead handlers are named
//===----------------------------------------------------------------------===//

// Sink's Idle state handles Never, but nothing ever sends it: after an
// exhausted search the (Idle, Never) handler is dead and the coverage
// report must say so by name.
const char *DeadHandlerSrc = R"(
event Go, Never;
main ghost machine Driver {
  var R: id;
  state S {
    entry {
      R = new Sink();
      send(R, Go);
    }
  }
}
machine Sink {
  state Idle {
    entry { }
    on Go goto Idle;
    on Never goto Idle;
  }
}
)";

TEST(ReportCoverageTest, DeadHandlerIsNamedUncovered) {
  CompiledProgram Prog = compile(DeadHandlerSrc);
  CheckOptions Opts;
  Opts.DelayBound = 2;
  Opts.TrackCoverage = true;
  Opts.StopOnFirstError = false;
  CheckResult R = check(Prog, Opts);
  ASSERT_TRUE(R.Stats.Exhausted);
  EXPECT_EQ(R.Stats.ErrorsFound, 0u);

  obs::Json Cov = obs::coverageToJson(Prog, R.Coverage);
  std::string Why;
  EXPECT_TRUE(obs::validateCoverageJson(Cov, Why)) << Why;

  bool FoundSink = false, FoundDead = false;
  for (size_t I = 0; I != Cov.size(); ++I) {
    const obs::Json &M = Cov.at(I);
    if (M.get("machine").asString() != "Sink")
      continue;
    FoundSink = true;
    const obs::Json &U = M.get("uncovered_transitions");
    ASSERT_TRUE(U.isArray());
    for (size_t J = 0; J != U.size(); ++J) {
      const obs::Json &T = U.at(J);
      if (T.get("state").asString() == "Idle" &&
          T.get("event").asString() == "Never") {
        FoundDead = true;
        EXPECT_EQ(T.get("kind").asString(), "step");
      }
      // The fired (Idle, Go) step must NOT be reported uncovered.
      EXPECT_FALSE(T.get("state").asString() == "Idle" &&
                   T.get("event").asString() == "Go");
    }
  }
  EXPECT_TRUE(FoundSink);
  EXPECT_TRUE(FoundDead);
}

//===----------------------------------------------------------------------===//
// Host metrics: queue high-water and dispatch latency
//===----------------------------------------------------------------------===//

TEST(HostMetricsTest, QueueHighWaterAndDispatchLatencyExport) {
  HostLatencyProbe Probe(50);
  const Host &H = Probe.host();
  EXPECT_GT(H.stats().EventsDelivered, 0u);
  EXPECT_GE(H.stats().QueueDepthHighWater, 1u);
  EXPECT_GT(H.dispatchLatency().count(), 0u);
  EXPECT_GT(H.eventsPerSecond(), 0.0);

  obs::MetricsRegistry Reg;
  H.exportMetrics(Reg);
  const obs::Gauge *HighWater = Reg.findGauge("p_host_queue_depth_highwater");
  ASSERT_NE(HighWater, nullptr);
  EXPECT_GE(HighWater->value(), 1.0);

  const obs::Histogram *Lat =
      Reg.findHistogram("p_host_dispatch_latency_seconds");
  ASSERT_NE(Lat, nullptr);
  EXPECT_EQ(Lat->count(), H.dispatchLatency().count());
  // Dispatch happens after enqueue, so every latency is positive and
  // the quantiles are well-defined.
  EXPECT_GT(Lat->sum(), 0.0);
  EXPECT_GT(histogramQuantile(*Lat, 0.99), 0.0);
  EXPECT_LE(histogramQuantile(*Lat, 0.5), histogramQuantile(*Lat, 0.99));

  std::string Text = Reg.renderPrometheus();
  EXPECT_NE(Text.find("p_host_queue_depth_highwater"), std::string::npos);
  EXPECT_NE(Text.find("p_host_dispatch_latency_seconds"), std::string::npos);
  EXPECT_NE(Text.find("p_host_events_per_sec"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// RunReport: schema, HTML, disk round-trip
//===----------------------------------------------------------------------===//

TEST(RunReportTest, JsonValidatesAndHtmlNamesCoverage) {
  CompiledProgram Prog = compile(DeadHandlerSrc);
  CheckOptions Opts;
  Opts.DelayBound = 1;
  Opts.TrackCoverage = true;
  Opts.Profile = true;
  Opts.StopOnFirstError = false;
  CheckResult R = check(Prog, Opts);
  ASSERT_TRUE(R.Stats.Exhausted);

  obs::RunReport Rep("obs_report_test");
  obs::Json Config = obs::Json::object();
  Config.set("delay_bound", 1);
  Rep.addCheckRun(Prog, std::move(Config), R);

  HostLatencyProbe Probe(20);
  Rep.setHost(Probe.host());
  obs::MetricsRegistry Reg;
  Probe.host().exportMetrics(Reg);
  Rep.setMetrics(Reg);

  obs::Json Doc = Rep.json();
  std::string Why;
  EXPECT_TRUE(obs::validateRunReport(Doc, Why)) << Why;
  EXPECT_EQ(Doc.get("schema").asString(), "p-run-report-v1");
  EXPECT_EQ(Doc.get("tool").asString(), "obs_report_test");
  ASSERT_EQ(Doc.get("runs").size(), 1u);
  const obs::Json &Run = Doc.get("runs").at(0);
  EXPECT_TRUE(Run.get("profile").isObject());
  EXPECT_TRUE(Run.get("coverage").isArray());
  EXPECT_TRUE(Doc.get("host").get("dispatch_latency").get("p50_seconds")
                  .isNumber());

  std::string Html = Rep.html();
  EXPECT_NE(Html.find("id=\"coverage\""), std::string::npos);
  EXPECT_NE(Html.find("Never"), std::string::npos); // The dead handler.
  EXPECT_NE(Html.find("obs_report_test"), std::string::npos);
  EXPECT_NE(Html.find("dispatch latency"), std::string::npos);
}

TEST(RunReportTest, WriteToRoundTripsThroughDisk) {
  CompiledProgram Prog = compile(DeadHandlerSrc);
  CheckOptions Opts;
  Opts.DelayBound = 1;
  Opts.TrackCoverage = true;
  Opts.StopOnFirstError = false;
  CheckResult R = check(Prog, Opts);

  obs::RunReport Rep("roundtrip");
  Rep.addCheckRun(Prog, obs::Json::object(), R);
  HostLatencyProbe Probe(10);
  Rep.setHost(Probe.host());

  // A trailing .json on the base is stripped, not doubled.
  std::string Base = ::testing::TempDir() + "p_obs_report_test.json";
  std::string Why;
  ASSERT_TRUE(Rep.writeTo(Base, &Why)) << Why;

  std::string Stem = ::testing::TempDir() + "p_obs_report_test";
  std::string JsonText = readFile(Stem + ".json");
  ASSERT_FALSE(JsonText.empty());
  obs::Json Parsed;
  ASSERT_TRUE(obs::Json::parse(JsonText, Parsed, &Why)) << Why;
  EXPECT_TRUE(obs::validateRunReport(Parsed, Why)) << Why;

  std::string HtmlText = readFile(Stem + ".html");
  EXPECT_NE(HtmlText.find("id=\"coverage\""), std::string::npos);
  std::remove((Stem + ".json").c_str());
  std::remove((Stem + ".html").c_str());
}

TEST(RunReportTest, ValidatorRejectsMalformedDocuments) {
  std::string Why;

  // Empty runs without a host section: nothing to report on.
  obs::RunReport Empty("empty");
  EXPECT_FALSE(obs::validateRunReport(Empty.json(), Why));
  EXPECT_FALSE(Why.empty());

  // Empty runs WITH a host section is the host-only-tool shape.
  HostLatencyProbe Probe(10);
  obs::RunReport HostOnly("host_only");
  HostOnly.setHost(Probe.host());
  EXPECT_TRUE(obs::validateRunReport(HostOnly.json(), Why)) << Why;

  // Wrong schema tag.
  obs::Json Doc = HostOnly.json();
  Doc.set("schema", "not-a-report");
  EXPECT_FALSE(obs::validateRunReport(Doc, Why));

  // A run record missing its stats block.
  obs::Json Bad = HostOnly.json();
  obs::Json Runs = obs::Json::array();
  obs::Json Rec = obs::Json::object();
  Rec.set("config", obs::Json::object());
  Rec.set("seconds", 0.0);
  Runs.push(std::move(Rec));
  Bad.set("runs", std::move(Runs));
  EXPECT_FALSE(obs::validateRunReport(Bad, Why));
}

} // namespace
