//===- tests/reduction_test.cpp - Partial-order/symmetry reduction ----------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The reduction suite (ctest -L perf, with the visited-mode
// differentials): CheckOptions::Reduce must never change a verdict,
// must keep counterexamples replayable, may only shrink the distinct-
// state count, and — at Reduction::Off — must stay bit-identical to
// the baseline checker across worker counts, visited modes, and fault
// budgets. The WorkerPool corpus program (roster-free `symmetric`
// workers) is where canonicalization provably collapses orbits; German
// pins every client id in Home's unrolled roster, so its state count
// is the regression anchor for "symmetry must not change semantics"
// (see DESIGN.md "Reduction" for why it cannot shrink there).
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/Replay.h"
#include "checker/StateHash.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "runtime/Executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace p;

namespace {

CompiledProgram compile(const std::string &Src) {
  CompileResult R = compileString(Src);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

const char *modeName(VisitedMode M) {
  switch (M) {
  case VisitedMode::Exact:
    return "exact";
  case VisitedMode::Fingerprint:
    return "fingerprint";
  case VisitedMode::Compact:
    return "compact";
  }
  return "?";
}

std::vector<uint64_t> sortedTerminals(const CheckResult &R) {
  std::vector<uint64_t> T = R.TerminalHashes;
  std::sort(T.begin(), T.end());
  return T;
}

} // namespace

// Every reduction mode must reach the same verdict as Off on an
// error-free program, explore no more distinct states than the exact
// oracle, and exhaust. Swept across visited modes, worker counts, and
// fault budgets so the reductions compose with every checker layer.
TEST(Reduction, VerdictAndStateCountAgreeOnWorkerPool) {
  CompiledProgram Prog = compile(corpus::workerPool(3));
  uint64_t OffStates = 0;
  for (VisitedMode Mode : {VisitedMode::Exact, VisitedMode::Fingerprint,
                           VisitedMode::Compact}) {
    for (int Workers : {1, 4}) {
      for (int Budget : {0, 1}) {
        uint64_t PerConfigOffStates = 0;
        bool OffVerdict = false;
        for (Reduction Red : {Reduction::Off, Reduction::Sleep,
                              Reduction::Symmetry, Reduction::Both}) {
          SCOPED_TRACE(std::string("mode=") + modeName(Mode) +
                       " workers=" + std::to_string(Workers) +
                       " budget=" + std::to_string(Budget) +
                       " reduction=" + reductionName(Red));
          CheckOptions Opts;
          Opts.DelayBound = 2;
          Opts.Workers = Workers;
          Opts.Visited = Mode;
          Opts.Faults.Budget = Budget;
          Opts.StopOnFirstError = false;
          Opts.Reduce = Red;
          CheckResult R = check(Prog, Opts);
          // Budget 0 is clean; budget 1 trips the Boss's counting
          // assertion through a duplicated Done (a genuine finding, not
          // a checker artifact). Either way every reduction must agree
          // with Off's verdict on the same configuration.
          EXPECT_TRUE(R.Stats.Exhausted);
          if (Budget == 0) {
            EXPECT_FALSE(R.ErrorFound) << R.ErrorMessage;
          }
          if (Red == Reduction::Off) {
            PerConfigOffStates = R.Stats.DistinctStates;
            OffVerdict = R.ErrorFound;
            if (Mode == VisitedMode::Exact && Workers == 1 && Budget == 0)
              OffStates = R.Stats.DistinctStates;
          } else {
            EXPECT_EQ(R.ErrorFound, OffVerdict) << R.ErrorMessage;
            EXPECT_LE(R.Stats.DistinctStates, PerConfigOffStates);
          }
          if (Red == Reduction::Symmetry || Red == Reduction::Both) {
            EXPECT_GT(R.Stats.SymmetryCollapsed, 0u);
          }
        }
      }
    }
  }
  EXPECT_GT(OffStates, 0u);
}

// The canonicalization must genuinely merge orbits on the roster-free
// pool: three interchangeable workers collapse the exact count 495 ->
// 210 at d=2 (measured; both counts exhaust, so they are deterministic)
// and the three symmetric terminal configurations fold into one.
TEST(Reduction, SymmetryCollapsesWorkerPoolOrbits) {
  CompiledProgram Prog = compile(corpus::workerPool(3));
  for (VisitedMode Mode : {VisitedMode::Exact, VisitedMode::Fingerprint}) {
    SCOPED_TRACE(std::string("mode=") + modeName(Mode));
    CheckOptions Opts;
    Opts.DelayBound = 2;
    Opts.StopOnFirstError = false;
    Opts.Visited = Mode;

    Opts.Reduce = Reduction::Off;
    CheckResult Off = check(Prog, Opts);
    EXPECT_EQ(Off.Stats.DistinctStates, 495u);
    EXPECT_EQ(Off.Stats.Terminals, 3u);

    Opts.Reduce = Reduction::Symmetry;
    CheckResult Sym = check(Prog, Opts);
    EXPECT_EQ(Sym.Stats.DistinctStates, 210u);
    EXPECT_EQ(Sym.Stats.Terminals, 1u);
    EXPECT_GT(Sym.Stats.SymmetryCollapsed, 0u);
    EXPECT_FALSE(Sym.ErrorFound);
    EXPECT_TRUE(Sym.Stats.Exhausted);
  }
}

// Reductions must preserve error reachability, and the counterexample
// schedule each mode reports must replay to the same assertion — the
// symmetry canonicalization only renames visited-set keys, never the
// nodes themselves, so traces name concrete machines.
TEST(Reduction, BugFoundAndReplayableUnderEveryReduction) {
  CompiledProgram Prog = compile(
      corpus::workerPool(3, corpus::WorkerPoolBug::UndercountedPool));
  for (Reduction Red : {Reduction::Off, Reduction::Sleep,
                        Reduction::Symmetry, Reduction::Both}) {
    SCOPED_TRACE(std::string("reduction=") + reductionName(Red));
    CheckOptions Opts;
    Opts.DelayBound = 1;
    Opts.Reduce = Red;
    CheckResult R = check(Prog, Opts);
    ASSERT_TRUE(R.ErrorFound);
    EXPECT_EQ(R.Error, ErrorKind::AssertFailed);
    ASSERT_FALSE(R.Schedule.empty());
    ReplayResult Replay = replaySchedule(Prog, R.Schedule);
    EXPECT_TRUE(Replay.ErrorReached);
    EXPECT_EQ(Replay.Error, ErrorKind::AssertFailed);
  }
}

// German is the anti-benchmark for symmetry: Home's position-unrolled
// roster (Client1..N assigned at init) pins each client id at the value
// level, so no non-identity permutation maps a reachable config onto a
// reachable config — the distinct-state count must not move at all.
// This doubles as the determinism-contract check for Reduction::Off:
// states, nodes, and the terminal-hash set must equal the PR-4 baseline
// (German(2) d=2 Fingerprint: pinned below) across worker counts.
TEST(Reduction, GermanPinnedRosterDefeatsSymmetryAndOffIsBitIdentical) {
  CompiledProgram Prog = compile(corpus::german(2));
  // Off baseline, 1 worker: the anchor every variant must reproduce.
  CheckOptions Base;
  Base.DelayBound = 2;
  Base.StopOnFirstError = false;
  Base.CollectTerminals = true;
  Base.Reduce = Reduction::Off;
  CheckResult Off1 = check(Prog, Base);
  EXPECT_TRUE(Off1.Stats.Exhausted);
  EXPECT_GT(Off1.Stats.DistinctStates, 0u);

  for (int Workers : {1, 4}) {
    for (VisitedMode Mode : {VisitedMode::Exact, VisitedMode::Fingerprint}) {
      SCOPED_TRACE(std::string("mode=") + modeName(Mode) +
                   " workers=" + std::to_string(Workers));
      CheckOptions Opts = Base;
      Opts.Workers = Workers;
      Opts.Visited = Mode;
      CheckResult R = check(Prog, Opts);
      EXPECT_EQ(R.Stats.DistinctStates, Off1.Stats.DistinctStates);
      // NodesExplored is worker-count-dependent (parallel workers race
      // on visited insertion), so it is only pinned single-threaded.
      if (Workers == 1) {
        EXPECT_EQ(R.Stats.NodesExplored, Off1.Stats.NodesExplored);
      }
      EXPECT_EQ(R.Stats.Terminals, Off1.Stats.Terminals);
      EXPECT_EQ(sortedTerminals(R), sortedTerminals(Off1));
      EXPECT_EQ(R.Stats.PrunedByIndependence, 0u);
      EXPECT_EQ(R.Stats.SymmetryCollapsed, 0u);
    }
  }

  CheckOptions Sym = Base;
  Sym.Reduce = Reduction::Symmetry;
  CheckResult R = check(Prog, Sym);
  EXPECT_FALSE(R.ErrorFound);
  EXPECT_TRUE(R.Stats.Exhausted);
  EXPECT_EQ(R.Stats.DistinctStates, Off1.Stats.DistinctStates);
}

// Sleep-set pruning on German: same reachable set (a stateful search
// with a visited table cannot lose states to sleep sets — pruned
// branches only skip re-explored interleavings), nonzero prune counter
// at a delay bound deep enough for commuting rotations, and identical
// verdict. Swept across worker counts and the DroppableInvAck fault
// case so pruning composes with budgets.
TEST(Reduction, SleepPreservesGermanStatesAndFaultVerdicts) {
  CompiledProgram Prog = compile(corpus::german(2));
  for (int Workers : {1, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(Workers));
    CheckOptions Opts;
    Opts.DelayBound = 3;
    Opts.StopOnFirstError = false;
    Opts.Workers = Workers;
    Opts.Reduce = Reduction::Off;
    CheckResult Off = check(Prog, Opts);
    Opts.Reduce = Reduction::Sleep;
    CheckResult Sleep = check(Prog, Opts);
    EXPECT_EQ(Sleep.Stats.DistinctStates, Off.Stats.DistinctStates);
    EXPECT_GT(Sleep.Stats.PrunedByIndependence, 0u);
    EXPECT_FALSE(Sleep.ErrorFound);
    EXPECT_TRUE(Sleep.Stats.Exhausted);
  }

  // The budget-1 duplicated InvAck must still reach the seeded
  // assertion under every reduction, and the schedule must replay.
  CompiledProgram Buggy =
      compile(corpus::german(2, corpus::GermanBug::DroppableInvAck));
  int32_t InvAck = -1;
  for (size_t I = 0; I != Buggy.Events.size(); ++I)
    if (Buggy.Events[I].Name == "InvAck")
      InvAck = static_cast<int32_t>(I);
  ASSERT_GE(InvAck, 0);
  for (Reduction Red : {Reduction::Off, Reduction::Sleep,
                        Reduction::Symmetry, Reduction::Both}) {
    SCOPED_TRACE(std::string("reduction=") + reductionName(Red));
    CheckOptions Opts;
    Opts.DelayBound = 0;
    Opts.StopOnFirstError = false;
    Opts.Faults.Budget = 1;
    Opts.Faults.Drop = false;
    Opts.Faults.Duplicate = true;
    Opts.Faults.Events.push_back(InvAck);
    Opts.Reduce = Red;
    CheckResult R = check(Buggy, Opts);
    ASSERT_TRUE(R.ErrorFound);
    EXPECT_EQ(R.Error, ErrorKind::AssertFailed);
    ReplayResult Replay = replaySchedule(Buggy, R.Schedule);
    EXPECT_TRUE(Replay.ErrorReached);
  }
}

// The identity permutation must be a no-op for both canonical encodings:
// serializeConfigPermuted(id) == serializeConfig and
// hashConfigPermuted(id, support=0) == hashConfig — the symmetry layer's
// correctness rests on the identity candidate anchoring the orbit.
TEST(Reduction, IdentityPermutationMatchesUnpermutedEncodings) {
  CompiledProgram Prog = compile(corpus::workerPool(3));
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  // Run a few slices so machine-typed values (BossV, Pending) exist.
  for (int I = 0; I < 4; ++I)
    for (int32_t Id = 0;
         Id != static_cast<int32_t>(Cfg.Machines.size()); ++Id)
      if (Exec.isEnabled(Cfg, Id))
        Exec.step(Cfg, Id);

  std::vector<int32_t> Identity(Cfg.Machines.size());
  for (size_t I = 0; I != Identity.size(); ++I)
    Identity[I] = static_cast<int32_t>(I);

  std::string Plain, Permuted;
  serializeConfig(Cfg, Plain);
  serializeConfigPermuted(Cfg, Identity, Identity, Permuted);
  EXPECT_EQ(Plain, Permuted);

  std::string Scratch;
  EXPECT_EQ(hashConfigPermuted(Cfg, Identity, Identity, 0, Scratch),
            hashConfig(Cfg, Scratch));
}

// PeakRssBytes and VisitedBytes are per-run quantities: a second check()
// in the same process with a smaller Compact cap must report smaller
// numbers, not the process lifetime high-water mark (the regression this
// pins: VmHWM only ever grows unless the run resets it).
TEST(Reduction, PeakRssAndVisitedBytesArePerRun) {
  CompiledProgram Prog = compile(corpus::german(2));
  auto run = [&](uint64_t CapBytes) {
    CheckOptions Opts;
    Opts.DelayBound = 3;
    Opts.StopOnFirstError = false;
    Opts.Visited = VisitedMode::Compact;
    Opts.VisitedCapBytes = CapBytes;
    return check(Prog, Opts);
  };
  CheckResult Big = run(96ull * 1024 * 1024);
  CheckResult Small = run(4ull * 1024 * 1024);
  EXPECT_LT(Small.Stats.VisitedBytes, Big.Stats.VisitedBytes);
#ifdef __linux__
  // /proc/self/clear_refs resets VmHWM at run start; the small-cap run
  // must therefore not inherit the big run's peak. Guarded: containers
  // can mount /proc read-only, in which case the counter is best-effort
  // (monotone) and the assertion would be vacuous anyway.
  if (Big.Stats.PeakRssBytes > 0 && Small.Stats.PeakRssBytes > 0 &&
      Small.Stats.PeakRssBytes != Big.Stats.PeakRssBytes) {
    EXPECT_LT(Small.Stats.PeakRssBytes, Big.Stats.PeakRssBytes);
  }
#endif
}
