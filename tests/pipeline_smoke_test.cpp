//===- tests/pipeline_smoke_test.cpp - End-to-end smoke tests --------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "frontend/Frontend.h"
#include "runtime/Executor.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

const char *PingPong = R"(
event Ping(id);
event Pong;

main machine Client {
  var Server: id;
  var Count: int;
  state Init {
    entry {
      Count = 0;
      Server = new Echo();
      send(Server, Ping, this);
    }
    on Pong goto Done;
  }
  state Done {
    entry { Count = Count + 1; assert(Count == 1); }
    on Pong goto Done;
  }
}

machine Echo {
  state Waiting {
    on Ping do Reply;
  }
  action Reply {
    send(arg, Pong);
  }
}
)";

TEST(PipelineSmoke, CompilesPingPong) {
  CompileResult R = compileString(PingPong);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_EQ(R.Program->Machines.size(), 2u);
  EXPECT_EQ(R.Program->Events.size(), 2u);
  EXPECT_EQ(R.Program->MainMachine, 0);
}

TEST(PipelineSmoke, RunsPingPongToQuiescence) {
  CompileResult R = compileString(PingPong);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  Executor Exec(*R.Program);
  Config Cfg = Exec.makeInitialConfig();

  // Round-robin the machines until nothing is enabled.
  bool Progress = true;
  int Guard = 0;
  while (Progress && ++Guard < 1000) {
    Progress = false;
    for (int32_t Id = 0; Id < static_cast<int32_t>(Cfg.Machines.size());
         ++Id) {
      if (!Exec.isEnabled(Cfg, Id))
        continue;
      Progress = true;
      auto SR = Exec.step(Cfg, Id);
      ASSERT_NE(SR.Outcome, Executor::StepOutcome::Error)
          << Cfg.ErrorMessage;
    }
  }
  ASSERT_LT(Guard, 1000) << "did not quiesce";
  EXPECT_FALSE(Cfg.hasError());
  // Client should be in Done with Count == 1.
  EXPECT_EQ(Cfg.Machines[0]->Vars[1], Value::integer(1));
}

TEST(PipelineSmoke, CheckerFindsNoErrorInPingPong) {
  CompileResult R = compileString(PingPong);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  CheckOptions Opts;
  Opts.DelayBound = 2;
  CheckResult CR = check(*R.Program, Opts);
  EXPECT_FALSE(CR.ErrorFound) << CR.ErrorMessage;
  EXPECT_GT(CR.Stats.DistinctStates, 0u);
  EXPECT_TRUE(CR.Stats.Exhausted);
}

TEST(PipelineSmoke, CheckerFindsUnhandledEvent) {
  // Done does not handle Pong; Echo replies once per Ping, but the buggy
  // client pings twice.
  const char *Buggy = R"(
event Ping(id);
event Pong;

main machine Client {
  var Server: id;
  state Init {
    entry {
      Server = new Echo();
      send(Server, Ping, this);
    }
    on Pong goto Done;
  }
  state Done {
    entry { send(Server, Ping, this); }
  }
}

machine Echo {
  state Waiting {
    on Ping do Reply;
  }
  action Reply {
    send(arg, Pong);
  }
}
)";
  CompileResult R = compileString(Buggy);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  CheckOptions Opts;
  Opts.DelayBound = 0;
  CheckResult CR = check(*R.Program, Opts);
  ASSERT_TRUE(CR.ErrorFound);
  EXPECT_EQ(CR.Error, ErrorKind::UnhandledEvent);
  EXPECT_FALSE(CR.Trace.empty());
}

} // namespace
