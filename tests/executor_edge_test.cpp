//===- tests/executor_edge_test.cpp - Semantics corner cases ----------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Corner cases the formal rules leave implementation-defined or that
// combine several rules; each test pins the documented behaviour.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "runtime/Executor.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

CompiledProgram compile(const std::string &Src) {
  CompileResult R = compileString(Src);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

void runAll(const Executor &Exec, Config &Cfg, int MaxIters = 10000) {
  for (int I = 0; I != MaxIters; ++I) {
    bool Progress = false;
    for (int32_t Id = 0; Id < static_cast<int32_t>(Cfg.Machines.size());
         ++Id) {
      if (Cfg.hasError() || !Exec.isEnabled(Cfg, Id))
        continue;
      Progress = true;
      Exec.step(Cfg, Id);
    }
    if (!Progress)
      return;
  }
  FAIL() << "did not quiesce";
}

std::string stateName(const CompiledProgram &Prog, const Config &Cfg,
                      int32_t Id) {
  const MachineState &M = *Cfg.Machines[Id];
  if (!M.Alive || M.Frames.empty())
    return "";
  return Prog.Machines[M.MachineIndex].States[M.Frames.back().State].Name;
}

// "The rules in Figure 5 assume that Exit(m, n) itself does not contain
// any explicit raise or return; however, our implementation allows
// that." Documented choice: the pending transition still fires, then
// the exit's raise dispatches in the *target* state.
TEST(ExitStatements, RaiseInExitDispatchesAfterTheTransition) {
  CompiledProgram Prog = compile(R"(
event Go, Bonus;
main machine M {
  var Trace: int;
  state S {
    entry { Trace = 1; raise(Go); }
    exit { Trace = Trace * 10 + 2; raise(Bonus); }
    on Go goto T;
  }
  state T {
    entry { Trace = Trace * 10 + 3; }
    on Bonus goto U;
  }
  state U { entry { Trace = Trace * 10 + 4; } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  ASSERT_FALSE(Cfg.hasError()) << Cfg.ErrorMessage;
  // entry S (1), exit raises Bonus (2), transition to T runs entry (3),
  // Bonus dispatches in T -> U (4).
  EXPECT_EQ(Cfg.Machines[0]->Vars[0], Value::integer(1234));
  EXPECT_EQ(stateName(Prog, Cfg, 0), "U");
}

TEST(ExitStatements, ReturnInsideExitDoesNotRecurse) {
  // A `return` in an exit body must not re-run the exit.
  CompiledProgram Prog = compile(R"(
event In, Out;
main machine M {
  var ExitCount: int;
  state S {
    entry { ExitCount = 0; }
    on In push Sub;
    on Out goto Done;
  }
  state Sub {
    entry { return; }
    exit { ExitCount = ExitCount + 1; return; }
  }
  state Done { entry { } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("In"));
  Exec.step(Cfg, 0);
  ASSERT_FALSE(Cfg.hasError()) << Cfg.ErrorMessage;
  EXPECT_EQ(Cfg.Machines[0]->Vars[0], Value::integer(1));
  EXPECT_EQ(Cfg.Machines[0]->Frames.size(), 1u);
}

TEST(Forwarding, MsgAndArgForwardThroughSends) {
  // A relay forwards whatever it receives using msg/arg — the dynamic
  // event value, not a literal.
  CompiledProgram Prog = compile(R"(
event A(int);
event B(int);
main machine Source {
  var R: id;
  var Sink: id;
  state S {
    entry {
      Sink = new Catcher();
      R = new Relay(Out = Sink);
      send(R, A, 11);
      send(R, B, 22);
    }
  }
}
machine Relay {
  var Out: id;
  state W {
    entry { }
    on A do Fwd;
    on B do Fwd;
  }
  action Fwd { send(Out, msg, arg); }
}
machine Catcher {
  var GotA: int;
  var GotB: int;
  state W {
    entry { }
    on A do TakeA;
    on B do TakeB;
  }
  action TakeA { GotA = arg; }
  action TakeB { GotB = arg; }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  runAll(Exec, Cfg);
  ASSERT_FALSE(Cfg.hasError()) << Cfg.ErrorMessage;
  int Catcher = 1; // Created first by Source.
  EXPECT_EQ(Cfg.Machines[Catcher]->Vars[0], Value::integer(11));
  EXPECT_EQ(Cfg.Machines[Catcher]->Vars[1], Value::integer(22));
}

TEST(QueueDedup, DifferentPayloadsAreDistinctEntries) {
  CompiledProgram Prog = compile(R"(
event Tick(int);
main machine M {
  var Sum: int;
  state S {
    entry { Sum = 0; }
    on Tick do Add;
  }
  action Add { Sum = Sum + arg; }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  // Same event, three distinct payloads + one duplicate.
  Exec.enqueueEvent(Cfg, 0, 0, Value::integer(1));
  Exec.enqueueEvent(Cfg, 0, 0, Value::integer(2));
  Exec.enqueueEvent(Cfg, 0, 0, Value::integer(1)); // deduped
  Exec.enqueueEvent(Cfg, 0, 0, Value::integer(3));
  EXPECT_EQ(Cfg.Machines[0]->Queue.size(), 3u);
  Exec.step(Cfg, 0);
  EXPECT_EQ(Cfg.Machines[0]->Vars[0], Value::integer(6));
}

TEST(QueueDedup, RequeueAfterDequeueIsAllowed) {
  // ⊎ only suppresses duplicates while the original is still queued.
  CompiledProgram Prog = compile(R"(
event Tick;
main machine M {
  var Count: int;
  state S {
    entry { Count = 0; }
    on Tick do Add;
  }
  action Add { Count = Count + 1; }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  for (int I = 0; I != 3; ++I) {
    Exec.enqueueEvent(Cfg, 0, 0);
    Exec.step(Cfg, 0); // Consume before re-sending.
  }
  EXPECT_EQ(Cfg.Machines[0]->Vars[0], Value::integer(3));
}

TEST(DeferredDelivery, OrderAmongDeferredEventsIsPreserved) {
  CompiledProgram Prog = compile(R"(
event A(int);
event Open;
main machine M {
  var First: int;
  var Second: int;
  state Closed {
    defer A;
    entry { }
    on Open goto OpenState;
  }
  state OpenState {
    entry { }
    on A do Take;
  }
  action Take {
    if (First == 0) {
      First = arg;
    } else {
      Second = arg;
    }
  }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  // First must be initialized before comparisons; do it via direct
  // variable poke (the host could do the same through initializers).
  Cfg.mutableMachine(0).Vars[0] = Value::integer(0);
  Cfg.mutableMachine(0).Vars[1] = Value::integer(0);
  Exec.step(Cfg, 0);
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("A"), Value::integer(7));
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("A"), Value::integer(9));
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("Open"));
  Exec.step(Cfg, 0);
  ASSERT_FALSE(Cfg.hasError()) << Cfg.ErrorMessage;
  EXPECT_EQ(Cfg.Machines[0]->Vars[0], Value::integer(7));
  EXPECT_EQ(Cfg.Machines[0]->Vars[1], Value::integer(9));
}

TEST(CallTransitions, NestedPushesStackThreeDeep) {
  CompiledProgram Prog = compile(R"(
event Down, Up;
main machine M {
  var Depth: int;
  state L0 {
    entry { Depth = 0; }
    on Down push L1;
    on Up goto L0;
  }
  state L1 {
    entry { Depth = Depth + 1; }
    on Down push L2;
  }
  state L2 {
    entry { Depth = Depth + 1; }
  }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("Down"));
  Exec.step(Cfg, 0);
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("Down"));
  Exec.step(Cfg, 0);
  EXPECT_EQ(Cfg.Machines[0]->Frames.size(), 3u);
  EXPECT_EQ(Cfg.Machines[0]->Vars[0], Value::integer(2));
  // Up is unhandled in L2 and L1; it pops both (POP1) and steps L0.
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("Up"));
  Exec.step(Cfg, 0);
  ASSERT_FALSE(Cfg.hasError()) << Cfg.ErrorMessage;
  EXPECT_EQ(Cfg.Machines[0]->Frames.size(), 1u);
  EXPECT_EQ(stateName(Prog, Cfg, 0), "L0");
}

TEST(Divergence, WellFoundedLoopsComplete) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var I: int;
  var Sum: int;
  state S {
    entry {
      I = 0;
      Sum = 0;
      while (I < 100) {
        Sum = Sum + I;
        I = I + 1;
      }
    }
  }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  auto R = Exec.step(Cfg, 0);
  EXPECT_EQ(R.Outcome, Executor::StepOutcome::Blocked);
  EXPECT_EQ(Cfg.Machines[0]->Vars[1], Value::integer(4950));
}

TEST(SelfSend, MachineCanMessageItself) {
  CompiledProgram Prog = compile(R"(
event Step(int);
main machine M {
  var N: int;
  state S {
    entry {
      N = 0;
      send(this, Step, 3);
    }
    on Step do Run;
  }
  action Run {
    N = N + 1;
    if (arg > 1) {
      send(this, Step, arg - 1);
    }
  }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  while (Exec.isEnabled(Cfg, 0) && !Cfg.hasError())
    Exec.step(Cfg, 0);
  ASSERT_FALSE(Cfg.hasError()) << Cfg.ErrorMessage;
  EXPECT_EQ(Cfg.Machines[0]->Vars[0], Value::integer(3));
}

} // namespace
