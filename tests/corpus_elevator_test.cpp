//===- tests/corpus_elevator_test.cpp - Elevator & Switch-LED verification -===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

CompiledProgram compileOrDie(const std::string &Src) {
  CompileResult R = compileString(Src);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

CheckResult checkAt(const CompiledProgram &Prog, int DelayBound,
                    int DepthBound = 100000) {
  CheckOptions Opts;
  Opts.DelayBound = DelayBound;
  Opts.DepthBound = DepthBound;
  return check(Prog, Opts);
}

class ElevatorDelayBound : public ::testing::TestWithParam<int> {};

TEST_P(ElevatorDelayBound, VerifiesClean) {
  CompiledProgram Prog = compileOrDie(corpus::elevator());
  CheckResult R = checkAt(Prog, GetParam());
  EXPECT_FALSE(R.ErrorFound)
      << errorKindName(R.Error) << ": " << R.ErrorMessage << "\ntrace:\n"
      << [&] {
           std::string T;
           for (const auto &L : R.Trace)
             T += L + "\n";
           return T;
         }();
  EXPECT_TRUE(R.Stats.Exhausted);
  EXPECT_GT(R.Stats.DistinctStates, 10u);
}

INSTANTIATE_TEST_SUITE_P(DelayBounds, ElevatorDelayBound,
                         ::testing::Values(0, 1, 2, 3));

TEST(ElevatorCorpus, MissingDeferCloseDoorIsCaught) {
  CompiledProgram Prog =
      compileOrDie(corpus::elevator(corpus::ElevatorBug::MissingDeferCloseDoor));
  // The paper reports bugs found within a delay bound of 2.
  bool Found = false;
  for (int D = 0; D <= 2 && !Found; ++D) {
    CheckResult R = checkAt(Prog, D);
    Found = R.ErrorFound && R.Error == ErrorKind::UnhandledEvent;
  }
  EXPECT_TRUE(Found);
}

TEST(ElevatorCorpus, MissingDeferTimerFiredIsCaught) {
  CompiledProgram Prog =
      compileOrDie(corpus::elevator(corpus::ElevatorBug::MissingDeferTimerFired));
  bool Found = false;
  for (int D = 0; D <= 2 && !Found; ++D) {
    CheckResult R = checkAt(Prog, D);
    Found = R.ErrorFound && R.Error == ErrorKind::UnhandledEvent;
  }
  EXPECT_TRUE(Found);
}

class SwitchLedDelayBound : public ::testing::TestWithParam<int> {};

TEST_P(SwitchLedDelayBound, VerifiesClean) {
  CompiledProgram Prog = compileOrDie(corpus::switchLed());
  CheckResult R = checkAt(Prog, GetParam());
  EXPECT_FALSE(R.ErrorFound)
      << errorKindName(R.Error) << ": " << R.ErrorMessage;
  EXPECT_TRUE(R.Stats.Exhausted);
}

INSTANTIATE_TEST_SUITE_P(DelayBounds, SwitchLedDelayBound,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(SwitchLedCorpus, MissingDeferSwitchIsCaught) {
  CompiledProgram Prog =
      compileOrDie(corpus::switchLed(corpus::SwitchLedBug::MissingDeferSwitch));
  bool Found = false;
  for (int D = 0; D <= 2 && !Found; ++D) {
    CheckResult R = checkAt(Prog, D);
    Found = R.ErrorFound && R.Error == ErrorKind::UnhandledEvent;
  }
  EXPECT_TRUE(Found);
}

TEST(SwitchLedCorpus, WrongRetryAssertIsCaught) {
  CompiledProgram Prog =
      compileOrDie(corpus::switchLed(corpus::SwitchLedBug::WrongRetryAssert));
  CheckResult R = checkAt(Prog, 0);
  ASSERT_TRUE(R.ErrorFound);
  EXPECT_EQ(R.Error, ErrorKind::AssertFailed);
}

TEST(ElevatorCorpus, StateCountGrowsWithDelayBound) {
  CompiledProgram Prog = compileOrDie(corpus::elevator());
  uint64_t Prev = 0;
  for (int D = 0; D <= 3; ++D) {
    CheckResult R = checkAt(Prog, D);
    EXPECT_GE(R.Stats.DistinctStates, Prev)
        << "state count must be monotone in the delay bound";
    Prev = R.Stats.DistinctStates;
  }
}

} // namespace
