//===- tests/smoke_bench_json.cpp - --json schema smoke test ----------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Runs a bench binary (argv[1], wired via $<TARGET_FILE:...> in CMake)
// with `--quick --json -` and validates that stdout is a schema-valid
// bench report (obs/BenchJson.h) whose stats carry the checker keys a
// perf trajectory consumes. This is the consumer the acceptance
// criterion asks for: the schema cannot drift without failing CI.
//
// Host benches (bench_host_throughput) record free-form host stats, not
// checker stats; pass --free-stats as the first argument to validate
// the envelope without requiring the checker keys.
//
//===----------------------------------------------------------------------===//

#include "obs/BenchJson.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

int main(int argc, char **argv) {
  bool RequireCheckerStats = true;
  int First = 1;
  if (argc > 1 && !std::strcmp(argv[1], "--free-stats")) {
    RequireCheckerStats = false;
    First = 2;
  }
  if (argc < First + 1) {
    std::fprintf(stderr,
                 "usage: %s [--free-stats] <bench-binary> [extra args]\n",
                 argv[0]);
    return 2;
  }
  std::string Cmd = argv[First];
  for (int I = First + 1; I < argc; ++I)
    Cmd += std::string(" ") + argv[I];
  Cmd += " --quick --json - 2>/dev/null";

  FILE *Pipe = popen(Cmd.c_str(), "r");
  if (!Pipe) {
    std::fprintf(stderr, "FAIL: cannot run: %s\n", Cmd.c_str());
    return 1;
  }
  std::string Output;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Output.append(Buf, N);
  int Status = pclose(Pipe);
  if (Status != 0) {
    std::fprintf(stderr, "FAIL: bench exited with status %d\n", Status);
    return 1;
  }

  p::obs::Json Report;
  std::string Err;
  if (!p::obs::Json::parse(Output, Report, &Err)) {
    std::fprintf(stderr, "FAIL: stdout is not valid JSON: %s\n",
                 Err.c_str());
    std::fprintf(stderr, "--- first 500 bytes ---\n%.500s\n",
                 Output.c_str());
    return 1;
  }
  std::string Why;
  if (!p::obs::validateBenchReport(Report, Why, RequireCheckerStats)) {
    std::fprintf(stderr, "FAIL: schema violation: %s\n", Why.c_str());
    return 1;
  }

  std::printf("OK: %zu schema-valid run records from %s\n", Report.size(),
              argv[First]);
  return 0;
}
