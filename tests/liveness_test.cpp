//===- tests/liveness_test.cpp - Section 3.2 liveness checking --------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Liveness.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

CompiledProgram compile(const std::string &Src) {
  CompileResult R = compileString(Src);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

/// A machine that defers Nag in every state while consuming an endless
/// stream of Ticks: Nag can be deferred forever.
const char *Starver = R"(
event Nag;
event Tick;
main ghost machine Env {
  var M: id;
  state Boot {
    entry {
      M = new Sloth();
      send(M, Nag);
      raise(Tick);
    }
    on Tick goto Loop;
  }
  state Loop {
    entry {
      send(M, Tick);
      raise(Tick);
    }
    on Tick goto Loop;
  }
}
machine Sloth {
  state S {
    defer Nag;
    entry { }
    on Tick goto S;
  }
}
)";

TEST(Liveness, DetectsEternalDeferral) {
  CompiledProgram Prog = compile(Starver);
  LivenessOptions Opts;
  Opts.DelayBound = 0;
  LivenessResult R = checkLiveness(Prog, Opts);
  ASSERT_TRUE(R.ViolationFound) << "nodes=" << R.NodesExplored;
  EXPECT_NE(R.Message.find("Nag"), std::string::npos) << R.Message;
  EXPECT_FALSE(R.CycleTrace.empty());
}

TEST(Liveness, PostponeAnnotationExcusesTheDeferral) {
  // Same program, but the state declares Nag postponed (Section 3.2's
  // refinement for prioritized events).
  std::string Src = Starver;
  size_t Pos = Src.find("defer Nag;");
  ASSERT_NE(Pos, std::string::npos);
  Src.insert(Pos, "postpone Nag;\n    ");
  CompiledProgram Prog = compile(Src);
  LivenessOptions Opts;
  Opts.DelayBound = 0;
  LivenessResult R = checkLiveness(Prog, Opts);
  EXPECT_FALSE(R.ViolationFound) << R.Message;
}

TEST(Liveness, ConsumedEventsAreNotStarved) {
  // The receiver consumes every Tick it is sent; nothing starves.
  CompiledProgram Prog = compile(R"(
event Tick;
main ghost machine Env {
  var M: id;
  state Boot {
    entry {
      M = new Eager();
      raise(Tick);
    }
    on Tick goto Loop;
  }
  state Loop {
    entry {
      send(M, Tick);
      raise(Tick);
    }
    on Tick goto Loop;
  }
}
machine Eager {
  state S {
    entry { }
    on Tick do Consume;
  }
  action Consume { skip; }
}
)");
  LivenessOptions Opts;
  Opts.DelayBound = 1;
  LivenessResult R = checkLiveness(Prog, Opts);
  EXPECT_FALSE(R.ViolationFound) << R.Message;
  EXPECT_GT(R.CyclesChecked, 0u) << "the loop must form cycles";
}

TEST(Liveness, ElevatorStarvesCloseDoorWithoutPostpone) {
  // A user hammering OpenDoor keeps the elevator cycling through states
  // that all defer CloseDoor — the close request starves. This is
  // exactly the situation Section 3.2 describes when motivating the
  // `postpone` annotation for prioritized events.
  CompiledProgram Prog = compile(corpus::elevator());
  LivenessOptions Opts;
  Opts.DelayBound = 1;
  Opts.MaxNodes = 300000;
  LivenessResult R = checkLiveness(Prog, Opts);
  ASSERT_TRUE(R.ViolationFound);
  EXPECT_NE(R.Message.find("CloseDoor"), std::string::npos) << R.Message;
}

TEST(Liveness, PostponingDeferredEventsSilencesTheElevator) {
  // The remedy Section 3.2 prescribes: declare the deliberately
  // low-priority deferrals postponed. Mirror every `defer` clause with
  // a `postpone` clause and the starvation report disappears.
  std::string Src = corpus::elevator();
  std::string Annotated;
  size_t Pos = 0;
  while (true) {
    size_t DeferAt = Src.find("defer ", Pos);
    if (DeferAt == std::string::npos) {
      Annotated += Src.substr(Pos);
      break;
    }
    size_t Semi = Src.find(';', DeferAt);
    ASSERT_NE(Semi, std::string::npos);
    Annotated += Src.substr(Pos, Semi + 1 - Pos);
    Annotated += " postpone " +
                 Src.substr(DeferAt + 6, Semi - (DeferAt + 6)) + ";";
    Pos = Semi + 1;
  }
  CompiledProgram Prog = compile(Annotated);
  LivenessOptions Opts;
  Opts.DelayBound = 1;
  Opts.MaxNodes = 300000;
  LivenessResult R = checkLiveness(Prog, Opts);
  EXPECT_FALSE(R.ViolationFound) << R.Message;
  EXPECT_GT(R.CyclesChecked, 0u);
}

TEST(Liveness, UnfairLoopsAreNotViolations) {
  // Two machines; a schedule that starves Consumer entirely is unfair
  // (Consumer is continuously enabled but never scheduled), so the
  // pending event there is not reported.
  CompiledProgram Prog = compile(R"(
event Tick;
event Data;
main ghost machine Producer {
  var C: id;
  state Boot {
    entry {
      C = new Consumer();
      send(C, Data);
      raise(Tick);
    }
    on Tick goto Loop;
  }
  state Loop {
    entry { send(this, Tick); }
    on Tick goto Loop;
  }
}
machine Consumer {
  state S {
    entry { }
    on Data do Use;
  }
  action Use { skip; }
}
)");
  // With one delay, Consumer (holding a deliverable Data) sinks to the
  // bottom of the scheduler stack while Producer self-sends forever:
  // that loop never schedules Consumer although it is continuously
  // enabled, so the fairness premise must reject the cycle.
  LivenessOptions Opts;
  Opts.DelayBound = 1;
  LivenessResult R = checkLiveness(Prog, Opts);
  EXPECT_FALSE(R.ViolationFound) << R.Message;
  EXPECT_GT(R.CyclesChecked, 0u);
}

} // namespace
