//===- tests/parser_test.cpp - Parser unit tests ----------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

Program parse(const std::string &Src, DiagnosticEngine &Diags) {
  Lexer L(Src);
  Parser P(L.lexAll(), Diags);
  return P.parseProgram();
}

Program parseOk(const std::string &Src) {
  DiagnosticEngine Diags;
  Program Prog = parse(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Prog;
}

ExprPtr parseExpr(const std::string &Src) {
  DiagnosticEngine Diags;
  Lexer L(Src);
  Parser P(L.lexAll(), Diags);
  ExprPtr E = P.parseStandaloneExpr();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return E;
}

StmtPtr parseStmt(const std::string &Src) {
  DiagnosticEngine Diags;
  Lexer L(Src);
  Parser P(L.lexAll(), Diags);
  StmtPtr S = P.parseStandaloneStmt();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return S;
}

TEST(Parser, EventDeclarations) {
  Program Prog = parseOk("event A; event B(int), C(id); ghost event G;");
  ASSERT_EQ(Prog.Events.size(), 4u);
  EXPECT_EQ(Prog.Events[0].Name, "A");
  EXPECT_EQ(Prog.Events[0].PayloadType, TypeKind::Void);
  EXPECT_EQ(Prog.Events[1].PayloadType, TypeKind::Int);
  EXPECT_EQ(Prog.Events[2].PayloadType, TypeKind::Id);
  EXPECT_TRUE(Prog.Events[3].Ghost);
}

TEST(Parser, MachineFlags) {
  Program Prog = parseOk(R"(
machine A { state S { entry { } } }
ghost machine B { state S { entry { } } }
main ghost machine C { state S { entry { } } }
ghost main machine D { state S { entry { } } }
)");
  ASSERT_EQ(Prog.Machines.size(), 4u);
  EXPECT_FALSE(Prog.Machines[0].Ghost);
  EXPECT_TRUE(Prog.Machines[1].Ghost);
  EXPECT_TRUE(Prog.Machines[2].Ghost);
  EXPECT_TRUE(Prog.Machines[2].Main);
  EXPECT_TRUE(Prog.Machines[3].Ghost);
  EXPECT_TRUE(Prog.Machines[3].Main);
}

TEST(Parser, StateItems) {
  Program Prog = parseOk(R"(
event A; event B; event C;
machine M {
  state S {
    defer A, B;
    postpone C;
    entry { skip; }
    exit { skip; }
    on A goto T;
    on B push T;
    on C do Act;
  }
  state T { entry { } }
  action Act { skip; }
}
)");
  const StateDecl &S = Prog.Machines[0].States[0];
  EXPECT_EQ(S.Deferred, (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(S.Postponed, (std::vector<std::string>{"C"}));
  ASSERT_EQ(S.Handlers.size(), 3u);
  EXPECT_EQ(S.Handlers[0].Kind, HandlerKind::Step);
  EXPECT_EQ(S.Handlers[1].Kind, HandlerKind::Call);
  EXPECT_EQ(S.Handlers[2].Kind, HandlerKind::Do);
  EXPECT_EQ(S.Handlers[2].Target, "Act");
}

TEST(Parser, VarDeclarations) {
  Program Prog = parseOk(R"(
machine M {
  var A: int, B: bool;
  ghost var G: id;
  var E: event;
  state S { entry { } }
}
)");
  const MachineDecl &M = Prog.Machines[0];
  ASSERT_EQ(M.Vars.size(), 4u);
  EXPECT_EQ(M.Vars[0].Type, TypeKind::Int);
  EXPECT_EQ(M.Vars[1].Type, TypeKind::Bool);
  EXPECT_TRUE(M.Vars[2].Ghost);
  EXPECT_EQ(M.Vars[2].Type, TypeKind::Id);
  EXPECT_EQ(M.Vars[3].Type, TypeKind::Event);
}

TEST(Parser, ForeignFunDeclarations) {
  Program Prog = parseOk(R"(
machine M {
  foreign fun F(a: int, b: bool): int;
  foreign fun G(): void model { skip; }
  state S { entry { } }
}
)");
  const MachineDecl &M = Prog.Machines[0];
  ASSERT_EQ(M.Funs.size(), 2u);
  EXPECT_EQ(M.Funs[0].Params.size(), 2u);
  EXPECT_EQ(M.Funs[0].ReturnType, TypeKind::Int);
  EXPECT_EQ(M.Funs[0].ModelBody, nullptr);
  EXPECT_NE(M.Funs[1].ModelBody, nullptr);
}

TEST(Parser, ExpressionPrecedence) {
  // * binds tighter than +, + tighter than <, < tighter than &&.
  ExprPtr E = parseExpr("a + b * c < d && e");
  EXPECT_EQ(toString(*E), "(((a + (b * c)) < d) && e)");
}

TEST(Parser, UnaryOperators) {
  EXPECT_EQ(toString(*parseExpr("!a")), "!(a)");
  EXPECT_EQ(toString(*parseExpr("-a + b")), "(-(a) + b)");
  EXPECT_EQ(toString(*parseExpr("!!a")), "!(!(a))");
}

TEST(Parser, NondetStar) {
  // `*` in expression-head position is nondet; infix is multiplication.
  ExprPtr E = parseExpr("a * b");
  EXPECT_EQ(toString(*E), "(a * b)");
  DiagnosticEngine Diags;
  Lexer L("*");
  Parser P(L.lexAll(), Diags);
  ExprPtr N = P.parseStandaloneExpr();
  EXPECT_EQ(N->getKind(), Expr::Kind::Nondet);
}

TEST(Parser, SpecialVariables) {
  EXPECT_EQ(parseExpr("this")->getKind(), Expr::Kind::This);
  EXPECT_EQ(parseExpr("msg")->getKind(), Expr::Kind::Msg);
  EXPECT_EQ(parseExpr("arg")->getKind(), Expr::Kind::Arg);
  EXPECT_EQ(parseExpr("null")->getKind(), Expr::Kind::NullLit);
}

TEST(Parser, EventLiteralsResolveAgainstDeclaredEvents) {
  Program Prog = parseOk(R"(
event Known;
main machine M {
  var X: event;
  state S { entry { X = Known; } }
}
)");
  const auto &Entry =
      *static_cast<BlockStmt *>(Prog.Machines[0].States[0].Entry.get());
  const auto &Assign = *static_cast<AssignStmt *>(Entry.Stmts[0].get());
  EXPECT_EQ(Assign.Value->getKind(), Expr::Kind::EventLit);
}

TEST(Parser, SendAndRaiseStatements) {
  StmtPtr S1 = parseStmt("send(t, e, 5);");
  EXPECT_EQ(S1->getKind(), Stmt::Kind::Send);
  StmtPtr S2 = parseStmt("send(t, e);");
  EXPECT_EQ(static_cast<SendStmt *>(S2.get())->Payload, nullptr);
  StmtPtr S3 = parseStmt("raise(e, 1 + 2);");
  EXPECT_EQ(S3->getKind(), Stmt::Kind::Raise);
}

TEST(Parser, NewStatementForms) {
  StmtPtr S1 = parseStmt("x = new M(a = 1, b = true);");
  const auto &N1 = *static_cast<NewStmt *>(S1.get());
  EXPECT_EQ(N1.Target, "x");
  EXPECT_EQ(N1.Inits.size(), 2u);
  StmtPtr S2 = parseStmt("new M();");
  EXPECT_TRUE(static_cast<NewStmt *>(S2.get())->Target.empty());
}

TEST(Parser, ControlFlowStatements) {
  StmtPtr S = parseStmt("if (a) { x = 1; } else { while (b) { skip; } }");
  const auto &If = *static_cast<IfStmt *>(S.get());
  ASSERT_NE(If.Else, nullptr);
}

TEST(Parser, DanglingElseBindsToInnermostIf) {
  StmtPtr S = parseStmt("if (a) if (b) skip; else x = 1;");
  const auto &Outer = *static_cast<IfStmt *>(S.get());
  EXPECT_EQ(Outer.Else, nullptr);
  const auto &Inner = *static_cast<IfStmt *>(Outer.Then.get());
  EXPECT_NE(Inner.Else, nullptr);
}

TEST(Parser, CallStatement) {
  StmtPtr S = parseStmt("call Sub;");
  EXPECT_EQ(static_cast<CallStateStmt *>(S.get())->StateName, "Sub");
}

TEST(Parser, ForeignCallStatement) {
  StmtPtr S = parseStmt("doIt(1, x);");
  ASSERT_EQ(S->getKind(), Stmt::Kind::ExprStmt);
  const auto &E = *static_cast<ExprStmt *>(S.get());
  EXPECT_EQ(E.E->getKind(), Expr::Kind::ForeignCall);
}

TEST(ParserErrors, MissingSemicolonIsReportedAndRecovered) {
  DiagnosticEngine Diags;
  Program Prog = parse(R"(
event A
event B;
machine M { state S { entry { } } }
)",
                       Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // Recovery still sees machine M.
  EXPECT_EQ(Prog.Machines.size(), 1u);
}

TEST(ParserErrors, BadStateItemRecovers) {
  DiagnosticEngine Diags;
  Program Prog = parse(R"(
event A;
machine M {
  state S {
    banana;
    on A goto T;
  }
  state T { entry { } }
}
)",
                       Diags);
  EXPECT_TRUE(Diags.hasErrors());
  ASSERT_EQ(Prog.Machines.size(), 1u);
  EXPECT_EQ(Prog.Machines[0].States[0].Handlers.size(), 1u);
}

TEST(ParserErrors, MultipleErrorsReported) {
  DiagnosticEngine Diags;
  parse("event ; machine { }", Diags);
  EXPECT_GE(Diags.errorCount(), 2u);
}

TEST(Parser, RoundTripThroughPrinter) {
  const char *Src = R"(event Ping(int);
event Pong;

main machine M {
  var X: int;
  state S {
    defer Pong;
    entry {
      X = 1;
      send(this, Ping, X + 1);
    }
    on Ping goto S;
  }
}
)";
  Program P1 = parseOk(Src);
  std::string Printed = toString(P1);
  Program P2 = parseOk(Printed);
  // Printing is stable: print(parse(print(x))) == print(x).
  EXPECT_EQ(toString(P2), Printed);
}

} // namespace
