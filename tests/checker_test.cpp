//===- tests/checker_test.cpp - Model checker unit tests --------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/StateHash.h"
#include "frontend/Frontend.h"
#include "host/Host.h"

#include <gtest/gtest.h>

#include <set>

using namespace p;

namespace {

CompiledProgram compile(const std::string &Src) {
  CompileResult R = compileString(Src);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

// A bug visible only under a delayed schedule: at d = 0 the causal order
// delivers Second (via the Relay detour) before First reaches the
// Receiver, so the Receiver's initial state never sees First. Delaying
// the relay reverses the arrival order.
const char *ReorderBug = R"(
event Trigger, First, Second;
main ghost machine Sender {
  var R: id;
  var C: id;
  state Go {
    entry {
      R = new Receiver();
      C = new Relay(Out = R);
      send(C, Trigger);
      send(R, First);
    }
  }
}
machine Relay {
  var Out: id;
  state W {
    entry { }
    on Trigger do Fwd;
  }
  action Fwd { send(Out, Second); }
}
machine Receiver {
  state S {
    entry { }
    on Second goto T;
    // First is unhandled here: an error iff First arrives before Second.
  }
  state T {
    entry { }
    on First goto T;
    on Second goto T;
  }
}
)";

TEST(Checker, DelayZeroMissesReorderBug) {
  CompiledProgram Prog = compile(ReorderBug);
  CheckOptions Opts;
  Opts.DelayBound = 0;
  CheckResult R = check(Prog, Opts);
  EXPECT_FALSE(R.ErrorFound) << R.ErrorMessage;
  EXPECT_TRUE(R.Stats.Exhausted);
}

TEST(Checker, DelayOneFindsReorderBug) {
  CompiledProgram Prog = compile(ReorderBug);
  CheckOptions Opts;
  Opts.DelayBound = 1;
  CheckResult R = check(Prog, Opts);
  ASSERT_TRUE(R.ErrorFound);
  EXPECT_EQ(R.Error, ErrorKind::UnhandledEvent);
  EXPECT_EQ(R.DelaysUsedOnError, 1);
  EXPECT_FALSE(R.Trace.empty());
}

TEST(Checker, DepthBoundedAlsoFindsReorderBug) {
  CompiledProgram Prog = compile(ReorderBug);
  CheckOptions Opts;
  Opts.Strategy = SearchStrategy::DepthBounded;
  Opts.DepthBound = 50;
  CheckResult R = check(Prog, Opts);
  ASSERT_TRUE(R.ErrorFound);
  EXPECT_EQ(R.Error, ErrorKind::UnhandledEvent);
}

TEST(Checker, NondetChoicesAreEnumerated) {
  // Only one of the four choice combinations trips the assert.
  CompiledProgram Prog = compile(R"(
main ghost machine G {
  var A: bool;
  var B: bool;
  state S {
    entry {
      A = *;
      B = *;
      assert(!A || !B);
    }
  }
}
)");
  CheckOptions Opts;
  Opts.DelayBound = 0;
  CheckResult R = check(Prog, Opts);
  ASSERT_TRUE(R.ErrorFound);
  EXPECT_EQ(R.Error, ErrorKind::AssertFailed);
}

TEST(Checker, ExactStatesAgreesWithHashing) {
  CompiledProgram Prog = compile(ReorderBug);
  for (int D = 0; D <= 2; ++D) {
    CheckOptions Hashed;
    Hashed.DelayBound = D;
    Hashed.StopOnFirstError = false;
    CheckOptions Exact = Hashed;
    Exact.ExactStates = true;
    CheckResult R1 = check(Prog, Hashed);
    CheckResult R2 = check(Prog, Exact);
    EXPECT_EQ(R1.Stats.DistinctStates, R2.Stats.DistinctStates)
        << "64-bit fingerprints collided at d=" << D;
    EXPECT_EQ(R1.Stats.NodesExplored, R2.Stats.NodesExplored);
  }
}

TEST(Checker, NodeCapMarksSearchIncomplete) {
  CompiledProgram Prog = compile(ReorderBug);
  CheckOptions Opts;
  Opts.DelayBound = 2;
  Opts.MaxNodes = 3;
  Opts.StopOnFirstError = false;
  CheckResult R = check(Prog, Opts);
  EXPECT_FALSE(R.Stats.Exhausted);
  EXPECT_LE(R.Stats.NodesExplored, 3u);
}

TEST(Checker, CollectsTerminalStates) {
  CompiledProgram Prog = compile(R"(
main ghost machine G {
  var A: bool;
  state S { entry { A = *; } }
}
)");
  CheckOptions Opts;
  Opts.CollectTerminals = true;
  CheckResult R = check(Prog, Opts);
  std::set<uint64_t> Terminals(R.TerminalHashes.begin(),
                               R.TerminalHashes.end());
  // A = true and A = false quiesce in different configurations.
  EXPECT_EQ(Terminals.size(), 2u);
}

TEST(Checker, TraceDescribesTheCounterexample) {
  CompiledProgram Prog = compile(ReorderBug);
  CheckOptions Opts;
  Opts.DelayBound = 1;
  CheckResult R = check(Prog, Opts);
  ASSERT_TRUE(R.ErrorFound);
  std::string Whole;
  for (const auto &Line : R.Trace)
    Whole += Line + "\n";
  EXPECT_NE(Whole.find("delay"), std::string::npos) << Whole;
  EXPECT_NE(Whole.find("error"), std::string::npos) << Whole;
  EXPECT_NE(Whole.find("Receiver"), std::string::npos) << Whole;
}

//===----------------------------------------------------------------------===//
// The paper's d = 0 theorem: the runtime's execution is the d = 0
// schedule. Every Host execution (over many RNG seeds for the ghost
// choices) must land in a terminal configuration the d = 0 search saw.
//===----------------------------------------------------------------------===//

class DelayZeroEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DelayZeroEquivalence, HostTerminalIsInDelayZeroSet) {
  const char *Src = R"(
event Work(int), Done(int);
main ghost machine Driver {
  var W: id;
  var N: int;
  var Total: int;
  state S {
    entry {
      Total = 0;
      W = new Worker(Boss = this);
      N = 0;
      if (*) { N = 1; }
      if (*) { N = N + 2; }
      send(W, Work, N);
      raise(Work, 0);
    }
    on Work goto Waiting;
  }
  state Waiting {
    entry { }
    on Done goto Finish;
  }
  state Finish {
    entry { Total = arg; }
  }
}
machine Worker {
  var Boss: id;
  state S {
    entry { }
    on Work do Reply;
  }
  action Reply { send(Boss, Done, arg * 10); }
}
)";
  CompiledProgram Prog = compile(Src);

  CheckOptions Opts;
  Opts.DelayBound = 0;
  Opts.CollectTerminals = true;
  CheckResult R = check(Prog, Opts);
  ASSERT_FALSE(R.ErrorFound) << R.ErrorMessage;
  std::set<uint64_t> DelayZeroTerminals(R.TerminalHashes.begin(),
                                        R.TerminalHashes.end());
  ASSERT_FALSE(DelayZeroTerminals.empty());

  Host H(Prog, /*Seed=*/GetParam());
  int32_t Id = H.createMachine("Driver");
  ASSERT_GE(Id, 0);
  ASSERT_TRUE(H.runToCompletion()) << H.errorMessage();
  uint64_t Terminal = hashConfig(H.config());
  EXPECT_TRUE(DelayZeroTerminals.count(Terminal))
      << "host execution (seed " << GetParam()
      << ") diverged from the d=0 schedule set";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelayZeroEquivalence,
                         ::testing::Range(0, 25));

} // namespace
