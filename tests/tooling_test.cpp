//===- tests/tooling_test.cpp - Coverage, DOT and replay tests --------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/Replay.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "pir/Dot.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

CompiledProgram compile(const std::string &Src) {
  CompileResult R = compileString(Src);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

//===----------------------------------------------------------------------===//
// Coverage
//===----------------------------------------------------------------------===//

TEST(Coverage, ExhaustiveElevatorSearchCoversEverything) {
  CompiledProgram Prog = compile(corpus::elevator());
  CheckOptions Opts;
  Opts.DelayBound = 3;
  Opts.TrackCoverage = true;
  CheckResult R = check(Prog, Opts);
  ASSERT_FALSE(R.ErrorFound) << R.ErrorMessage;

  int Elevator = Prog.findMachine("Elevator");
  ASSERT_GE(Elevator, 0);
  const auto &Cov = R.Coverage.Machines[Elevator];
  EXPECT_EQ(Cov.StatesVisited.size(),
            Prog.Machines[Elevator].States.size())
      << "every Elevator state is reachable:\n"
      << R.Coverage.str(Prog);
  EXPECT_GT(Cov.TransitionsFired.size(), 10u);
}

TEST(Coverage, ReportsUnreachableStates) {
  CompiledProgram Prog = compile(R"(
event Go;
main machine M {
  state S {
    entry { }
    on Go goto T;
  }
  state T { entry { } }
  state Orphan { entry { } }   // no transition ever targets this
}
)");
  CheckOptions Opts;
  Opts.DelayBound = 1;
  Opts.TrackCoverage = true;
  CheckResult R = check(Prog, Opts);
  int M = Prog.findMachine("M");
  EXPECT_FALSE(R.Coverage.Machines[M].StatesVisited.count(2))
      << "Orphan must not be visited";
  std::string Report = R.Coverage.str(Prog);
  EXPECT_NE(Report.find("unreached state: Orphan"), std::string::npos)
      << Report;
  // Go is never sent by anyone either: T stays unreached too.
  EXPECT_NE(Report.find("unreached state: T"), std::string::npos);
}

TEST(Coverage, GhostMachinesAreSkippedWhenNeverCreated) {
  CompiledProgram Prog = compile(corpus::switchLed());
  CheckOptions Opts;
  Opts.DelayBound = 2;
  Opts.TrackCoverage = true;
  CheckResult R = check(Prog, Opts);
  std::string Report = R.Coverage.str(Prog);
  EXPECT_NE(Report.find("SwitchLedDriver: states 7/7"), std::string::npos)
      << Report;
}

//===----------------------------------------------------------------------===//
// DOT rendering
//===----------------------------------------------------------------------===//

TEST(Dot, RendersFigureOneStyleDiagram) {
  CompiledProgram Prog = compile(corpus::elevator());
  int Elevator = Prog.findMachine("Elevator");
  std::string Dot = toDot(Prog, Elevator);

  EXPECT_NE(Dot.find("digraph \"Elevator\""), std::string::npos);
  // Step transition: Init -> DoorClosed on unit.
  EXPECT_NE(Dot.find("\"Init\" -> \"DoorClosed\" [label=\"unit\"]"),
            std::string::npos)
      << Dot;
  // Call transitions render bold (the paper's double edges).
  EXPECT_NE(Dot.find("-> \"StoppingTimer\" [label=\"OpenDoor\", "
                     "style=bold"),
            std::string::npos)
      << Dot;
  // Action bindings render as dashed self-loops.
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos);
  // Deferred sets appear in the node labels.
  EXPECT_NE(Dot.find("defer: CloseDoor"), std::string::npos);
  // The initial-state marker.
  EXPECT_NE(Dot.find("\"__init\" -> \"Init\""), std::string::npos);
}

TEST(Dot, WholeProgramUsesClusters) {
  CompiledProgram Prog = compile(corpus::switchLed());
  std::string Dot = toDot(Prog);
  EXPECT_NE(Dot.find("subgraph \"cluster_SwitchLedDriver\""),
            std::string::npos);
  EXPECT_NE(Dot.find("label=\"ghost machine Led\""), std::string::npos);
  // Node ids are namespaced per machine so clusters cannot collide.
  EXPECT_NE(Dot.find("\"SwitchLedDriver.Off\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Replay
//===----------------------------------------------------------------------===//

TEST(Replay, ReproducesCounterexamples) {
  CompiledProgram Prog =
      compile(corpus::elevator(corpus::ElevatorBug::MissingDeferTimerFired));
  CheckResult Found;
  for (int D = 0; D <= 2 && !Found.ErrorFound; ++D) {
    CheckOptions Opts;
    Opts.DelayBound = D;
    Found = check(Prog, Opts);
  }
  ASSERT_TRUE(Found.ErrorFound);
  ASSERT_FALSE(Found.Schedule.empty());

  ReplayResult R = replaySchedule(Prog, Found.Schedule);
  ASSERT_TRUE(R.ErrorReached) << "the schedule must reproduce the error";
  EXPECT_EQ(R.Error, Found.Error);
  EXPECT_EQ(R.ErrorMessage, Found.ErrorMessage);
}

TEST(Replay, ReproducesNondetDependentErrors) {
  CompiledProgram Prog = compile(R"(
main ghost machine G {
  var A: bool;
  var B: bool;
  state S {
    entry {
      A = *;
      B = *;
      assert(!A || !B);
    }
  }
}
)");
  CheckOptions Opts;
  Opts.DelayBound = 0;
  CheckResult Found = check(Prog, Opts);
  ASSERT_TRUE(Found.ErrorFound);

  ReplayResult R = replaySchedule(Prog, Found.Schedule);
  ASSERT_TRUE(R.ErrorReached);
  EXPECT_EQ(R.Error, ErrorKind::AssertFailed);
  // Both choices were replayed as true.
  EXPECT_EQ(R.Final.Machines[0]->Vars[0], Value::boolean(true));
  EXPECT_EQ(R.Final.Machines[0]->Vars[1], Value::boolean(true));
}

TEST(Replay, CleanScheduleReplaysClean) {
  CompiledProgram Prog = compile(R"(
event Go;
main machine M {
  var X: int;
  state S {
    entry { X = 1; send(this, Go); }
    on Go goto T;
  }
  state T { entry { X = 2; } }
}
)");
  std::vector<SchedDecision> Schedule;
  SchedDecision Run;
  Run.K = SchedDecision::Kind::Run;
  Run.Machine = 0;
  Schedule.push_back(Run); // entry, send to self
  Schedule.push_back(Run); // dequeue Go, step to T
  ReplayResult R = replaySchedule(Prog, Schedule);
  EXPECT_FALSE(R.ErrorReached) << R.ErrorMessage;
  EXPECT_EQ(R.Final.Machines[0]->Vars[0], Value::integer(2));
  EXPECT_EQ(R.Steps.size(), 2u);
}

} // namespace
