//===- tests/perf_visited_test.cpp - Visited-set mode differentials ---------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The perf-labeled suite (ctest -L perf): differential checks across the
// three VisitedModes and the COW/incremental-hash invariants behind
// them. These runs are deliberately heavy — German d=3 is the Figure 7
// row the CI perf smoke job pins — so they live in their own binary.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/StateHash.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "runtime/Executor.h"

#include <gtest/gtest.h>

#include <vector>

using namespace p;

namespace {

CompiledProgram compile(const std::string &Src) {
  CompileResult R = compileString(Src);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

int32_t eventId(const CompiledProgram &Prog, const std::string &Name) {
  for (size_t I = 0; I != Prog.Events.size(); ++I)
    if (Prog.Events[I].Name == Name)
      return static_cast<int32_t>(I);
  ADD_FAILURE() << "no event named " << Name;
  return -1;
}

const char *modeName(VisitedMode M) {
  switch (M) {
  case VisitedMode::Exact:
    return "exact";
  case VisitedMode::Fingerprint:
    return "fingerprint";
  case VisitedMode::Compact:
    return "compact";
  }
  return "?";
}

// German(2) at d=3 is error-free and exhausts, so DistinctStates is the
// deterministic quantity the modes must agree on: Exact is the oracle,
// Fingerprint must match it exactly (collisions aside — a mismatch here
// is a hashing bug, not bad luck, since the count is pinned by CI too),
// and Compact must match whenever its bounded table never saturated.
TEST(VisitedModes, GermanD3AgreesAcrossModesAndWorkers) {
  CompiledProgram Prog = compile(corpus::german(2));
  uint64_t ExactStates = 0, ExactTerminals = 0;
  for (VisitedMode Mode : {VisitedMode::Exact, VisitedMode::Fingerprint,
                           VisitedMode::Compact}) {
    for (int Workers : {1, 4}) {
      CheckOptions Opts;
      Opts.DelayBound = 3;
      Opts.Workers = Workers;
      Opts.Visited = Mode;
      CheckResult R = check(Prog, Opts);
      SCOPED_TRACE(std::string("mode=") + modeName(Mode) +
                   " workers=" + std::to_string(Workers));
      EXPECT_FALSE(R.ErrorFound) << R.ErrorMessage;
      EXPECT_TRUE(R.Stats.Exhausted);
      if (Mode == VisitedMode::Exact && Workers == 1) {
        ExactStates = R.Stats.DistinctStates;
        ExactTerminals = R.Stats.Terminals;
        EXPECT_GT(ExactStates, 0u);
        continue;
      }
      EXPECT_EQ(R.Stats.Terminals, ExactTerminals);
      if (Mode == VisitedMode::Compact) {
        EXPECT_LE(R.Stats.DistinctStates, ExactStates);
        if (!R.Stats.OmissionPossible) {
          EXPECT_EQ(R.Stats.DistinctStates, ExactStates);
        }
      } else {
        EXPECT_FALSE(R.Stats.OmissionPossible);
        EXPECT_EQ(R.Stats.DistinctStates, ExactStates);
      }
    }
  }
}

// The fault-budget differential: the DroppableInvAck bug needs one
// duplicated InvAck to fire, so every mode must deliver the same error
// verdict (and, with StopOnFirstError off and the search exhausted, the
// same deterministic DistinctStates for Exact vs Fingerprint). Compact
// must detect the error no worse than Exact: errors are reported from
// real paths, so a bounded table can only omit *states*, never invent
// or lose a reported counterexample on a path it explores first.
TEST(VisitedModes, DroppableInvAckBudget1AgreesAcrossModes) {
  CompiledProgram Prog =
      compile(corpus::german(2, corpus::GermanBug::DroppableInvAck));
  uint64_t ExactStates = 0;
  for (VisitedMode Mode : {VisitedMode::Exact, VisitedMode::Fingerprint,
                           VisitedMode::Compact}) {
    for (int Workers : {1, 4}) {
      CheckOptions Opts;
      Opts.DelayBound = 0;
      Opts.Workers = Workers;
      Opts.Visited = Mode;
      Opts.StopOnFirstError = false; // Exhaust: DistinctStates comparable.
      Opts.Faults.Budget = 1;
      Opts.Faults.Drop = false;
      Opts.Faults.Duplicate = true;
      Opts.Faults.Events.push_back(eventId(Prog, "InvAck"));
      CheckResult R = check(Prog, Opts);
      SCOPED_TRACE(std::string("mode=") + modeName(Mode) +
                   " workers=" + std::to_string(Workers));
      EXPECT_TRUE(R.ErrorFound);
      EXPECT_EQ(R.Error, ErrorKind::AssertFailed);
      EXPECT_TRUE(R.Stats.Exhausted);
      if (Mode == VisitedMode::Exact && Workers == 1) {
        ExactStates = R.Stats.DistinctStates;
        continue;
      }
      if (Mode == VisitedMode::Compact) {
        if (!R.Stats.OmissionPossible) {
          EXPECT_EQ(R.Stats.DistinctStates, ExactStates);
        }
      } else {
        EXPECT_EQ(R.Stats.DistinctStates, ExactStates);
      }
    }
  }
}

// The VerifyHashes debug path recomputes every fingerprint from the
// full serialization on every node and compares it against the
// incremental (cached) hash; any divergence means a mutation path
// skipped CowMachine::mut(). Running it over a real search exercises
// every Executor mutation site.
TEST(IncrementalHash, VerifyHashesFindsNoMismatchDuringSearch) {
  CompiledProgram Prog = compile(corpus::german(2));
  CheckOptions Opts;
  Opts.DelayBound = 2;
  Opts.VerifyHashes = true;
  CheckResult R = check(Prog, Opts);
  EXPECT_FALSE(R.ErrorFound) << R.ErrorMessage;
  EXPECT_EQ(R.Stats.HashMismatches, 0u);

  Opts.Workers = 4;
  R = check(Prog, Opts);
  EXPECT_EQ(R.Stats.HashMismatches, 0u);
}

// Direct unit check: mutate each semantically relevant component of a
// Config through the COW accessors and confirm the incremental hash
// tracks the cache-oblivious oracle after every mutation.
TEST(IncrementalHash, TracksOracleAcrossComponentMutations) {
  CompiledProgram Prog = compile(R"(
event Ping(int);
main machine M {
  var X: int;
  state S {
    entry { X = 1; }
    on Ping do Take;
  }
  action Take { X = arg; }
}
machine Other {
  var Y: int;
  state T { entry { Y = 7; } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  std::string Scratch;
  auto expectInSync = [&](const char *What) {
    EXPECT_EQ(hashConfig(Cfg, Scratch), hashConfigFresh(Cfg, Scratch))
        << "stale fingerprint cache after: " << What;
  };
  expectInSync("initial config");

  Exec.step(Cfg, 0); // Runs the entry; Vars/Frames change.
  expectInSync("running a slice");
  uint64_t AfterStep = hashConfig(Cfg, Scratch);

  Cfg.mutableMachine(0).Vars[0] = Value::integer(42);
  expectInSync("variable store write");
  EXPECT_NE(hashConfig(Cfg, Scratch), AfterStep);

  Exec.enqueueEvent(Cfg, 0, eventId(Prog, "Ping"), Value::integer(3));
  expectInSync("queue append");

  Exec.createMachine(Cfg, 1); // Machine count + new snapshot.
  expectInSync("machine creation");

  Exec.crashMachine(Cfg, 0);
  expectInSync("machine crash");

  Cfg.Error = ErrorKind::AssertFailed; // Global (non-machine) component.
  Cfg.ErrorMessage = "seeded";
  expectInSync("global error transition");

  // A copy shares snapshots with the original; hashing the copy must
  // reuse the caches, and mutating the copy must not disturb the
  // original's hash.
  Config Copy = Cfg;
  EXPECT_EQ(hashConfig(Copy, Scratch), hashConfig(Cfg, Scratch));
  uint64_t Before = hashConfig(Cfg, Scratch);
  Copy.mutableMachine(1).Vars[0] = Value::integer(9);
  expectInSync("mutating a copy (original)");
  EXPECT_EQ(hashConfig(Cfg, Scratch), Before);
  EXPECT_EQ(hashConfig(Copy, Scratch), hashConfigFresh(Copy, Scratch));
  EXPECT_NE(hashConfig(Copy, Scratch), Before);
}

// Structural-sharing invariants of the COW layer itself: copying a
// Config is O(#machines) pointer bumps (every snapshot shared), and a
// write through mutableMachine unshares exactly the touched machine.
TEST(CowConfig, CopySharesAndMutUnsharesOneMachine) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var X: id;
  state S { entry { X = new W(); X = new W(); } }
}
machine W {
  var Y: int;
  state T { entry { } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0); // Each `new` is a scheduling point: one child...
  Exec.step(Cfg, 0); // ...per slice.
  ASSERT_EQ(Cfg.Machines.size(), 3u);

  Config Copy = Cfg;
  for (size_t I = 0; I != Cfg.Machines.size(); ++I)
    EXPECT_TRUE(Copy.Machines[I].sharesSnapshotWith(Cfg.Machines[I]));

  Copy.mutableMachine(1).Vars[0] = Value::integer(5);
  EXPECT_TRUE(Copy.Machines[0].sharesSnapshotWith(Cfg.Machines[0]));
  EXPECT_FALSE(Copy.Machines[1].sharesSnapshotWith(Cfg.Machines[1]));
  EXPECT_TRUE(Copy.Machines[2].sharesSnapshotWith(Cfg.Machines[2]));
  // Value semantics are preserved: the original never saw the write.
  EXPECT_NE(Cfg.Machines[1]->Vars[0], Value::integer(5));

  // The deep footprint of a snapshot is positive and stable across
  // sharing — both handles report the same bytes for a shared snapshot.
  EXPECT_GT(Cfg.Machines[0].snapshotBytes(), 0u);
  EXPECT_EQ(Cfg.Machines[0].snapshotBytes(), Copy.Machines[0].snapshotBytes());
}

// VisitedBytes is a running insertion counter, so every progress
// snapshot (and the final stats) must be monotone non-decreasing — a
// decrease would mean the accounting forgot entries it still stores.
TEST(VisitedBytes, MonotoneNonDecreasingDuringSearch) {
  CompiledProgram Prog = compile(corpus::german(2));
  for (VisitedMode Mode : {VisitedMode::Exact, VisitedMode::Fingerprint,
                           VisitedMode::Compact}) {
    SCOPED_TRACE(modeName(Mode));
    std::vector<uint64_t> Samples;
    CheckOptions Opts;
    Opts.DelayBound = 2;
    Opts.Visited = Mode;
    Opts.ProgressIntervalSeconds = 0.001;
    Opts.Progress = [&Samples](const CheckStats &S) {
      Samples.push_back(S.VisitedBytes);
    };
    CheckResult R = check(Prog, Opts);
    EXPECT_FALSE(R.ErrorFound) << R.ErrorMessage;
    Samples.push_back(R.Stats.VisitedBytes);
    ASSERT_GT(Samples.size(), 1u);
    EXPECT_GT(R.Stats.VisitedBytes, 0u);
    for (size_t I = 1; I != Samples.size(); ++I)
      EXPECT_GE(Samples[I], Samples[I - 1]) << "sample " << I;
  }
}

} // namespace
