//===- tests/corpus_roundtrip_test.cpp - Corpus-wide properties --------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Properties quantified over the whole corpus: every program parses,
// round-trips through the pretty-printer, compiles in both builds, and
// renders to DOT; machine/transition counts are stable.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "pir/Dot.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

struct CorpusEntry {
  const char *Name;
  std::string Source;
};

std::vector<CorpusEntry> allPrograms() {
  return {
      {"elevator", corpus::elevator()},
      {"elevator-bug1",
       corpus::elevator(corpus::ElevatorBug::MissingDeferCloseDoor)},
      {"elevator-bug2",
       corpus::elevator(corpus::ElevatorBug::MissingDeferTimerFired)},
      {"switchled", corpus::switchLed()},
      {"switchled-bug1",
       corpus::switchLed(corpus::SwitchLedBug::MissingDeferSwitch)},
      {"switchled-bug2",
       corpus::switchLed(corpus::SwitchLedBug::WrongRetryAssert)},
      {"german-1", corpus::german(1)},
      {"german-2", corpus::german(2)},
      {"german-3", corpus::german(3)},
      {"german-bug",
       corpus::german(2, corpus::GermanBug::SkipOwnerInvalidation)},
      {"usbhub-1", corpus::usbHub(1)},
      {"usbhub-2", corpus::usbHub(2)},
      {"usbhub-bug",
       corpus::usbHub(1, corpus::UsbHubBug::SurpriseRemoveDuringReset)},
  };
}

class CorpusProgram : public ::testing::TestWithParam<int> {};

TEST_P(CorpusProgram, CompilesInBothBuilds) {
  CorpusEntry Entry = allPrograms()[GetParam()];
  CompileResult Full = compileString(Entry.Source);
  ASSERT_TRUE(Full.ok()) << Entry.Name << ":\n" << Full.Diags.str();

  LowerOptions Erase;
  Erase.EraseGhosts = true;
  CompileResult Erased = compileString(Entry.Source, Erase);
  ASSERT_TRUE(Erased.ok()) << Entry.Name;
  EXPECT_EQ(Full.Program->Machines.size(), Erased.Program->Machines.size());
}

TEST_P(CorpusProgram, RoundTripsThroughThePrinter) {
  CorpusEntry Entry = allPrograms()[GetParam()];
  DiagnosticEngine D1;
  Program P1 = parseAndAnalyze(Entry.Source, D1);
  ASSERT_FALSE(D1.hasErrors()) << Entry.Name << ":\n" << D1.str();
  std::string Printed = toString(P1);

  DiagnosticEngine D2;
  Program P2 = parseAndAnalyze(Printed, D2);
  ASSERT_FALSE(D2.hasErrors()) << Entry.Name << " (reparsed):\n"
                               << D2.str() << "\n"
                               << Printed;
  EXPECT_EQ(toString(P2), Printed) << Entry.Name;

  // Structure is preserved, not just text: same machine shapes.
  ASSERT_EQ(P1.Machines.size(), P2.Machines.size());
  for (size_t I = 0; I != P1.Machines.size(); ++I) {
    EXPECT_EQ(P1.Machines[I].States.size(), P2.Machines[I].States.size());
    EXPECT_EQ(P1.Machines[I].Vars.size(), P2.Machines[I].Vars.size());
  }
}

TEST_P(CorpusProgram, RendersToDot) {
  CorpusEntry Entry = allPrograms()[GetParam()];
  CompileResult R = compileString(Entry.Source);
  ASSERT_TRUE(R.ok());
  std::string Dot = toDot(*R.Program);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  for (const MachineInfo &M : R.Program->Machines)
    EXPECT_NE(Dot.find("cluster_" + M.Name), std::string::npos)
        << Entry.Name;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, CorpusProgram,
                         ::testing::Range(0, 13),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           std::string Name =
                               allPrograms()[Info.param].Name;
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

} // namespace
