//===- tests/sema_test.cpp - Semantic analysis unit tests -------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the static semantics of Section 3.3: well-formedness, the
// simple type system with ⊥/arg dynamism, determinism of real machines,
// and the ghost-erasure rules (including complete machine-identifier
// separation).
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

/// Returns the diagnostics text for \p Src ("" when clean).
std::string diagnose(const std::string &Src) {
  DiagnosticEngine Diags;
  parseAndAnalyze(Src, Diags);
  return Diags.hasErrors() ? Diags.str() : "";
}

void expectClean(const std::string &Src) {
  std::string D = diagnose(Src);
  EXPECT_EQ(D, "") << D;
}

void expectError(const std::string &Src, const std::string &Needle) {
  std::string D = diagnose(Src);
  EXPECT_NE(D.find(Needle), std::string::npos)
      << "wanted an error mentioning '" << Needle << "', got:\n"
      << D;
}

//===----------------------------------------------------------------------===//
// Well-formedness
//===----------------------------------------------------------------------===//

TEST(SemaWellFormed, DuplicateEventNames) {
  expectError("event A; event A; main machine M { state S { entry { } } }",
              "duplicate event");
}

TEST(SemaWellFormed, DuplicateMachineNames) {
  expectError(R"(
main machine M { state S { entry { } } }
machine M { state S { entry { } } }
)",
              "duplicate machine");
}

TEST(SemaWellFormed, DuplicateStateNames) {
  expectError(R"(
main machine M {
  state S { entry { } }
  state S { entry { } }
}
)",
              "duplicate state");
}

TEST(SemaWellFormed, DuplicateVariables) {
  expectError(R"(
main machine M {
  var X: int;
  var X: bool;
  state S { entry { } }
}
)",
              "duplicate variable");
}

TEST(SemaWellFormed, VariableShadowingEventIsRejected) {
  expectError(R"(
event X;
main machine M {
  var X: int;
  state S { entry { } }
}
)",
              "shadows an event");
}

TEST(SemaWellFormed, ExactlyOneMainMachine) {
  expectError("machine M { state S { entry { } } }", "no 'main' machine");
  expectError(R"(
main machine A { state S { entry { } } }
main machine B { state S { entry { } } }
)",
              "more than one 'main'");
}

TEST(SemaWellFormed, MachineNeedsAtLeastOneState) {
  expectError("main machine M { var X: int; }", "no states");
}

TEST(SemaWellFormed, DeterministicTransitions) {
  expectError(R"(
event A;
main machine M {
  state S {
    entry { }
    on A goto T;
    on A push T;
  }
  state T { entry { } }
}
)",
              "more than one transition");
}

TEST(SemaWellFormed, AtMostOneActionPerEvent) {
  expectError(R"(
event A;
main machine M {
  state S {
    entry { }
    on A do X;
    on A do Y;
  }
  action X { skip; }
  action Y { skip; }
}
)",
              "more than one action");
}

TEST(SemaWellFormed, DeadActionUnderTransitionIsWarning) {
  DiagnosticEngine Diags;
  parseAndAnalyze(R"(
event A;
main machine M {
  state S {
    entry { }
    on A goto T;
    on A do X;
  }
  state T { entry { } }
  action X { skip; }
}
)",
                  Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  bool Warned = false;
  for (const Diagnostic &D : Diags.diagnostics())
    Warned |= D.Severity == DiagSeverity::Warning &&
              D.Message.find("dead") != std::string::npos;
  EXPECT_TRUE(Warned);
}

TEST(SemaWellFormed, UnknownNamesAreReported) {
  expectError(R"(
main machine M {
  state S { entry { } on Mystery goto S; }
}
)",
              "unknown event");
  expectError(R"(
event A;
main machine M {
  state S { entry { } on A goto Nowhere; }
}
)",
              "unknown target state");
  expectError(R"(
event A;
main machine M {
  state S { entry { } on A do Nothing; }
}
)",
              "unknown action");
  expectError(R"(
main machine M {
  state S { entry { X = 1; } }
}
)",
              "unknown variable");
  expectError(R"(
main machine M {
  state S { entry { new Ghostly(); } }
}
)",
              "unknown machine");
  expectError(R"(
main machine M {
  state S { entry { call Nowhere; } }
}
)",
              "unknown state");
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

TEST(SemaTypes, ArithmeticRequiresInts) {
  expectError(R"(
main machine M {
  var B: bool;
  state S { entry { B = B + 1; } }
}
)",
              "requires int operands");
}

TEST(SemaTypes, LogicRequiresBools) {
  expectError(R"(
main machine M {
  var X: int;
  var B: bool;
  state S { entry { B = X && true; } }
}
)",
              "requires bool operands");
}

TEST(SemaTypes, EqualityRequiresMatchingKinds) {
  expectError(R"(
main machine M {
  var X: int;
  var B: bool;
  var C: bool;
  state S { entry { C = X == B; } }
}
)",
              "incompatible types");
}

TEST(SemaTypes, NullAndArgAreDynamic) {
  expectClean(R"(
event E(int);
main machine M {
  var X: int;
  var I: id;
  state S {
    entry { X = 0; I = null; }
    on E do Take;
  }
  action Take { X = arg; }
}
)");
}

TEST(SemaTypes, AssignmentTypeMismatch) {
  expectError(R"(
main machine M {
  var X: int;
  state S { entry { X = true; } }
}
)",
              "cannot assign");
}

TEST(SemaTypes, ConditionsMustBeBool) {
  expectError(R"(
main machine M {
  var X: int;
  state S { entry { X = 0; if (X) { skip; } } }
}
)",
              "if condition");
  expectError(R"(
main machine M {
  var X: int;
  state S { entry { X = 0; while (X) { skip; } } }
}
)",
              "while condition");
  expectError(R"(
main machine M {
  var X: int;
  state S { entry { X = 0; assert(X); } }
}
)",
              "assert condition");
}

TEST(SemaTypes, SendShapes) {
  expectError(R"(
event E;
main machine M {
  var X: int;
  state S { entry { X = 0; send(X, E); } }
}
)",
              "send target");
  expectError(R"(
event E;
main machine M {
  var T: id;
  var X: int;
  state S { entry { X = 0; send(T, X); } }
}
)",
              "send event");
}

TEST(SemaTypes, EventPayloadArity) {
  expectError(R"(
event E(int);
main machine M {
  var T: id;
  state S { entry { send(T, E); } }
}
)",
              "missing its payload");
  expectError(R"(
event E;
main machine M {
  var T: id;
  state S { entry { send(T, E, 3); } }
}
)",
              "declared without one");
  expectError(R"(
event E(int);
main machine M {
  var T: id;
  state S { entry { send(T, E, true); } }
}
)",
              "payload of event");
}

TEST(SemaTypes, ForeignCallArityAndTypes) {
  expectError(R"(
main machine M {
  foreign fun F(a: int): int;
  var X: int;
  state S { entry { X = F(); } }
}
)",
              "expects 1 argument");
  expectError(R"(
main machine M {
  foreign fun F(a: int): int;
  var X: int;
  state S { entry { X = F(true); } }
}
)",
              "argument 1");
}

TEST(SemaTypes, VoidVariablesRejected) {
  expectError(R"(
main machine M {
  var X: void;
  state S { entry { } }
}
)",
              "cannot have type void");
}

//===----------------------------------------------------------------------===//
// Determinism and ghost erasure (Section 3.3)
//===----------------------------------------------------------------------===//

TEST(SemaGhost, NondetOnlyInGhostMachines) {
  expectError(R"(
main machine M {
  var B: bool;
  state S { entry { B = *; } }
}
)",
              "only allowed in ghost machines");
  expectClean(R"(
main ghost machine G {
  var B: bool;
  state S { entry { B = *; } }
}
)");
}

TEST(SemaGhost, NondetAllowedInModelBodies) {
  expectClean(R"(
main machine M {
  ghost var B: bool;
  foreign fun Flip(): bool model { result = *; }
  state S { entry { B = Flip(); } }
}
)");
}

TEST(SemaGhost, RealControlFlowCannotDependOnGhosts) {
  expectError(R"(
main machine M {
  ghost var G: bool;
  var X: int;
  state S { entry { if (G) { X = 1; } } }
}
)",
              "depends on ghost state");
  expectError(R"(
main machine M {
  ghost var G: bool;
  state S { entry { while (G) { skip; } } }
}
)",
              "depends on ghost state");
}

TEST(SemaGhost, RealVariablesCannotHoldGhostValues) {
  expectError(R"(
main machine M {
  ghost var G: int;
  var X: int;
  state S { entry { X = G + 1; } }
}
)",
              "ghost value");
}

TEST(SemaGhost, AssertionsMayReadGhosts) {
  expectClean(R"(
main machine M {
  ghost var G: int;
  state S { entry { assert(G == 0); } }
}
)");
}

TEST(SemaGhost, MachineIdentifierSeparation) {
  expectError(R"(
main machine M {
  ghost var G: id;
  state S { entry { G = this; } }
}
)",
              "completely separated");
  expectError(R"(
ghost machine Spirit { state S { entry { } } }
main machine M {
  var R: id;
  state S { entry { R = new Spirit(); } }
}
)",
              "ghost machine");
  expectError(R"(
machine Real { state S { entry { } } }
main machine M {
  ghost var G: id;
  state S { entry { G = new Real(); } }
}
)",
              "ghost variable");
}

TEST(SemaGhost, GhostEventsStayOutOfRealMachines) {
  expectError(R"(
ghost event GE;
main machine M {
  state S { entry { } on GE goto S; }
}
)",
              "handles ghost event");
  expectError(R"(
ghost event GE;
main machine M {
  state S { defer GE; entry { } }
}
)",
              "defers ghost event");
  expectError(R"(
ghost event GE;
main machine M {
  var T: id;
  state S { entry { send(T, GE); } }
}
)",
              "sent to a real machine");
  expectError(R"(
ghost event GE;
main machine M {
  state S { entry { raise(GE); } }
}
)",
              "raised in a real machine");
}

TEST(SemaGhost, SendsToGhostTargetsAreFine) {
  expectClean(R"(
event Notify(int);
ghost machine Monitor { state S { defer Notify; entry { } } }
main machine M {
  ghost var Mon: id;
  var X: int;
  state S {
    entry {
      X = 1;
      Mon = new Monitor();
      send(Mon, Notify, X);
    }
  }
}
)");
}

TEST(SemaGhost, ModelBodiesMustBeErasable) {
  expectError(R"(
main machine M {
  var X: int;
  foreign fun F(): void model { X = 1; }
  state S { entry { F(); } }
}
)",
              "must be erasable");
  expectError(R"(
main machine M {
  foreign fun F(): void model { new M(); }
  state S { entry { F(); } }
}
)",
              "cannot create machines");
  expectError(R"(
event E;
main machine M {
  var T: id;
  foreign fun F(): void model { send(T, E); }
  state S { entry { F(); } }
}
)",
              "cannot send");
}

TEST(SemaGhost, ForeignCallsRejectGhostArguments) {
  expectError(R"(
main machine M {
  ghost var G: int;
  foreign fun F(a: int): void;
  state S { entry { F(G); } }
}
)",
              "ghost argument");
}

TEST(SemaGhost, GhostMachinesAreUnrestricted) {
  expectClean(R"(
machine Real { state S { entry { } } }
main ghost machine G {
  var R: id;
  var B: bool;
  state S {
    entry {
      B = *;
      if (B) { R = new Real(); }
    }
  }
}
)");
}

//===----------------------------------------------------------------------===//
// Statement placement
//===----------------------------------------------------------------------===//

TEST(SemaPlacement, LeaveOnlyInEntry) {
  expectError(R"(
event A;
main machine M {
  state S { entry { } exit { leave; } }
}
)",
              "only allowed in entry");
  expectError(R"(
event A;
main machine M {
  state S { entry { } on A do Act; }
  action Act { leave; }
}
)",
              "only allowed in entry");
}

} // namespace
