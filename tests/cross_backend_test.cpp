//===- tests/cross_backend_test.cpp - Interpreter vs generated C ------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Differential testing of the two execution backends: the C++
// interpreter host and the generated-C + portable-C-runtime driver must
// implement the same operational semantics. Random event scripts
// (including ones that provoke unhandled-event errors) are fed to both;
// the per-step state traces — and the position and kind of any error —
// must agree exactly.
//
//===----------------------------------------------------------------------===//

#include "codegen/CCodeGen.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "host/Host.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>

#include <unistd.h>

using namespace p;

namespace {

/// Events the environment/host may inject into the erased elevator.
const char *ElevatorInputs[] = {
    "OpenDoor",  "CloseDoor",        "DoorOpened",       "DoorClosed",
    "DoorStopped", "ObjectDetected", "TimerFired",
    "OperationSuccess", "OperationFailure",
};
constexpr int NumElevatorInputs =
    sizeof(ElevatorInputs) / sizeof(ElevatorInputs[0]);

int runCommand(const std::string &Cmd, std::string &Output) {
  FILE *Pipe = popen((Cmd + " 2>&1").c_str(), "r");
  if (!Pipe)
    return -1;
  char Buf[512];
  while (fgets(Buf, sizeof(Buf), Pipe))
    Output += Buf;
  return pclose(Pipe);
}

/// Builds the elevator C driver once; returns the binary path.
class CrossBackend : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    DiagnosticEngine Diags;
    Program Ast = parseAndAnalyze(corpus::elevator(), Diags);
    ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
    CodegenOptions Opts;
    Opts.BaseName = "elevx";
    CodegenResult R = generateC(Ast, Opts);
    ASSERT_TRUE(R.ok());

    // Per-process dir: ctest runs each TEST of this suite as its own
    // process, and concurrent processes must not race on the generated
    // sources or the compiled driver binary.
    Dir = ::testing::TempDir() + "/cross_backend_" +
          std::to_string(static_cast<long>(::getpid()));
    std::string Out;
    runCommand("mkdir -p " + Dir, Out);
    auto write = [](const std::string &Path, const std::string &Text) {
      std::ofstream F(Path);
      F << Text;
    };
    write(Dir + "/elevx.h", R.Header);
    write(Dir + "/elevx.c", R.Source);

    // The scripted driver: argv carries event names; after each event
    // the current state is printed; errors print "ERROR <kind>" and
    // stop, mirroring the Host-side loop below.
    write(Dir + "/script_main.c", R"(
#include "elevx.h"
#include <stdio.h>
#include <string.h>

static int HadError;
static void on_error(PrtRuntime *rt, int mid, const char *kind,
                     const char *msg) {
  (void)rt; (void)mid; (void)msg;
  printf("ERROR %s\n", kind);
  HadError = 1;
}

int main(int argc, char **argv) {
  PrtRuntime *rt = PrtCreateRuntime(&elevx_program, on_error);
  int id = PrtCreateMachine(rt, PMT_Elevator, 0, 0, 0);
  printf("%s\n", PrtCurrentStateName(rt, id));
  for (int i = 1; i < argc && !HadError; ++i) {
    int ev = -1;
    for (int e = 0; e < elevx_program.num_events; ++e)
      if (strcmp(elevx_program.event_names[e], argv[i]) == 0)
        ev = e;
    if (ev < 0)
      return 3;
    PrtAddEvent(rt, id, ev, prt_null());
    if (!HadError)
      printf("%s\n", PrtCurrentStateName(rt, id));
  }
  PrtDestroyRuntime(rt);
  return 0;
}
)");
    std::string Out2;
    int Exit = runCommand("cc -O1 -std=c99 -I" + Dir + " -I" +
                              cRuntimeDir() + " " + Dir + "/elevx.c " +
                              Dir + "/script_main.c " + cRuntimeDir() +
                              "/prt_runtime.c -o " + Dir + "/driver",
                          Out2);
    ASSERT_EQ(Exit, 0) << Out2;

    LowerOptions Erase;
    Erase.EraseGhosts = true;
    CompileResult CR = compileString(corpus::elevator(), Erase);
    ASSERT_TRUE(CR.ok());
    Erased = new CompiledProgram(std::move(*CR.Program));
  }

  static void TearDownTestSuite() {
    delete Erased;
    Erased = nullptr;
  }

  /// Runs \p Script through the C++ interpreter host; same output
  /// format as the C driver.
  static std::string runInterpreter(const std::vector<std::string> &Script) {
    Host H(*Erased);
    int32_t Id = H.createMachine("Elevator");
    std::string Out = H.currentStateName(Id) + "\n";
    for (const std::string &Event : Script) {
      if (!H.addEvent(Id, Event)) {
        Out += std::string("ERROR ") + errorKindName(H.error()) + "\n";
        break;
      }
      Out += H.currentStateName(Id) + "\n";
    }
    return Out;
  }

  static std::string runGeneratedC(const std::vector<std::string> &Script) {
    std::string Cmd = Dir + "/driver";
    for (const std::string &Event : Script)
      Cmd += " " + Event;
    std::string Out;
    runCommand(Cmd, Out);
    return Out;
  }

  static std::string Dir;
  static CompiledProgram *Erased;
};

std::string CrossBackend::Dir;
CompiledProgram *CrossBackend::Erased = nullptr;

TEST_F(CrossBackend, HappyPathTracesAgree) {
  std::vector<std::string> Script = {
      "OpenDoor", "DoorOpened",       "TimerFired", "CloseDoor",
      "OperationSuccess", "DoorClosed", "OpenDoor", "CloseDoor",
      "DoorOpened"};
  EXPECT_EQ(runInterpreter(Script), runGeneratedC(Script));
}

TEST_F(CrossBackend, ErrorPositionsAgree) {
  // OperationSuccess in DoorClosed is unhandled in both backends.
  std::vector<std::string> Script = {"OperationSuccess"};
  std::string I = runInterpreter(Script);
  std::string C = runGeneratedC(Script);
  EXPECT_EQ(I, C);
  EXPECT_NE(I.find("ERROR unhandled-event"), std::string::npos) << I;
}

TEST_F(CrossBackend, RandomScriptsAgree) {
  std::mt19937_64 Rng(20130616); // PLDI'13's first day.
  for (int Trial = 0; Trial != 60; ++Trial) {
    std::vector<std::string> Script;
    int Len = 1 + static_cast<int>(Rng() % 14);
    for (int I = 0; I != Len; ++I)
      Script.push_back(ElevatorInputs[Rng() % NumElevatorInputs]);

    std::string FromInterp = runInterpreter(Script);
    std::string FromC = runGeneratedC(Script);
    std::string Joined;
    for (const std::string &E : Script)
      Joined += E + " ";
    ASSERT_EQ(FromInterp, FromC) << "script: " << Joined;
  }
}

} // namespace
