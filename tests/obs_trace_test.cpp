//===- tests/obs_trace_test.cpp - Tracing subsystem tests -------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The observability contracts: ring-buffer accounting, exporter
// round-trips whose per-kind counts reconcile with CheckStats, the
// tracing-must-not-change-exploration determinism guarantee, multicast
// observer registration, and the progress heartbeat.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "host/Host.h"
#include "obs/BenchJson.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "obs/TraceExport.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace p;

namespace {

CompiledProgram compile(const std::string &Src) {
  CompileResult R = compileString(Src);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  return std::move(*R.Program);
}

std::array<uint64_t, obs::NumTraceKinds>
countsOf(const std::vector<obs::TraceEvent> &Events) {
  std::array<uint64_t, obs::NumTraceKinds> Counts{};
  for (const obs::TraceEvent &E : Events)
    ++Counts[static_cast<size_t>(E.Kind)];
  return Counts;
}

TEST(TraceRecorderTest, RecordAndSnapshot) {
  obs::TraceRecorder Rec(64);
  obs::TraceSink &S = Rec.openSink();
  S.record(obs::TraceKind::Send, 1, 2, 3);
  S.record(obs::TraceKind::Dequeue, 3, 2);
  S.record(obs::TraceKind::Halt, 3);

  EXPECT_EQ(Rec.recorded(), 3u);
  EXPECT_EQ(Rec.dropped(), 0u);
  EXPECT_EQ(Rec.sinkCount(), 1u);

  std::vector<obs::TraceEvent> Events = Rec.snapshot();
  ASSERT_EQ(Events.size(), 3u);
  EXPECT_EQ(Events[0].Kind, obs::TraceKind::Send);
  EXPECT_EQ(Events[0].Machine, 1);
  EXPECT_EQ(Events[0].A, 2);
  EXPECT_EQ(Events[0].B, 3);
  EXPECT_EQ(Events[1].Kind, obs::TraceKind::Dequeue);
  EXPECT_EQ(Events[2].Kind, obs::TraceKind::Halt);
  // Timestamps are monotonic within a sink.
  EXPECT_LE(Events[0].TimeNs, Events[1].TimeNs);
  EXPECT_LE(Events[1].TimeNs, Events[2].TimeNs);
}

TEST(TraceRecorderTest, RingOverwriteAccounting) {
  obs::TraceRecorder Rec(16); // Minimum capacity.
  obs::TraceSink &S = Rec.openSink();
  for (int I = 0; I != 20; ++I)
    S.record(obs::TraceKind::Raise, I);
  EXPECT_EQ(Rec.recorded(), 20u);
  EXPECT_EQ(Rec.dropped(), 4u);
  std::vector<obs::TraceEvent> Events = Rec.snapshot();
  ASSERT_EQ(Events.size(), 16u);
  // The survivors are the most recent 16, oldest first.
  EXPECT_EQ(Events.front().Machine, 4);
  EXPECT_EQ(Events.back().Machine, 19);
}

TEST(TraceRecorderTest, MultipleSinksMergeSorted) {
  obs::TraceRecorder Rec(64);
  obs::TraceSink &A = Rec.openSink();
  obs::TraceSink &B = Rec.openSink();
  A.record(obs::TraceKind::Send, 0, 1, 2);
  B.record(obs::TraceKind::Send, 5, 1, 2);
  A.record(obs::TraceKind::Halt, 0);
  EXPECT_EQ(A.tid(), 0u);
  EXPECT_EQ(B.tid(), 1u);
  std::vector<obs::TraceEvent> Events = Rec.snapshot();
  ASSERT_EQ(Events.size(), 3u);
  for (size_t I = 1; I != Events.size(); ++I)
    EXPECT_LE(Events[I - 1].TimeNs, Events[I].TimeNs);
}

TEST(TraceRecorderTest, KindNamesRoundTrip) {
  for (size_t K = 0; K != obs::NumTraceKinds; ++K) {
    obs::TraceKind Kind = static_cast<obs::TraceKind>(K);
    obs::TraceKind Back;
    ASSERT_TRUE(obs::traceKindFromName(obs::traceKindName(Kind), Back))
        << obs::traceKindName(Kind);
    EXPECT_EQ(Back, Kind);
  }
  obs::TraceKind Out;
  EXPECT_FALSE(obs::traceKindFromName("not-a-kind", Out));
}

//===----------------------------------------------------------------------===//
// Checker integration: round-trip and reconciliation
//===----------------------------------------------------------------------===//

TEST(TraceCheckerTest, JsonlRoundTripReconcilesWithStats) {
  CompiledProgram Prog = compile(corpus::switchLed());
  obs::TraceRecorder Rec(1u << 20); // Large enough: dropped() must be 0.
  CheckOptions Opts;
  Opts.DelayBound = 1;
  Opts.StopOnFirstError = false;
  Opts.Trace = &Rec;
  CheckResult R = check(Prog, Opts);

  ASSERT_EQ(Rec.dropped(), 0u)
      << "ring overwrote events; grow the capacity";
  std::vector<obs::TraceEvent> Events = Rec.snapshot();
  EXPECT_EQ(Events.size(), Rec.recorded());

  // Per-kind counts reconcile with the checker's own accounting: every
  // scheduled slice records exactly one Slice marker.
  auto Counts = Rec.countsByKind();
  EXPECT_EQ(Counts[static_cast<size_t>(obs::TraceKind::Slice)],
            R.Stats.Slices);
  EXPECT_GT(Counts[static_cast<size_t>(obs::TraceKind::Send)], 0u);
  EXPECT_GT(Counts[static_cast<size_t>(obs::TraceKind::Dequeue)], 0u);
  EXPECT_GT(Counts[static_cast<size_t>(obs::TraceKind::New)], 0u);
  EXPECT_EQ(Counts[static_cast<size_t>(obs::TraceKind::Error)],
            R.Stats.ErrorsFound);

  // JSONL round-trip: export, re-parse, same events.
  std::stringstream Jsonl;
  size_t Lines = obs::exportJsonl(Events, Jsonl);
  EXPECT_EQ(Lines, Events.size());
  std::vector<obs::TraceEvent> Back;
  size_t BadLine = 0;
  ASSERT_TRUE(obs::parseJsonl(Jsonl, Back, &BadLine))
      << "line " << BadLine;
  ASSERT_EQ(Back.size(), Events.size());
  EXPECT_EQ(countsOf(Back), Counts);
  for (size_t I = 0; I != Events.size(); ++I) {
    EXPECT_EQ(Back[I].TimeNs, Events[I].TimeNs);
    EXPECT_EQ(Back[I].Kind, Events[I].Kind);
    EXPECT_EQ(Back[I].Machine, Events[I].Machine);
    EXPECT_EQ(Back[I].A, Events[I].A);
    EXPECT_EQ(Back[I].B, Events[I].B);
    EXPECT_EQ(Back[I].Tid, Events[I].Tid);
  }
}

TEST(TraceCheckerTest, ChromeTraceParsesWithOneEventPerRecord) {
  CompiledProgram Prog = compile(corpus::switchLed());
  obs::TraceRecorder Rec(1u << 20);
  CheckOptions Opts;
  Opts.DelayBound = 0;
  Opts.StopOnFirstError = false;
  Opts.Trace = &Rec;
  check(Prog, Opts);
  ASSERT_EQ(Rec.dropped(), 0u);
  std::vector<obs::TraceEvent> Events = Rec.snapshot();

  std::stringstream Out;
  obs::exportChromeTrace(Events, Out, &Prog);
  obs::Json Doc;
  std::string Err;
  ASSERT_TRUE(obs::Json::parse(Out.str(), Doc, &Err)) << Err;
  ASSERT_TRUE(Doc.isObject());
  const obs::Json &TraceEvents = Doc.get("traceEvents");
  ASSERT_TRUE(TraceEvents.isArray());
  EXPECT_EQ(TraceEvents.size(), Events.size());
  // Spot-check a record's shape.
  ASSERT_GT(TraceEvents.size(), 0u);
  const obs::Json &First = TraceEvents.at(0);
  EXPECT_TRUE(First.get("name").isString());
  EXPECT_TRUE(First.get("ts").isNumber());
  EXPECT_TRUE(First.get("ph").isString());
}

TEST(TraceCheckerTest, TracingDoesNotChangeExploration) {
  CompiledProgram Prog = compile(corpus::german(2));
  auto Run = [&](obs::TraceRecorder *Rec) {
    CheckOptions Opts;
    Opts.DelayBound = 1;
    Opts.StopOnFirstError = false;
    Opts.CollectTerminals = true;
    Opts.Trace = Rec;
    return check(Prog, Opts);
  };
  CheckResult Off = Run(nullptr);
  obs::TraceRecorder Rec; // Default (small) capacity: drops are fine —
                          // exploration must be identical regardless.
  CheckResult On = Run(&Rec);
  EXPECT_EQ(On.Stats.DistinctStates, Off.Stats.DistinctStates);
  EXPECT_EQ(On.Stats.Terminals, Off.Stats.Terminals);
  EXPECT_EQ(On.Stats.NodesExplored, Off.Stats.NodesExplored);
  EXPECT_EQ(On.TerminalHashes, Off.TerminalHashes);
  EXPECT_GT(Rec.recorded(), 0u);
}

TEST(TraceCheckerTest, ParallelWorkersGetOwnSinks) {
  CompiledProgram Prog = compile(corpus::german(2));
  obs::TraceRecorder Rec(1u << 18);
  CheckOptions Opts;
  Opts.DelayBound = 1;
  Opts.StopOnFirstError = false;
  Opts.Workers = 4;
  Opts.Trace = &Rec;
  CheckResult R = check(Prog, Opts);
  EXPECT_EQ(R.Stats.WorkersUsed, 4);
  EXPECT_EQ(Rec.sinkCount(), 4u);
  if (Rec.dropped() == 0) {
    auto Counts = Rec.countsByKind();
    EXPECT_EQ(Counts[static_cast<size_t>(obs::TraceKind::Slice)],
              R.Stats.Slices);
  }
}

TEST(TraceCheckerTest, MscRendersCounterexample) {
  CompiledProgram Prog = compile(
      corpus::german(2, corpus::GermanBug::SkipOwnerInvalidation));
  CheckOptions Opts;
  Opts.DelayBound = 2;
  CheckResult R = check(Prog, Opts);
  ASSERT_TRUE(R.ErrorFound);
  std::string Msc =
      obs::renderScheduleMsc(Prog, R.Schedule, Opts.UseModelBodies);
  EXPECT_NE(Msc.find("assert-failed"), std::string::npos) << Msc;
  EXPECT_NE(Msc.find("Home"), std::string::npos) << Msc;
}

//===----------------------------------------------------------------------===//
// Host integration
//===----------------------------------------------------------------------===//

TEST(TraceHostTest, HostRecordsPumpEvents) {
  LowerOptions LO;
  LO.EraseGhosts = true;
  CompileResult CR = compileString(corpus::switchLed(), LO);
  ASSERT_TRUE(CR.ok()) << CR.Diags.str();
  Host H(*CR.Program);
  obs::TraceRecorder Rec;
  H.attachTrace(Rec);
  int32_t Id = H.createMachine("SwitchLedDriver");
  ASSERT_GE(Id, 0);
  ASSERT_TRUE(H.addEvent(Id, "SwitchedOn"));
  ASSERT_TRUE(H.addEvent(Id, "LedOk"));
  ASSERT_EQ(Rec.dropped(), 0u);
  auto Counts = Rec.countsByKind();
  EXPECT_EQ(Counts[static_cast<size_t>(obs::TraceKind::Slice)],
            H.stats().SlicesRun);
  EXPECT_GT(Counts[static_cast<size_t>(obs::TraceKind::New)], 0u);
  EXPECT_GT(Counts[static_cast<size_t>(obs::TraceKind::Dequeue)], 0u);

  obs::MetricsRegistry Reg;
  H.exportMetrics(Reg);
  ASSERT_NE(Reg.findCounter("p_host_slices_total"), nullptr);
  EXPECT_EQ(Reg.findCounter("p_host_slices_total")->value(),
            H.stats().SlicesRun);
  ASSERT_NE(Reg.findGauge("p_host_machines_live"), nullptr);
  EXPECT_GE(Reg.findGauge("p_host_machines_live")->value(), 1.0);
}

//===----------------------------------------------------------------------===//
// Multicast observers
//===----------------------------------------------------------------------===//

TEST(ObserverTest, DequeueObserversAreAdditive) {
  LowerOptions LO;
  LO.EraseGhosts = true;
  CompileResult CR = compileString(corpus::switchLed(), LO);
  ASSERT_TRUE(CR.ok()) << CR.Diags.str();
  Host H(*CR.Program);
  int FirstCount = 0, SecondCount = 0;
  H.executor().addDequeueObserver(
      [&](int32_t, int32_t) { ++FirstCount; });
  H.executor().setDequeueObserver( // The alias registers, not replaces.
      [&](int32_t, int32_t) { ++SecondCount; });
  int32_t Id = H.createMachine("SwitchLedDriver");
  H.addEvent(Id, "SwitchedOn");
  H.addEvent(Id, "LedOk");
  EXPECT_GT(FirstCount, 0);
  EXPECT_EQ(FirstCount, SecondCount);
}

//===----------------------------------------------------------------------===//
// Progress heartbeat
//===----------------------------------------------------------------------===//

TEST(ProgressTest, HeartbeatFiresAndSnapshotsGrow) {
  CompiledProgram Prog = compile(corpus::german(2));
  CheckOptions Opts;
  Opts.DelayBound = 2;
  Opts.StopOnFirstError = false;
  Opts.ProgressIntervalSeconds = 0.001;
  std::vector<CheckStats> Beats;
  Opts.Progress = [&](const CheckStats &S) { Beats.push_back(S); };
  CheckResult R = check(Prog, Opts);
  ASSERT_GE(Beats.size(), 1u) << "no heartbeat fired";
  for (size_t I = 1; I < Beats.size(); ++I) {
    EXPECT_GE(Beats[I].NodesExplored, Beats[I - 1].NodesExplored);
    EXPECT_GE(Beats[I].Seconds, Beats[I - 1].Seconds);
  }
  EXPECT_LE(Beats.back().NodesExplored, R.Stats.NodesExplored);
  EXPECT_EQ(Beats.back().WorkersUsed, 1);
}

//===----------------------------------------------------------------------===//
// Bench-report schema
//===----------------------------------------------------------------------===//

TEST(BenchJsonTest, CheckStatsRecordValidates) {
  CompiledProgram Prog = compile(corpus::elevator());
  CheckOptions Opts;
  Opts.DelayBound = 1;
  Opts.StopOnFirstError = false;
  CheckResult R = check(Prog, Opts);

  obs::BenchReport Report("unit");
  obs::Json Config = obs::Json::object();
  Config.set("program", "elevator");
  Config.set("delay_bound", 1);
  Report.addRun(std::move(Config), R.Stats);

  obs::Json Parsed;
  std::string Err;
  ASSERT_TRUE(obs::Json::parse(Report.str(), Parsed, &Err)) << Err;
  std::string Why;
  EXPECT_TRUE(obs::validateBenchReport(Parsed, Why, true)) << Why;

  const obs::Json &Stats = Parsed.at(0).get("stats");
  EXPECT_EQ(static_cast<uint64_t>(Stats.get("distinct_states").asNumber()),
            R.Stats.DistinctStates);
  EXPECT_EQ(static_cast<uint64_t>(Stats.get("nodes_explored").asNumber()),
            R.Stats.NodesExplored);
}

TEST(BenchJsonTest, ValidatorRejectsMalformedReports) {
  std::string Why;
  obs::Json NotArray = obs::Json::object();
  EXPECT_FALSE(obs::validateBenchReport(NotArray, Why));
  EXPECT_FALSE(Why.empty());

  obs::Json Empty = obs::Json::array();
  EXPECT_FALSE(obs::validateBenchReport(Empty, Why));

  obs::Json MissingStats = obs::Json::array();
  obs::Json Rec = obs::Json::object();
  Rec.set("bench", "x");
  Rec.set("config", obs::Json::object());
  Rec.set("seconds", 1.0);
  MissingStats.push(std::move(Rec));
  EXPECT_FALSE(obs::validateBenchReport(MissingStats, Why));
  EXPECT_NE(Why.find("stats"), std::string::npos);
}

} // namespace
