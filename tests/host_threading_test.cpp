//===- tests/host_threading_test.cpp - Concurrent host entry points ---------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Section 4: "Multiple such threads could be executing inside the
// runtime at any time; each dynamic instance of a state machine is
// protected by its own lock for safe synchronization." Our host
// serializes entry points with a pump lock; these tests hammer it from
// several threads and check nothing is lost or torn.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "host/Host.h"
#include "host/TimerWheel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace p;

namespace {

CompiledProgram compileErased(const std::string &Src) {
  LowerOptions Opts;
  Opts.EraseGhosts = true;
  CompileResult R = compileString(Src, Opts);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

TEST(HostThreading, ConcurrentAddEventLosesNothing) {
  CompiledProgram Prog = compileErased(R"(
event Inc(int);
main machine CounterM {
  var Total: int;
  var Count: int;
  state S {
    entry { Total = 0; Count = 0; }
    on Inc do Add;
  }
  action Add {
    Total = Total + arg;
    Count = Count + 1;
  }
}
)");
  Host H(Prog);
  int32_t Id = H.createMachine("CounterM");

  constexpr int NumThreads = 4;
  constexpr int PerThread = 250;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      for (int I = 0; I != PerThread; ++I) {
        // Distinct payloads per call so queue dedup can never merge
        // two in-flight increments.
        int Payload = T * PerThread + I + 1;
        if (!H.addEvent(Id, "Inc", Value::integer(Payload)))
          ++Failures;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_FALSE(H.hasError()) << H.errorMessage();
  int64_t N = NumThreads * PerThread;
  EXPECT_EQ(H.readVar(Id, "Count"), Value::integer(N));
  EXPECT_EQ(H.readVar(Id, "Total"), Value::integer(N * (N + 1) / 2));
}

TEST(HostThreading, ConcurrentCreateAndSend) {
  CompiledProgram Prog = compileErased(R"(
event Hit;
main machine Target {
  var Hits: int;
  state S {
    entry { Hits = 0; }
    on Hit do Note;
  }
  action Note { Hits = Hits + 1; }
}
)");
  Host H(Prog);
  constexpr int NumThreads = 4;
  std::vector<int32_t> Ids(NumThreads, -1);
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Ids[T] = H.createMachine("Target");
      for (int I = 0; I != 50; ++I)
        H.addEvent(Ids[T], "Hit");
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_FALSE(H.hasError()) << H.errorMessage();
  for (int T = 0; T != NumThreads; ++T) {
    ASSERT_GE(Ids[T], 0);
    // Hit carries no payload: in-flight duplicates may be ⊎-merged, but
    // addEvent pumps to quiescence under the lock, so every send lands.
    EXPECT_EQ(H.readVar(Ids[T], "Hits"), Value::integer(50));
  }
  EXPECT_EQ(H.stats().MachinesCreated, 4u);
}

TEST(HostThreading, LastHostErrorIsPerThread) {
  CompiledProgram Prog = compileErased(R"(
event Ping;
main machine M {
  var N: int;
  state S {
    entry { N = 0; }
    on Ping do Note;
  }
  action Note { N = N + 1; }
}
)");
  Host H(Prog);
  int32_t Id = H.createMachine("M");
  ASSERT_GE(Id, 0);

  // One thread only ever makes valid calls, the other only invalid
  // ones; each must read its *own* verdict every time. A shared
  // last-error field (even an atomic) fails this: whichever store wins
  // the race leaks one thread's verdict into the other's read.
  constexpr int Iters = 500;
  std::atomic<int> WrongNone{0}, WrongError{0};
  std::thread Good([&] {
    for (int I = 0; I != Iters; ++I) {
      EXPECT_TRUE(H.addEvent(Id, "Ping"));
      if (H.lastHostError() != HostError::None)
        ++WrongNone;
    }
  });
  std::thread Bad([&] {
    for (int I = 0; I != Iters; ++I) {
      EXPECT_FALSE(H.addEvent(Id, "NoSuchEvent"));
      if (H.lastHostError() != HostError::UnknownEvent)
        ++WrongError;
    }
  });
  Good.join();
  Bad.join();

  EXPECT_EQ(WrongNone.load(), 0);
  EXPECT_EQ(WrongError.load(), 0);
  EXPECT_FALSE(H.hasError()) << H.errorMessage();
  EXPECT_EQ(H.readVar(Id, "N"), Value::integer(Iters));
  // The main thread never called addEvent/createMachine... except
  // createMachine above, whose verdict is still ours: None.
  EXPECT_EQ(H.lastHostError(), HostError::None);
}

//===----------------------------------------------------------------------===//
// Reactor pump: the lock-free MPSC mailbox path (Host::startReactor).
//===----------------------------------------------------------------------===//

const char *CounterSrc = R"(
event Inc(int);
main machine CounterM {
  var Total: int;
  var Count: int;
  state S {
    entry { Total = 0; Count = 0; }
    on Inc do Add;
  }
  action Add {
    Total = Total + arg;
    Count = Count + 1;
  }
}
)";

TEST(ReactorPump, MultiProducerExactDelivery) {
  CompiledProgram Prog = compileErased(CounterSrc);
  Host H(Prog);
  int32_t Id = H.createMachine("CounterM");
  ASSERT_GE(Id, 0);
  ASSERT_TRUE(H.runToCompletion());

  ReactorOptions O;
  O.Workers = 2;
  O.MailboxCapacity = 64; // Small ring: the stress exercises the spill path.
  H.startReactor(O);

  constexpr int NumThreads = 4;
  constexpr int PerThread = 500;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != PerThread; ++I) {
        int Payload = T * PerThread + I + 1; // Unique: ⊎ cannot merge.
        if (!H.addEvent(Id, "Inc", Value::integer(Payload)))
          ++Failures;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_TRUE(H.runToCompletion());
  H.stopReactor();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_FALSE(H.hasError()) << H.errorMessage();
  int64_t N = NumThreads * PerThread;
  EXPECT_EQ(H.readVar(Id, "Count"), Value::integer(N));
  EXPECT_EQ(H.readVar(Id, "Total"), Value::integer(N * (N + 1) / 2));
  EXPECT_EQ(H.stats().EventsDelivered, static_cast<uint64_t>(N));
}

TEST(ReactorPump, PerProducerFifoOrder) {
  // Two producers with disjoint payload ranges; the machine asserts each
  // producer's stream arrives strictly increasing. MPSC ring + spill
  // list must preserve per-producer FIFO even when the ring wraps.
  CompiledProgram Prog = compileErased(R"(
event Put(int);
main machine FifoM {
  var LastA: int;
  var LastB: int;
  state S {
    entry { LastA = 0; LastB = 0; }
    on Put do Check;
  }
  action Check {
    if (arg < 100000) {
      assert(arg > LastA);
      LastA = arg;
    } else {
      assert(arg > LastB);
      LastB = arg;
    }
  }
}
)");
  Host H(Prog);
  int32_t Id = H.createMachine("FifoM");
  ASSERT_TRUE(H.runToCompletion());

  ReactorOptions O;
  O.Workers = 2;
  O.MailboxCapacity = 32; // Force ring wrap + spills mid-stream.
  H.startReactor(O);

  constexpr int PerThread = 800;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != 2; ++T)
    Threads.emplace_back([&, T] {
      int Base = T == 0 ? 0 : 100000;
      for (int I = 1; I <= PerThread; ++I)
        if (!H.addEvent(Id, "Put", Value::integer(Base + I)))
          ++Failures;
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_TRUE(H.runToCompletion()) << H.errorMessage();
  H.stopReactor();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_FALSE(H.hasError()) << H.errorMessage();
  EXPECT_EQ(H.readVar(Id, "LastA"), Value::integer(PerThread));
  EXPECT_EQ(H.readVar(Id, "LastB"), Value::integer(100000 + PerThread));
}

TEST(ReactorPump, OverflowDropNewestAccountsEveryEvent) {
  CompiledProgram Prog = compileErased(CounterSrc);
  Host H(Prog);
  int32_t Id = H.createMachine("CounterM");
  ASSERT_TRUE(H.runToCompletion());
  H.setQueueLimit(1, OverflowPolicy::DropNewest);

  ReactorOptions O;
  O.Workers = 2;
  H.startReactor(O);

  constexpr int NumThreads = 4;
  constexpr int PerThread = 250;
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != PerThread; ++I)
        H.addEvent(Id, "Inc", Value::integer(T * PerThread + I + 1));
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_TRUE(H.runToCompletion()) << H.errorMessage();
  H.stopReactor();

  EXPECT_FALSE(H.hasError()) << H.errorMessage();
  // Every accepted event either reached the machine or was counted as a
  // drop — nothing vanishes in the mailbox/queue hand-off.
  Value Count = H.readVar(Id, "Count");
  uint64_t Dropped = H.config().OverflowDropped;
  EXPECT_EQ(Count.asInt() + static_cast<int64_t>(Dropped),
            int64_t(NumThreads) * PerThread);
}

TEST(ReactorPump, OverflowBlockDeliversAll) {
  CompiledProgram Prog = compileErased(CounterSrc);
  Host H(Prog);
  int32_t Id = H.createMachine("CounterM");
  ASSERT_TRUE(H.runToCompletion());
  H.setQueueLimit(2, OverflowPolicy::Block);

  ReactorOptions O;
  O.Workers = 2;
  H.startReactor(O);

  constexpr int NumThreads = 4;
  constexpr int PerThread = 200;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != PerThread; ++I)
        if (!H.addEvent(Id, "Inc", Value::integer(T * PerThread + I + 1)))
          ++Failures;
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_TRUE(H.runToCompletion()) << H.errorMessage();
  H.stopReactor();

  // Block back-pressures the producer instead of shedding or erroring:
  // exact delivery, zero drops.
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_FALSE(H.hasError()) << H.errorMessage();
  int64_t N = int64_t(NumThreads) * PerThread;
  EXPECT_EQ(H.readVar(Id, "Count"), Value::integer(N));
  EXPECT_EQ(H.config().OverflowDropped, 0u);
}

TEST(ReactorPump, OverflowErrorRaisesQueueOverflow) {
  // Machine-to-machine overflow, deterministic with one worker: the
  // broker's single slice sends three uniquely-numbered events to the
  // subscriber before any worker can drain it, so MaxQueue=1 under
  // OverflowPolicy::Error must raise at the batch transfer.
  CompiledProgram Prog = compileErased(R"(
event Kick;
event Deliver(int);
main machine BrokerM {
  var Sub: id;
  state S {
    entry { Sub = new SubM(); }
    on Kick do Fanout;
  }
  action Fanout {
    send(Sub, Deliver, 1);
    send(Sub, Deliver, 2);
    send(Sub, Deliver, 3);
  }
}
machine SubM {
  var Seen: int;
  state S {
    entry { Seen = 0; }
    on Deliver do Note;
  }
  action Note { Seen = Seen + 1; }
}
)");
  Host H(Prog);
  int32_t Id = H.createMachine("BrokerM");
  ASSERT_TRUE(H.runToCompletion());
  H.setQueueLimit(1, OverflowPolicy::Error);

  ReactorOptions O;
  O.Workers = 1;
  H.startReactor(O);
  // No return-value assert: acceptance races with the worker raising the
  // overflow error (addEvent reports "no error observed yet").
  H.addEvent(Id, "Kick");
  EXPECT_FALSE(H.runToCompletion());
  H.stopReactor();

  EXPECT_TRUE(H.hasError());
  EXPECT_EQ(H.error(), ErrorKind::QueueOverflow) << H.errorMessage();
}

TEST(ReactorPump, CrashCancelsTimersAndRestartRuns) {
  CompiledProgram Prog = compileErased(CounterSrc);
  Host H(Prog);
  int32_t Id = H.createMachine("CounterM");
  ASSERT_TRUE(H.runToCompletion());

  H.startReactor({});
  EXPECT_TRUE(H.addEvent(Id, "Inc", Value::integer(5)));
  EXPECT_TRUE(H.runToCompletion());

  // A delayed delivery parks in the timer wheel; crashing the target
  // must cancel it (fail-stop: a crashed machine's pending deliveries
  // vanish, they do not resurrect on restart).
  EXPECT_TRUE(H.addEventAfter(Id, "Inc", Value::integer(7),
                              std::chrono::milliseconds(200)));
  EXPECT_TRUE(H.crashMachine(Id));
  EXPECT_TRUE(H.runToCompletion()); // Crash is processed at the mailbox.

  ASSERT_TRUE(H.restartMachine(Id));
  EXPECT_TRUE(H.addEvent(Id, "Inc", Value::integer(9)));
  EXPECT_TRUE(H.runToCompletion());
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_TRUE(H.runToCompletion()); // Past the deadline: nothing to expire.
  H.stopReactor();

  EXPECT_FALSE(H.hasError()) << H.errorMessage();
  // Restart re-ran entry (Count reset), then delivered exactly the
  // post-restart event; the canceled timer never fired.
  EXPECT_EQ(H.readVar(Id, "Count"), Value::integer(1));
  EXPECT_EQ(H.readVar(Id, "Total"), Value::integer(9));
  EXPECT_EQ(H.stats().TimersExpired, 0u);
  EXPECT_EQ(H.stats().MachinesCrashed, 1u);
  EXPECT_EQ(H.stats().MachinesRestarted, 1u);
}

TEST(ReactorPump, DelayedDeliveryThroughTimerWheel) {
  CompiledProgram Prog = compileErased(CounterSrc);
  Host H(Prog);
  int32_t Id = H.createMachine("CounterM");
  ASSERT_TRUE(H.runToCompletion());

  H.startReactor({});
  EXPECT_TRUE(H.addEventAfter(Id, "Inc", Value::integer(3),
                              std::chrono::milliseconds(5)));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(H.runToCompletion()); // flushDueTimers + quiescence barrier.
  H.stopReactor();

  EXPECT_FALSE(H.hasError()) << H.errorMessage();
  EXPECT_EQ(H.readVar(Id, "Count"), Value::integer(1));
  EXPECT_EQ(H.readVar(Id, "Total"), Value::integer(3));
  EXPECT_EQ(H.stats().TimersScheduled, 1u);
  EXPECT_EQ(H.stats().TimersExpired, 1u);
}

TEST(HostSerial, AddEventAfterDelaysUntilDeadline) {
  CompiledProgram Prog = compileErased(CounterSrc);
  Host H(Prog);
  int32_t Id = H.createMachine("CounterM");
  ASSERT_TRUE(H.runToCompletion());

  EXPECT_TRUE(H.addEventAfter(Id, "Inc", Value::integer(4),
                              std::chrono::milliseconds(25)));
  EXPECT_TRUE(H.runToCompletion());
  // Not yet due: the wheel holds it past this pump.
  EXPECT_EQ(H.readVar(Id, "Count"), Value::integer(0));

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(H.runToCompletion());
  EXPECT_EQ(H.readVar(Id, "Count"), Value::integer(1));
  EXPECT_EQ(H.stats().TimersExpired, 1u);

  // Serial crash also sweeps the wheel.
  EXPECT_TRUE(H.addEventAfter(Id, "Inc", Value::integer(8),
                              std::chrono::milliseconds(10)));
  EXPECT_TRUE(H.crashMachine(Id));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(H.runToCompletion());
  EXPECT_EQ(H.stats().TimersExpired, 1u); // Still just the first one.
}

//===----------------------------------------------------------------------===//
// Timer wheel units (no host).
//===----------------------------------------------------------------------===//

TEST(TimerWheelUnit, ExpiresInDeadlineThenSeqOrder) {
  TimerWheel W(/*NShards=*/2, /*Tick=*/std::chrono::milliseconds(1));
  auto Now = TimerWheel::Clock::now();
  auto Mk = [&](int32_t Tag, int Ms) {
    TimerEntry E;
    E.Target = Tag % 2; // Both shards participate.
    E.Event = Tag;
    E.Deadline = Now + std::chrono::milliseconds(Ms);
    W.schedule(E);
  };
  Mk(0, 50);
  Mk(1, 5);
  Mk(2, 5); // Same deadline as Tag 1: scheduled later, expires later.
  Mk(3, 900);

  std::vector<TimerEntry> Out;
  W.advanceTo(Now + std::chrono::seconds(2), Out);
  ASSERT_EQ(Out.size(), 4u);
  EXPECT_EQ(Out[0].Event, 1);
  EXPECT_EQ(Out[1].Event, 2);
  EXPECT_EQ(Out[2].Event, 0);
  EXPECT_EQ(Out[3].Event, 3);
  EXPECT_TRUE(W.empty());
}

TEST(TimerWheelUnit, AlreadyDueDeliversWithoutTickBoundary) {
  // FaultKind::DelayEvent schedules with a now() deadline; the very next
  // advanceTo must return it even if no wheel tick has elapsed —
  // otherwise a zero delay rounds up to one tick and the serial pump's
  // delay-fault semantics change.
  TimerWheel W;
  auto Now = TimerWheel::Clock::now();
  TimerEntry E;
  E.Target = 0;
  E.Event = 42;
  E.Deadline = Now;
  W.schedule(E);

  std::vector<TimerEntry> Out;
  W.advanceTo(Now, Out);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Event, 42);
}

TEST(TimerWheelUnit, CancelForDropsOnlyThatTarget) {
  TimerWheel W(/*NShards=*/2);
  auto Now = TimerWheel::Clock::now();
  auto Mk = [&](int32_t Target, int Ms) {
    TimerEntry E;
    E.Target = Target;
    E.Event = Target;
    E.Deadline = Now + std::chrono::milliseconds(Ms);
    W.schedule(E);
  };
  Mk(1, 10);
  Mk(1, 20);
  Mk(1, 400); // Higher wheel level than the first two.
  Mk(2, 15);
  Mk(2, 30);

  EXPECT_EQ(W.cancelFor(1), 3u);
  std::vector<TimerEntry> Out;
  W.advanceTo(Now + std::chrono::seconds(1), Out);
  ASSERT_EQ(Out.size(), 2u);
  for (const TimerEntry &E : Out)
    EXPECT_EQ(E.Target, 2);
  EXPECT_TRUE(W.empty());
}

} // namespace
