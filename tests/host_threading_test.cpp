//===- tests/host_threading_test.cpp - Concurrent host entry points ---------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Section 4: "Multiple such threads could be executing inside the
// runtime at any time; each dynamic instance of a state machine is
// protected by its own lock for safe synchronization." Our host
// serializes entry points with a pump lock; these tests hammer it from
// several threads and check nothing is lost or torn.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "host/Host.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace p;

namespace {

CompiledProgram compileErased(const std::string &Src) {
  LowerOptions Opts;
  Opts.EraseGhosts = true;
  CompileResult R = compileString(Src, Opts);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

TEST(HostThreading, ConcurrentAddEventLosesNothing) {
  CompiledProgram Prog = compileErased(R"(
event Inc(int);
main machine CounterM {
  var Total: int;
  var Count: int;
  state S {
    entry { Total = 0; Count = 0; }
    on Inc do Add;
  }
  action Add {
    Total = Total + arg;
    Count = Count + 1;
  }
}
)");
  Host H(Prog);
  int32_t Id = H.createMachine("CounterM");

  constexpr int NumThreads = 4;
  constexpr int PerThread = 250;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      for (int I = 0; I != PerThread; ++I) {
        // Distinct payloads per call so queue dedup can never merge
        // two in-flight increments.
        int Payload = T * PerThread + I + 1;
        if (!H.addEvent(Id, "Inc", Value::integer(Payload)))
          ++Failures;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_FALSE(H.hasError()) << H.errorMessage();
  int64_t N = NumThreads * PerThread;
  EXPECT_EQ(H.readVar(Id, "Count"), Value::integer(N));
  EXPECT_EQ(H.readVar(Id, "Total"), Value::integer(N * (N + 1) / 2));
}

TEST(HostThreading, ConcurrentCreateAndSend) {
  CompiledProgram Prog = compileErased(R"(
event Hit;
main machine Target {
  var Hits: int;
  state S {
    entry { Hits = 0; }
    on Hit do Note;
  }
  action Note { Hits = Hits + 1; }
}
)");
  Host H(Prog);
  constexpr int NumThreads = 4;
  std::vector<int32_t> Ids(NumThreads, -1);
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Ids[T] = H.createMachine("Target");
      for (int I = 0; I != 50; ++I)
        H.addEvent(Ids[T], "Hit");
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_FALSE(H.hasError()) << H.errorMessage();
  for (int T = 0; T != NumThreads; ++T) {
    ASSERT_GE(Ids[T], 0);
    // Hit carries no payload: in-flight duplicates may be ⊎-merged, but
    // addEvent pumps to quiescence under the lock, so every send lands.
    EXPECT_EQ(H.readVar(Ids[T], "Hits"), Value::integer(50));
  }
  EXPECT_EQ(H.stats().MachinesCreated, 4u);
}

} // namespace
