//===- tests/lexer_test.cpp - Lexer unit tests ------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

std::vector<Token> lex(const std::string &Src) {
  Lexer L(Src);
  return L.lexAll();
}

std::vector<TokenKind> kinds(const std::string &Src) {
  std::vector<TokenKind> Out;
  for (const Token &T : lex(Src))
    Out.push_back(T.Kind);
  return Out;
}

TEST(Lexer, EmptyInputIsEof) {
  auto Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST(Lexer, Identifiers) {
  auto Tokens = lex("foo Bar_9 _x");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "Bar_9");
  EXPECT_EQ(Tokens[2].Text, "_x");
}

TEST(Lexer, Keywords) {
  auto K = kinds("event machine ghost main var state action entry exit "
                 "defer postpone on goto push do new delete send raise "
                 "leave return assert if else while call skip");
  std::vector<TokenKind> Want = {
      TokenKind::KwEvent,  TokenKind::KwMachine, TokenKind::KwGhost,
      TokenKind::KwMain,   TokenKind::KwVar,     TokenKind::KwState,
      TokenKind::KwAction, TokenKind::KwEntry,   TokenKind::KwExit,
      TokenKind::KwDefer,  TokenKind::KwPostpone, TokenKind::KwOn,
      TokenKind::KwGoto,   TokenKind::KwPush,    TokenKind::KwDo,
      TokenKind::KwNew,    TokenKind::KwDelete,  TokenKind::KwSend,
      TokenKind::KwRaise,  TokenKind::KwLeave,   TokenKind::KwReturn,
      TokenKind::KwAssert, TokenKind::KwIf,      TokenKind::KwElse,
      TokenKind::KwWhile,  TokenKind::KwCall,    TokenKind::KwSkip,
      TokenKind::Eof};
  EXPECT_EQ(K, Want);
}

TEST(Lexer, ValueAndTypeKeywords) {
  auto K = kinds("true false null this msg arg foreign fun model void "
                 "bool int id");
  std::vector<TokenKind> Want = {
      TokenKind::KwTrue, TokenKind::KwFalse,   TokenKind::KwNull,
      TokenKind::KwThis, TokenKind::KwMsg,     TokenKind::KwArg,
      TokenKind::KwForeign, TokenKind::KwFun,  TokenKind::KwModel,
      TokenKind::KwVoid, TokenKind::KwBool,    TokenKind::KwInt,
      TokenKind::KwId,   TokenKind::Eof};
  EXPECT_EQ(K, Want);
}

TEST(Lexer, IntegerLiterals) {
  auto Tokens = lex("0 42 123456");
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 123456);
}

TEST(Lexer, OperatorsAndPunctuation) {
  auto K = kinds("{ } ( ) , ; : = == != < <= > >= + - * / ! && ||");
  std::vector<TokenKind> Want = {
      TokenKind::LBrace,  TokenKind::RBrace,    TokenKind::LParen,
      TokenKind::RParen,  TokenKind::Comma,     TokenKind::Semi,
      TokenKind::Colon,   TokenKind::Assign,    TokenKind::EqEq,
      TokenKind::NotEq,   TokenKind::Less,      TokenKind::LessEq,
      TokenKind::Greater, TokenKind::GreaterEq, TokenKind::Plus,
      TokenKind::Minus,   TokenKind::Star,      TokenKind::Slash,
      TokenKind::Not,     TokenKind::AndAnd,    TokenKind::OrOr,
      TokenKind::Eof};
  EXPECT_EQ(K, Want);
}

TEST(Lexer, LineComments) {
  auto K = kinds("a // comment == != foo\nb");
  std::vector<TokenKind> Want = {TokenKind::Identifier,
                                 TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(K, Want);
}

TEST(Lexer, BlockComments) {
  auto K = kinds("a /* multi\nline * comment */ b");
  std::vector<TokenKind> Want = {TokenKind::Identifier,
                                 TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(K, Want);
}

TEST(Lexer, UnterminatedBlockCommentIsSwallowed) {
  auto K = kinds("a /* never closed");
  std::vector<TokenKind> Want = {TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(K, Want);
}

TEST(Lexer, SourceLocations) {
  auto Tokens = lex("a\n  bb\n c");
  EXPECT_EQ(Tokens[0].Loc, SourceLoc(1, 1));
  EXPECT_EQ(Tokens[1].Loc, SourceLoc(2, 3));
  EXPECT_EQ(Tokens[2].Loc, SourceLoc(3, 2));
}

TEST(Lexer, StrayAmpersandIsError) {
  auto Tokens = lex("a & b");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Error);
  EXPECT_NE(Tokens[1].Text.find("&&"), std::string::npos);
}

TEST(Lexer, UnknownCharacterIsError) {
  auto Tokens = lex("a $ b");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Error);
}

TEST(Lexer, AdjacentOperatorsSplitCorrectly) {
  // `a==-1` is ==, then unary minus.
  auto K = kinds("a==-1");
  std::vector<TokenKind> Want = {TokenKind::Identifier, TokenKind::EqEq,
                                 TokenKind::Minus, TokenKind::IntLiteral,
                                 TokenKind::Eof};
  EXPECT_EQ(K, Want);
}

} // namespace
