//===- tests/property_sweep_test.cpp - Parameterized property sweeps --------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/Replay.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

CompiledProgram compile(const std::string &Src) {
  CompileResult R = compileString(Src);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

//===----------------------------------------------------------------------===//
// Operator semantics sweep: every arithmetic/comparison result matches
// the reference computation, and ⊥ strictness holds for every operator.
//===----------------------------------------------------------------------===//

struct OpCase {
  const char *Op;
  int64_t A, B;
  Value Expected;
};

class BinaryOpSemantics : public ::testing::TestWithParam<OpCase> {};

TEST_P(BinaryOpSemantics, EvaluatesLikeTheReference) {
  const OpCase &C = GetParam();
  std::string Src = "main machine M {\n";
  Src += C.Expected.isBool() ? "  var R: bool;\n" : "  var R: int;\n";
  Src += "  state S { entry { R = " + std::to_string(C.A) + " " + C.Op +
         " " + std::to_string(C.B) + "; } }\n}\n";
  CompiledProgram Prog = compile(Src);
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  ASSERT_FALSE(Cfg.hasError()) << Cfg.ErrorMessage;
  EXPECT_EQ(Cfg.Machines[0]->Vars[0], C.Expected)
      << C.A << " " << C.Op << " " << C.B;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, BinaryOpSemantics,
    ::testing::Values(OpCase{"+", 7, 5, Value::integer(12)},
                      OpCase{"-", 7, 5, Value::integer(2)},
                      OpCase{"*", -3, 5, Value::integer(-15)},
                      OpCase{"/", 17, 5, Value::integer(3)},
                      OpCase{"/", -17, 5, Value::integer(-3)},
                      OpCase{"/", 4, 0, Value::null()}));

INSTANTIATE_TEST_SUITE_P(
    Comparison, BinaryOpSemantics,
    ::testing::Values(OpCase{"<", 1, 2, Value::boolean(true)},
                      OpCase{"<", 2, 2, Value::boolean(false)},
                      OpCase{"<=", 2, 2, Value::boolean(true)},
                      OpCase{">", 3, 2, Value::boolean(true)},
                      OpCase{">=", 1, 2, Value::boolean(false)},
                      OpCase{"==", 4, 4, Value::boolean(true)},
                      OpCase{"!=", 4, 4, Value::boolean(false)}));

class StrictOperators : public ::testing::TestWithParam<const char *> {};

TEST_P(StrictOperators, BottomPropagates) {
  // U is uninitialized (⊥); every operator must yield ⊥.
  std::string Src = R"(
main machine M {
  var U: int;
  var R: int;
  state S { entry { R = U )" +
                    std::string(GetParam()) + R"( 1; } }
}
)";
  // Comparisons type as bool; reuse an int slot is a type error, so
  // adapt the target type for comparison operators.
  std::string Op = GetParam();
  bool IsCmp = Op == "<" || Op == "<=" || Op == ">" || Op == ">=" ||
               Op == "==" || Op == "!=";
  if (IsCmp) {
    Src = R"(
main machine M {
  var U: int;
  var R: bool;
  state S { entry { R = U )" +
          Op + R"( 1; } }
}
)";
  }
  CompiledProgram Prog = compile(Src);
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  ASSERT_FALSE(Cfg.hasError()) << Cfg.ErrorMessage;
  EXPECT_EQ(Cfg.Machines[0]->Vars[1], Value::null()) << "op " << Op;
}

INSTANTIATE_TEST_SUITE_P(AllOps, StrictOperators,
                         ::testing::Values("+", "-", "*", "/", "<", "<=",
                                           ">", ">=", "==", "!="));

//===----------------------------------------------------------------------===//
// Every corpus counterexample replays: sweep all seeded bugs.
//===----------------------------------------------------------------------===//

struct BugProgram {
  const char *Name;
  std::string Source;
};

std::vector<BugProgram> buggyPrograms() {
  return {
      {"elevator-defer-close",
       corpus::elevator(corpus::ElevatorBug::MissingDeferCloseDoor)},
      {"elevator-defer-timer",
       corpus::elevator(corpus::ElevatorBug::MissingDeferTimerFired)},
      {"switchled-defer-switch",
       corpus::switchLed(corpus::SwitchLedBug::MissingDeferSwitch)},
      {"switchled-retry-assert",
       corpus::switchLed(corpus::SwitchLedBug::WrongRetryAssert)},
      {"german-owner-invalidation",
       corpus::german(2, corpus::GermanBug::SkipOwnerInvalidation)},
      {"usbhub-surprise-remove",
       corpus::usbHub(1, corpus::UsbHubBug::SurpriseRemoveDuringReset)},
  };
}

class CounterexampleReplay : public ::testing::TestWithParam<int> {};

TEST_P(CounterexampleReplay, ScheduleReproducesTheError) {
  BugProgram Bug = buggyPrograms()[GetParam()];
  CompiledProgram Prog = compile(Bug.Source);
  CheckResult Found;
  for (int D = 0; D <= 2 && !Found.ErrorFound; ++D) {
    CheckOptions Opts;
    Opts.DelayBound = D;
    Found = check(Prog, Opts);
  }
  ASSERT_TRUE(Found.ErrorFound) << Bug.Name;

  ReplayResult R = replaySchedule(Prog, Found.Schedule);
  ASSERT_TRUE(R.ErrorReached) << Bug.Name;
  EXPECT_EQ(R.Error, Found.Error) << Bug.Name;
  EXPECT_EQ(R.ErrorMessage, Found.ErrorMessage) << Bug.Name;
}

INSTANTIATE_TEST_SUITE_P(AllSeededBugs, CounterexampleReplay,
                         ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           std::string Name =
                               buggyPrograms()[Info.param].Name;
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

//===----------------------------------------------------------------------===//
// Checker-stats invariants across the corpus and bounds.
//===----------------------------------------------------------------------===//

class StatsInvariants : public ::testing::TestWithParam<int> {};

TEST_P(StatsInvariants, HoldOnSwitchLed) {
  CompiledProgram Prog = compile(corpus::switchLed());
  CheckOptions Opts;
  Opts.DelayBound = GetParam();
  CheckResult R = check(Prog, Opts);
  ASSERT_FALSE(R.ErrorFound);
  // Slices equal trace-able run decisions; every node stems from a
  // slice or a delay/choice, so:
  EXPECT_LE(R.Stats.DistinctStates, R.Stats.NodesExplored + 1);
  EXPECT_GE(R.Stats.Slices, R.Stats.DistinctStates / 2);
  // The ghost switch toggles forever (its entry always re-raises), so
  // the system never quiesces: exploration ends purely by state-space
  // closure, never at a terminal configuration.
  EXPECT_EQ(R.Stats.Terminals, 0u);
  EXPECT_TRUE(R.Stats.Exhausted);
  EXPECT_GE(R.Stats.MaxDepth, 3);
}

INSTANTIATE_TEST_SUITE_P(Bounds, StatsInvariants,
                         ::testing::Values(0, 1, 2, 3));

} // namespace
