//===- tests/lowering_test.cpp - AST-to-bytecode lowering tests -------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

CompiledProgram compile(const std::string &Src) {
  CompileResult R = compileString(Src);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

/// Finds the body named \p Name in machine 0.
const Body &body(const CompiledProgram &Prog, const std::string &Name) {
  for (const Body &B : Prog.Machines[0].Bodies)
    if (B.Name == Name)
      return B;
  ADD_FAILURE() << "no body named " << Name;
  std::abort();
}

std::vector<Opcode> opcodes(const Body &B) {
  std::vector<Opcode> Out;
  for (const Instr &I : B.Code)
    Out.push_back(I.Op);
  return Out;
}

TEST(Lowering, EmptyEntryBecomesNoBody) {
  CompiledProgram Prog = compile(R"(
main machine M {
  state S { entry { } }
}
)");
  EXPECT_EQ(Prog.Machines[0].States[0].EntryBody, -1);
  EXPECT_EQ(Prog.Machines[0].States[0].ExitBody, -1);
}

TEST(Lowering, AssignmentShape) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var X: int;
  state S { entry { X = 1 + 2 * 3; } }
}
)");
  const Body &B = body(Prog, "M.S.entry");
  std::vector<Opcode> Want = {Opcode::PushInt, Opcode::PushInt,
                              Opcode::PushInt, Opcode::BinOp, Opcode::BinOp,
                              Opcode::StoreVar, Opcode::Halt};
  EXPECT_EQ(opcodes(B), Want);
  // Operator associativity: mul folds before add.
  EXPECT_EQ(B.Code[3].A, static_cast<int32_t>(BinaryOp::Mul));
  EXPECT_EQ(B.Code[4].A, static_cast<int32_t>(BinaryOp::Add));
}

TEST(Lowering, SendWithoutPayloadPushesNull) {
  CompiledProgram Prog = compile(R"(
event E;
main machine M {
  var T: id;
  state S { entry { send(T, E); } }
}
)");
  const Body &B = body(Prog, "M.S.entry");
  std::vector<Opcode> Want = {Opcode::LoadVar, Opcode::PushEvent,
                              Opcode::PushNull, Opcode::Send, Opcode::Halt};
  EXPECT_EQ(opcodes(B), Want);
}

TEST(Lowering, IfElseJumpTargets) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var X: int;
  var C: bool;
  state S {
    entry {
      C = true;
      if (C) { X = 1; } else { X = 2; }
      X = 3;
    }
  }
}
)");
  const Body &B = body(Prog, "M.S.entry");
  // Find the JumpIfFalse and check it lands on the else branch, and the
  // Jump after the then branch lands past the else.
  int JumpIfFalseAt = -1, JumpAt = -1;
  for (size_t I = 0; I != B.Code.size(); ++I) {
    if (B.Code[I].Op == Opcode::JumpIfFalse)
      JumpIfFalseAt = static_cast<int>(I);
    if (B.Code[I].Op == Opcode::Jump)
      JumpAt = static_cast<int>(I);
  }
  ASSERT_GE(JumpIfFalseAt, 0);
  ASSERT_GE(JumpAt, 0);
  EXPECT_EQ(B.Code[JumpIfFalseAt].A, JumpAt + 1) << "false lands at else";
  // The else branch is 2 instructions (PushInt, StoreVar).
  EXPECT_EQ(B.Code[JumpAt].A, JumpAt + 3) << "then skips past else";
}

TEST(Lowering, WhileLoopShape) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var X: int;
  state S {
    entry {
      X = 0;
      while (X < 3) { X = X + 1; }
    }
  }
}
)");
  const Body &B = body(Prog, "M.S.entry");
  int BackJump = -1;
  for (size_t I = 0; I != B.Code.size(); ++I)
    if (B.Code[I].Op == Opcode::Jump)
      BackJump = static_cast<int>(I);
  ASSERT_GE(BackJump, 0);
  EXPECT_LT(B.Code[BackJump].A, BackJump) << "loop jumps backwards";
}

TEST(Lowering, NewWithInitializers) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var K: id;
  state S { entry { K = new Kid(A = 1, B = true); } }
}
machine Kid {
  var A: int;
  var B: bool;
  state T { entry { } }
}
)");
  const Body &B = body(Prog, "M.S.entry");
  std::vector<Opcode> Want = {Opcode::PushInt, Opcode::PushBool, Opcode::New,
                              Opcode::StoreVar, Opcode::Halt};
  EXPECT_EQ(opcodes(B), Want);
  const Instr &New = B.Code[2];
  EXPECT_EQ(New.A, 1) << "machine index of Kid";
  const auto &Fields = Prog.Machines[0].InitTables[New.B];
  EXPECT_EQ(Fields, (std::vector<int32_t>{0, 1}));
}

TEST(Lowering, DiscardedNewPops) {
  CompiledProgram Prog = compile(R"(
main machine M {
  state S { entry { new Kid(); } }
}
machine Kid { state T { entry { } } }
)");
  const Body &B = body(Prog, "M.S.entry");
  std::vector<Opcode> Want = {Opcode::New, Opcode::Pop, Opcode::Halt};
  EXPECT_EQ(opcodes(B), Want);
}

TEST(Lowering, TransitionTables) {
  CompiledProgram Prog = compile(R"(
event A; event B; event C; event D;
main machine M {
  state S {
    defer D;
    entry { }
    on A goto T;
    on B push T;
    on C do Act;
  }
  state T { entry { } }
  action Act { skip; }
}
)");
  const StateInfo &S = Prog.Machines[0].States[0];
  EXPECT_EQ(S.OnEvent[0].Kind, TransitionKind::Step);
  EXPECT_EQ(S.OnEvent[0].Target, 1);
  EXPECT_EQ(S.OnEvent[1].Kind, TransitionKind::Call);
  EXPECT_EQ(S.OnEvent[2].Kind, TransitionKind::Action);
  EXPECT_EQ(S.OnEvent[2].Target, 0);
  EXPECT_EQ(S.OnEvent[3].Kind, TransitionKind::None);
  EXPECT_TRUE(S.Deferred.test(3));
  EXPECT_FALSE(S.Deferred.test(0));
}

TEST(Lowering, ModelBodiesOnlyInVerificationBuild) {
  const char *Src = R"(
main machine M {
  var X: int;
  foreign fun F(): int model { result = 1; }
  state S { entry { X = F(); } }
}
)";
  CompiledProgram Full = compile(Src);
  EXPECT_GE(Full.Machines[0].Funs[0].ModelBody, 0);

  LowerOptions Opts;
  Opts.EraseGhosts = true;
  CompileResult R = compileString(Src, Opts);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Program->Machines[0].Funs[0].ModelBody, -1);
}

TEST(Lowering, SourceLocationsTravelWithCode) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var X: int;
  state S { entry {
    X = 1;
  } }
}
)");
  const Body &B = body(Prog, "M.S.entry");
  ASSERT_EQ(B.Locs.size(), B.Code.size());
  EXPECT_EQ(B.Locs[0].Line, 5u) << "the PushInt points at `X = 1;`";
}

TEST(Lowering, DisassemblerIsReadable) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var X: int;
  state S { entry { X = 42; } }
}
)");
  std::string Text = disassemble(body(Prog, "M.S.entry"));
  EXPECT_NE(Text.find("push_int 42"), std::string::npos) << Text;
  EXPECT_NE(Text.find("store_var 0"), std::string::npos) << Text;
  EXPECT_NE(Text.find("halt"), std::string::npos) << Text;
}

} // namespace
