//===- tests/runtime_semantics_test.cpp - One test per semantic rule -------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Each test exercises one rule of the operational semantics (Figures
// 4-6) through the Executor, observing effects via machine variables,
// states and queues.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "runtime/Executor.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

/// Compiles a P program, asserting success.
CompiledProgram compile(const std::string &Src) {
  CompileResult R = compileString(Src);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

/// Runs every enabled machine round-robin until quiescent or error.
void runAll(const Executor &Exec, Config &Cfg, int MaxIters = 10000) {
  for (int I = 0; I != MaxIters; ++I) {
    bool Progress = false;
    for (int32_t Id = 0; Id < static_cast<int32_t>(Cfg.Machines.size());
         ++Id) {
      if (Cfg.hasError() || !Exec.isEnabled(Cfg, Id))
        continue;
      Progress = true;
      Exec.step(Cfg, Id);
    }
    if (!Progress)
      return;
  }
  FAIL() << "runAll did not quiesce";
}

Value var(const Config &Cfg, int32_t Id, int Index) {
  return Cfg.Machines[Id]->Vars[Index];
}

std::string stateName(const CompiledProgram &Prog, const Config &Cfg,
                      int32_t Id) {
  const MachineState &M = *Cfg.Machines[Id];
  if (!M.Alive || M.Frames.empty())
    return "";
  return Prog.Machines[M.MachineIndex].States[M.Frames.back().State].Name;
}

//===----------------------------------------------------------------------===//
// NEW
//===----------------------------------------------------------------------===//

TEST(RuleNew, InitializesVariablesAndRunsEntry) {
  CompiledProgram Prog = compile(R"(
event unit;
main machine Parent {
  var Child: id;
  state S {
    entry { Child = new Kid(Seed = 41); }
  }
}
machine Kid {
  var Seed: int;
  var Mine: id;
  var Untouched: bool;
  state K {
    entry { Seed = Seed + 1; Mine = this; }
  }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  runAll(Exec, Cfg);
  ASSERT_FALSE(Cfg.hasError()) << Cfg.ErrorMessage;
  ASSERT_EQ(Cfg.Machines.size(), 2u);
  // Parent stored the child id.
  EXPECT_EQ(var(Cfg, 0, 0), Value::machine(1));
  // Initializer applied, then entry ran: Seed = 41 + 1.
  EXPECT_EQ(var(Cfg, 1, 0), Value::integer(42));
  // `this` is the created machine's id.
  EXPECT_EQ(var(Cfg, 1, 1), Value::machine(1));
  // Uninitialized variables are ⊥.
  EXPECT_EQ(var(Cfg, 1, 2), Value::null());
}

TEST(RuleNew, CreationIsASchedulingPoint) {
  CompiledProgram Prog = compile(R"(
main machine Parent {
  var Child: id;
  state S { entry { Child = new Kid(); } }
}
machine Kid { state K { entry { } } }
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Executor::StepResult R = Exec.step(Cfg, 0);
  EXPECT_EQ(R.Outcome, Executor::StepOutcome::SchedulingPoint);
  EXPECT_TRUE(R.Created);
  EXPECT_EQ(R.Other, 1);
  // The parent has not stored the id yet: the slice stopped right after
  // the create, with the id still on the operand stack.
  EXPECT_EQ(var(Cfg, 0, 0), Value::null());
}

//===----------------------------------------------------------------------===//
// SEND and the ⊎ append
//===----------------------------------------------------------------------===//

TEST(RuleSend, EnqueuesAndDeduplicates) {
  CompiledProgram Prog = compile(R"(
event Ping(int);
main machine M {
  var Other: id;
  state S {
    entry {
      Other = new Sink();
      send(Other, Ping, 1);
      send(Other, Ping, 1);
      send(Other, Ping, 2);
    }
  }
}
machine Sink {
  state T { defer Ping; entry { } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  // Run only the main machine so the sink never dequeues.
  while (Exec.step(Cfg, 0).Outcome ==
         Executor::StepOutcome::SchedulingPoint) {
  }
  ASSERT_FALSE(Cfg.hasError());
  // ⊎: (Ping,1) queued once; (Ping,2) is distinct.
  ASSERT_EQ(Cfg.Machines[1]->Queue.size(), 2u);
  EXPECT_EQ(Cfg.Machines[1]->Queue[0].second, Value::integer(1));
  EXPECT_EQ(Cfg.Machines[1]->Queue[1].second, Value::integer(2));
}

TEST(RuleSendFail, TargetNull) {
  CompiledProgram Prog = compile(R"(
event Ping;
main machine M {
  var Other: id;
  state S { entry { send(Other, Ping); } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Executor::StepResult R = Exec.step(Cfg, 0);
  EXPECT_EQ(R.Outcome, Executor::StepOutcome::Error);
  EXPECT_EQ(Cfg.Error, ErrorKind::SendToNull);
}

TEST(RuleSendFail, TargetDeleted) {
  CompiledProgram Prog = compile(R"(
event Ping, Kick;
main machine M {
  var Other: id;
  state S {
    entry {
      Other = new Victim();
      send(Other, Kick);
    }
    on Ping goto S;
  }
  state Late {
    entry { }
  }
}
machine Victim {
  state V {
    entry { }
    on Kick goto Gone;
  }
  state Gone { entry { delete; } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  runAll(Exec, Cfg);
  ASSERT_FALSE(Cfg.hasError());
  EXPECT_FALSE(Cfg.Machines[1]->Alive);
  // A late send from the host hits SEND-FAIL2.
  EXPECT_FALSE(Exec.enqueueEvent(Cfg, 1, Prog.findEvent("Ping")));
  EXPECT_EQ(Cfg.Error, ErrorKind::SendToDeleted);
}

//===----------------------------------------------------------------------===//
// ASSERT
//===----------------------------------------------------------------------===//

TEST(RuleAssert, PassAndFail) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var X: int;
  state S { entry { X = 1; assert(X == 1); assert(X == 2); } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  EXPECT_EQ(Cfg.Error, ErrorKind::AssertFailed);
}

TEST(RuleAssert, UndefinedConditionBehavesLikeSkip) {
  // The paper: the machine errors iff the condition evaluates to false;
  // ⊥ is not false.
  CompiledProgram Prog = compile(R"(
main machine M {
  var X: int;
  var Done: bool;
  state S { entry { assert(X == 1); Done = true; } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  EXPECT_FALSE(Cfg.hasError());
  EXPECT_EQ(var(Cfg, 0, 1), Value::boolean(true));
}

//===----------------------------------------------------------------------===//
// RAISE / LEAVE
//===----------------------------------------------------------------------===//

TEST(RuleRaise, AbortsRemainingStatement) {
  CompiledProgram Prog = compile(R"(
event Go;
main machine M {
  var X: int;
  state S {
    entry { X = 1; raise(Go); X = 99; }
    on Go goto T;
  }
  state T { entry { } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  runAll(Exec, Cfg);
  ASSERT_FALSE(Cfg.hasError());
  EXPECT_EQ(var(Cfg, 0, 0), Value::integer(1)) << "X = 99 must not run";
  EXPECT_EQ(stateName(Prog, Cfg, 0), "T");
  // msg reflects the raised event.
  EXPECT_EQ(Cfg.Machines[0]->Msg, Value::event(Prog.findEvent("Go")));
}

TEST(RuleLeave, JumpsToEndOfEntry) {
  CompiledProgram Prog = compile(R"(
event Nudge;
main machine M {
  var X: int;
  state S {
    entry { X = 1; leave; X = 99; }
    on Nudge goto S;
  }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Executor::StepResult R = Exec.step(Cfg, 0);
  EXPECT_EQ(R.Outcome, Executor::StepOutcome::Blocked);
  EXPECT_EQ(var(Cfg, 0, 0), Value::integer(1));
}

//===----------------------------------------------------------------------===//
// DEQUEUE with deferral
//===----------------------------------------------------------------------===//

TEST(RuleDequeue, SkipsDeferredPrefix) {
  CompiledProgram Prog = compile(R"(
event A(int);
event B(int);
main machine M {
  var Got: int;
  state S {
    defer A;
    entry { }
    on B goto T;
  }
  state T { defer A; entry { Got = arg; } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0); // blocks
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("A"), Value::integer(7));
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("B"), Value::integer(8));
  Exec.step(Cfg, 0);
  ASSERT_FALSE(Cfg.hasError()) << Cfg.ErrorMessage;
  // B was dequeued past the deferred A; A stays queued.
  EXPECT_EQ(var(Cfg, 0, 0), Value::integer(8));
  ASSERT_EQ(Cfg.Machines[0]->Queue.size(), 1u);
  EXPECT_EQ(Cfg.Machines[0]->Queue[0].first, Prog.findEvent("A"));
}

TEST(RuleDequeue, TransitionOverridesDeferral) {
  // "In case an event e is both in the deferred set and has a defined
  // transition from a state, the defined transition overrides."
  CompiledProgram Prog = compile(R"(
event A;
main machine M {
  state S {
    defer A;
    entry { }
    on A goto T;
  }
  state T { entry { } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("A"));
  Exec.step(Cfg, 0);
  EXPECT_EQ(stateName(Prog, Cfg, 0), "T");
}

//===----------------------------------------------------------------------===//
// STEP: exit before entry
//===----------------------------------------------------------------------===//

TEST(RuleStep, RunsExitThenEntry) {
  CompiledProgram Prog = compile(R"(
event Go;
main machine M {
  var Trace: int;
  state S {
    entry { Trace = 1; }
    exit { Trace = Trace * 10 + 2; }
    on Go goto T;
  }
  state T { entry { Trace = Trace * 10 + 3; } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("Go"));
  Exec.step(Cfg, 0);
  EXPECT_EQ(var(Cfg, 0, 0), Value::integer(123)) << "order: entry S, exit "
                                                    "S, entry T";
}

//===----------------------------------------------------------------------===//
// CALL transitions: inheritance of deferrals and actions
//===----------------------------------------------------------------------===//

TEST(RuleCall, InheritsDeferralsAndActions) {
  CompiledProgram Prog = compile(R"(
event In, Def(int), Act(int), Ret;
main machine M {
  var Acted: int;
  var DefGot: int;
  state S {
    defer Def;
    entry { }
    on In push Sub;
    on Act do DoIt;
    on Ret goto Done;
  }
  state Sub {
    entry { }
    // Sub itself handles nothing: Def must stay deferred (inherited ⊤),
    // Act must run the inherited action, Ret must pop.
  }
  state Done {
    entry { }
    on Def do GotIt;
  }
  action DoIt { Acted = arg; }
  action GotIt { DefGot = arg; }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("In"));
  Exec.step(Cfg, 0); // Enter Sub.
  ASSERT_EQ(stateName(Prog, Cfg, 0), "Sub");
  ASSERT_EQ(Cfg.Machines[0]->Frames.size(), 2u);

  // Def is inherited-deferred inside Sub.
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("Def"), Value::integer(5));
  EXPECT_EQ(Exec.step(Cfg, 0).Outcome, Executor::StepOutcome::Blocked);
  EXPECT_EQ(Cfg.Machines[0]->Queue.size(), 1u);

  // Act runs the caller's action without leaving Sub.
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("Act"), Value::integer(9));
  Exec.step(Cfg, 0);
  EXPECT_EQ(var(Cfg, 0, 0), Value::integer(9));
  EXPECT_EQ(stateName(Prog, Cfg, 0), "Sub");

  // Ret is unhandled in Sub: POP1 back to S, whose transition fires;
  // the deferred Def is then deliverable in Done.
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("Ret"));
  Exec.step(Cfg, 0);
  EXPECT_EQ(stateName(Prog, Cfg, 0), "Done");
  EXPECT_EQ(Cfg.Machines[0]->Frames.size(), 1u);
  EXPECT_EQ(var(Cfg, 0, 1), Value::integer(5)) << "deferred Def delivered "
                                                  "after the pop";
}

TEST(RuleCall, StaticActionOverridesInherited) {
  CompiledProgram Prog = compile(R"(
event In, Act;
main machine M {
  var Who: int;
  state S {
    entry { }
    on In push Sub;
    on Act do Outer;
  }
  state Sub {
    entry { }
    on Act do Inner;
  }
  action Outer { Who = 1; }
  action Inner { Who = 2; }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("In"));
  Exec.step(Cfg, 0);
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("Act"));
  Exec.step(Cfg, 0);
  EXPECT_EQ(var(Cfg, 0, 0), Value::integer(2))
      << "the static binding in Sub overrides the inherited one";
}

//===----------------------------------------------------------------------===//
// POP1 / POP2 / POP-FAIL
//===----------------------------------------------------------------------===//

TEST(RulePop, ExitRunsOnPop) {
  CompiledProgram Prog = compile(R"(
event In, Up;
main machine M {
  var Trace: int;
  state S {
    entry { Trace = 0; }
    on In push Sub;
    on Up goto Done;
  }
  state Sub {
    entry { Trace = Trace * 10 + 1; }
    exit { Trace = Trace * 10 + 2; }
  }
  state Done {
    entry { Trace = Trace * 10 + 3; }
  }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("In"));
  Exec.step(Cfg, 0);
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("Up"));
  Exec.step(Cfg, 0);
  // entry Sub (1), exit Sub on pop (2), entry Done (3).
  EXPECT_EQ(var(Cfg, 0, 0), Value::integer(123));
}

TEST(RulePop, UnhandledEventAtBottomIsError) {
  CompiledProgram Prog = compile(R"(
event Mystery;
main machine M {
  state S { entry { } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("Mystery"));
  Executor::StepResult R = Exec.step(Cfg, 0);
  EXPECT_EQ(R.Outcome, Executor::StepOutcome::Error);
  EXPECT_EQ(Cfg.Error, ErrorKind::UnhandledEvent);
  EXPECT_NE(Cfg.ErrorMessage.find("Mystery"), std::string::npos);
}

TEST(RulePop, ReturnFromBottomIsError) {
  CompiledProgram Prog = compile(R"(
main machine M {
  state S { entry { return; } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Executor::StepResult R = Exec.step(Cfg, 0);
  EXPECT_EQ(R.Outcome, Executor::StepOutcome::Error);
  EXPECT_EQ(Cfg.Error, ErrorKind::PopFromEmptyStack);
}

TEST(RuleReturn, RunsExitAndResumesDequeue) {
  CompiledProgram Prog = compile(R"(
event In, Next;
main machine M {
  var Trace: int;
  state S {
    entry { Trace = 0; }
    on In push Sub;
    on Next goto Done;
  }
  state Sub {
    entry { Trace = Trace * 10 + 1; return; }
    exit { Trace = Trace * 10 + 2; }
  }
  state Done { entry { Trace = Trace * 10 + 3; } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("In"));
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("Next"));
  runAll(Exec, Cfg);
  ASSERT_FALSE(Cfg.hasError()) << Cfg.ErrorMessage;
  // Sub entry (1), return runs exit (2), pop, dequeue Next in S (3).
  EXPECT_EQ(var(Cfg, 0, 0), Value::integer(123));
  EXPECT_EQ(stateName(Prog, Cfg, 0), "Done");
}

//===----------------------------------------------------------------------===//
// The `call S;` statement: full continuations in the interpreter
//===----------------------------------------------------------------------===//

TEST(CallStatement, ContinuationResumesAfterReturn) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var Trace: int;
  state S {
    entry {
      Trace = 1;
      call Sub;
      Trace = Trace * 10 + 3;
    }
  }
  state Sub {
    entry { Trace = Trace * 10 + 2; return; }
  }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  ASSERT_FALSE(Cfg.hasError()) << Cfg.ErrorMessage;
  EXPECT_EQ(var(Cfg, 0, 0), Value::integer(123))
      << "the statement after `call` resumes when the callee returns";
  EXPECT_EQ(Cfg.Machines[0]->Frames.size(), 1u);
}

TEST(CallStatement, ContinuationDiscardedOnPop) {
  // When the pushed state pops because of an unhandled event (POP1),
  // the raise aborts the pending continuation (documented choice).
  CompiledProgram Prog = compile(R"(
event Up;
main machine M {
  var Trace: int;
  state S {
    entry {
      Trace = 1;
      call Sub;
      Trace = Trace * 10 + 9;
    }
    on Up goto Done;
  }
  state Sub {
    entry { Trace = Trace * 10 + 2; raise(Up); }
  }
  state Done { entry { Trace = Trace * 10 + 3; } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  ASSERT_FALSE(Cfg.hasError()) << Cfg.ErrorMessage;
  EXPECT_EQ(var(Cfg, 0, 0), Value::integer(123))
      << "continuation (…9) must not run after the event popped Sub";
  EXPECT_EQ(stateName(Prog, Cfg, 0), "Done");
}

//===----------------------------------------------------------------------===//
// DELETE
//===----------------------------------------------------------------------===//

TEST(RuleDelete, MachineHalts) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var X: int;
  state S { entry { X = 1; delete; X = 2; } }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Executor::StepResult R = Exec.step(Cfg, 0);
  EXPECT_EQ(R.Outcome, Executor::StepOutcome::Halted);
  EXPECT_FALSE(Cfg.Machines[0]->Alive);
  EXPECT_FALSE(Exec.isEnabled(Cfg, 0));
}

//===----------------------------------------------------------------------===//
// ⊥ propagation and the undefined-branch extension
//===----------------------------------------------------------------------===//

TEST(Undefined, OperatorsAreStrict) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var A: int;
  var B: bool;
  var C: bool;
  state S {
    entry {
      A = A + 1;         // ⊥ + 1 = ⊥
      B = A == A;        // ⊥ == ⊥ = ⊥ (equality is strict too)
      C = 1 / 0 == 1;    // division by zero yields ⊥, so C is ⊥
    }
  }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  ASSERT_FALSE(Cfg.hasError()) << Cfg.ErrorMessage;
  EXPECT_EQ(var(Cfg, 0, 0), Value::null());
  EXPECT_EQ(var(Cfg, 0, 1), Value::null());
  EXPECT_EQ(var(Cfg, 0, 2), Value::null());
}

TEST(Undefined, BranchingOnUndefinedIsAnError) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var A: bool;
  state S {
    entry { if (A) { skip; } }
  }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Executor::StepResult R = Exec.step(Cfg, 0);
  EXPECT_EQ(R.Outcome, Executor::StepOutcome::Error);
  EXPECT_EQ(Cfg.Error, ErrorKind::UndefinedBranch);
}

//===----------------------------------------------------------------------===//
// Foreign functions with model bodies
//===----------------------------------------------------------------------===//

TEST(Foreign, ModelBodyComputesResult) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var X: int;
  foreign fun Twice(v: int): int model {
    result = v + v;
  }
  state S { entry { X = Twice(21); } }
}
)");
  Executor::Options Opts;
  Opts.UseModelBodies = true;
  Executor Exec(Prog, Opts);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  ASSERT_FALSE(Cfg.hasError()) << Cfg.ErrorMessage;
  EXPECT_EQ(var(Cfg, 0, 0), Value::integer(42));
}

TEST(Foreign, NativeImplementationWins) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var X: int;
  foreign fun Magic(): int;
  state S { entry { X = Magic(); } }
}
)");
  Executor Exec(Prog);
  Exec.registerForeign("M", "Magic",
                       [](Config &, int32_t, const std::vector<Value> &) {
                         return Value::integer(7);
                       });
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  ASSERT_FALSE(Cfg.hasError());
  EXPECT_EQ(var(Cfg, 0, 0), Value::integer(7));
}

TEST(Foreign, StrictModeErrorsOnMissingImplementation) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var X: int;
  foreign fun Magic(): int;
  state S { entry { X = Magic(); } }
}
)");
  Executor::Options Opts;
  Opts.StrictForeign = true;
  Executor Exec(Prog, Opts);
  Config Cfg = Exec.makeInitialConfig();
  Executor::StepResult R = Exec.step(Cfg, 0);
  EXPECT_EQ(R.Outcome, Executor::StepOutcome::Error);
  EXPECT_EQ(Cfg.Error, ErrorKind::UnknownForeign);
}

//===----------------------------------------------------------------------===//
// Divergence guard (liveness property 1)
//===----------------------------------------------------------------------===//

TEST(Divergence, InfinitePrivateLoopIsFlagged) {
  CompiledProgram Prog = compile(R"(
main machine M {
  var X: int;
  state S { entry { X = 0; while (X == 0) { skip; } } }
}
)");
  Executor::Options Opts;
  Opts.MaxStepsPerSlice = 1000;
  Executor Exec(Prog, Opts);
  Config Cfg = Exec.makeInitialConfig();
  Executor::StepResult R = Exec.step(Cfg, 0);
  EXPECT_EQ(R.Outcome, Executor::StepOutcome::Error);
  EXPECT_EQ(Cfg.Error, ErrorKind::Divergence);
}

//===----------------------------------------------------------------------===//
// msg / arg
//===----------------------------------------------------------------------===//

TEST(MsgArg, TrackLastDequeuedEvent) {
  CompiledProgram Prog = compile(R"(
event Data(int);
main machine M {
  var E: event;
  var V: int;
  state S {
    entry { }
    on Data do Capture;
  }
  action Capture { E = msg; V = arg; }
}
)");
  Executor Exec(Prog);
  Config Cfg = Exec.makeInitialConfig();
  Exec.step(Cfg, 0);
  Exec.enqueueEvent(Cfg, 0, Prog.findEvent("Data"), Value::integer(31));
  Exec.step(Cfg, 0);
  EXPECT_EQ(var(Cfg, 0, 0), Value::event(Prog.findEvent("Data")));
  EXPECT_EQ(var(Cfg, 0, 1), Value::integer(31));
}

} // namespace
