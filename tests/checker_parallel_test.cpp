//===- tests/checker_parallel_test.cpp - Parallel exploration tests ---------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Serial-vs-parallel equivalence: on exhausted searches the engine's
// determinism contract promises worker-count-independent DistinctStates,
// Terminals, TerminalHashes-as-a-set, and error verdicts. Exercised over
// the Elevator/German corpus at several delay bounds, clean and with
// seeded bugs, plus a replay check that a parallel counterexample's
// schedule reproduces the error.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/Replay.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

#include <set>

using namespace p;

namespace {

CompiledProgram compile(const std::string &Src) {
  CompileResult R = compileString(Src);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

CheckResult runWith(const CompiledProgram &Prog, int Workers, int Delay,
                    bool StopOnFirstError) {
  CheckOptions Opts;
  Opts.DelayBound = Delay;
  Opts.Workers = Workers;
  Opts.StopOnFirstError = StopOnFirstError;
  Opts.CollectTerminals = true;
  return check(Prog, Opts);
}

/// Asserts the worker-count-independent slice of two exhausted results.
void expectEquivalent(const CheckResult &Serial, const CheckResult &Par,
                      const char *What) {
  ASSERT_TRUE(Serial.Stats.Exhausted) << What;
  ASSERT_TRUE(Par.Stats.Exhausted) << What;
  EXPECT_EQ(Serial.Stats.DistinctStates, Par.Stats.DistinctStates) << What;
  EXPECT_EQ(Serial.Stats.Terminals, Par.Stats.Terminals) << What;
  EXPECT_EQ(Serial.ErrorFound, Par.ErrorFound) << What;
  EXPECT_EQ(Serial.Error, Par.Error) << What;
  std::set<uint64_t> A(Serial.TerminalHashes.begin(),
                       Serial.TerminalHashes.end());
  std::set<uint64_t> B(Par.TerminalHashes.begin(),
                       Par.TerminalHashes.end());
  EXPECT_EQ(A, B) << What;
}

TEST(ParallelChecker, ElevatorMatchesSerialAcrossWorkerCounts) {
  CompiledProgram Prog = compile(corpus::elevator());
  for (int D = 0; D <= 2; ++D) {
    CheckResult Serial = runWith(Prog, 1, D, /*StopOnFirstError=*/false);
    for (int W : {2, 8}) {
      CheckResult Par = runWith(Prog, W, D, false);
      expectEquivalent(Serial, Par,
                       ("elevator d=" + std::to_string(D) + " w=" +
                        std::to_string(W))
                           .c_str());
    }
  }
}

TEST(ParallelChecker, GermanMatchesSerialAcrossWorkerCounts) {
  CompiledProgram Prog = compile(corpus::german(2));
  for (int D = 0; D <= 2; ++D) {
    CheckResult Serial = runWith(Prog, 1, D, false);
    for (int W : {2, 8}) {
      CheckResult Par = runWith(Prog, W, D, false);
      expectEquivalent(Serial, Par,
                       ("german d=" + std::to_string(D) + " w=" +
                        std::to_string(W))
                           .c_str());
    }
  }
}

TEST(ParallelChecker, SwitchLedExactStatesMatchesSerial) {
  CompiledProgram Prog = compile(corpus::switchLed());
  CheckOptions Opts;
  Opts.DelayBound = 2;
  Opts.StopOnFirstError = false;
  Opts.ExactStates = true;
  CheckResult Serial = check(Prog, Opts);
  Opts.Workers = 8;
  CheckResult Par = check(Prog, Opts);
  ASSERT_TRUE(Serial.Stats.Exhausted);
  ASSERT_TRUE(Par.Stats.Exhausted);
  EXPECT_EQ(Serial.Stats.DistinctStates, Par.Stats.DistinctStates);
  EXPECT_EQ(Serial.Stats.Terminals, Par.Stats.Terminals);
}

TEST(ParallelChecker, SeededBugVerdictsAgreeAcrossWorkerCounts) {
  struct BugCase {
    const char *Name;
    std::string Source;
    ErrorKind Expected;
  };
  const BugCase Bugs[] = {
      {"elevator/missing-defer-close",
       corpus::elevator(corpus::ElevatorBug::MissingDeferCloseDoor),
       ErrorKind::UnhandledEvent},
      {"german/skip-owner-invalidation",
       corpus::german(2, corpus::GermanBug::SkipOwnerInvalidation),
       ErrorKind::AssertFailed},
  };
  for (const BugCase &Bug : Bugs) {
    CompiledProgram Prog = compile(Bug.Source);
    for (int W : {1, 2, 8}) {
      CheckResult R = runWith(Prog, W, /*Delay=*/2,
                              /*StopOnFirstError=*/true);
      ASSERT_TRUE(R.ErrorFound) << Bug.Name << " w=" << W;
      EXPECT_EQ(R.Error, Bug.Expected) << Bug.Name << " w=" << W;
      EXPECT_FALSE(R.Schedule.empty()) << Bug.Name << " w=" << W;
      EXPECT_FALSE(R.Trace.empty()) << Bug.Name << " w=" << W;
    }
  }
}

TEST(ParallelChecker, ParallelCounterexampleReplays) {
  CompiledProgram Prog =
      compile(corpus::german(2, corpus::GermanBug::SkipOwnerInvalidation));
  CheckResult R = runWith(Prog, 4, /*Delay=*/2, /*StopOnFirstError=*/true);
  ASSERT_TRUE(R.ErrorFound);
  ReplayResult Replay = replaySchedule(Prog, R.Schedule);
  ASSERT_TRUE(Replay.ErrorReached)
      << "parallel counterexample schedule did not reproduce the error";
  EXPECT_EQ(Replay.Error, R.Error);
  EXPECT_EQ(Replay.ErrorMessage, R.ErrorMessage);
}

TEST(ParallelChecker, LazyTraceRenderingMatchesReplayLog) {
  // The counterexample trace is rendered from the schedule after the
  // search; its run/choice/delay lines must agree with an independent
  // replay of the same schedule.
  CompiledProgram Prog =
      compile(corpus::elevator(corpus::ElevatorBug::MissingDeferCloseDoor));
  CheckResult R = runWith(Prog, 4, /*Delay=*/2, /*StopOnFirstError=*/true);
  ASSERT_TRUE(R.ErrorFound);
  ASSERT_FALSE(R.Trace.empty());
  // Trace = "initial: ..." line + one line per decision.
  EXPECT_EQ(R.Trace.size(), R.Schedule.size() + 1);
  EXPECT_NE(R.Trace.front().find("initial:"), std::string::npos);
  EXPECT_NE(R.Trace.back().find("error"), std::string::npos);
  ReplayResult Replay = replaySchedule(Prog, R.Schedule);
  ASSERT_TRUE(Replay.ErrorReached);
  // The replay log's run lines describe the same machines in the same
  // order (replay renders "delay" without the machine name, so compare
  // the run lines only).
  size_t RunsChecked = 0;
  for (size_t I = 0; I != Replay.Steps.size(); ++I)
    if (Replay.Steps[I].rfind("run ", 0) == 0) {
      EXPECT_EQ(Replay.Steps[I], R.Trace[I + 1]);
      ++RunsChecked;
    }
  EXPECT_GT(RunsChecked, 0u);
}

TEST(ParallelChecker, AutoWorkerCountRuns) {
  CompiledProgram Prog = compile(corpus::elevator());
  CheckResult Serial = runWith(Prog, 1, 1, false);
  CheckOptions Opts;
  Opts.DelayBound = 1;
  Opts.Workers = 0; // hardware_concurrency
  Opts.StopOnFirstError = false;
  Opts.CollectTerminals = true;
  CheckResult Par = check(Prog, Opts);
  EXPECT_GE(Par.Stats.WorkersUsed, 1);
  expectEquivalent(Serial, Par, "elevator d=1 w=auto");
}

TEST(ParallelChecker, DepthBoundedMatchesSerial) {
  CompiledProgram Prog = compile(corpus::elevator());
  CheckOptions Opts;
  Opts.Strategy = SearchStrategy::DepthBounded;
  Opts.DepthBound = 14;
  Opts.StopOnFirstError = false;
  Opts.CollectTerminals = true;
  CheckResult Serial = check(Prog, Opts);
  Opts.Workers = 8;
  CheckResult Par = check(Prog, Opts);
  // Depth-bounded pruning is exact-visit, so even a depth-cut search
  // has a worker-count-independent explored set.
  EXPECT_EQ(Serial.Stats.DistinctStates, Par.Stats.DistinctStates);
  EXPECT_EQ(Serial.Stats.Terminals, Par.Stats.Terminals);
  EXPECT_EQ(Serial.ErrorFound, Par.ErrorFound);
}

} // namespace
