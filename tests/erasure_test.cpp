//===- tests/erasure_test.cpp - Ghost erasure property tests ----------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Section 3.3: "the type system of P ensures that the ghost machines can
// be erased during compilation without changing the semantics of the
// program". These tests exercise the erasing lowering and compare the
// erased program's behaviour against the verification build.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "host/Host.h"

#include <gtest/gtest.h>

using namespace p;

namespace {

CompiledProgram compileWith(const std::string &Src, bool Erase) {
  LowerOptions Opts;
  Opts.EraseGhosts = Erase;
  CompileResult R = compileString(Src, Opts);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    std::abort();
  return std::move(*R.Program);
}

TEST(Erasure, PreservesEventAndMachineIndices) {
  CompiledProgram Full = compileWith(corpus::elevator(), false);
  CompiledProgram Erased = compileWith(corpus::elevator(), true);

  ASSERT_EQ(Full.Events.size(), Erased.Events.size());
  for (size_t I = 0; I != Full.Events.size(); ++I)
    EXPECT_EQ(Full.Events[I].Name, Erased.Events[I].Name);

  ASSERT_EQ(Full.Machines.size(), Erased.Machines.size());
  for (size_t I = 0; I != Full.Machines.size(); ++I) {
    EXPECT_EQ(Full.Machines[I].Name, Erased.Machines[I].Name);
    EXPECT_EQ(Full.Machines[I].Ghost, Erased.Machines[I].Ghost);
  }
}

TEST(Erasure, GhostMachinesLoseTheirCode) {
  CompiledProgram Erased = compileWith(corpus::elevator(), true);
  for (const MachineInfo &M : Erased.Machines) {
    if (!M.Ghost)
      continue;
    EXPECT_TRUE(M.Bodies.empty()) << M.Name;
    for (const StateInfo &St : M.States) {
      EXPECT_EQ(St.EntryBody, -1);
      EXPECT_EQ(St.ExitBody, -1);
    }
  }
}

TEST(Erasure, GhostMainYieldsNoRuntimeMain) {
  CompiledProgram Full = compileWith(corpus::elevator(), false);
  CompiledProgram Erased = compileWith(corpus::elevator(), true);
  EXPECT_GE(Full.MainMachine, 0);
  EXPECT_TRUE(Full.Machines[Full.MainMachine].Ghost);
  EXPECT_EQ(Erased.MainMachine, -1)
      << "the host must create the real machine explicitly";
}

TEST(Erasure, RealTransitionTablesAreUntouched) {
  CompiledProgram Full = compileWith(corpus::elevator(), false);
  CompiledProgram Erased = compileWith(corpus::elevator(), true);
  int Index = Full.findMachine("Elevator");
  ASSERT_GE(Index, 0);
  const MachineInfo &F = Full.Machines[Index];
  const MachineInfo &E = Erased.Machines[Index];
  ASSERT_EQ(F.States.size(), E.States.size());
  for (size_t S = 0; S != F.States.size(); ++S) {
    EXPECT_EQ(F.States[S].Name, E.States[S].Name);
    EXPECT_EQ(F.States[S].Deferred, E.States[S].Deferred);
    EXPECT_EQ(F.States[S].OnEvent, E.States[S].OnEvent);
  }
}

TEST(Erasure, GhostStatementsAreDropped) {
  const char *Src = R"(
event Note(int);
ghost machine Monitor { state S { defer Note; entry { } } }
main machine M {
  ghost var Mon: id;
  ghost var Shadow: int;
  var X: int;
  state S {
    entry {
      Mon = new Monitor();
      X = 1;
      Shadow = X + 1;
      send(Mon, Note, X);
      assert(Shadow == 2);
      X = X + 1;
      assert(X == 2);
    }
  }
}
)";
  CompiledProgram Full = compileWith(Src, false);
  CompiledProgram Erased = compileWith(Src, true);
  int Index = Full.findMachine("M");
  const Body &FullBody = Full.Machines[Index].Bodies[0];
  const Body &ErasedBody = Erased.Machines[Index].Bodies[0];
  // Erasure removed the ghost new/assign/send/assert but kept both real
  // assignments and the real assert.
  EXPECT_LT(ErasedBody.Code.size(), FullBody.Code.size());
  int Sends = 0, News = 0, Asserts = 0, Stores = 0;
  for (const Instr &I : ErasedBody.Code) {
    Sends += I.Op == Opcode::Send;
    News += I.Op == Opcode::New;
    Asserts += I.Op == Opcode::Assert;
    Stores += I.Op == Opcode::StoreVar;
  }
  EXPECT_EQ(Sends, 0);
  EXPECT_EQ(News, 0);
  EXPECT_EQ(Asserts, 1);
  EXPECT_EQ(Stores, 2);
}

TEST(Erasure, ErasedElevatorRunsTheScriptedSession) {
  // The same session the generated-C driver runs (codegen_test.cpp):
  // the two backends must agree state for state.
  CompiledProgram Erased = compileWith(corpus::elevator(), true);
  Host H(Erased);
  int32_t Id = H.createMachine("Elevator");
  ASSERT_GE(Id, 0);
  EXPECT_EQ(H.currentStateName(Id), "DoorClosed");

  ASSERT_TRUE(H.addEvent(Id, "OpenDoor"));
  EXPECT_EQ(H.currentStateName(Id), "DoorOpening");
  ASSERT_TRUE(H.addEvent(Id, "DoorOpened"));
  EXPECT_EQ(H.currentStateName(Id), "DoorOpened");
  ASSERT_TRUE(H.addEvent(Id, "TimerFired"));
  EXPECT_EQ(H.currentStateName(Id), "DoorOpenedOkToClose");
  ASSERT_TRUE(H.addEvent(Id, "CloseDoor"));
  EXPECT_EQ(H.currentStateName(Id), "StoppingTimer");
  ASSERT_TRUE(H.addEvent(Id, "OperationSuccess"));
  EXPECT_EQ(H.currentStateName(Id), "DoorClosing");
  ASSERT_TRUE(H.addEvent(Id, "DoorClosed"));
  EXPECT_EQ(H.currentStateName(Id), "DoorClosed");

  // Deferred CloseDoor during opening is preserved, not dropped.
  ASSERT_TRUE(H.addEvent(Id, "OpenDoor"));
  ASSERT_TRUE(H.addEvent(Id, "CloseDoor"));
  EXPECT_EQ(H.currentStateName(Id), "DoorOpening");
  ASSERT_TRUE(H.addEvent(Id, "DoorOpened"));
  EXPECT_EQ(H.currentStateName(Id), "DoorOpened");
  EXPECT_FALSE(H.hasError());
}

TEST(Erasure, ErasedSwitchLedGivesUpAfterThreeFailures) {
  CompiledProgram Erased = compileWith(corpus::switchLed(), true);
  Host H(Erased);
  int32_t Id = H.createMachine("SwitchLedDriver");
  ASSERT_GE(Id, 0);
  EXPECT_EQ(H.currentStateName(Id), "Off");
  ASSERT_TRUE(H.addEvent(Id, "SwitchedOn"));
  EXPECT_EQ(H.currentStateName(Id), "TurningOn");
  ASSERT_TRUE(H.addEvent(Id, "LedFailed"));
  EXPECT_EQ(H.currentStateName(Id), "RetryOn");
  EXPECT_EQ(H.readVar(Id, "Retries"), Value::integer(1));
  ASSERT_TRUE(H.addEvent(Id, "LedFailed"));
  EXPECT_EQ(H.readVar(Id, "Retries"), Value::integer(2));
  ASSERT_TRUE(H.addEvent(Id, "LedFailed"));
  // Third failure: the driver gives up and reports Off.
  EXPECT_EQ(H.currentStateName(Id), "Off");
  EXPECT_FALSE(H.hasError());
}

TEST(Erasure, IsIdempotentOnGhostFreePrograms) {
  const char *Src = R"(
event Tick(int);
main machine M {
  var X: int;
  state S {
    entry { X = 0; }
    on Tick do Bump;
  }
  action Bump { X = X + arg; }
}
)";
  CompiledProgram Plain = compileWith(Src, false);
  CompiledProgram Erased = compileWith(Src, true);
  ASSERT_EQ(Plain.Machines.size(), Erased.Machines.size());
  const MachineInfo &A = Plain.Machines[0];
  const MachineInfo &B = Erased.Machines[0];
  ASSERT_EQ(A.Bodies.size(), B.Bodies.size());
  for (size_t I = 0; I != A.Bodies.size(); ++I)
    EXPECT_EQ(A.Bodies[I].Code, B.Bodies[I].Code);
}

} // namespace
