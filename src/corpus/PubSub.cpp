//===- corpus/PubSub.cpp - Host-driven publish/subscribe broker ------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The host-throughput corpus program (bench/bench_host_throughput.cpp):
// a real (non-ghost) Broker machine fanning every host-published
// message out to N real Subscriber machines. Nothing here is ghost, so
// the erased program is the program — the host can create the broker
// and pepper it with Publish events from many OS threads, which is
// exactly the server-class ingress pattern the reactor pump exists for.
//
// Payloads matter: queue entries are ⊎-unique per (event, payload), so
// a load generator must number its Publish payloads or consecutive
// identical messages coalesce into one delivery.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace p;

std::string corpus::pubSub(int NumSubscribers) {
  if (NumSubscribers < 1)
    NumSubscribers = 1;

  std::string Src = R"(
event unit;

// Host/OS -> Broker; the payload is the message sequence number.
event Publish(int);
// Broker -> Subscriber, carrying the same sequence number.
event Deliver(int);

main machine Broker {
)";
  for (int I = 1; I <= NumSubscribers; ++I)
    Src += "  var Sub" + std::to_string(I) + ": id;\n";
  Src += R"(  var Published: int;

  state Starting {
    entry {
      Published = 0;
)";
  for (int I = 1; I <= NumSubscribers; ++I)
    Src += "      Sub" + std::to_string(I) + " = new Subscriber();\n";
  Src += R"(      raise(unit);
    }
    on unit goto Serving;
  }

  state Serving {
    entry { }
    on Publish do Fanout;
  }

  action Fanout {
    Published = Published + 1;
)";
  for (int I = 1; I <= NumSubscribers; ++I)
    Src += "    send(Sub" + std::to_string(I) + ", Deliver, arg);\n";
  Src += R"(  }
}

machine Subscriber {
  var Received: int;
  var Last: int;

  state Listening {
    entry { Received = 0; }
    on Deliver do Consume;
  }

  action Consume {
    Received = Received + 1;
    Last = arg;
  }
}
)";
  return Src;
}
