//===- corpus/WorkerPool.cpp - Roster-free symmetric worker pool -----------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// A boss/worker pool built to exercise the checker's machine-symmetry
// reduction (CheckOptions::Reduce). The boss tracks only *counts* and a
// transient grant target — never a per-worker roster — so permuting the
// worker instances maps reachable configurations onto reachable
// configurations and the canonicalizer collapses their orbits. Contrast
// with the German corpus, whose Home directory pins each client id in a
// position-unrolled roster (Client1..N), freezing the symmetry at the
// value level; see DESIGN.md "Reduction".
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace p;

std::string corpus::workerPool(int NumWorkers, WorkerPoolBug Bug) {
  if (NumWorkers < 1)
    NumWorkers = 1;

  std::string Src = R"(
event unit;

// Worker -> Boss; both carry the sending worker itself. (The payload on
// Done matters: queue entries are ⊎-unique per (event, payload), so a
// payloadless Done from one worker would swallow another's.)
event Request(id);
event Done(id);

// Boss -> Worker.
event Grant;

main ghost machine Boss {
  var Pending: id;
  var Remaining: int;

  state BInit {
    entry {
      Remaining = )" + std::to_string(NumWorkers) + R"(;
)";
  for (int I = 0; I != NumWorkers; ++I)
    Src += "      new Worker(BossV = this);\n";
  Src += R"(      raise(unit);
    }
    on unit goto Serve;
  }

  // One flat serving state: grants and completions interleave freely,
  // and the boss's memory of a worker lives only from its Request to
  // the matching Grant.
  state Serve {
    entry { }
    on Request do GrantIt;
    on Done do CountDone;
  }

  action GrantIt {
    Pending = arg;
    send(Pending, Grant);
    Pending = null;
  }

  action CountDone {
)";
  // The seeded bug undercounts the pool: the N-th completion trips the
  // assertion, at any interleaving (delay bound 0 suffices).
  Src += Bug == WorkerPoolBug::UndercountedPool
             ? "    assert(Remaining > 1);\n"
             : "    assert(Remaining > 0);\n";
  Src += R"(    Remaining = Remaining - 1;
  }
}

symmetric machine Worker {
  var BossV: id;

  state Asking {
    entry { send(BossV, Request, this); }
    on Grant goto Working;
  }

  state Working {
    entry {
      send(BossV, Done, this);
      raise(unit);
    }
    on unit goto Idle;
  }

  state Idle {
    entry { }
  }
}
)";
  return Src;
}
