//===- corpus/SwitchLed.cpp - The Switch-and-LED driver of Section 4.1 -----===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The simple switch-and-LED device of Section 4.1: a real driver machine
// translating switch toggles into LED commands, with transfer-failure
// retries; ghost Switch (user) and Led (device) machines close the
// system. The hand-written baseline this is benchmarked against lives in
// bench/bench_sec41_overhead.cpp.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace p;

std::string corpus::switchLed(SwitchLedBug Bug) {
  const char *DeferSwitch =
      Bug == SwitchLedBug::MissingDeferSwitch
          ? "\n"
          : "    defer SwitchedOn, SwitchedOff;\n";
  const char *RetryBound =
      Bug == SwitchLedBug::WrongRetryAssert ? "2" : "3";

  std::string Src = R"(
event unit;
event giveUp;

// Switch -> Driver.
event SwitchedOn;
event SwitchedOff;

// Driver -> Led.
event TurnOnLed;
event TurnOffLed;

// Led -> Driver.
event LedOk;
event LedFailed;

machine SwitchLedDriver {
  ghost var LedV: id;
  var Retries: int;

  action Ignore { skip; }

  state Init {
    entry {
      Retries = 0;
      LedV = new Led(Driver = this);
      raise(unit);
    }
    on unit goto Off;
  }

  state Off {
    entry { }
    on SwitchedOff do Ignore;
    on SwitchedOn goto TurningOn;
  }

  state TurningOn {
)" + std::string(DeferSwitch) +
                    R"(    entry {
      Retries = 0;
      send(LedV, TurnOnLed);
    }
    on LedOk goto On;
    on LedFailed goto RetryOn;
  }

  state RetryOn {
)" + std::string(DeferSwitch) +
                    R"(    entry {
      Retries = Retries + 1;
      assert(Retries <= )" +
                    RetryBound + R"();
      if (Retries == 3) {
        raise(giveUp);
      } else {
        send(LedV, TurnOnLed);
      }
    }
    on LedOk goto On;
    on LedFailed goto RetryOn;
    on giveUp goto Off;
  }

  state On {
    entry { }
    on SwitchedOn do Ignore;
    on SwitchedOff goto TurningOff;
  }

  state TurningOff {
)" + std::string(DeferSwitch) +
                    R"(    entry {
      Retries = 0;
      send(LedV, TurnOffLed);
    }
    on LedOk goto Off;
    on LedFailed goto RetryOff;
  }

  state RetryOff {
)" + std::string(DeferSwitch) +
                    R"(    entry {
      Retries = Retries + 1;
      assert(Retries <= )" +
                    RetryBound + R"();
      if (Retries == 3) {
        raise(giveUp);
      } else {
        send(LedV, TurnOffLed);
      }
    }
    on LedOk goto Off;
    on LedFailed goto RetryOff;
    on giveUp goto On;
  }
}

// ----------------------------------------------------------------- ghosts

main ghost machine Switch {
  var DriverV: id;
  state SInit {
    entry {
      DriverV = new SwitchLedDriver();
      raise(unit);
    }
    on unit goto Toggle;
  }
  state Toggle {
    entry {
      if (*) {
        send(DriverV, SwitchedOn);
      } else {
        send(DriverV, SwitchedOff);
      }
      raise(unit);
    }
    on unit goto Toggle;
  }
}

ghost machine Led {
  var Driver: id;

  state WaitCommand {
    entry { }
    on TurnOnLed goto Transfer;
    on TurnOffLed goto Transfer;
  }

  state Transfer {
    entry {
      if (*) {
        send(Driver, LedOk);
      } else {
        send(Driver, LedFailed);
      }
      raise(unit);
    }
    on unit goto WaitCommand;
  }
}
)";
  return Src;
}
