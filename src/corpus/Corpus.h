//===- corpus/Corpus.h - The paper's benchmark P programs ------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// P sources for the programs the paper evaluates (Sections 2, 4.1, 5
/// and 6): the Elevator of Figures 1–2, the Switch-and-LED device
/// driver of Section 4.1, German's cache coherence protocol, and a
/// scaled USB-hub-style driver (hub/port/device state machines with a
/// ghost OS/hardware environment) standing in for the proprietary
/// Windows 8 USB stack of Figure 8.
///
/// Each program comes with seeded-bug variants used by the Figure 7 and
/// bug-finding benches ("bugs are found within a delay bound of 2").
///
//===----------------------------------------------------------------------===//

#ifndef P_CORPUS_CORPUS_H
#define P_CORPUS_CORPUS_H

#include <string>

namespace p {
namespace corpus {

/// Seeded defects for the bug-finding experiments.
enum class ElevatorBug {
  None,
  /// DoorOpening forgets to defer CloseDoor: a user close request during
  /// opening is unhandled.
  MissingDeferCloseDoor,
  /// StoppingTimer forgets to defer TimerFired: a timer that fires
  /// concurrently with the stop request leaks into a state that cannot
  /// handle it.
  MissingDeferTimerFired,
};

/// The Elevator of Section 2 (Figures 1–2): a real Elevator machine and
/// the ghost User/Door/Timer environment.
std::string elevator(ElevatorBug Bug = ElevatorBug::None);

enum class SwitchLedBug {
  None,
  /// TurningOn forgets to defer switch changes mid-transfer.
  MissingDeferSwitch,
  /// The retry counter is asserted with the wrong bound.
  WrongRetryAssert,
};

/// The Switch-and-LED device driver of Section 4.1: a real driver
/// machine, a ghost switch (user) and a ghost LED device that can fail
/// transfers.
std::string switchLed(SwitchLedBug Bug = SwitchLedBug::None);

enum class GermanBug {
  None,
  /// Home grants exclusive without invalidating the current owner; the
  /// ghost auditor's coherence assertion fails.
  SkipOwnerInvalidation,
  /// Home's Idle state "defensively" handles stale InvAck through
  /// CountAck, which asserts AcksNeeded > 0. Fault-free executions never
  /// deliver an InvAck in Idle (every serve waits for all its acks), so
  /// the program is clean at any delay bound — but a single duplicated
  /// InvAck (checker fault budget >= 1) arrives after the grant and
  /// fires the assertion. Exercises the bounded-fault exploration.
  DroppableInvAck,
};

/// German's cache coherence protocol (Section 5's third benchmark):
/// a Home directory, \p NumClients client machines, a ghost driver
/// environment and a ghost auditor asserting coherence.
std::string german(int NumClients = 2, GermanBug Bug = GermanBug::None);

enum class UsbHubBug {
  None,
  /// The port state machine mishandles a surprise-remove during reset.
  SurpriseRemoveDuringReset,
};

/// A USB-hub-style driver (Section 6 / Figure 8, scaled): a hub state
/// machine (HSM) managing \p NumPorts port machines (PSM), each
/// enumerating a device machine (DSM), driven by ghost OS (PnP/power)
/// and hardware machines.
std::string usbHub(int NumPorts = 2, UsbHubBug Bug = UsbHubBug::None);

enum class WorkerPoolBug {
  None,
  /// The boss's completion counter is asserted one too tight: the last
  /// worker's Done fires the assertion.
  UndercountedPool,
};

/// A boss/worker pool whose boss keeps no per-worker roster (counts and
/// a transient grant target only), so the `symmetric` workers are
/// interchangeable at the value level — the canonicalization benchmark
/// for CheckOptions::Reduce, by contrast with German's pinned rosters.
std::string workerPool(int NumWorkers = 3,
                       WorkerPoolBug Bug = WorkerPoolBug::None);

/// A host-driven publish/subscribe broker: one real Broker machine
/// fanning every host Publish(int) out to \p NumSubscribers real
/// Subscriber machines. No ghosts — the load generator for the host
/// throughput bench (bench_host_throughput).
std::string pubSub(int NumSubscribers = 4);

} // namespace corpus
} // namespace p

#endif // P_CORPUS_CORPUS_H
