//===- corpus/UsbHub.cpp - A USB-hub-style driver (Figure 8, scaled) -------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Stand-in for the proprietary Windows 8 USB hub driver of Section 6:
// the same architecture at laptop scale. A real Hub machine (HSM)
// creates one Port machine (PSM) per port; each port enumerates a
// Device machine (DSM) when the ghost hardware attaches something.
// A ghost OS machine drives power management (suspend/resume/stop) and
// a ghost hardware machine drives attach/detach and transfer outcomes —
// "a large number of un-coordinated events sent from different sources
// ... in tricky situations when the system is suspending or powering
// down" (Section 6).
//
// Devices defer DevKill while a control transfer is outstanding so the
// ghost hardware never replies into a torn-down machine, and a killed
// device acknowledges with DevDead before parking in its Idle state
// (device machines are pooled per port; see the Enumerating comment).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include <cassert>
#include <string>

using namespace p;

namespace {
std::string num(int I) { return std::to_string(I); }
} // namespace

std::string corpus::usbHub(int NumPorts, UsbHubBug Bug) {
  assert(NumPorts >= 1 && NumPorts <= 6 && "unsupported port count");
  const int K = NumPorts;

  std::string S;
  S += R"(
event unit;
event allStopped;
event enumFail;

// OS -> Hub (power management).
event SuspendHub;
event ResumeHub;
event StopHub;

// Hub -> OS.
event HubStoppedEvt;

// Hub -> Port.
event PortSuspend;
event PortResume;
event PortStop;

// Port -> Hub.
event PortStopped(id);

// Hardware -> Port.
event Attach;
event Detach;

// Port -> ghost hardware (roster).
event PortIntro(id);

// Port <-> Device.
event DevStart;
event DevKill;
event DevDead;
event EnumOk;
event EnumFailed;

// Device <-> ghost hardware (control transfers).
event TransferReq(id);
event TransferOk;
event TransferFail;

// ------------------------------------------------------------------ HSM

machine Hub {
)";
  for (int I = 1; I <= K; ++I)
    S += "  var Port" + num(I) + ": id;\n";
  S += R"(  var StoppedCount: int;
  ghost var OSRef: id;
  ghost var HWRef: id;

  action Ignore { skip; }

  state HubInit {
    entry {
      StoppedCount = 0;
)";
  for (int I = 1; I <= K; ++I)
    S += "      Port" + num(I) + " = new Port(HubV = this, HW = HWRef);\n";
  S += R"(      raise(unit);
    }
    on unit goto Started;
  }

  state Started {
    entry { }
    on SuspendHub goto Suspending;
    on ResumeHub do Ignore;
    on StopHub goto Stopping;
  }

  state Suspending {
    entry {
)";
  for (int I = 1; I <= K; ++I)
    S += "      send(Port" + num(I) + ", PortSuspend);\n";
  S += R"(      raise(unit);
    }
    on unit goto Suspended;
  }

  state Suspended {
    entry { }
    on SuspendHub do Ignore;
    on ResumeHub goto Resuming;
    on StopHub goto Stopping;
  }

  state Resuming {
    entry {
)";
  for (int I = 1; I <= K; ++I)
    S += "      send(Port" + num(I) + ", PortResume);\n";
  S += R"(      raise(unit);
    }
    on unit goto Started;
  }

  state Stopping {
    defer SuspendHub, ResumeHub, StopHub;
    entry {
)";
  for (int I = 1; I <= K; ++I)
    S += "      send(Port" + num(I) + ", PortStop);\n";
  S += R"(    }
    on PortStopped do CountStopped;
    on allStopped goto HubStopped;
  }

  action CountStopped {
    StoppedCount = StoppedCount + 1;
    if (StoppedCount == )" +
       num(K) + R"() {
      raise(allStopped);
    }
  }

  state HubStopped {
    entry { send(OSRef, HubStoppedEvt); }
    on SuspendHub do Ignore;
    on ResumeHub do Ignore;
    on StopHub do Ignore;
  }
}

// ------------------------------------------------------------------ PSM

symmetric machine Port {
  var HubV: id;
  var DevV: id;
  var HasDev: bool;
  ghost var HW: id;

  action Ignore { skip; }

  state PInit {
    entry {
      HasDev = false;
      send(HW, PortIntro, this);
      raise(unit);
    }
    on unit goto Disconnected;
  }

  state Disconnected {
    entry { }
    on Attach goto Enumerating;
    on Detach do Ignore;
    on PortSuspend goto SuspendedEmpty;
    on PortResume do Ignore;
    on PortStop goto Stopped;
  }

  // The device machine is created once per port and pooled across
  // attach cycles: destroying and re-creating it per cycle would grow
  // the machine table without bound and make the reachable state space
  // infinite (machine identifiers are never reused; Section 3's manual
  // memory management is exercised by dedicated runtime tests instead).
  state Enumerating {
    defer Attach, PortSuspend, PortResume;
    entry {
      if (HasDev) {
        send(DevV, DevStart);
      } else {
        DevV = new Device(PortV = this, HW = HW);
        HasDev = true;
      }
    }
    on EnumOk goto Operational;
    on EnumFailed goto CleaningFailed;
)";
  if (Bug != UsbHubBug::SurpriseRemoveDuringReset)
    S += "    on Detach goto RemovingDuringEnum;\n";
  S += R"(    on PortStop goto StoppingWithDev;
  }

  // Surprise remove while the device is still enumerating: kill it and
  // swallow any enumeration result already in flight.
  state RemovingDuringEnum {
    defer Attach, PortSuspend, PortResume, PortStop;
    entry { send(DevV, DevKill); }
    on EnumOk do Ignore;
    on EnumFailed do Ignore;
    on Detach do Ignore;
    on DevDead goto Disconnected;
  }

  state CleaningFailed {
    defer Attach, PortSuspend, PortResume, PortStop;
    entry { send(DevV, DevKill); }
    on Detach do Ignore;
    on DevDead goto Disconnected;
  }

  state Operational {
    entry { }
    on Attach do Ignore;
    on Detach goto RemovingOperational;
    on PortSuspend goto SuspendedActive;
    on PortResume do Ignore;
    on PortStop goto StoppingWithDev;
  }

  state RemovingOperational {
    defer Attach, PortSuspend, PortResume, PortStop;
    entry { send(DevV, DevKill); }
    on Detach do Ignore;
    on DevDead goto Disconnected;
  }

  state SuspendedEmpty {
    defer Attach, Detach;
    entry { }
    on PortSuspend do Ignore;
    on PortResume goto Disconnected;
    on PortStop goto Stopped;
  }

  state SuspendedActive {
    defer Attach, Detach;
    entry { }
    on PortSuspend do Ignore;
    on PortResume goto Operational;
    on PortStop goto StoppingWithDev;
  }

  state StoppingWithDev {
    defer Attach, Detach, PortSuspend, PortResume, PortStop;
    entry { send(DevV, DevKill); }
    on EnumOk do Ignore;
    on EnumFailed do Ignore;
    on DevDead goto Stopped;
  }

  state Stopped {
    entry { send(HubV, PortStopped, this); }
    on Attach do Ignore;
    on Detach do Ignore;
    on PortSuspend do Ignore;
    on PortResume do Ignore;
    on PortStop do Ignore;
  }
}

// ------------------------------------------------------------------ DSM

symmetric machine Device {
  var PortV: id;
  var Tries: int;
  ghost var HW: id;

  action IgnoreD { skip; }

  state DevInit {
    entry {
      Tries = 0;
      raise(unit);
    }
    on unit goto GettingDescriptor;
  }

  // Parked between attach cycles (see the Port comment on pooling).
  state Idle {
    entry { }
    on DevStart goto DevInit;
    on DevKill do IgnoreD;
  }

  // DevKill is deferred while a transfer is outstanding so the hardware
  // never replies to a deleted machine.
  state GettingDescriptor {
    defer DevKill;
    entry { send(HW, TransferReq, this); }
    on TransferOk goto SettingAddress;
    on TransferFail goto RetryDescriptor;
  }

  state RetryDescriptor {
    defer DevKill;
    entry {
      Tries = Tries + 1;
      if (Tries >= 2) {
        raise(enumFail);
      } else {
        send(HW, TransferReq, this);
      }
    }
    on TransferOk goto SettingAddress;
    on TransferFail goto RetryDescriptor;
    on enumFail goto Failed;
  }

  state SettingAddress {
    defer DevKill;
    entry {
      Tries = 0;
      send(HW, TransferReq, this);
    }
    on TransferOk goto Configured;
    on TransferFail goto Failed;
  }

  state Configured {
    entry { send(PortV, EnumOk); }
    on DevKill goto Dying;
  }

  state Failed {
    entry { send(PortV, EnumFailed); }
    on DevKill goto Dying;
  }

  state Dying {
    entry {
      send(PortV, DevDead);
      raise(unit);
    }
    on unit goto Idle;
  }
}

// ----------------------------------------------------------------- ghosts

main ghost machine OsMachine {
  var HubV: id;
  var HwV: id;

  state OsInit {
    entry {
      HwV = new HwMachine();
      HubV = new Hub(OSRef = this, HWRef = HwV);
      raise(unit);
    }
    on unit goto Power;
  }

  state Power {
    entry {
      if (*) {
        send(HubV, SuspendHub);
        raise(unit);
      } else {
        if (*) {
          send(HubV, ResumeHub);
          raise(unit);
        } else {
          if (*) {
            send(HubV, StopHub);
          } else {
            raise(unit);
          }
        }
      }
    }
    on unit goto Power;
    on HubStoppedEvt goto OsDone;
  }

  state OsDone {
    entry { }
  }
}

ghost machine HwMachine {
)";
  for (int I = 1; I <= K; ++I)
    S += "  var P" + num(I) + ": id;\n";
  S += "\n";
  for (int I = 0; I < K; ++I) {
    S += "  state Collect" + num(I) + " {\n";
    S += (I > 0) ? "    entry { P" + num(I) + " = arg; }\n"
                 : std::string("    entry { }\n");
    S += "    on PortIntro goto Collect" + num(I + 1) + ";\n  }\n";
  }
  S += "  state Collect" + num(K) + " {\n";
  S += "    entry { P" + num(K) + " = arg; raise(unit); }\n";
  S += "    on unit goto Drive;\n  }\n";
  S += R"(
  state Drive {
    entry {
      if (*) {
)";
  for (int I = 1; I <= K; ++I) {
    S += "        if (*) { send(P" + num(I) + ", Attach); } else {\n";
    S += "          if (*) { send(P" + num(I) + ", Detach); }\n        }\n";
  }
  S += R"(        raise(unit);
      }
    }
    on unit goto Drive;
    on TransferReq do ReplyTransfer;
  }

  action ReplyTransfer {
    if (*) {
      send(arg, TransferOk);
    } else {
      send(arg, TransferFail);
    }
    raise(unit);
  }
}
)";
  return S;
}
