//===- corpus/German.cpp - German's cache coherence protocol ---------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The third Figure 7 benchmark: a software implementation of German's
// cache coherence protocol. A Home directory serves shared/exclusive
// requests from N client machines, invalidating the current owner and
// sharers as needed. The core P calculus has no container types, so the
// per-client directory state (client ids, sharer bits, invalidation
// fan-out) is unrolled into individual variables and if-chains — the
// source is generated for a given N, the way the paper's fixed-size
// model would be written by hand.
//
// Coherence is asserted by a ghost Auditor machine clients notify on
// every mode change through a synchronous handshake (see the event
// declarations below for why the handshake is necessary under the
// queue's ⊎ dedup semantics).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include <cassert>
#include <string>

using namespace p;

namespace {

std::string num(int I) { return std::to_string(I); }

} // namespace

std::string corpus::german(int NumClients, GermanBug Bug) {
  assert(NumClients >= 1 && NumClients <= 8 && "unsupported client count");
  const int N = NumClients;

  std::string S;
  S += R"(
event unit;
event waitAcks;
event grantNow;
event allAcked;
event done;

// Client -> Home (payload: requesting client id).
event ReqShared(id);
event ReqExcl(id);
event InvAck(id);

// Home -> Client.
event Inv;
event GntShared;
event GntExcl;

// Ghost environment -> Client.
event DoReqS;
event DoReqE;

// Home -> ghost Env (client roster).
event ClientIntro(id);

// Home -> ghost Auditor (client roster).
event AudIntro(id);

// Client <-> ghost Auditor: a synchronous-monitor handshake. The client
// declares its new mode (payload: itself) and waits for AuditAck before
// taking any further protocol step. The handshake is what makes the
// oracle exact: at most one notification per client is ever pending, so
// the queue's dedup operator ⊎ can never drop one (async counting
// oracles either lose events to ⊎ under a starved auditor or need
// unbounded counter payloads, blowing up the state space). The price is
// that this model is verification-only: the erased program parks each
// client at its first WaitAudit state, like the paper's German
// benchmark, which was never driver code.
event NowInvalid(id);
event NowShared(id);
event NowExcl(id);
event AuditAck;

machine Home {
)";
  for (int I = 1; I <= N; ++I)
    S += "  var Client" + num(I) + ": id;\n";
  for (int I = 1; I <= N; ++I)
    S += "  var Sharer" + num(I) + ": bool;\n";
  S += R"(  var ExclOwner: id;
  var HasOwner: bool;
  var Pending: id;
  var AcksNeeded: int;
  ghost var EnvRef: id;
  ghost var AudV: id;

  state HInit {
    entry {
      AudV = new Auditor();
      HasOwner = false;
      AcksNeeded = 0;
)";
  for (int I = 1; I <= N; ++I)
    S += "      Sharer" + num(I) + " = false;\n";
  for (int I = 1; I <= N; ++I)
    S += "      Client" + num(I) + " = new Client(Home = this, Aud = AudV);\n";
  for (int I = 1; I <= N; ++I)
    S += "      send(AudV, AudIntro, Client" + num(I) + ");\n";
  for (int I = 1; I <= N; ++I)
    S += "      send(EnvRef, ClientIntro, Client" + num(I) + ");\n";
  S += R"(      raise(unit);
    }
    on unit goto Idle;
  }

  state Idle {
    entry { }
    on ReqShared goto ServeShared;
    on ReqExcl goto ServeExcl;
)";
  // The DroppableInvAck variant "handles" a stale ack in Idle; the
  // CountAck assertion below then fires on the double delivery a
  // duplicate fault produces.
  if (Bug == GermanBug::DroppableInvAck)
    S += "    on InvAck do CountAck;\n";
  S += R"(  }

  // Serve a shared request: invalidate the exclusive owner first.
  state ServeShared {
    defer ReqShared, ReqExcl;
    entry {
      Pending = arg;
      if (HasOwner) {
        send(ExclOwner, Inv);
        raise(waitAcks);
      } else {
)";
  for (int I = 1; I <= N; ++I)
    S += "        if (Pending == Client" + num(I) + ") { Sharer" + num(I) +
         " = true; }\n";
  S += R"(        send(Pending, GntShared);
        raise(done);
      }
    }
    on waitAcks goto SharedInvalidating;
    on done goto Idle;
  }

  state SharedInvalidating {
    defer ReqShared, ReqExcl;
    entry { }
    on InvAck goto SharedGrant;
  }

  state SharedGrant {
    entry {
      HasOwner = false;
      ExclOwner = null;
)";
  for (int I = 1; I <= N; ++I)
    S += "      if (Pending == Client" + num(I) + ") { Sharer" + num(I) +
         " = true; }\n";
  S += R"(      send(Pending, GntShared);
      raise(done);
    }
    on done goto Idle;
  }

  // Serve an exclusive request: invalidate the owner and every sharer.
  state ServeExcl {
    defer ReqShared, ReqExcl;
    entry {
      Pending = arg;
      AcksNeeded = 0;
)";
  if (Bug != GermanBug::SkipOwnerInvalidation)
    S += R"(      if (HasOwner) {
        send(ExclOwner, Inv);
        AcksNeeded = AcksNeeded + 1;
      }
)";
  for (int I = 1; I <= N; ++I)
    S += "      if (Sharer" + num(I) + ") { send(Client" + num(I) +
         ", Inv); AcksNeeded = AcksNeeded + 1; }\n";
  S += R"(      if (AcksNeeded == 0) {
        raise(grantNow);
      } else {
        raise(waitAcks);
      }
    }
    on grantNow goto ExclGrant;
    on waitAcks goto ExclInvalidating;
  }

  state ExclInvalidating {
    defer ReqShared, ReqExcl;
    entry { }
    on InvAck do CountAck;
    on allAcked goto ExclGrant;
  }

  action CountAck {
)";
  if (Bug == GermanBug::DroppableInvAck)
    S += "    assert(AcksNeeded > 0);\n";
  S += R"(    AcksNeeded = AcksNeeded - 1;
)";
  for (int I = 1; I <= N; ++I)
    S += "    if (arg == Client" + num(I) + ") { Sharer" + num(I) +
         " = false; }\n";
  S += R"(    if (HasOwner) {
      if (arg == ExclOwner) {
        HasOwner = false;
        ExclOwner = null;
      }
    }
    if (AcksNeeded == 0) {
      raise(allAcked);
    }
  }

  state ExclGrant {
    entry {
      ExclOwner = Pending;
      HasOwner = true;
      send(Pending, GntExcl);
      raise(done);
    }
    on done goto Idle;
  }
}

symmetric machine Client {
  var Home: id;
  ghost var Aud: id;

  action Ignore { skip; }

  state Invalid {
    entry { }
    on DoReqS goto AskingShared;
    on DoReqE goto AskingExcl;
  }

  state AskingShared {
    defer DoReqS, DoReqE;
    entry { send(Home, ReqShared, this); }
    on GntShared goto WaitAuditShared;
  }

  state WaitAuditShared {
    defer DoReqS, DoReqE, Inv;
    entry { send(Aud, NowShared, this); }
    on AuditAck goto Shared;
  }

  state AskingExcl {
    defer DoReqS, DoReqE;
    entry { send(Home, ReqExcl, this); }
    on GntExcl goto WaitAuditExcl;
  }

  state WaitAuditExcl {
    defer DoReqS, DoReqE, Inv;
    entry { send(Aud, NowExcl, this); }
    on AuditAck goto Exclusive;
  }

  state Shared {
    entry { }
    on DoReqS do Ignore;
    on DoReqE do Ignore;
    on Inv goto Leaving;
  }

  state Exclusive {
    entry { }
    on DoReqS do Ignore;
    on DoReqE do Ignore;
    on Inv goto Leaving;
  }

  // Declare the downgrade, wait for the auditor, then ack Home. The
  // InvAck must come after the auditor handshake so the auditor's view
  // is current before Home can grant the next request.
  state Leaving {
    defer DoReqS, DoReqE;
    entry { send(Aud, NowInvalid, this); }
    on AuditAck goto AckingHome;
  }

  state AckingHome {
    defer DoReqS, DoReqE;
    entry {
      send(Home, InvAck, this);
      raise(unit);
    }
    on unit goto Invalid;
  }
}

// ----------------------------------------------------------------- ghosts

ghost machine Auditor {
)";
  // Roster (AC_i) and per-client mode (0 = invalid, 1 = shared,
  // 2 = exclusive).
  for (int I = 1; I <= N; ++I)
    S += "  var AC" + num(I) + ": id;\n";
  for (int I = 1; I <= N; ++I)
    S += "  var Mode" + num(I) + ": int;\n";
  // Collect the roster Home sends during HInit; FIFO order guarantees
  // every AudIntro precedes the first mode declaration.
  for (int I = 0; I < N; ++I) {
    S += "  state ACollect" + num(I) + " {\n";
    if (I > 0)
      S += "    entry { AC" + num(I) + " = arg; Mode" + num(I) +
           " = 0; }\n";
    else
      S += "    entry { }\n";
    S += "    on AudIntro goto ACollect" + num(I + 1) + ";\n  }\n";
  }
  S += "  state ACollect" + num(N) + " {\n";
  S += "    entry { AC" + num(N) + " = arg; Mode" + num(N) +
       " = 0; raise(unit); }\n";
  S += "    on unit goto Track;\n  }\n";
  S += R"(
  state Track {
    entry { }
    on NowInvalid do SetInvalid;
    on NowShared do SetShared;
    on NowExcl do SetExcl;
  }

  action SetInvalid {
)";
  for (int I = 1; I <= N; ++I)
    S += "    if (arg == AC" + num(I) + ") { Mode" + num(I) + " = 0; }\n";
  S += R"(    send(arg, AuditAck);
  }

  action SetShared {
)";
  for (int I = 1; I <= N; ++I)
    S += "    if (arg == AC" + num(I) + ") { Mode" + num(I) + " = 1; }\n";
  S += "    CheckCoherence();\n    send(arg, AuditAck);\n  }\n\n"
       "  action SetExcl {\n";
  for (int I = 1; I <= N; ++I)
    S += "    if (arg == AC" + num(I) + ") { Mode" + num(I) + " = 2; }\n";
  S += "    CheckCoherence();\n    send(arg, AuditAck);\n  }\n";
  S += R"(
  foreign fun CheckCoherence() : void model {
)";
  // An exclusive client excludes every other shared/exclusive client.
  for (int I = 1; I <= N; ++I)
    for (int J = 1; J <= N; ++J)
      if (I != J)
        S += "    assert(!(Mode" + num(I) + " == 2 && Mode" + num(J) +
             " >= 1));\n";
  S += R"(  }
}

main ghost machine Env {
  var HomeV: id;
)";
  for (int I = 1; I <= N; ++I)
    S += "  var C" + num(I) + ": id;\n";
  S += R"(
  state EInit {
    entry {
      HomeV = new Home(EnvRef = this);
      raise(unit);
    }
    on unit goto Collect0;
  }
)";
  // Collect the client roster Home sends back (FIFO order: C1..CN).
  for (int I = 0; I < N; ++I) {
    S += "  state Collect" + num(I) + " {\n";
    if (I > 0)
      S += "    entry { C" + num(I) + " = arg; }\n";
    else
      S += "    entry { }\n";
    S += "    on ClientIntro goto Collect" + num(I + 1) + ";\n";
    S += "  }\n";
  }
  S += "  state Collect" + num(N) + " {\n";
  S += "    entry { C" + num(N) + " = arg; raise(unit); }\n";
  S += "    on unit goto Drive;\n  }\n";
  S += R"(
  state Drive {
    entry {
)";
  for (int I = 1; I <= N; ++I) {
    S += "      if (*) { send(C" + num(I) + ", DoReqS); } else {\n";
    S += "        if (*) { send(C" + num(I) + ", DoReqE); }\n      }\n";
  }
  S += R"(      raise(unit);
    }
    on unit goto Drive;
  }
}
)";
  return S;
}
