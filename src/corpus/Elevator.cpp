//===- corpus/Elevator.cpp - The elevator of Figures 1 and 2 ---------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The elevator example of Section 2. One real Elevator machine; ghost
// User, Door and Timer machines model the environment and are erased
// during compilation. The StoppingTimer/WaitingForTimer/ReturnState
// trio is the call-transition "subroutine" the paper describes, and the
// stop-vs-fire race is resolved with the acknowledge handshake the
// verifier forces you to discover (a TimerFired already in flight when
// the stop request arrives must be drained by WaitingForTimer).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace p;

std::string corpus::elevator(ElevatorBug Bug) {
  std::string Src = R"(
// Local control events.
event unit;
event StopTimerReturned;

// User -> Elevator.
event OpenDoor;
event CloseDoor;

// Door -> Elevator.
event DoorOpened;
event DoorClosed;
event DoorStopped;
event ObjectDetected;

// Elevator -> Door.
event SendCommandToOpenDoor;
event SendCommandToCloseDoor;
event SendCommandToStopDoor;
event SendCommandToResetDoor;

// Elevator <-> Timer.
event StartDoorCloseTimer;
event StopDoorCloseTimer;
event AckTimerFired;
event TimerFired;
event OperationSuccess;
event OperationFailure;

machine Elevator {
  ghost var TimerV: id;
  ghost var DoorV: id;

  action Ignore { skip; }

  state Init {
    entry {
      TimerV = new Timer(Client = this);
      DoorV = new Door(Client = this);
      raise(unit);
    }
    on unit goto DoorClosed;
  }

  state DoorClosed {
    entry { send(DoorV, SendCommandToResetDoor); }
    on CloseDoor do Ignore;
    on OpenDoor goto DoorOpening;
  }

  state DoorOpening {
)" +
                    std::string(Bug == ElevatorBug::MissingDeferCloseDoor
                                    ? ""
                                    : "    defer CloseDoor;\n") +
                    R"(    on OpenDoor do Ignore;
    entry { send(DoorV, SendCommandToOpenDoor); }
    on DoorOpened goto DoorOpened;
  }

  state DoorOpened {
    defer CloseDoor;
    entry {
      send(DoorV, SendCommandToResetDoor);
      send(TimerV, StartDoorCloseTimer);
    }
    on TimerFired goto DoorOpenedOkToClose;
    on StopTimerReturned goto DoorOpening;
    on OpenDoor push StoppingTimer;
  }

  state DoorOpenedOkToClose {
    entry { send(TimerV, AckTimerFired); }
    on OpenDoor goto DoorOpened;
    on CloseDoor push StoppingTimer;
    on StopTimerReturned goto DoorClosing;
  }

  state DoorClosing {
    defer CloseDoor;
    entry { send(DoorV, SendCommandToCloseDoor); }
    on DoorClosed goto DoorClosed;
    on DoorOpened goto DoorOpened;
    on DoorStopped goto DoorOpening;
    on ObjectDetected goto DoorOpening;
    on OpenDoor push StoppingDoor;
  }

  // Subroutine: stop the door mid-close; the Door's reply (DoorClosed,
  // DoorStopped or ObjectDetected) is deliberately unhandled here so it
  // pops back (POP1) to DoorClosing, which handles all replies.
  state StoppingDoor {
    defer CloseDoor, OpenDoor;
    entry { send(DoorV, SendCommandToStopDoor); }
  }

  // Subroutine: stop the door-close timer (called from DoorOpened on
  // OpenDoor and from DoorOpenedOkToClose on CloseDoor).
  state StoppingTimer {
)" +
                    std::string(Bug == ElevatorBug::MissingDeferTimerFired
                                    ? "    defer OpenDoor, CloseDoor;\n"
                                    : "    defer OpenDoor, CloseDoor, "
                                      "TimerFired;\n") +
                    R"(    entry { send(TimerV, StopDoorCloseTimer); }
    on OperationSuccess goto ReturnState;
    on OperationFailure goto WaitingForTimer;
  }

  state WaitingForTimer {
    defer OpenDoor, CloseDoor;
    entry { }
    on TimerFired goto ReturnState;
  }

  state ReturnState {
    entry { raise(StopTimerReturned); }
  }
}

// ----------------------------------------------------------------- ghosts

main ghost machine User {
  var ElevatorV: id;
  state UInit {
    entry {
      ElevatorV = new Elevator();
      raise(unit);
    }
    on unit goto Loop;
  }
  state Loop {
    entry {
      if (*) {
        send(ElevatorV, OpenDoor);
      } else {
        send(ElevatorV, CloseDoor);
      }
      raise(unit);
    }
    on unit goto Loop;
  }
}

ghost machine Door {
  var Client: id;

  action Ignore { skip; }

  state DInit {
    entry { }
    on SendCommandToOpenDoor goto OpenDoorState;
    on SendCommandToCloseDoor goto ConsiderClosingDoor;
    on SendCommandToStopDoor do Ignore;
    on SendCommandToResetDoor do Ignore;
  }

  state OpenDoorState {
    entry {
      send(Client, DoorOpened);
      raise(unit);
    }
    on unit goto ResetDoorState;
  }

  state ConsiderClosingDoor {
    entry {
      if (*) {
        raise(unit);
      } else {
        if (*) {
          send(Client, ObjectDetected);
          raise(ObjectDetected);
        }
      }
    }
    on unit goto CloseDoorState;
    on ObjectDetected goto DInit;
    on SendCommandToStopDoor goto StoppedState;
  }

  state CloseDoorState {
    entry {
      send(Client, DoorClosed);
      raise(unit);
    }
    on unit goto ResetDoorState;
  }

  state StoppedState {
    entry {
      send(Client, DoorStopped);
      raise(unit);
    }
    on unit goto DInit;
  }

  state ResetDoorState {
    entry { }
    on SendCommandToOpenDoor do Ignore;
    on SendCommandToCloseDoor do Ignore;
    on SendCommandToStopDoor do Ignore;
    on SendCommandToResetDoor goto DInit;
  }
}

ghost machine Timer {
  var Client: id;

  state TInit {
    entry { }
    on StartDoorCloseTimer goto TimerStarted;
    on StopDoorCloseTimer goto SucceedStop;
  }

  state TimerStarted {
    entry {
      if (*) {
        send(Client, TimerFired);
        raise(unit);
      }
    }
    on unit goto TimerFiredState;
    on StopDoorCloseTimer goto SucceedStop;
  }

  // The timer fired; the TimerFired event may still be in flight.
  state TimerFiredState {
    entry { }
    on StopDoorCloseTimer goto FailStop;
    on AckTimerFired goto TInit;
  }

  state SucceedStop {
    entry {
      send(Client, OperationSuccess);
      raise(unit);
    }
    on unit goto TInit;
  }

  state FailStop {
    entry {
      send(Client, OperationFailure);
      raise(unit);
    }
    on unit goto TInit;
  }
}
)";
  return Src;
}
