/*===- codegen/c/prt_runtime.c - C runtime for generated P code -----------===
 *
 * Part of the P-language reproduction. MIT license.
 *
 * Implements the operational semantics of Figures 4-6 for ghost-erased
 * programs: deterministic code, table dispatch, run-to-completion
 * scheduling. This file intentionally mirrors runtime/Executor.cpp in
 * the C++ library; the verification build and the execution build must
 * agree on every rule (the erasure theorem tests compare them).
 *
 *===----------------------------------------------------------------------===*/

#include "prt_runtime.h"

#include <stdio.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------ values --- */

PrtValue prt_null(void) {
  PrtValue v;
  v.kind = PRT_VAL_NULL;
  v.data = 0;
  return v;
}
PrtValue prt_bool(int b) {
  PrtValue v;
  v.kind = PRT_VAL_BOOL;
  v.data = b ? 1 : 0;
  return v;
}
PrtValue prt_int(long long i) {
  PrtValue v;
  v.kind = PRT_VAL_INT;
  v.data = i;
  return v;
}
PrtValue prt_event(int e) {
  PrtValue v;
  v.kind = PRT_VAL_EVENT;
  v.data = e;
  return v;
}
PrtValue prt_mid(int id) {
  PrtValue v;
  v.kind = PRT_VAL_MACHINE;
  v.data = id;
  return v;
}

static int prt_value_eq(PrtValue a, PrtValue b) {
  return a.kind == b.kind && a.data == b.data;
}

PrtValue prt_op_not(PrtValue v) {
  if (v.kind != PRT_VAL_BOOL)
    return prt_null();
  return prt_bool(!v.data);
}
PrtValue prt_op_neg(PrtValue v) {
  if (v.kind != PRT_VAL_INT)
    return prt_null();
  return prt_int(-v.data);
}

#define PRT_ARITH(name, expr)                                                \
  PrtValue name(PrtValue a, PrtValue b) {                                    \
    if (a.kind != PRT_VAL_INT || b.kind != PRT_VAL_INT)                      \
      return prt_null();                                                     \
    return prt_int(expr);                                                    \
  }

PRT_ARITH(prt_op_add, a.data + b.data)
PRT_ARITH(prt_op_sub, a.data - b.data)
PRT_ARITH(prt_op_mul, a.data *b.data)

PrtValue prt_op_div(PrtValue a, PrtValue b) {
  if (a.kind != PRT_VAL_INT || b.kind != PRT_VAL_INT || b.data == 0)
    return prt_null();
  return prt_int(a.data / b.data);
}

PrtValue prt_op_and(PrtValue a, PrtValue b) {
  if (a.kind != PRT_VAL_BOOL || b.kind != PRT_VAL_BOOL)
    return prt_null();
  return prt_bool(a.data && b.data);
}
PrtValue prt_op_or(PrtValue a, PrtValue b) {
  if (a.kind != PRT_VAL_BOOL || b.kind != PRT_VAL_BOOL)
    return prt_null();
  return prt_bool(a.data || b.data);
}
PrtValue prt_op_eq(PrtValue a, PrtValue b) {
  if (a.kind == PRT_VAL_NULL || b.kind == PRT_VAL_NULL)
    return prt_null(); /* ⊥ propagates through every operator. */
  return prt_bool(prt_value_eq(a, b));
}
PrtValue prt_op_ne(PrtValue a, PrtValue b) {
  if (a.kind == PRT_VAL_NULL || b.kind == PRT_VAL_NULL)
    return prt_null();
  return prt_bool(!prt_value_eq(a, b));
}

#define PRT_CMP(name, op)                                                    \
  PrtValue name(PrtValue a, PrtValue b) {                                    \
    if (a.kind != PRT_VAL_INT || b.kind != PRT_VAL_INT)                      \
      return prt_null();                                                     \
    return prt_bool(a.data op b.data);                                       \
  }

PRT_CMP(prt_op_lt, <)
PRT_CMP(prt_op_le, <=)
PRT_CMP(prt_op_gt, >)
PRT_CMP(prt_op_ge, >=)

/* ------------------------------------------------------------ errors --- */

static void prt_error(PrtRuntime *rt, int machine_id, const char *kind,
                      const char *msg) {
  rt->has_error = 1;
  if (rt->error_fn)
    rt->error_fn(rt, machine_id, kind, msg);
}

/* -------------------------------------------------------- lifecycle ---- */

PrtRuntime *PrtCreateRuntime(const PrtProgramDecl *prog, PrtErrorFn on_error) {
  PrtRuntime *rt = (PrtRuntime *)calloc(1, sizeof(PrtRuntime));
  rt->prog = prog;
  rt->error_fn = on_error;
  rt->max_steps = 10000000ULL;
  return rt;
}

static void prt_free_machine(PrtMachine *m) {
  int i;
  if (!m)
    return;
  for (i = 0; i < m->nframes; ++i)
    free(m->frames[i].inherit);
  free(m->frames);
  free(m->queue);
  free(m->vars);
  free(m);
}

void PrtDestroyRuntime(PrtRuntime *rt) {
  int i;
  if (!rt)
    return;
  for (i = 0; i < rt->num_machines; ++i)
    prt_free_machine(rt->machines[i]);
  free(rt->machines);
  free(rt);
}

/* --------------------------------------------------------- call stack -- */

static void prt_push_frame(PrtRuntime *rt, PrtMachine *m, int state,
                           const int *inherit) {
  int e, ne = rt->prog->num_events;
  PrtFrame f;
  if (m->nframes == m->fcap) {
    m->fcap = m->fcap ? m->fcap * 2 : 4;
    m->frames = (PrtFrame *)realloc(m->frames, m->fcap * sizeof(PrtFrame));
  }
  f.state = state;
  f.inherit = (int *)malloc(ne * sizeof(int));
  for (e = 0; e < ne; ++e)
    f.inherit[e] = inherit ? inherit[e] : PRT_INHERIT_NONE;
  m->frames[m->nframes++] = f;
}

static const PrtStateDecl *prt_top_state(PrtRuntime *rt, PrtMachine *m) {
  const PrtMachineDecl *md = &rt->prog->machines[m->mtype];
  return &md->states[m->frames[m->nframes - 1].state];
}

/* The a' map of the CALL rule. */
static int *prt_compute_call_inherit(PrtRuntime *rt, PrtMachine *m) {
  int e, ne = rt->prog->num_events;
  const PrtFrame *top = &m->frames[m->nframes - 1];
  const PrtStateDecl *st = prt_top_state(rt, m);
  int *out = (int *)malloc(ne * sizeof(int));
  for (e = 0; e < ne; ++e) {
    switch (st->on_event[e].kind) {
    case PRT_TRANS_STEP:
    case PRT_TRANS_CALL:
      out[e] = PRT_INHERIT_NONE;
      break;
    case PRT_TRANS_ACTION:
      out[e] = st->on_event[e].target;
      break;
    default:
      out[e] = st->deferred[e] ? PRT_INHERIT_DEFERRED : top->inherit[e];
      break;
    }
  }
  return out;
}

/* ------------------------------------------------------------- queue --- */

static void prt_enqueue(PrtRuntime *rt, PrtMachine *m, int event,
                        PrtValue arg) {
  int i;
  (void)rt;
  /* ⊎: identical (event, payload) pairs are not duplicated. */
  for (i = 0; i < m->qlen; ++i)
    if (m->queue[i].event == event && prt_value_eq(m->queue[i].arg, arg))
      return;
  if (m->qlen == m->qcap) {
    m->qcap = m->qcap ? m->qcap * 2 : 8;
    m->queue =
        (PrtQueueEntry *)realloc(m->queue, m->qcap * sizeof(PrtQueueEntry));
  }
  m->queue[m->qlen].event = event;
  m->queue[m->qlen].arg = arg;
  ++m->qlen;
}

/* DEQUEUE's scan: first entry outside the effective deferred set. */
static int prt_find_eligible(PrtRuntime *rt, PrtMachine *m) {
  int i;
  const PrtFrame *top;
  const PrtStateDecl *st;
  if (m->nframes == 0)
    return -1;
  top = &m->frames[m->nframes - 1];
  st = prt_top_state(rt, m);
  for (i = 0; i < m->qlen; ++i) {
    int e = m->queue[i].event;
    if (st->on_event[e].kind != PRT_TRANS_NONE)
      return i;
    if (top->inherit[e] != PRT_INHERIT_DEFERRED && !st->deferred[e])
      return i;
  }
  return -1;
}

/* ------------------------------------------------------ body helpers --- */

void prt_raise(PrtRuntime *rt, PrtMachine *self, PrtValue event,
               PrtValue arg) {
  if (event.kind != PRT_VAL_EVENT) {
    prt_error(rt, self->id, "undefined-event", "raise with a non-event");
    return;
  }
  self->msg = event;
  self->arg = arg;
  self->has_raise = 1;
  self->raise_event = (int)event.data;
  self->raise_arg = arg;
  self->ctl = PRT_CTL_RAISE;
}

void prt_leave(PrtMachine *self) { self->ctl = PRT_CTL_LEAVE; }

void prt_return(PrtRuntime *rt, PrtMachine *self) {
  (void)rt;
  self->ctl = PRT_CTL_RETURN;
}

void prt_delete(PrtRuntime *rt, PrtMachine *self) {
  int i;
  (void)rt;
  self->alive = 0;
  self->ctl = PRT_CTL_DELETE;
  for (i = 0; i < self->nframes; ++i)
    free(self->frames[i].inherit);
  self->nframes = 0;
  self->qlen = 0;
  self->has_raise = 0;
}

void prt_assert(PrtRuntime *rt, PrtMachine *self, PrtValue cond,
                const char *where) {
  /* ASSERT-FAIL only on false; an undefined condition behaves like
   * skip, as in the paper. */
  if (cond.kind == PRT_VAL_BOOL && !cond.data)
    prt_error(rt, self->id, "assert-failed", where);
}

int prt_cond(PrtRuntime *rt, PrtMachine *self, PrtValue v,
             const char *where) {
  if (v.kind != PRT_VAL_BOOL) {
    prt_error(rt, self->id, "undefined-branch", where);
    return 0;
  }
  return (int)v.data;
}

static int prt_alloc_machine(PrtRuntime *rt, int mtype, int ninit,
                             const int *var_indices, const PrtValue *values) {
  const PrtMachineDecl *md = &rt->prog->machines[mtype];
  PrtMachine *m = (PrtMachine *)calloc(1, sizeof(PrtMachine));
  int i;
  if (rt->num_machines == rt->cap_machines) {
    rt->cap_machines = rt->cap_machines ? rt->cap_machines * 2 : 8;
    rt->machines = (PrtMachine **)realloc(
        rt->machines, rt->cap_machines * sizeof(PrtMachine *));
  }
  m->id = rt->num_machines;
  m->mtype = mtype;
  m->alive = 1;
  m->vars = (PrtValue *)malloc((md->num_vars ? md->num_vars : 1) *
                               sizeof(PrtValue));
  for (i = 0; i < md->num_vars; ++i)
    m->vars[i] = prt_null();
  for (i = 0; i < ninit; ++i)
    m->vars[var_indices[i]] = values[i];
  m->msg = prt_null();
  m->arg = prt_null();
  rt->machines[rt->num_machines++] = m;
  prt_push_frame(rt, m, 0, NULL);
  return m->id;
}

/* Runs one body function and folds its control effect into the machine
 * state; returns the resulting PRT_CTL_* value. */
static int prt_run_body(PrtRuntime *rt, PrtMachine *m, PrtBodyFn fn) {
  int ctl;
  if (!fn)
    return PRT_CTL_NONE;
  m->ctl = PRT_CTL_NONE;
  fn(rt, m);
  ctl = m->ctl;
  m->ctl = PRT_CTL_NONE;
  return ctl;
}

static void prt_run_machine(PrtRuntime *rt, PrtMachine *m);

PrtValue prt_new(PrtRuntime *rt, PrtMachine *self, int mtype, int ninit,
                 const int *var_indices, const PrtValue *values) {
  int id = prt_alloc_machine(rt, mtype, ninit, var_indices, values);
  PrtMachine *child = rt->machines[id];
  const PrtMachineDecl *md = &rt->prog->machines[mtype];
  (void)self;
  /* Run the child's initial entry to completion (run-to-completion on
   * the calling thread, as in the KMDF host). */
  {
    int ctl = prt_run_body(rt, child, md->states[0].entry);
    (void)ctl; /* Any raise/return is handled by the machine loop. */
  }
  prt_run_machine(rt, child);
  return prt_mid(id);
}

void prt_send(PrtRuntime *rt, PrtMachine *self, PrtValue target,
              PrtValue event, PrtValue arg) {
  int to;
  if (event.kind != PRT_VAL_EVENT) {
    prt_error(rt, self->id, "undefined-event", "send with a non-event");
    return;
  }
  if (target.kind == PRT_VAL_NULL) {
    prt_error(rt, self->id, "send-to-null", "send target is null");
    return;
  }
  if (target.kind != PRT_VAL_MACHINE) {
    prt_error(rt, self->id, "send-to-null", "send target is not a machine");
    return;
  }
  to = (int)target.data;
  if (to < 0 || to >= rt->num_machines || !rt->machines[to]->alive) {
    prt_error(rt, self->id, "send-to-deleted",
              "send to a deleted or uninitialized machine");
    return;
  }
  prt_enqueue(rt, rt->machines[to], (int)event.data, arg);
}

void prt_call_state(PrtRuntime *rt, PrtMachine *self, int state) {
  const PrtMachineDecl *md = &rt->prog->machines[self->mtype];
  int *inherit = prt_compute_call_inherit(rt, self);
  prt_push_frame(rt, self, state, inherit);
  free(inherit);
  {
    int ctl = prt_run_body(rt, self, md->states[state].entry);
    /* The caller body resumes after this returns only when the pushed
     * state has already popped without control effects; any pending
     * raise/return is finished by the machine loop. The code generator
     * restricts `call` statements to tail position, so the caller body
     * returns immediately afterwards either way. */
    if (ctl == PRT_CTL_RAISE)
      self->ctl = PRT_CTL_RAISE;
    else if (ctl == PRT_CTL_RETURN)
      self->ctl = PRT_CTL_RETURN;
    else if (ctl == PRT_CTL_DELETE)
      self->ctl = PRT_CTL_DELETE;
    else
      self->ctl = PRT_CTL_LEAVE; /* Wait for events in the pushed state. */
  }
}

/* ----------------------------------------------------- event dispatch -- */

/* Handles the pending raise of machine m (rules STEP/CALL/ACTION/POP1). */
static void prt_dispatch(PrtRuntime *rt, PrtMachine *m) {
  const PrtMachineDecl *md = &rt->prog->machines[m->mtype];
  int e = m->raise_event;
  const PrtFrame *top;
  const PrtStateDecl *st;
  PrtTransition tr;

  if (m->nframes == 0) {
    prt_error(rt, m->id, "unhandled-event",
              "raise with an empty call stack");
    return;
  }
  top = &m->frames[m->nframes - 1];
  st = &md->states[top->state];
  tr = st->on_event[e];

  if (tr.kind == PRT_TRANS_STEP) {
    int ctl;
    m->has_raise = 0;
    ctl = prt_run_body(rt, m, st->exit);
    if (rt->has_error || !m->alive)
      return;
    if (ctl == PRT_CTL_RAISE) {
      /* Exit raised a new event: the transition still fires, then the
       * new event is dispatched in the target state (documented
       * implementation choice; the formal rules assume raise-free
       * exits). */
    }
    m->frames[m->nframes - 1].state = tr.target;
    ctl = prt_run_body(rt, m, md->states[tr.target].entry);
    (void)ctl; /* Folded into machine state; the loop continues. */
    if (m->ctl == PRT_CTL_RETURN) {
      /* An entry ending in `return` is finished by the machine loop. */
    }
    return;
  }

  if (tr.kind == PRT_TRANS_CALL) {
    int *inherit = prt_compute_call_inherit(rt, m);
    m->has_raise = 0;
    prt_push_frame(rt, m, tr.target, inherit);
    free(inherit);
    prt_run_body(rt, m, md->states[tr.target].entry);
    return;
  }

  if (tr.kind == PRT_TRANS_ACTION) {
    m->has_raise = 0;
    prt_run_body(rt, m, md->actions[tr.target].body);
    return;
  }

  /* Inherited action? */
  if (top->inherit[e] >= 0) {
    int action = top->inherit[e];
    m->has_raise = 0;
    prt_run_body(rt, m, md->actions[action].body);
    return;
  }

  /* POP1: run the exit statement, pop, keep propagating the event. */
  prt_run_body(rt, m, st->exit);
  if (rt->has_error || !m->alive)
    return;
  free(m->frames[m->nframes - 1].inherit);
  --m->nframes;
  if (m->nframes == 0)
    prt_error(rt, m->id, "unhandled-event",
              rt->prog->event_names[e]);
}

/* Runs machine m until it blocks, halts or errors. */
static void prt_run_machine(PrtRuntime *rt, PrtMachine *m) {
  while (m->alive && !rt->has_error) {
    if (++rt->steps > rt->max_steps) {
      prt_error(rt, m->id, "divergence",
                "machine exceeded the step budget");
      return;
    }
    if (m->ctl == PRT_CTL_RETURN) {
      /* RETURN + POP2: run the exit, pop the frame. */
      const PrtMachineDecl *md = &rt->prog->machines[m->mtype];
      const PrtStateDecl *st = &md->states[m->frames[m->nframes - 1].state];
      m->ctl = PRT_CTL_NONE;
      prt_run_body(rt, m, st->exit);
      if (rt->has_error || !m->alive)
        return;
      free(m->frames[m->nframes - 1].inherit);
      --m->nframes;
      m->has_raise = 0;
      if (m->nframes == 0) {
        prt_error(rt, m->id, "pop-from-empty-stack",
                  "return from the bottom state");
        return;
      }
      continue;
    }
    m->ctl = PRT_CTL_NONE;
    if (m->has_raise) {
      prt_dispatch(rt, m);
      if (m->ctl == PRT_CTL_RETURN)
        continue; /* An entry/action ended in `return`. */
      if (m->ctl == PRT_CTL_DELETE)
        return;
      m->ctl = PRT_CTL_NONE;
      continue;
    }
    {
      int idx = prt_find_eligible(rt, m);
      int i;
      if (idx < 0)
        return; /* Blocked: wait for events. */
      m->msg = prt_event(m->queue[idx].event);
      m->arg = m->queue[idx].arg;
      m->has_raise = 1;
      m->raise_event = m->queue[idx].event;
      m->raise_arg = m->queue[idx].arg;
      for (i = idx + 1; i < m->qlen; ++i)
        m->queue[i - 1] = m->queue[i];
      --m->qlen;
    }
  }
}

/* -------------------------------------------------------- host entry --- */

void PrtRunAll(PrtRuntime *rt) {
  int progress = 1;
  rt->steps = 0;
  while (progress && !rt->has_error) {
    int i;
    progress = 0;
    for (i = 0; i < rt->num_machines; ++i) {
      PrtMachine *m = rt->machines[i];
      if (!m->alive)
        continue;
      if (m->has_raise || m->ctl != PRT_CTL_NONE ||
          prt_find_eligible(rt, m) >= 0) {
        progress = 1;
        prt_run_machine(rt, m);
      }
    }
  }
}

int PrtCreateMachine(PrtRuntime *rt, int mtype, int ninit,
                     const int *var_indices, const PrtValue *values) {
  int id;
  const PrtMachineDecl *md;
  if (mtype < 0 || mtype >= rt->prog->num_machines)
    return -1;
  md = &rt->prog->machines[mtype];
  id = prt_alloc_machine(rt, mtype, ninit, var_indices, values);
  prt_run_body(rt, rt->machines[id], md->states[0].entry);
  prt_run_machine(rt, rt->machines[id]);
  PrtRunAll(rt);
  return id;
}

int PrtAddEvent(PrtRuntime *rt, int target, int event, PrtValue arg) {
  if (target < 0 || target >= rt->num_machines ||
      !rt->machines[target]->alive) {
    prt_error(rt, target, "send-to-deleted", "PrtAddEvent to a dead machine");
    return 1;
  }
  if (event < 0 || event >= rt->prog->num_events)
    return 1;
  prt_enqueue(rt, rt->machines[target], event, arg);
  PrtRunAll(rt);
  return rt->has_error ? 1 : 0;
}

void *PrtGetContext(PrtRuntime *rt, int id) {
  if (id < 0 || id >= rt->num_machines)
    return NULL;
  return rt->machines[id]->context;
}

void PrtSetContext(PrtRuntime *rt, int id, void *context) {
  if (id >= 0 && id < rt->num_machines)
    rt->machines[id]->context = context;
}

const char *PrtCurrentStateName(PrtRuntime *rt, int id) {
  PrtMachine *m;
  if (id < 0 || id >= rt->num_machines)
    return "";
  m = rt->machines[id];
  if (!m->alive || m->nframes == 0)
    return "";
  return rt->prog->machines[m->mtype]
      .states[m->frames[m->nframes - 1].state]
      .name;
}

PrtValue PrtReadVar(PrtRuntime *rt, int id, int var_index) {
  PrtMachine *m;
  if (id < 0 || id >= rt->num_machines)
    return prt_null();
  m = rt->machines[id];
  if (!m->alive || var_index < 0 ||
      var_index >= rt->prog->machines[m->mtype].num_vars)
    return prt_null();
  return m->vars[var_index];
}
