/*===- codegen/c/prt_runtime.h - C runtime for generated P code -----------===
 *
 * Part of the P-language reproduction. MIT license.
 *
 *===----------------------------------------------------------------------===
 *
 * The runtime library of Section 4: generated C code is a collection of
 * indexed, statically allocated tables (events, machine types, states
 * with transition/deferred/action tables, entry/exit functions); this
 * runtime interprets those tables, providing machine creation, queues
 * with the ⊎ dedup append, the call stack with inherited handler maps,
 * deferred-event dequeue, and run-to-completion execution. The three
 * host-facing calls mirror the paper's API: PrtCreateMachine
 * (SMCreateMachine), PrtAddEvent (SMAddEvent) and PrtGetContext
 * (SMGetContext).
 *
 * Written in portable C99 so a generated driver builds with any stock C
 * compiler (the paper's host was KMDF; re-hosting only replaces this
 * file, not the generated code).
 *
 *===----------------------------------------------------------------------===*/

#ifndef PRT_RUNTIME_H
#define PRT_RUNTIME_H

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

/* ----------------------------------------------------------- values --- */

typedef enum PrtValueKind {
  PRT_VAL_NULL = 0,
  PRT_VAL_BOOL = 1,
  PRT_VAL_INT = 2,
  PRT_VAL_EVENT = 3,
  PRT_VAL_MACHINE = 4
} PrtValueKind;

typedef struct PrtValue {
  PrtValueKind kind;
  long long data;
} PrtValue;

PrtValue prt_null(void);
PrtValue prt_bool(int b);
PrtValue prt_int(long long i);
PrtValue prt_event(int e);
PrtValue prt_mid(int id);

/* Operators with the paper's strict-in-⊥ semantics. */
PrtValue prt_op_not(PrtValue v);
PrtValue prt_op_neg(PrtValue v);
PrtValue prt_op_add(PrtValue a, PrtValue b);
PrtValue prt_op_sub(PrtValue a, PrtValue b);
PrtValue prt_op_mul(PrtValue a, PrtValue b);
PrtValue prt_op_div(PrtValue a, PrtValue b);
PrtValue prt_op_and(PrtValue a, PrtValue b);
PrtValue prt_op_or(PrtValue a, PrtValue b);
PrtValue prt_op_eq(PrtValue a, PrtValue b);
PrtValue prt_op_ne(PrtValue a, PrtValue b);
PrtValue prt_op_lt(PrtValue a, PrtValue b);
PrtValue prt_op_le(PrtValue a, PrtValue b);
PrtValue prt_op_gt(PrtValue a, PrtValue b);
PrtValue prt_op_ge(PrtValue a, PrtValue b);

/* ----------------------------------------------------- program tables --- */

typedef struct PrtRuntime PrtRuntime;
typedef struct PrtMachine PrtMachine;

/* Entry/exit/action bodies compiled from P statements. */
typedef void (*PrtBodyFn)(PrtRuntime *rt, PrtMachine *self);

typedef enum PrtTransKind {
  PRT_TRANS_NONE = 0,
  PRT_TRANS_STEP = 1,
  PRT_TRANS_CALL = 2,
  PRT_TRANS_ACTION = 3
} PrtTransKind;

typedef struct PrtTransition {
  unsigned char kind; /* PrtTransKind */
  int target;         /* state index (STEP/CALL) or action index */
} PrtTransition;

typedef struct PrtStateDecl {
  const char *name;
  const unsigned char *deferred; /* per event id: 1 = deferred */
  const PrtTransition *on_event; /* per event id */
  PrtBodyFn entry;               /* may be NULL (skip) */
  PrtBodyFn exit;                /* may be NULL (skip) */
} PrtStateDecl;

typedef struct PrtActionDecl {
  const char *name;
  PrtBodyFn body; /* may be NULL (skip) */
} PrtActionDecl;

typedef struct PrtMachineDecl {
  const char *name;
  int num_vars;
  const char *const *var_names;
  int num_states;
  const PrtStateDecl *states; /* states[0] is Init(m) */
  int num_actions;
  const PrtActionDecl *actions;
} PrtMachineDecl;

typedef struct PrtProgramDecl {
  int num_events;
  const char *const *event_names;
  int num_machines;
  const PrtMachineDecl *machines;
} PrtProgramDecl;

/* --------------------------------------------------- runtime objects --- */

/* Inherited handler map entries. */
#define PRT_INHERIT_NONE (-2)
#define PRT_INHERIT_DEFERRED (-1)

typedef struct PrtFrame {
  int state;
  int *inherit; /* per event id */
} PrtFrame;

typedef struct PrtQueueEntry {
  int event;
  PrtValue arg;
} PrtQueueEntry;

struct PrtMachine {
  int id;
  int mtype;
  int alive;
  PrtValue *vars;
  PrtValue msg;
  PrtValue arg;
  int has_raise;
  int raise_event;
  PrtValue raise_arg;
  PrtQueueEntry *queue;
  int qlen, qcap;
  PrtFrame *frames;
  int nframes, fcap;
  void *context; /* external memory for foreign code (PrtGetContext) */
  int ctl;       /* body control flag, see PRT_CTL_* */
};

#define PRT_CTL_NONE 0
#define PRT_CTL_RAISE 1
#define PRT_CTL_LEAVE 2
#define PRT_CTL_RETURN 3
#define PRT_CTL_DELETE 4

/* Error reporting callback: kind is one of "assert-failed",
 * "send-to-null", "send-to-deleted", "unhandled-event",
 * "pop-from-empty-stack", "undefined-branch", "undefined-event",
 * "divergence". */
typedef void (*PrtErrorFn)(PrtRuntime *rt, int machine_id, const char *kind,
                           const char *msg);

struct PrtRuntime {
  const PrtProgramDecl *prog;
  PrtMachine **machines;
  int num_machines, cap_machines;
  PrtErrorFn error_fn;
  int has_error;
  unsigned long long steps;
  unsigned long long max_steps; /* divergence guard per PrtRunAll */
  void *user;                   /* host cookie */
};

/* ------------------------------------------------------- host API ------ */

PrtRuntime *PrtCreateRuntime(const PrtProgramDecl *prog, PrtErrorFn on_error);
void PrtDestroyRuntime(PrtRuntime *rt);

/* SMCreateMachine: creates a machine of type `mtype`, assigns the listed
 * variables, runs the system to completion; returns the machine id or -1. */
int PrtCreateMachine(PrtRuntime *rt, int mtype, int ninit,
                     const int *var_indices, const PrtValue *values);

/* SMAddEvent: enqueues an event from the host and runs to completion.
 * Returns 0 on success, nonzero on error. */
int PrtAddEvent(PrtRuntime *rt, int target, int event, PrtValue arg);

/* SMGetContext: the external memory attached to a machine. */
void *PrtGetContext(PrtRuntime *rt, int id);
void PrtSetContext(PrtRuntime *rt, int id, void *context);

/* Runs every machine until the system quiesces. */
void PrtRunAll(PrtRuntime *rt);

/* Name of machine `id`'s current (topmost) state; "" when dead. */
const char *PrtCurrentStateName(PrtRuntime *rt, int id);

/* Reads variable `var_index` of machine `id` (⊥ when invalid). */
PrtValue PrtReadVar(PrtRuntime *rt, int id, int var_index);

/* ------------------------------------- helpers for generated bodies --- */

/* All helpers set rt->has_error (and invoke the error callback) on the
 * error transitions of Figure 6; generated code returns immediately
 * after any helper when rt->has_error or self->ctl is set. */

PrtValue prt_new(PrtRuntime *rt, PrtMachine *self, int mtype, int ninit,
                 const int *var_indices, const PrtValue *values);
void prt_send(PrtRuntime *rt, PrtMachine *self, PrtValue target,
              PrtValue event, PrtValue arg);
void prt_raise(PrtRuntime *rt, PrtMachine *self, PrtValue event,
               PrtValue arg);
void prt_leave(PrtMachine *self);
void prt_return(PrtRuntime *rt, PrtMachine *self);
void prt_delete(PrtRuntime *rt, PrtMachine *self);
void prt_assert(PrtRuntime *rt, PrtMachine *self, PrtValue cond,
                const char *where);
/* `call S;` in tail position: push the state like a call transition and
 * run its entry. */
void prt_call_state(PrtRuntime *rt, PrtMachine *self, int state);
/* Branch condition evaluation; errors on non-bool (undefined branch). */
int prt_cond(PrtRuntime *rt, PrtMachine *self, PrtValue v,
             const char *where);

#ifdef __cplusplus
}
#endif

#endif /* PRT_RUNTIME_H */
