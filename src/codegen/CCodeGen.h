//===- codegen/CCodeGen.h - C code generation (Section 4) ------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The P compiler's C backend. From a Sema-checked AST it emits the
/// generated-code layer of Section 4: a header with event/machine/
/// variable enumerations and a source file containing the statically
/// allocated table structures (transition, deferred-event and action
/// tables per state; entry/exit/action functions as C code) that the
/// portable C runtime (src/codegen/c/prt_runtime.{h,c}) interprets.
///
/// Ghost machines, variables, events and statements are erased exactly
/// as in the verification build's erasing lowering; machine and event
/// indices are preserved so the two builds agree on identities.
///
/// Restrictions of the C backend (documented, diagnosed):
///  * `call S;` statements must be in tail position (the last statement
///    of their body) — C has no first-class continuations; call
///    *transitions* are unrestricted;
///  * `*` cannot appear (Sema already bans it outside ghost code).
///
/// Foreign functions become extern declarations
/// `PrtValue <Machine>_<fun>(PrtRuntime*, PrtMachine*, PrtValue...)`;
/// the PrtMachine* gives the callee access to its external memory (the
/// paper's void* argument) via self->context.
///
//===----------------------------------------------------------------------===//

#ifndef P_CODEGEN_CCODEGEN_H
#define P_CODEGEN_CCODEGEN_H

#include "ast/AST.h"

#include <string>
#include <vector>

namespace p {

/// Options for C code generation.
struct CodegenOptions {
  /// Base name used for the program symbol (`<Base>_program`) and in
  /// the generated file banner.
  std::string BaseName = "pgen";
};

/// Result of C code generation.
struct CodegenResult {
  std::string Header; ///< Contents of <base>.h.
  std::string Source; ///< Contents of <base>.c.
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }
};

/// Generates C code for \p Prog (which must have passed Sema).
CodegenResult generateC(const Program &Prog, const CodegenOptions &Opts);

/// Absolute path of the directory holding prt_runtime.{h,c}; generated
/// code compiles with `-I` this directory plus prt_runtime.c.
std::string cRuntimeDir();

} // namespace p

#endif // P_CODEGEN_CCODEGEN_H
