//===- codegen/CCodeGen.cpp ---------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/CCodeGen.h"

#include "support/Casting.h"

#include <cassert>

#ifndef PLANG_SOURCE_DIR
#define PLANG_SOURCE_DIR "."
#endif

using namespace p;

std::string p::cRuntimeDir() {
  return std::string(PLANG_SOURCE_DIR) + "/src/codegen/c";
}

namespace {

class CWriter {
public:
  CWriter(const Program &Prog, const CodegenOptions &Opts)
      : Prog(Prog), Opts(Opts) {}

  CodegenResult run();

private:
  void emitHeader();
  void emitTables();
  void emitMachineBodies(const MachineDecl &M);
  void emitBodyFn(const MachineDecl &M, const std::string &FnName,
                  const Stmt *Body);
  void emitStmt(const MachineDecl &M, const Stmt &S, unsigned Indent,
                bool IsLastTopLevel);
  std::string emitExpr(const MachineDecl &M, const Expr &E);

  /// True when \p S is erased during compilation (ghost statement in a
  /// real machine).
  bool erased(const MachineDecl &M, const Stmt &S) const;

  void error(SourceLoc Loc, const std::string &Msg) {
    Result.Errors.push_back(Loc.str() + ": " + Msg);
  }

  void line(std::string Text) {
    Src += Text;
    Src += '\n';
  }
  static std::string pad(unsigned Indent) { return std::string(Indent, ' '); }

  const Program &Prog;
  const CodegenOptions &Opts;
  CodegenResult Result;
  std::string Src; ///< Accumulates the .c file.
};

} // namespace

bool CWriter::erased(const MachineDecl &M, const Stmt &S) const {
  if (M.Ghost)
    return false; // Ghost machines are skipped wholesale elsewhere.
  switch (S.getKind()) {
  case Stmt::Kind::Assign: {
    const auto &A = *cast<AssignStmt>(&S);
    return A.VarIndex >= 0 && M.Vars[A.VarIndex].Ghost;
  }
  case Stmt::Kind::New: {
    const auto &N = *cast<NewStmt>(&S);
    return N.MachineIndex >= 0 && Prog.Machines[N.MachineIndex].Ghost;
  }
  case Stmt::Kind::Send:
    return cast<SendStmt>(&S)->Target->Ghost;
  case Stmt::Kind::Assert:
    return cast<AssertStmt>(&S)->Cond->Ghost;
  default:
    return false;
  }
}

std::string CWriter::emitExpr(const MachineDecl &M, const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::NullLit:
    return "prt_null()";
  case Expr::Kind::BoolLit:
    return cast<BoolLitExpr>(&E)->Value ? "prt_bool(1)" : "prt_bool(0)";
  case Expr::Kind::IntLit:
    return "prt_int(" + std::to_string(cast<IntLitExpr>(&E)->Value) + ")";
  case Expr::Kind::EventLit:
    return "prt_event(PEV_" + cast<EventLitExpr>(&E)->Name + ")";
  case Expr::Kind::VarRef: {
    const auto &Ref = *cast<VarRefExpr>(&E);
    assert(Ref.VarIndex >= 0 && "model bodies are not compiled to C");
    return "self->vars[" + std::to_string(Ref.VarIndex) + "]";
  }
  case Expr::Kind::This:
    return "prt_mid(self->id)";
  case Expr::Kind::Msg:
    return "self->msg";
  case Expr::Kind::Arg:
    return "self->arg";
  case Expr::Kind::Nondet:
    error(E.getLoc(), "'*' cannot be compiled to C (verification only)");
    return "prt_null()";
  case Expr::Kind::Unary: {
    const auto &U = *cast<UnaryExpr>(&E);
    const char *Fn = U.Op == UnaryOp::Not ? "prt_op_not" : "prt_op_neg";
    return std::string(Fn) + "(" + emitExpr(M, *U.Operand) + ")";
  }
  case Expr::Kind::Binary: {
    const auto &B = *cast<BinaryExpr>(&E);
    const char *Fn = "prt_op_add";
    switch (B.Op) {
    case BinaryOp::Add:
      Fn = "prt_op_add";
      break;
    case BinaryOp::Sub:
      Fn = "prt_op_sub";
      break;
    case BinaryOp::Mul:
      Fn = "prt_op_mul";
      break;
    case BinaryOp::Div:
      Fn = "prt_op_div";
      break;
    case BinaryOp::And:
      Fn = "prt_op_and";
      break;
    case BinaryOp::Or:
      Fn = "prt_op_or";
      break;
    case BinaryOp::Eq:
      Fn = "prt_op_eq";
      break;
    case BinaryOp::Ne:
      Fn = "prt_op_ne";
      break;
    case BinaryOp::Lt:
      Fn = "prt_op_lt";
      break;
    case BinaryOp::Le:
      Fn = "prt_op_le";
      break;
    case BinaryOp::Gt:
      Fn = "prt_op_gt";
      break;
    case BinaryOp::Ge:
      Fn = "prt_op_ge";
      break;
    }
    return std::string(Fn) + "(" + emitExpr(M, *B.LHS) + ", " +
           emitExpr(M, *B.RHS) + ")";
  }
  case Expr::Kind::ForeignCall: {
    const auto &C = *cast<ForeignCallExpr>(&E);
    std::string Out = M.Name + "_" + C.Callee + "(rt, self";
    for (const ExprPtr &Arg : C.Args)
      Out += ", " + emitExpr(M, *Arg);
    return Out + ")";
  }
  }
  return "prt_null()";
}

void CWriter::emitStmt(const MachineDecl &M, const Stmt &S, unsigned Indent,
                       bool IsLastTopLevel) {
  if (erased(M, S))
    return;
  const std::string P = pad(Indent);
  switch (S.getKind()) {
  case Stmt::Kind::Skip:
    return;
  case Stmt::Kind::Block: {
    const auto &B = *cast<BlockStmt>(&S);
    for (size_t I = 0; I != B.Stmts.size(); ++I)
      emitStmt(M, *B.Stmts[I], Indent,
               IsLastTopLevel && I + 1 == B.Stmts.size());
    return;
  }
  case Stmt::Kind::Assign: {
    const auto &A = *cast<AssignStmt>(&S);
    line(P + "self->vars[" + std::to_string(A.VarIndex) +
         "] = " + emitExpr(M, *A.Value) + ";");
    line(P + "if (rt->has_error || self->ctl) return;");
    return;
  }
  case Stmt::Kind::New: {
    const auto &N = *cast<NewStmt>(&S);
    line(P + "{");
    size_t K = N.Inits.size();
    if (K != 0) {
      std::string Idx = P + "  static const int p_idx[] = {";
      std::string Vals = P + "  PrtValue p_vals[] = {";
      for (size_t I = 0; I != K; ++I) {
        if (I) {
          Idx += ", ";
          Vals += ", ";
        }
        Idx += std::to_string(N.Inits[I].VarIndex);
        Vals += emitExpr(M, *N.Inits[I].Value);
      }
      line(Idx + "};");
      line(Vals + "};");
      line(P + "  PrtValue p_new_id = prt_new(rt, self, PMT_" +
           N.MachineName + ", " + std::to_string(K) +
           ", p_idx, p_vals);");
    } else {
      line(P + "  PrtValue p_new_id = prt_new(rt, self, PMT_" +
           N.MachineName + ", 0, (const int *)0, (const PrtValue *)0);");
    }
    line(P + "  if (rt->has_error || self->ctl) return;");
    if (N.VarIndex >= 0)
      line(P + "  self->vars[" + std::to_string(N.VarIndex) +
           "] = p_new_id;");
    else
      line(P + "  (void)p_new_id;");
    line(P + "}");
    return;
  }
  case Stmt::Kind::Delete:
    line(P + "prt_delete(rt, self);");
    line(P + "return;");
    return;
  case Stmt::Kind::Send: {
    const auto &Snd = *cast<SendStmt>(&S);
    std::string Payload =
        Snd.Payload ? emitExpr(M, *Snd.Payload) : std::string("prt_null()");
    line(P + "prt_send(rt, self, " + emitExpr(M, *Snd.Target) + ", " +
         emitExpr(M, *Snd.Event) + ", " + Payload + ");");
    line(P + "if (rt->has_error || self->ctl) return;");
    return;
  }
  case Stmt::Kind::Raise: {
    const auto &R = *cast<RaiseStmt>(&S);
    std::string Payload =
        R.Payload ? emitExpr(M, *R.Payload) : std::string("prt_null()");
    line(P + "prt_raise(rt, self, " + emitExpr(M, *R.Event) + ", " +
         Payload + ");");
    line(P + "return;");
    return;
  }
  case Stmt::Kind::Leave:
    line(P + "prt_leave(self);");
    line(P + "return;");
    return;
  case Stmt::Kind::Return:
    line(P + "prt_return(rt, self);");
    line(P + "return;");
    return;
  case Stmt::Kind::Assert: {
    const auto &A = *cast<AssertStmt>(&S);
    line(P + "prt_assert(rt, self, " + emitExpr(M, *A.Cond) + ", \"" +
         A.getLoc().str() + "\");");
    line(P + "if (rt->has_error) return;");
    return;
  }
  case Stmt::Kind::If: {
    const auto &I = *cast<IfStmt>(&S);
    line(P + "{");
    line(P + "  int p_c = prt_cond(rt, self, " + emitExpr(M, *I.Cond) +
         ", \"" + I.getLoc().str() + "\");");
    line(P + "  if (rt->has_error) return;");
    line(P + "  if (p_c) {");
    emitStmt(M, *I.Then, Indent + 4, false);
    if (I.Else) {
      line(P + "  } else {");
      emitStmt(M, *I.Else, Indent + 4, false);
    }
    line(P + "  }");
    line(P + "}");
    return;
  }
  case Stmt::Kind::While: {
    const auto &W = *cast<WhileStmt>(&S);
    line(P + "for (;;) {");
    line(P + "  int p_c = prt_cond(rt, self, " + emitExpr(M, *W.Cond) +
         ", \"" + W.getLoc().str() + "\");");
    line(P + "  if (rt->has_error) return;");
    line(P + "  if (!p_c) break;");
    emitStmt(M, *W.Body, Indent + 2, false);
    line(P + "}");
    return;
  }
  case Stmt::Kind::CallState: {
    const auto &C = *cast<CallStateStmt>(&S);
    if (!IsLastTopLevel) {
      error(S.getLoc(),
            "the C backend supports 'call' statements only in tail "
            "position (the interpreter supports full continuations)");
      return;
    }
    line(P + "prt_call_state(rt, self, " + std::to_string(C.StateIndex) +
         ");");
    line(P + "return;");
    return;
  }
  case Stmt::Kind::ExprStmt: {
    const auto &E = *cast<ExprStmt>(&S);
    line(P + "(void)" + emitExpr(M, *E.E) + ";");
    line(P + "if (rt->has_error || self->ctl) return;");
    return;
  }
  }
}

void CWriter::emitBodyFn(const MachineDecl &M, const std::string &FnName,
                         const Stmt *Body) {
  line("static void " + FnName +
       "(PrtRuntime *rt, PrtMachine *self) {");
  line("  (void)rt; (void)self;");
  if (Body)
    emitStmt(M, *Body, 2, true);
  line("}");
  line("");
}

void CWriter::emitMachineBodies(const MachineDecl &M) {
  for (const StateDecl &St : M.States) {
    if (St.Entry)
      emitBodyFn(M, "p_" + M.Name + "_" + St.Name + "_entry",
                 St.Entry.get());
    if (St.Exit)
      emitBodyFn(M, "p_" + M.Name + "_" + St.Name + "_exit", St.Exit.get());
  }
  for (const ActionDecl &A : M.Actions)
    emitBodyFn(M, "p_" + M.Name + "_" + A.Name + "_action", A.Body.get());
}

void CWriter::emitHeader() {
  std::string &H = Result.Header;
  std::string Guard = "PGEN_" + Opts.BaseName + "_H";
  H += "/* Generated by the P compiler (PLDI'13 reproduction). Do not "
       "edit. */\n";
  H += "#ifndef " + Guard + "\n#define " + Guard + "\n\n";
  H += "#include \"prt_runtime.h\"\n\n";
  H += "#ifdef __cplusplus\nextern \"C\" {\n#endif\n\n";

  H += "/* Events. */\nenum {\n";
  for (size_t I = 0; I != Prog.Events.size(); ++I)
    H += "  PEV_" + Prog.Events[I].Name + " = " + std::to_string(I) + ",\n";
  H += "  PEV__COUNT = " + std::to_string(Prog.Events.size()) + "\n};\n\n";

  H += "/* Machine types (ghost machines keep their slot but have no "
       "code). */\nenum {\n";
  for (size_t I = 0; I != Prog.Machines.size(); ++I)
    H += "  PMT_" + Prog.Machines[I].Name + " = " + std::to_string(I) +
         ",\n";
  H += "  PMT__COUNT = " + std::to_string(Prog.Machines.size()) + "\n};\n\n";

  for (const MachineDecl &M : Prog.Machines) {
    if (M.Ghost)
      continue;
    H += "/* Variables of machine " + M.Name + ". */\nenum {\n";
    for (size_t I = 0; I != M.Vars.size(); ++I)
      H += "  PVAR_" + M.Name + "_" + M.Vars[I].Name + " = " +
           std::to_string(I) + ",\n";
    H += "  PVAR_" + M.Name + "__COUNT = " + std::to_string(M.Vars.size()) +
         "\n};\n\n";
  }

  // Foreign function externs (real machines only).
  bool AnyForeign = false;
  for (const MachineDecl &M : Prog.Machines) {
    if (M.Ghost)
      continue;
    for (const ForeignFunDecl &F : M.Funs) {
      if (!AnyForeign) {
        H += "/* Foreign functions to be provided by the driver author "
             "(Section 4). */\n";
        AnyForeign = true;
      }
      H += "extern PrtValue " + M.Name + "_" + F.Name +
           "(PrtRuntime *rt, PrtMachine *self";
      for (size_t I = 0; I != F.Params.size(); ++I)
        H += ", PrtValue " + F.Params[I].Name;
      H += ");\n";
    }
  }
  if (AnyForeign)
    H += "\n";

  H += "extern const PrtProgramDecl " + Opts.BaseName + "_program;\n";
  int Main = Prog.mainMachine();
  bool MainErased = Main >= 0 && Prog.Machines[Main].Ghost;
  H += "/* Main machine index, or -1 when the verification-time main was "
       "a ghost. */\n";
  H += "#define " + Opts.BaseName + "_MAIN_MACHINE " +
       std::to_string(MainErased ? -1 : Main) + "\n\n";
  H += "#ifdef __cplusplus\n}\n#endif\n\n#endif\n";
}

void CWriter::emitTables() {
  const size_t NE = Prog.Events.size();

  line("/* Event table. */");
  {
    std::string Names = "static const char *const p_event_names[] = {";
    for (size_t I = 0; I != NE; ++I) {
      if (I)
        Names += ", ";
      Names += "\"" + Prog.Events[I].Name + "\"";
    }
    Names += "};";
    line(Names);
  }
  line("");

  for (const MachineDecl &M : Prog.Machines) {
    const bool Code = !M.Ghost;
    line("/* ---- machine " + M.Name + (M.Ghost ? " (ghost) */" : " */"));
    if (Code)
      emitMachineBodies(M);

    if (!M.Vars.empty()) {
      std::string Vars =
          "static const char *const p_" + M.Name + "_vars[] = {";
      for (size_t I = 0; I != M.Vars.size(); ++I) {
        if (I)
          Vars += ", ";
        Vars += "\"" + M.Vars[I].Name + "\"";
      }
      line(Vars + "};");
    }

    for (const StateDecl &St : M.States) {
      // Deferred set.
      std::vector<char> Deferred(NE, 0);
      for (int Id : St.DeferredIds)
        Deferred[Id] = 1;
      std::string D = "static const unsigned char p_" + M.Name + "_" +
                      St.Name + "_deferred[] = {";
      for (size_t I = 0; I != NE; ++I) {
        if (I)
          D += ", ";
        D += Deferred[I] ? '1' : '0';
      }
      line(D + "};");

      // Transition table.
      std::vector<std::pair<int, int>> Slots(NE, {0, -1});
      for (const HandlerDecl &H : St.Handlers) {
        if (H.EventId < 0 || H.TargetIndex < 0)
          continue;
        int Kind = H.Kind == HandlerKind::Step   ? 1
                   : H.Kind == HandlerKind::Call ? 2
                                                 : 3;
        // A transition beats an action on the same event.
        if (Kind == 3 && Slots[H.EventId].first != 0)
          continue;
        Slots[H.EventId] = {Kind, H.TargetIndex};
      }
      std::string T = "static const PrtTransition p_" + M.Name + "_" +
                      St.Name + "_trans[] = {";
      for (size_t I = 0; I != NE; ++I) {
        if (I)
          T += ", ";
        T += "{" + std::to_string(Slots[I].first) + ", " +
             std::to_string(Slots[I].second) + "}";
      }
      line(T + "};");
    }

    {
      std::string States =
          "static const PrtStateDecl p_" + M.Name + "_states[] = {";
      for (size_t I = 0; I != M.States.size(); ++I) {
        const StateDecl &St = M.States[I];
        if (I)
          States += ",";
        States += "\n  {\"" + St.Name + "\", p_" + M.Name + "_" + St.Name +
                  "_deferred, p_" + M.Name + "_" + St.Name + "_trans, ";
        States += (Code && St.Entry)
                      ? "p_" + M.Name + "_" + St.Name + "_entry, "
                      : "0, ";
        States +=
            (Code && St.Exit) ? "p_" + M.Name + "_" + St.Name + "_exit}"
                              : "0}";
      }
      line(States + "\n};");
    }

    if (!M.Actions.empty()) {
      std::string Actions =
          "static const PrtActionDecl p_" + M.Name + "_actions[] = {";
      for (size_t I = 0; I != M.Actions.size(); ++I) {
        if (I)
          Actions += ", ";
        Actions += "{\"" + M.Actions[I].Name + "\", ";
        Actions += Code ? "p_" + M.Name + "_" + M.Actions[I].Name + "_action}"
                        : "0}";
      }
      line(Actions + "};");
    }
    line("");
  }

  line("/* Machine-type table. */");
  line("static const PrtMachineDecl p_machines[] = {");
  for (size_t I = 0; I != Prog.Machines.size(); ++I) {
    const MachineDecl &M = Prog.Machines[I];
    std::string Row = "  {\"" + M.Name + "\", " +
                      std::to_string(M.Vars.size()) + ", " +
                      (M.Vars.empty() ? "0" : "p_" + M.Name + "_vars") +
                      ", " + std::to_string(M.States.size()) + ", p_" +
                      M.Name + "_states, " +
                      std::to_string(M.Actions.size()) + ", " +
                      (M.Actions.empty() ? "0" : "p_" + M.Name + "_actions") +
                      "}";
    if (I + 1 != Prog.Machines.size())
      Row += ",";
    line(Row);
  }
  line("};");
  line("");
  line("const PrtProgramDecl " + Opts.BaseName + "_program = {");
  line("  " + std::to_string(Prog.Events.size()) + ", p_event_names,");
  line("  " + std::to_string(Prog.Machines.size()) + ", p_machines");
  line("};");
}

CodegenResult CWriter::run() {
  emitHeader();
  line("/* Generated by the P compiler (PLDI'13 reproduction). Do not "
       "edit. */");
  line("#include \"" + Opts.BaseName + ".h\"");
  line("");
  emitTables();
  Result.Source = std::move(Src);
  return std::move(Result);
}

CodegenResult p::generateC(const Program &Prog, const CodegenOptions &Opts) {
  CWriter Writer(Prog, Opts);
  return Writer.run();
}
