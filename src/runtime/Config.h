//===- runtime/Config.h - Machine and global configurations ----------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global and per-machine configurations of the operational semantics
/// (Section 3.1). A machine configuration is the paper's (σ, s, stmt, q):
///
///   σ    — Frames: a call stack of (state, inherited-handler map) pairs;
///   s    — Vars plus the special Msg/Arg registers;
///   stmt — Exec: a stack of resumable bytecode frames, together with the
///          pending raise (the dynamic `raise` of Figure 5) and the
///          pending transfer (the inserted Exit(m,n); continuations);
///   q    — Queue: the FIFO input buffer with ⊎-unique entries.
///
/// Machine configurations are held behind copy-on-write snapshots
/// (CowMachine): copying a Config is O(#machines) pointer bumps, and a
/// machine's state is cloned only when someone is about to mutate it
/// (CowMachine::mut — the checker's successor generation touches one
/// machine per slice, so successor cost is proportional to what
/// changed, not to the whole system). Each snapshot also carries a
/// cached 64-bit fingerprint slot that mut() invalidates, which is what
/// makes the checker's incremental state hashing safe (see
/// checker/StateHash.h).
///
//===----------------------------------------------------------------------===//

#ifndef P_RUNTIME_CONFIG_H
#define P_RUNTIME_CONFIG_H

#include "runtime/Errors.h"
#include "runtime/Value.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace p {

/// What kind of body a bytecode frame is executing.
enum class FrameKind : uint8_t {
  Entry,  ///< A state's entry statement.
  Exit,   ///< A state's exit statement.
  Action, ///< An action body.
  Model,  ///< A foreign function's model body.
};

/// One resumable bytecode activation.
struct ExecFrame {
  int32_t Body = -1;
  int32_t PC = 0;
  FrameKind Kind = FrameKind::Entry;
  std::vector<Value> Operands;
  std::vector<Value> Params; ///< Model frames: the call arguments.
  Value Result;              ///< Model frames: the `result` register.

  bool operator==(const ExecFrame &O) const = default;
};

/// Inherited-handler map entries (the `a` component of the semantics):
/// InheritNone is ⊥ ("no handler"), InheritDeferred is ⊤ ("deferred"),
/// values >= 0 are action ids.
inline constexpr int32_t InheritNone = -2;
inline constexpr int32_t InheritDeferred = -1;

/// One (state, inherited map) pair on the machine's call stack, plus the
/// saved continuation when the frame was pushed by a `call S;` statement.
struct StateFrame {
  int32_t State = -1;
  std::vector<int32_t> Inherit;     ///< Indexed by event id.
  std::vector<ExecFrame> SavedCont; ///< Resumed when this frame returns.

  bool operator==(const StateFrame &O) const = default;
};

/// A deferred state change that must wait for the exit statement to run
/// (the `Exit(m,n); ...` insertions of Figure 5).
enum class TransferKind : uint8_t {
  None,
  Step,      ///< Replace the top state with Target and run its entry.
  PopRaise,  ///< POP1: pop the frame, keep propagating the raised event.
  PopReturn, ///< POP2: pop the frame, resume its saved continuation.
};

/// The machine configuration (σ, s, stmt, q).
struct MachineState {
  int32_t MachineIndex = -1;
  bool Alive = false;
  /// Fault model: the machine was crashed (by an explored crash fault
  /// or Host::crashMachine) rather than deleted by its own `delete`.
  /// Crashed implies !Alive; unlike deletion, sends to a crashed
  /// machine are silently dropped instead of erroring, and the host can
  /// restart it. Always false when no fault layer is active.
  bool Crashed = false;

  std::vector<StateFrame> Frames; ///< σ; back() is the top of the stack.
  std::vector<ExecFrame> Exec;    ///< Remaining statement; back() runs.
  std::vector<Value> Vars;
  Value Msg; ///< Last raised/dequeued event (an Event value or ⊥).
  Value Arg; ///< Its payload.

  /// The pending dynamic raise of Figure 5 (raise-bar).
  bool HasRaise = false;
  int32_t RaiseEvent = -1;
  Value RaiseArg;

  /// Pending transfer applied once Exec drains (after the exit body).
  TransferKind Transfer = TransferKind::None;
  int32_t TransferTarget = -1;

  /// The FIFO input buffer q; entries are unique under ⊎.
  std::vector<std::pair<int32_t, Value>> Queue;

  /// Set by the model checker to resume past a Nondet choice point.
  std::optional<bool> InjectedChoice;

  /// Set by the model checker to resume past a foreign-call fault point
  /// (Executor::Options::ForeignFaultPoints): true fails the call (it
  /// returns ⊥), false executes it normally. Unset in every
  /// configuration explored without fault injection.
  std::optional<bool> InjectedForeignFail;

  bool operator==(const MachineState &O) const = default;
};

/// Copy-on-write handle to a MachineState. Copies share one immutable
/// snapshot; `mut()` is the single "about to mutate machine i" hook:
/// it clones the snapshot when it is shared and invalidates the cached
/// fingerprint either way. Reads go through `operator*`/`operator->`
/// and never clone.
///
/// Thread-safety: a snapshot shared between configurations owned by
/// different checker workers is never mutated (mut() unshares first),
/// and the fingerprint cache slot is atomic, so concurrent fingerprint
/// computation is a benign same-value race. `mut()` itself must only be
/// called by the thread that owns the enclosing Config.
class CowMachine {
public:
  CowMachine() : Snap(std::make_shared<Snapshot>()) {}
  explicit CowMachine(MachineState S)
      : Snap(std::make_shared<Snapshot>(std::move(S))) {}

  const MachineState &operator*() const { return Snap->S; }
  const MachineState *operator->() const { return &Snap->S; }

  /// Clone-before-mutate: unshares the snapshot if any other Config
  /// still points at it, and invalidates the cached fingerprint.
  MachineState &mut() {
    if (Snap.use_count() != 1) {
      Snap = std::make_shared<Snapshot>(Snap->S); // caches not copied
    } else {
      Snap->Fp.store(0, std::memory_order_relaxed);
      Snap->Refs.store(0, std::memory_order_relaxed);
    }
    return Snap->S;
  }

  /// Cached 64-bit fingerprint of the snapshot; 0 = not computed.
  /// Valid fingerprints are never 0 (the hasher remaps 0 — see
  /// checker/StateHash.cpp), so one sentinel suffices.
  uint64_t cachedFingerprint() const {
    return Snap->Fp.load(std::memory_order_acquire);
  }
  void cacheFingerprint(uint64_t F) const {
    Snap->Fp.store(F, std::memory_order_release);
  }

  /// Cached mask of machine ids this snapshot's state references (see
  /// checker/StateHash.h machineRefsMask); 0 = not computed (computed
  /// masks always carry the marker bit). Used by the symmetry reduction
  /// to reuse cached fingerprints for machines untouched by a candidate
  /// permutation. Same benign-race discipline as the fingerprint slot.
  uint64_t cachedRefsMask() const {
    return Snap->Refs.load(std::memory_order_acquire);
  }
  void cacheRefsMask(uint64_t R) const {
    Snap->Refs.store(R, std::memory_order_release);
  }

  /// True when both handles share one physical snapshot (used by the
  /// checker's shared-representation memory accounting).
  bool sharesSnapshotWith(const CowMachine &O) const {
    return Snap == O.Snap;
  }
  /// Stable identity of the underlying snapshot allocation.
  const void *snapshotKey() const { return Snap.get(); }
  /// Heap bytes owned by this snapshot (counted once across sharers).
  uint64_t snapshotBytes() const;

  bool operator==(const CowMachine &O) const {
    return Snap == O.Snap || Snap->S == O.Snap->S;
  }

private:
  struct Snapshot {
    Snapshot() = default;
    explicit Snapshot(MachineState S) : S(std::move(S)) {}
    /// Clones the state but not the fingerprint cache: the clone is
    /// only made on the way to a mutation.
    Snapshot(const Snapshot &O) : S(O.S) {}
    Snapshot &operator=(const Snapshot &) = delete;

    MachineState S;
    mutable std::atomic<uint64_t> Fp{0};
    mutable std::atomic<uint64_t> Refs{0};
  };
  std::shared_ptr<Snapshot> Snap;
};

inline uint64_t CowMachine::snapshotBytes() const {
  // Estimated heap footprint of one snapshot, for shared-representation
  // memory accounting (a snapshot shared by many configs is counted
  // once, keyed by snapshotKey()).
  auto ExecBytes = [](const ExecFrame &F) {
    return (F.Operands.capacity() + F.Params.capacity()) * sizeof(Value);
  };
  const MachineState &S = Snap->S;
  uint64_t B = sizeof(Snapshot);
  B += S.Frames.capacity() * sizeof(StateFrame);
  for (const StateFrame &F : S.Frames) {
    B += F.Inherit.capacity() * sizeof(int32_t);
    B += F.SavedCont.capacity() * sizeof(ExecFrame);
    for (const ExecFrame &E : F.SavedCont)
      B += ExecBytes(E);
  }
  B += S.Exec.capacity() * sizeof(ExecFrame);
  for (const ExecFrame &E : S.Exec)
    B += ExecBytes(E);
  B += S.Vars.capacity() * sizeof(Value);
  B += S.Queue.capacity() * sizeof(std::pair<int32_t, Value>);
  return B;
}

/// What a send does when the receiving queue is at Config::MaxQueue.
enum class OverflowPolicy : uint8_t {
  /// Raise ErrorKind::QueueOverflow (the verification default: prove
  /// the program respects the bound).
  Error,
  /// Discard the new event and count it in Config::OverflowDropped
  /// (lossy degradation; the drop is traced as QueueOverflow).
  DropNewest,
  /// Back-pressure: Host::addEvent blocks the producing thread until
  /// space frees up or the target dies. Only the host boundary can
  /// block — machine-to-machine sends under this policy behave like
  /// Error (a machine cannot wait mid-slice; see DESIGN.md).
  Block,
};

/// A global configuration M plus the error flag of Figure 6.
struct Config {
  /// Machine id == index. Each entry is a copy-on-write handle: copying
  /// a Config shares every snapshot; mutate through
  /// `Machines[Id].mut()` (or the mutableMachine helper) only.
  std::vector<CowMachine> Machines;

  /// The error flag of Figure 6. Plain field so Config stays trivially
  /// copyable state, but cross-thread access (reactor workers polling
  /// while another raises) goes through errorKind()/storeErrorKind()
  /// below, which wrap it in a std::atomic_ref. Single-threaded code may
  /// keep reading/writing it directly.
  ErrorKind Error = ErrorKind::None;
  std::string ErrorMessage;
  int32_t ErrorMachine = -1;

  /// Per-machine queue capacity; 0 = unbounded (the semantics of the
  /// paper). Constant over a run — set before execution starts — so it
  /// is not part of the serialized state.
  uint32_t MaxQueue = 0;
  OverflowPolicy Overflow = OverflowPolicy::Error;
  /// Events discarded by OverflowPolicy::DropNewest. Diagnostic only:
  /// excluded from serialization/equality, exported as a host metric.
  uint64_t OverflowDropped = 0;

  /// Error flag accessors, safe under the reactor host's concurrency:
  /// the release store in storeErrorKind pairs with the acquire load
  /// here, so a reader that observes the flag also observes
  /// ErrorMessage/ErrorMachine (written before the store, serialized by
  /// Executor's error mutex when one is installed).
  ErrorKind errorKind() const {
    return std::atomic_ref<ErrorKind>(const_cast<ErrorKind &>(Error))
        .load(std::memory_order_acquire);
  }
  void storeErrorKind(ErrorKind Kind) {
    std::atomic_ref<ErrorKind>(Error).store(Kind,
                                            std::memory_order_release);
  }
  /// Atomic increment for OverflowDropped (DropNewest shedding can
  /// happen on several reactor workers at once).
  void countOverflowDrop() {
    std::atomic_ref<uint64_t>(OverflowDropped)
        .fetch_add(1, std::memory_order_relaxed);
  }

  bool hasError() const { return errorKind() != ErrorKind::None; }

  /// True when the id denotes a live machine.
  bool isLive(int32_t Id) const {
    return Id >= 0 && Id < static_cast<int32_t>(Machines.size()) &&
           Machines[Id]->Alive;
  }

  /// Read-only view of machine \p Id.
  const MachineState &machine(int32_t Id) const { return *Machines[Id]; }
  /// The "about to mutate machine Id" hook: unshares the snapshot and
  /// invalidates its cached fingerprint.
  MachineState &mutableMachine(int32_t Id) { return Machines[Id].mut(); }
};

} // namespace p

#endif // P_RUNTIME_CONFIG_H
