//===- runtime/Config.h - Machine and global configurations ----------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global and per-machine configurations of the operational semantics
/// (Section 3.1). A machine configuration is the paper's (σ, s, stmt, q):
///
///   σ    — Frames: a call stack of (state, inherited-handler map) pairs;
///   s    — Vars plus the special Msg/Arg registers;
///   stmt — Exec: a stack of resumable bytecode frames, together with the
///          pending raise (the dynamic `raise` of Figure 5) and the
///          pending transfer (the inserted Exit(m,n); continuations);
///   q    — Queue: the FIFO input buffer with ⊎-unique entries.
///
/// Everything is a plain value: copying a Config snapshots the whole
/// system, which is exactly what the model checker needs.
///
//===----------------------------------------------------------------------===//

#ifndef P_RUNTIME_CONFIG_H
#define P_RUNTIME_CONFIG_H

#include "runtime/Errors.h"
#include "runtime/Value.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace p {

/// What kind of body a bytecode frame is executing.
enum class FrameKind : uint8_t {
  Entry,  ///< A state's entry statement.
  Exit,   ///< A state's exit statement.
  Action, ///< An action body.
  Model,  ///< A foreign function's model body.
};

/// One resumable bytecode activation.
struct ExecFrame {
  int32_t Body = -1;
  int32_t PC = 0;
  FrameKind Kind = FrameKind::Entry;
  std::vector<Value> Operands;
  std::vector<Value> Params; ///< Model frames: the call arguments.
  Value Result;              ///< Model frames: the `result` register.

  bool operator==(const ExecFrame &O) const = default;
};

/// Inherited-handler map entries (the `a` component of the semantics):
/// InheritNone is ⊥ ("no handler"), InheritDeferred is ⊤ ("deferred"),
/// values >= 0 are action ids.
inline constexpr int32_t InheritNone = -2;
inline constexpr int32_t InheritDeferred = -1;

/// One (state, inherited map) pair on the machine's call stack, plus the
/// saved continuation when the frame was pushed by a `call S;` statement.
struct StateFrame {
  int32_t State = -1;
  std::vector<int32_t> Inherit;     ///< Indexed by event id.
  std::vector<ExecFrame> SavedCont; ///< Resumed when this frame returns.

  bool operator==(const StateFrame &O) const = default;
};

/// A deferred state change that must wait for the exit statement to run
/// (the `Exit(m,n); ...` insertions of Figure 5).
enum class TransferKind : uint8_t {
  None,
  Step,      ///< Replace the top state with Target and run its entry.
  PopRaise,  ///< POP1: pop the frame, keep propagating the raised event.
  PopReturn, ///< POP2: pop the frame, resume its saved continuation.
};

/// The machine configuration (σ, s, stmt, q).
struct MachineState {
  int32_t MachineIndex = -1;
  bool Alive = false;
  /// Fault model: the machine was crashed (by an explored crash fault
  /// or Host::crashMachine) rather than deleted by its own `delete`.
  /// Crashed implies !Alive; unlike deletion, sends to a crashed
  /// machine are silently dropped instead of erroring, and the host can
  /// restart it. Always false when no fault layer is active.
  bool Crashed = false;

  std::vector<StateFrame> Frames; ///< σ; back() is the top of the stack.
  std::vector<ExecFrame> Exec;    ///< Remaining statement; back() runs.
  std::vector<Value> Vars;
  Value Msg; ///< Last raised/dequeued event (an Event value or ⊥).
  Value Arg; ///< Its payload.

  /// The pending dynamic raise of Figure 5 (raise-bar).
  bool HasRaise = false;
  int32_t RaiseEvent = -1;
  Value RaiseArg;

  /// Pending transfer applied once Exec drains (after the exit body).
  TransferKind Transfer = TransferKind::None;
  int32_t TransferTarget = -1;

  /// The FIFO input buffer q; entries are unique under ⊎.
  std::vector<std::pair<int32_t, Value>> Queue;

  /// Set by the model checker to resume past a Nondet choice point.
  std::optional<bool> InjectedChoice;

  /// Set by the model checker to resume past a foreign-call fault point
  /// (Executor::Options::ForeignFaultPoints): true fails the call (it
  /// returns ⊥), false executes it normally. Unset in every
  /// configuration explored without fault injection.
  std::optional<bool> InjectedForeignFail;

  bool operator==(const MachineState &O) const = default;
};

/// What a send does when the receiving queue is at Config::MaxQueue.
enum class OverflowPolicy : uint8_t {
  /// Raise ErrorKind::QueueOverflow (the verification default: prove
  /// the program respects the bound).
  Error,
  /// Discard the new event and count it in Config::OverflowDropped
  /// (lossy degradation; the drop is traced as QueueOverflow).
  DropNewest,
  /// Back-pressure: Host::addEvent blocks the producing thread until
  /// space frees up or the target dies. Only the host boundary can
  /// block — machine-to-machine sends under this policy behave like
  /// Error (a machine cannot wait mid-slice; see DESIGN.md).
  Block,
};

/// A global configuration M plus the error flag of Figure 6.
struct Config {
  std::vector<MachineState> Machines; ///< Machine id == index.

  ErrorKind Error = ErrorKind::None;
  std::string ErrorMessage;
  int32_t ErrorMachine = -1;

  /// Per-machine queue capacity; 0 = unbounded (the semantics of the
  /// paper). Constant over a run — set before execution starts — so it
  /// is not part of the serialized state.
  uint32_t MaxQueue = 0;
  OverflowPolicy Overflow = OverflowPolicy::Error;
  /// Events discarded by OverflowPolicy::DropNewest. Diagnostic only:
  /// excluded from serialization/equality, exported as a host metric.
  uint64_t OverflowDropped = 0;

  bool hasError() const { return Error != ErrorKind::None; }

  /// True when the id denotes a live machine.
  bool isLive(int32_t Id) const {
    return Id >= 0 && Id < static_cast<int32_t>(Machines.size()) &&
           Machines[Id].Alive;
  }
};

} // namespace p

#endif // P_RUNTIME_CONFIG_H
