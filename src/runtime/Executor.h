//===- runtime/Executor.h - Small-step interpreter for P -------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes the operational semantics of Figures 4–6 over a Config. One
/// `step()` call runs a single machine up to its next *scheduling point*
/// — a `send` or a `new` (Section 5's atomicity reduction: private
/// operations commute, receives are right movers, so context switches
/// are only needed after communication). The model checker and the
/// runtime host both drive executions exclusively through this class.
///
/// Nondeterministic `*` expressions either consult a choice provider
/// (runtime mode) or surface as ChoicePoint results the caller resolves
/// by setting MachineState::InjectedChoice and re-stepping (checker
/// mode).
///
//===----------------------------------------------------------------------===//

#ifndef P_RUNTIME_EXECUTOR_H
#define P_RUNTIME_EXECUTOR_H

#include "pir/Program.h"
#include "runtime/Config.h"

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace p {

namespace obs {
class TraceSink;
} // namespace obs

/// Signature of a native foreign-function implementation. `Self` is the
/// id of the calling machine.
using ForeignFn =
    std::function<Value(Config &Cfg, int32_t Self,
                        const std::vector<Value> &Args)>;

/// Interprets a CompiledProgram.
class Executor {
public:
  struct Options {
    /// Execute foreign functions' model bodies instead of native
    /// implementations (the verification configuration).
    bool UseModelBodies = false;
    /// Error on calls to foreign functions with neither a model body
    /// nor a registered native implementation (otherwise they return ⊥).
    bool StrictForeign = false;
    /// Maximum micro-steps per step() slice before the divergence error
    /// fires (the paper's first liveness property: a machine must not
    /// run forever without getting disabled).
    uint64_t MaxStepsPerSlice = 1000000;
    /// Fault exploration: stop at every foreign call (StepOutcome::
    /// ForeignCall) so the caller can decide whether it fails, via
    /// MachineState::InjectedForeignFail. Off everywhere except checker
    /// runs with FaultSpec::FailForeign enabled.
    bool ForeignFaultPoints = false;
  };

  /// How a step() slice ended.
  enum class StepOutcome : uint8_t {
    SchedulingPoint, ///< Executed a send or new; context switch here.
    ChoicePoint,     ///< Stopped at `*`; resolve via InjectedChoice.
    Blocked,         ///< Needs an event; none eligible in the queue.
    Halted,          ///< The machine executed `delete`.
    Error,           ///< Config entered the error state (see Cfg.Error).
    ForeignCall,     ///< Stopped before a foreign call (fault points
                     ///< on); resolve via InjectedForeignFail.
  };

  struct StepResult {
    StepOutcome Outcome;
    /// For SchedulingPoint: the send target or created machine id.
    int32_t Other = -1;
    /// True when the scheduling point was a `new` (Other is the child).
    bool Created = false;
  };

  explicit Executor(const CompiledProgram &Prog) : Prog(Prog) {}
  Executor(const CompiledProgram &Prog, Options Opts)
      : Prog(Prog), Opts(Opts) {}

  /// Executors are copyable: a copy shares the (immutable) compiled
  /// program and duplicates options, foreign-function registrations,
  /// and observers. The parallel checker hands each worker thread its
  /// own copy so observer callbacks stay thread-local. The const
  /// methods below (step, isEnabled, describeMachine, ...) keep all
  /// mutable state in the caller's Config, so a single const Executor
  /// is also safe to share across threads as long as each thread steps
  /// its own Config and the installed observers are thread-safe.
  Executor(const Executor &) = default;

  const CompiledProgram &program() const { return Prog; }
  const Options &options() const { return Opts; }

  /// Registers a native implementation for Machine::Fun.
  void registerForeign(const std::string &Machine, const std::string &Fun,
                       ForeignFn Fn);

  /// Installs the source of `*` choices for runtime execution.
  void setChoiceProvider(std::function<bool()> Provider) {
    ChoiceProvider = std::move(Provider);
  }

  /// Toggles Options::ForeignFaultPoints after construction; the
  /// parallel checker sets it on its per-worker copies when foreign
  /// failure is part of the explored fault model.
  void setForeignFaultPoints(bool Enable) {
    Opts.ForeignFaultPoints = Enable;
  }

  /// Observes every DEQUEUE (machine id, event id); used by the
  /// liveness checker to tell "pending forever" from "repeatedly
  /// consumed and re-sent". Registration is additive: every registered
  /// observer fires, in registration order, so tracing composes with
  /// the checkers' uses.
  using DequeueObserverFn = std::function<void(int32_t, int32_t)>;
  void addDequeueObserver(DequeueObserverFn Observer) {
    DequeueObservers.push_back(std::move(Observer));
  }
  /// Additive alias of addDequeueObserver, kept for existing callers.
  void setDequeueObserver(DequeueObserverFn Observer) {
    addDequeueObserver(std::move(Observer));
  }

  /// Observes every dispatch decision: (machine type, state, event,
  /// resolution). Resolution is the TransitionKind that fired, with
  /// TransitionKind::None meaning POP1 (the event propagated to the
  /// caller). Drives coverage reporting. Additive, like
  /// addDequeueObserver.
  using DispatchObserverFn =
      std::function<void(int32_t MachineType, int32_t State, int32_t Event,
                         TransitionKind Kind)>;
  void addDispatchObserver(DispatchObserverFn Observer) {
    DispatchObservers.push_back(std::move(Observer));
  }
  /// Additive alias of addDispatchObserver, kept for existing callers.
  void setDispatchObserver(DispatchObserverFn Observer) {
    addDispatchObserver(std::move(Observer));
  }

  /// Reroutes `send` instructions executed inside step() (the reactor
  /// host's cross-machine path). Called with (Cfg, From, To, Event,
  /// Payload) before the executor touches the target machine's state,
  /// so a hook that routes every send through per-machine mailboxes
  /// keeps workers from reading or writing machines they do not own.
  /// Return true when the hook delivered (or deliberately dropped) the
  /// event — the send still completes as a scheduling point; return
  /// false to fall through to the default in-place enqueue (serial
  /// mode, or a hook that opts out for this target).
  using SendHookFn = std::function<bool(Config &, int32_t From, int32_t To,
                                        int32_t Event, const Value &Arg)>;
  void setSendHook(SendHookFn Hook) { SendHook = std::move(Hook); }

  /// Called after createMachine appended the new machine (under the
  /// structural mutex when one is installed): the reactor uses it to
  /// set up the machine's mailbox/ownership slot before the id becomes
  /// visible to other threads.
  using CreateHookFn = std::function<void(Config &, int32_t Id)>;
  void setCreateHook(CreateHookFn Hook) { CreateHook = std::move(Hook); }

  /// Serializes raiseError across reactor workers. When set, the first
  /// error wins — later raiseError calls on an already-errored Config
  /// are dropped — and the ErrorKind flag is published with a release
  /// store after the message fields. nullptr (default) restores plain
  /// single-threaded writes.
  void setErrorMutex(std::mutex *Mu) { ErrorMu = Mu; }

  /// Serializes createMachine's push_back on Config::Machines across
  /// threads. When set, createMachine additionally refuses to grow the
  /// vector past its reserved capacity (raising
  /// ErrorKind::ResourceExhausted) because reallocation would move the
  /// handle array under lock-free readers.
  void setStructuralMutex(std::mutex *Mu) { StructuralMu = Mu; }

  /// Raises a semantic error from host-side code that detects it
  /// outside step() (e.g. the reactor classifying a send to a deleted
  /// machine at the mailbox boundary). Honors the error mutex.
  void reportError(Config &Cfg, int32_t Id, ErrorKind Kind,
                   std::string Message) const {
    raiseError(Cfg, Id, Kind, std::move(Message));
  }

  /// Attaches a structured-event trace sink (see obs/Trace.h): send,
  /// dequeue, raise, new, state entry/exit, halt, and error events are
  /// recorded with timestamps as they execute. The sink must be owned
  /// by the thread stepping through this executor (sinks are
  /// single-writer); pass nullptr to detach. Copying an Executor
  /// copies the pointer — the parallel checker overrides it with a
  /// per-worker sink.
  void setTraceSink(obs::TraceSink *Sink) { Trace = Sink; }
  obs::TraceSink *traceSink() const { return Trace; }

  /// Creates an instance of machine \p MachineIndex (rule NEW); returns
  /// its id. \p Inits lists (var index, value) pairs.
  int32_t createMachine(Config &Cfg, int32_t MachineIndex,
                        const std::vector<std::pair<int32_t, Value>> &Inits =
                            {}) const;

  /// Creates the initial configuration: one instance of the program's
  /// main machine (the paper's initialization statement).
  Config makeInitialConfig() const;

  /// Enqueues an external event (rule SEND's ⊎ append); used by the
  /// host's SMAddEvent. Returns false and sets the error state when the
  /// target is invalid. Fault-model refinements: sends to a *crashed*
  /// machine are silently dropped (returns true), and a bounded queue
  /// (Config::MaxQueue) applies its overflow policy here.
  bool enqueueEvent(Config &Cfg, int32_t Target, int32_t Event,
                    Value Arg = Value::null()) const;

  /// Fault model: kills machine \p Id in place (MachineState::Crashed).
  /// Its queue and execution state are discarded; subsequent sends to
  /// it vanish silently. Returns false for ids that are not live.
  bool crashMachine(Config &Cfg, int32_t Id) const;

  /// Fault model: re-initializes a *crashed* machine in place — fresh
  /// variables (with \p Inits applied), initial state, entry statement
  /// pending — modelling a process restart under the same id. Returns
  /// false unless the machine is currently crashed.
  bool restartMachine(Config &Cfg, int32_t Id,
                      const std::vector<std::pair<int32_t, Value>> &Inits =
                          {}) const;

  /// Runs machine \p Id until the next scheduling point (see file
  /// comment).
  StepResult step(Config &Cfg, int32_t Id) const;

  /// True when machine \p Id can take a step (the en(m) predicate of
  /// Section 3.2): it is mid-execution, has a pending raise/transfer, or
  /// an eligible (non-deferred) event sits in its queue.
  bool isEnabled(const Config &Cfg, int32_t Id) const;

  /// Index of the first queue entry not in the effective deferred set,
  /// or -1 (the DEQUEUE rule's scan). Exposed for tests and liveness.
  int findEligibleEvent(const Config &Cfg, const MachineState &M) const;

  /// Renders a one-line description of machine \p Id's control state,
  /// e.g. "Elevator#1 @ Opening [queue: CloseDoor]"; used in traces.
  std::string describeMachine(const Config &Cfg, int32_t Id) const;

private:
  struct InstrResult {
    enum Kind : uint8_t {
      Continue,
      SchedulingPoint,
      ChoicePoint,
      Halted,
      Error,
      ForeignCall
    } Kind = Continue;
    int32_t Other = -1;
    bool Created = false;
  };

  InstrResult execInstr(Config &Cfg, int32_t Id) const;
  void dispatchRaise(Config &Cfg, int32_t Id) const;
  void applyTransfer(Config &Cfg, int32_t Id) const;
  void pushBodyFrame(MachineState &M, int32_t Body, FrameKind Kind) const;
  std::vector<int32_t> computeCallInherit(const MachineState &M) const;
  void raiseError(Config &Cfg, int32_t Id, ErrorKind Kind,
                  std::string Message) const;

  const CompiledProgram &Prog;
  Options Opts;
  std::function<bool()> ChoiceProvider;
  std::vector<DequeueObserverFn> DequeueObservers;
  std::vector<DispatchObserverFn> DispatchObservers;
  std::map<std::pair<std::string, std::string>, ForeignFn> ForeignFns;
  obs::TraceSink *Trace = nullptr;
  SendHookFn SendHook;
  CreateHookFn CreateHook;
  std::mutex *ErrorMu = nullptr;
  std::mutex *StructuralMu = nullptr;
};

} // namespace p

#endif // P_RUNTIME_EXECUTOR_H
