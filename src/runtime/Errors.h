//===- runtime/Errors.h - Error transitions of the semantics ---------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The error configurations of Figure 6, plus a small number of
/// implementation-defined error kinds for situations the formal rules
/// leave the machine stuck (documented in DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef P_RUNTIME_ERRORS_H
#define P_RUNTIME_ERRORS_H

namespace p {

/// Why a configuration entered the error state.
enum class ErrorKind {
  None,
  /// Figure 6, ASSERT-FAIL: an assert condition evaluated to false.
  AssertFailed,
  /// Figure 6, SEND-FAIL1: send target evaluated to ⊥.
  SendToNull,
  /// Figure 6, SEND-FAIL2: send to an uninitialized or deleted machine.
  SendToDeleted,
  /// Figure 6, POP-FAIL reached by popping an unhandled event off the
  /// bottom of the call stack: the responsiveness violation the P
  /// verifier exists to find.
  UnhandledEvent,
  /// Figure 6, POP-FAIL reached by `return` from the bottom frame.
  PopFromEmptyStack,
  /// Extension: a branch condition evaluated to ⊥ (the IF rules of
  /// Figure 4 would leave the machine stuck forever).
  UndefinedBranch,
  /// Extension: `raise`/`send` with a ⊥ or non-event event value.
  UndefinedEvent,
  /// Extension: a machine executed an unbounded number of private steps
  /// without reaching a scheduling point — a violation of the paper's
  /// first liveness property (Section 3.2).
  Divergence,
  /// Extension: a foreign function without a model body or registered
  /// native implementation was called under strict-foreign mode.
  UnknownForeign,
  /// Liveness (Section 3.2): an event was enqueued but can be deferred
  /// forever under fair scheduling (reported by the liveness checker).
  LivenessViolation,
  /// Extension: a send overflowed a bounded queue (Config::MaxQueue)
  /// under OverflowPolicy::Error — the graceful alternative to
  /// unbounded memory growth under overload (see DESIGN.md "Fault
  /// model").
  QueueOverflow,
  /// Extension: `new` failed because the reactor host's pre-reserved
  /// machine table is full (ReactorOptions::MaxMachines). The table
  /// cannot grow while worker threads read it lock-free, so exhaustion
  /// is fail-stop rather than a reallocation race.
  ResourceExhausted,
};

/// Short identifier, e.g. "unhandled-event".
inline const char *errorKindName(ErrorKind Kind) {
  switch (Kind) {
  case ErrorKind::None:
    return "none";
  case ErrorKind::AssertFailed:
    return "assert-failed";
  case ErrorKind::SendToNull:
    return "send-to-null";
  case ErrorKind::SendToDeleted:
    return "send-to-deleted";
  case ErrorKind::UnhandledEvent:
    return "unhandled-event";
  case ErrorKind::PopFromEmptyStack:
    return "pop-from-empty-stack";
  case ErrorKind::UndefinedBranch:
    return "undefined-branch";
  case ErrorKind::UndefinedEvent:
    return "undefined-event";
  case ErrorKind::Divergence:
    return "divergence";
  case ErrorKind::UnknownForeign:
    return "unknown-foreign";
  case ErrorKind::LivenessViolation:
    return "liveness-violation";
  case ErrorKind::QueueOverflow:
    return "queue-overflow";
  case ErrorKind::ResourceExhausted:
    return "resource-exhausted";
  }
  return "unknown";
}

} // namespace p

#endif // P_RUNTIME_ERRORS_H
