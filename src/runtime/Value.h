//===- runtime/Value.h - Runtime values of P -------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// P values: ⊥ (the undefined value), booleans, integers, first-class
/// event names and machine identifiers. ⊥ inhabits every type and
/// propagates through all operators (Section 3, "Expressions and
/// evaluation").
///
//===----------------------------------------------------------------------===//

#ifndef P_RUNTIME_VALUE_H
#define P_RUNTIME_VALUE_H

#include <cstdint>
#include <string>

namespace p {

/// Runtime tag of a Value.
enum class ValueKind : uint8_t {
  Null,    ///< ⊥ — undefined.
  Bool,
  Int,
  Event,   ///< Data is an event id.
  Machine, ///< Data is a machine id.
};

/// A P runtime value: a tag plus 64 bits of payload.
struct Value {
  ValueKind Kind = ValueKind::Null;
  int64_t Data = 0;

  static Value null() { return {}; }
  static Value boolean(bool B) { return {ValueKind::Bool, B ? 1 : 0}; }
  static Value integer(int64_t I) { return {ValueKind::Int, I}; }
  static Value event(int32_t E) { return {ValueKind::Event, E}; }
  static Value machine(int32_t Id) { return {ValueKind::Machine, Id}; }

  bool isNull() const { return Kind == ValueKind::Null; }
  bool isBool() const { return Kind == ValueKind::Bool; }
  bool isInt() const { return Kind == ValueKind::Int; }
  bool isEvent() const { return Kind == ValueKind::Event; }
  bool isMachine() const { return Kind == ValueKind::Machine; }

  bool asBool() const { return Data != 0; }
  int64_t asInt() const { return Data; }
  int32_t asEvent() const { return static_cast<int32_t>(Data); }
  int32_t asMachine() const { return static_cast<int32_t>(Data); }

  /// Exact structural equality — this is the equality the queue's ⊎
  /// dedup operator uses, *not* the P `==` operator (which is strict
  /// in ⊥).
  bool operator==(const Value &O) const = default;

  /// Debug rendering, e.g. "int(3)", "mid(2)", "null".
  std::string str() const {
    switch (Kind) {
    case ValueKind::Null:
      return "null";
    case ValueKind::Bool:
      return Data ? "true" : "false";
    case ValueKind::Int:
      return std::to_string(Data);
    case ValueKind::Event:
      return "event(" + std::to_string(Data) + ")";
    case ValueKind::Machine:
      return "mid(" + std::to_string(Data) + ")";
    }
    return "<value>";
  }
};

} // namespace p

#endif // P_RUNTIME_VALUE_H
