//===- runtime/Executor.cpp --------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Rule-to-code map (Figures 4–6):
//   ASSIGN/SEQ/IF/WHILE  — straight-line bytecode in execInstr
//   NEW                  — Opcode::New + createMachine
//   SEND (+ ⊎)           — Opcode::Send + enqueueEvent
//   DELETE               — Opcode::Delete
//   ASSERT-PASS/FAIL     — Opcode::Assert
//   RAISE                — Opcode::Raise sets the pending raise; exit
//                          insertion happens in dispatchRaise
//   LEAVE                — Opcode::Leave clears the exec stack
//   RETURN + POP2        — Opcode::Return schedules TransferKind::PopReturn
//   DEQUEUE              — the dequeue branch of step()
//   STEP/CALL/ACTION/POP1 — dispatchRaise + applyTransfer
//   SEND-FAIL1/2, POP-FAIL — raiseError sites
//
//===----------------------------------------------------------------------===//

#include "runtime/Executor.h"

#include "ast/AST.h"
#include "fault/Fault.h"
#include "obs/Trace.h"

#include <cassert>

using namespace p;
using obs::TraceKind;

void Executor::registerForeign(const std::string &Machine,
                               const std::string &Fun, ForeignFn Fn) {
  ForeignFns[{Machine, Fun}] = std::move(Fn);
}

void Executor::raiseError(Config &Cfg, int32_t Id, ErrorKind Kind,
                          std::string Message) const {
  if (ErrorMu) {
    // Reactor mode: first error wins, and the message fields are
    // published before the flag (storeErrorKind is a release store that
    // hasError()'s acquire load pairs with).
    std::lock_guard<std::mutex> Lock(*ErrorMu);
    if (Cfg.hasError())
      return;
    Cfg.ErrorMessage = std::move(Message);
    Cfg.ErrorMachine = Id;
    Cfg.storeErrorKind(Kind);
  } else {
    Cfg.ErrorMessage = std::move(Message);
    Cfg.ErrorMachine = Id;
    Cfg.storeErrorKind(Kind);
  }
  if (Trace)
    Trace->record(TraceKind::Error, Id, static_cast<int32_t>(Kind));
}

void Executor::pushBodyFrame(MachineState &M, int32_t Body,
                             FrameKind Kind) const {
  assert(Body >= 0 && "pushing a missing body");
  ExecFrame F;
  F.Body = Body;
  F.Kind = Kind;
  M.Exec.push_back(std::move(F));
}

int32_t Executor::createMachine(
    Config &Cfg, int32_t MachineIndex,
    const std::vector<std::pair<int32_t, Value>> &Inits) const {
  assert(MachineIndex >= 0 &&
         MachineIndex < static_cast<int32_t>(Prog.Machines.size()));
  const MachineInfo &Info = Prog.Machines[MachineIndex];
  assert(!Info.States.empty() && "machine with no states");

  MachineState M;
  M.MachineIndex = MachineIndex;
  M.Alive = true;
  M.Vars.assign(Info.Vars.size(), Value::null());
  for (const auto &[VarIndex, V] : Inits) {
    assert(VarIndex >= 0 &&
           VarIndex < static_cast<int32_t>(M.Vars.size()));
    M.Vars[VarIndex] = V;
  }

  StateFrame Frame;
  Frame.State = 0; // Init(m) is the first declared state.
  Frame.Inherit.assign(Prog.Events.size(), InheritNone);
  M.Frames.push_back(std::move(Frame));

  if (Info.States[0].EntryBody >= 0)
    pushBodyFrame(M, Info.States[0].EntryBody, FrameKind::Entry);

  int32_t Id;
  {
    // Reactor mode: the push_back must not move the handle array under
    // lock-free readers, so growth past the pre-reserved capacity is a
    // fail-stop error instead of a reallocation.
    std::unique_lock<std::mutex> Lock;
    if (StructuralMu) {
      Lock = std::unique_lock<std::mutex>(*StructuralMu);
      if (Cfg.Machines.size() == Cfg.Machines.capacity()) {
        Lock.unlock();
        raiseError(Cfg, static_cast<int32_t>(Cfg.Machines.size()),
                   ErrorKind::ResourceExhausted,
                   "machine table full (" +
                       std::to_string(Cfg.Machines.capacity()) +
                       " reserved); raise ReactorOptions::MaxMachines");
        return -1;
      }
    }
    Cfg.Machines.push_back(CowMachine(std::move(M)));
    Id = static_cast<int32_t>(Cfg.Machines.size()) - 1;
    if (CreateHook)
      CreateHook(Cfg, Id);
  }
  if (Trace) {
    Trace->record(TraceKind::New, Id, MachineIndex);
    Trace->record(TraceKind::StateEnter, Id, 0, MachineIndex);
  }
  return Id;
}

Config Executor::makeInitialConfig() const {
  Config Cfg;
  assert(Prog.MainMachine >= 0 &&
         "program has no main machine; create one explicitly");
  createMachine(Cfg, Prog.MainMachine);
  return Cfg;
}

bool Executor::enqueueEvent(Config &Cfg, int32_t Target, int32_t Event,
                            Value Arg) const {
  if (Target < 0 || Target >= static_cast<int32_t>(Cfg.Machines.size())) {
    raiseError(Cfg, Target, ErrorKind::SendToNull,
               "send to invalid machine id " + std::to_string(Target));
    return false;
  }
  const MachineState &M = *Cfg.Machines[Target];
  if (M.Crashed)
    // Fault model: a crashed process neither receives nor errors the
    // sender — the message vanishes on the wire (unlike SEND-FAIL2,
    // which models a program bug, not an environment fault).
    return true;
  if (!M.Alive) {
    raiseError(Cfg, Target, ErrorKind::SendToDeleted,
               "send to deleted machine id " + std::to_string(Target));
    return false;
  }
  // The ⊎ append: an identical (event, payload) pair already queued is
  // not duplicated (guards against event flooding; Section 3.1). Read
  // through the snapshot — the COW clone happens only on the actual
  // append below.
  for (const auto &[E, V] : M.Queue)
    if (E == Event && V == Arg)
      return true;
  if (Cfg.MaxQueue != 0 && M.Queue.size() >= Cfg.MaxQueue) {
    if (Cfg.Overflow == OverflowPolicy::DropNewest) {
      Cfg.countOverflowDrop();
      if (Trace)
        Trace->record(TraceKind::QueueOverflow, Target, Event,
                      static_cast<int32_t>(Cfg.Overflow));
      return true;
    }
    // Error, and Block at the machine-to-machine level (only the host
    // boundary can actually wait; see OverflowPolicy).
    raiseError(Cfg, Target, ErrorKind::QueueOverflow,
               "queue of machine id " + std::to_string(Target) +
                   " exceeded MaxQueue=" + std::to_string(Cfg.MaxQueue));
    return false;
  }
  Cfg.Machines[Target].mut().Queue.emplace_back(Event, Arg);
  return true;
}

bool Executor::crashMachine(Config &Cfg, int32_t Id) const {
  if (!Cfg.isLive(Id))
    return false;
  MachineState &M = Cfg.Machines[Id].mut();
  // Discard the whole machine configuration, like Opcode::Delete, but
  // remember that the death was a fault so sends keep dropping silently
  // and restartMachine can bring the id back.
  M.Alive = false;
  M.Crashed = true;
  M.Exec.clear();
  M.Frames.clear();
  M.Queue.clear();
  M.Vars.clear();
  M.HasRaise = false;
  M.Transfer = TransferKind::None;
  M.InjectedChoice.reset();
  M.InjectedForeignFail.reset();
  if (Trace)
    Trace->record(TraceKind::FaultInjected, Id,
                  static_cast<int32_t>(FaultKind::CrashMachine));
  return true;
}

bool Executor::restartMachine(
    Config &Cfg, int32_t Id,
    const std::vector<std::pair<int32_t, Value>> &Inits) const {
  if (Id < 0 || Id >= static_cast<int32_t>(Cfg.Machines.size()))
    return false;
  if (!Cfg.Machines[Id]->Crashed)
    return false;
  MachineState &M = Cfg.Machines[Id].mut();
  const MachineInfo &Info = Prog.Machines[M.MachineIndex];

  // Rebuild the machine configuration the way createMachine does, in
  // place: fresh variables, initial state, entry statement pending.
  M.Alive = true;
  M.Crashed = false;
  M.Vars.assign(Info.Vars.size(), Value::null());
  for (const auto &[VarIndex, V] : Inits) {
    assert(VarIndex >= 0 && VarIndex < static_cast<int32_t>(M.Vars.size()));
    M.Vars[VarIndex] = V;
  }
  M.Msg = Value::null();
  M.Arg = Value::null();

  StateFrame Frame;
  Frame.State = 0;
  Frame.Inherit.assign(Prog.Events.size(), InheritNone);
  M.Frames.push_back(std::move(Frame));
  if (Info.States[0].EntryBody >= 0)
    pushBodyFrame(M, Info.States[0].EntryBody, FrameKind::Entry);

  if (Trace) {
    Trace->record(TraceKind::FaultInjected, Id,
                  static_cast<int32_t>(FaultKind::RestartMachine));
    Trace->record(TraceKind::StateEnter, Id, 0, M.MachineIndex);
  }
  return true;
}

int Executor::findEligibleEvent(const Config &Cfg,
                                const MachineState &M) const {
  (void)Cfg;
  if (M.Frames.empty())
    return -1;
  const StateFrame &Top = M.Frames.back();
  const StateInfo &St =
      Prog.Machines[M.MachineIndex].States[Top.State];
  for (size_t I = 0; I != M.Queue.size(); ++I) {
    int32_t E = M.Queue[I].first;
    // t: events with a static transition or action here always dequeue.
    if (St.OnEvent[E].Kind != TransitionKind::None)
      return static_cast<int>(I);
    // d' = (inherited-deferred ∪ Deferred(m,n)) − t.
    bool Deferred =
        Top.Inherit[E] == InheritDeferred || St.Deferred.test(E);
    if (!Deferred)
      return static_cast<int>(I);
  }
  return -1;
}

bool Executor::isEnabled(const Config &Cfg, int32_t Id) const {
  if (!Cfg.isLive(Id))
    return false;
  const MachineState &M = *Cfg.Machines[Id];
  if (!M.Exec.empty() || M.HasRaise || M.Transfer != TransferKind::None)
    return true;
  return findEligibleEvent(Cfg, M) >= 0;
}

std::vector<int32_t>
Executor::computeCallInherit(const MachineState &M) const {
  // The a' map of the CALL rule: transitions null out the entry, static
  // actions bind it, static deferral marks ⊤, everything else inherits.
  const StateFrame &Top = M.Frames.back();
  const StateInfo &St = Prog.Machines[M.MachineIndex].States[Top.State];
  std::vector<int32_t> Result = Top.Inherit;
  for (size_t E = 0; E != Result.size(); ++E) {
    const Transition &T = St.OnEvent[E];
    switch (T.Kind) {
    case TransitionKind::Step:
    case TransitionKind::Call:
      Result[E] = InheritNone;
      break;
    case TransitionKind::Action:
      Result[E] = T.Target;
      break;
    case TransitionKind::None:
      if (St.Deferred.test(static_cast<int>(E)))
        Result[E] = InheritDeferred;
      break;
    }
  }
  return Result;
}

void Executor::applyTransfer(Config &Cfg, int32_t Id) const {
  MachineState &M = Cfg.Machines[Id].mut();
  const MachineInfo &Info = Prog.Machines[M.MachineIndex];
  TransferKind Kind = M.Transfer;
  int32_t Target = M.TransferTarget;
  M.Transfer = TransferKind::None;
  M.TransferTarget = -1;

  switch (Kind) {
  case TransferKind::None:
    assert(false && "applyTransfer with no pending transfer");
    return;
  case TransferKind::Step: {
    // STEP: replace the top state, keep the inherited map, run entry.
    assert(!M.Frames.empty());
    if (Trace) {
      Trace->record(TraceKind::StateExit, Id, M.Frames.back().State,
                    M.MachineIndex);
      Trace->record(TraceKind::StateEnter, Id, Target, M.MachineIndex);
    }
    M.Frames.back().State = Target;
    M.Frames.back().SavedCont.clear();
    if (Info.States[Target].EntryBody >= 0)
      pushBodyFrame(M, Info.States[Target].EntryBody, FrameKind::Entry);
    return;
  }
  case TransferKind::PopRaise: {
    // POP1: the event propagates to the caller; a continuation saved by
    // a `call S;` statement is aborted (the raise terminates it).
    assert(!M.Frames.empty());
    if (Trace)
      Trace->record(TraceKind::StateExit, Id, M.Frames.back().State,
                    M.MachineIndex);
    M.Frames.pop_back();
    if (M.Frames.empty()) {
      const std::string EventName =
          M.HasRaise ? Prog.Events[M.RaiseEvent].Name : "<none>";
      raiseError(Cfg, Id, ErrorKind::UnhandledEvent,
                 "machine " + Info.Name + " (id " + std::to_string(Id) +
                     ") cannot handle event '" + EventName + "'");
    }
    return;
  }
  case TransferKind::PopReturn: {
    // POP2: pop and resume the saved continuation, if any.
    assert(!M.Frames.empty());
    if (Trace)
      Trace->record(TraceKind::StateExit, Id, M.Frames.back().State,
                    M.MachineIndex);
    std::vector<ExecFrame> Cont = std::move(M.Frames.back().SavedCont);
    M.Frames.pop_back();
    M.HasRaise = false;
    if (M.Frames.empty()) {
      raiseError(Cfg, Id, ErrorKind::PopFromEmptyStack,
                 "machine " + Info.Name + " (id " + std::to_string(Id) +
                     ") returned from its bottom state");
      return;
    }
    if (!Cont.empty())
      M.Exec = std::move(Cont);
    return;
  }
  }
}

void Executor::dispatchRaise(Config &Cfg, int32_t Id) const {
  MachineState &M = Cfg.Machines[Id].mut();
  const MachineInfo &Info = Prog.Machines[M.MachineIndex];
  assert(M.HasRaise && M.Exec.empty() &&
         M.Transfer == TransferKind::None);

  if (M.Frames.empty()) {
    raiseError(Cfg, Id, ErrorKind::UnhandledEvent,
               "machine " + Info.Name + " (id " + std::to_string(Id) +
                   ") raised '" + Prog.Events[M.RaiseEvent].Name +
                   "' with an empty call stack");
    return;
  }

  StateFrame &Top = M.Frames.back();
  const StateInfo &St = Info.States[Top.State];
  const int32_t E = M.RaiseEvent;
  const Transition &T = St.OnEvent[E];

  if (!DispatchObservers.empty()) {
    // Inherited actions report as Action; everything unhandled as None.
    TransitionKind Kind = T.Kind;
    if (Kind == TransitionKind::None && Top.Inherit[E] >= 0)
      Kind = TransitionKind::Action;
    for (const DispatchObserverFn &Observer : DispatchObservers)
      Observer(M.MachineIndex, Top.State, E, Kind);
  }

  switch (T.Kind) {
  case TransitionKind::Step: {
    // The transition consumes the event now; the exit statement runs
    // first when present (DEQUEUE/RAISE insert Exit when stepping).
    M.HasRaise = false;
    M.Transfer = TransferKind::Step;
    M.TransferTarget = T.Target;
    if (St.ExitBody >= 0)
      pushBodyFrame(M, St.ExitBody, FrameKind::Exit);
    return;
  }
  case TransitionKind::Call: {
    // CALL: push (n', a'); no exit statement runs.
    std::vector<int32_t> Inherit = computeCallInherit(M);
    M.HasRaise = false;
    StateFrame Frame;
    Frame.State = T.Target;
    Frame.Inherit = std::move(Inherit);
    M.Frames.push_back(std::move(Frame));
    if (Trace)
      Trace->record(TraceKind::StateEnter, Id, T.Target, M.MachineIndex);
    if (Info.States[T.Target].EntryBody >= 0)
      pushBodyFrame(M, Info.States[T.Target].EntryBody, FrameKind::Entry);
    return;
  }
  case TransitionKind::Action: {
    // ACTION with a static binding (overrides any inherited one).
    M.HasRaise = false;
    int32_t Body = Info.ActionBodies[T.Target];
    if (Body >= 0)
      pushBodyFrame(M, Body, FrameKind::Action);
    return;
  }
  case TransitionKind::None:
    break;
  }

  int32_t Inherited = Top.Inherit[E];
  if (Inherited >= 0) {
    // ACTION with an inherited binding.
    M.HasRaise = false;
    int32_t Body = Info.ActionBodies[Inherited];
    if (Body >= 0)
      pushBodyFrame(M, Body, FrameKind::Action);
    return;
  }

  // POP1: nothing here handles the event (inherited entry is ⊥ or ⊤);
  // pop after running the exit statement, keeping the raise pending.
  M.Transfer = TransferKind::PopRaise;
  if (St.ExitBody >= 0)
    pushBodyFrame(M, St.ExitBody, FrameKind::Exit);
  return;
}

//===----------------------------------------------------------------------===//
// Instruction execution
//===----------------------------------------------------------------------===//

namespace {

Value evalUnary(UnaryOp Op, const Value &V) {
  if (V.isNull())
    return Value::null(); // ⊥ propagates through operators.
  switch (Op) {
  case UnaryOp::Not:
    return V.isBool() ? Value::boolean(!V.asBool()) : Value::null();
  case UnaryOp::Neg:
    return V.isInt() ? Value::integer(-V.asInt()) : Value::null();
  }
  return Value::null();
}

Value evalBinary(BinaryOp Op, const Value &L, const Value &R) {
  // All operators are strict in ⊥ (Section 3: "Binary and unary
  // operators evaluate to ⊥ if any of the operand expressions evaluate
  // to ⊥"), including equality.
  if (L.isNull() || R.isNull())
    return Value::null();
  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Sub:
  case BinaryOp::Mul:
  case BinaryOp::Div: {
    if (!L.isInt() || !R.isInt())
      return Value::null();
    int64_t A = L.asInt(), B = R.asInt();
    switch (Op) {
    case BinaryOp::Add:
      return Value::integer(A + B);
    case BinaryOp::Sub:
      return Value::integer(A - B);
    case BinaryOp::Mul:
      return Value::integer(A * B);
    case BinaryOp::Div:
      return B == 0 ? Value::null() : Value::integer(A / B);
    default:
      break;
    }
    return Value::null();
  }
  case BinaryOp::And:
  case BinaryOp::Or: {
    if (!L.isBool() || !R.isBool())
      return Value::null();
    bool A = L.asBool(), B = R.asBool();
    return Value::boolean(Op == BinaryOp::And ? (A && B) : (A || B));
  }
  case BinaryOp::Eq:
    return Value::boolean(L == R);
  case BinaryOp::Ne:
    return Value::boolean(!(L == R));
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge: {
    if (!L.isInt() || !R.isInt())
      return Value::null();
    int64_t A = L.asInt(), B = R.asInt();
    switch (Op) {
    case BinaryOp::Lt:
      return Value::boolean(A < B);
    case BinaryOp::Le:
      return Value::boolean(A <= B);
    case BinaryOp::Gt:
      return Value::boolean(A > B);
    case BinaryOp::Ge:
      return Value::boolean(A >= B);
    default:
      break;
    }
    return Value::null();
  }
  }
  return Value::null();
}

} // namespace

Executor::InstrResult Executor::execInstr(Config &Cfg, int32_t Id) const {
  // The COW clone for this slice: the first mut() on a shared snapshot
  // copies it; every later one on the same (now unique) snapshot is a
  // use_count check. References into the snapshot stay valid across
  // Cfg.Machines growth because snapshots live on the heap.
  MachineState &M = Cfg.Machines[Id].mut();
  const MachineInfo &Info = Prog.Machines[M.MachineIndex];
  ExecFrame &Frame = M.Exec.back();
  const Body &B = Info.Bodies[Frame.Body];

  InstrResult Res;
  auto fail = [&](ErrorKind Kind, std::string Message) {
    raiseError(Cfg, Id, Kind, std::move(Message));
    Res.Kind = InstrResult::Error;
    return Res;
  };

  assert(Frame.PC >= 0 && Frame.PC < static_cast<int32_t>(B.Code.size()) &&
         "PC out of range");
  const Instr I = B.Code[Frame.PC];
  const SourceLoc Loc = B.Locs[Frame.PC];
  auto &Stack = Frame.Operands;
  auto popValue = [&Stack]() {
    assert(!Stack.empty() && "operand stack underflow");
    Value V = Stack.back();
    Stack.pop_back();
    return V;
  };

  switch (I.Op) {
  case Opcode::PushNull:
    Stack.push_back(Value::null());
    break;
  case Opcode::PushBool:
    Stack.push_back(Value::boolean(I.A != 0));
    break;
  case Opcode::PushInt:
    Stack.push_back(Value::integer(I.A));
    break;
  case Opcode::PushEvent:
    Stack.push_back(Value::event(I.A));
    break;
  case Opcode::LoadVar:
    Stack.push_back(M.Vars[I.A]);
    break;
  case Opcode::StoreVar:
    M.Vars[I.A] = popValue();
    break;
  case Opcode::LoadThis:
    Stack.push_back(Value::machine(Id));
    break;
  case Opcode::LoadMsg:
    Stack.push_back(M.Msg);
    break;
  case Opcode::LoadArg:
    Stack.push_back(M.Arg);
    break;
  case Opcode::LoadParam:
    assert(Frame.Kind == FrameKind::Model && "LoadParam outside a model");
    Stack.push_back(Frame.Params[I.A]);
    break;
  case Opcode::StoreResult:
    assert(Frame.Kind == FrameKind::Model &&
           "StoreResult outside a model");
    Frame.Result = popValue();
    break;
  case Opcode::Nondet: {
    if (M.InjectedChoice) {
      Stack.push_back(Value::boolean(*M.InjectedChoice));
      M.InjectedChoice.reset();
      break;
    }
    if (ChoiceProvider) {
      Stack.push_back(Value::boolean(ChoiceProvider()));
      break;
    }
    // Leave PC at the Nondet so the caller can inject and re-step.
    Res.Kind = InstrResult::ChoicePoint;
    return Res;
  }
  case Opcode::UnOp:
    Stack.push_back(evalUnary(static_cast<UnaryOp>(I.A), popValue()));
    break;
  case Opcode::BinOp: {
    Value R = popValue();
    Value L = popValue();
    Stack.push_back(evalBinary(static_cast<BinaryOp>(I.A), L, R));
    break;
  }
  case Opcode::Pop:
    popValue();
    break;
  case Opcode::Jump:
    Frame.PC = I.A;
    return Res;
  case Opcode::JumpIfFalse: {
    Value C = popValue();
    if (!C.isBool())
      return fail(ErrorKind::UndefinedBranch,
                  "branch condition is undefined at " + Loc.str() +
                      " in " + B.Name);
    if (!C.asBool()) {
      Frame.PC = I.A;
      return Res;
    }
    break;
  }
  case Opcode::New: {
    const std::vector<int32_t> &Fields = Info.InitTables[I.B];
    std::vector<std::pair<int32_t, Value>> Inits(Fields.size());
    for (size_t K = Fields.size(); K-- > 0;)
      Inits[K] = {Fields[K], popValue()};
    int32_t Child = createMachine(Cfg, I.A, Inits);
    if (Child < 0) {
      // Machine table exhausted (reactor mode); the error config is
      // already raised.
      Res.Kind = InstrResult::Error;
      return Res;
    }
    // Frame stays valid: it lives in this machine's heap snapshot, which
    // createMachine's push_back on Cfg.Machines does not move.
    Frame.Operands.push_back(Value::machine(Child));
    ++Frame.PC;
    Res.Kind = InstrResult::SchedulingPoint;
    Res.Other = Child;
    Res.Created = true;
    return Res;
  }
  case Opcode::Send: {
    Value Payload = popValue();
    Value Event = popValue();
    Value Target = popValue();
    if (!Event.isEvent())
      return fail(ErrorKind::UndefinedEvent,
                  "send with an undefined event at " + Loc.str() + " in " +
                      B.Name);
    if (Target.isNull())
      return fail(ErrorKind::SendToNull,
                  "send target is ⊥ at " + Loc.str() + " in " + B.Name);
    if (!Target.isMachine())
      return fail(ErrorKind::SendToNull,
                  "send target is not a machine id at " + Loc.str() +
                      " in " + B.Name);
    int32_t To = Target.asMachine();
    // Reactor mode: the hook routes the send through the target's
    // mailbox (or enqueues self-sends owner-side) so this worker never
    // touches another machine's state — including the liveness checks
    // below, which would race with concurrent crash/create.
    if (SendHook && SendHook(Cfg, Id, To, Event.asEvent(), Payload)) {
      if (Trace)
        Trace->record(TraceKind::Send, Id, Event.asEvent(), To);
      ++Frame.PC;
      Res.Kind = InstrResult::SchedulingPoint;
      Res.Other = To;
      return Res;
    }
    // Fault model: a crashed process neither receives nor errors the
    // sender (unlike a deleted one — SEND-FAIL2 stays a program bug).
    // The message vanishes but the send still executed, so the slice
    // boundary is the same one a delivered send produces.
    if (To >= 0 && To < static_cast<int32_t>(Cfg.Machines.size()) &&
        Cfg.Machines[To]->Crashed) {
      if (Trace)
        Trace->record(TraceKind::Send, Id, Event.asEvent(), To);
      ++Frame.PC;
      Res.Kind = InstrResult::SchedulingPoint;
      Res.Other = To;
      return Res;
    }
    if (!Cfg.isLive(To))
      return fail(ErrorKind::SendToDeleted,
                  "send to deleted/uninitialized machine id " +
                      std::to_string(To) + " at " + Loc.str() + " in " +
                      B.Name);
    enqueueEvent(Cfg, To, Event.asEvent(), Payload);
    if (Trace)
      Trace->record(TraceKind::Send, Id, Event.asEvent(), To);
    ++Frame.PC;
    Res.Kind = InstrResult::SchedulingPoint;
    Res.Other = To;
    return Res;
  }
  case Opcode::Raise: {
    Value Payload = popValue();
    Value Event = popValue();
    if (!Event.isEvent())
      return fail(ErrorKind::UndefinedEvent,
                  "raise with an undefined event at " + Loc.str() + " in " +
                      B.Name);
    // RAISE: update msg/arg, abandon the remaining statement. Whether
    // the exit statement runs is decided at dispatch (Figure 5).
    M.Msg = Event;
    M.Arg = Payload;
    M.HasRaise = true;
    M.RaiseEvent = Event.asEvent();
    M.RaiseArg = Payload;
    M.Exec.clear();
    if (Trace)
      Trace->record(TraceKind::Raise, Id, M.RaiseEvent);
    return Res;
  }
  case Opcode::CallForeign: {
    const ForeignFunInfo &F = Info.Funs[I.A];
    if (Opts.ForeignFaultPoints) {
      if (!M.InjectedForeignFail) {
        // Leave PC at the call so the checker can decide whether it
        // fails (set InjectedForeignFail) and re-step.
        Res.Kind = InstrResult::ForeignCall;
        return Res;
      }
      const bool Fail = *M.InjectedForeignFail;
      M.InjectedForeignFail.reset();
      if (Fail) {
        // The explored failure: the call never runs; its arguments are
        // consumed and it yields ⊥, like a non-strict unknown foreign.
        for (int32_t K = 0; K != I.B; ++K)
          popValue();
        Stack.push_back(Value::null());
        if (Trace)
          Trace->record(TraceKind::FaultInjected, Id,
                        static_cast<int32_t>(FaultKind::FailForeign));
        break;
      }
    }
    std::vector<Value> Args(I.B);
    for (size_t K = Args.size(); K-- > 0;)
      Args[K] = popValue();
    if (Opts.UseModelBodies && F.ModelBody >= 0) {
      ++Frame.PC; // Resume after the call once the model frame pops.
      ExecFrame Model;
      Model.Body = F.ModelBody;
      Model.Kind = FrameKind::Model;
      Model.Params = std::move(Args);
      M.Exec.push_back(std::move(Model));
      return Res;
    }
    auto It = ForeignFns.find({Info.Name, F.Name});
    if (It != ForeignFns.end()) {
      Value Result = It->second(Cfg, Id, Args);
      // Re-establish mutable access: the foreign function received the
      // Config and may have copied it (sharing our snapshot again).
      MachineState &MM = Cfg.Machines[Id].mut();
      MM.Exec.back().Operands.push_back(Result);
      ++MM.Exec.back().PC;
      return Res;
    }
    if (Opts.StrictForeign)
      return fail(ErrorKind::UnknownForeign,
                  "no implementation for foreign function " + Info.Name +
                      "::" + F.Name);
    Stack.push_back(Value::null());
    break;
  }
  case Opcode::CallState: {
    // The `call S;` statement: like a call transition, but saving the
    // current continuation (everything still on the exec stack).
    std::vector<int32_t> Inherit = computeCallInherit(M);
    ++Frame.PC; // The continuation resumes after this instruction.
    StateFrame NewFrame;
    NewFrame.State = I.A;
    NewFrame.Inherit = std::move(Inherit);
    NewFrame.SavedCont = std::move(M.Exec);
    M.Exec.clear();
    M.Frames.push_back(std::move(NewFrame));
    if (Trace)
      Trace->record(TraceKind::StateEnter, Id, I.A, M.MachineIndex);
    if (Info.States[I.A].EntryBody >= 0)
      pushBodyFrame(M, Info.States[I.A].EntryBody, FrameKind::Entry);
    return Res;
  }
  case Opcode::Assert: {
    Value C = popValue();
    // ASSERT-FAIL only when the condition evaluates to false; like the
    // paper, an undefined condition behaves like skip (ASSERT-PASS).
    if (C.isBool() && !C.asBool())
      return fail(ErrorKind::AssertFailed,
                  "assertion failed at " + Loc.str() + " in " + B.Name);
    break;
  }
  case Opcode::Delete: {
    // DELETE: M[id] := ⊥.
    M.Alive = false;
    M.Exec.clear();
    M.Frames.clear();
    M.Queue.clear();
    M.Vars.clear();
    M.HasRaise = false;
    M.Transfer = TransferKind::None;
    if (Trace)
      Trace->record(TraceKind::Halt, Id);
    Res.Kind = InstrResult::Halted;
    return Res;
  }
  case Opcode::Leave:
    // LEAVE: jump to the end of the entry function and wait for events.
    M.Exec.clear();
    return Res;
  case Opcode::Return: {
    // RETURN: run Exit(m, n), then pop (POP2 via PopReturn).
    bool InExit = Frame.Kind == FrameKind::Exit;
    M.Exec.clear();
    M.Transfer = TransferKind::PopReturn;
    const StateInfo &St = Info.States[M.Frames.back().State];
    if (!InExit && St.ExitBody >= 0)
      pushBodyFrame(M, St.ExitBody, FrameKind::Exit);
    return Res;
  }
  case Opcode::Halt: {
    // End of body: pop the frame; models hand their result back.
    ExecFrame Done = std::move(M.Exec.back());
    M.Exec.pop_back();
    if (Done.Kind == FrameKind::Model) {
      assert(!M.Exec.empty() && "model frame without a caller");
      M.Exec.back().Operands.push_back(Done.Result);
    }
    return Res;
  }
  }

  ++Frame.PC;
  return Res;
}

Executor::StepResult Executor::step(Config &Cfg, int32_t Id) const {
  assert(Id >= 0 && Id < static_cast<int32_t>(Cfg.Machines.size()));
  uint64_t Steps = 0;
  while (true) {
    if (Cfg.hasError())
      return {StepOutcome::Error};
    // Dispatch on a read-only view; the COW clone happens inside the
    // helper that actually mutates (execInstr/applyTransfer/
    // dispatchRaise, or the dequeue below). A Blocked slice touches
    // nothing and keeps the snapshot shared.
    const MachineState &M = *Cfg.Machines[Id];
    if (!M.Alive)
      return {StepOutcome::Halted};
    if (++Steps > Opts.MaxStepsPerSlice) {
      raiseError(Cfg, Id, ErrorKind::Divergence,
                 "machine " + Prog.Machines[M.MachineIndex].Name + " (id " +
                     std::to_string(Id) +
                     ") executed " + std::to_string(Steps) +
                     " steps without reaching a scheduling point");
      return {StepOutcome::Error};
    }

    if (!M.Exec.empty()) {
      InstrResult R = execInstr(Cfg, Id);
      switch (R.Kind) {
      case InstrResult::Continue:
        continue;
      case InstrResult::SchedulingPoint:
        return {StepOutcome::SchedulingPoint, R.Other, R.Created};
      case InstrResult::ChoicePoint:
        return {StepOutcome::ChoicePoint};
      case InstrResult::Halted:
        return {StepOutcome::Halted};
      case InstrResult::Error:
        return {StepOutcome::Error};
      case InstrResult::ForeignCall:
        return {StepOutcome::ForeignCall};
      }
      continue;
    }

    if (M.Transfer != TransferKind::None) {
      applyTransfer(Cfg, Id);
      continue;
    }

    if (M.HasRaise) {
      dispatchRaise(Cfg, Id);
      continue;
    }

    // DEQUEUE: take the first event outside the effective deferred set.
    int Index = findEligibleEvent(Cfg, M);
    if (Index < 0)
      return {StepOutcome::Blocked};
    MachineState &MW = Cfg.Machines[Id].mut();
    auto [Event, Arg] = MW.Queue[Index];
    MW.Queue.erase(MW.Queue.begin() + Index);
    for (const DequeueObserverFn &Observer : DequeueObservers)
      Observer(Id, Event);
    if (Trace)
      Trace->record(TraceKind::Dequeue, Id, Event);
    MW.Msg = Value::event(Event);
    MW.Arg = Arg;
    MW.HasRaise = true;
    MW.RaiseEvent = Event;
    MW.RaiseArg = Arg;
  }
}

std::string Executor::describeMachine(const Config &Cfg, int32_t Id) const {
  if (Id < 0 || Id >= static_cast<int32_t>(Cfg.Machines.size()))
    return "<invalid machine id>";
  const MachineState &M = *Cfg.Machines[Id];
  if (!M.Alive)
    return "<deleted machine " + std::to_string(Id) + ">";
  const MachineInfo &Info = Prog.Machines[M.MachineIndex];
  std::string Out = Info.Name + "#" + std::to_string(Id);
  if (!M.Frames.empty())
    Out += " @ " + Info.States[M.Frames.back().State].Name;
  if (!M.Queue.empty()) {
    Out += " [queue:";
    for (const auto &[E, V] : M.Queue) {
      Out += ' ';
      Out += Prog.Events[E].Name;
    }
    Out += ']';
  }
  return Out;
}
