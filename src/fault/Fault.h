//===- fault/Fault.h - Fault model shared by checker and host --------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault model. The paper verifies responsiveness against an
/// adversarial *scheduler* (Section 5's delaying scheduler); this layer
/// extends the adversary to the *transport*: events can be dropped,
/// duplicated or delayed, machines can crash, and foreign calls can
/// fail. The same bounded-budget trick the delaying scheduler uses for
/// delays applies to faults — a path may take at most `Budget` fault
/// transitions, so d-bounded-delay × k-bounded-fault exploration stays
/// finite and systematic.
///
/// Two consumers share the vocabulary defined here:
///
///  * the checker (CheckOptions::Faults, a FaultSpec): fault actions
///    become explorable nondeterministic transitions, recorded into
///    counterexamples and replayable via checker/Replay.h;
///
///  * the host (Host::setFaultPlan, a FaultPlan in fault/FaultPlan.h):
///    a seeded deterministic schedule of faults injected at SMAddEvent
///    boundaries, so the *same* adversary the checker explored can be
///    exercised against the real runtime.
///
//===----------------------------------------------------------------------===//

#ifndef P_FAULT_FAULT_H
#define P_FAULT_FAULT_H

#include <cstdint>
#include <vector>

namespace p {

/// One injectable fault action.
enum class FaultKind : uint8_t {
  /// Remove one enqueued (event, payload) entry: a lossy transport.
  DropEvent,
  /// Append a copy of one enqueued entry, bypassing the queue's ⊎
  /// dedup (a transport that delivers twice).
  DuplicateEvent,
  /// Hold an external event back past its causal delivery slot (host
  /// plans only; the checker's delaying scheduler already covers
  /// reordering).
  DelayEvent,
  /// Kill a machine: its queue is discarded and later sends to it
  /// vanish like sends to ⊥ (no error — see DESIGN.md "Fault model").
  CrashMachine,
  /// Restart a crashed machine from its initial state (host only).
  RestartMachine,
  /// A foreign call fails: it returns ⊥ without executing its model
  /// body or native implementation.
  FailForeign,
};

/// Short stable identifier, e.g. "drop-event"; used by traces/metrics.
const char *faultKindName(FaultKind Kind);

/// Which fault transitions the checker may explore, and how many per
/// path. Analogous to the delay bound: `Budget` is the k of k-bounded
/// fault exploration, 0 disables the machinery entirely (bit-identical
/// exploration to a build without it).
struct FaultSpec {
  /// Maximum fault transitions along one explored path.
  int Budget = 0;

  /// Which fault kinds participate. Drop/duplicate model the transport
  /// and are on by default; crash and foreign failure change the
  /// process model and are opt-in.
  bool Drop = true;
  bool Duplicate = true;
  bool Crash = false;
  bool FailForeign = false;

  /// Restrict drop/duplicate to these event ids (empty = all events).
  /// Lets a harness aim the adversary at one protocol message.
  std::vector<int32_t> Events;

  /// Restrict crashes to these machine *type* indexes (empty = all).
  std::vector<int32_t> CrashTypes;

  /// True when fault exploration is active at all.
  bool enabled() const {
    return Budget > 0 && (Drop || Duplicate || Crash || FailForeign);
  }

  bool eventAllowed(int32_t Event) const;
  bool crashTypeAllowed(int32_t MachineType) const;
};

} // namespace p

#endif // P_FAULT_FAULT_H
