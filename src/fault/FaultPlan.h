//===- fault/FaultPlan.h - Seeded fault schedules for the host -------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault schedule for the execution host. The host
/// consults the plan once per accepted SMAddEvent call; the plan either
/// rolls a seeded mt19937_64 against per-kind probabilities or matches a
/// scripted entry pinned to that call's ordinal. Determinism contract:
/// the same plan (seed + probabilities + script) over the same sequence
/// of addEvent calls makes the same decisions — one RNG draw per
/// consultation, nothing else advances the stream — so a fault-laden
/// host run can be reproduced exactly (tested in fault_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef P_FAULT_FAULTPLAN_H
#define P_FAULT_FAULTPLAN_H

#include "fault/Fault.h"

#include <cstdint>
#include <random>
#include <vector>

namespace p {

/// What the plan decided for one SMAddEvent call.
struct FaultAction {
  /// False: deliver normally.
  bool Inject = false;
  FaultKind Kind = FaultKind::DropEvent;
};

/// A seeded (probabilistic) and/or scripted fault schedule, applied by
/// the host at SMAddEvent boundaries. Copy the configured plan into
/// Host::setFaultPlan; the host owns its copy's RNG state.
class FaultPlan {
public:
  /// Seeds the mt19937_64 behind the probabilistic rolls.
  uint64_t Seed = 0;

  /// Per-kind injection probabilities in [0, 1], evaluated in the fixed
  /// order drop, duplicate, delay, crash from a single uniform draw per
  /// call (first matching band wins; they should sum to <= 1).
  double DropProb = 0;
  double DuplicateProb = 0;
  double DelayProb = 0;
  double CrashProb = 0;

  /// Restrict probabilistic faults to these event ids (empty = all).
  std::vector<int32_t> Events;

  /// A scripted fault pinned to the Nth consultation (1-based ordinal
  /// of accepted SMAddEvent calls). Scripted entries win over rolls.
  struct ScriptEntry {
    uint64_t AtCall = 0;
    FaultKind Kind = FaultKind::DropEvent;
  };
  std::vector<ScriptEntry> Script;

  /// True when the plan can ever inject anything.
  bool enabled() const {
    return !Script.empty() || DropProb > 0 || DuplicateProb > 0 ||
           DelayProb > 0 || CrashProb > 0;
  }

  /// (Re)seeds the RNG; the host calls this when the plan is installed.
  void reset() { Rng.seed(Seed); }

  /// Decides the fate of the \p CallIndex-th (1-based) accepted
  /// SMAddEvent delivering \p Event. Advances the RNG by exactly one
  /// draw when any probability is set, zero otherwise.
  FaultAction decide(uint64_t CallIndex, int32_t Event);

private:
  bool eventAllowed(int32_t Event) const;

  std::mt19937_64 Rng;
};

} // namespace p

#endif // P_FAULT_FAULTPLAN_H
