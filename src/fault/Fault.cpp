//===- fault/Fault.cpp --------------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fault/Fault.h"

#include <algorithm>

using namespace p;

const char *p::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::DropEvent:
    return "drop-event";
  case FaultKind::DuplicateEvent:
    return "duplicate-event";
  case FaultKind::DelayEvent:
    return "delay-event";
  case FaultKind::CrashMachine:
    return "crash-machine";
  case FaultKind::RestartMachine:
    return "restart-machine";
  case FaultKind::FailForeign:
    return "fail-foreign";
  }
  return "unknown";
}

bool FaultSpec::eventAllowed(int32_t Event) const {
  return Events.empty() ||
         std::find(Events.begin(), Events.end(), Event) != Events.end();
}

bool FaultSpec::crashTypeAllowed(int32_t MachineType) const {
  return CrashTypes.empty() ||
         std::find(CrashTypes.begin(), CrashTypes.end(), MachineType) !=
             CrashTypes.end();
}
