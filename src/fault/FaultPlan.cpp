//===- fault/FaultPlan.cpp ----------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fault/FaultPlan.h"

#include <algorithm>

using namespace p;

bool FaultPlan::eventAllowed(int32_t Event) const {
  return Events.empty() ||
         std::find(Events.begin(), Events.end(), Event) != Events.end();
}

FaultAction FaultPlan::decide(uint64_t CallIndex, int32_t Event) {
  FaultAction A;

  for (const ScriptEntry &S : Script)
    if (S.AtCall == CallIndex) {
      A.Inject = true;
      A.Kind = S.Kind;
      return A;
    }

  const double Total = DropProb + DuplicateProb + DelayProb + CrashProb;
  if (Total <= 0)
    return A;
  // One uniform draw in [0, 1) per consultation, taken from the top 53
  // bits so the stream is identical across standard libraries. The draw
  // happens even for filtered-out events to keep the decision at call N
  // independent of the filter.
  const double U = static_cast<double>(Rng() >> 11) * 0x1.0p-53;
  if (!eventAllowed(Event))
    return A;

  double Edge = DropProb;
  if (U < Edge) {
    A.Inject = true;
    A.Kind = FaultKind::DropEvent;
    return A;
  }
  Edge += DuplicateProb;
  if (U < Edge) {
    A.Inject = true;
    A.Kind = FaultKind::DuplicateEvent;
    return A;
  }
  Edge += DelayProb;
  if (U < Edge) {
    A.Inject = true;
    A.Kind = FaultKind::DelayEvent;
    return A;
  }
  Edge += CrashProb;
  if (U < Edge) {
    A.Inject = true;
    A.Kind = FaultKind::CrashMachine;
    return A;
  }
  return A;
}
