//===- ast/Types.h - The P type system ------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The P core calculus has five value types (paper, Figure 3):
/// `void | bool | int | event | id`. `id` is the type of machine
/// references produced by `new`. Every type is nullable: the special
/// value ⊥ ("null" in the surface syntax) inhabits all of them and
/// propagates through operators (Section 3).
///
//===----------------------------------------------------------------------===//

#ifndef P_AST_TYPES_H
#define P_AST_TYPES_H

namespace p {

/// The five types of the P core calculus.
enum class TypeKind {
  Void,  ///< No value; payload type of events without data.
  Bool,  ///< Booleans.
  Int,   ///< Machine integers.
  Event, ///< First-class event names.
  Id,    ///< Machine identifiers (references created by `new`).
};

/// Returns the surface-syntax spelling of \p T.
inline const char *typeName(TypeKind T) {
  switch (T) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Int:
    return "int";
  case TypeKind::Event:
    return "event";
  case TypeKind::Id:
    return "id";
  }
  return "<invalid>";
}

} // namespace p

#endif // P_AST_TYPES_H
