//===- ast/AST.h - Abstract syntax of the P language -----------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the P language: the core calculus of the paper's Figure 3 plus
/// the surface conveniences of Section 2 (named action bindings per state,
/// `call` statements, `postpone` liveness annotations, foreign functions
/// with optional erasable model bodies).
///
/// Ownership: a Program owns its machines, machines own their declarations,
/// statements own their sub-statements and expressions (std::unique_ptr
/// throughout). Semantic analysis annotates nodes in place (resolved
/// indices, types, ghostness) rather than building a parallel tree.
///
//===----------------------------------------------------------------------===//

#ifndef P_AST_AST_H
#define P_AST_AST_H

#include "ast/Types.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace p {

class Expr;
class Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Unary operators of the core calculus.
enum class UnaryOp { Not, Neg };

/// Binary operators of the core calculus.
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  And,
  Or,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
};

/// Returns the surface spelling of \p Op.
const char *unaryOpName(UnaryOp Op);
/// Returns the surface spelling of \p Op.
const char *binaryOpName(BinaryOp Op);

/// Base class of all P expressions.
class Expr {
public:
  enum class Kind {
    NullLit,     ///< ⊥ — the undefined value.
    BoolLit,     ///< true / false.
    IntLit,      ///< Integer constant.
    EventLit,    ///< An event name used as a first-class value.
    VarRef,      ///< A machine-local variable.
    This,        ///< Identifier of the executing machine.
    Msg,         ///< Event last dequeued/raised (special variable `msg`).
    Arg,         ///< Payload of the last event (special variable `arg`).
    Nondet,      ///< `*` — nondeterministic bool (ghost machines only).
    Unary,       ///< Unary operator application.
    Binary,      ///< Binary operator application.
    ForeignCall, ///< Call of a declared foreign function.
  };

  virtual ~Expr() = default;

  Kind getKind() const { return K; }
  SourceLoc getLoc() const { return Loc; }

  /// Resolved type; filled in by Sema.
  TypeKind Ty = TypeKind::Void;
  /// True when the expression's value depends on ghost state (ghost
  /// variables, nondeterminism, or ghost machine ids); filled in by Sema.
  bool Ghost = false;

protected:
  Expr(Kind K, SourceLoc Loc) : Loc(Loc), K(K) {}

  SourceLoc Loc;

private:
  const Kind K;
};

/// The literal ⊥ value (spelled `null`).
class NullLitExpr : public Expr {
public:
  explicit NullLitExpr(SourceLoc Loc) : Expr(Kind::NullLit, Loc) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::NullLit; }
};

/// Boolean literal.
class BoolLitExpr : public Expr {
public:
  BoolLitExpr(bool Value, SourceLoc Loc)
      : Expr(Kind::BoolLit, Loc), Value(Value) {}
  bool Value;
  static bool classof(const Expr *E) { return E->getKind() == Kind::BoolLit; }
};

/// Integer literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : Expr(Kind::IntLit, Loc), Value(Value) {}
  int64_t Value;
  static bool classof(const Expr *E) { return E->getKind() == Kind::IntLit; }
};

/// An event name used as a value of type `event`.
class EventLitExpr : public Expr {
public:
  EventLitExpr(std::string Name, SourceLoc Loc)
      : Expr(Kind::EventLit, Loc), Name(std::move(Name)) {}
  std::string Name;
  /// Resolved event index; filled in by Sema.
  int EventId = -1;
  static bool classof(const Expr *E) { return E->getKind() == Kind::EventLit; }
};

/// Reference to a machine-local variable.
class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string Name, SourceLoc Loc)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}
  std::string Name;
  /// Index into the owning machine's variable list; filled in by Sema.
  int VarIndex = -1;
  /// Inside a foreign-function model body the name may instead resolve to
  /// a parameter; filled in by Sema.
  int ParamIndex = -1;
  static bool classof(const Expr *E) { return E->getKind() == Kind::VarRef; }
};

/// The special constant `this`.
class ThisExpr : public Expr {
public:
  explicit ThisExpr(SourceLoc Loc) : Expr(Kind::This, Loc) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::This; }
};

/// The special variable `msg` (last received event).
class MsgExpr : public Expr {
public:
  explicit MsgExpr(SourceLoc Loc) : Expr(Kind::Msg, Loc) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::Msg; }
};

/// The special variable `arg` (payload of the last event).
class ArgExpr : public Expr {
public:
  explicit ArgExpr(SourceLoc Loc) : Expr(Kind::Arg, Loc) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::Arg; }
};

/// `*` — nondeterministic boolean choice, permitted in ghost machines only.
class NondetExpr : public Expr {
public:
  explicit NondetExpr(SourceLoc Loc) : Expr(Kind::Nondet, Loc) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::Nondet; }
};

/// Unary operator application.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}
  UnaryOp Op;
  ExprPtr Operand;
  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }
};

/// Binary operator application.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr LHS, ExprPtr RHS, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}
  BinaryOp Op;
  ExprPtr LHS;
  ExprPtr RHS;
  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }
};

/// Call of a foreign function in expression position.
class ForeignCallExpr : public Expr {
public:
  ForeignCallExpr(std::string Callee, std::vector<ExprPtr> Args,
                  SourceLoc Loc)
      : Expr(Kind::ForeignCall, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  std::string Callee;
  std::vector<ExprPtr> Args;
  /// Index into the owning machine's foreign-function list; set by Sema.
  int FunIndex = -1;
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::ForeignCall;
  }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of all P statements.
class Stmt {
public:
  enum class Kind {
    Skip,
    Block,     ///< Sequential composition `s1; s2; ...`.
    Assign,    ///< `x = e;`
    New,       ///< `x = new M(field = e, ...);`
    Delete,    ///< `delete;` — terminate the executing machine.
    Send,      ///< `send(target, e, payload?);`
    Raise,     ///< `raise(e, payload?);`
    Leave,     ///< `leave;` — jump to end of entry function.
    Return,    ///< `return;` — pop the call stack.
    Assert,    ///< `assert(e);`
    If,        ///< `if (e) s1 else s2`.
    While,     ///< `while (e) s`.
    CallState, ///< `call S;` — push state S with a saved continuation.
    ExprStmt,  ///< Foreign call in statement position.
  };

  virtual ~Stmt() = default;

  Kind getKind() const { return K; }
  SourceLoc getLoc() const { return Loc; }

protected:
  Stmt(Kind K, SourceLoc Loc) : Loc(Loc), K(K) {}

  SourceLoc Loc;

private:
  const Kind K;
};

/// `skip;` — does nothing.
class SkipStmt : public Stmt {
public:
  explicit SkipStmt(SourceLoc Loc) : Stmt(Kind::Skip, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Skip; }
};

/// A `{ s1 s2 ... }` sequence.
class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<StmtPtr> Stmts, SourceLoc Loc)
      : Stmt(Kind::Block, Loc), Stmts(std::move(Stmts)) {}
  std::vector<StmtPtr> Stmts;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Block; }
};

/// `x = e;`
class AssignStmt : public Stmt {
public:
  AssignStmt(std::string Target, ExprPtr Value, SourceLoc Loc)
      : Stmt(Kind::Assign, Loc), Target(std::move(Target)),
        Value(std::move(Value)) {}
  std::string Target;
  ExprPtr Value;
  /// Resolved variable index; set by Sema.
  int VarIndex = -1;
  /// True when this assigns the pseudo-variable `result` inside a
  /// foreign-function model body (the model's return value).
  bool IsResult = false;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assign; }
};

/// One `field = expr` initializer in a `new` statement.
struct Initializer {
  std::string Field;
  ExprPtr Value;
  SourceLoc Loc;
  /// Resolved index of Field in the created machine; set by Sema.
  int VarIndex = -1;
};

/// `x = new M(inits);` — creates a machine and stores its id into x.
/// The target is optional: `new M();` discards the id.
class NewStmt : public Stmt {
public:
  NewStmt(std::string Target, std::string MachineName,
          std::vector<Initializer> Inits, SourceLoc Loc)
      : Stmt(Kind::New, Loc), Target(std::move(Target)),
        MachineName(std::move(MachineName)), Inits(std::move(Inits)) {}
  std::string Target; ///< Empty when the id is discarded.
  std::string MachineName;
  std::vector<Initializer> Inits;
  /// Resolved target-variable index (or -1); set by Sema.
  int VarIndex = -1;
  /// Resolved machine index; set by Sema.
  int MachineIndex = -1;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::New; }
};

/// `delete;` — the executing machine halts and frees its resources.
class DeleteStmt : public Stmt {
public:
  explicit DeleteStmt(SourceLoc Loc) : Stmt(Kind::Delete, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Delete; }
};

/// `send(target, event, payload?);`
class SendStmt : public Stmt {
public:
  SendStmt(ExprPtr Target, ExprPtr Event, ExprPtr Payload, SourceLoc Loc)
      : Stmt(Kind::Send, Loc), Target(std::move(Target)),
        Event(std::move(Event)), Payload(std::move(Payload)) {}
  ExprPtr Target;
  ExprPtr Event;
  ExprPtr Payload; ///< May be null (defaults to ⊥).
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Send; }
};

/// `raise(event, payload?);` — aborts the current body and raises locally.
class RaiseStmt : public Stmt {
public:
  RaiseStmt(ExprPtr Event, ExprPtr Payload, SourceLoc Loc)
      : Stmt(Kind::Raise, Loc), Event(std::move(Event)),
        Payload(std::move(Payload)) {}
  ExprPtr Event;
  ExprPtr Payload; ///< May be null (defaults to ⊥).
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Raise; }
};

/// `leave;` — finish the entry function and wait for the next event.
class LeaveStmt : public Stmt {
public:
  explicit LeaveStmt(SourceLoc Loc) : Stmt(Kind::Leave, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Leave; }
};

/// `return;` — run the current state's exit statement and pop it.
class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(SourceLoc Loc) : Stmt(Kind::Return, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Return; }
};

/// `assert(e);`
class AssertStmt : public Stmt {
public:
  AssertStmt(ExprPtr Cond, SourceLoc Loc)
      : Stmt(Kind::Assert, Loc), Cond(std::move(Cond)) {}
  ExprPtr Cond;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assert; }
};

/// `if (e) s1 else s2`.
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; ///< May be null.
  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }
};

/// `while (e) s`.
class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}
  ExprPtr Cond;
  StmtPtr Body;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::While; }
};

/// `call S;` — push state S like a call transition, but save the current
/// body's continuation so execution resumes after S is popped (Section 3).
class CallStateStmt : public Stmt {
public:
  CallStateStmt(std::string StateName, SourceLoc Loc)
      : Stmt(Kind::CallState, Loc), StateName(std::move(StateName)) {}
  std::string StateName;
  /// Resolved state index; set by Sema.
  int StateIndex = -1;
  static bool classof(const Stmt *S) {
    return S->getKind() == Kind::CallState;
  }
};

/// A foreign call evaluated for its side effects.
class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, SourceLoc Loc) : Stmt(Kind::ExprStmt, Loc),
                                       E(std::move(E)) {}
  ExprPtr E;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::ExprStmt; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// `event E;` or `event E(int);` with optional `ghost` prefix.
struct EventDecl {
  std::string Name;
  TypeKind PayloadType = TypeKind::Void;
  bool Ghost = false;
  SourceLoc Loc;
};

/// `var x: t;` with optional `ghost` prefix.
struct VarDecl {
  std::string Name;
  TypeKind Type = TypeKind::Int;
  bool Ghost = false;
  SourceLoc Loc;
};

/// `action A { stmt }`.
struct ActionDecl {
  std::string Name;
  StmtPtr Body;
  SourceLoc Loc;
};

/// The kind of handler a state binds to an event.
enum class HandlerKind {
  Step, ///< `on e goto S;` — step transition.
  Call, ///< `on e push S;` — call transition.
  Do,   ///< `on e do A;`   — action binding.
};

/// One `on <event> goto/push/do <target>;` clause.
struct HandlerDecl {
  HandlerKind Kind;
  std::string EventName;
  std::string Target; ///< State name (Step/Call) or action name (Do).
  SourceLoc Loc;
  /// Resolved indices; set by Sema.
  int EventId = -1;
  int TargetIndex = -1;
};

/// `state S { defer ...; postpone ...; entry {..} exit {..} on ... }`.
struct StateDecl {
  std::string Name;
  std::vector<std::string> Deferred;
  std::vector<std::string> Postponed; ///< Liveness annotation (Section 3.2).
  StmtPtr Entry;                      ///< Null means `skip`.
  StmtPtr Exit;                       ///< Null means `skip`.
  std::vector<HandlerDecl> Handlers;
  SourceLoc Loc;
  /// Resolved deferred/postponed event ids; set by Sema.
  std::vector<int> DeferredIds;
  std::vector<int> PostponedIds;
};

/// One parameter of a foreign function.
struct ParamDecl {
  std::string Name;
  TypeKind Type = TypeKind::Int;
  SourceLoc Loc;
};

/// `foreign fun f(x: int): bool [model { stmt }];` — an external C function
/// callable from P code. The optional model body (erasable, ghost-only
/// effects) is what the verifier executes (Section 3, "Other features").
struct ForeignFunDecl {
  std::string Name;
  std::vector<ParamDecl> Params;
  TypeKind ReturnType = TypeKind::Void;
  StmtPtr ModelBody; ///< Null when no model is given.
  SourceLoc Loc;
};

/// A machine declaration.
struct MachineDecl {
  std::string Name;
  bool Ghost = false;
  bool Main = false; ///< Marks the machine created by the init statement.
  /// Instances of this machine are interchangeable: the checker's
  /// symmetry reduction may canonicalize permutations of them (the
  /// declaration is a promise that instance identity carries no
  /// semantic weight beyond the id values themselves).
  bool Symmetric = false;
  std::vector<VarDecl> Vars;
  std::vector<ActionDecl> Actions;
  std::vector<StateDecl> States;
  std::vector<ForeignFunDecl> Funs;
  SourceLoc Loc;

  /// Finds a state by name; returns -1 if absent.
  int findState(const std::string &Name) const;
  /// Finds a variable by name; returns -1 if absent.
  int findVar(const std::string &Name) const;
  /// Finds an action by name; returns -1 if absent.
  int findAction(const std::string &Name) const;
  /// Finds a foreign function by name; returns -1 if absent.
  int findFun(const std::string &Name) const;
};

/// A whole P program: events, machines, and the initialization statement
/// (the machine instantiated first; identified by the `main` keyword).
struct Program {
  std::vector<EventDecl> Events;
  std::vector<MachineDecl> Machines;

  /// Finds an event by name; returns -1 if absent.
  int findEvent(const std::string &Name) const;
  /// Finds a machine by name; returns -1 if absent.
  int findMachine(const std::string &Name) const;
  /// Index of the `main` machine; returns -1 if none is marked.
  int mainMachine() const;
};

//===----------------------------------------------------------------------===//
// Printing (round-trippable surface form; used in tests/tools)
//===----------------------------------------------------------------------===//

/// Renders \p E in surface syntax.
std::string toString(const Expr &E);
/// Renders \p S in surface syntax, indented by \p Indent spaces.
std::string toString(const Stmt &S, unsigned Indent = 0);
/// Renders a whole program in surface syntax.
std::string toString(const Program &P);

} // namespace p

#endif // P_AST_AST_H
