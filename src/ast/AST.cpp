//===- ast/AST.cpp - AST lookups and printing ------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/AST.h"

#include "support/Casting.h"

#include <cassert>

using namespace p;

const char *p::unaryOpName(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Not:
    return "!";
  case UnaryOp::Neg:
    return "-";
  }
  return "?";
}

const char *p::binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  }
  return "?";
}

int MachineDecl::findState(const std::string &N) const {
  for (size_t I = 0; I != States.size(); ++I)
    if (States[I].Name == N)
      return static_cast<int>(I);
  return -1;
}

int MachineDecl::findVar(const std::string &N) const {
  for (size_t I = 0; I != Vars.size(); ++I)
    if (Vars[I].Name == N)
      return static_cast<int>(I);
  return -1;
}

int MachineDecl::findAction(const std::string &N) const {
  for (size_t I = 0; I != Actions.size(); ++I)
    if (Actions[I].Name == N)
      return static_cast<int>(I);
  return -1;
}

int MachineDecl::findFun(const std::string &N) const {
  for (size_t I = 0; I != Funs.size(); ++I)
    if (Funs[I].Name == N)
      return static_cast<int>(I);
  return -1;
}

int Program::findEvent(const std::string &N) const {
  for (size_t I = 0; I != Events.size(); ++I)
    if (Events[I].Name == N)
      return static_cast<int>(I);
  return -1;
}

int Program::findMachine(const std::string &N) const {
  for (size_t I = 0; I != Machines.size(); ++I)
    if (Machines[I].Name == N)
      return static_cast<int>(I);
  return -1;
}

int Program::mainMachine() const {
  for (size_t I = 0; I != Machines.size(); ++I)
    if (Machines[I].Main)
      return static_cast<int>(I);
  return -1;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string p::toString(const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::NullLit:
    return "null";
  case Expr::Kind::BoolLit:
    return cast<BoolLitExpr>(&E)->Value ? "true" : "false";
  case Expr::Kind::IntLit:
    return std::to_string(cast<IntLitExpr>(&E)->Value);
  case Expr::Kind::EventLit:
    return cast<EventLitExpr>(&E)->Name;
  case Expr::Kind::VarRef:
    return cast<VarRefExpr>(&E)->Name;
  case Expr::Kind::This:
    return "this";
  case Expr::Kind::Msg:
    return "msg";
  case Expr::Kind::Arg:
    return "arg";
  case Expr::Kind::Nondet:
    return "*";
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    return std::string(unaryOpName(U->Op)) + "(" + toString(*U->Operand) +
           ")";
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    return "(" + toString(*B->LHS) + " " + binaryOpName(B->Op) + " " +
           toString(*B->RHS) + ")";
  }
  case Expr::Kind::ForeignCall: {
    const auto *C = cast<ForeignCallExpr>(&E);
    std::string Out = C->Callee + "(";
    for (size_t I = 0; I != C->Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += toString(*C->Args[I]);
    }
    return Out + ")";
  }
  }
  return "<expr>";
}

static std::string pad(unsigned Indent) { return std::string(Indent, ' '); }

std::string p::toString(const Stmt &S, unsigned Indent) {
  const std::string P = pad(Indent);
  switch (S.getKind()) {
  case Stmt::Kind::Skip:
    return P + "skip;";
  case Stmt::Kind::Block: {
    const auto *B = cast<BlockStmt>(&S);
    std::string Out = P + "{\n";
    for (const StmtPtr &Sub : B->Stmts) {
      Out += toString(*Sub, Indent + 2);
      Out += '\n';
    }
    return Out + P + "}";
  }
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    return P + A->Target + " = " + toString(*A->Value) + ";";
  }
  case Stmt::Kind::New: {
    const auto *N = cast<NewStmt>(&S);
    std::string Out = P;
    if (!N->Target.empty())
      Out += N->Target + " = ";
    Out += "new " + N->MachineName + "(";
    for (size_t I = 0; I != N->Inits.size(); ++I) {
      if (I)
        Out += ", ";
      Out += N->Inits[I].Field + " = " + toString(*N->Inits[I].Value);
    }
    return Out + ");";
  }
  case Stmt::Kind::Delete:
    return P + "delete;";
  case Stmt::Kind::Send: {
    const auto *Snd = cast<SendStmt>(&S);
    std::string Out = P + "send(" + toString(*Snd->Target) + ", " +
                      toString(*Snd->Event);
    if (Snd->Payload)
      Out += ", " + toString(*Snd->Payload);
    return Out + ");";
  }
  case Stmt::Kind::Raise: {
    const auto *R = cast<RaiseStmt>(&S);
    std::string Out = P + "raise(" + toString(*R->Event);
    if (R->Payload)
      Out += ", " + toString(*R->Payload);
    return Out + ");";
  }
  case Stmt::Kind::Leave:
    return P + "leave;";
  case Stmt::Kind::Return:
    return P + "return;";
  case Stmt::Kind::Assert:
    return P + "assert(" + toString(*cast<AssertStmt>(&S)->Cond) + ");";
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(&S);
    std::string Out = P + "if (" + toString(*I->Cond) + ")\n" +
                      toString(*I->Then, Indent + 2);
    if (I->Else) {
      Out += '\n';
      Out += P + "else\n" + toString(*I->Else, Indent + 2);
    }
    return Out;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(&S);
    return P + "while (" + toString(*W->Cond) + ")\n" +
           toString(*W->Body, Indent + 2);
  }
  case Stmt::Kind::CallState:
    return P + "call " + cast<CallStateStmt>(&S)->StateName + ";";
  case Stmt::Kind::ExprStmt:
    return P + toString(*cast<ExprStmt>(&S)->E) + ";";
  }
  return P + "<stmt>";
}

static void printBody(std::string &Out, const char *Label, const Stmt *Body,
                      unsigned Indent) {
  if (!Body)
    return;
  Out += pad(Indent) + Label + " ";
  if (Body->getKind() == Stmt::Kind::Block) {
    std::string Text = toString(*Body, Indent);
    // Strip the leading pad so the block brace sits after the label.
    Out += Text.substr(Indent);
  } else {
    Out += "{\n" + toString(*Body, Indent + 2) + "\n" + pad(Indent) + "}";
  }
  Out += '\n';
}

static void printNameList(std::string &Out, const char *Label,
                          const std::vector<std::string> &Names,
                          unsigned Indent) {
  if (Names.empty())
    return;
  Out += pad(Indent) + Label + " ";
  for (size_t I = 0; I != Names.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Names[I];
  }
  Out += ";\n";
}

std::string p::toString(const Program &Prog) {
  std::string Out;
  for (const EventDecl &E : Prog.Events) {
    if (E.Ghost)
      Out += "ghost ";
    Out += "event " + E.Name;
    if (E.PayloadType != TypeKind::Void)
      Out += std::string("(") + typeName(E.PayloadType) + ")";
    Out += ";\n";
  }
  for (const MachineDecl &M : Prog.Machines) {
    Out += '\n';
    if (M.Ghost)
      Out += "ghost ";
    if (M.Main)
      Out += "main ";
    Out += "machine " + M.Name + " {\n";
    for (const VarDecl &V : M.Vars) {
      Out += "  ";
      if (V.Ghost)
        Out += "ghost ";
      Out += "var " + V.Name + ": " + typeName(V.Type) + ";\n";
    }
    for (const ForeignFunDecl &F : M.Funs) {
      Out += "  foreign fun " + F.Name + "(";
      for (size_t I = 0; I != F.Params.size(); ++I) {
        if (I)
          Out += ", ";
        Out += F.Params[I].Name + ": " + typeName(F.Params[I].Type);
      }
      Out += std::string("): ") + typeName(F.ReturnType);
      if (F.ModelBody) {
        Out += " model ";
        std::string Text = toString(*F.ModelBody, 2);
        if (F.ModelBody->getKind() == Stmt::Kind::Block)
          Out += Text.substr(2);
        else
          Out += "{\n" + toString(*F.ModelBody, 4) + "\n  }";
        Out += '\n';
      } else {
        Out += ";\n";
      }
    }
    for (const StateDecl &St : M.States) {
      Out += "  state " + St.Name + " {\n";
      printNameList(Out, "defer", St.Deferred, 4);
      printNameList(Out, "postpone", St.Postponed, 4);
      printBody(Out, "entry", St.Entry.get(), 4);
      printBody(Out, "exit", St.Exit.get(), 4);
      for (const HandlerDecl &H : St.Handlers) {
        Out += "    on " + H.EventName + " ";
        switch (H.Kind) {
        case HandlerKind::Step:
          Out += "goto ";
          break;
        case HandlerKind::Call:
          Out += "push ";
          break;
        case HandlerKind::Do:
          Out += "do ";
          break;
        }
        Out += H.Target + ";\n";
      }
      Out += "  }\n";
    }
    for (const ActionDecl &A : M.Actions) {
      Out += "  action " + A.Name + " ";
      std::string Text = toString(*A.Body, 2);
      if (A.Body->getKind() == Stmt::Kind::Block)
        Out += Text.substr(2);
      else
        Out += "{\n" + toString(*A.Body, 4) + "\n  }";
      Out += '\n';
    }
    Out += "}\n";
  }
  return Out;
}
