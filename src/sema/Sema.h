//===- sema/Sema.h - Semantic analysis for P -------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis implementing the paper's static semantics
/// (Section 3.3):
///
///  * well-formedness — unique names; at most one transition and at most
///    one action binding per (state, event); handler targets exist;
///    exactly one `main` machine;
///  * typing — the simple five-type system with ⊥ inhabiting every type
///    (`null` and `arg` are dynamically typed);
///  * determinism — `*` only inside ghost machines and foreign-function
///    model bodies;
///  * ghost erasure — ghost machines/variables/events may be erased
///    without changing the runs of real machines: real control flow and
///    real state never depend on ghost values (except inside `assert`),
///    and machine identifiers are completely separated (ghost id
///    variables only ever hold ghost machine ids, and vice versa).
///
/// Sema annotates the AST in place (resolved indices, types, ghost bits);
/// lowering consumes the annotated AST.
///
//===----------------------------------------------------------------------===//

#ifndef P_SEMA_SEMA_H
#define P_SEMA_SEMA_H

#include "ast/AST.h"
#include "support/Diagnostics.h"

namespace p {

/// Runs all semantic checks over \p Prog, annotating it in place.
/// Returns true when no errors were reported.
bool analyze(Program &Prog, DiagnosticEngine &Diags);

} // namespace p

#endif // P_SEMA_SEMA_H
