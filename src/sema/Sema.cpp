//===- sema/Sema.cpp --------------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sema/Sema.h"

#include "support/Casting.h"

#include <set>
#include <string>

using namespace p;

namespace {

/// Pseudo-type lattice used during checking: the declared TypeKind plus
/// "Any" for `null`, `arg` and other dynamically typed positions.
struct SemaType {
  bool IsAny = false;
  TypeKind Kind = TypeKind::Void;

  static SemaType any() { return {true, TypeKind::Void}; }
  static SemaType of(TypeKind K) { return {false, K}; }

  bool compatibleWith(TypeKind Expected) const {
    return IsAny || Kind == Expected;
  }
  std::string str() const { return IsAny ? "any" : typeName(Kind); }
};

/// The statement context being checked; controls which statements and
/// name spaces are legal.
enum class BodyKind { Entry, Exit, Action, Model };

class SemaChecker {
public:
  SemaChecker(Program &Prog, DiagnosticEngine &Diags)
      : Prog(Prog), Diags(Diags) {}

  void run();

private:
  void checkTopLevelNames();
  void checkMachine(MachineDecl &M);
  void checkState(MachineDecl &M, StateDecl &St);
  void checkStmt(Stmt &S);
  SemaType checkExpr(Expr &E);
  SemaType checkForeignCall(ForeignCallExpr &Call);
  void checkEventPayload(const Expr &EventExpr, Expr *Payload,
                         SourceLoc Loc, const char *What);
  bool resolveEventName(const std::string &Name, SourceLoc Loc, int &IdOut);
  void requireReal(const Expr &E, const char *What);

  /// True when the current context is erased during compilation, so
  /// nondeterminism and ghost reads are unrestricted.
  bool inGhostContext() const {
    return CurMachine->Ghost || CurBody == BodyKind::Model;
  }

  Program &Prog;
  DiagnosticEngine &Diags;
  MachineDecl *CurMachine = nullptr;
  const ForeignFunDecl *CurFun = nullptr; ///< Set inside model bodies.
  BodyKind CurBody = BodyKind::Entry;
};

} // namespace

void SemaChecker::run() {
  checkTopLevelNames();
  for (MachineDecl &M : Prog.Machines)
    checkMachine(M);

  int MainCount = 0;
  for (const MachineDecl &M : Prog.Machines)
    if (M.Main)
      ++MainCount;
  if (MainCount == 0)
    Diags.error(SourceLoc(), "program has no 'main' machine (the paper's "
                             "initialization statement)");
  else if (MainCount > 1)
    Diags.error(SourceLoc(), "program has more than one 'main' machine");
}

void SemaChecker::checkTopLevelNames() {
  std::set<std::string> Seen;
  for (const EventDecl &E : Prog.Events)
    if (!Seen.insert(E.Name).second)
      Diags.error(E.Loc, "duplicate event name '" + E.Name + "'");
  Seen.clear();
  for (const MachineDecl &M : Prog.Machines) {
    if (!Seen.insert(M.Name).second)
      Diags.error(M.Loc, "duplicate machine name '" + M.Name + "'");
    if (Prog.findEvent(M.Name) >= 0)
      Diags.error(M.Loc,
                  "machine '" + M.Name + "' collides with an event name");
  }
}

bool SemaChecker::resolveEventName(const std::string &Name, SourceLoc Loc,
                                   int &IdOut) {
  IdOut = Prog.findEvent(Name);
  if (IdOut < 0) {
    Diags.error(Loc, "unknown event '" + Name + "'");
    return false;
  }
  return true;
}

void SemaChecker::checkMachine(MachineDecl &M) {
  CurMachine = &M;

  std::set<std::string> Seen;
  for (const VarDecl &V : M.Vars) {
    if (!Seen.insert(V.Name).second)
      Diags.error(V.Loc, "duplicate variable '" + V.Name + "' in machine '" +
                             M.Name + "'");
    if (Prog.findEvent(V.Name) >= 0)
      Diags.error(V.Loc,
                  "variable '" + V.Name + "' shadows an event name");
    if (V.Type == TypeKind::Void)
      Diags.error(V.Loc, "variable '" + V.Name + "' cannot have type void");
  }
  Seen.clear();
  for (const StateDecl &St : M.States)
    if (!Seen.insert(St.Name).second)
      Diags.error(St.Loc, "duplicate state '" + St.Name + "' in machine '" +
                              M.Name + "'");
  Seen.clear();
  for (const ActionDecl &A : M.Actions)
    if (!Seen.insert(A.Name).second)
      Diags.error(A.Loc, "duplicate action '" + A.Name + "' in machine '" +
                             M.Name + "'");
  Seen.clear();
  for (const ForeignFunDecl &F : M.Funs) {
    if (!Seen.insert(F.Name).second)
      Diags.error(F.Loc, "duplicate foreign function '" + F.Name +
                             "' in machine '" + M.Name + "'");
    std::set<std::string> ParamSeen;
    for (const ParamDecl &Param : F.Params)
      if (!ParamSeen.insert(Param.Name).second)
        Diags.error(Param.Loc, "duplicate parameter '" + Param.Name + "'");
  }

  if (M.States.empty()) {
    Diags.error(M.Loc, "machine '" + M.Name + "' has no states");
    CurMachine = nullptr;
    return;
  }

  for (StateDecl &St : M.States)
    checkState(M, St);

  for (ActionDecl &A : M.Actions) {
    CurBody = BodyKind::Action;
    checkStmt(*A.Body);
  }

  for (ForeignFunDecl &F : M.Funs) {
    if (!F.ModelBody)
      continue;
    CurBody = BodyKind::Model;
    CurFun = &F;
    checkStmt(*F.ModelBody);
    CurFun = nullptr;
  }

  CurMachine = nullptr;
}

void SemaChecker::checkState(MachineDecl &M, StateDecl &St) {
  // Resolve deferred/postponed sets.
  St.DeferredIds.clear();
  St.PostponedIds.clear();
  for (const std::string &Name : St.Deferred) {
    int Id;
    if (resolveEventName(Name, St.Loc, Id)) {
      if (!M.Ghost && Prog.Events[Id].Ghost)
        Diags.error(St.Loc, "real machine '" + M.Name +
                                "' defers ghost event '" + Name + "'");
      St.DeferredIds.push_back(Id);
    }
  }
  for (const std::string &Name : St.Postponed) {
    int Id;
    if (resolveEventName(Name, St.Loc, Id))
      St.PostponedIds.push_back(Id);
  }

  // Transition determinism: at most one step/call transition and at most
  // one action binding per event (paper, Section 3: "The set of
  // transitions of m must be deterministic").
  std::set<int> TransitionEvents;
  std::set<int> ActionEvents;
  for (HandlerDecl &H : St.Handlers) {
    if (!resolveEventName(H.EventName, H.Loc, H.EventId))
      continue;
    if (!M.Ghost && Prog.Events[H.EventId].Ghost)
      Diags.error(H.Loc, "real machine '" + M.Name +
                             "' handles ghost event '" + H.EventName + "'");
    switch (H.Kind) {
    case HandlerKind::Step:
    case HandlerKind::Call: {
      if (!TransitionEvents.insert(H.EventId).second)
        Diags.error(H.Loc, "state '" + St.Name +
                               "' has more than one transition on event '" +
                               H.EventName + "'");
      H.TargetIndex = M.findState(H.Target);
      if (H.TargetIndex < 0)
        Diags.error(H.Loc, "unknown target state '" + H.Target + "'");
      break;
    }
    case HandlerKind::Do: {
      if (!ActionEvents.insert(H.EventId).second)
        Diags.error(H.Loc, "state '" + St.Name +
                               "' binds more than one action to event '" +
                               H.EventName + "'");
      H.TargetIndex = M.findAction(H.Target);
      if (H.TargetIndex < 0)
        Diags.error(H.Loc, "unknown action '" + H.Target + "'");
      break;
    }
    }
  }
  for (int EventId : ActionEvents)
    if (TransitionEvents.count(EventId))
      Diags.warning(St.Loc,
                    "state '" + St.Name + "' binds an action to event '" +
                        Prog.Events[EventId].Name +
                        "' that also has a transition; the transition "
                        "takes priority and the action is dead");

  if (St.Entry) {
    CurBody = BodyKind::Entry;
    checkStmt(*St.Entry);
  }
  if (St.Exit) {
    CurBody = BodyKind::Exit;
    checkStmt(*St.Exit);
  }
}

void SemaChecker::requireReal(const Expr &E, const char *What) {
  if (!inGhostContext() && E.Ghost)
    Diags.error(E.getLoc(), std::string(What) +
                                " in real machine '" + CurMachine->Name +
                                "' depends on ghost state; it would not "
                                "survive erasure");
}

void SemaChecker::checkEventPayload(const Expr &EventExpr, Expr *Payload,
                                    SourceLoc Loc, const char *What) {
  // Only statically known events can be payload-checked.
  const auto *Lit = dyn_cast<EventLitExpr>(&EventExpr);
  if (!Lit || Lit->EventId < 0)
    return;
  const EventDecl &E = Prog.Events[Lit->EventId];
  if (E.PayloadType == TypeKind::Void) {
    if (Payload && !isa<NullLitExpr>(Payload))
      Diags.error(Loc, std::string(What) + " of event '" + E.Name +
                           "' carries a payload, but the event is "
                           "declared without one");
    return;
  }
  if (!Payload)
    Diags.error(Loc, std::string(What) + " of event '" + E.Name +
                         "' is missing its payload of type " +
                         typeName(E.PayloadType));
}

SemaType SemaChecker::checkExpr(Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::NullLit:
    E.Ghost = false;
    return SemaType::any();
  case Expr::Kind::BoolLit:
    E.Ty = TypeKind::Bool;
    return SemaType::of(TypeKind::Bool);
  case Expr::Kind::IntLit:
    E.Ty = TypeKind::Int;
    return SemaType::of(TypeKind::Int);
  case Expr::Kind::EventLit: {
    auto &Lit = *cast<EventLitExpr>(&E);
    Lit.EventId = Prog.findEvent(Lit.Name);
    if (Lit.EventId < 0)
      Diags.error(E.getLoc(), "unknown event '" + Lit.Name + "'");
    E.Ty = TypeKind::Event;
    return SemaType::of(TypeKind::Event);
  }
  case Expr::Kind::VarRef: {
    auto &Ref = *cast<VarRefExpr>(&E);
    if (CurBody == BodyKind::Model && CurFun) {
      for (size_t I = 0; I != CurFun->Params.size(); ++I) {
        if (CurFun->Params[I].Name == Ref.Name) {
          Ref.ParamIndex = static_cast<int>(I);
          E.Ty = CurFun->Params[I].Type;
          return SemaType::of(E.Ty);
        }
      }
    }
    Ref.VarIndex = CurMachine->findVar(Ref.Name);
    if (Ref.VarIndex < 0) {
      Diags.error(E.getLoc(), "unknown variable '" + Ref.Name +
                                  "' in machine '" + CurMachine->Name + "'");
      return SemaType::any();
    }
    const VarDecl &V = CurMachine->Vars[Ref.VarIndex];
    E.Ty = V.Type;
    E.Ghost = V.Ghost;
    return SemaType::of(V.Type);
  }
  case Expr::Kind::This:
    E.Ty = TypeKind::Id;
    return SemaType::of(TypeKind::Id);
  case Expr::Kind::Msg:
    E.Ty = TypeKind::Event;
    return SemaType::of(TypeKind::Event);
  case Expr::Kind::Arg:
    return SemaType::any();
  case Expr::Kind::Nondet:
    if (!inGhostContext())
      Diags.error(E.getLoc(),
                  "nondeterministic '*' is only allowed in ghost machines "
                  "and foreign-function model bodies (real machines must "
                  "be deterministic)");
    E.Ty = TypeKind::Bool;
    E.Ghost = true;
    return SemaType::of(TypeKind::Bool);
  case Expr::Kind::Unary: {
    auto &U = *cast<UnaryExpr>(&E);
    SemaType T = checkExpr(*U.Operand);
    E.Ghost = U.Operand->Ghost;
    TypeKind Want = U.Op == UnaryOp::Not ? TypeKind::Bool : TypeKind::Int;
    if (!T.compatibleWith(Want))
      Diags.error(E.getLoc(), std::string("operand of '") +
                                  unaryOpName(U.Op) + "' has type " +
                                  T.str() + ", expected " + typeName(Want));
    E.Ty = Want;
    return SemaType::of(Want);
  }
  case Expr::Kind::Binary: {
    auto &B = *cast<BinaryExpr>(&E);
    SemaType L = checkExpr(*B.LHS);
    SemaType R = checkExpr(*B.RHS);
    E.Ghost = B.LHS->Ghost || B.RHS->Ghost;
    switch (B.Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
      if (!L.compatibleWith(TypeKind::Int) ||
          !R.compatibleWith(TypeKind::Int))
        Diags.error(E.getLoc(), std::string("arithmetic '") +
                                    binaryOpName(B.Op) +
                                    "' requires int operands (got " +
                                    L.str() + " and " + R.str() + ")");
      E.Ty = TypeKind::Int;
      return SemaType::of(TypeKind::Int);
    case BinaryOp::And:
    case BinaryOp::Or:
      if (!L.compatibleWith(TypeKind::Bool) ||
          !R.compatibleWith(TypeKind::Bool))
        Diags.error(E.getLoc(), std::string("logical '") +
                                    binaryOpName(B.Op) +
                                    "' requires bool operands (got " +
                                    L.str() + " and " + R.str() + ")");
      E.Ty = TypeKind::Bool;
      return SemaType::of(TypeKind::Bool);
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      if (!L.compatibleWith(TypeKind::Int) ||
          !R.compatibleWith(TypeKind::Int))
        Diags.error(E.getLoc(), std::string("comparison '") +
                                    binaryOpName(B.Op) +
                                    "' requires int operands (got " +
                                    L.str() + " and " + R.str() + ")");
      E.Ty = TypeKind::Bool;
      return SemaType::of(TypeKind::Bool);
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      if (!L.IsAny && !R.IsAny && L.Kind != R.Kind)
        Diags.error(E.getLoc(),
                    std::string("'") + binaryOpName(B.Op) +
                        "' compares incompatible types " + L.str() +
                        " and " + R.str());
      E.Ty = TypeKind::Bool;
      return SemaType::of(TypeKind::Bool);
    }
    return SemaType::any();
  }
  case Expr::Kind::ForeignCall:
    return checkForeignCall(*cast<ForeignCallExpr>(&E));
  }
  return SemaType::any();
}

SemaType SemaChecker::checkForeignCall(ForeignCallExpr &Call) {
  Call.FunIndex = CurMachine->findFun(Call.Callee);
  if (Call.FunIndex < 0) {
    Diags.error(Call.getLoc(), "unknown foreign function '" + Call.Callee +
                                   "' in machine '" + CurMachine->Name +
                                   "'");
    for (ExprPtr &Arg : Call.Args)
      checkExpr(*Arg);
    return SemaType::any();
  }
  const ForeignFunDecl &F = CurMachine->Funs[Call.FunIndex];
  if (Call.Args.size() != F.Params.size())
    Diags.error(Call.getLoc(),
                "foreign function '" + F.Name + "' expects " +
                    std::to_string(F.Params.size()) + " argument(s), got " +
                    std::to_string(Call.Args.size()));
  bool Ghost = false;
  for (size_t I = 0; I != Call.Args.size(); ++I) {
    SemaType T = checkExpr(*Call.Args[I]);
    Ghost |= Call.Args[I]->Ghost;
    if (I < F.Params.size() && !T.compatibleWith(F.Params[I].Type))
      Diags.error(Call.Args[I]->getLoc(),
                  "argument " + std::to_string(I + 1) + " of '" + F.Name +
                      "' has type " + T.str() + ", expected " +
                      typeName(F.Params[I].Type));
  }
  // A foreign call is real code: erasing a ghost argument would change
  // what the external function observes, so ghost values may not flow in.
  if (!inGhostContext() && Ghost)
    Diags.error(Call.getLoc(), "foreign function '" + F.Name +
                                   "' called with a ghost argument in a "
                                   "real machine");
  Call.Ghost = Ghost;
  Call.Ty = F.ReturnType;
  return F.ReturnType == TypeKind::Void ? SemaType::any()
                                        : SemaType::of(F.ReturnType);
}

void SemaChecker::checkStmt(Stmt &S) {
  const bool InModel = CurBody == BodyKind::Model;
  switch (S.getKind()) {
  case Stmt::Kind::Skip:
    return;
  case Stmt::Kind::Block: {
    for (StmtPtr &Sub : cast<BlockStmt>(&S)->Stmts)
      checkStmt(*Sub);
    return;
  }
  case Stmt::Kind::Assign: {
    auto &A = *cast<AssignStmt>(&S);
    SemaType ValueTy = checkExpr(*A.Value);
    if (InModel && A.Target == "result") {
      A.IsResult = true;
      if (CurFun && CurFun->ReturnType == TypeKind::Void)
        Diags.error(S.getLoc(), "model body of void foreign function '" +
                                    CurFun->Name + "' assigns 'result'");
      else if (CurFun && !ValueTy.compatibleWith(CurFun->ReturnType))
        Diags.error(S.getLoc(), "'result' of '" + CurFun->Name +
                                    "' has type " +
                                    typeName(CurFun->ReturnType) + ", got " +
                                    ValueTy.str());
      return;
    }
    A.VarIndex = CurMachine->findVar(A.Target);
    if (A.VarIndex < 0) {
      Diags.error(S.getLoc(), "unknown variable '" + A.Target +
                                  "' in machine '" + CurMachine->Name + "'");
      return;
    }
    const VarDecl &V = CurMachine->Vars[A.VarIndex];
    if (!ValueTy.compatibleWith(V.Type))
      Diags.error(S.getLoc(), "cannot assign " + ValueTy.str() +
                                  " to variable '" + V.Name + "' of type " +
                                  typeName(V.Type));
    if (InModel && !V.Ghost)
      Diags.error(S.getLoc(),
                  "model body writes real variable '" + V.Name +
                      "'; model bodies must be erasable (ghost-only "
                      "effects)");
    if (!inGhostContext() && !V.Ghost && A.Value->Ghost)
      Diags.error(S.getLoc(),
                  "real variable '" + V.Name +
                      "' assigned a ghost value; erasure would change the "
                      "real machine's behaviour");
    // Machine-identifier separation (Section 3.3): the checker relies on
    // the ghost bit of an id-typed variable to classify sends.
    if (!inGhostContext() && V.Type == TypeKind::Id && V.Ghost &&
        !A.Value->Ghost && !isa<NullLitExpr>(A.Value.get()) &&
        !isa<ArgExpr>(A.Value.get()))
      Diags.error(S.getLoc(),
                  "ghost id variable '" + V.Name +
                      "' assigned a real machine identifier; machine "
                      "identifiers must be completely separated");
    return;
  }
  case Stmt::Kind::New: {
    auto &N = *cast<NewStmt>(&S);
    if (InModel) {
      Diags.error(S.getLoc(), "model bodies cannot create machines");
      return;
    }
    N.MachineIndex = Prog.findMachine(N.MachineName);
    if (N.MachineIndex < 0) {
      Diags.error(S.getLoc(), "unknown machine '" + N.MachineName + "'");
      return;
    }
    MachineDecl &Target = Prog.Machines[N.MachineIndex];
    if (!N.Target.empty()) {
      N.VarIndex = CurMachine->findVar(N.Target);
      if (N.VarIndex < 0) {
        Diags.error(S.getLoc(), "unknown variable '" + N.Target +
                                    "' in machine '" + CurMachine->Name +
                                    "'");
      } else {
        const VarDecl &V = CurMachine->Vars[N.VarIndex];
        if (V.Type != TypeKind::Id)
          Diags.error(S.getLoc(), "variable '" + V.Name +
                                      "' must have type id to hold a "
                                      "machine identifier");
        if (!inGhostContext()) {
          if (Target.Ghost && !V.Ghost)
            Diags.error(S.getLoc(),
                        "identifier of ghost machine '" + Target.Name +
                            "' stored in real variable '" + V.Name + "'");
          if (!Target.Ghost && V.Ghost)
            Diags.error(S.getLoc(),
                        "identifier of real machine '" + Target.Name +
                            "' stored in ghost variable '" + V.Name + "'");
        }
      }
    }
    if (!inGhostContext() && !Target.Ghost && N.Target.empty())
      Diags.warning(S.getLoc(), "created machine identifier is discarded");
    for (Initializer &Init : N.Inits) {
      Init.VarIndex = Target.findVar(Init.Field);
      SemaType T = checkExpr(*Init.Value);
      if (Init.VarIndex < 0) {
        Diags.error(Init.Loc, "machine '" + Target.Name +
                                  "' has no variable '" + Init.Field + "'");
        continue;
      }
      const VarDecl &Field = Target.Vars[Init.VarIndex];
      if (!T.compatibleWith(Field.Type))
        Diags.error(Init.Loc, "initializer for '" + Init.Field +
                                  "' has type " + T.str() + ", expected " +
                                  typeName(Field.Type));
      if (!inGhostContext() && !Target.Ghost && !Field.Ghost &&
          Init.Value->Ghost)
        Diags.error(Init.Loc, "real field '" + Init.Field +
                                  "' initialized with a ghost value");
    }
    return;
  }
  case Stmt::Kind::Delete:
    if (InModel)
      Diags.error(S.getLoc(), "model bodies cannot delete machines");
    return;
  case Stmt::Kind::Send: {
    auto &Snd = *cast<SendStmt>(&S);
    if (InModel) {
      Diags.error(S.getLoc(), "model bodies cannot send events");
      return;
    }
    SemaType TargetTy = checkExpr(*Snd.Target);
    SemaType EventTy = checkExpr(*Snd.Event);
    SemaType PayloadTy = SemaType::any();
    if (Snd.Payload)
      PayloadTy = checkExpr(*Snd.Payload);
    if (!TargetTy.compatibleWith(TypeKind::Id))
      Diags.error(S.getLoc(), "send target has type " + TargetTy.str() +
                                  ", expected id");
    if (!EventTy.compatibleWith(TypeKind::Event))
      Diags.error(S.getLoc(), "send event has type " + EventTy.str() +
                                  ", expected event");
    checkEventPayload(*Snd.Event, Snd.Payload.get(), S.getLoc(), "send");
    if (Snd.Payload) {
      if (const auto *Lit = dyn_cast<EventLitExpr>(Snd.Event.get())) {
        if (Lit->EventId >= 0) {
          TypeKind Want = Prog.Events[Lit->EventId].PayloadType;
          if (Want != TypeKind::Void && !PayloadTy.compatibleWith(Want))
            Diags.error(Snd.Payload->getLoc(),
                        "payload of event '" + Lit->Name + "' has type " +
                            PayloadTy.str() + ", expected " +
                            typeName(Want));
        }
      }
    }
    if (!inGhostContext()) {
      // A send whose target is ghost is itself ghost (erased). A send to
      // a real machine must not depend on ghost state at all.
      if (!Snd.Target->Ghost) {
        requireReal(*Snd.Event, "event of a send to a real machine");
        if (Snd.Payload)
          requireReal(*Snd.Payload, "payload of a send to a real machine");
        if (const auto *Lit = dyn_cast<EventLitExpr>(Snd.Event.get()))
          if (Lit->EventId >= 0 && Prog.Events[Lit->EventId].Ghost)
            Diags.error(S.getLoc(), "ghost event '" + Lit->Name +
                                        "' sent to a real machine");
      }
    }
    return;
  }
  case Stmt::Kind::Raise: {
    auto &R = *cast<RaiseStmt>(&S);
    if (InModel) {
      Diags.error(S.getLoc(), "model bodies cannot raise events");
      return;
    }
    SemaType EventTy = checkExpr(*R.Event);
    if (R.Payload)
      checkExpr(*R.Payload);
    if (!EventTy.compatibleWith(TypeKind::Event))
      Diags.error(S.getLoc(), "raise event has type " + EventTy.str() +
                                  ", expected event");
    checkEventPayload(*R.Event, R.Payload.get(), S.getLoc(), "raise");
    if (!inGhostContext()) {
      requireReal(*R.Event, "raised event");
      if (R.Payload)
        requireReal(*R.Payload, "payload of a raised event");
      if (const auto *Lit = dyn_cast<EventLitExpr>(R.Event.get()))
        if (Lit->EventId >= 0 && Prog.Events[Lit->EventId].Ghost)
          Diags.error(S.getLoc(), "ghost event '" + Lit->Name +
                                      "' raised in a real machine");
    }
    return;
  }
  case Stmt::Kind::Leave:
    if (CurBody != BodyKind::Entry)
      Diags.error(S.getLoc(), "'leave' is only allowed in entry statements");
    return;
  case Stmt::Kind::Return:
    if (InModel)
      Diags.error(S.getLoc(),
                  "'return' is not allowed in model bodies; assign "
                  "'result' instead");
    return;
  case Stmt::Kind::Assert: {
    // Asserts may freely read ghost state; ghost-dependent asserts are
    // erased during compilation (Section 3.3).
    auto &A = *cast<AssertStmt>(&S);
    SemaType T = checkExpr(*A.Cond);
    if (!T.compatibleWith(TypeKind::Bool))
      Diags.error(A.Cond->getLoc(), "assert condition has type " + T.str() +
                                        ", expected bool");
    return;
  }
  case Stmt::Kind::If: {
    auto &I = *cast<IfStmt>(&S);
    SemaType T = checkExpr(*I.Cond);
    if (!T.compatibleWith(TypeKind::Bool))
      Diags.error(I.Cond->getLoc(), "if condition has type " + T.str() +
                                        ", expected bool");
    requireReal(*I.Cond, "branch condition");
    checkStmt(*I.Then);
    if (I.Else)
      checkStmt(*I.Else);
    return;
  }
  case Stmt::Kind::While: {
    auto &W = *cast<WhileStmt>(&S);
    SemaType T = checkExpr(*W.Cond);
    if (!T.compatibleWith(TypeKind::Bool))
      Diags.error(W.Cond->getLoc(), "while condition has type " + T.str() +
                                        ", expected bool");
    requireReal(*W.Cond, "loop condition");
    checkStmt(*W.Body);
    return;
  }
  case Stmt::Kind::CallState: {
    auto &C = *cast<CallStateStmt>(&S);
    if (InModel) {
      Diags.error(S.getLoc(), "model bodies cannot call states");
      return;
    }
    C.StateIndex = CurMachine->findState(C.StateName);
    if (C.StateIndex < 0)
      Diags.error(S.getLoc(), "unknown state '" + C.StateName +
                                  "' in machine '" + CurMachine->Name + "'");
    return;
  }
  case Stmt::Kind::ExprStmt:
    checkExpr(*cast<ExprStmt>(&S)->E);
    return;
  }
}

bool p::analyze(Program &Prog, DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  SemaChecker Checker(Prog, Diags);
  Checker.run();
  return Diags.errorCount() == Before;
}
