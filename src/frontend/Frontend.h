//===- frontend/Frontend.h - One-call compilation pipeline -----------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry points: P source text -> lexer -> parser -> Sema ->
/// lowering. This is the API examples, tests and tools use.
///
//===----------------------------------------------------------------------===//

#ifndef P_FRONTEND_FRONTEND_H
#define P_FRONTEND_FRONTEND_H

#include "ast/AST.h"
#include "pir/Lowering.h"
#include "pir/Program.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>

namespace p {

/// Result of compiling one source buffer.
struct CompileResult {
  /// Set on success (no errors in Diags).
  std::optional<CompiledProgram> Program;
  DiagnosticEngine Diags;

  bool ok() const { return Program.has_value(); }
};

/// Parses and analyzes \p Source; returns the annotated AST (even when
/// partially erroneous) plus diagnostics.
Program parseAndAnalyze(const std::string &Source, DiagnosticEngine &Diags);

/// Full pipeline: source text to CompiledProgram.
CompileResult compileString(const std::string &Source,
                            const LowerOptions &Opts = {});

} // namespace p

#endif // P_FRONTEND_FRONTEND_H
