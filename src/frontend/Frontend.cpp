//===- frontend/Frontend.cpp -------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"

#include "lexer/Lexer.h"
#include "parser/Parser.h"
#include "sema/Sema.h"

using namespace p;

Program p::parseAndAnalyze(const std::string &Source,
                           DiagnosticEngine &Diags) {
  Lexer Lex(Source);
  Parser P(Lex.lexAll(), Diags);
  Program Prog = P.parseProgram();
  if (!Diags.hasErrors())
    analyze(Prog, Diags);
  return Prog;
}

CompileResult p::compileString(const std::string &Source,
                               const LowerOptions &Opts) {
  CompileResult Result;
  Program Prog = parseAndAnalyze(Source, Result.Diags);
  if (Result.Diags.hasErrors())
    return Result;
  Result.Program = lower(Prog, Opts);
  return Result;
}
