//===- parser/Parser.h - Recursive-descent parser for P -------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing the AST of ast/AST.h. Errors are
/// reported to a DiagnosticEngine; the parser synchronizes at statement
/// and declaration boundaries so several errors can be reported per run.
///
/// The parser resolves one context-sensitivity: a bare identifier in
/// expression position becomes an EventLitExpr when it names a declared
/// event (event declarations lexically precede machines, as in the
/// paper's grammar), a ForeignCallExpr when followed by `(`, and a
/// VarRefExpr otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef P_PARSER_PARSER_H
#define P_PARSER_PARSER_H

#include "ast/AST.h"
#include "lexer/Token.h"
#include "support/Diagnostics.h"

#include <optional>
#include <set>
#include <vector>

namespace p {

/// Parses one P source buffer into a Program.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  /// Parses a whole program. Returns the (possibly partial) program;
  /// check Diags for errors.
  Program parseProgram();

  /// Parses a single statement; used by unit tests.
  StmtPtr parseStandaloneStmt();

  /// Parses a single expression; used by unit tests.
  ExprPtr parseStandaloneExpr();

private:
  const Token &peek(unsigned Ahead = 0) const;
  const Token &current() const { return peek(); }
  Token consume();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool match(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void syncToDeclBoundary();
  void syncToStmtBoundary();

  void parseEventDecl(Program &Prog, bool Ghost);
  void parseMachineDecl(Program &Prog, bool Ghost, bool Main,
                        bool Symmetric);
  void parseVarDecl(MachineDecl &M, bool Ghost);
  void parseStateDecl(MachineDecl &M);
  void parseActionDecl(MachineDecl &M);
  void parseForeignDecl(MachineDecl &M);
  std::optional<TypeKind> parseType();

  StmtPtr parseStmt();
  StmtPtr parseBlock();
  StmtPtr parseIdentifierStmt();
  std::vector<Initializer> parseInitializers();

  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseComparison();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();
  std::vector<ExprPtr> parseCallArgs();

  std::vector<Token> Tokens;
  size_t Pos = 0;
  DiagnosticEngine &Diags;
  std::set<std::string> EventNames;
};

} // namespace p

#endif // P_PARSER_PARSER_H
