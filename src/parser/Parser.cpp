//===- parser/Parser.cpp ----------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include <cassert>

using namespace p;

Parser::Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() && this->Tokens.back().is(TokenKind::Eof) &&
         "token stream must end with Eof");
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1;
  return Tokens[Index];
}

Token Parser::consume() {
  Token T = current();
  if (!T.is(TokenKind::Eof))
    ++Pos;
  return T;
}

bool Parser::match(TokenKind Kind) {
  if (!check(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (match(Kind))
    return true;
  Diags.error(current().Loc, std::string("expected ") + tokenKindName(Kind) +
                                 " " + Context + ", found " +
                                 tokenKindName(current().Kind));
  return false;
}

void Parser::syncToDeclBoundary() {
  while (!check(TokenKind::Eof)) {
    if (check(TokenKind::KwEvent) || check(TokenKind::KwMachine) ||
        check(TokenKind::KwGhost) || check(TokenKind::KwMain) ||
        check(TokenKind::KwState) || check(TokenKind::KwVar) ||
        check(TokenKind::KwAction) || check(TokenKind::RBrace))
      return;
    consume();
  }
}

void Parser::syncToStmtBoundary() {
  while (!check(TokenKind::Eof)) {
    if (match(TokenKind::Semi))
      return;
    if (check(TokenKind::RBrace))
      return;
    consume();
  }
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

Program Parser::parseProgram() {
  Program Prog;
  while (!check(TokenKind::Eof)) {
    if (current().is(TokenKind::Error)) {
      Diags.error(current().Loc, current().Text);
      consume();
      continue;
    }
    bool Ghost = false;
    bool Main = false;
    bool Symmetric = false;
    while (check(TokenKind::KwGhost) || check(TokenKind::KwMain) ||
           check(TokenKind::KwSymmetric)) {
      if (match(TokenKind::KwGhost))
        Ghost = true;
      else if (match(TokenKind::KwMain))
        Main = true;
      else if (match(TokenKind::KwSymmetric))
        Symmetric = true;
    }
    if (check(TokenKind::KwEvent)) {
      if (Main)
        Diags.error(current().Loc, "'main' cannot qualify an event");
      if (Symmetric)
        Diags.error(current().Loc, "'symmetric' cannot qualify an event");
      parseEventDecl(Prog, Ghost);
      continue;
    }
    if (check(TokenKind::KwMachine)) {
      if (Main && Symmetric)
        Diags.error(current().Loc,
                    "'symmetric' cannot qualify the main machine (it is "
                    "a singleton)");
      parseMachineDecl(Prog, Ghost, Main, Symmetric);
      continue;
    }
    Diags.error(current().Loc,
                std::string("expected 'event' or 'machine' at top level, "
                            "found ") +
                    tokenKindName(current().Kind));
    consume();
    syncToDeclBoundary();
  }
  return Prog;
}

void Parser::parseEventDecl(Program &Prog, bool Ghost) {
  consume(); // 'event'
  do {
    EventDecl E;
    E.Ghost = Ghost;
    E.Loc = current().Loc;
    if (!check(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected event name");
      syncToStmtBoundary();
      return;
    }
    E.Name = consume().Text;
    if (match(TokenKind::LParen)) {
      if (auto T = parseType())
        E.PayloadType = *T;
      expect(TokenKind::RParen, "after event payload type");
    }
    EventNames.insert(E.Name);
    Prog.Events.push_back(std::move(E));
  } while (match(TokenKind::Comma));
  expect(TokenKind::Semi, "after event declaration");
}

void Parser::parseMachineDecl(Program &Prog, bool Ghost, bool Main,
                              bool Symmetric) {
  consume(); // 'machine'
  MachineDecl M;
  M.Ghost = Ghost;
  M.Main = Main;
  M.Symmetric = Symmetric;
  M.Loc = current().Loc;
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected machine name");
    syncToDeclBoundary();
    return;
  }
  M.Name = consume().Text;
  if (!expect(TokenKind::LBrace, "to open machine body")) {
    syncToDeclBoundary();
    return;
  }
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    bool VarGhost = false;
    if (check(TokenKind::KwGhost) && peek(1).is(TokenKind::KwVar)) {
      consume();
      VarGhost = true;
    }
    if (check(TokenKind::KwVar)) {
      parseVarDecl(M, VarGhost);
      continue;
    }
    if (check(TokenKind::KwState)) {
      parseStateDecl(M);
      continue;
    }
    if (check(TokenKind::KwAction)) {
      parseActionDecl(M);
      continue;
    }
    if (check(TokenKind::KwForeign)) {
      parseForeignDecl(M);
      continue;
    }
    Diags.error(current().Loc,
                std::string("expected a var/state/action/foreign "
                            "declaration in machine body, found ") +
                    tokenKindName(current().Kind));
    consume();
    syncToDeclBoundary();
  }
  expect(TokenKind::RBrace, "to close machine body");
  Prog.Machines.push_back(std::move(M));
}

void Parser::parseVarDecl(MachineDecl &M, bool Ghost) {
  consume(); // 'var'
  do {
    VarDecl V;
    V.Ghost = Ghost;
    V.Loc = current().Loc;
    if (!check(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected variable name");
      syncToStmtBoundary();
      return;
    }
    V.Name = consume().Text;
    if (expect(TokenKind::Colon, "after variable name")) {
      if (auto T = parseType())
        V.Type = *T;
    }
    M.Vars.push_back(std::move(V));
  } while (match(TokenKind::Comma));
  expect(TokenKind::Semi, "after variable declaration");
}

std::optional<TypeKind> Parser::parseType() {
  switch (current().Kind) {
  case TokenKind::KwVoid:
    consume();
    return TypeKind::Void;
  case TokenKind::KwBool:
    consume();
    return TypeKind::Bool;
  case TokenKind::KwInt:
    consume();
    return TypeKind::Int;
  case TokenKind::KwEvent:
    consume();
    return TypeKind::Event;
  case TokenKind::KwId:
    consume();
    return TypeKind::Id;
  default:
    Diags.error(current().Loc,
                std::string("expected a type, found ") +
                    tokenKindName(current().Kind));
    return std::nullopt;
  }
}

void Parser::parseStateDecl(MachineDecl &M) {
  consume(); // 'state'
  StateDecl St;
  St.Loc = current().Loc;
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected state name");
    syncToDeclBoundary();
    return;
  }
  St.Name = consume().Text;
  if (!expect(TokenKind::LBrace, "to open state body")) {
    syncToDeclBoundary();
    return;
  }
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    if (check(TokenKind::KwDefer) || check(TokenKind::KwPostpone)) {
      bool IsDefer = check(TokenKind::KwDefer);
      consume();
      do {
        if (!check(TokenKind::Identifier)) {
          Diags.error(current().Loc, "expected event name");
          break;
        }
        std::string Name = consume().Text;
        if (IsDefer)
          St.Deferred.push_back(std::move(Name));
        else
          St.Postponed.push_back(std::move(Name));
      } while (match(TokenKind::Comma));
      expect(TokenKind::Semi, IsDefer ? "after defer clause"
                                      : "after postpone clause");
      continue;
    }
    if (check(TokenKind::KwEntry)) {
      SourceLoc Loc = consume().Loc;
      if (St.Entry)
        Diags.error(Loc, "state '" + St.Name +
                             "' has more than one entry statement");
      St.Entry = parseBlock();
      continue;
    }
    if (check(TokenKind::KwExit)) {
      SourceLoc Loc = consume().Loc;
      if (St.Exit)
        Diags.error(Loc,
                    "state '" + St.Name + "' has more than one exit statement");
      St.Exit = parseBlock();
      continue;
    }
    if (check(TokenKind::KwOn)) {
      HandlerDecl H;
      H.Loc = consume().Loc;
      if (!check(TokenKind::Identifier)) {
        Diags.error(current().Loc, "expected event name after 'on'");
        syncToStmtBoundary();
        continue;
      }
      H.EventName = consume().Text;
      if (match(TokenKind::KwGoto)) {
        H.Kind = HandlerKind::Step;
      } else if (match(TokenKind::KwPush)) {
        H.Kind = HandlerKind::Call;
      } else if (match(TokenKind::KwDo)) {
        H.Kind = HandlerKind::Do;
      } else {
        Diags.error(current().Loc,
                    "expected 'goto', 'push' or 'do' in handler");
        syncToStmtBoundary();
        continue;
      }
      if (!check(TokenKind::Identifier)) {
        Diags.error(current().Loc, "expected handler target name");
        syncToStmtBoundary();
        continue;
      }
      H.Target = consume().Text;
      expect(TokenKind::Semi, "after handler");
      St.Handlers.push_back(std::move(H));
      continue;
    }
    Diags.error(current().Loc,
                std::string("expected defer/postpone/entry/exit/on in state "
                            "body, found ") +
                    tokenKindName(current().Kind));
    consume();
    syncToStmtBoundary();
  }
  expect(TokenKind::RBrace, "to close state body");
  M.States.push_back(std::move(St));
}

void Parser::parseActionDecl(MachineDecl &M) {
  consume(); // 'action'
  ActionDecl A;
  A.Loc = current().Loc;
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected action name");
    syncToDeclBoundary();
    return;
  }
  A.Name = consume().Text;
  A.Body = parseBlock();
  M.Actions.push_back(std::move(A));
}

void Parser::parseForeignDecl(MachineDecl &M) {
  consume(); // 'foreign'
  ForeignFunDecl F;
  F.Loc = current().Loc;
  if (!expect(TokenKind::KwFun, "after 'foreign'")) {
    syncToDeclBoundary();
    return;
  }
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected foreign function name");
    syncToDeclBoundary();
    return;
  }
  F.Name = consume().Text;
  expect(TokenKind::LParen, "to open parameter list");
  if (!check(TokenKind::RParen)) {
    do {
      ParamDecl Param;
      Param.Loc = current().Loc;
      if (!check(TokenKind::Identifier)) {
        Diags.error(current().Loc, "expected parameter name");
        break;
      }
      Param.Name = consume().Text;
      if (expect(TokenKind::Colon, "after parameter name")) {
        if (auto T = parseType())
          Param.Type = *T;
      }
      F.Params.push_back(std::move(Param));
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close parameter list");
  if (match(TokenKind::Colon)) {
    if (auto T = parseType())
      F.ReturnType = *T;
  }
  if (check(TokenKind::KwModel)) {
    consume();
    F.ModelBody = parseBlock();
  } else {
    expect(TokenKind::Semi, "after foreign function declaration");
  }
  M.Funs.push_back(std::move(F));
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Parser::parseBlock() {
  SourceLoc Loc = current().Loc;
  if (!expect(TokenKind::LBrace, "to open block")) {
    syncToStmtBoundary();
    return std::make_unique<SkipStmt>(Loc);
  }
  std::vector<StmtPtr> Stmts;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    if (StmtPtr S = parseStmt())
      Stmts.push_back(std::move(S));
  }
  expect(TokenKind::RBrace, "to close block");
  return std::make_unique<BlockStmt>(std::move(Stmts), Loc);
}

StmtPtr Parser::parseStmt() {
  SourceLoc Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::KwSkip:
    consume();
    expect(TokenKind::Semi, "after 'skip'");
    return std::make_unique<SkipStmt>(Loc);
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwDelete:
    consume();
    expect(TokenKind::Semi, "after 'delete'");
    return std::make_unique<DeleteStmt>(Loc);
  case TokenKind::KwLeave:
    consume();
    expect(TokenKind::Semi, "after 'leave'");
    return std::make_unique<LeaveStmt>(Loc);
  case TokenKind::KwReturn:
    consume();
    expect(TokenKind::Semi, "after 'return'");
    return std::make_unique<ReturnStmt>(Loc);
  case TokenKind::KwSend: {
    consume();
    expect(TokenKind::LParen, "after 'send'");
    ExprPtr Target = parseExpr();
    expect(TokenKind::Comma, "after send target");
    ExprPtr Event = parseExpr();
    ExprPtr Payload;
    if (match(TokenKind::Comma))
      Payload = parseExpr();
    expect(TokenKind::RParen, "to close send arguments");
    expect(TokenKind::Semi, "after 'send' statement");
    return std::make_unique<SendStmt>(std::move(Target), std::move(Event),
                                      std::move(Payload), Loc);
  }
  case TokenKind::KwRaise: {
    consume();
    expect(TokenKind::LParen, "after 'raise'");
    ExprPtr Event = parseExpr();
    ExprPtr Payload;
    if (match(TokenKind::Comma))
      Payload = parseExpr();
    expect(TokenKind::RParen, "to close raise arguments");
    expect(TokenKind::Semi, "after 'raise' statement");
    return std::make_unique<RaiseStmt>(std::move(Event), std::move(Payload),
                                       Loc);
  }
  case TokenKind::KwAssert: {
    consume();
    expect(TokenKind::LParen, "after 'assert'");
    ExprPtr Cond = parseExpr();
    expect(TokenKind::RParen, "to close assert condition");
    expect(TokenKind::Semi, "after 'assert' statement");
    return std::make_unique<AssertStmt>(std::move(Cond), Loc);
  }
  case TokenKind::KwIf: {
    consume();
    expect(TokenKind::LParen, "after 'if'");
    ExprPtr Cond = parseExpr();
    expect(TokenKind::RParen, "to close if condition");
    StmtPtr Then = parseStmt();
    StmtPtr Else;
    if (match(TokenKind::KwElse))
      Else = parseStmt();
    return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else), Loc);
  }
  case TokenKind::KwWhile: {
    consume();
    expect(TokenKind::LParen, "after 'while'");
    ExprPtr Cond = parseExpr();
    expect(TokenKind::RParen, "to close while condition");
    StmtPtr Body = parseStmt();
    return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
  }
  case TokenKind::KwCall: {
    consume();
    if (!check(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected state name after 'call'");
      syncToStmtBoundary();
      return nullptr;
    }
    std::string State = consume().Text;
    expect(TokenKind::Semi, "after 'call' statement");
    return std::make_unique<CallStateStmt>(std::move(State), Loc);
  }
  case TokenKind::KwNew: {
    // `new M(...);` with the machine id discarded.
    consume();
    if (!check(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected machine name after 'new'");
      syncToStmtBoundary();
      return nullptr;
    }
    std::string MachineName = consume().Text;
    expect(TokenKind::LParen, "after machine name");
    std::vector<Initializer> Inits = parseInitializers();
    expect(TokenKind::RParen, "to close initializer list");
    expect(TokenKind::Semi, "after 'new' statement");
    return std::make_unique<NewStmt>("", std::move(MachineName),
                                     std::move(Inits), Loc);
  }
  case TokenKind::Identifier:
    return parseIdentifierStmt();
  case TokenKind::Error:
    Diags.error(current().Loc, current().Text);
    consume();
    return nullptr;
  default:
    Diags.error(Loc, std::string("expected a statement, found ") +
                         tokenKindName(current().Kind));
    consume();
    syncToStmtBoundary();
    return nullptr;
  }
}

StmtPtr Parser::parseIdentifierStmt() {
  SourceLoc Loc = current().Loc;
  std::string Name = consume().Text;
  if (match(TokenKind::Assign)) {
    if (check(TokenKind::KwNew)) {
      consume();
      if (!check(TokenKind::Identifier)) {
        Diags.error(current().Loc, "expected machine name after 'new'");
        syncToStmtBoundary();
        return nullptr;
      }
      std::string MachineName = consume().Text;
      expect(TokenKind::LParen, "after machine name");
      std::vector<Initializer> Inits = parseInitializers();
      expect(TokenKind::RParen, "to close initializer list");
      expect(TokenKind::Semi, "after 'new' statement");
      return std::make_unique<NewStmt>(std::move(Name),
                                       std::move(MachineName),
                                       std::move(Inits), Loc);
    }
    ExprPtr Value = parseExpr();
    expect(TokenKind::Semi, "after assignment");
    return std::make_unique<AssignStmt>(std::move(Name), std::move(Value),
                                        Loc);
  }
  if (check(TokenKind::LParen)) {
    std::vector<ExprPtr> Args = parseCallArgs();
    expect(TokenKind::Semi, "after call statement");
    auto Call =
        std::make_unique<ForeignCallExpr>(std::move(Name), std::move(Args),
                                          Loc);
    return std::make_unique<ExprStmt>(std::move(Call), Loc);
  }
  Diags.error(current().Loc,
              "expected '=' or '(' after identifier in statement position");
  syncToStmtBoundary();
  return nullptr;
}

std::vector<Initializer> Parser::parseInitializers() {
  std::vector<Initializer> Inits;
  if (check(TokenKind::RParen))
    return Inits;
  do {
    Initializer Init;
    Init.Loc = current().Loc;
    if (!check(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected field name in initializer");
      break;
    }
    Init.Field = consume().Text;
    if (expect(TokenKind::Assign, "in initializer"))
      Init.Value = parseExpr();
    if (!Init.Value)
      Init.Value = std::make_unique<NullLitExpr>(Init.Loc);
    Inits.push_back(std::move(Init));
  } while (match(TokenKind::Comma));
  return Inits;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() { return parseOr(); }

ExprPtr Parser::parseOr() {
  ExprPtr LHS = parseAnd();
  while (check(TokenKind::OrOr)) {
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parseAnd();
    LHS = std::make_unique<BinaryExpr>(BinaryOp::Or, std::move(LHS),
                                       std::move(RHS), Loc);
  }
  return LHS;
}

ExprPtr Parser::parseAnd() {
  ExprPtr LHS = parseComparison();
  while (check(TokenKind::AndAnd)) {
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parseComparison();
    LHS = std::make_unique<BinaryExpr>(BinaryOp::And, std::move(LHS),
                                       std::move(RHS), Loc);
  }
  return LHS;
}

ExprPtr Parser::parseComparison() {
  ExprPtr LHS = parseAdditive();
  while (true) {
    BinaryOp Op;
    switch (current().Kind) {
    case TokenKind::EqEq:
      Op = BinaryOp::Eq;
      break;
    case TokenKind::NotEq:
      Op = BinaryOp::Ne;
      break;
    case TokenKind::Less:
      Op = BinaryOp::Lt;
      break;
    case TokenKind::LessEq:
      Op = BinaryOp::Le;
      break;
    case TokenKind::Greater:
      Op = BinaryOp::Gt;
      break;
    case TokenKind::GreaterEq:
      Op = BinaryOp::Ge;
      break;
    default:
      return LHS;
    }
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parseAdditive();
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
}

ExprPtr Parser::parseAdditive() {
  ExprPtr LHS = parseMultiplicative();
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    BinaryOp Op = check(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parseMultiplicative();
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
  return LHS;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr LHS = parseUnary();
  while (check(TokenKind::Star) || check(TokenKind::Slash)) {
    BinaryOp Op = check(TokenKind::Star) ? BinaryOp::Mul : BinaryOp::Div;
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parseUnary();
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
  return LHS;
}

ExprPtr Parser::parseUnary() {
  if (check(TokenKind::Not)) {
    SourceLoc Loc = consume().Loc;
    return std::make_unique<UnaryExpr>(UnaryOp::Not, parseUnary(), Loc);
  }
  if (check(TokenKind::Minus)) {
    SourceLoc Loc = consume().Loc;
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, parseUnary(), Loc);
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::IntLiteral: {
    int64_t Value = consume().IntValue;
    return std::make_unique<IntLitExpr>(Value, Loc);
  }
  case TokenKind::KwTrue:
    consume();
    return std::make_unique<BoolLitExpr>(true, Loc);
  case TokenKind::KwFalse:
    consume();
    return std::make_unique<BoolLitExpr>(false, Loc);
  case TokenKind::KwNull:
    consume();
    return std::make_unique<NullLitExpr>(Loc);
  case TokenKind::KwThis:
    consume();
    return std::make_unique<ThisExpr>(Loc);
  case TokenKind::KwMsg:
    consume();
    return std::make_unique<MsgExpr>(Loc);
  case TokenKind::KwArg:
    consume();
    return std::make_unique<ArgExpr>(Loc);
  case TokenKind::Star:
    // `*` in expression-start position is nondeterministic choice.
    consume();
    return std::make_unique<NondetExpr>(Loc);
  case TokenKind::LParen: {
    consume();
    ExprPtr Inner = parseExpr();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return Inner;
  }
  case TokenKind::Identifier: {
    std::string Name = consume().Text;
    if (check(TokenKind::LParen)) {
      std::vector<ExprPtr> Args = parseCallArgs();
      return std::make_unique<ForeignCallExpr>(std::move(Name),
                                               std::move(Args), Loc);
    }
    if (EventNames.count(Name))
      return std::make_unique<EventLitExpr>(std::move(Name), Loc);
    return std::make_unique<VarRefExpr>(std::move(Name), Loc);
  }
  case TokenKind::Error:
    Diags.error(Loc, current().Text);
    consume();
    return std::make_unique<NullLitExpr>(Loc);
  default:
    Diags.error(Loc, std::string("expected an expression, found ") +
                         tokenKindName(current().Kind));
    consume();
    return std::make_unique<NullLitExpr>(Loc);
  }
}

std::vector<ExprPtr> Parser::parseCallArgs() {
  std::vector<ExprPtr> Args;
  expect(TokenKind::LParen, "to open argument list");
  if (!check(TokenKind::RParen)) {
    do {
      Args.push_back(parseExpr());
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close argument list");
  return Args;
}

StmtPtr Parser::parseStandaloneStmt() { return parseStmt(); }

ExprPtr Parser::parseStandaloneExpr() { return parseExpr(); }
