//===- support/Hashing.h - Hash combinators -------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small deterministic hashing utilities used by the model checker's state
/// fingerprinting. FNV-1a over bytes plus a 64-bit mix-based combiner.
/// Determinism across runs matters: explored-state counts reported by the
/// benchmarks must be reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef P_SUPPORT_HASHING_H
#define P_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace p {

/// 64-bit FNV-1a over a byte range.
inline uint64_t hashBytes(const void *Data, size_t Len,
                          uint64_t Seed = 0xcbf29ce484222325ULL) {
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t Hash = Seed;
  for (size_t I = 0; I != Len; ++I) {
    Hash ^= Bytes[I];
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

/// Mixes a new 64-bit value into an accumulated hash (splitmix64 finalizer).
inline uint64_t hashCombine(uint64_t Hash, uint64_t Value) {
  uint64_t X = Hash ^ (Value + 0x9e3779b97f4a7c15ULL + (Hash << 6) +
                       (Hash >> 2));
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

/// Convenience overload hashing a string's contents.
inline uint64_t hashString(const std::string &S, uint64_t Seed = 0) {
  return hashBytes(S.data(), S.size(),
                   Seed ? Seed : 0xcbf29ce484222325ULL);
}

} // namespace p

#endif // P_SUPPORT_HASHING_H
