//===- support/Diagnostics.h - Diagnostic collection ----------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic engine shared by the lexer, parser and semantic analysis.
/// The library never throws; phases report problems through a
/// DiagnosticEngine and callers inspect it afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef P_SUPPORT_DIAGNOSTICS_H
#define P_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace p {

/// Severity of a reported diagnostic.
enum class DiagSeverity { Note, Warning, Error };

/// A single diagnostic message with its source location.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;

  /// Renders e.g. "3:14: error: duplicate state name 'Init'".
  std::string str() const;
};

/// Accumulates diagnostics produced while processing one program.
class DiagnosticEngine {
public:
  /// Reports an error at \p Loc.
  void error(SourceLoc Loc, std::string Message);

  /// Reports a warning at \p Loc.
  void warning(SourceLoc Loc, std::string Message);

  /// Reports a note at \p Loc.
  void note(SourceLoc Loc, std::string Message);

  /// True if at least one error was reported.
  bool hasErrors() const { return NumErrors != 0; }

  unsigned errorCount() const { return NumErrors; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics rendered one per line; handy in tests and tools.
  std::string str() const;

  /// Drops all recorded diagnostics.
  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace p

#endif // P_SUPPORT_DIAGNOSTICS_H
