//===- support/Interrupt.cpp -------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Interrupt.h"

#include "checker/Checker.h"

#include <csignal>
#include <cstdio>

using namespace p;

namespace {

std::atomic<bool> Requested{false};
std::atomic<int> Signal{0};

extern "C" void onSignal(int Sig) {
  Requested.store(true, std::memory_order_relaxed);
  Signal.store(Sig, std::memory_order_relaxed);
  // One cooperative chance: a repeat of the same signal gets the
  // default (fatal) disposition, so a search wedged before its next
  // poll point can still be killed.
  std::signal(Sig, SIG_DFL);
}

} // namespace

void interrupt::installHandlers() {
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
}

const std::atomic<bool> &interrupt::flag() { return Requested; }

bool interrupt::requested() {
  return Requested.load(std::memory_order_relaxed);
}

int interrupt::signalNumber() {
  return Signal.load(std::memory_order_relaxed);
}

int interrupt::exitCode() { return 128 + signalNumber(); }

void interrupt::printInterruptedStats(const CheckStats &Stats) {
  std::fprintf(
      stderr,
      "interrupted (%s): partial results — states=%llu nodes=%llu "
      "terminals=%llu max_depth=%d elapsed=%.3fs omission_possible=%d "
      "checkpoints_written=%llu\n",
      signalNumber() == SIGTERM ? "SIGTERM"
      : signalNumber() == SIGINT ? "SIGINT"
                                 : "interrupt flag",
      static_cast<unsigned long long>(Stats.DistinctStates),
      static_cast<unsigned long long>(Stats.NodesExplored),
      static_cast<unsigned long long>(Stats.Terminals), Stats.MaxDepth,
      Stats.Seconds, Stats.OmissionPossible ? 1 : 0,
      static_cast<unsigned long long>(Stats.CheckpointsWritten));
}
