//===- support/AtomicFile.cpp ------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace p;

bool p::writeFileAtomic(const std::string &Path, const std::string &Content,
                        std::string *Why) {
  auto Fail = [&](const std::string &What, const std::string &Temp) {
    if (Why)
      *Why = What + " " + (Temp.empty() ? Path : Temp) + ": " +
             std::strerror(errno);
    if (!Temp.empty())
      std::remove(Temp.c_str());
    return false;
  };

  // Sibling temp name: same directory, so the final rename cannot cross
  // a filesystem boundary (rename is only atomic within one).
  const std::string Temp =
      Path + ".tmp." + std::to_string(static_cast<unsigned long>(
#if defined(__unix__) || defined(__APPLE__)
                           ::getpid()
#else
                           0
#endif
                               ));

  std::FILE *F = std::fopen(Temp.c_str(), "wb");
  if (!F)
    return Fail("cannot open", Temp);
  if (!Content.empty() &&
      std::fwrite(Content.data(), 1, Content.size(), F) != Content.size()) {
    std::fclose(F);
    return Fail("cannot write", Temp);
  }
  if (std::fflush(F) != 0) {
    std::fclose(F);
    return Fail("cannot flush", Temp);
  }
#if defined(__unix__) || defined(__APPLE__)
  // Push the bytes to stable storage before the rename publishes them:
  // without this, a crash can leave a *renamed* but empty file.
  if (::fsync(::fileno(F)) != 0) {
    std::fclose(F);
    return Fail("cannot fsync", Temp);
  }
#endif
  if (std::fclose(F) != 0)
    return Fail("cannot close", Temp);
  if (std::rename(Temp.c_str(), Path.c_str()) != 0)
    return Fail("cannot rename into", Temp);
  return true;
}
