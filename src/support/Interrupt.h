//===- support/Interrupt.h - Cooperative SIGINT/SIGTERM handling -----------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide cooperative interruption. Benches and verifiers install
/// the handlers once; SIGINT/SIGTERM then merely set an atomic flag that
/// long-running work (CheckOptions::InterruptFlag) polls, so a Ctrl-C
/// ends a multi-hour search with a final checkpoint and a partial-stats
/// report instead of silent data loss. A second signal of the same kind
/// restores the default disposition, so a wedged process can still be
/// killed the ordinary way.
///
//===----------------------------------------------------------------------===//

#ifndef P_SUPPORT_INTERRUPT_H
#define P_SUPPORT_INTERRUPT_H

#include <atomic>

namespace p {

struct CheckStats;

namespace interrupt {

/// Installs SIGINT and SIGTERM handlers that set the flag below.
/// Idempotent; async-signal-safe by construction (the handler only
/// stores to an atomic and re-arms the default disposition).
void installHandlers();

/// The flag the handlers set. Pass `&interrupt::flag()` as
/// CheckOptions::InterruptFlag so a search can end cooperatively.
const std::atomic<bool> &flag();

/// True once a handled signal arrived.
bool requested();

/// The last signal number delivered (0 when none); exit with
/// 128 + this, the shell convention for death-by-signal.
int signalNumber();

/// Standard partial-results report for an interrupted check() run:
/// one stderr block naming the snapshot (states, nodes, elapsed,
/// OmissionPossible) so an interrupted bench never dies silently.
void printInterruptedStats(const CheckStats &Stats);

/// 128 + signalNumber(), the conventional exit code after cleanup.
int exitCode();

} // namespace interrupt
} // namespace p

#endif // P_SUPPORT_INTERRUPT_H
