//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style. Class hierarchies opt in by exposing a
/// Kind discriminator and a static `classof(const Base *)` predicate; the
/// `isa<>`, `cast<>` and `dyn_cast<>` templates then provide checked
/// downcasts without compiler RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef P_SUPPORT_CASTING_H
#define P_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace p {

/// Returns true if \p Val is an instance of type To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(To::classof(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast (const overload).
template <typename To, typename From> const To *cast(const From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(To::classof(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns nullptr when \p Val is not a To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  assert(Val && "dyn_cast<> used on a null pointer");
  return To::classof(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast (const overload).
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  assert(Val && "dyn_cast<> used on a null pointer");
  return To::classof(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast<>, but tolerates a null argument.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace p

#endif // P_SUPPORT_CASTING_H
