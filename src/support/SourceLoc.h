//===- support/SourceLoc.h - Source locations for diagnostics ------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source coordinates attached to tokens, AST nodes and
/// diagnostics. A location is (line, column), both 1-based; line 0 denotes
/// "unknown" (e.g. synthesized nodes).
///
//===----------------------------------------------------------------------===//

#ifndef P_SUPPORT_SOURCELOC_H
#define P_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace p {

/// A (line, column) pair identifying a point in a P source buffer.
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  /// Whether this location refers to real source text.
  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &O) const = default;

  /// Renders the location as "line:col" (or "<unknown>").
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

} // namespace p

#endif // P_SUPPORT_SOURCELOC_H
