//===- support/AtomicFile.h - Crash-safe file replacement ------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Atomic whole-file writes: write a sibling temp file, flush it to
/// stable storage (fsync where the platform has it), then rename over
/// the destination. A reader — or a resumed run — therefore sees either
/// the complete previous contents or the complete new contents, never a
/// truncated artifact, even when the writer dies mid-write. Used by the
/// checkpoint layer and by every JSON report emitter.
///
//===----------------------------------------------------------------------===//

#ifndef P_SUPPORT_ATOMICFILE_H
#define P_SUPPORT_ATOMICFILE_H

#include <string>

namespace p {

/// Replaces the file at \p Path with \p Content atomically (temp file +
/// fsync + rename). On failure returns false, fills \p Why when given,
/// and removes the temp file — the destination is never left truncated.
bool writeFileAtomic(const std::string &Path, const std::string &Content,
                     std::string *Why = nullptr);

} // namespace p

#endif // P_SUPPORT_ATOMICFILE_H
