//===- support/Diagnostics.cpp --------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace p;

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Out;
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += severityName(Severity);
  Out += ": ";
  Out += Message;
  return Out;
}

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}
