//===- checker/Replay.cpp ------------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Replay.h"

#include "runtime/Executor.h"

using namespace p;

ReplayResult p::replaySchedule(const CompiledProgram &Prog,
                               const std::vector<SchedDecision> &Schedule,
                               bool UseModelBodies) {
  Executor::Options EO;
  EO.UseModelBodies = UseModelBodies;
  Executor Exec(Prog, EO);

  ReplayResult Result;
  Result.Final = Exec.makeInitialConfig();

  int32_t LastRun = -1;
  for (const SchedDecision &D : Schedule) {
    switch (D.K) {
    case SchedDecision::Kind::Delay:
      // Pure scheduler bookkeeping; no configuration effect.
      Result.Steps.push_back("delay");
      continue;
    case SchedDecision::Kind::Choose:
      if (LastRun >= 0 &&
          LastRun < static_cast<int32_t>(Result.Final.Machines.size()))
        Result.Final.Machines[LastRun].InjectedChoice = D.Choice;
      Result.Steps.push_back(D.Choice ? "choose true" : "choose false");
      continue;
    case SchedDecision::Kind::Run: {
      LastRun = D.Machine;
      std::string Desc = "run " + Exec.describeMachine(Result.Final,
                                                       D.Machine);
      Executor::StepResult R = Exec.step(Result.Final, D.Machine);
      switch (R.Outcome) {
      case Executor::StepOutcome::Error:
        Result.ErrorReached = true;
        Result.Error = Result.Final.Error;
        Result.ErrorMessage = Result.Final.ErrorMessage;
        Result.Steps.push_back(Desc + " -> error: " +
                               Result.Final.ErrorMessage);
        return Result;
      case Executor::StepOutcome::SchedulingPoint:
        Result.Steps.push_back(Desc + (R.Created ? " -> created "
                                                 : " -> sent to ") +
                               std::to_string(R.Other));
        continue;
      case Executor::StepOutcome::ChoicePoint:
        Result.Steps.push_back(Desc + " -> choice");
        continue;
      case Executor::StepOutcome::Blocked:
        Result.Steps.push_back(Desc + " -> blocked");
        continue;
      case Executor::StepOutcome::Halted:
        Result.Steps.push_back(Desc + " -> halted");
        continue;
      }
      continue;
    }
    }
  }
  return Result;
}
