//===- checker/Replay.cpp ------------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Replay.h"

#include "runtime/Executor.h"

using namespace p;

ReplayResult p::replaySchedule(const CompiledProgram &Prog,
                               const std::vector<SchedDecision> &Schedule,
                               bool UseModelBodies) {
  Executor::Options EO;
  EO.UseModelBodies = UseModelBodies;
  // Schedules produced under foreign fault points carry a ForeignFault
  // decision at every foreign-call stop, so the flag (which moves slice
  // boundaries) is deducible from the schedule alone — fault-carrying
  // counterexamples replay without extra configuration.
  for (const SchedDecision &D : Schedule)
    if (D.K == SchedDecision::Kind::ForeignFault) {
      EO.ForeignFaultPoints = true;
      break;
    }
  Executor Exec(Prog, EO);

  ReplayResult Result;
  Result.Final = Exec.makeInitialConfig();

  int32_t LastRun = -1;
  for (const SchedDecision &D : Schedule) {
    switch (D.K) {
    case SchedDecision::Kind::Delay:
      // Pure scheduler bookkeeping; no configuration effect.
      Result.Steps.push_back("delay");
      continue;
    case SchedDecision::Kind::Choose:
      if (LastRun >= 0 &&
          LastRun < static_cast<int32_t>(Result.Final.Machines.size()))
        Result.Final.mutableMachine(LastRun).InjectedChoice = D.Choice;
      Result.Steps.push_back(D.Choice ? "choose true" : "choose false");
      continue;
    case SchedDecision::Kind::DropEvent:
    case SchedDecision::Kind::DupEvent: {
      auto &Q = Result.Final.mutableMachine(D.Machine).Queue;
      if (D.Aux < 0 || D.Aux >= static_cast<int32_t>(Q.size())) {
        Result.Steps.push_back("fault: stale queue index");
        continue;
      }
      if (D.K == SchedDecision::Kind::DupEvent) {
        Q.push_back(Q[D.Aux]);
        Result.Steps.push_back("fault: duplicate queue entry " +
                               std::to_string(D.Aux) + " of machine " +
                               std::to_string(D.Machine));
      } else {
        Q.erase(Q.begin() + D.Aux);
        Result.Steps.push_back("fault: drop queue entry " +
                               std::to_string(D.Aux) + " of machine " +
                               std::to_string(D.Machine));
      }
      continue;
    }
    case SchedDecision::Kind::Crash:
      Exec.crashMachine(Result.Final, D.Machine);
      Result.Steps.push_back("fault: crash machine " +
                             std::to_string(D.Machine));
      continue;
    case SchedDecision::Kind::ForeignFault:
      if (D.Machine >= 0 &&
          D.Machine < static_cast<int32_t>(Result.Final.Machines.size()))
        Result.Final.mutableMachine(D.Machine).InjectedForeignFail =
            D.Choice;
      Result.Steps.push_back(D.Choice ? "fault: foreign call fails"
                                      : "foreign call succeeds");
      continue;
    case SchedDecision::Kind::Run: {
      LastRun = D.Machine;
      std::string Desc = "run " + Exec.describeMachine(Result.Final,
                                                       D.Machine);
      Executor::StepResult R = Exec.step(Result.Final, D.Machine);
      switch (R.Outcome) {
      case Executor::StepOutcome::Error:
        Result.ErrorReached = true;
        Result.Error = Result.Final.Error;
        Result.ErrorMessage = Result.Final.ErrorMessage;
        Result.Steps.push_back(Desc + " -> error: " +
                               Result.Final.ErrorMessage);
        return Result;
      case Executor::StepOutcome::SchedulingPoint:
        Result.Steps.push_back(Desc + (R.Created ? " -> created "
                                                 : " -> sent to ") +
                               std::to_string(R.Other));
        continue;
      case Executor::StepOutcome::ChoicePoint:
        Result.Steps.push_back(Desc + " -> choice");
        continue;
      case Executor::StepOutcome::Blocked:
        Result.Steps.push_back(Desc + " -> blocked");
        continue;
      case Executor::StepOutcome::Halted:
        Result.Steps.push_back(Desc + " -> halted");
        continue;
      case Executor::StepOutcome::ForeignCall:
        Result.Steps.push_back(Desc + " -> foreign call");
        continue;
      }
      continue;
    }
    }
  }
  return Result;
}
