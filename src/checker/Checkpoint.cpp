//===- checker/Checkpoint.cpp ------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Checkpoint.h"

#include "pir/Bytecode.h"
#include "support/AtomicFile.h"
#include "support/Hashing.h"

#include <array>
#include <cstdio>
#include <cstring>

using namespace p;
using namespace p::ckpt;

//===----------------------------------------------------------------------===//
// CRC-32
//===----------------------------------------------------------------------===//

uint32_t ckpt::crc32(const void *Data, size_t Len) {
  // IEEE 802.3 reflected polynomial, table generated once.
  static const auto Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xedb88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = 0xffffffffu;
  const auto *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I != Len; ++I)
    C = Table[(C ^ P[I]) & 0xffu] ^ (C >> 8);
  return C ^ 0xffffffffu;
}

//===----------------------------------------------------------------------===//
// Scalar codec pieces
//===----------------------------------------------------------------------===//

void ByteWriter::f64(double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V));
  std::memcpy(&Bits, &V, sizeof(Bits));
  u64(Bits);
}

double ByteReader::f64() {
  uint64_t Bits = u64();
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

namespace {

void appendValue(const Value &V, ByteWriter &W) {
  W.u8(static_cast<uint8_t>(V.Kind));
  W.u64(static_cast<uint64_t>(V.Data));
}

Value readValue(ByteReader &R) {
  Value V;
  V.Kind = static_cast<ValueKind>(R.u8());
  V.Data = static_cast<int64_t>(R.u64());
  return V;
}

void appendValues(const std::vector<Value> &Vs, ByteWriter &W) {
  W.u64(Vs.size());
  for (const Value &V : Vs)
    appendValue(V, W);
}

bool readValues(ByteReader &R, std::vector<Value> &Vs) {
  uint64_t N = R.u64();
  if (!R.ok())
    return false;
  Vs.clear();
  Vs.reserve(N);
  for (uint64_t I = 0; I != N; ++I)
    Vs.push_back(readValue(R));
  return R.ok();
}

void appendOptBool(const std::optional<bool> &O, ByteWriter &W) {
  W.u8(!O.has_value() ? 0 : *O ? 2 : 1);
}

std::optional<bool> readOptBool(ByteReader &R) {
  switch (R.u8()) {
  case 1:
    return false;
  case 2:
    return true;
  default:
    return std::nullopt;
  }
}

void appendExecFrame(const ExecFrame &F, ByteWriter &W) {
  W.i32(F.Body);
  W.i32(F.PC);
  W.u8(static_cast<uint8_t>(F.Kind));
  appendValues(F.Operands, W);
  appendValues(F.Params, W);
  appendValue(F.Result, W);
}

bool readExecFrame(ByteReader &R, ExecFrame &F) {
  F.Body = R.i32();
  F.PC = R.i32();
  F.Kind = static_cast<FrameKind>(R.u8());
  if (!readValues(R, F.Operands) || !readValues(R, F.Params))
    return false;
  F.Result = readValue(R);
  return R.ok();
}

void appendExecFrames(const std::vector<ExecFrame> &Fs, ByteWriter &W) {
  W.u64(Fs.size());
  for (const ExecFrame &F : Fs)
    appendExecFrame(F, W);
}

bool readExecFrames(ByteReader &R, std::vector<ExecFrame> &Fs) {
  uint64_t N = R.u64();
  if (!R.ok())
    return false;
  Fs.clear();
  Fs.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    Fs.emplace_back();
    if (!readExecFrame(R, Fs.back()))
      return false;
  }
  return true;
}

void appendMachineState(const MachineState &M, ByteWriter &W) {
  W.i32(M.MachineIndex);
  W.u8(M.Alive ? 1 : 0);
  W.u8(M.Crashed ? 1 : 0);
  W.u64(M.Frames.size());
  for (const StateFrame &F : M.Frames) {
    W.i32(F.State);
    W.u64(F.Inherit.size());
    for (int32_t H : F.Inherit)
      W.i32(H);
    appendExecFrames(F.SavedCont, W);
  }
  appendExecFrames(M.Exec, W);
  appendValues(M.Vars, W);
  appendValue(M.Msg, W);
  appendValue(M.Arg, W);
  W.u8(M.HasRaise ? 1 : 0);
  W.i32(M.RaiseEvent);
  appendValue(M.RaiseArg, W);
  W.u8(static_cast<uint8_t>(M.Transfer));
  W.i32(M.TransferTarget);
  W.u64(M.Queue.size());
  for (const auto &[Ev, Arg] : M.Queue) {
    W.i32(Ev);
    appendValue(Arg, W);
  }
  appendOptBool(M.InjectedChoice, W);
  appendOptBool(M.InjectedForeignFail, W);
}

bool readMachineState(ByteReader &R, MachineState &M) {
  M.MachineIndex = R.i32();
  M.Alive = R.u8() != 0;
  M.Crashed = R.u8() != 0;
  uint64_t NFrames = R.u64();
  if (!R.ok())
    return false;
  M.Frames.clear();
  M.Frames.reserve(NFrames);
  for (uint64_t I = 0; I != NFrames; ++I) {
    StateFrame F;
    F.State = R.i32();
    uint64_t NInherit = R.u64();
    if (!R.ok())
      return false;
    F.Inherit.reserve(NInherit);
    for (uint64_t J = 0; J != NInherit; ++J)
      F.Inherit.push_back(R.i32());
    if (!readExecFrames(R, F.SavedCont))
      return false;
    M.Frames.push_back(std::move(F));
  }
  if (!readExecFrames(R, M.Exec) || !readValues(R, M.Vars))
    return false;
  M.Msg = readValue(R);
  M.Arg = readValue(R);
  M.HasRaise = R.u8() != 0;
  M.RaiseEvent = R.i32();
  M.RaiseArg = readValue(R);
  M.Transfer = static_cast<TransferKind>(R.u8());
  M.TransferTarget = R.i32();
  uint64_t NQueue = R.u64();
  if (!R.ok())
    return false;
  M.Queue.clear();
  M.Queue.reserve(NQueue);
  for (uint64_t I = 0; I != NQueue; ++I) {
    int32_t Ev = R.i32();
    M.Queue.emplace_back(Ev, readValue(R));
  }
  M.InjectedChoice = readOptBool(R);
  M.InjectedForeignFail = readOptBool(R);
  return R.ok();
}

void appendDecisions(const std::vector<SchedDecision> &Ds, ByteWriter &W) {
  W.u64(Ds.size());
  for (const SchedDecision &D : Ds) {
    W.u8(static_cast<uint8_t>(D.K));
    W.i32(D.Machine);
    W.u8(D.Choice ? 1 : 0);
    W.i32(D.Aux);
  }
}

bool readDecisions(ByteReader &R, std::vector<SchedDecision> &Ds) {
  uint64_t N = R.u64();
  if (!R.ok())
    return false;
  Ds.clear();
  Ds.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    SchedDecision D;
    D.K = static_cast<SchedDecision::Kind>(R.u8());
    D.Machine = R.i32();
    D.Choice = R.u8() != 0;
    D.Aux = R.i32();
    Ds.push_back(D);
  }
  return R.ok();
}

void appendU64s(const std::vector<uint64_t> &Vs, ByteWriter &W) {
  W.u64(Vs.size());
  for (uint64_t V : Vs)
    W.u64(V);
}

bool readU64s(ByteReader &R, std::vector<uint64_t> &Vs) {
  uint64_t N = R.u64();
  if (!R.ok())
    return false;
  Vs.clear();
  Vs.reserve(N);
  for (uint64_t I = 0; I != N; ++I)
    Vs.push_back(R.u64());
  return R.ok();
}

void appendSleepDoms(const std::vector<CheckpointData::SleepDom> &Ds,
                     ByteWriter &W) {
  W.u64(Ds.size());
  for (const auto &D : Ds) {
    W.i32(D.Delays);
    W.u64(D.Mask);
  }
}

bool readSleepDoms(ByteReader &R,
                   std::vector<CheckpointData::SleepDom> &Ds) {
  uint64_t N = R.u64();
  if (!R.ok())
    return false;
  Ds.clear();
  Ds.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    CheckpointData::SleepDom D;
    D.Delays = R.i32();
    D.Mask = R.u64();
    Ds.push_back(D);
  }
  return R.ok();
}

void appendCompact(const CheckpointData::CompactImage &C, ByteWriter &W) {
  W.u64(C.PerStripe);
  appendU64s(C.Fps, W);
  W.u64(C.Delays.size());
  for (int32_t D : C.Delays)
    W.i32(D);
  appendU64s(C.Masks, W);
}

bool readCompact(ByteReader &R, CheckpointData::CompactImage &C) {
  C.PerStripe = R.u64();
  if (!readU64s(R, C.Fps))
    return false;
  uint64_t N = R.u64();
  if (!R.ok())
    return false;
  C.Delays.clear();
  C.Delays.reserve(N);
  for (uint64_t I = 0; I != N; ++I)
    C.Delays.push_back(R.i32());
  return readU64s(R, C.Masks);
}

} // namespace

//===----------------------------------------------------------------------===//
// Config / frontier-node codec
//===----------------------------------------------------------------------===//

void ckpt::appendConfig(const Config &Cfg, ByteWriter &W) {
  W.u64(Cfg.Machines.size());
  for (const CowMachine &M : Cfg.Machines)
    appendMachineState(*M, W);
  W.u8(static_cast<uint8_t>(Cfg.Error));
  W.str(Cfg.ErrorMessage);
  W.i32(Cfg.ErrorMachine);
  W.u32(Cfg.MaxQueue);
  W.u8(static_cast<uint8_t>(Cfg.Overflow));
  W.u64(Cfg.OverflowDropped);
}

bool ckpt::readConfig(ByteReader &R, Config &Cfg) {
  uint64_t N = R.u64();
  if (!R.ok())
    return false;
  Cfg.Machines.clear();
  Cfg.Machines.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    MachineState M;
    if (!readMachineState(R, M))
      return false;
    Cfg.Machines.emplace_back(std::move(M));
  }
  Cfg.Error = static_cast<ErrorKind>(R.u8());
  Cfg.ErrorMessage = R.str();
  Cfg.ErrorMachine = R.i32();
  Cfg.MaxQueue = R.u32();
  Cfg.Overflow = static_cast<OverflowPolicy>(R.u8());
  Cfg.OverflowDropped = R.u64();
  return R.ok();
}

void ckpt::appendFrontierNode(const FrontierNode &N, std::string &Out) {
  ByteWriter W(Out);
  appendConfig(N.Cfg, W);
  W.u64(N.Sched.size());
  for (int32_t S : N.Sched)
    W.i32(S);
  W.i32(N.DelaysUsed);
  W.i32(N.FaultsUsed);
  W.i32(N.Depth);
  W.i32(N.MustRun);
  W.i32(N.ByType);
  W.u64(N.Sleep.size());
  for (const auto &[Id, Fp] : N.Sleep) {
    W.i32(Id);
    W.u64(Fp);
  }
  appendDecisions(N.Schedule, W);
}

bool ckpt::readFrontierNode(ByteReader &R, FrontierNode &N) {
  if (!readConfig(R, N.Cfg))
    return false;
  uint64_t NSched = R.u64();
  if (!R.ok())
    return false;
  N.Sched.clear();
  N.Sched.reserve(NSched);
  for (uint64_t I = 0; I != NSched; ++I)
    N.Sched.push_back(R.i32());
  N.DelaysUsed = R.i32();
  N.FaultsUsed = R.i32();
  N.Depth = R.i32();
  N.MustRun = R.i32();
  N.ByType = R.i32();
  uint64_t NSleep = R.u64();
  if (!R.ok())
    return false;
  N.Sleep.clear();
  N.Sleep.reserve(NSleep);
  for (uint64_t I = 0; I != NSleep; ++I) {
    int32_t Id = R.i32();
    uint64_t Fp = R.u64();
    N.Sleep.emplace_back(Id, Fp);
  }
  return readDecisions(R, N.Schedule);
}

//===----------------------------------------------------------------------===//
// Fingerprint
//===----------------------------------------------------------------------===//

uint64_t ckpt::searchFingerprint(const CompiledProgram &Prog,
                                 const CheckOptions &Opts) {
  // Serialize everything that changes what the search explores or how
  // states are keyed, then hash once. Field order is part of the
  // format: changing it invalidates old checkpoints, which is exactly
  // the conservative behavior we want.
  std::string Buf;
  ByteWriter W(Buf);

  W.u64(Prog.Events.size());
  for (const EventInfo &E : Prog.Events) {
    W.str(E.Name);
    W.u8(static_cast<uint8_t>(E.PayloadType));
    W.u8(E.Ghost ? 1 : 0);
  }
  W.u64(Prog.Machines.size());
  for (const MachineInfo &M : Prog.Machines) {
    W.str(M.Name);
    W.u8(M.Ghost ? 1 : 0);
    W.u8(M.Symmetric ? 1 : 0);
    W.u64(M.Vars.size());
    for (const VarInfo &V : M.Vars) {
      W.str(V.Name);
      W.u8(static_cast<uint8_t>(V.Type));
    }
    W.u64(M.States.size());
    for (const StateInfo &S : M.States) {
      W.str(S.Name);
      W.i32(S.EntryBody);
      W.i32(S.ExitBody);
      W.u64(S.OnEvent.size());
      for (const Transition &T : S.OnEvent) {
        W.u8(static_cast<uint8_t>(T.Kind));
        W.i32(T.Target);
      }
    }
    W.u64(M.Bodies.size());
    for (const Body &B : M.Bodies) {
      W.u64(B.Code.size());
      for (const Instr &I : B.Code) {
        W.u8(static_cast<uint8_t>(I.Op));
        W.i32(I.A);
        W.i32(I.B);
      }
    }
  }
  W.i32(Prog.MainMachine);

  W.u8(static_cast<uint8_t>(Opts.Strategy));
  W.i32(Opts.DelayBound);
  W.i32(Opts.DepthBound);
  W.u8(Opts.UseModelBodies ? 1 : 0);
  W.u8(Opts.StopOnFirstError ? 1 : 0);
  W.u8(static_cast<uint8_t>(Opts.ExactStates ? VisitedMode::Exact
                                             : Opts.Visited));
  W.u64(Opts.VisitedCapBytes);
  W.u64(Opts.MaxStepsPerSlice);
  W.u8(Opts.CollectTerminals ? 1 : 0);
  W.u8(Opts.TrackCoverage ? 1 : 0);
  W.i32(Opts.Faults.Budget);
  W.u8(Opts.Faults.Drop ? 1 : 0);
  W.u8(Opts.Faults.Duplicate ? 1 : 0);
  W.u8(Opts.Faults.Crash ? 1 : 0);
  W.u8(Opts.Faults.FailForeign ? 1 : 0);
  W.u64(Opts.Faults.Events.size());
  for (int32_t E : Opts.Faults.Events)
    W.i32(E);
  W.u64(Opts.Faults.CrashTypes.size());
  for (int32_t T : Opts.Faults.CrashTypes)
    W.i32(T);
  W.u32(Opts.MaxQueue);
  W.u8(static_cast<uint8_t>(Opts.Overflow));
  W.u8(static_cast<uint8_t>(Opts.Reduce));

  uint64_t H = hashBytes(Buf.data(), Buf.size());
  // Reserve 0 as "no fingerprint" for loadCheckpoint's caller contract.
  return H ? H : 1;
}

//===----------------------------------------------------------------------===//
// Save / load
//===----------------------------------------------------------------------===//

namespace {

constexpr char Magic[8] = {'P', 'C', 'H', 'E', 'C', 'K', 'P', 'T'};

void appendPayload(const CheckpointData &D, std::string &Out) {
  ByteWriter W(Out);

  W.u64(D.DistinctStates);
  W.u64(D.NodesExplored);
  W.u64(D.Slices);
  W.u64(D.Terminals);
  W.u64(D.ErrorsFound);
  W.u64(D.FaultsInjected);
  W.u64(D.PrunedByIndependence);
  W.u64(D.SymmetryCollapsed);
  W.u64(D.HashMismatches);
  W.u64(D.StealCount);
  W.u64(D.ContentionNs);
  W.u64(D.CheckpointsWritten);
  W.u64(D.FrontierSpilledNodes);
  W.u64(D.FrontierSpillBytes);
  W.i32(D.MaxDepth);
  W.f64(D.ElapsedSeconds);
  W.u8(D.OmissionPossible ? 1 : 0);
  W.u8(D.Exhausted ? 1 : 0);

  W.u64(D.Hashed.size());
  for (const auto &[Key, Delays] : D.Hashed) {
    W.u64(Key);
    W.i32(Delays);
  }
  W.u64(D.Exact.size());
  for (const auto &[Key, Delays] : D.Exact) {
    W.str(Key);
    W.i32(Delays);
  }
  W.u64(D.HashedSleep.size());
  for (const auto &[Key, Doms] : D.HashedSleep) {
    W.u64(Key);
    appendSleepDoms(Doms, W);
  }
  W.u64(D.ExactSleep.size());
  for (const auto &[Key, Doms] : D.ExactSleep) {
    W.str(Key);
    appendSleepDoms(Doms, W);
  }
  appendU64s(D.Seen, W);
  appendU64s(D.TerminalSet, W);
  appendCompact(D.CompactDedup, W);
  appendCompact(D.CompactSeen, W);

  appendU64s(D.TerminalHashes, W);
  W.u64(D.Coverage.Machines.size());
  for (const auto &M : D.Coverage.Machines) {
    W.u64(M.StatesVisited.size());
    for (int32_t S : M.StatesVisited)
      W.i32(S);
    W.u64(M.TransitionsFired.size());
    for (const auto &[S, E] : M.TransitionsFired) {
      W.i32(S);
      W.i32(E);
    }
  }
  W.u8(D.BestFound ? 1 : 0);
  W.u8(static_cast<uint8_t>(D.BestKind));
  W.str(D.BestMessage);
  W.i32(D.BestDelays);
  W.i32(D.BestFaults);
  appendDecisions(D.BestSchedule, W);

  W.u64(D.Frontier.size());
  for (const FrontierNode &N : D.Frontier)
    appendFrontierNode(N, Out);
}

bool readPayload(ByteReader &R, CheckpointData &D) {
  D.DistinctStates = R.u64();
  D.NodesExplored = R.u64();
  D.Slices = R.u64();
  D.Terminals = R.u64();
  D.ErrorsFound = R.u64();
  D.FaultsInjected = R.u64();
  D.PrunedByIndependence = R.u64();
  D.SymmetryCollapsed = R.u64();
  D.HashMismatches = R.u64();
  D.StealCount = R.u64();
  D.ContentionNs = R.u64();
  D.CheckpointsWritten = R.u64();
  D.FrontierSpilledNodes = R.u64();
  D.FrontierSpillBytes = R.u64();
  D.MaxDepth = R.i32();
  D.ElapsedSeconds = R.f64();
  D.OmissionPossible = R.u8() != 0;
  D.Exhausted = R.u8() != 0;
  if (!R.ok())
    return false;

  uint64_t N = R.u64();
  if (!R.ok())
    return false;
  D.Hashed.clear();
  D.Hashed.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    uint64_t Key = R.u64();
    D.Hashed.emplace_back(Key, R.i32());
  }
  N = R.u64();
  if (!R.ok())
    return false;
  D.Exact.clear();
  D.Exact.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    std::string Key = R.str();
    D.Exact.emplace_back(std::move(Key), R.i32());
  }
  N = R.u64();
  if (!R.ok())
    return false;
  D.HashedSleep.clear();
  D.HashedSleep.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    uint64_t Key = R.u64();
    std::vector<CheckpointData::SleepDom> Doms;
    if (!readSleepDoms(R, Doms))
      return false;
    D.HashedSleep.emplace_back(Key, std::move(Doms));
  }
  N = R.u64();
  if (!R.ok())
    return false;
  D.ExactSleep.clear();
  D.ExactSleep.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    std::string Key = R.str();
    std::vector<CheckpointData::SleepDom> Doms;
    if (!readSleepDoms(R, Doms))
      return false;
    D.ExactSleep.emplace_back(std::move(Key), std::move(Doms));
  }
  if (!readU64s(R, D.Seen) || !readU64s(R, D.TerminalSet) ||
      !readCompact(R, D.CompactDedup) || !readCompact(R, D.CompactSeen))
    return false;

  if (!readU64s(R, D.TerminalHashes))
    return false;
  N = R.u64();
  if (!R.ok())
    return false;
  D.Coverage.Machines.clear();
  D.Coverage.Machines.resize(N);
  for (uint64_t I = 0; I != N; ++I) {
    auto &M = D.Coverage.Machines[I];
    uint64_t NS = R.u64();
    if (!R.ok())
      return false;
    for (uint64_t J = 0; J != NS; ++J)
      M.StatesVisited.insert(R.i32());
    uint64_t NT = R.u64();
    if (!R.ok())
      return false;
    for (uint64_t J = 0; J != NT; ++J) {
      int32_t S = R.i32();
      int32_t E = R.i32();
      M.TransitionsFired.insert({S, E});
    }
  }
  D.BestFound = R.u8() != 0;
  D.BestKind = static_cast<ErrorKind>(R.u8());
  D.BestMessage = R.str();
  D.BestDelays = R.i32();
  D.BestFaults = R.i32();
  if (!readDecisions(R, D.BestSchedule))
    return false;

  N = R.u64();
  if (!R.ok())
    return false;
  D.Frontier.clear();
  D.Frontier.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    D.Frontier.emplace_back();
    if (!readFrontierNode(R, D.Frontier.back()))
      return false;
  }
  return R.ok() && R.atEnd();
}

bool readWholeFile(const std::string &Path, std::string &Out,
                   std::string &Why) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Why = "cannot open checkpoint " + Path;
    return false;
  }
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  if (!Ok)
    Why = "cannot read checkpoint " + Path;
  return Ok;
}

} // namespace

bool ckpt::saveCheckpoint(const std::string &Path, const CheckpointData &D,
                          std::string &Why, uint64_t *BytesWritten) {
  std::string File(Magic, sizeof(Magic));
  ByteWriter W(File);
  W.u32(FormatVersion);
  W.u64(D.Fingerprint);

  std::string Payload;
  appendPayload(D, Payload);
  W.u64(Payload.size());
  File += Payload;
  W.u32(crc32(File.data(), File.size()));

  if (!writeFileAtomic(Path, File, &Why))
    return false;
  if (BytesWritten)
    *BytesWritten = File.size();
  return true;
}

bool ckpt::loadCheckpoint(const std::string &Path, CheckpointData &D,
                          std::string &Why) {
  std::string File;
  if (!readWholeFile(Path, File, Why))
    return false;

  constexpr size_t HeaderLen =
      sizeof(Magic) + 4 /*version*/ + 8 /*fingerprint*/ + 8 /*payload len*/;
  if (File.size() < sizeof(Magic) ||
      std::memcmp(File.data(), Magic, sizeof(Magic)) != 0) {
    Why = Path + " is not a checkpoint file (bad magic)";
    return false;
  }
  if (File.size() < HeaderLen + 4) {
    Why = "checkpoint " + Path + " is truncated (header incomplete)";
    return false;
  }
  // CRC before anything else: every later field is only meaningful on
  // an intact file, and a bit flip in, say, the version field should
  // report corruption, not "version mismatch".
  ByteReader Trailer(File.data() + File.size() - 4, 4);
  uint32_t Stored = Trailer.u32();
  uint32_t Computed = crc32(File.data(), File.size() - 4);
  if (Stored != Computed) {
    Why = "checkpoint " + Path +
          " failed its CRC check — the file is truncated or corrupted";
    return false;
  }

  ByteReader R(File.data() + sizeof(Magic), File.size() - sizeof(Magic) - 4);
  uint32_t Version = R.u32();
  if (Version != FormatVersion) {
    Why = "checkpoint " + Path + " has format version " +
          std::to_string(Version) + ", expected " +
          std::to_string(FormatVersion);
    return false;
  }
  uint64_t Fingerprint = R.u64();
  uint64_t PayloadLen = R.u64();
  if (PayloadLen != File.size() - HeaderLen - 4) {
    Why = "checkpoint " + Path + " has an inconsistent payload length";
    return false;
  }
  if (D.Fingerprint != 0 && Fingerprint != D.Fingerprint) {
    Why = "checkpoint " + Path +
          " was written for a different program or search configuration "
          "(fingerprint mismatch)";
    return false;
  }
  D.Fingerprint = Fingerprint;
  if (!readPayload(R, D)) {
    Why = "checkpoint " + Path + " has a malformed payload";
    return false;
  }
  return true;
}
