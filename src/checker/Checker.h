//===- checker/Checker.h - Systematic testing of P programs ----------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The systematic-testing verifier of Section 5 (the paper interprets
/// the semantics inside the Zing model checker; this is our from-scratch
/// equivalent). Both sources of nondeterminism are enumerated: explicit
/// `*` choices in ghost machines and the implicit scheduling choice, at
/// the reduced set of scheduling points (after `send` and `new`).
///
/// Two strategies:
///
///  * DelayBounded — the paper's novel delaying scheduler. A stack S of
///    machine ids; the top of S always runs; `new` pushes the child on
///    top; a send to a machine outside S pushes it on top (so the
///    receiver of an event runs next — the causal order of events);
///    blocked or terminated machines pop. A *delay* moves the top to the
///    bottom of S at a cost of 1 against the delay budget d. With d = 0
///    the explored real execution is exactly the one the runtime
///    produces (Section 5's claim, verified by our tests); as d → ∞ all
///    schedules are covered.
///
///  * DepthBounded — plain DFS over all enabled machines at every
///    scheduling point, cut off at a depth bound (the classical approach
///    the paper compares against).
///
/// Errors detected: the four error transitions of Figure 6 (assertion
/// failure, send to ⊥, send to a deleted machine, unhandled event) plus
/// the documented extension kinds in runtime/Errors.h.
///
//===----------------------------------------------------------------------===//

#ifndef P_CHECKER_CHECKER_H
#define P_CHECKER_CHECKER_H

#include "fault/Fault.h"
#include "obs/Profile.h"
#include "pir/Program.h"
#include "runtime/Errors.h"
#include "runtime/Executor.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace p {

namespace obs {
class TraceRecorder;
class MetricsRegistry;
} // namespace obs

/// Exploration strategy.
enum class SearchStrategy {
  DelayBounded,
  DepthBounded,
};

struct CheckStats;

/// How the visited set stores explored states (see DESIGN.md "State
/// representation" for the trade-offs).
enum class VisitedMode : uint8_t {
  /// Key on the full canonical serialization: exact dedup, highest
  /// memory cost. The oracle mode.
  Exact,
  /// Key on 64-bit fingerprints (the default): exact modulo 64-bit
  /// collisions, one hash-map entry per state. Deterministic across
  /// worker counts like Exact.
  Fingerprint,
  /// SPIN-style hash compaction: a fixed-size lock-striped
  /// open-addressing table of fingerprints bounded by
  /// CheckOptions::VisitedCapBytes. When the table saturates (a probe
  /// sequence finds no free slot) the state is treated as visited and
  /// CheckStats::OmissionPossible is set — the search stays sound for
  /// reported errors but may omit states, so "no error found" is no
  /// longer a proof. Trades a quantified miss probability for
  /// order-of-magnitude memory capacity.
  Compact,
};

/// Search-space reduction layers (see DESIGN.md "Reduction"). Both
/// layers are opt-in: Off explores exactly what the PR-4 checker
/// explored, bit-identical across worker counts.
enum class Reduction : uint8_t {
  /// No reduction (the default; the determinism-contract baseline).
  Off,
  /// Sleep-set pruning over the independence relation on scheduling
  /// decisions: two slices commute when they touch disjoint machines
  /// and neither sends to, creates, or crashes a machine the other
  /// slices. Commuting successor orders are explored once; pruned
  /// branches are counted in CheckStats::PrunedByIndependence.
  Sleep,
  /// Machine-symmetry canonicalization: instances of machine types
  /// declared `symmetric` are folded into a canonical permutation
  /// before visited-set lookup (values of machine type are renamed
  /// consistently, which is a bisimulation — ids are opaque in P).
  /// Nodes pruned as permuted images of an explored representative are
  /// counted in CheckStats::SymmetryCollapsed. Search nodes themselves
  /// stay in the original id space, so counterexample traces always
  /// name concrete machines.
  Symmetry,
  /// Sleep + Symmetry composed.
  Both,
};

/// Stable lower-case name of a Reduction value, as used by the bench
/// `--reduction` flags and the JSON reports.
inline const char *reductionName(Reduction R) {
  switch (R) {
  case Reduction::Off:
    return "off";
  case Reduction::Sleep:
    return "sleep";
  case Reduction::Symmetry:
    return "symmetry";
  case Reduction::Both:
    return "both";
  }
  return "?";
}

/// Parses a `--reduction` flag value; false when \p Name is not one of
/// off|sleep|symmetry|both (\p Out is untouched).
bool parseReduction(const char *Name, Reduction &Out);

/// Options controlling one check() run.
struct CheckOptions {
  SearchStrategy Strategy = SearchStrategy::DelayBounded;
  /// Delay budget d (DelayBounded).
  int DelayBound = 0;
  /// Maximum scheduled slices along a path (DepthBounded); also a
  /// safety cap for DelayBounded paths.
  int DepthBound = 100000;
  /// Stop after this many search nodes (0 = unlimited).
  uint64_t MaxNodes = 0;
  /// Execute foreign-function model bodies (the verification build).
  bool UseModelBodies = true;
  /// Stop at the first error (otherwise keep exploring and count).
  bool StopOnFirstError = true;
  /// Deprecated alias for Visited = VisitedMode::Exact (kept for
  /// existing callers): when true it overrides Visited.
  bool ExactStates = false;
  /// Visited-set representation; see VisitedMode. The effective mode is
  /// Exact when ExactStates is set, otherwise this field.
  VisitedMode Visited = VisitedMode::Fingerprint;
  /// Compact mode only: total byte budget for the visited tables
  /// (rounded down to whole slots, split between the dedup and
  /// distinct-state tables). 0 picks a 64 MiB default.
  uint64_t VisitedCapBytes = 0;
  /// Debug: on every node, cross-check the incremental (cached) config
  /// hash against a cache-oblivious recomputation from the full
  /// serialization; mismatches are counted in CheckStats::HashMismatches
  /// and indicate a missing CowMachine::mut() call. Also enabled by
  /// setting the P_VERIFY_HASHES environment variable.
  bool VerifyHashes = false;
  /// Micro-step budget per slice before the divergence error fires.
  uint64_t MaxStepsPerSlice = 100000;
  /// Record the fingerprints of quiescent (terminal) configurations in
  /// CheckResult::TerminalHashes; used by the d = 0 ≡ runtime tests.
  bool CollectTerminals = false;
  /// Collect structural coverage (which P states were reached and which
  /// (state, event) dispatches fired) into CheckResult::Coverage.
  bool TrackCoverage = false;
  /// Search profiler (see obs/Profile.h): attribute nodes, states,
  /// slice time, and reduction savings to machine types, into
  /// CheckResult::Profile. An observer like tracing: off (the default)
  /// leaves CheckStats bit-identical and costs one predictable branch
  /// per hook; on adds a steady_clock read around each slice, so the
  /// *timing* fields perturb wall-clock slightly while every counter
  /// stays exact.
  bool Profile = false;
  /// Exploration workers. 1 (the default) runs the classic serial DFS on
  /// the calling thread; 0 asks for std::thread::hardware_concurrency();
  /// N > 1 spawns N workers, each with its own Executor and DFS stack,
  /// sharing a sharded visited table and a work-stealing frontier.
  /// On exhausted searches ErrorFound, Error, DistinctStates, Terminals
  /// and TerminalHashes-as-a-set are worker-count-independent; see
  /// DESIGN.md "Parallel exploration" for the determinism contract.
  int Workers = 1;
  /// Structured event tracing (see obs/Trace.h). When set, every worker
  /// opens a sink on this recorder and records send/dequeue/raise/new/
  /// state/slice/delay/error events as it explores. Tracing is an
  /// observer: it must not (and does not) change what is explored —
  /// DistinctStates/Terminals stay bit-identical with tracing on or
  /// off (covered by the obs determinism test). nullptr disables all
  /// recording at the cost of one predictable branch per hook.
  obs::TraceRecorder *Trace = nullptr;
  /// Metrics registry (see obs/Metrics.h). When set, check() fills
  /// p_check_* counters/gauges on completion and observes the
  /// frontier-depth distribution per expanded node during the run.
  obs::MetricsRegistry *Metrics = nullptr;
  /// Live progress: when > 0 and Progress is set, a snapshot of the
  /// running CheckStats is delivered about every this-many seconds
  /// (from worker 0's loop; Seconds is the elapsed wall time, counters
  /// are relaxed-atomic reads — exact in serial runs, slightly stale
  /// across workers). The callback must not re-enter check().
  double ProgressIntervalSeconds = 0;
  std::function<void(const CheckStats &)> Progress;
  /// Bounded-fault exploration (see fault/Fault.h and DESIGN.md "Fault
  /// model"): with Faults.Budget = k the checker additionally explores
  /// up to k environment faults — dropped events, duplicated events,
  /// machine crashes, failed foreign calls — per path, exactly as the
  /// delaying scheduler explores up to d delays. Budget 0 (the default)
  /// explores no faults and leaves every result bit-identical to a
  /// checker without the fault layer.
  FaultSpec Faults;
  /// Per-machine queue bound for explored configurations; 0 (default)
  /// = unbounded, matching the paper. Copied into the root Config, so
  /// overflow behaves per OverflowPolicy during exploration.
  uint32_t MaxQueue = 0;
  OverflowPolicy Overflow = OverflowPolicy::Error;
  /// Search-space reduction (see Reduction). Off is bit-identical to a
  /// checker without the reduction layer; Sleep/Symmetry/Both compose
  /// with every visited mode, fault budget, and worker count, and keep
  /// error verdicts identical to the unreduced search (the differential
  /// suite in tests/reduction_test.cpp pins this).
  Reduction Reduce = Reduction::Off;
  /// Crash safety (see checker/Checkpoint.h and DESIGN.md "Checkpoint &
  /// resume"). When non-empty, the search periodically snapshots its
  /// frontier, visited tables, and counters to this path (atomically:
  /// temp + fsync + rename), and writes a final snapshot when it stops
  /// for any reason — completion, MaxNodes, or interruption. A later run
  /// with Resume set picks the search up where it left off; on
  /// exhausted searches the resumed run's DistinctStates / Terminals /
  /// TerminalHashes are bit-identical to an uninterrupted run.
  std::string CheckpointPath;
  /// Seconds between periodic checkpoints (0 = final-only). Fractional
  /// values work; the timer is polled from worker 0's loop.
  double CheckpointIntervalSeconds = 0;
  /// Start from the checkpoint at CheckpointPath instead of the initial
  /// configuration. A missing, truncated, corrupted, version-skewed, or
  /// wrong-program checkpoint fails the run with
  /// CheckResult::ResumeError — it is never silently ignored.
  bool Resume = false;
  /// Cooperative interruption: when set, worker 0 polls this flag (see
  /// support/Interrupt.h for the SIGINT/SIGTERM wiring). Once true the
  /// search stops draining its frontier, joins its workers, writes a
  /// final checkpoint if CheckpointPath is set, and returns with
  /// CheckStats::Interrupted (and Exhausted = false).
  const std::atomic<bool> *InterruptFlag = nullptr;
  /// Out-of-core frontier (see checker/FrontierStore.h): when > 0 and
  /// the in-memory frontier's estimated footprint exceeds this many
  /// bytes, cold nodes (the oldest — breadth a DFS will not revisit
  /// soon) are spilled to segment files under SpillDir and reloaded when
  /// workers run dry. 0 disables spilling.
  uint64_t FrontierMemLimitBytes = 0;
  /// Directory for frontier spill segments. Empty = alongside
  /// CheckpointPath when set, else the system temp directory.
  std::string SpillDir;
};

/// One scheduling decision of an explored path. A sequence of these is
/// a *schedule*: deterministic, machine-replayable evidence (see
/// checker/Replay.h). Counterexamples carry their schedule so a failure
/// can be re-executed and debugged outside the search.
struct SchedDecision {
  enum class Kind : uint8_t {
    Run,    ///< Run Machine for one slice.
    Delay,  ///< Spend one delay (move the top of S to the bottom).
    Choose, ///< Resolve the pending `*` of the last-run machine.
    // Fault decisions (explored only when CheckOptions::Faults has a
    // budget; each costs 1 against it). Their enumerator order defines
    // the lexicographic tie-break of the parallel determinism contract,
    // so new kinds go at the end.
    DropEvent,    ///< Drop Machine's queue entry at index Aux.
    DupEvent,     ///< Append a second copy of Machine's queue entry at
                  ///< index Aux (the network delivered twice; the copy
                  ///< bypasses the ⊎ send-side guard by design).
    Crash,        ///< Crash Machine (MachineState::Crashed).
    ForeignFault, ///< Resolve the pending foreign call of the last-run
                  ///< machine: Choice=true fails it (⊥), false runs it.
  };
  Kind K = Kind::Run;
  int32_t Machine = -1; ///< Run: the machine sliced; Delay: the machine
                        ///< moved to the bottom of S (trace rendering);
                        ///< fault kinds: the machine acted on.
  bool Choice = false;  ///< Choose / ForeignFault.
  int32_t Aux = -1;     ///< DropEvent/DupEvent: queue index.
};

/// Structural coverage of one exploration: how much of each machine's
/// static state/transition structure the schedules exercised. A low
/// transition percentage after an exhaustive search usually means dead
/// handlers (events that can never arrive in that state).
struct CoverageReport {
  struct MachineCoverage {
    /// States that appeared on some reachable call stack.
    std::set<int32_t> StatesVisited;
    /// (state, event) pairs dispatched with a Step/Call/Action
    /// resolution.
    std::set<std::pair<int32_t, int32_t>> TransitionsFired;
  };
  std::vector<MachineCoverage> Machines; ///< Indexed by machine type.

  /// Renders a per-machine "states X/Y, transitions A/B" table.
  std::string str(const CompiledProgram &Prog) const;
};

/// Counters reported by a check() run. NodesExplored, Slices, StealCount
/// and ContentionNs depend on scheduling races when Workers > 1; the
/// remaining counters are deterministic on exhausted searches.
struct CheckStats {
  uint64_t DistinctStates = 0; ///< Distinct global configurations seen.
  uint64_t NodesExplored = 0;  ///< Search nodes expanded.
  uint64_t Slices = 0;         ///< Scheduled run-to-scheduling-point slices.
  uint64_t Terminals = 0;      ///< Distinct quiescent configurations.
  uint64_t ErrorsFound = 0;
  int MaxDepth = 0;
  bool Exhausted = true; ///< False when a node/depth cap cut the search.
  double Seconds = 0;
  /// Visited-set footprint, maintained as a running counter on insertion
  /// (stored entry plus estimated hash-node/bucket overhead).
  uint64_t VisitedBytes = 0;
  int WorkersUsed = 1;       ///< Resolved worker count of the run.
  uint64_t StealCount = 0;   ///< Successful work-stealing operations.
  uint64_t ContentionNs = 0; ///< Time spent blocked on shared-state locks.
  /// Fault transitions explored (0 unless CheckOptions::Faults has a
  /// budget). Like NodesExplored, scheduling-race-dependent when
  /// Workers > 1 and the search is cut short.
  uint64_t FaultsInjected = 0;
  /// Compact mode: true when the bounded visited table saturated at
  /// least once and treated an unseen state as visited — the search may
  /// have omitted states, so exhaustion is no longer a proof of absence
  /// of errors. Always false in Exact/Fingerprint modes.
  bool OmissionPossible = false;
  /// Process peak resident set size over *this run*: the kernel's RSS
  /// high-water mark is reset when the run starts and sampled at its
  /// end, so repeated check() calls in one process report their own
  /// peaks rather than the process-lifetime maximum. Where the platform
  /// cannot reset the mark (non-Linux) this degrades to the lifetime
  /// peak; 0 where unavailable. Includes everything resident during the
  /// run, not just the visited set.
  uint64_t PeakRssBytes = 0;
  /// Incremental-vs-fresh hash cross-check failures (VerifyHashes /
  /// P_VERIFY_HASHES only; must be 0 — anything else is a COW
  /// invalidation bug).
  uint64_t HashMismatches = 0;
  /// Sleep-set reduction (Reduction::Sleep/Both): run branches skipped
  /// because the machine was asleep — its slice commutes with every
  /// decision since the branch where it ran first. 0 when the layer is
  /// off.
  uint64_t PrunedByIndependence = 0;
  /// Symmetry reduction (Reduction::Symmetry/Both): nodes pruned under
  /// a non-identity canonical permutation, i.e. recognized as permuted
  /// images of an explored representative. 0 when the layer is off or
  /// no machine type is declared `symmetric`.
  uint64_t SymmetryCollapsed = 0;
  /// Nodes queued across the work-stealing frontiers at snapshot time.
  /// Only meaningful inside progress callbacks (the heartbeat's "how
  /// much breadth is pending" signal); 0 in the final stats of a
  /// completed run by construction.
  uint64_t FrontierNodes = 0;
  /// True when CheckOptions::InterruptFlag ended the run early (implies
  /// !Exhausted). The frontier at the stop is preserved in the final
  /// checkpoint when CheckpointPath is set.
  bool Interrupted = false;
  /// True when this run started from a checkpoint (CheckOptions::Resume)
  /// rather than the initial configuration. Cumulative counters
  /// (DistinctStates, NodesExplored, Seconds, ...) then cover the whole
  /// logical search, not just this process.
  bool Resumed = false;
  /// Checkpoints successfully published this run (periodic + final).
  uint64_t CheckpointsWritten = 0;
  /// Size in bytes of the most recent checkpoint file (0 when none).
  uint64_t LastCheckpointBytes = 0;
  /// Out-of-core frontier (CheckOptions::FrontierMemLimitBytes):
  /// cumulative nodes spilled to disk and bytes written to spill
  /// segments. Scheduling-race-dependent when Workers > 1, like
  /// NodesExplored.
  uint64_t FrontierSpilledNodes = 0;
  uint64_t FrontierSpillBytes = 0;
};

/// Result of a check() run.
struct CheckResult {
  bool ErrorFound = false;
  ErrorKind Error = ErrorKind::None;
  std::string ErrorMessage;
  /// Human-readable counterexample: one line per scheduling decision.
  std::vector<std::string> Trace;
  /// The counterexample as a replayable schedule (see checker/Replay.h).
  std::vector<SchedDecision> Schedule;
  /// Delays spent on the erroring path (DelayBounded), else -1.
  int DelaysUsedOnError = -1;
  /// Faults injected on the erroring path, else -1. A counterexample
  /// with FaultsUsedOnError == 0 is a genuine program bug; > 0 means
  /// the environment had to misbehave to reach it.
  int FaultsUsedOnError = -1;
  /// Fingerprints of quiescent configurations (CollectTerminals).
  std::vector<uint64_t> TerminalHashes;
  /// Structural coverage (TrackCoverage).
  CoverageReport Coverage;
  /// Search profile (CheckOptions::Profile; Enabled is false otherwise).
  obs::SearchProfile Profile;
  CheckStats Stats;
  /// Non-empty when CheckOptions::Resume was set but the checkpoint
  /// could not be used (missing file, CRC mismatch from truncation or
  /// corruption, format-version skew, or a program/options fingerprint
  /// mismatch). The search does NOT run in that case — a defective
  /// checkpoint is reported, never silently discarded or reused.
  std::string ResumeError;
};

/// Explores \p Prog from its initial configuration under \p Opts.
/// \p Exec supplies foreign functions; pass nullptr to use a fresh
/// executor with model bodies only.
CheckResult check(const CompiledProgram &Prog, const CheckOptions &Opts,
                  Executor *Exec = nullptr);

} // namespace p

#endif // P_CHECKER_CHECKER_H
