//===- checker/StateHash.h - Canonical state fingerprints ------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical byte serialization of global configurations, and 64-bit
/// fingerprints derived from it. The serialization covers every
/// semantically relevant component (call stacks with inherited handler
/// maps and saved continuations, resumable exec frames with operand
/// stacks, variable stores, msg/arg, pending raise/transfer, queues),
/// so two configs serialize equally iff they are semantically equal —
/// the explorer's visited set is exact modulo 64-bit hash collisions
/// (or fully exact in ExactStates mode, which keys on the bytes).
///
//===----------------------------------------------------------------------===//

#ifndef P_CHECKER_STATEHASH_H
#define P_CHECKER_STATEHASH_H

#include "runtime/Config.h"

#include <cstdint>
#include <string>

namespace p {

/// Appends the canonical serialization of \p Cfg to \p Out.
void serializeConfig(const Config &Cfg, std::string &Out);

/// 64-bit fingerprint of \p Cfg's canonical serialization.
uint64_t hashConfig(const Config &Cfg);

/// As above, but serializes into \p Scratch (cleared first) so hot
/// loops reuse one allocation per thread instead of one per call.
uint64_t hashConfig(const Config &Cfg, std::string &Scratch);

} // namespace p

#endif // P_CHECKER_STATEHASH_H
