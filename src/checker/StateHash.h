//===- checker/StateHash.h - Canonical state fingerprints ------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical byte serialization of global configurations, and 64-bit
/// fingerprints derived from it. The serialization covers every
/// semantically relevant component (call stacks with inherited handler
/// maps and saved continuations, resumable exec frames with operand
/// stacks, variable stores, msg/arg, pending raise/transfer, queues),
/// so two configs serialize equally iff they are semantically equal —
/// the explorer's visited set is exact modulo 64-bit hash collisions
/// (or fully exact in VisitedMode::Exact, which keys on the bytes).
///
/// Fingerprints are *incremental*: the config hash is an ordered
/// combination of per-machine fingerprints (plus the global error
/// component), and each machine's fingerprint is cached inside its
/// copy-on-write snapshot (CowMachine). A scheduler slice mutates one
/// machine, so re-hashing a successor costs one machine serialization,
/// not a whole-system pass. `serializeConfig` remains the oracle:
/// `hashConfigFresh` recomputes every fingerprint from the bytes while
/// ignoring and not touching the caches, and the checker's
/// P_VERIFY_HASHES debug path cross-checks the two on every node.
///
//===----------------------------------------------------------------------===//

#ifndef P_CHECKER_STATEHASH_H
#define P_CHECKER_STATEHASH_H

#include "runtime/Config.h"

#include <cstdint>
#include <string>
#include <vector>

namespace p {

/// Appends the canonical serialization of \p Cfg to \p Out.
void serializeConfig(const Config &Cfg, std::string &Out);

/// Appends the canonical serialization of one machine configuration to
/// \p Out — exactly the per-machine block serializeConfig emits, so the
/// config bytes are the concatenation of the global header and each
/// machine's block.
void serializeMachine(const MachineState &M, std::string &Out);

/// 64-bit fingerprint of one machine snapshot, computed from its
/// canonical serialization (never returns 0; 0 is the CowMachine cache
/// sentinel). \p Scratch is clobbered.
uint64_t machineFingerprintFresh(const MachineState &M,
                                 std::string &Scratch);

/// As above, but consults and fills the snapshot's fingerprint cache:
/// O(1) when the snapshot was hashed before and has not been mutated.
uint64_t machineFingerprint(const CowMachine &M, std::string &Scratch);

/// 64-bit fingerprint of \p Cfg: the ordered hashCombine of the global
/// error component, the machine count, and every machine fingerprint.
/// Uses the per-snapshot caches, so successors of a hashed config cost
/// one machine re-hash. Deterministic across runs and worker counts.
uint64_t hashConfig(const Config &Cfg);

/// As above, with an explicit scratch buffer so hot loops reuse one
/// allocation per thread instead of one per call.
uint64_t hashConfig(const Config &Cfg, std::string &Scratch);

/// Cache-oblivious oracle: recomputes every machine fingerprint from
/// its serialization without reading or writing the caches. Equal to
/// hashConfig by construction unless a cache went stale — the
/// P_VERIFY_HASHES cross-check compares the two on every node.
uint64_t hashConfigFresh(const Config &Cfg, std::string &Scratch);

//===----------------------------------------------------------------------===//
// Symmetry support (CheckOptions::Reduce — see DESIGN.md "Reduction")
//===----------------------------------------------------------------------===//

/// Marker bit of a computed refs mask (a computed mask is never 0, so
/// the CowMachine cache can use 0 as its sentinel).
inline constexpr uint64_t RefsComputedBit = 1ull << 63;
/// Set when the state references a machine id outside [0, 62): such a
/// machine must be treated as touched by every permutation.
inline constexpr uint64_t RefsOverflowBit = 1ull << 62;

/// Mask of machine ids referenced by \p M's state (one bit per id in
/// [0, 62), plus RefsOverflowBit for ids outside that range and
/// RefsComputedBit always). A machine whose refs mask is disjoint from
/// a permutation's support serializes to the same bytes under that
/// permutation, so its cached fingerprint can be reused.
uint64_t machineRefsMaskFresh(const MachineState &M);

/// As above, but consults and fills the snapshot's refs-mask cache.
uint64_t machineRefsMask(const CowMachine &M);

/// Appends the serialization of \p M with every machine-typed value
/// renamed through \p Perm (Perm[old] = new; ids outside [0,
/// Perm.size()) pass through). With the identity permutation the bytes
/// equal serializeMachine's exactly.
void serializeMachineMapped(const MachineState &M,
                            const std::vector<int32_t> &Perm,
                            std::string &Out);

/// Appends the canonical serialization of the permuted configuration
/// π·Cfg: machine old-id i's block lands at slot Perm[i] (\p InvPerm is
/// the inverse: slot k reads machine InvPerm[k]), and every
/// machine-typed value is renamed through Perm. With the identity this
/// equals serializeConfig.
void serializeConfigPermuted(const Config &Cfg,
                             const std::vector<int32_t> &Perm,
                             const std::vector<int32_t> &InvPerm,
                             std::string &Out);

/// Fingerprint of π·Cfg, the ordered combination serializeConfigPermuted
/// implies. \p Support is the mask of ids moved by Perm (bits as in
/// machineRefsMask): machines whose refs mask is disjoint from it reuse
/// their cached fingerprint, so the identity costs one cached pass.
uint64_t hashConfigPermuted(const Config &Cfg,
                            const std::vector<int32_t> &Perm,
                            const std::vector<int32_t> &InvPerm,
                            uint64_t Support, std::string &Scratch);

} // namespace p

#endif // P_CHECKER_STATEHASH_H
