//===- checker/StateHash.h - Canonical state fingerprints ------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical byte serialization of global configurations, and 64-bit
/// fingerprints derived from it. The serialization covers every
/// semantically relevant component (call stacks with inherited handler
/// maps and saved continuations, resumable exec frames with operand
/// stacks, variable stores, msg/arg, pending raise/transfer, queues),
/// so two configs serialize equally iff they are semantically equal —
/// the explorer's visited set is exact modulo 64-bit hash collisions
/// (or fully exact in VisitedMode::Exact, which keys on the bytes).
///
/// Fingerprints are *incremental*: the config hash is an ordered
/// combination of per-machine fingerprints (plus the global error
/// component), and each machine's fingerprint is cached inside its
/// copy-on-write snapshot (CowMachine). A scheduler slice mutates one
/// machine, so re-hashing a successor costs one machine serialization,
/// not a whole-system pass. `serializeConfig` remains the oracle:
/// `hashConfigFresh` recomputes every fingerprint from the bytes while
/// ignoring and not touching the caches, and the checker's
/// P_VERIFY_HASHES debug path cross-checks the two on every node.
///
//===----------------------------------------------------------------------===//

#ifndef P_CHECKER_STATEHASH_H
#define P_CHECKER_STATEHASH_H

#include "runtime/Config.h"

#include <cstdint>
#include <string>

namespace p {

/// Appends the canonical serialization of \p Cfg to \p Out.
void serializeConfig(const Config &Cfg, std::string &Out);

/// Appends the canonical serialization of one machine configuration to
/// \p Out — exactly the per-machine block serializeConfig emits, so the
/// config bytes are the concatenation of the global header and each
/// machine's block.
void serializeMachine(const MachineState &M, std::string &Out);

/// 64-bit fingerprint of one machine snapshot, computed from its
/// canonical serialization (never returns 0; 0 is the CowMachine cache
/// sentinel). \p Scratch is clobbered.
uint64_t machineFingerprintFresh(const MachineState &M,
                                 std::string &Scratch);

/// As above, but consults and fills the snapshot's fingerprint cache:
/// O(1) when the snapshot was hashed before and has not been mutated.
uint64_t machineFingerprint(const CowMachine &M, std::string &Scratch);

/// 64-bit fingerprint of \p Cfg: the ordered hashCombine of the global
/// error component, the machine count, and every machine fingerprint.
/// Uses the per-snapshot caches, so successors of a hashed config cost
/// one machine re-hash. Deterministic across runs and worker counts.
uint64_t hashConfig(const Config &Cfg);

/// As above, with an explicit scratch buffer so hot loops reuse one
/// allocation per thread instead of one per call.
uint64_t hashConfig(const Config &Cfg, std::string &Scratch);

/// Cache-oblivious oracle: recomputes every machine fingerprint from
/// its serialization without reading or writing the caches. Equal to
/// hashConfig by construction unless a cache went stale — the
/// P_VERIFY_HASHES cross-check compares the two on every node.
uint64_t hashConfigFresh(const Config &Cfg, std::string &Scratch);

} // namespace p

#endif // P_CHECKER_STATEHASH_H
