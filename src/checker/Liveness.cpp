//===- checker/Liveness.cpp ---------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Liveness.h"

#include "checker/StateHash.h"
#include "runtime/Executor.h"
#include "support/Hashing.h"

#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

using namespace p;

namespace {

using MachineEvent = std::pair<int32_t, int32_t>;

/// One node of the DFS path, with the edge that led into it.
struct PathNode {
  Config Cfg;
  std::deque<int32_t> Sched;
  int DelaysUsed = 0;
  int32_t MustRun = -1;
  uint64_t Key = 0;

  // Edge into this node:
  int32_t ScheduledMachine = -1; ///< -1 for delay edges and the root.
  std::set<MachineEvent> Dequeued;
  std::string Desc;

  // Iteration state: children not yet explored.
  std::vector<PathNode> Pending;
  bool Expanded = false;
};

class LivenessSearch {
public:
  LivenessSearch(const CompiledProgram &Prog, const LivenessOptions &Opts)
      : Prog(Prog), Opts(Opts), Exec(Prog, execOptions(Opts)) {
    Exec.addDequeueObserver([this](int32_t Machine, int32_t Event) {
      CurrentDequeues.insert({Machine, Event});
    });
  }

  LivenessResult run();

private:
  static Executor::Options execOptions(const LivenessOptions &Opts) {
    Executor::Options EO;
    EO.UseModelBodies = Opts.UseModelBodies;
    EO.MaxStepsPerSlice = Opts.MaxStepsPerSlice;
    return EO;
  }

  uint64_t keyOf(const PathNode &N) const {
    std::string Bytes;
    serializeConfig(N.Cfg, Bytes);
    for (int32_t Id : N.Sched) {
      Bytes.push_back(static_cast<char>(Id & 0xff));
      Bytes.push_back(static_cast<char>((Id >> 8) & 0xff));
    }
    Bytes.push_back(static_cast<char>(N.MustRun & 0xff));
    return hashBytes(Bytes.data(), Bytes.size());
  }

  /// Generates the children of \p N (after normalization).
  void expand(PathNode &N);

  /// Checks the cycle path[Start..] closed by \p Closing for a fair
  /// starvation; fills the result on violation.
  bool analyzeCycle(size_t Start, const PathNode &Closing);

  const CompiledProgram &Prog;
  const LivenessOptions &Opts;
  Executor Exec;
  std::set<MachineEvent> CurrentDequeues;

  std::vector<PathNode> Path;
  std::unordered_map<uint64_t, size_t> OnPath; ///< key -> path index.
  std::unordered_map<uint64_t, int> Done;      ///< key -> min delays used.
  LivenessResult Result;
};

void LivenessSearch::expand(PathNode &N) {
  N.Expanded = true;

  // Normalize the scheduler stack.
  while (!N.Sched.empty() && !Exec.isEnabled(N.Cfg, N.Sched.front()))
    N.Sched.pop_front();
  if (N.Sched.empty())
    return; // Quiescent: no outgoing edges, no cycles through here.

  // Delay child.
  if (N.MustRun < 0 && N.DelaysUsed < Opts.DelayBound && N.Sched.size() > 1) {
    PathNode Child;
    Child.Cfg = N.Cfg;
    Child.Sched = N.Sched;
    Child.Sched.push_back(Child.Sched.front());
    Child.Sched.pop_front();
    Child.DelaysUsed = N.DelaysUsed + 1;
    Child.Desc = "delay " + Exec.describeMachine(N.Cfg, N.Sched.front());
    N.Pending.push_back(std::move(Child));
  }

  // Run child(ren).
  int32_t Top = N.MustRun >= 0 ? N.MustRun : N.Sched.front();
  PathNode Child;
  Child.Cfg = N.Cfg;
  Child.Sched = N.Sched;
  Child.DelaysUsed = N.DelaysUsed;
  Child.Desc = "run " + Exec.describeMachine(N.Cfg, Top);
  Child.ScheduledMachine = Top;

  CurrentDequeues.clear();
  Executor::StepResult R = Exec.step(Child.Cfg, Top);
  Child.Dequeued = CurrentDequeues;

  switch (R.Outcome) {
  case Executor::StepOutcome::Error:
    // Safety errors are the Checker's job; a liveness search just does
    // not continue past them.
    return;
  case Executor::StepOutcome::ChoicePoint: {
    PathNode TrueChild = Child;
    TrueChild.Cfg.mutableMachine(Top).InjectedChoice = true;
    TrueChild.MustRun = Top;
    TrueChild.Desc += " (choose true)";
    Child.Cfg.mutableMachine(Top).InjectedChoice = false;
    Child.MustRun = Top;
    Child.Desc += " (choose false)";
    N.Pending.push_back(std::move(TrueChild));
    N.Pending.push_back(std::move(Child));
    return;
  }
  case Executor::StepOutcome::SchedulingPoint: {
    bool InSched = false;
    for (int32_t S : Child.Sched)
      InSched |= (S == R.Other);
    if (!InSched)
      Child.Sched.push_front(R.Other);
    N.Pending.push_back(std::move(Child));
    return;
  }
  case Executor::StepOutcome::Blocked:
    if (!Child.Sched.empty() && Child.Sched.front() == Top)
      Child.Sched.pop_front();
    N.Pending.push_back(std::move(Child));
    return;
  case Executor::StepOutcome::Halted: {
    std::deque<int32_t> Pruned;
    for (int32_t S : Child.Sched)
      if (S != Top)
        Pruned.push_back(S);
    Child.Sched = std::move(Pruned);
    N.Pending.push_back(std::move(Child));
    return;
  }
  }
}

bool LivenessSearch::analyzeCycle(size_t Start, const PathNode &Closing) {
  ++Result.CyclesChecked;

  // Collect the cycle's states and edges. Edges are the ones into
  // path[Start+1..] plus the closing edge.
  std::vector<const Config *> States;
  for (size_t I = Start; I != Path.size(); ++I)
    States.push_back(&Path[I].Cfg);

  std::set<int32_t> Scheduled;
  std::set<MachineEvent> Dequeued;
  for (size_t I = Start + 1; I < Path.size(); ++I) {
    if (Path[I].ScheduledMachine >= 0)
      Scheduled.insert(Path[I].ScheduledMachine);
    Dequeued.insert(Path[I].Dequeued.begin(), Path[I].Dequeued.end());
  }
  if (Closing.ScheduledMachine >= 0)
    Scheduled.insert(Closing.ScheduledMachine);
  Dequeued.insert(Closing.Dequeued.begin(), Closing.Dequeued.end());

  // Weak fairness: a machine enabled at every state of the loop must be
  // scheduled in it; otherwise the loop is an unfair schedule and not a
  // genuine violation.
  size_t NumMachines = States.front()->Machines.size();
  for (size_t M = 0; M != NumMachines; ++M) {
    bool AlwaysEnabled = true;
    for (const Config *Cfg : States)
      AlwaysEnabled &= M < Cfg->Machines.size() &&
                       Exec.isEnabled(*Cfg, static_cast<int32_t>(M));
    if (AlwaysEnabled && !Scheduled.count(static_cast<int32_t>(M)))
      return false;
  }

  // Starvation: a queue entry present at every state, never dequeued on
  // any edge, and not always postponed.
  const Config &First = *States.front();
  for (size_t M = 0; M != First.Machines.size(); ++M) {
    const MachineState &MS = *First.Machines[M];
    if (!MS.Alive)
      continue;
    for (const auto &[Event, Arg] : MS.Queue) {
      if (Dequeued.count({static_cast<int32_t>(M), Event}))
        continue;
      bool Persistent = true;
      bool AlwaysPostponed = true;
      for (const Config *Cfg : States) {
        if (M >= Cfg->Machines.size() || !Cfg->Machines[M]->Alive) {
          Persistent = false;
          break;
        }
        const MachineState &CMS = *Cfg->Machines[M];
        bool Present = false;
        for (const auto &[E2, V2] : CMS.Queue)
          Present |= (E2 == Event && V2 == Arg);
        if (!Present) {
          Persistent = false;
          break;
        }
        if (!CMS.Frames.empty()) {
          const StateInfo &St = Prog.Machines[CMS.MachineIndex]
                                    .States[CMS.Frames.back().State];
          AlwaysPostponed &= St.Postponed.test(Event);
        }
      }
      if (!Persistent || AlwaysPostponed)
        continue;

      Result.ViolationFound = true;
      Result.Message =
          "event '" + Prog.Events[Event].Name + "' pending at " +
          Exec.describeMachine(First, static_cast<int32_t>(M)) +
          " can be deferred forever under fair scheduling";
      for (size_t I = Start; I != Path.size(); ++I)
        Result.CycleTrace.push_back(Path[I].Desc.empty() ? "(start)"
                                                         : Path[I].Desc);
      Result.CycleTrace.push_back(Closing.Desc + " (closes the loop)");
      return true;
    }
  }
  return false;
}

LivenessResult LivenessSearch::run() {
  PathNode Root;
  Root.Cfg = Exec.makeInitialConfig();
  Root.Sched.push_back(0);
  Root.Key = keyOf(Root);
  Path.push_back(std::move(Root));
  OnPath[Path.back().Key] = 0;
  ++Result.NodesExplored;

  while (!Path.empty()) {
    if (Opts.MaxNodes && Result.NodesExplored >= Opts.MaxNodes) {
      Result.Exhausted = false;
      break;
    }
    PathNode &Top = Path.back();
    if (!Top.Expanded)
      expand(Top);

    if (Top.Pending.empty()) {
      auto It = Done.find(Top.Key);
      if (It == Done.end() || It->second > Top.DelaysUsed)
        Done[Top.Key] = Top.DelaysUsed;
      OnPath.erase(Top.Key);
      Path.pop_back();
      continue;
    }

    PathNode Child = std::move(Top.Pending.back());
    Top.Pending.pop_back();
    Child.Key = keyOf(Child);

    auto OnIt = OnPath.find(Child.Key);
    if (OnIt != OnPath.end()) {
      if (analyzeCycle(OnIt->second, Child))
        return Result;
      continue;
    }
    auto DoneIt = Done.find(Child.Key);
    if (DoneIt != Done.end() && DoneIt->second <= Child.DelaysUsed)
      continue;
    if (static_cast<int>(Path.size()) >= Opts.DepthBound) {
      Result.Exhausted = false;
      continue;
    }
    ++Result.NodesExplored;
    OnPath[Child.Key] = Path.size();
    Path.push_back(std::move(Child));
  }
  return Result;
}

} // namespace

LivenessResult p::checkLiveness(const CompiledProgram &Prog,
                                const LivenessOptions &Opts) {
  LivenessSearch Search(Prog, Opts);
  return Search.run();
}
