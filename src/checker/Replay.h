//===- checker/Replay.h - Deterministic schedule replay ---------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a schedule (a sequence of SchedDecisions, e.g. the
/// counterexample from a check() run) deterministically: the same
/// decisions applied to the same program reproduce the same final
/// configuration, including the error. This is the debugging loop the
/// paper's methodology implies — the verifier finds a corner case, the
/// developer re-executes it step by step.
///
//===----------------------------------------------------------------------===//

#ifndef P_CHECKER_REPLAY_H
#define P_CHECKER_REPLAY_H

#include "checker/Checker.h"
#include "runtime/Config.h"

#include <string>
#include <vector>

namespace p {

/// Result of a replay.
struct ReplayResult {
  Config Final;                   ///< Configuration after the last step.
  bool ErrorReached = false;
  ErrorKind Error = ErrorKind::None;
  std::string ErrorMessage;
  std::vector<std::string> Steps; ///< Human-readable replay log.
};

/// Replays \p Schedule against a fresh initial configuration of
/// \p Prog. \p UseModelBodies selects the verification build semantics
/// (must match the options of the producing check() run).
ReplayResult replaySchedule(const CompiledProgram &Prog,
                            const std::vector<SchedDecision> &Schedule,
                            bool UseModelBodies = true);

} // namespace p

#endif // P_CHECKER_REPLAY_H
