//===- checker/FrontierStore.cpp ---------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/FrontierStore.h"

#include <cerrno>
#include <cstring>

using namespace p;
using namespace p::ckpt;

FrontierStore::FrontierStore(std::string PathIn) : Path(std::move(PathIn)) {
  F = std::fopen(Path.c_str(), "wb+");
}

FrontierStore::~FrontierStore() {
  if (F)
    std::fclose(F);
  std::remove(Path.c_str());
}

bool FrontierStore::spill(const std::vector<FrontierNode> &Nodes,
                          std::string *Why) {
  if (Nodes.empty())
    return true;
  std::string Blob;
  for (const FrontierNode &N : Nodes)
    appendFrontierNode(N, Blob);

  std::lock_guard<std::mutex> Lock(Mu);
  if (!F) {
    if (Why)
      *Why = "spill file " + Path + " is not open";
    return false;
  }
  if (std::fseek(F, static_cast<long>(WriteOff), SEEK_SET) != 0 ||
      std::fwrite(Blob.data(), 1, Blob.size(), F) != Blob.size()) {
    if (Why)
      *Why = "cannot write spill segment to " + Path + ": " +
             std::strerror(errno);
    return false;
  }
  Segments.push_back({WriteOff, Blob.size(), Nodes.size()});
  WriteOff += Blob.size();
  Pending += Nodes.size();
  TotalNodes += Nodes.size();
  TotalBytes += Blob.size();
  return true;
}

bool FrontierStore::readSegment(const Segment &S,
                                std::vector<FrontierNode> &Out,
                                std::string *Why) {
  std::string Blob(S.Bytes, '\0');
  if (std::fseek(F, static_cast<long>(S.Offset), SEEK_SET) != 0 ||
      std::fread(Blob.data(), 1, Blob.size(), F) != Blob.size()) {
    if (Why)
      *Why = "cannot read spill segment from " + Path + ": " +
             std::strerror(errno);
    return false;
  }
  ByteReader R(Blob.data(), Blob.size());
  for (uint64_t I = 0; I != S.Nodes; ++I) {
    Out.emplace_back();
    if (!readFrontierNode(R, Out.back())) {
      if (Why)
        *Why = "malformed spill segment in " + Path;
      return false;
    }
  }
  return true;
}

bool FrontierStore::reload(std::vector<FrontierNode> &Nodes,
                           std::string *Why, uint64_t *DroppedNodes) {
  Nodes.clear();
  if (DroppedNodes)
    *DroppedNodes = 0;
  std::lock_guard<std::mutex> Lock(Mu);
  if (!F || Segments.empty())
    return false;
  Segment S = Segments.back();
  const bool Read = readSegment(S, Nodes, Why);
  Segments.pop_back();
  Pending -= S.Nodes;
  if (!Read) {
    // The segment is unreadable now and will stay unreadable; keeping
    // it queued would make every idle worker retry it forever.
    Nodes.clear();
    if (DroppedNodes)
      *DroppedNodes = S.Nodes;
    if (Segments.empty())
      WriteOff = 0;
    return false;
  }
  // Fully drained: rewind the append position so a spiky search does
  // not grow the file monotonically.
  if (Segments.empty())
    WriteOff = 0;
  return true;
}

bool FrontierStore::snapshot(std::vector<FrontierNode> &Out,
                             std::string *Why) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!F)
    return Segments.empty();
  for (const Segment &S : Segments)
    if (!readSegment(S, Out, Why))
      return false;
  return true;
}

uint64_t FrontierStore::pendingNodes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Pending;
}
