//===- checker/Checker.cpp ---------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"

#include "checker/ParallelSearch.h"

#include <cstring>

using namespace p;

CheckResult p::check(const CompiledProgram &Prog, const CheckOptions &Opts,
                     Executor *Exec) {
  return runParallelSearch(Prog, Opts, Exec);
}

bool p::parseReduction(const char *Name, Reduction &Out) {
  for (Reduction R : {Reduction::Off, Reduction::Sleep, Reduction::Symmetry,
                      Reduction::Both})
    if (!std::strcmp(Name, reductionName(R))) {
      Out = R;
      return true;
    }
  return false;
}

std::string CoverageReport::str(const CompiledProgram &Prog) const {
  std::string Out;
  for (size_t I = 0; I != Machines.size() && I != Prog.Machines.size();
       ++I) {
    const MachineInfo &Info = Prog.Machines[I];
    const MachineCoverage &Cov = Machines[I];
    if (Cov.StatesVisited.empty())
      continue; // Never instantiated (e.g. erased ghost machines).
    Out += Info.Name + ": states " +
           std::to_string(Cov.StatesVisited.size()) + "/" +
           std::to_string(Info.States.size()) + ", transitions " +
           std::to_string(Cov.TransitionsFired.size()) + "/" +
           std::to_string(Info.countTransitions()) + "\n";
    // Name anything never reached; that is what a tester acts on.
    for (size_t S = 0; S != Info.States.size(); ++S)
      if (!Cov.StatesVisited.count(static_cast<int32_t>(S)))
        Out += "  unreached state: " + Info.States[S].Name + "\n";
  }
  return Out;
}
