//===- checker/Checker.cpp ---------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"

#include "checker/StateHash.h"
#include "support/Hashing.h"

#include <cassert>
#include <chrono>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace p;

namespace {

/// A node of the schedule tree.
struct Node {
  Config Cfg;
  std::deque<int32_t> Sched; ///< The delaying scheduler's stack S.
  int DelaysUsed = 0;
  int Depth = 0;
  int32_t MustRun = -1; ///< Machine to resume after a choice point.
  int TraceIdx = -1;    ///< Index into the trace arena.
};

/// Trace arena entry: a description plus its parent, and the structured
/// decision it corresponds to (HasDecision false for annotations like
/// outcome suffixes folded into the text).
struct TraceEntry {
  int Parent;
  std::string Text;
  SchedDecision Decision;
  bool HasDecision = false;
};

class Search {
public:
  Search(const CompiledProgram &Prog, const CheckOptions &Opts,
         Executor *ExternalExec)
      : Prog(Prog), Opts(Opts),
        OwnedExec(Prog, execOptions(Opts)),
        Exec(ExternalExec ? *ExternalExec : OwnedExec) {
    if (Opts.TrackCoverage) {
      Result.Coverage.Machines.resize(Prog.Machines.size());
      Exec.setDispatchObserver([this](int32_t Type, int32_t State,
                                      int32_t Event, TransitionKind Kind) {
        auto &Cov = Result.Coverage.Machines[Type];
        Cov.StatesVisited.insert(State);
        if (Kind != TransitionKind::None)
          Cov.TransitionsFired.insert({State, Event});
      });
    }
  }

  CheckResult run();

private:
  static Executor::Options execOptions(const CheckOptions &Opts) {
    Executor::Options EO;
    EO.UseModelBodies = Opts.UseModelBodies;
    EO.MaxStepsPerSlice = Opts.MaxStepsPerSlice;
    return EO;
  }

  /// Records a trace entry; returns its arena index.
  int trace(int Parent, std::string Text) {
    TraceEntry E;
    E.Parent = Parent;
    E.Text = std::move(Text);
    Arena.push_back(std::move(E));
    return static_cast<int>(Arena.size()) - 1;
  }

  /// Records a trace entry carrying a replayable decision.
  int trace(int Parent, std::string Text, SchedDecision Decision) {
    int Index = trace(Parent, std::move(Text));
    Arena[Index].Decision = Decision;
    Arena[Index].HasDecision = true;
    return Index;
  }

  std::vector<std::string> traceFrom(int Index) const {
    std::vector<std::string> Out;
    for (int I = Index; I >= 0; I = Arena[I].Parent)
      Out.push_back(Arena[I].Text);
    std::reverse(Out.begin(), Out.end());
    return Out;
  }

  std::vector<SchedDecision> scheduleFrom(int Index) const {
    std::vector<SchedDecision> Out;
    for (int I = Index; I >= 0; I = Arena[I].Parent)
      if (Arena[I].HasDecision)
        Out.push_back(Arena[I].Decision);
    std::reverse(Out.begin(), Out.end());
    return Out;
  }

  /// Deduplication key of a search node: config + scheduler stack (the
  /// future depends on both). Delay budget is handled by dominance:
  /// reaching the same key having used fewer delays dominates.
  uint64_t nodeKey(const Node &N, std::string *BytesOut) const {
    std::string Bytes;
    serializeConfig(N.Cfg, Bytes);
    if (Opts.Strategy == SearchStrategy::DelayBounded) {
      for (int32_t Id : N.Sched) {
        Bytes.push_back(static_cast<char>(Id & 0xff));
        Bytes.push_back(static_cast<char>((Id >> 8) & 0xff));
      }
    }
    Bytes.push_back(static_cast<char>(N.MustRun & 0xff));
    uint64_t Key = hashBytes(Bytes.data(), Bytes.size());
    if (BytesOut)
      *BytesOut = std::move(Bytes);
    return Key;
  }

  /// Counts a distinct global configuration.
  void noteConfig(const Config &Cfg) {
    bool New = SeenConfigs.insert(hashConfig(Cfg)).second;
    Stats.DistinctStates += New;
    if (New && Opts.TrackCoverage) {
      // Every state on a reachable call stack counts as visited.
      for (const MachineState &M : Cfg.Machines) {
        if (!M.Alive)
          continue;
        auto &Cov = Result.Coverage.Machines[M.MachineIndex];
        for (const StateFrame &F : M.Frames)
          Cov.StatesVisited.insert(F.State);
      }
    }
  }

  /// True when the node was seen before with an equal-or-smaller delay
  /// budget spent (dominance pruning).
  bool pruned(const Node &N) {
    std::string Bytes;
    uint64_t Key = nodeKey(N, Opts.ExactStates ? &Bytes : nullptr);
    if (Opts.ExactStates) {
      auto [It, Inserted] = VisitedExact.try_emplace(std::move(Bytes),
                                                     N.DelaysUsed);
      if (Inserted)
        return false;
      if (It->second <= N.DelaysUsed)
        return true;
      It->second = N.DelaysUsed;
      return false;
    }
    auto [It, Inserted] = Visited.try_emplace(Key, N.DelaysUsed);
    if (Inserted)
      return false;
    if (It->second <= N.DelaysUsed)
      return true;
    It->second = N.DelaysUsed;
    return false;
  }

  void recordError(const Node &N) {
    ++Stats.ErrorsFound;
    if (Result.ErrorFound)
      return; // Keep the first counterexample.
    Result.ErrorFound = true;
    Result.Error = N.Cfg.Error;
    Result.ErrorMessage = N.Cfg.ErrorMessage;
    Result.Trace = traceFrom(N.TraceIdx);
    Result.Schedule = scheduleFrom(N.TraceIdx);
    Result.DelaysUsedOnError =
        Opts.Strategy == SearchStrategy::DelayBounded ? N.DelaysUsed : -1;
  }

  /// Runs machine \p Id for one slice in \p N's config and pushes the
  /// resulting child node(s).
  void expandRun(Node &&N, int32_t Id);
  void expandDelayBounded(Node &&N);
  void expandDepthBounded(Node &&N);

  const CompiledProgram &Prog;
  const CheckOptions &Opts;
  Executor OwnedExec;
  Executor &Exec;

  std::vector<Node> Stack; ///< DFS worklist.
  std::vector<TraceEntry> Arena;
  std::unordered_set<uint64_t> SeenConfigs;
  std::unordered_map<uint64_t, int> Visited;
  std::unordered_map<std::string, int> VisitedExact;
  CheckStats Stats;
  CheckResult Result;
  bool Done = false;
};

void Search::expandRun(Node &&N, int32_t Id) {
  std::string Desc = "run " + Exec.describeMachine(N.Cfg, Id);
  Executor::StepResult R = Exec.step(N.Cfg, Id);
  ++Stats.Slices;
  N.Depth += 1;
  N.MustRun = -1;
  Stats.MaxDepth = std::max(Stats.MaxDepth, N.Depth);

  SchedDecision RunDecision;
  RunDecision.K = SchedDecision::Kind::Run;
  RunDecision.Machine = Id;

  switch (R.Outcome) {
  case Executor::StepOutcome::Error: {
    N.TraceIdx = trace(N.TraceIdx,
                       Desc + " -> error: " + N.Cfg.ErrorMessage,
                       RunDecision);
    noteConfig(N.Cfg);
    recordError(N);
    if (Opts.StopOnFirstError)
      Done = true;
    return;
  }
  case Executor::StepOutcome::ChoicePoint: {
    // Branch on the `*`: two children, the same machine resumes.
    N.TraceIdx = trace(N.TraceIdx, Desc + " -> choice", RunDecision);
    N.MustRun = Id;
    SchedDecision ChooseTrue, ChooseFalse;
    ChooseTrue.K = ChooseFalse.K = SchedDecision::Kind::Choose;
    ChooseTrue.Choice = true;
    Node TrueChild = N; // copy
    TrueChild.Cfg.Machines[Id].InjectedChoice = true;
    TrueChild.TraceIdx =
        trace(TrueChild.TraceIdx, "choose true", ChooseTrue);
    N.Cfg.Machines[Id].InjectedChoice = false;
    N.TraceIdx = trace(N.TraceIdx, "choose false", ChooseFalse);
    Stack.push_back(std::move(TrueChild));
    Stack.push_back(std::move(N));
    return;
  }
  case Executor::StepOutcome::SchedulingPoint: {
    const char *What = R.Created ? " -> created " : " -> sent to ";
    N.TraceIdx = trace(N.TraceIdx, Desc + What + std::to_string(R.Other),
                       RunDecision);
    if (Opts.Strategy == SearchStrategy::DelayBounded) {
      bool InSched = false;
      for (int32_t S : N.Sched)
        InSched |= (S == R.Other);
      if (!InSched)
        N.Sched.push_front(R.Other);
    }
    Stack.push_back(std::move(N));
    return;
  }
  case Executor::StepOutcome::Blocked: {
    N.TraceIdx = trace(N.TraceIdx, Desc + " -> blocked", RunDecision);
    if (Opts.Strategy == SearchStrategy::DelayBounded) {
      assert(!N.Sched.empty() && N.Sched.front() == Id);
      N.Sched.pop_front();
    }
    Stack.push_back(std::move(N));
    return;
  }
  case Executor::StepOutcome::Halted: {
    N.TraceIdx = trace(N.TraceIdx, Desc + " -> halted", RunDecision);
    if (Opts.Strategy == SearchStrategy::DelayBounded) {
      for (auto It = N.Sched.begin(); It != N.Sched.end();)
        It = (*It == Id) ? N.Sched.erase(It) : std::next(It);
    }
    Stack.push_back(std::move(N));
    return;
  }
  }
}

void Search::expandDelayBounded(Node &&N) {
  noteConfig(N.Cfg);

  // Normalize: drop disabled machines from the top of S.
  while (!N.Sched.empty() && !Exec.isEnabled(N.Cfg, N.Sched.front()))
    N.Sched.pop_front();

  if (N.Sched.empty()) {
    // Re-arm any enabled machine missed by the causal discipline
    // (cannot normally happen; defensive completeness).
    for (int32_t Id = 0;
         Id < static_cast<int32_t>(N.Cfg.Machines.size()); ++Id)
      if (Exec.isEnabled(N.Cfg, Id)) {
        N.Sched.push_back(Id);
        break;
      }
    if (N.Sched.empty()) {
      ++Stats.Terminals; // Quiescent: every machine awaits events.
      if (Opts.CollectTerminals)
        Result.TerminalHashes.push_back(hashConfig(N.Cfg));
      return;
    }
  }

  if (pruned(N))
    return;
  ++Stats.NodesExplored;
  if (N.Depth >= Opts.DepthBound) {
    Stats.Exhausted = false;
    return;
  }

  // Children are pushed so the zero-cost "run the top" branch is
  // explored first (DFS pops last-pushed first): push delay first.
  if (N.MustRun < 0 && N.DelaysUsed < Opts.DelayBound &&
      N.Sched.size() > 1) {
    Node Delayed = N; // copy
    Delayed.Sched.push_back(Delayed.Sched.front());
    Delayed.Sched.pop_front();
    Delayed.DelaysUsed += 1;
    SchedDecision DelayDecision;
    DelayDecision.K = SchedDecision::Kind::Delay;
    Delayed.TraceIdx =
        trace(Delayed.TraceIdx,
              "delay " + Exec.describeMachine(Delayed.Cfg,
                                              Delayed.Sched.back()),
              DelayDecision);
    Stack.push_back(std::move(Delayed));
  }

  int32_t Top = N.MustRun >= 0 ? N.MustRun : N.Sched.front();
  expandRun(std::move(N), Top);
}

void Search::expandDepthBounded(Node &&N) {
  noteConfig(N.Cfg);
  if (pruned(N))
    return;
  ++Stats.NodesExplored;
  if (N.Depth >= Opts.DepthBound) {
    Stats.Exhausted = false;
    return;
  }

  if (N.MustRun >= 0) {
    int32_t Id = N.MustRun;
    expandRun(std::move(N), Id);
    return;
  }

  bool Any = false;
  for (int32_t Id = static_cast<int32_t>(N.Cfg.Machines.size()); Id-- > 0;) {
    if (!Exec.isEnabled(N.Cfg, Id))
      continue;
    Any = true;
    Node Child = N; // copy per enabled machine
    expandRun(std::move(Child), Id);
    if (Done)
      return;
  }
  if (!Any) {
    ++Stats.Terminals;
    if (Opts.CollectTerminals)
      Result.TerminalHashes.push_back(hashConfig(N.Cfg));
  }
}

CheckResult Search::run() {
  auto Start = std::chrono::steady_clock::now();

  Node Root;
  Root.Cfg = Exec.makeInitialConfig();
  Root.Sched.push_back(0);
  Root.TraceIdx = trace(-1, "initial: create " +
                                Exec.describeMachine(Root.Cfg, 0));
  Stack.push_back(std::move(Root));

  while (!Stack.empty() && !Done) {
    if (Opts.MaxNodes && Stats.NodesExplored >= Opts.MaxNodes) {
      Stats.Exhausted = false;
      break;
    }
    Node N = std::move(Stack.back());
    Stack.pop_back();
    if (N.Cfg.hasError()) {
      // Error configs produced directly (e.g. by enqueue) get recorded
      // here; expandRun already records errors from slices.
      recordError(N);
      if (Opts.StopOnFirstError)
        break;
      continue;
    }
    if (Opts.Strategy == SearchStrategy::DelayBounded)
      expandDelayBounded(std::move(N));
    else
      expandDepthBounded(std::move(N));
  }

  if (!Stack.empty())
    Stats.Exhausted = false;

  Stats.Seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  Stats.VisitedBytes =
      Opts.ExactStates
          ? [this] {
              uint64_t Sum = 0;
              for (const auto &[K, V] : VisitedExact)
                Sum += K.size() + sizeof(int);
              return Sum;
            }()
          : Visited.size() * (sizeof(uint64_t) + sizeof(int));
  Result.Stats = Stats;
  return Result;
}

} // namespace

CheckResult p::check(const CompiledProgram &Prog, const CheckOptions &Opts,
                     Executor *Exec) {
  Search S(Prog, Opts, Exec);
  return S.run();
}

std::string CoverageReport::str(const CompiledProgram &Prog) const {
  std::string Out;
  for (size_t I = 0; I != Machines.size() && I != Prog.Machines.size();
       ++I) {
    const MachineInfo &Info = Prog.Machines[I];
    const MachineCoverage &Cov = Machines[I];
    if (Cov.StatesVisited.empty())
      continue; // Never instantiated (e.g. erased ghost machines).
    Out += Info.Name + ": states " +
           std::to_string(Cov.StatesVisited.size()) + "/" +
           std::to_string(Info.States.size()) + ", transitions " +
           std::to_string(Cov.TransitionsFired.size()) + "/" +
           std::to_string(Info.countTransitions()) + "\n";
    // Name anything never reached; that is what a tester acts on.
    for (size_t S = 0; S != Info.States.size(); ++S)
      if (!Cov.StatesVisited.count(static_cast<int32_t>(S)))
        Out += "  unreached state: " + Info.States[S].Name + "\n";
  }
  return Out;
}
