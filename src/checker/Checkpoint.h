//===- checker/Checkpoint.h - Crash-safe search checkpoints ----------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On-disk checkpoints of an in-flight check() run, so a multi-hour
/// search survives its own process: kill the checker mid-search (or let
/// it die), restart with CheckOptions::Resume, and the search finishes
/// with bit-identical DistinctStates/Terminals/TerminalHashes to an
/// uninterrupted run — the PR-1 determinism contract extended across
/// process lifetimes.
///
/// A checkpoint captures everything the search owes its future to:
///
///  * the frontier — every pending node (full machine configurations
///    via a lossless round-trip codec, scheduler stacks, delay/fault
///    budgets, sleep sets, and the decision path from the root so
///    counterexample traces survive the restart), including nodes the
///    FrontierStore spilled to disk;
///  * the visited/terminal tables of all three VisitedModes (the
///    sharded hash/exact maps with their dominance values and sleep
///    Pareto frontiers, or Compact mode's raw bounded slot arrays);
///  * CheckStats counters, the lex-least error record, collected
///    terminal hashes, and structural coverage.
///
/// File format (little-endian): an 8-byte magic, a u32 format version,
/// a u64 program+options fingerprint, a u64 payload length, the
/// payload, and a CRC-32 of everything before it. Files are published
/// with writeFileAtomic (temp + fsync + rename), so a crash during a
/// checkpoint leaves the previous checkpoint intact; a torn, truncated,
/// bit-flipped, version-skewed, or wrong-program file is *detected and
/// rejected* with a reason — never silently reused.
///
//===----------------------------------------------------------------------===//

#ifndef P_CHECKER_CHECKPOINT_H
#define P_CHECKER_CHECKPOINT_H

#include "checker/Checker.h"
#include "runtime/Config.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace p {
namespace ckpt {

/// Format version; bump on any layout change. Old files are rejected
/// with a version-mismatch error, not misparsed.
inline constexpr uint32_t FormatVersion = 1;

/// CRC-32 (IEEE, reflected) over a byte range. Exposed so tests can
/// forge structurally-valid-but-stale files (e.g. version skew with a
/// recomputed CRC) and corrupted-file units can assert the failure mode.
uint32_t crc32(const void *Data, size_t Len);

//===----------------------------------------------------------------------===//
// Byte codec
//===----------------------------------------------------------------------===//

/// Little-endian append-only writer over a std::string buffer.
class ByteWriter {
public:
  explicit ByteWriter(std::string &Out) : Out(Out) {}

  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void f64(double V);
  void str(const std::string &S) {
    u64(S.size());
    Out.append(S);
  }

private:
  std::string &Out;
};

/// Bounds-checked little-endian reader. Every getter returns a value
/// and clears ok() on underrun; callers check ok() once at the end of a
/// section instead of after every field (a failed read yields zeros,
/// which the final check discards wholesale).
class ByteReader {
public:
  ByteReader(const char *Data, size_t Len) : Data(Data), Len(Len) {}

  uint8_t u8() {
    if (Pos + 1 > Len)
      return fail();
    return static_cast<uint8_t>(Data[Pos++]);
  }
  uint32_t u32() {
    uint32_t V = 0;
    if (Pos + 4 > Len)
      return fail();
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Data[Pos++]))
           << (8 * I);
    return V;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  uint64_t u64() {
    uint64_t V = 0;
    if (Pos + 8 > Len)
      return fail();
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Data[Pos++]))
           << (8 * I);
    return V;
  }
  double f64();
  std::string str() {
    uint64_t N = u64();
    if (!OkFlag || Pos + N > Len) {
      fail();
      return {};
    }
    std::string S(Data + Pos, N);
    Pos += N;
    return S;
  }

  bool ok() const { return OkFlag; }
  bool atEnd() const { return Pos == Len; }
  size_t pos() const { return Pos; }

private:
  uint8_t fail() {
    OkFlag = false;
    return 0;
  }
  const char *Data;
  size_t Len;
  size_t Pos = 0;
  bool OkFlag = true;
};

//===----------------------------------------------------------------------===//
// Frontier nodes
//===----------------------------------------------------------------------===//

/// One pending search node in engine-neutral form: the full machine
/// configuration, the delaying scheduler's stack, the budgets spent,
/// the sleep set, and the decision path from the root (so the restored
/// node can still materialize a counterexample trace). The same codec
/// serves both checkpoints and the FrontierStore's spill segments.
struct FrontierNode {
  Config Cfg;
  std::vector<int32_t> Sched;
  int32_t DelaysUsed = 0;
  int32_t FaultsUsed = 0;
  int32_t Depth = 0;
  int32_t MustRun = -1;
  int32_t ByType = -1;
  /// Sleep-set entries as (machine id, footprint mask) pairs.
  std::vector<std::pair<int32_t, uint64_t>> Sleep;
  /// The decisions that produced this node, root-first.
  std::vector<SchedDecision> Schedule;
};

/// Lossless Config round-trip (unlike checker/StateHash.h's canonical
/// serialization, dead machines keep their residual fields too, so a
/// restored configuration is field-for-field identical).
void appendConfig(const Config &Cfg, ByteWriter &W);
bool readConfig(ByteReader &R, Config &Cfg);

void appendFrontierNode(const FrontierNode &N, std::string &Out);
bool readFrontierNode(ByteReader &R, FrontierNode &N);

//===----------------------------------------------------------------------===//
// Checkpoint payload
//===----------------------------------------------------------------------===//

/// Everything a resumed run restores, in plain data form. The engine
/// (checker/ParallelSearch.cpp) converts between this and its sharded
/// internal tables on capture/restore.
struct CheckpointData {
  /// Compatibility token (see searchFingerprint): resuming under a
  /// different program or search-relevant options is rejected.
  uint64_t Fingerprint = 0;

  // Deterministic and diagnostic counters of the run so far.
  uint64_t DistinctStates = 0;
  uint64_t NodesExplored = 0;
  uint64_t Slices = 0;
  uint64_t Terminals = 0;
  uint64_t ErrorsFound = 0;
  uint64_t FaultsInjected = 0;
  uint64_t PrunedByIndependence = 0;
  uint64_t SymmetryCollapsed = 0;
  uint64_t HashMismatches = 0;
  uint64_t StealCount = 0;
  uint64_t ContentionNs = 0;
  uint64_t CheckpointsWritten = 0;
  uint64_t FrontierSpilledNodes = 0;
  uint64_t FrontierSpillBytes = 0;
  int32_t MaxDepth = 0;
  double ElapsedSeconds = 0;
  bool OmissionPossible = false;
  bool Exhausted = true;

  /// One recorded dominance exploration under Reduction::Sleep.
  struct SleepDom {
    int32_t Delays = 0;
    uint64_t Mask = 0;
  };

  // Visited tables (Exact/Fingerprint modes; flattened across shards).
  std::vector<std::pair<uint64_t, int32_t>> Hashed;
  std::vector<std::pair<std::string, int32_t>> Exact;
  std::vector<std::pair<uint64_t, std::vector<SleepDom>>> HashedSleep;
  std::vector<std::pair<std::string, std::vector<SleepDom>>> ExactSleep;
  /// Distinct-configuration and terminal fingerprint sets.
  std::vector<uint64_t> Seen;
  std::vector<uint64_t> TerminalSet;

  /// Compact mode's raw bounded tables (empty in the other modes). The
  /// slot array layout is stripe-positional, so PerStripe must match on
  /// restore — guaranteed by VisitedCapBytes joining the fingerprint.
  struct CompactImage {
    uint64_t PerStripe = 0;
    std::vector<uint64_t> Fps;
    std::vector<int32_t> Delays;
    std::vector<uint64_t> Masks; ///< Sleep sidecar; empty when off.
  };
  CompactImage CompactDedup;
  CompactImage CompactSeen;

  // Result-side state.
  std::vector<uint64_t> TerminalHashes; ///< CollectTerminals only.
  CoverageReport Coverage;              ///< TrackCoverage only.
  bool BestFound = false;
  ErrorKind BestKind = ErrorKind::None;
  std::string BestMessage;
  int32_t BestDelays = -1;
  int32_t BestFaults = -1;
  std::vector<SchedDecision> BestSchedule;

  /// Pending nodes (in-memory frontiers in worker order plus spilled
  /// segments), in capture order — a serial resume replays the exact
  /// DFS stack.
  std::vector<FrontierNode> Frontier;
};

/// Compatibility fingerprint of (program, search-relevant options).
/// Covers the program's structure (events, machines, states, bodies)
/// and every option that changes what is explored or how it is keyed
/// (strategy, bounds, visited mode and cap, fault spec, queue policy,
/// reduction, terminal collection). Deliberately excludes Workers —
/// the determinism contract makes resuming under a different worker
/// count legal — and pure observers (tracing, metrics, progress,
/// profiling).
uint64_t searchFingerprint(const CompiledProgram &Prog,
                           const CheckOptions &Opts);

/// Serializes \p D and publishes it at \p Path atomically. On success
/// fills \p BytesWritten (when given) with the file size. On failure
/// returns false with a reason in \p Why; the previous checkpoint file,
/// if any, is left intact.
bool saveCheckpoint(const std::string &Path, const CheckpointData &D,
                    std::string &Why, uint64_t *BytesWritten = nullptr);

/// Loads and verifies a checkpoint: magic, format version, CRC-32, and
/// the program/options fingerprint (compared against D.Fingerprint,
/// which the caller pre-fills with the current run's value) are all
/// checked before any payload field is trusted. Returns false with a
/// specific reason — "not a checkpoint", "version N (expected M)",
/// "CRC mismatch (truncated or corrupted)", "fingerprint mismatch" —
/// on any defect.
bool loadCheckpoint(const std::string &Path, CheckpointData &D,
                    std::string &Why);

} // namespace ckpt
} // namespace p

#endif // P_CHECKER_CHECKPOINT_H
