//===- checker/ParallelSearch.h - Parallel state-space exploration ---------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exploration engine behind check(): Opts.Workers threads, each
/// with its own Executor and local DFS stack, sharing
///
///  * a sharded visited table — N mutex-guarded shards keyed by the top
///    bits of the node hash, holding the delay-dominance value, so the
///    "fewer delays dominates" pruning rule stays sound under
///    concurrent insertion;
///  * a work-stealing frontier — idle workers steal the oldest
///    (shallowest) nodes from a victim's deque, keeping breadth
///    available near the root while owners run depth-first.
///
/// Independent of the threading, the hot path serializes each
/// configuration once per node into a reusable per-worker buffer: the
/// distinct-config fingerprint hashes the prefix, the dedup key hashes
/// the same buffer after the scheduler-stack suffix is appended. Trace
/// entries store only the structured decision; counterexample text is
/// rendered lazily by re-executing the schedule.
///
/// Determinism contract (exhausted searches): ErrorFound, Error,
/// DistinctStates, Terminals and TerminalHashes-as-a-set do not depend
/// on the worker count; the reported counterexample is the one with the
/// lexicographically-least schedule among those found before the stop.
/// Workers == 1 runs on the calling thread and explores in exactly the
/// classic serial DFS order.
///
//===----------------------------------------------------------------------===//

#ifndef P_CHECKER_PARALLELSEARCH_H
#define P_CHECKER_PARALLELSEARCH_H

#include "checker/Checker.h"

namespace p {

/// Runs the (possibly parallel) exploration of \p Prog under \p Opts.
/// \p Exec supplies foreign-function registrations and options; each
/// worker steps with its own copy so observer callbacks stay
/// thread-local. Pass nullptr to use a fresh executor.
CheckResult runParallelSearch(const CompiledProgram &Prog,
                              const CheckOptions &Opts, Executor *Exec);

} // namespace p

#endif // P_CHECKER_PARALLELSEARCH_H
