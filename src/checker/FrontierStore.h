//===- checker/FrontierStore.h - Disk-spillable search frontier ------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-core frontier storage. Breadth-heavy searches (high delay
/// bounds, fault budgets) can queue far more pending nodes than fit in
/// memory; when CheckOptions::FrontierMemLimitBytes is set, the engine
/// spills cold nodes — the *oldest* entries of a worker's deque, the
/// breadth a depth-first worker will not revisit for a long time —
/// through this store and reloads them when workers run dry.
///
/// The store is a process-lifetime append-only file of segments, each a
/// batch of ckpt::FrontierNode blobs (the same lossless codec
/// checkpoints use). Segments are reloaded LIFO. The file is never
/// meant to outlive the process: a checkpoint embeds every pending
/// spilled node (see snapshot()), so crash recovery goes through the
/// checkpoint, not the spill file, and the file is deleted on
/// destruction.
///
/// Spilling only reorders *when* pending nodes are expanded, which the
/// determinism contract already tolerates (work-stealing reorders
/// expansions the same way): on exhausted searches, dominance pruning
/// makes DistinctStates/Terminals/TerminalHashes independent of
/// expansion order.
///
//===----------------------------------------------------------------------===//

#ifndef P_CHECKER_FRONTIERSTORE_H
#define P_CHECKER_FRONTIERSTORE_H

#include "checker/Checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace p {

class FrontierStore {
public:
  /// Opens (creates/truncates) the spill file at \p Path. Check ok().
  explicit FrontierStore(std::string Path);
  /// Closes and deletes the spill file.
  ~FrontierStore();

  FrontierStore(const FrontierStore &) = delete;
  FrontierStore &operator=(const FrontierStore &) = delete;

  /// False when the spill file could not be created; the engine then
  /// runs fully in-memory (and says so once on stderr).
  bool ok() const { return F != nullptr; }
  const std::string &path() const { return Path; }

  /// Appends \p Nodes as one segment. Thread-safe.
  bool spill(const std::vector<ckpt::FrontierNode> &Nodes,
             std::string *Why = nullptr);

  /// Pops the most recently spilled segment into \p Nodes (cleared
  /// first). Returns false with an empty \p Nodes when no segment is
  /// pending. On I/O or decode error the segment is *discarded* (it can
  /// never be read; retrying would spin forever), \p Why is set, and
  /// \p DroppedNodes receives the number of nodes lost so the caller
  /// can re-balance its in-flight accounting. Thread-safe.
  bool reload(std::vector<ckpt::FrontierNode> &Nodes,
              std::string *Why = nullptr, uint64_t *DroppedNodes = nullptr);

  /// Reads every pending segment without consuming it, appending the
  /// nodes to \p Out in segment order — checkpoint capture uses this so
  /// spilled nodes land in the snapshot too. Thread-safe.
  bool snapshot(std::vector<ckpt::FrontierNode> &Out,
                std::string *Why = nullptr);

  /// Pending (spilled, not yet reloaded) node count.
  uint64_t pendingNodes() const;
  /// Cumulative counters for CheckStats.
  uint64_t spilledNodes() const { return TotalNodes; }
  uint64_t spilledBytes() const { return TotalBytes; }

private:
  struct Segment {
    uint64_t Offset = 0;
    uint64_t Bytes = 0;
    uint64_t Nodes = 0;
  };

  bool readSegment(const Segment &S, std::vector<ckpt::FrontierNode> &Out,
                   std::string *Why);

  std::string Path;
  mutable std::mutex Mu;
  std::FILE *F = nullptr;
  std::vector<Segment> Segments; ///< LIFO stack of pending segments.
  uint64_t WriteOff = 0;         ///< Append position (rewound when drained).
  uint64_t Pending = 0;          ///< Sum of Segments[i].Nodes.
  uint64_t TotalNodes = 0;       ///< Cumulative nodes ever spilled.
  uint64_t TotalBytes = 0;       ///< Cumulative bytes ever written.
};

} // namespace p

#endif // P_CHECKER_FRONTIERSTORE_H
