//===- checker/Liveness.h - The deferral-liveness check of Section 3.2 -----===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's second liveness property (Section 3.2): under fair
/// scheduling, an enqueued event must eventually be dequeued — events
/// must not be deferrable forever. The erroneous executions are
///
///   ∀m. fair(m) ∧ ∃m,e,m'. ◇(enq(m,e,m') ∧ □¬deq(m',e))
///
/// refined by `postpone` annotations: an execution is excused when the
/// starving event is eventually-always in the postponed set of the
/// receiving machine's current state.
///
/// The paper leaves verifying these properties to future work; this
/// module implements it as lasso detection over the delay-bounded
/// schedule graph: a DFS that, on finding a cycle, checks
///   * fairness — every machine enabled at every state of the cycle is
///     scheduled at least once in it (weak fairness), and
///   * starvation — some queue entry is present throughout the cycle,
///     its (machine, event) is never dequeued on any cycle edge, and at
///     some state of the cycle it is not postponed.
///
/// The paper's *first* liveness property (no machine runs forever
/// without getting disabled) is enforced by the Executor's per-slice
/// divergence guard (ErrorKind::Divergence).
///
//===----------------------------------------------------------------------===//

#ifndef P_CHECKER_LIVENESS_H
#define P_CHECKER_LIVENESS_H

#include "pir/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace p {

/// Options for a liveness check.
struct LivenessOptions {
  /// Delay budget for the schedule graph (starvation cycles usually
  /// need at least one delay to keep the victim waiting).
  int DelayBound = 1;
  /// Path-depth cap for the DFS.
  int DepthBound = 20000;
  /// Node cap (0 = unlimited).
  uint64_t MaxNodes = 0;
  /// Execute foreign-function model bodies.
  bool UseModelBodies = true;
  /// Micro-step budget per slice.
  uint64_t MaxStepsPerSlice = 100000;
};

/// Result of a liveness check.
struct LivenessResult {
  bool ViolationFound = false;
  std::string Message; ///< e.g. "event 'CloseDoor' pending at Elevator#1
                       ///  can be deferred forever".
  std::vector<std::string> CycleTrace; ///< The lasso's loop, described.
  uint64_t NodesExplored = 0;
  uint64_t CyclesChecked = 0;
  bool Exhausted = true;
};

/// Searches for a fair starvation cycle in \p Prog's schedule graph.
LivenessResult checkLiveness(const CompiledProgram &Prog,
                             const LivenessOptions &Opts);

} // namespace p

#endif // P_CHECKER_LIVENESS_H
