//===- checker/ParallelSearch.cpp --------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/ParallelSearch.h"

#include "checker/Checkpoint.h"
#include "checker/FrontierStore.h"
#include "checker/StateHash.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Hashing.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__linux__)
#include <cinttypes>
#include <cstdio>
#endif

using namespace p;

namespace {

//===----------------------------------------------------------------------===//
// Trace arena
//===----------------------------------------------------------------------===//

/// Trace references pack (worker, index into that worker's arena): nodes
/// migrate between workers when stolen, so a node's decision chain can
/// cross arenas.
constexpr uint64_t NoTraceRef = ~0ull;
constexpr unsigned TraceIndexBits = 48;

uint64_t packTraceRef(unsigned Worker, size_t Index) {
  return (static_cast<uint64_t>(Worker) << TraceIndexBits) |
         static_cast<uint64_t>(Index);
}
unsigned traceWorker(uint64_t Ref) {
  return static_cast<unsigned>(Ref >> TraceIndexBits);
}
size_t traceIndex(uint64_t Ref) {
  return static_cast<size_t>(Ref & ((1ull << TraceIndexBits) - 1));
}

/// One decision along an explored path. Text is not stored: a
/// counterexample's lines are rendered by re-executing its schedule.
struct TraceEntry {
  uint64_t Parent = NoTraceRef;
  SchedDecision Decision;
  bool HasDecision = false;
};

/// One sleeping machine (Reduction::Sleep): the id and the footprint of
/// the slice it would run — its own bit plus the send/create target's.
/// A later execution whose footprint intersects it is dependent and
/// wakes the machine (the entry is removed).
struct SleepEntry {
  int32_t Id = -1;
  uint64_t Fp = 0;
};

/// A node of the schedule tree.
struct Node {
  Config Cfg;
  std::deque<int32_t> Sched; ///< The delaying scheduler's stack S.
  int DelaysUsed = 0;
  int FaultsUsed = 0; ///< Faults injected along this path (≤ Budget).
  int Depth = 0;
  int32_t MustRun = -1; ///< Machine to resume after a choice point.
  /// Profiling only (CheckOptions::Profile): the machine *type* whose
  /// slice (or injected fault) produced this node's configuration; -1
  /// for the root. Attribution metadata — never part of a dedup key or
  /// serialization, so it cannot change what is explored.
  int32_t ByType = -1;
  uint64_t TraceIdx = NoTraceRef;
  /// Sleep set (Reduction::Sleep/Both only; always empty otherwise).
  /// An entry's machine ran first in a sibling branch; re-running it
  /// here before any dependent decision would commute back into that
  /// branch, so its Run is pruned until something wakes it.
  std::vector<SleepEntry> Sleep;
};

/// Footprint bit of a machine id. Ids outside [0, 63) cannot be
/// represented; ~0 makes every intersection check conservative (wakes
/// everyone, is never inserted).
uint64_t idBit(int32_t Id) {
  return (Id >= 0 && Id < 63) ? (1ull << Id) : ~0ull;
}

/// Removes every sleeper whose footprint intersects \p F (a dependent
/// decision executed; the commutation argument no longer applies).
void wakeSleepers(std::vector<SleepEntry> &Sleep, uint64_t F) {
  if (Sleep.empty())
    return;
  Sleep.erase(std::remove_if(Sleep.begin(), Sleep.end(),
                             [F](const SleepEntry &E) {
                               return (E.Fp & F) != 0;
                             }),
              Sleep.end());
}

bool isAsleep(const std::vector<SleepEntry> &Sleep, int32_t Id) {
  for (const SleepEntry &E : Sleep)
    if (E.Id == Id)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Schedule ordering
//===----------------------------------------------------------------------===//

/// Orders sibling decisions the way the serial DFS explores them: run
/// the top (machines ascending in depth-bounded mode) before spending a
/// delay, and choose false before choose true. Lexicographic order over
/// schedules under this ordering is exactly the serial visit order, so
/// "keep the lex-least counterexample" reproduces the serial report.
int compareDecision(const SchedDecision &A, const SchedDecision &B) {
  if (A.K != B.K)
    return static_cast<int>(A.K) < static_cast<int>(B.K) ? -1 : 1;
  switch (A.K) {
  case SchedDecision::Kind::Run:
    return A.Machine < B.Machine ? -1 : A.Machine > B.Machine ? 1 : 0;
  case SchedDecision::Kind::Delay:
    return 0; // The delayed machine is determined by the node.
  case SchedDecision::Kind::Choose:
    return A.Choice == B.Choice ? 0 : (A.Choice ? 1 : -1);
  case SchedDecision::Kind::DropEvent:
  case SchedDecision::Kind::DupEvent:
    // Queue faults order by (machine, queue index), matching the
    // ascending pop order of the fault children.
    if (A.Machine != B.Machine)
      return A.Machine < B.Machine ? -1 : 1;
    return A.Aux < B.Aux ? -1 : A.Aux > B.Aux ? 1 : 0;
  case SchedDecision::Kind::Crash:
    return A.Machine < B.Machine ? -1 : A.Machine > B.Machine ? 1 : 0;
  case SchedDecision::Kind::ForeignFault:
    return A.Choice == B.Choice ? 0 : (A.Choice ? 1 : -1);
  }
  return 0;
}

int compareSchedule(const std::vector<SchedDecision> &A,
                    const std::vector<SchedDecision> &B) {
  size_t N = std::min(A.size(), B.size());
  for (size_t I = 0; I != N; ++I)
    if (int C = compareDecision(A[I], B[I]))
      return C;
  return A.size() < B.size() ? -1 : A.size() > B.size() ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// Shared tables
//===----------------------------------------------------------------------===//

constexpr unsigned ShardBits = 6;
constexpr unsigned NumShards = 1u << ShardBits;

unsigned shardOf(uint64_t Hash) {
  return static_cast<unsigned>(Hash >> (64 - ShardBits));
}

/// Estimated footprint of one hashed visited entry: the stored pair plus
/// one hash-node next pointer and the amortized bucket slot.
constexpr uint64_t HashedEntryBytes =
    sizeof(uint64_t) + sizeof(int) + 2 * sizeof(void *);

/// Estimated footprint of one exact-mode entry, counting the string
/// header, map-node overhead, and the heap block behind non-SSO keys.
uint64_t exactEntryBytes(const std::string &Key) {
  uint64_t Bytes = sizeof(std::string) + sizeof(int) + 2 * sizeof(void *);
  if (Key.size() > 15) // Past the usual small-string capacity.
    Bytes += Key.capacity() + 1;
  return Bytes;
}

/// One (delays spent, sleep mask) pair under which a node key was
/// actually explored. An exploration dominates a later visit when it
/// spent no more delays AND slept on a subset of the machines: it
/// expanded every child the later visit could, each with at least as
/// much remaining budget.
struct SleepDomEntry {
  int Delays;
  uint64_t Mask;
};

/// One shard of the visited table: node key -> fewest delays spent when
/// the key was explored (the dominance value). Under Reduction::Sleep
/// the dominance value is two-dimensional — (delays, sleep mask) — so
/// the sleep maps keep a small Pareto frontier of explored pairs per
/// key instead of a single integer. (Folding the mask into the key
/// itself would be sound too, but splits the table: revisits whose mask
/// merely *grew* re-explore from scratch, and measured on German d=4
/// that inflates nodes ~27% instead of shrinking them.)
struct VisitedShard {
  std::mutex Mu;
  std::unordered_map<uint64_t, int> Hashed;
  std::unordered_map<std::string, int> Exact;
  std::unordered_map<uint64_t, std::vector<SleepDomEntry>> HashedSleep;
  std::unordered_map<std::string, std::vector<SleepDomEntry>> ExactSleep;
  /// Running footprint of this shard. Written under Mu; atomic so the
  /// progress heartbeat can read it without taking every shard lock.
  std::atomic<uint64_t> Bytes{0};
};

/// One shard of the distinct-configuration and terminal sets.
struct ConfigShard {
  std::mutex Mu;
  std::unordered_set<uint64_t> Seen;
  std::unordered_set<uint64_t> Terminals;
  /// Running footprint, like VisitedShard::Bytes — part of the honest
  /// visited-set accounting (these sets are visited state too).
  std::atomic<uint64_t> Bytes{0};
};

/// VisitedMode::Compact: a SPIN-style bounded open-addressing table of
/// 64-bit fingerprints. The slot array is allocated once (the byte cap),
/// divided into NumShards contiguous *stripes*, each guarded by its own
/// mutex; a key probes linearly inside its stripe only, so one stripe
/// lock is ever held and the memory never grows. When a probe window is
/// full the key is treated as visited and the caller records that
/// omission became possible: the search stays sound for the errors it
/// reports, but exhaustion is no longer a proof.
class CompactTable {
public:
  void init(uint64_t CapBytes) {
    uint64_t Slots = CapBytes / sizeof(Slot);
    PerStripe = std::max<uint64_t>(Slots / NumShards, 64);
    SlotsV.assign(PerStripe * NumShards, Slot{});
  }

  /// Reduction::Sleep: allocate the per-slot sleep-mask sidecar (kept
  /// out of Slot so Off-mode runs pay nothing and stay bit-identical).
  void initSleepMasks() { Masks.assign(SlotsV.size(), 0); }

  uint64_t bytes() const {
    return SlotsV.size() * sizeof(Slot) + Masks.size() * sizeof(uint64_t);
  }

  /// Dominance check-and-insert: true when \p Key was seen before with
  /// an equal-or-smaller delay count — or when its probe window is full
  /// (\p Saturated set; the state may be new but cannot be stored).
  bool visited(uint64_t Key, int Delays, bool &Saturated) {
    if (Key == 0) // 0 marks an empty slot; remap the (rare) real key 0.
      Key = 0x9e3779b97f4a7c15ULL;
    const unsigned Stripe = shardOf(Key);
    // Position inside the stripe from the low bits (the stripe already
    // consumed the high bits).
    uint64_t Home = (Key * 0x2545f4914f6cdd1dULL) % PerStripe;
    Slot *Base = SlotsV.data() + Stripe * PerStripe;
    const uint64_t Probes = std::min<uint64_t>(ProbeLimit, PerStripe);
    std::lock_guard<std::mutex> L(Stripes[Stripe].Mu);
    for (uint64_t I = 0; I != Probes; ++I) {
      Slot &S = Base[(Home + I) % PerStripe];
      if (S.Fp == 0) {
        S.Fp = Key;
        S.Delays = static_cast<int32_t>(Delays);
        return false;
      }
      if (S.Fp == Key) {
        if (S.Delays <= Delays)
          return true;
        S.Delays = static_cast<int32_t>(Delays);
        return false;
      }
    }
    Saturated = true;
    return true;
  }

  /// Two-dimensional dominance for Reduction::Sleep: seen iff the slot
  /// holds an exploration with no more delays spent AND a sleep mask
  /// that is a subset of \p Mask. A bounded table has no room for a
  /// Pareto frontier, so a non-dominating revisit *replaces* the slot's
  /// pair — sound, because the replacement also describes a real
  /// exploration; at worst an incomparable earlier pair is forgotten
  /// and some work repeats.
  bool visitedSleep(uint64_t Key, int Delays, uint64_t Mask,
                    bool &Saturated) {
    if (Key == 0)
      Key = 0x9e3779b97f4a7c15ULL;
    const unsigned Stripe = shardOf(Key);
    uint64_t Home = (Key * 0x2545f4914f6cdd1dULL) % PerStripe;
    Slot *Base = SlotsV.data() + Stripe * PerStripe;
    uint64_t *MaskBase = Masks.data() + Stripe * PerStripe;
    const uint64_t Probes = std::min<uint64_t>(ProbeLimit, PerStripe);
    std::lock_guard<std::mutex> L(Stripes[Stripe].Mu);
    for (uint64_t I = 0; I != Probes; ++I) {
      const uint64_t At = (Home + I) % PerStripe;
      Slot &S = Base[At];
      if (S.Fp == 0) {
        S.Fp = Key;
        S.Delays = static_cast<int32_t>(Delays);
        MaskBase[At] = Mask;
        return false;
      }
      if (S.Fp == Key) {
        if (S.Delays <= Delays && (MaskBase[At] & ~Mask) == 0)
          return true;
        S.Delays = static_cast<int32_t>(Delays);
        MaskBase[At] = Mask;
        return false;
      }
    }
    Saturated = true;
    return true;
  }

  /// Checkpoint capture: flattens the slot arrays into a plain image.
  /// Single-threaded (all workers parked or joined) — no stripe locks.
  void exportImage(ckpt::CheckpointData::CompactImage &Img) const {
    Img.PerStripe = PerStripe;
    Img.Fps.resize(SlotsV.size());
    Img.Delays.resize(SlotsV.size());
    for (size_t I = 0; I != SlotsV.size(); ++I) {
      Img.Fps[I] = SlotsV[I].Fp;
      Img.Delays[I] = SlotsV[I].Delays;
    }
    Img.Masks = Masks;
  }

  /// Checkpoint restore: the slot layout is stripe-positional, so the
  /// image's shape must match this table's (guaranteed when the options
  /// fingerprint matched; checked anyway). Call after init().
  bool importImage(const ckpt::CheckpointData::CompactImage &Img) {
    if (Img.Fps.empty() && Img.Delays.empty())
      return true; // Nothing captured (e.g. a non-Compact checkpoint).
    if (Img.PerStripe != PerStripe || Img.Fps.size() != SlotsV.size() ||
        Img.Delays.size() != SlotsV.size() ||
        (!Img.Masks.empty() && Img.Masks.size() != Masks.size()))
      return false;
    for (size_t I = 0; I != SlotsV.size(); ++I) {
      SlotsV[I].Fp = Img.Fps[I];
      SlotsV[I].Delays = Img.Delays[I];
    }
    if (!Img.Masks.empty())
      Masks = Img.Masks;
    return true;
  }

private:
  struct Slot {
    uint64_t Fp = 0; ///< 0 = empty.
    int32_t Delays = 0;
  };
  struct alignas(64) StripeLock { // Own cache line per stripe.
    std::mutex Mu;
  };
  static constexpr uint64_t ProbeLimit = 128;

  std::vector<Slot> SlotsV;
  std::vector<uint64_t> Masks; ///< Sleep-mask sidecar (initSleepMasks).
  uint64_t PerStripe = 64;
  std::array<StripeLock, NumShards> Stripes;
};

/// The winning counterexample (lexicographically-least schedule).
struct ErrorRecord {
  bool Found = false;
  ErrorKind Kind = ErrorKind::None;
  std::string Message;
  int DelaysUsed = -1;
  int FaultsUsed = -1;
  std::vector<SchedDecision> Schedule;
};

class ParallelSearch;

/// Per-worker state. The frontier deque is LIFO for its owner (DFS) and
/// FIFO for thieves, who take the shallowest nodes from the front.
struct Worker {
  Worker(unsigned Id, const Executor &Base) : Id(Id), Exec(Base) {}

  unsigned Id;
  Executor Exec; ///< Own copy: observer callbacks stay thread-local.

  std::mutex FrontierMu;
  std::deque<Node> Frontier;

  std::mutex ArenaMu;
  std::deque<TraceEntry> Arena;

  std::string Buf;     ///< Reusable serialization buffer (Exact keys).
  std::string Scratch; ///< Per-machine fingerprint scratch buffer.

  // Symmetry-reduction scratch (Reduction::Symmetry/Both).
  std::string SymBuf;                        ///< Candidate node bytes.
  std::vector<int32_t> Perm, Inv;            ///< Current π and π⁻¹.
  std::vector<int32_t> WinPerm;              ///< π of the minimal key.
  std::vector<std::vector<int32_t>> Classes; ///< Permutable id classes.
  std::vector<int32_t> ClassTypes;           ///< Machine type per class.
  std::vector<std::vector<int32_t>> Arr;     ///< Odometer arrangements.

  /// This worker's trace ring (see CheckOptions::Trace); nullptr when
  /// tracing is off. Single-writer: only this worker records into it.
  obs::TraceSink *Trace = nullptr;

  // Locally accumulated counters, merged after the join. Single-writer
  // (only the owning worker mutates them); atomic so the progress
  // heartbeat on worker 0 can read them mid-run without a data race.
  std::atomic<uint64_t> Slices{0};
  std::atomic<uint64_t> Terminals{0};
  std::atomic<uint64_t> StealCount{0};
  std::atomic<uint64_t> ContentionNs{0};
  std::atomic<int> MaxDepth{0};
  std::vector<uint64_t> TerminalHashes;
  CoverageReport Coverage;
  /// Per-worker profile (CheckOptions::Profile): single-writer, no
  /// locks; merged in worker-index order after the join.
  obs::SearchProfile Prof;
};

//===----------------------------------------------------------------------===//
// The engine
//===----------------------------------------------------------------------===//

class ParallelSearch {
public:
  ParallelSearch(const CompiledProgram &Prog, const CheckOptions &Opts,
                 Executor *ExternalExec)
      : Prog(Prog), Opts(Opts), OwnedExec(Prog, execOptions(Opts)),
        BaseExec(ExternalExec ? *ExternalExec : OwnedExec),
        Mode(Opts.ExactStates ? VisitedMode::Exact : Opts.Visited),
        DoVerifyHashes(Opts.VerifyHashes ||
                       std::getenv("P_VERIFY_HASHES") != nullptr),
        SleepOn(Opts.Reduce == Reduction::Sleep ||
                Opts.Reduce == Reduction::Both),
        SymOn((Opts.Reduce == Reduction::Symmetry ||
               Opts.Reduce == Reduction::Both) &&
              anySymmetricType(Prog)),
        ProfileOn(Opts.Profile) {
    if (SymOn) {
      TypeIsSym.resize(Prog.Machines.size(), 0);
      for (size_t I = 0; I != Prog.Machines.size(); ++I)
        TypeIsSym[I] = Prog.Machines[I].Symmetric ? 1 : 0;
    }
  }

  CheckResult run();

private:
  static bool anySymmetricType(const CompiledProgram &Prog) {
    for (const MachineInfo &M : Prog.Machines)
      if (M.Symmetric)
        return true;
    return false;
  }

  static Executor::Options execOptions(const CheckOptions &Opts) {
    Executor::Options EO;
    EO.UseModelBodies = Opts.UseModelBodies;
    EO.MaxStepsPerSlice = Opts.MaxStepsPerSlice;
    return EO;
  }

  unsigned resolveWorkers() const {
    if (Opts.Workers == 1)
      return 1;
    unsigned N = Opts.Workers <= 0
                     ? std::max(1u, std::thread::hardware_concurrency())
                     : static_cast<unsigned>(Opts.Workers);
    return std::min(N, 256u);
  }

  /// Locks \p Mu, charging blocked time to the worker's contention
  /// counter when the fast path fails.
  std::unique_lock<std::mutex> lockTimed(std::mutex &Mu, Worker &W) {
    std::unique_lock<std::mutex> L(Mu, std::try_to_lock);
    if (!L.owns_lock()) {
      auto T0 = std::chrono::steady_clock::now();
      L.lock();
      W.ContentionNs.fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - T0)
              .count(),
          std::memory_order_relaxed);
    }
    return L;
  }

  uint64_t addTrace(Worker &W, uint64_t Parent, SchedDecision D) {
    TraceEntry E;
    E.Parent = Parent;
    E.Decision = D;
    E.HasDecision = true;
    std::lock_guard<std::mutex> L(W.ArenaMu);
    W.Arena.push_back(E);
    return packTraceRef(W.Id, W.Arena.size() - 1);
  }

  std::vector<SchedDecision> materializeSchedule(uint64_t Ref) {
    std::vector<SchedDecision> Out;
    while (Ref != NoTraceRef) {
      Worker &W = *Workers[traceWorker(Ref)];
      TraceEntry E;
      {
        std::lock_guard<std::mutex> L(W.ArenaMu);
        E = W.Arena[traceIndex(Ref)];
      }
      if (E.HasDecision)
        Out.push_back(E.Decision);
      Ref = E.Parent;
    }
    std::reverse(Out.begin(), Out.end());
    return Out;
  }

  void pushNode(Worker &W, Node &&N) {
    InFlight.fetch_add(1, std::memory_order_acq_rel);
    {
      auto L = lockTimed(W.FrontierMu, W);
      W.Frontier.push_back(std::move(N));
    }
    if (Spill) {
      InMemNodes.fetch_add(1, std::memory_order_relaxed);
      maybeSpill(W);
    }
  }

  bool popLocal(Worker &W, Node &N) {
    auto L = lockTimed(W.FrontierMu, W);
    if (W.Frontier.empty())
      return false;
    N = std::move(W.Frontier.back());
    W.Frontier.pop_back();
    if (Spill)
      InMemNodes.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Steals up to half of a victim's frontier, oldest (shallowest)
  /// nodes first, so breadth created near the root keeps feeding idle
  /// workers while owners descend depth-first.
  bool trySteal(Worker &W, Node &N) {
    for (unsigned K = 1; K != NumWorkers; ++K) {
      Worker &V = *Workers[(W.Id + K) % NumWorkers];
      // Never hold two frontier locks at once (two thieves stealing
      // from each other would deadlock): drain into a local batch
      // first, then re-lock our own deque.
      std::vector<Node> Batch;
      {
        std::unique_lock<std::mutex> L(V.FrontierMu, std::try_to_lock);
        if (!L.owns_lock() || V.Frontier.empty())
          continue;
        size_t Take = std::min<size_t>((V.Frontier.size() + 1) / 2, 8);
        for (size_t I = 0; I != Take; ++I) {
          Batch.push_back(std::move(V.Frontier.front()));
          V.Frontier.pop_front();
        }
      }
      N = std::move(Batch.back());
      Batch.pop_back();
      if (!Batch.empty()) {
        auto Mine = lockTimed(W.FrontierMu, W);
        for (Node &B : Batch)
          W.Frontier.push_back(std::move(B));
      }
      W.StealCount.fetch_add(1, std::memory_order_relaxed);
      if (Spill) // Net one node left the in-memory frontiers (N itself).
        InMemNodes.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Counts a distinct global configuration given its fingerprint.
  /// \p ByType is the profiler's producer attribution (the type whose
  /// slice created the configuration; -1 for the root), ignored unless
  /// profiling is on.
  void noteConfig(Worker &W, uint64_t CfgHash, const Config &Cfg,
                  int32_t ByType) {
    bool New;
    if (Mode == VisitedMode::Compact) {
      // Bounded: a saturated probe window undercounts and flags the
      // omission; dominance is irrelevant here, so Delays = 0.
      bool Saturated = false;
      New = !CompactSeen.visited(CfgHash, 0, Saturated);
      if (Saturated)
        Omission.store(true, std::memory_order_relaxed);
    } else {
      ConfigShard &S = Configs[shardOf(CfgHash)];
      auto L = lockTimed(S.Mu, W);
      New = S.Seen.insert(CfgHash).second;
      if (New)
        S.Bytes += HashedEntryBytes;
    }
    if (!New)
      return;
    DistinctStates.fetch_add(1, std::memory_order_relaxed);
    if (ProfileOn)
      W.Prof.Machines[W.Prof.rowOf(ByType)].States += 1;
    if (Opts.TrackCoverage) {
      // Every state on a reachable call stack counts as visited.
      for (const CowMachine &CM : Cfg.Machines) {
        const MachineState &M = *CM;
        if (!M.Alive)
          continue;
        auto &Cov = W.Coverage.Machines[M.MachineIndex];
        for (const StateFrame &F : M.Frames)
          Cov.StatesVisited.insert(F.State);
      }
    }
  }

  /// Counts a quiescent configuration, deduplicated by fingerprint so
  /// the total is independent of how many paths reach it.
  void noteTerminal(Worker &W, uint64_t CfgHash) {
    // Terminal sets stay exact in every mode: quiescent configurations
    // are few, and TerminalHashes feeds the d=0 ≡ runtime tests.
    ConfigShard &S = Configs[shardOf(CfgHash)];
    bool New;
    {
      auto L = lockTimed(S.Mu, W);
      New = S.Terminals.insert(CfgHash).second;
      if (New)
        S.Bytes += HashedEntryBytes;
    }
    if (!New)
      return;
    W.Terminals.fetch_add(1, std::memory_order_relaxed);
    if (Opts.CollectTerminals)
      W.TerminalHashes.push_back(CfgHash);
  }

  /// True when the node key was seen before with an equal-or-smaller
  /// delay budget spent (dominance pruning). \p Bytes is the full
  /// serialized key, consulted only in Exact mode.
  bool pruned(Worker &W, uint64_t Key, const std::string &Bytes,
              int DelaysUsed) {
    if (Mode == VisitedMode::Compact) {
      bool Saturated = false;
      bool Seen = CompactDedup.visited(Key, DelaysUsed, Saturated);
      if (Saturated)
        Omission.store(true, std::memory_order_relaxed);
      return Seen;
    }
    VisitedShard &S = Visited[shardOf(Key)];
    auto L = lockTimed(S.Mu, W);
    if (Mode == VisitedMode::Exact) {
      auto [It, Inserted] = S.Exact.try_emplace(Bytes, DelaysUsed);
      if (Inserted) {
        S.Bytes += exactEntryBytes(It->first);
        return false;
      }
      if (It->second <= DelaysUsed)
        return true;
      It->second = DelaysUsed;
      return false;
    }
    auto [It, Inserted] = S.Hashed.try_emplace(Key, DelaysUsed);
    if (Inserted) {
      S.Bytes += HashedEntryBytes;
      return false;
    }
    if (It->second <= DelaysUsed)
      return true;
    It->second = DelaysUsed;
    return false;
  }

  /// Pareto-frontier entries kept per key before a non-dominated visit
  /// stops recording itself (it still explores; later equal visits may
  /// just re-explore). Frontiers this deep are already rare.
  static constexpr size_t MaxSleepFrontier = 8;

  /// Reduction::Sleep's replacement for pruned(): the dominance value is
  /// the pair (delays spent, sleep mask). A stored exploration with
  /// fewer-or-equal delays and a subset mask expanded a superset of this
  /// visit's children, each with at least as much budget left — and
  /// sleep sets propagate monotonically, so its descendants slept less
  /// too. Storing explored pairs (never merged minima, which would
  /// claim coverage no single exploration had) keeps the rule sound.
  bool prunedSleep(Worker &W, uint64_t Key, const std::string &Bytes,
                   int DelaysUsed, uint64_t SleepMask) {
    if (Mode == VisitedMode::Compact) {
      bool Saturated = false;
      bool Seen =
          CompactDedup.visitedSleep(Key, DelaysUsed, SleepMask, Saturated);
      if (Saturated)
        Omission.store(true, std::memory_order_relaxed);
      return Seen;
    }
    VisitedShard &S = Visited[shardOf(Key)];
    auto L = lockTimed(S.Mu, W);
    std::vector<SleepDomEntry> *Frontier;
    if (Mode == VisitedMode::Exact) {
      auto [It, Inserted] = S.ExactSleep.try_emplace(Bytes);
      if (Inserted)
        S.Bytes += exactEntryBytes(It->first) + sizeof(It->second);
      Frontier = &It->second;
    } else {
      auto [It, Inserted] = S.HashedSleep.try_emplace(Key);
      if (Inserted)
        S.Bytes += HashedEntryBytes + sizeof(It->second);
      Frontier = &It->second;
    }
    for (const SleepDomEntry &E : *Frontier)
      if (E.Delays <= DelaysUsed && (E.Mask & ~SleepMask) == 0)
        return true;
    // This visit explores. Record it, retiring entries it dominates.
    std::erase_if(*Frontier, [&](const SleepDomEntry &E) {
      return DelaysUsed <= E.Delays && (SleepMask & ~E.Mask) == 0;
    });
    if (Frontier->size() < MaxSleepFrontier) {
      Frontier->push_back({DelaysUsed, SleepMask});
      S.Bytes += sizeof(SleepDomEntry);
    }
    return false;
  }

  void recordError(Worker &W, const Node &N) {
    ErrorsFound.fetch_add(1, std::memory_order_relaxed);
    ErrorRecord R;
    R.Found = true;
    R.Kind = N.Cfg.Error;
    R.Message = N.Cfg.ErrorMessage;
    R.DelaysUsed =
        Opts.Strategy == SearchStrategy::DelayBounded ? N.DelaysUsed : -1;
    R.FaultsUsed = Opts.Faults.enabled() ? N.FaultsUsed : -1;
    R.Schedule = materializeSchedule(N.TraceIdx);
    auto L = lockTimed(BestMu, W);
    if (!Best.Found || compareSchedule(R.Schedule, Best.Schedule) < 0)
      Best = std::move(R);
  }

  /// Incremental config hash (cached per-machine fingerprints), with
  /// the optional cache-oblivious cross-check counted per node.
  uint64_t configHash(Worker &W, const Config &Cfg) {
    uint64_t H = hashConfig(Cfg, W.Scratch);
    if (DoVerifyHashes && hashConfigFresh(Cfg, W.Scratch) != H)
      HashMismatches.fetch_add(1, std::memory_order_relaxed);
    return H;
  }

  //===--------------------------------------------------------------------===//
  // Symmetry canonicalization (Reduction::Symmetry/Both)
  //===--------------------------------------------------------------------===//

  /// Canonical keys of one node: the minimum over candidate machine
  /// permutations π (products of per-class permutations of symmetric
  /// instances) of the π-renamed node. Renaming a machine id everywhere
  /// it occurs is a bisimulation — P programs can only compare ids for
  /// equality — so two nodes with equal canonical keys have isomorphic
  /// futures and may share one visited-set entry.
  struct CanonKeys {
    uint64_t CfgHash = 0; ///< Canonical config hash (noteConfig/terminals).
    uint64_t Key = 0;     ///< Canonical node key (Exact: hash of W.Buf).
    /// The node's sleep mask renamed through the winning π, so frontier
    /// dominance (prunedSleep) compares masks in canonical id space —
    /// orbit members reached via different permutations must agree on
    /// which *canonical* machines are asleep.
    uint64_t CanonMask = 0;
    bool Identity = true; ///< The canonical form is the raw node itself.
  };

  /// Collects the permutable id classes of \p Cfg into W.Classes: for
  /// each `symmetric` machine type, the ids of its instances (ascending;
  /// classes of fewer than two instances are dropped). False when there
  /// is nothing to permute (or the config is too large for footprint
  /// masks), in which case the caller uses the unreduced key path.
  bool buildSymClasses(Worker &W, const Config &Cfg) {
    W.Classes.clear();
    W.ClassTypes.clear();
    const size_t NumM = Cfg.Machines.size();
    if (NumM > 62)
      return false;
    for (int32_t T = 0; T != static_cast<int32_t>(TypeIsSym.size()); ++T) {
      if (!TypeIsSym[T])
        continue;
      std::vector<int32_t> Ids;
      for (size_t Id = 0; Id != NumM; ++Id)
        if (Cfg.Machines[Id]->MachineIndex == T)
          Ids.push_back(static_cast<int32_t>(Id));
      if (Ids.size() >= 2) {
        W.Classes.push_back(std::move(Ids));
        W.ClassTypes.push_back(T);
      }
    }
    return !W.Classes.empty();
  }

  /// Profiler: credit a symmetry collapse to every symmetric type that
  /// contributed a permutable class (they earned the fold).
  void profileCollapse(Worker &W) {
    for (int32_t T : W.ClassTypes)
      W.Prof.Machines[W.Prof.rowOf(T)].SymmetryCollapsed += 1;
  }

  /// Renames the set bits of a footprint/sleep mask through π.
  static uint64_t permuteMask(uint64_t Mask,
                              const std::vector<int32_t> &Perm) {
    uint64_t Out = 0;
    while (Mask) {
      int B = std::countr_zero(Mask);
      Mask &= Mask - 1;
      Out |= idBit(B < static_cast<int>(Perm.size()) ? Perm[B]
                                                     : static_cast<int32_t>(B));
    }
    return Out;
  }

  /// Upper bound on enumerated permutations per node. The enumeration
  /// order is deterministic (odometer over per-class next_permutation,
  /// identity first), so a capped prefix still canonicalizes
  /// consistently — equal canonical keys always certify a genuine
  /// permutation — it just merges fewer orbit members.
  static constexpr int MaxSymCandidates = 1024;

  CanonKeys canonicalNodeKeys(Worker &W, const Node &N, uint64_t SleepMask);

  void pushFaultChildren(Worker &W, const Node &N);
  void expandRun(Worker &W, Node &&N, int32_t Id,
                 Executor::StepResult *OutR = nullptr);
  void expandDelayBounded(Worker &W, Node &&N);
  void expandDepthBounded(Worker &W, Node &&N);
  void process(Worker &W, Node &&N);
  void workerLoop(Worker &W);

  /// Point-in-time CheckStats for the progress heartbeat: relaxed
  /// loads of the shared counters and every worker's single-writer
  /// atomics. Exact in serial runs, slightly stale across workers.
  CheckStats snapshotStats() const {
    CheckStats S;
    S.DistinctStates = DistinctStates.load(std::memory_order_relaxed);
    S.NodesExplored = NodesExplored.load(std::memory_order_relaxed);
    S.PrunedByIndependence =
        PrunedByIndependence.load(std::memory_order_relaxed);
    S.SymmetryCollapsed =
        SymmetryCollapsed.load(std::memory_order_relaxed);
    S.ErrorsFound = ErrorsFound.load(std::memory_order_relaxed);
    S.Exhausted = Exhausted.load(std::memory_order_relaxed);
    S.WorkersUsed = static_cast<int>(NumWorkers);
    for (const auto &W : Workers) {
      S.Slices += W->Slices.load(std::memory_order_relaxed);
      S.Terminals += W->Terminals.load(std::memory_order_relaxed);
      S.StealCount += W->StealCount.load(std::memory_order_relaxed);
      S.ContentionNs += W->ContentionNs.load(std::memory_order_relaxed);
      S.MaxDepth =
          std::max(S.MaxDepth, W->MaxDepth.load(std::memory_order_relaxed));
    }
    S.VisitedBytes = visitedBytes();
    S.OmissionPossible = Omission.load(std::memory_order_relaxed);
    S.FrontierNodes = static_cast<uint64_t>(
        std::max<int64_t>(InFlight.load(std::memory_order_relaxed), 0));
    S.Interrupted = Interrupted.load(std::memory_order_relaxed);
    S.Resumed = DidResume;
    S.CheckpointsWritten =
        CheckpointsWritten.load(std::memory_order_relaxed);
    S.LastCheckpointBytes =
        LastCheckpointBytes.load(std::memory_order_relaxed);
    S.FrontierSpilledNodes =
        PriorSpilledNodes + (Spill ? Spill->spilledNodes() : 0);
    S.FrontierSpillBytes =
        PriorSpillBytes + (Spill ? Spill->spilledBytes() : 0);
    S.Seconds = PriorSeconds +
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - StartTime)
                    .count();
    return S;
  }

  /// Honest visited-set footprint across every table that deduplicates
  /// exploration: the per-shard dedup maps, the distinct-state and
  /// terminal sets, and (Compact mode) the fixed slot arrays. Every
  /// component is a running insert-time counter or a constant, so the
  /// total is monotone non-decreasing over a run.
  uint64_t visitedBytes() const {
    uint64_t B = 0;
    for (const VisitedShard &S : Visited)
      B += S.Bytes.load(std::memory_order_relaxed);
    for (const ConfigShard &S : Configs)
      B += S.Bytes.load(std::memory_order_relaxed);
    B += CompactDedup.bytes() + CompactSeen.bytes();
    return B;
  }

  /// Resets the kernel's RSS high-water mark so peakRssBytes() reports
  /// this run's peak, not the process-lifetime peak left behind by
  /// earlier check() calls in the same process. Linux only (writing "5"
  /// to /proc/self/clear_refs); best-effort — where it is unavailable
  /// the sample silently stays the lifetime peak.
  static void resetPeakRss() {
#if defined(__linux__)
    if (std::FILE *F = std::fopen("/proc/self/clear_refs", "w")) {
      std::fputs("5", F);
      std::fclose(F);
    }
#endif
  }

  /// Process peak RSS in bytes since the last resetPeakRss(). Linux
  /// reads VmHWM from /proc/self/status (the value clear_refs resets;
  /// ru_maxrss is not reset by it), everything else falls back to
  /// getrusage's lifetime ru_maxrss (KiB on Linux, bytes on macOS);
  /// 0 where neither source is available.
  static uint64_t peakRssBytes() {
#if defined(__linux__)
    if (std::FILE *F = std::fopen("/proc/self/status", "r")) {
      char Line[128];
      uint64_t KiB = 0;
      bool Found = false;
      while (std::fgets(Line, sizeof(Line), F))
        if (std::sscanf(Line, "VmHWM: %" SCNu64, &KiB) == 1) {
          Found = true;
          break;
        }
      std::fclose(F);
      if (Found)
        return KiB * 1024;
    }
#endif
#if defined(__unix__) || defined(__APPLE__)
    struct rusage RU;
    if (getrusage(RUSAGE_SELF, &RU) != 0)
      return 0;
#if defined(__APPLE__)
    return static_cast<uint64_t>(RU.ru_maxrss);
#else
    return static_cast<uint64_t>(RU.ru_maxrss) * 1024;
#endif
#else
    return 0;
#endif
  }

  /// Renders the human-readable counterexample by re-executing the
  /// schedule (decisions alone determine every line).
  std::vector<std::string> renderTrace(const std::vector<SchedDecision> &S);

  const CompiledProgram &Prog;
  const CheckOptions &Opts;
  Executor OwnedExec;
  Executor &BaseExec;

  unsigned NumWorkers = 1;
  std::vector<std::unique_ptr<Worker>> Workers;

  std::chrono::steady_clock::time_point StartTime;
  /// Frontier-depth distribution, resolved once from Opts.Metrics in
  /// run(); nullptr when no registry was supplied.
  obs::Histogram *DepthHist = nullptr;

  /// Effective visited-set mode (ExactStates overrides Opts.Visited).
  const VisitedMode Mode;
  /// Cross-check incremental vs. fresh hashes on every node.
  const bool DoVerifyHashes;
  /// Sleep-set pruning requested (Reduction::Sleep/Both).
  const bool SleepOn;
  /// Symmetry canonicalization active: requested and the program
  /// declares at least one symmetric machine type.
  const bool SymOn;
  /// Search profiler requested (CheckOptions::Profile).
  const bool ProfileOn;
  /// Indexed by machine type: declared `symmetric`. Empty unless SymOn.
  std::vector<char> TypeIsSym;
  /// Compact mode's bounded tables: node dedup keys and distinct-state
  /// fingerprints, each sized to half of VisitedCapBytes.
  CompactTable CompactDedup;
  CompactTable CompactSeen;

  std::array<VisitedShard, NumShards> Visited;
  std::array<ConfigShard, NumShards> Configs;

  std::atomic<uint64_t> DistinctStates{0};
  std::atomic<uint64_t> NodesExplored{0};
  std::atomic<uint64_t> PrunedByIndependence{0};
  std::atomic<uint64_t> SymmetryCollapsed{0};
  std::atomic<uint64_t> ErrorsFound{0};
  std::atomic<uint64_t> FaultsInjected{0};
  std::atomic<bool> Omission{false};
  std::atomic<uint64_t> HashMismatches{0};
  /// Nodes queued in some frontier or being expanded; 0 <=> done.
  std::atomic<int64_t> InFlight{0};
  std::atomic<bool> Stop{false};
  std::atomic<bool> Exhausted{true};

  std::mutex BestMu;
  ErrorRecord Best;

  //===--------------------------------------------------------------------===//
  // Crash safety: checkpoints, interruption, frontier spilling
  //===--------------------------------------------------------------------===//

  ckpt::FrontierNode toFrontierNode(const Node &N);
  Node fromFrontierNode(Worker &W, ckpt::FrontierNode &&F);
  void requestCheckpoint();
  void checkpointBarrier(Worker &W);
  void workerExited();
  bool captureCheckpoint(ckpt::CheckpointData &D);
  void performCheckpoint();
  bool restoreCheckpoint(ckpt::CheckpointData &&D, std::string &Why);
  void maybeSpill(Worker &W);
  bool tryReloadSpill(Worker &W, Node &N);

  /// Program+options compatibility token; 0 unless checkpointing or
  /// resuming (computed once in run()).
  uint64_t Fingerprint = 0;
  /// Out-of-core frontier (CheckOptions::FrontierMemLimitBytes); null
  /// when spilling is off or the spill file could not be created.
  std::unique_ptr<FrontierStore> Spill;
  /// Rough per-node footprint, measured from the first frontier node's
  /// serialized size; InMemNodes * this against the limit decides when
  /// to spill.
  uint64_t NodeBytesEstimate = 1024;
  /// Nodes currently resident across the in-memory frontiers.
  /// Maintained only when Spill is active.
  std::atomic<int64_t> InMemNodes{0};
  /// One-shot stderr warnings (checkpoint/spill I/O failure).
  std::atomic<bool> WarnedCkptFailure{false};
  std::atomic<bool> WarnedSpillFailure{false};

  std::atomic<bool> Interrupted{false};
  std::atomic<uint64_t> CheckpointsWritten{0};
  std::atomic<uint64_t> LastCheckpointBytes{0};
  /// Restored from a resumed checkpoint; added to this process's own
  /// elapsed time and spill counters so cumulative stats cover the
  /// whole logical search.
  double PriorSeconds = 0;
  uint64_t PriorSpilledNodes = 0;
  uint64_t PriorSpillBytes = 0;
  bool DidResume = false;

  /// Periodic-checkpoint barrier. Worker 0's loop requests a checkpoint
  /// (CkptFlag); every worker parks at its loop top; the last to park
  /// has exclusive access and snapshots the engine; a worker *exiting*
  /// the loop while others are parked completes the barrier on their
  /// behalf (workerExited), so the barrier can never outlive its
  /// participants.
  std::mutex CkptMu;
  std::condition_variable CkptCv;
  std::atomic<bool> CkptFlag{false};
  bool CkptRequested = false; ///< Guarded by CkptMu.
  unsigned CkptParked = 0;    ///< Guarded by CkptMu.
  uint64_t CkptGen = 0;       ///< Guarded by CkptMu.
  unsigned ActiveWorkers = 0; ///< Guarded by CkptMu.
};

/// Enumerates candidate permutations (an odometer over per-class
/// std::next_permutation, identity first, capped at MaxSymCandidates)
/// and returns the minimal keys. Exact mode keeps the lexicographically
/// least serialized node in W.Buf — the visited map keys on those bytes
/// — and takes the canonical config hash from its config prefix (every
/// candidate's config part has equal length, so the prefix of the
/// minimal node bytes is the minimal config serialization). Hashed
/// modes take the numeric minimum of the candidate hashes; cached
/// per-machine fingerprints are reused for machines whose refs mask is
/// disjoint from the permutation's support.
ParallelSearch::CanonKeys
ParallelSearch::canonicalNodeKeys(Worker &W, const Node &N,
                                  uint64_t SleepMask) {
  const Config &Cfg = N.Cfg;
  const size_t NumM = Cfg.Machines.size();
  const bool Exact = Mode == VisitedMode::Exact;
  const bool Delay = Opts.Strategy == SearchStrategy::DelayBounded;

  W.Perm.resize(NumM);
  W.Inv.resize(NumM);
  for (size_t I = 0; I != NumM; ++I)
    W.Perm[I] = static_cast<int32_t>(I);
  W.Arr.resize(W.Classes.size());
  for (size_t C = 0; C != W.Classes.size(); ++C)
    W.Arr[C] = W.Classes[C]; // Ascending ids: the identity arrangement.

  CanonKeys Out;
  bool First = true;
  size_t CfgLen = 0; // Exact: length of the bytes' config prefix.
  int Candidates = 0;
  for (;;) {
    // Materialize π: the j-th id of class C (ascending) maps to the
    // j-th id of its current arrangement; everything else is fixed.
    for (size_t C = 0; C != W.Classes.size(); ++C)
      for (size_t J = 0; J != W.Classes[C].size(); ++J)
        W.Perm[W.Classes[C][J]] = W.Arr[C][J];
    for (size_t I = 0; I != NumM; ++I)
      W.Inv[W.Perm[I]] = static_cast<int32_t>(I);

    if (Exact) {
      W.SymBuf.clear();
      serializeConfigPermuted(Cfg, W.Perm, W.Inv, W.SymBuf);
      if (First)
        CfgLen = W.SymBuf.size();
      auto PutI32 = [&](int32_t V) {
        for (int B = 0; B != 4; ++B)
          W.SymBuf.push_back(static_cast<char>((V >> (8 * B)) & 0xff));
      };
      if (Delay)
        for (int32_t Id : N.Sched)
          PutI32(W.Perm[Id]);
      PutI32(N.MustRun >= 0 ? W.Perm[N.MustRun] : N.MustRun);
      if (Opts.Faults.enabled())
        PutI32(N.FaultsUsed);
      if (First || W.SymBuf < W.Buf) {
        Out.Identity = First;
        std::swap(W.Buf, W.SymBuf);
        if (SleepOn)
          W.WinPerm = W.Perm;
      }
    } else {
      uint64_t Support = 0;
      for (size_t I = 0; I != NumM; ++I)
        if (W.Perm[I] != static_cast<int32_t>(I))
          Support |= 1ull << I;
      uint64_t Hc =
          hashConfigPermuted(Cfg, W.Perm, W.Inv, Support, W.Scratch);
      uint64_t K = Hc;
      if (Delay)
        for (int32_t Id : N.Sched)
          K = hashCombine(K, static_cast<uint32_t>(W.Perm[Id]));
      K = hashCombine(
          K, static_cast<uint32_t>(N.MustRun >= 0 ? W.Perm[N.MustRun]
                                                  : N.MustRun));
      if (Opts.Faults.enabled())
        K = hashCombine(K, static_cast<uint32_t>(N.FaultsUsed));
      if (First) {
        Out.CfgHash = Hc;
        Out.Key = K;
        if (SleepOn)
          W.WinPerm = W.Perm;
      } else {
        Out.CfgHash = std::min(Out.CfgHash, Hc);
        if (K < Out.Key) {
          Out.Key = K;
          Out.Identity = false;
          if (SleepOn)
            W.WinPerm = W.Perm;
        }
      }
    }
    First = false;
    if (++Candidates >= MaxSymCandidates)
      break;
    // Odometer: advance the last class; a wrap (next_permutation back
    // to ascending) carries into the class before it.
    int C = static_cast<int>(W.Arr.size());
    while (C-- > 0)
      if (std::next_permutation(W.Arr[C].begin(), W.Arr[C].end()))
        break;
    if (C < 0)
      break;
  }
  if (Exact) {
    Out.Key = hashBytes(W.Buf.data(), W.Buf.size());
    Out.CfgHash = hashBytes(W.Buf.data(), CfgLen);
  }
  if (SleepOn)
    Out.CanonMask = permuteMask(SleepMask, W.WinPerm);
  return Out;
}

/// Pushes the fault children of a scheduling point: one per droppable
/// queue entry, duplicable queue entry, and crashable live machine.
/// Each costs 1 against FaultSpec::Budget. Children are pushed in
/// reverse of the exploration (and lex) order — crashes, duplicates,
/// drops, each descending by (machine, queue index) — so the DFS pops
/// drops ascending first and crashes ascending last; the caller pushes
/// the Delay child and runs the zero-cost Run branch after.
void ParallelSearch::pushFaultChildren(Worker &W, const Node &N) {
  const FaultSpec &F = Opts.Faults;
  if (!F.enabled() || N.MustRun >= 0 || N.FaultsUsed >= F.Budget)
    return;
  const int32_t NumM = static_cast<int32_t>(N.Cfg.Machines.size());

  if (F.Crash) {
    for (int32_t Id = NumM; Id-- > 0;) {
      const MachineState &M = *N.Cfg.Machines[Id];
      if (!M.Alive || !F.crashTypeAllowed(M.MachineIndex))
        continue;
      Node C = N; // copy
      C.FaultsUsed += 1;
      W.Exec.crashMachine(C.Cfg, Id); // Records FaultInjected itself.
      for (auto It = C.Sched.begin(); It != C.Sched.end();)
        It = (*It == Id) ? C.Sched.erase(It) : std::next(It);
      if (SleepOn) // The crash touches Id: dependent sleepers wake.
        wakeSleepers(C.Sleep, idBit(Id));
      SchedDecision D;
      D.K = SchedDecision::Kind::Crash;
      D.Machine = Id;
      C.TraceIdx = addTrace(W, C.TraceIdx, D);
      FaultsInjected.fetch_add(1, std::memory_order_relaxed);
      if (ProfileOn) { // The fault acted on Id: its type gets the node.
        C.ByType = M.MachineIndex;
        W.Prof.FaultKinds[2] += 1;
      }
      pushNode(W, std::move(C));
    }
  }

  for (int Pass = 0; Pass != 2; ++Pass) {
    const bool Dup = Pass == 0; // Duplicates push first, pop after drops.
    if (Dup ? !F.Duplicate : !F.Drop)
      continue;
    for (int32_t Id = NumM; Id-- > 0;) {
      const MachineState &M = *N.Cfg.Machines[Id];
      if (!M.Alive)
        continue;
      for (int32_t Q = static_cast<int32_t>(M.Queue.size()); Q-- > 0;) {
        if (!F.eventAllowed(M.Queue[Q].first))
          continue;
        Node C = N; // copy: O(#machines) snapshot pointer bumps
        C.FaultsUsed += 1;
        // mut() clones only this machine's snapshot; M still reads N's.
        auto &CQ = C.Cfg.mutableMachine(Id).Queue;
        SchedDecision D;
        D.Machine = Id;
        D.Aux = Q;
        if (Dup) {
          // The network delivered this message twice: the second copy
          // lands at the back of the queue, deliberately bypassing the
          // send-side ⊎ guard.
          D.K = SchedDecision::Kind::DupEvent;
          CQ.push_back(CQ[Q]);
        } else {
          D.K = SchedDecision::Kind::DropEvent;
          CQ.erase(CQ.begin() + Q);
        }
        if (W.Trace)
          W.Trace->record(obs::TraceKind::FaultInjected, Id,
                          static_cast<int32_t>(
                              Dup ? FaultKind::DuplicateEvent
                                  : FaultKind::DropEvent),
                          M.Queue[Q].first);
        if (SleepOn) // The queue fault touches Id's state.
          wakeSleepers(C.Sleep, idBit(Id));
        C.TraceIdx = addTrace(W, C.TraceIdx, D);
        FaultsInjected.fetch_add(1, std::memory_order_relaxed);
        if (ProfileOn) {
          C.ByType = M.MachineIndex;
          W.Prof.FaultKinds[Dup ? 1 : 0] += 1;
        }
        pushNode(W, std::move(C));
      }
    }
  }
}

void ParallelSearch::expandRun(Worker &W, Node &&N, int32_t Id,
                               Executor::StepResult *OutR) {
  if (W.Trace)
    W.Trace->record(obs::TraceKind::Slice, Id);
  int32_t SliceType = -1;
  std::chrono::steady_clock::time_point SliceT0;
  if (ProfileOn) {
    SliceType = N.Cfg.Machines[Id]->MachineIndex;
    SliceT0 = std::chrono::steady_clock::now();
  }
  Executor::StepResult R = W.Exec.step(N.Cfg, Id);
  if (ProfileOn) {
    const uint64_t Ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - SliceT0)
            .count();
    obs::MachineProfile &Row = W.Prof.Machines[W.Prof.rowOf(SliceType)];
    Row.Slices += 1;
    Row.SliceNs += Ns;
    W.Prof.SliceSeconds.observe(static_cast<double>(Ns) * 1e-9);
    // Every child of this slice — and the node keyed from its result —
    // is this type's doing.
    N.ByType = SliceType;
  }
  if (OutR)
    *OutR = R;
  if (SleepOn && !N.Sleep.empty()) {
    // The slice's footprint: the machine itself plus its send/create
    // target. Sleepers it intersects depended on this decision — the
    // commutation that justified their nap no longer holds, so they
    // wake in every child of this slice.
    uint64_t F = idBit(Id);
    if (R.Outcome == Executor::StepOutcome::SchedulingPoint)
      F |= idBit(R.Other);
    wakeSleepers(N.Sleep, F);
  }
  W.Slices.fetch_add(1, std::memory_order_relaxed);
  N.Depth += 1;
  N.MustRun = -1;
  // Single-writer max: only this worker stores, heartbeat only reads.
  if (N.Depth > W.MaxDepth.load(std::memory_order_relaxed))
    W.MaxDepth.store(N.Depth, std::memory_order_relaxed);

  SchedDecision RunDecision;
  RunDecision.K = SchedDecision::Kind::Run;
  RunDecision.Machine = Id;
  N.TraceIdx = addTrace(W, N.TraceIdx, RunDecision);

  switch (R.Outcome) {
  case Executor::StepOutcome::Error: {
    noteConfig(W, configHash(W, N.Cfg), N.Cfg, N.ByType);
    recordError(W, N);
    if (Opts.StopOnFirstError)
      Stop.store(true, std::memory_order_relaxed);
    return;
  }
  case Executor::StepOutcome::ChoicePoint: {
    // Branch on the `*`: two children, the same machine resumes.
    N.MustRun = Id;
    SchedDecision ChooseTrue, ChooseFalse;
    ChooseTrue.K = ChooseFalse.K = SchedDecision::Kind::Choose;
    ChooseTrue.Choice = true;
    Node TrueChild = N; // copy: O(#machines) snapshot pointer bumps
    TrueChild.Cfg.mutableMachine(Id).InjectedChoice = true;
    TrueChild.TraceIdx = addTrace(W, TrueChild.TraceIdx, ChooseTrue);
    N.Cfg.mutableMachine(Id).InjectedChoice = false;
    N.TraceIdx = addTrace(W, N.TraceIdx, ChooseFalse);
    pushNode(W, std::move(TrueChild));
    pushNode(W, std::move(N));
    return;
  }
  case Executor::StepOutcome::SchedulingPoint: {
    if (Opts.Strategy == SearchStrategy::DelayBounded) {
      bool InSched = false;
      for (int32_t S : N.Sched)
        InSched |= (S == R.Other);
      if (!InSched)
        N.Sched.push_front(R.Other);
    }
    pushNode(W, std::move(N));
    return;
  }
  case Executor::StepOutcome::Blocked: {
    if (Opts.Strategy == SearchStrategy::DelayBounded) {
      assert(!N.Sched.empty() && N.Sched.front() == Id);
      N.Sched.pop_front();
    }
    pushNode(W, std::move(N));
    return;
  }
  case Executor::StepOutcome::Halted: {
    if (Opts.Strategy == SearchStrategy::DelayBounded) {
      for (auto It = N.Sched.begin(); It != N.Sched.end();)
        It = (*It == Id) ? N.Sched.erase(It) : std::next(It);
    }
    pushNode(W, std::move(N));
    return;
  }
  case Executor::StepOutcome::ForeignCall: {
    // Stopped at a foreign call (fault points on): branch on whether
    // the environment fails it, like a `*` choice, except the failing
    // branch costs one fault. The same machine resumes either way.
    N.MustRun = Id;
    if (Opts.Faults.FailForeign && N.FaultsUsed < Opts.Faults.Budget) {
      Node FailChild = N; // copy: O(#machines) snapshot pointer bumps
      FailChild.FaultsUsed += 1;
      FailChild.Cfg.mutableMachine(Id).InjectedForeignFail = true;
      SchedDecision FailDecision;
      FailDecision.K = SchedDecision::Kind::ForeignFault;
      FailDecision.Machine = Id;
      FailDecision.Choice = true;
      FailChild.TraceIdx = addTrace(W, FailChild.TraceIdx, FailDecision);
      FaultsInjected.fetch_add(1, std::memory_order_relaxed);
      if (ProfileOn)
        W.Prof.FaultKinds[3] += 1;
      pushNode(W, std::move(FailChild));
    }
    N.Cfg.mutableMachine(Id).InjectedForeignFail = false;
    SchedDecision OkDecision;
    OkDecision.K = SchedDecision::Kind::ForeignFault;
    OkDecision.Machine = Id;
    OkDecision.Choice = false;
    N.TraceIdx = addTrace(W, N.TraceIdx, OkDecision);
    pushNode(W, std::move(N));
    return;
  }
  }
}

void ParallelSearch::expandDelayBounded(Worker &W, Node &&N) {
  // Incremental fingerprint: the combination of the per-machine cached
  // fingerprints — a successor re-hashes only the one machine its slice
  // mutated (the CowMachine cache survives for the rest).
  uint64_t CfgHash = configHash(W, N.Cfg);

  // A sleeper that is dead or has nothing to run cannot take the
  // pruned decision anyway, and it can only become runnable again
  // through a dependent decision (a send or a queue fault), which
  // wakes it. Dropping such entries before keying keeps nodes that
  // have equal futures from splitting the visited set.
  if (SleepOn && !N.Sleep.empty())
    N.Sleep.erase(std::remove_if(N.Sleep.begin(), N.Sleep.end(),
                                 [&](const SleepEntry &E) {
                                   return !W.Exec.isEnabled(N.Cfg, E.Id);
                                 }),
                  N.Sleep.end());

  // Normalize: drop disabled machines from the top of S.
  while (!N.Sched.empty() && !W.Exec.isEnabled(N.Cfg, N.Sched.front()))
    N.Sched.pop_front();

  if (N.Sched.empty()) {
    // Re-arm any enabled machine missed by the causal discipline
    // (cannot normally happen; defensive completeness).
    for (int32_t Id = 0; Id < static_cast<int32_t>(N.Cfg.Machines.size());
         ++Id)
      if (W.Exec.isEnabled(N.Cfg, Id)) {
        N.Sched.push_back(Id);
        break;
      }
  }
  const bool Terminal = N.Sched.empty();

  // Dedup key: config + scheduler stack + resumption obligation (the
  // future depends on all three). Exact mode serializes the whole
  // node into W.Buf — the map keys on the bytes; hashed modes fold the
  // suffix into the config hash and never serialize. Full 4-byte ids —
  // truncation here once caused distinct stacks to collide. Under
  // symmetry the keys are the canonical minimum over the orbit instead.
  // The sleep mask is deliberately NOT part of the key: it joins the
  // delay count as the second dominance dimension (see prunedSleep).
  uint64_t Key = 0;
  uint64_t NoteHash = CfgHash;
  uint64_t SleepMask = 0;
  if (SleepOn)
    for (const SleepEntry &E : N.Sleep)
      SleepMask |= idBit(E.Id);
  bool SymNonId = false;
  const bool Sym = SymOn && buildSymClasses(W, N.Cfg);
  if (Sym) {
    CanonKeys CK = canonicalNodeKeys(W, N, SleepMask);
    NoteHash = CK.CfgHash;
    Key = CK.Key;
    SleepMask = CK.CanonMask;
    SymNonId = !CK.Identity;
  } else if (!Terminal) {
    if (Mode == VisitedMode::Exact) {
      W.Buf.clear();
      serializeConfig(N.Cfg, W.Buf);
      for (int32_t Id : N.Sched)
        for (int B = 0; B != 4; ++B)
          W.Buf.push_back(static_cast<char>((Id >> (8 * B)) & 0xff));
      for (int B = 0; B != 4; ++B)
        W.Buf.push_back(static_cast<char>((N.MustRun >> (8 * B)) & 0xff));
      // With a fault budget, the remaining budget is part of the node's
      // future (the dominance value only tracks delays), so FaultsUsed
      // joins the key. Appended only when fault exploration is on, keeping
      // budget-0 runs bit-identical to a checker without the fault layer.
      if (Opts.Faults.enabled())
        for (int B = 0; B != 4; ++B)
          W.Buf.push_back(
              static_cast<char>((N.FaultsUsed >> (8 * B)) & 0xff));
      Key = hashBytes(W.Buf.data(), W.Buf.size());
    } else {
      uint64_t K = CfgHash;
      for (int32_t Id : N.Sched)
        K = hashCombine(K, static_cast<uint32_t>(Id));
      K = hashCombine(K, static_cast<uint32_t>(N.MustRun));
      if (Opts.Faults.enabled())
        K = hashCombine(K, static_cast<uint32_t>(N.FaultsUsed));
      Key = K;
    }
  }

  noteConfig(W, NoteHash, N.Cfg, N.ByType);
  if (Terminal) {
    noteTerminal(W, NoteHash); // Quiescent: every machine awaits events.
    return;
  }
  if (SleepOn ? prunedSleep(W, Key, W.Buf, N.DelaysUsed, SleepMask)
              : pruned(W, Key, W.Buf, N.DelaysUsed)) {
    if (SymNonId) {
      SymmetryCollapsed.fetch_add(1, std::memory_order_relaxed);
      if (ProfileOn)
        profileCollapse(W);
    }
    return;
  }
  NodesExplored.fetch_add(1, std::memory_order_relaxed);
  if (ProfileOn)
    W.Prof.noteNode(N.ByType, N.Depth, N.DelaysUsed,
                    Opts.Faults.enabled() ? N.FaultsUsed : -1);
  if (N.Depth >= Opts.DepthBound) {
    Exhausted.store(false, std::memory_order_relaxed);
    return;
  }

  pushFaultChildren(W, N);

  const int32_t Top = N.MustRun >= 0 ? N.MustRun : N.Sched.front();
  const bool CanDelay =
      N.MustRun < 0 && N.DelaysUsed < Opts.DelayBound && N.Sched.size() > 1;

  // A helper shared by both orders below: the Delay child (rotate the
  // top to the bottom for one unit of budget).
  auto makeDelayed = [&](const Node &From) {
    Node Delayed = From; // copy
    int32_t Moved = Delayed.Sched.front();
    Delayed.Sched.push_back(Moved);
    Delayed.Sched.pop_front();
    Delayed.DelaysUsed += 1;
    SchedDecision DelayDecision;
    DelayDecision.K = SchedDecision::Kind::Delay;
    DelayDecision.Machine = Moved;
    Delayed.TraceIdx = addTrace(W, Delayed.TraceIdx, DelayDecision);
    if (W.Trace)
      W.Trace->record(obs::TraceKind::Delay, Moved);
    return Delayed;
  };

  if (!SleepOn) {
    // Children are pushed so the zero-cost "run the top" branch is
    // explored first (DFS pops last-pushed first): push delay first.
    if (CanDelay)
      pushNode(W, makeDelayed(N));
    expandRun(W, std::move(N), Top);
    return;
  }

  if (N.MustRun < 0 && isAsleep(N.Sleep, Top)) {
    // Running the top now would commute — decision by decision — back
    // into the already-explored branch that put it to sleep; only the
    // Delay alternative remains.
    PrunedByIndependence.fetch_add(1, std::memory_order_relaxed);
    if (ProfileOn) // The sleeper's type earned the prune.
      W.Prof.Machines[W.Prof.rowOf(N.Cfg.Machines[Top]->MachineIndex)]
          .SleepPruned += 1;
    if (CanDelay)
      pushNode(W, makeDelayed(N));
    return;
  }
  if (!CanDelay) {
    expandRun(W, std::move(N), Top);
    return;
  }
  // Run the top first so its slice outcome can decide whether the Delay
  // sibling may put it to sleep. The insertion must be budget-safe: a
  // path in the Delay subtree that would re-run Top before any
  // dependent decision must commute into a run-first mirror that
  // spends no *more* delays. That holds when the slice ends Blocked or
  // Halted (the mirror run-first path needs no delay at all), and when
  // it sends to a machine already in the pre-run stack (the mirror
  // spends its one delay rotating Top away after running it — the
  // stacks re-converge because the send pushed no new machine).
  // Slices that create a machine or push their target freshly onto the
  // stack change the stack shape and have no such mirror; choice and
  // foreign-call pauses are not complete slices. Those never sleep.
  Node Delayed = makeDelayed(N);
  Executor::StepResult R;
  expandRun(W, std::move(N), Top, &R);
  bool Insert = Top >= 0 && Top < 63;
  if (Insert) {
    switch (R.Outcome) {
    case Executor::StepOutcome::Blocked:
    case Executor::StepOutcome::Halted:
      break;
    case Executor::StepOutcome::SchedulingPoint: {
      bool TargetInStack = false;
      for (int32_t S : Delayed.Sched)
        TargetInStack |= (S == R.Other);
      Insert = !R.Created && R.Other >= 0 && R.Other < 63 && TargetInStack;
      break;
    }
    default:
      Insert = false;
      break;
    }
  }
  if (Insert) {
    SleepEntry E;
    E.Id = Top;
    E.Fp = idBit(Top);
    if (R.Outcome == Executor::StepOutcome::SchedulingPoint)
      E.Fp |= idBit(R.Other);
    Delayed.Sleep.push_back(E);
  }
  pushNode(W, std::move(Delayed));
}

void ParallelSearch::expandDepthBounded(Worker &W, Node &&N) {
  uint64_t CfgHash = configHash(W, N.Cfg);

  // Same stale-sleeper normalization as the delaying scheduler.
  if (SleepOn && !N.Sleep.empty())
    N.Sleep.erase(std::remove_if(N.Sleep.begin(), N.Sleep.end(),
                                 [&](const SleepEntry &E) {
                                   return !W.Exec.isEnabled(N.Cfg, E.Id);
                                 }),
                  N.Sleep.end());

  uint64_t Key;
  uint64_t NoteHash = CfgHash;
  uint64_t SleepMask = 0;
  if (SleepOn)
    for (const SleepEntry &E : N.Sleep)
      SleepMask |= idBit(E.Id);
  bool SymNonId = false;
  const bool Sym = SymOn && buildSymClasses(W, N.Cfg);
  if (Sym) {
    CanonKeys CK = canonicalNodeKeys(W, N, SleepMask);
    NoteHash = CK.CfgHash;
    Key = CK.Key;
    SleepMask = CK.CanonMask;
    SymNonId = !CK.Identity;
  } else if (Mode == VisitedMode::Exact) {
    W.Buf.clear();
    serializeConfig(N.Cfg, W.Buf);
    for (int B = 0; B != 4; ++B)
      W.Buf.push_back(static_cast<char>((N.MustRun >> (8 * B)) & 0xff));
    if (Opts.Faults.enabled())
      for (int B = 0; B != 4; ++B)
        W.Buf.push_back(
            static_cast<char>((N.FaultsUsed >> (8 * B)) & 0xff));
    Key = hashBytes(W.Buf.data(), W.Buf.size());
  } else {
    uint64_t K = hashCombine(CfgHash, static_cast<uint32_t>(N.MustRun));
    if (Opts.Faults.enabled())
      K = hashCombine(K, static_cast<uint32_t>(N.FaultsUsed));
    Key = K;
  }
  noteConfig(W, NoteHash, N.Cfg, N.ByType);
  if (SleepOn ? prunedSleep(W, Key, W.Buf, N.DelaysUsed, SleepMask)
              : pruned(W, Key, W.Buf, N.DelaysUsed)) {
    if (SymNonId) {
      SymmetryCollapsed.fetch_add(1, std::memory_order_relaxed);
      if (ProfileOn)
        profileCollapse(W);
    }
    return;
  }
  NodesExplored.fetch_add(1, std::memory_order_relaxed);
  if (ProfileOn)
    W.Prof.noteNode(N.ByType, N.Depth, N.DelaysUsed,
                    Opts.Faults.enabled() ? N.FaultsUsed : -1);
  if (N.Depth >= Opts.DepthBound) {
    Exhausted.store(false, std::memory_order_relaxed);
    return;
  }

  if (N.MustRun >= 0) {
    int32_t Id = N.MustRun;
    expandRun(W, std::move(N), Id);
    return;
  }

  pushFaultChildren(W, N);

  // Sibling sleep sets (Reduction::Sleep): after a machine's subtree is
  // explored here, later siblings inherit it as a sleeper — re-running
  // it before any dependent decision would commute into the explored
  // subtree. N.Sleep doubles as the accumulator: each child copies the
  // set as of its turn. Only complete slices (Blocked, Halted, one
  // send/create) accumulate; a paused slice (choice, foreign call) is
  // not one atomic transition of the independence relation.
  bool Any = false;
  for (int32_t Id = static_cast<int32_t>(N.Cfg.Machines.size()); Id-- > 0;) {
    if (!W.Exec.isEnabled(N.Cfg, Id))
      continue;
    Any = true;
    if (SleepOn && isAsleep(N.Sleep, Id)) {
      PrunedByIndependence.fetch_add(1, std::memory_order_relaxed);
      if (ProfileOn)
        W.Prof.Machines[W.Prof.rowOf(N.Cfg.Machines[Id]->MachineIndex)]
            .SleepPruned += 1;
      continue;
    }
    Node Child = N; // copy per enabled machine
    Executor::StepResult R;
    expandRun(W, std::move(Child), Id, SleepOn ? &R : nullptr);
    if (Stop.load(std::memory_order_relaxed))
      return;
    if (SleepOn && Id < 63) {
      bool Insert = false;
      uint64_t Fp = idBit(Id);
      switch (R.Outcome) {
      case Executor::StepOutcome::Blocked:
      case Executor::StepOutcome::Halted:
        Insert = true;
        break;
      case Executor::StepOutcome::SchedulingPoint:
        Insert = R.Other >= 0 && R.Other < 63;
        Fp |= idBit(R.Other);
        break;
      default:
        break;
      }
      if (Insert)
        N.Sleep.push_back({Id, Fp});
    }
  }
  if (!Any)
    noteTerminal(W, NoteHash);
}

void ParallelSearch::process(Worker &W, Node &&N) {
  if (DepthHist)
    DepthHist->observe(N.Depth);
  if (N.Cfg.hasError()) {
    // Error configs produced directly (e.g. by enqueue) get recorded
    // here; expandRun already records errors from slices.
    recordError(W, N);
    if (Opts.StopOnFirstError)
      Stop.store(true, std::memory_order_relaxed);
    return;
  }
  if (Opts.Strategy == SearchStrategy::DelayBounded)
    expandDelayBounded(W, std::move(N));
  else
    expandDepthBounded(W, std::move(N));
}

void ParallelSearch::workerLoop(Worker &W) {
  // The progress heartbeat runs on worker 0's loop: cheap clock checks
  // between nodes, a stats snapshot when the interval elapses. The
  // callback runs on this thread, so it must not re-enter check().
  const bool Heartbeat =
      W.Id == 0 && Opts.Progress && Opts.ProgressIntervalSeconds > 0;
  const auto Interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(Opts.ProgressIntervalSeconds));
  auto NextBeat = std::chrono::steady_clock::now() + Interval;

  // Periodic checkpoints ride worker 0's loop the same way; the flag
  // then pulls every worker into the barrier. Interrupt polling is also
  // worker 0's job: one relaxed load per iteration, and the Stop flag
  // fans the decision out.
  const bool CkptTimer = W.Id == 0 && !Opts.CheckpointPath.empty() &&
                         Opts.CheckpointIntervalSeconds > 0;
  const auto CkptInterval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(Opts.CheckpointIntervalSeconds));
  auto NextCkpt = std::chrono::steady_clock::now() + CkptInterval;
  const bool PollInterrupt = W.Id == 0 && Opts.InterruptFlag != nullptr;
  const bool CkptOn = !Opts.CheckpointPath.empty() &&
                      Opts.CheckpointIntervalSeconds > 0;

  int IdleSpins = 0;
  while (!Stop.load(std::memory_order_relaxed)) {
    if (Heartbeat && std::chrono::steady_clock::now() >= NextBeat) {
      Opts.Progress(snapshotStats());
      NextBeat = std::chrono::steady_clock::now() + Interval;
    }
    if (PollInterrupt &&
        Opts.InterruptFlag->load(std::memory_order_relaxed)) {
      // Cooperative interruption: stop draining the frontier. What is
      // left in flight lands in the final checkpoint (written
      // single-threaded after the join).
      Interrupted.store(true, std::memory_order_relaxed);
      Stop.store(true, std::memory_order_relaxed);
      break;
    }
    if (CkptTimer && std::chrono::steady_clock::now() >= NextCkpt) {
      requestCheckpoint();
      NextCkpt = std::chrono::steady_clock::now() + CkptInterval;
    }
    if (CkptOn && CkptFlag.load(std::memory_order_acquire))
      checkpointBarrier(W);
    if (Opts.MaxNodes &&
        NodesExplored.load(std::memory_order_relaxed) >= Opts.MaxNodes) {
      // Checked *before* popping so the cut discards nothing: every
      // pending node stays in some frontier, which is what lets a
      // checkpointed MaxNodes run resume losslessly.
      Stop.store(true, std::memory_order_relaxed);
      break;
    }
    Node N;
    bool Have = popLocal(W, N);
    if (!Have && NumWorkers > 1)
      Have = trySteal(W, N);
    if (!Have && Spill)
      Have = tryReloadSpill(W, N);
    if (!Have) {
      if (InFlight.load(std::memory_order_acquire) == 0)
        break;
      if (++IdleSpins < 64)
        std::this_thread::yield();
      else
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      continue;
    }
    IdleSpins = 0;
    process(W, std::move(N));
    InFlight.fetch_sub(1, std::memory_order_acq_rel);
  }
  workerExited();
}

std::vector<std::string>
ParallelSearch::renderTrace(const std::vector<SchedDecision> &Schedule) {
  std::vector<std::string> Lines;
  // A schedule that resolves foreign calls must be re-executed with
  // foreign fault points on, or the slice boundaries shift; the flag is
  // deducible from the schedule itself (see Replay.cpp for the same
  // logic), so counterexamples stay self-contained.
  Executor RExec(BaseExec);
  for (const SchedDecision &D : Schedule)
    if (D.K == SchedDecision::Kind::ForeignFault) {
      RExec.setForeignFaultPoints(true);
      break;
    }
  Config Cfg = RExec.makeInitialConfig();
  Lines.push_back("initial: create " + RExec.describeMachine(Cfg, 0));
  int32_t LastRun = -1;
  auto EventName = [&](int32_t E) {
    return E >= 0 && E < static_cast<int32_t>(Prog.Events.size())
               ? Prog.Events[E].Name
               : std::to_string(E);
  };
  for (const SchedDecision &D : Schedule) {
    switch (D.K) {
    case SchedDecision::Kind::Delay:
      Lines.push_back("delay " + RExec.describeMachine(Cfg, D.Machine));
      break;
    case SchedDecision::Kind::Choose:
      if (LastRun >= 0 &&
          LastRun < static_cast<int32_t>(Cfg.Machines.size()))
        Cfg.mutableMachine(LastRun).InjectedChoice = D.Choice;
      Lines.push_back(D.Choice ? "choose true" : "choose false");
      break;
    case SchedDecision::Kind::DropEvent:
    case SchedDecision::Kind::DupEvent: {
      auto &Q = Cfg.mutableMachine(D.Machine).Queue;
      if (D.Aux < 0 || D.Aux >= static_cast<int32_t>(Q.size())) {
        Lines.push_back("fault: stale queue index (schedule corrupt?)");
        break;
      }
      const bool Dup = D.K == SchedDecision::Kind::DupEvent;
      Lines.push_back(std::string("fault: ") +
                      (Dup ? "duplicate " : "drop ") +
                      EventName(Q[D.Aux].first) + " in queue of " +
                      RExec.describeMachine(Cfg, D.Machine));
      if (Dup)
        Q.push_back(Q[D.Aux]);
      else
        Q.erase(Q.begin() + D.Aux);
      break;
    }
    case SchedDecision::Kind::Crash:
      Lines.push_back("fault: crash " +
                      RExec.describeMachine(Cfg, D.Machine));
      RExec.crashMachine(Cfg, D.Machine);
      break;
    case SchedDecision::Kind::ForeignFault:
      if (D.Machine >= 0 &&
          D.Machine < static_cast<int32_t>(Cfg.Machines.size()))
        Cfg.mutableMachine(D.Machine).InjectedForeignFail = D.Choice;
      Lines.push_back(D.Choice ? "fault: foreign call fails (returns ⊥)"
                               : "foreign call succeeds");
      break;
    case SchedDecision::Kind::Run: {
      LastRun = D.Machine;
      std::string Desc = "run " + RExec.describeMachine(Cfg, D.Machine);
      Executor::StepResult R = RExec.step(Cfg, D.Machine);
      switch (R.Outcome) {
      case Executor::StepOutcome::Error:
        Lines.push_back(Desc + " -> error: " + Cfg.ErrorMessage);
        break;
      case Executor::StepOutcome::ChoicePoint:
        Lines.push_back(Desc + " -> choice");
        break;
      case Executor::StepOutcome::SchedulingPoint:
        Lines.push_back(Desc +
                        (R.Created ? " -> created " : " -> sent to ") +
                        std::to_string(R.Other));
        break;
      case Executor::StepOutcome::Blocked:
        Lines.push_back(Desc + " -> blocked");
        break;
      case Executor::StepOutcome::Halted:
        Lines.push_back(Desc + " -> halted");
        break;
      case Executor::StepOutcome::ForeignCall:
        Lines.push_back(Desc + " -> foreign call");
        break;
      }
      break;
    }
    }
  }
  return Lines;
}

//===----------------------------------------------------------------------===//
// Crash safety: checkpoints, interruption, frontier spilling
//===----------------------------------------------------------------------===//

ckpt::FrontierNode ParallelSearch::toFrontierNode(const Node &N) {
  ckpt::FrontierNode F;
  F.Cfg = N.Cfg; // COW handles: shares snapshots, no deep copy.
  F.Sched.assign(N.Sched.begin(), N.Sched.end());
  F.DelaysUsed = N.DelaysUsed;
  F.FaultsUsed = N.FaultsUsed;
  F.Depth = N.Depth;
  F.MustRun = N.MustRun;
  F.ByType = N.ByType;
  F.Sleep.reserve(N.Sleep.size());
  for (const SleepEntry &E : N.Sleep)
    F.Sleep.emplace_back(E.Id, E.Fp);
  // Decisions from the root, so the node survives outside this
  // process's trace arenas.
  F.Schedule = materializeSchedule(N.TraceIdx);
  return F;
}

Node ParallelSearch::fromFrontierNode(Worker &W, ckpt::FrontierNode &&F) {
  Node N;
  N.Cfg = std::move(F.Cfg);
  N.Sched.assign(F.Sched.begin(), F.Sched.end());
  N.DelaysUsed = F.DelaysUsed;
  N.FaultsUsed = F.FaultsUsed;
  N.Depth = F.Depth;
  N.MustRun = F.MustRun;
  N.ByType = F.ByType;
  N.Sleep.reserve(F.Sleep.size());
  for (const auto &[Id, Fp] : F.Sleep)
    N.Sleep.push_back({Id, Fp});
  // Rebuild the decision chain in W's arena so a counterexample found
  // below this node still materializes a complete schedule.
  uint64_t Ref = NoTraceRef;
  for (const SchedDecision &D : F.Schedule)
    Ref = addTrace(W, Ref, D);
  N.TraceIdx = Ref;
  return N;
}

void ParallelSearch::requestCheckpoint() {
  {
    std::lock_guard<std::mutex> L(CkptMu);
    if (CkptRequested)
      return;
    CkptRequested = true;
  }
  CkptFlag.store(true, std::memory_order_release);
}

void ParallelSearch::checkpointBarrier(Worker &) {
  std::unique_lock<std::mutex> L(CkptMu);
  if (!CkptRequested)
    return;
  const uint64_t Gen = CkptGen;
  if (++CkptParked == ActiveWorkers) {
    // Everyone else is parked in the wait below (holding no locks), so
    // the last arrival snapshots the engine with exclusive access.
    performCheckpoint();
    CkptParked = 0;
    CkptRequested = false;
    CkptFlag.store(false, std::memory_order_release);
    ++CkptGen;
    CkptCv.notify_all();
  } else {
    CkptCv.wait(L, [&] { return CkptGen != Gen; });
  }
}

void ParallelSearch::workerExited() {
  std::lock_guard<std::mutex> L(CkptMu);
  --ActiveWorkers;
  if (!CkptRequested)
    return;
  // A worker leaving mid-request would strand the others in the
  // barrier: complete it on their behalf, or drop the request when
  // this was the last worker (the final checkpoint written after the
  // join supersedes it).
  if (ActiveWorkers == 0 || CkptParked == ActiveWorkers) {
    if (ActiveWorkers > 0)
      performCheckpoint();
    CkptParked = 0;
    CkptRequested = false;
    CkptFlag.store(false, std::memory_order_release);
    ++CkptGen;
    CkptCv.notify_all();
  }
}

bool ParallelSearch::captureCheckpoint(ckpt::CheckpointData &D) {
  D.Fingerprint = Fingerprint;

  D.DistinctStates = DistinctStates.load(std::memory_order_relaxed);
  D.NodesExplored = NodesExplored.load(std::memory_order_relaxed);
  D.ErrorsFound = ErrorsFound.load(std::memory_order_relaxed);
  D.FaultsInjected = FaultsInjected.load(std::memory_order_relaxed);
  D.PrunedByIndependence =
      PrunedByIndependence.load(std::memory_order_relaxed);
  D.SymmetryCollapsed = SymmetryCollapsed.load(std::memory_order_relaxed);
  D.HashMismatches = HashMismatches.load(std::memory_order_relaxed);
  D.OmissionPossible = Omission.load(std::memory_order_relaxed);
  // Depth-truncation state only: a Stop (interrupt, MaxNodes, error)
  // leaves its pending work in this very checkpoint, so it is not a
  // permanent loss and must not poison the resumed run's verdict.
  D.Exhausted = Exhausted.load(std::memory_order_relaxed);
  // Count this checkpoint in its own image, so the cumulative counter
  // survives the restart it enables.
  D.CheckpointsWritten =
      CheckpointsWritten.load(std::memory_order_relaxed) + 1;

  for (const auto &W : Workers) {
    D.Slices += W->Slices.load(std::memory_order_relaxed);
    D.Terminals += W->Terminals.load(std::memory_order_relaxed);
    D.StealCount += W->StealCount.load(std::memory_order_relaxed);
    D.ContentionNs += W->ContentionNs.load(std::memory_order_relaxed);
    D.MaxDepth = std::max(D.MaxDepth,
                          W->MaxDepth.load(std::memory_order_relaxed));
    D.TerminalHashes.insert(D.TerminalHashes.end(),
                            W->TerminalHashes.begin(),
                            W->TerminalHashes.end());
  }
  D.ElapsedSeconds =
      PriorSeconds + std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - StartTime)
                         .count();

  for (VisitedShard &S : Visited) {
    std::lock_guard<std::mutex> L(S.Mu);
    for (const auto &[Key, Delays] : S.Hashed)
      D.Hashed.emplace_back(Key, Delays);
    for (const auto &[Key, Delays] : S.Exact)
      D.Exact.emplace_back(Key, Delays);
    for (const auto &[Key, Doms] : S.HashedSleep) {
      std::vector<ckpt::CheckpointData::SleepDom> Out;
      Out.reserve(Doms.size());
      for (const SleepDomEntry &E : Doms)
        Out.push_back({E.Delays, E.Mask});
      D.HashedSleep.emplace_back(Key, std::move(Out));
    }
    for (const auto &[Key, Doms] : S.ExactSleep) {
      std::vector<ckpt::CheckpointData::SleepDom> Out;
      Out.reserve(Doms.size());
      for (const SleepDomEntry &E : Doms)
        Out.push_back({E.Delays, E.Mask});
      D.ExactSleep.emplace_back(Key, std::move(Out));
    }
  }
  for (ConfigShard &S : Configs) {
    std::lock_guard<std::mutex> L(S.Mu);
    D.Seen.insert(D.Seen.end(), S.Seen.begin(), S.Seen.end());
    D.TerminalSet.insert(D.TerminalSet.end(), S.Terminals.begin(),
                         S.Terminals.end());
  }
  if (Mode == VisitedMode::Compact) {
    CompactDedup.exportImage(D.CompactDedup);
    CompactSeen.exportImage(D.CompactSeen);
  }

  if (Opts.TrackCoverage) {
    D.Coverage.Machines.resize(Prog.Machines.size());
    for (const auto &W : Workers)
      for (size_t M = 0; M != W->Coverage.Machines.size(); ++M) {
        auto &Into = D.Coverage.Machines[M];
        const auto &From = W->Coverage.Machines[M];
        Into.StatesVisited.insert(From.StatesVisited.begin(),
                                  From.StatesVisited.end());
        Into.TransitionsFired.insert(From.TransitionsFired.begin(),
                                     From.TransitionsFired.end());
      }
  }
  {
    std::lock_guard<std::mutex> L(BestMu);
    D.BestFound = Best.Found;
    D.BestKind = Best.Kind;
    D.BestMessage = Best.Message;
    D.BestDelays = Best.DelaysUsed;
    D.BestFaults = Best.FaultsUsed;
    D.BestSchedule = Best.Schedule;
  }

  // The frontier: in-memory deques in worker order, front to back (a
  // serial resume replays the exact DFS stack), then spilled segments.
  for (const auto &WP : Workers) {
    Worker &W = *WP;
    std::lock_guard<std::mutex> L(W.FrontierMu);
    for (const Node &N : W.Frontier)
      D.Frontier.push_back(toFrontierNode(N));
  }
  if (Spill) {
    std::vector<ckpt::FrontierNode> Spilled;
    std::string Why;
    if (!Spill->snapshot(Spilled, &Why)) {
      // A checkpoint that silently lost spilled nodes would resume an
      // incomplete search and still claim exhaustion — refuse instead.
      if (!WarnedCkptFailure.exchange(true))
        std::fprintf(stderr,
                     "warning: skipping checkpoint (cannot snapshot "
                     "spilled frontier: %s)\n",
                     Why.c_str());
      return false;
    }
    for (ckpt::FrontierNode &FN : Spilled)
      D.Frontier.push_back(std::move(FN));
    D.FrontierSpilledNodes = PriorSpilledNodes + Spill->spilledNodes();
    D.FrontierSpillBytes = PriorSpillBytes + Spill->spilledBytes();
  } else {
    D.FrontierSpilledNodes = PriorSpilledNodes;
    D.FrontierSpillBytes = PriorSpillBytes;
  }
  return true;
}

void ParallelSearch::performCheckpoint() {
  ckpt::CheckpointData D;
  if (!captureCheckpoint(D))
    return; // Warned already.
  std::string Why;
  uint64_t Bytes = 0;
  if (ckpt::saveCheckpoint(Opts.CheckpointPath, D, Why, &Bytes)) {
    CheckpointsWritten.fetch_add(1, std::memory_order_relaxed);
    LastCheckpointBytes.store(Bytes, std::memory_order_relaxed);
  } else if (!WarnedCkptFailure.exchange(true)) {
    // A failing disk must not kill a running search; the previous
    // checkpoint (if any) is still intact.
    std::fprintf(stderr, "warning: could not write checkpoint: %s\n",
                 Why.c_str());
  }
}

bool ParallelSearch::restoreCheckpoint(ckpt::CheckpointData &&D,
                                       std::string &Why) {
  DistinctStates.store(D.DistinctStates, std::memory_order_relaxed);
  NodesExplored.store(D.NodesExplored, std::memory_order_relaxed);
  ErrorsFound.store(D.ErrorsFound, std::memory_order_relaxed);
  FaultsInjected.store(D.FaultsInjected, std::memory_order_relaxed);
  PrunedByIndependence.store(D.PrunedByIndependence,
                             std::memory_order_relaxed);
  SymmetryCollapsed.store(D.SymmetryCollapsed, std::memory_order_relaxed);
  HashMismatches.store(D.HashMismatches, std::memory_order_relaxed);
  Omission.store(D.OmissionPossible, std::memory_order_relaxed);
  Exhausted.store(D.Exhausted, std::memory_order_relaxed);
  CheckpointsWritten.store(D.CheckpointsWritten,
                           std::memory_order_relaxed);
  PriorSeconds = D.ElapsedSeconds;
  PriorSpilledNodes = D.FrontierSpilledNodes;
  PriorSpillBytes = D.FrontierSpillBytes;

  // Worker-local accumulators all land on worker 0; merges are sums,
  // so placement does not matter.
  Worker &W0 = *Workers[0];
  W0.Slices.store(D.Slices, std::memory_order_relaxed);
  W0.Terminals.store(D.Terminals, std::memory_order_relaxed);
  W0.StealCount.store(D.StealCount, std::memory_order_relaxed);
  W0.ContentionNs.store(D.ContentionNs, std::memory_order_relaxed);
  W0.MaxDepth.store(D.MaxDepth, std::memory_order_relaxed);
  W0.TerminalHashes = std::move(D.TerminalHashes);
  if (Opts.TrackCoverage)
    for (size_t M = 0; M != D.Coverage.Machines.size() &&
                       M != W0.Coverage.Machines.size();
         ++M) {
      auto &Into = W0.Coverage.Machines[M];
      auto &From = D.Coverage.Machines[M];
      Into.StatesVisited.insert(From.StatesVisited.begin(),
                                From.StatesVisited.end());
      Into.TransitionsFired.insert(From.TransitionsFired.begin(),
                                   From.TransitionsFired.end());
    }

  // Visited tables, re-sharded by the same key-hash the engine uses
  // (byte accounting mirrors the insert-time formulas).
  for (const auto &[Key, Delays] : D.Hashed) {
    VisitedShard &S = Visited[shardOf(Key)];
    if (S.Hashed.emplace(Key, Delays).second)
      S.Bytes += HashedEntryBytes;
  }
  for (auto &P : D.Exact) {
    VisitedShard &S =
        Visited[shardOf(hashBytes(P.first.data(), P.first.size()))];
    auto [It, Inserted] = S.Exact.emplace(std::move(P.first), P.second);
    if (Inserted)
      S.Bytes += exactEntryBytes(It->first);
  }
  for (auto &P : D.HashedSleep) {
    VisitedShard &S = Visited[shardOf(P.first)];
    auto [It, Inserted] = S.HashedSleep.try_emplace(P.first);
    if (Inserted)
      S.Bytes += HashedEntryBytes + sizeof(It->second);
    for (const auto &E : P.second) {
      It->second.push_back({E.Delays, E.Mask});
      S.Bytes += sizeof(SleepDomEntry);
    }
  }
  for (auto &P : D.ExactSleep) {
    VisitedShard &S =
        Visited[shardOf(hashBytes(P.first.data(), P.first.size()))];
    auto [It, Inserted] = S.ExactSleep.try_emplace(std::move(P.first));
    if (Inserted)
      S.Bytes += exactEntryBytes(It->first) + sizeof(It->second);
    for (const auto &E : P.second) {
      It->second.push_back({E.Delays, E.Mask});
      S.Bytes += sizeof(SleepDomEntry);
    }
  }
  for (uint64_t H : D.Seen) {
    ConfigShard &S = Configs[shardOf(H)];
    if (S.Seen.insert(H).second)
      S.Bytes += HashedEntryBytes;
  }
  for (uint64_t H : D.TerminalSet) {
    ConfigShard &S = Configs[shardOf(H)];
    if (S.Terminals.insert(H).second)
      S.Bytes += HashedEntryBytes;
  }
  if (Mode == VisitedMode::Compact &&
      (!CompactDedup.importImage(D.CompactDedup) ||
       !CompactSeen.importImage(D.CompactSeen))) {
    Why = "checkpoint's compact visited tables do not match this run's "
          "table shape";
    return false;
  }

  if (D.BestFound) {
    Best.Found = true;
    Best.Kind = D.BestKind;
    Best.Message = std::move(D.BestMessage);
    Best.DelaysUsed = D.BestDelays;
    Best.FaultsUsed = D.BestFaults;
    Best.Schedule = std::move(D.BestSchedule);
    // The stored verdict is final under StopOnFirstError: do not
    // re-explore the pending frontier just to re-find it.
    if (Opts.StopOnFirstError)
      Stop.store(true, std::memory_order_relaxed);
  }

  // Frontier: serial runs take every node on worker 0 in capture order
  // (the exact DFS stack resumes); parallel runs deal round-robin.
  InFlight.store(static_cast<int64_t>(D.Frontier.size()),
                 std::memory_order_relaxed);
  size_t Next = 0;
  for (ckpt::FrontierNode &FN : D.Frontier) {
    Worker &W = *Workers[NumWorkers == 1 ? 0 : Next++ % NumWorkers];
    W.Frontier.push_back(fromFrontierNode(W, std::move(FN)));
  }
  if (Spill)
    InMemNodes.store(static_cast<int64_t>(D.Frontier.size()),
                     std::memory_order_relaxed);
  DidResume = true;
  return true;
}

void ParallelSearch::maybeSpill(Worker &W) {
  const int64_t InMem = InMemNodes.load(std::memory_order_relaxed);
  if (InMem <= 0 || static_cast<uint64_t>(InMem) * NodeBytesEstimate <=
                        Opts.FrontierMemLimitBytes)
    return;
  // Spill the cold half of our own frontier — the *front*, the oldest
  // breadth, which our DFS will not revisit for the longest and which
  // thieves can live without.
  constexpr size_t MinResident = 16;
  std::vector<Node> Victims;
  {
    auto L = lockTimed(W.FrontierMu, W);
    if (W.Frontier.size() < 2 * MinResident)
      return;
    size_t Take = W.Frontier.size() / 2;
    Victims.reserve(Take);
    for (size_t I = 0; I != Take; ++I) {
      Victims.push_back(std::move(W.Frontier.front()));
      W.Frontier.pop_front();
    }
  }
  std::vector<ckpt::FrontierNode> Batch;
  Batch.reserve(Victims.size());
  for (const Node &N : Victims)
    Batch.push_back(toFrontierNode(N));
  std::string Why;
  if (Spill->spill(Batch, &Why)) {
    InMemNodes.fetch_sub(static_cast<int64_t>(Victims.size()),
                         std::memory_order_relaxed);
    return;
  }
  // Disk refused: put the victims back in their original order and
  // keep searching in memory.
  if (!WarnedSpillFailure.exchange(true))
    std::fprintf(stderr,
                 "warning: frontier spill failed (%s); continuing "
                 "in-memory\n",
                 Why.c_str());
  auto L = lockTimed(W.FrontierMu, W);
  for (size_t I = Victims.size(); I-- > 0;)
    W.Frontier.push_front(std::move(Victims[I]));
}

bool ParallelSearch::tryReloadSpill(Worker &W, Node &N) {
  std::vector<ckpt::FrontierNode> Seg;
  std::string Why;
  uint64_t Dropped = 0;
  if (!Spill->reload(Seg, &Why, &Dropped)) {
    if (Dropped) {
      // An unreadable segment is permanently lost work: account for it
      // so InFlight still drains and the run reports incompleteness
      // instead of hanging or over-claiming.
      if (!WarnedSpillFailure.exchange(true))
        std::fprintf(stderr,
                     "warning: dropped %llu spilled frontier nodes "
                     "(%s); results will be incomplete\n",
                     static_cast<unsigned long long>(Dropped),
                     Why.c_str());
      Exhausted.store(false, std::memory_order_relaxed);
      InFlight.fetch_sub(static_cast<int64_t>(Dropped),
                         std::memory_order_acq_rel);
    }
    return false;
  }
  if (Seg.empty())
    return false;
  // The youngest node of the segment comes back in hand; the rest
  // rejoin the in-memory frontier.
  Node Last = fromFrontierNode(W, std::move(Seg.back()));
  Seg.pop_back();
  if (!Seg.empty()) {
    std::vector<Node> Rest;
    Rest.reserve(Seg.size());
    for (ckpt::FrontierNode &FN : Seg)
      Rest.push_back(fromFrontierNode(W, std::move(FN)));
    auto L = lockTimed(W.FrontierMu, W);
    for (Node &B : Rest)
      W.Frontier.push_back(std::move(B));
  }
  InMemNodes.fetch_add(static_cast<int64_t>(Seg.size()),
                       std::memory_order_relaxed);
  N = std::move(Last);
  return true;
}

CheckResult ParallelSearch::run() {
  StartTime = std::chrono::steady_clock::now();
  resetPeakRss(); // PeakRssBytes reports this run, not process history.

  if (Opts.Metrics)
    DepthHist = &Opts.Metrics->histogram(
        "p_check_frontier_depth", obs::exponentialBounds(1, 2, 16),
        "Depth of nodes popped from the exploration frontier");

  if (Mode == VisitedMode::Compact) {
    // Split the byte cap between the node-dedup and distinct-state
    // tables; both are bounded for the life of the run.
    uint64_t Cap = Opts.VisitedCapBytes ? Opts.VisitedCapBytes
                                        : 64ull * 1024 * 1024;
    CompactDedup.init(Cap / 2);
    CompactSeen.init(Cap - Cap / 2);
    if (SleepOn)
      CompactDedup.initSleepMasks();
  }

  NumWorkers = resolveWorkers();
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I) {
    Workers.push_back(std::make_unique<Worker>(I, BaseExec));
    Worker *W = Workers.back().get();
    // Each worker records into its own sink (sinks are single-writer).
    // Always override the executor's sink: an external executor's
    // pointer must not be shared across worker threads.
    W->Trace = Opts.Trace ? &Opts.Trace->openSink() : nullptr;
    W->Exec.setTraceSink(W->Trace);
    W->Exec.setForeignFaultPoints(Opts.Faults.enabled() &&
                                  Opts.Faults.FailForeign);
    if (Opts.TrackCoverage) {
      W->Coverage.Machines.resize(Prog.Machines.size());
      W->Exec.addDispatchObserver([W](int32_t Type, int32_t State,
                                      int32_t Event, TransitionKind Kind) {
        auto &Cov = W->Coverage.Machines[Type];
        Cov.StatesVisited.insert(State);
        if (Kind != TransitionKind::None)
          Cov.TransitionsFired.insert({State, Event});
      });
    }
    if (ProfileOn) {
      W->Prof.init(Prog.Machines.size());
      // Hot-transition counting over the same (type, state, event) keys
      // the coverage observer uses; single-writer into this worker's map.
      W->Exec.addDispatchObserver([W](int32_t Type, int32_t State,
                                      int32_t Event, TransitionKind Kind) {
        if (Kind != TransitionKind::None)
          W->Prof.Transitions[{Type, State, Event}] += 1;
      });
    }
  }

  if (!Opts.CheckpointPath.empty() || Opts.Resume)
    Fingerprint = ckpt::searchFingerprint(Prog, Opts);

  if (Opts.FrontierMemLimitBytes > 0) {
    std::string SpillPath;
    if (!Opts.SpillDir.empty())
      SpillPath = Opts.SpillDir + "/p-frontier-" +
                  std::to_string(reinterpret_cast<uintptr_t>(this)) +
                  ".spill";
    else if (!Opts.CheckpointPath.empty())
      SpillPath = Opts.CheckpointPath + ".spill";
    else {
      const char *Tmp = std::getenv("TMPDIR");
      SpillPath = std::string(Tmp && *Tmp ? Tmp : "/tmp") + "/p-frontier-" +
                  std::to_string(reinterpret_cast<uintptr_t>(this)) +
                  ".spill";
    }
    auto Store = std::make_unique<FrontierStore>(std::move(SpillPath));
    if (Store->ok())
      Spill = std::move(Store);
    else
      std::fprintf(stderr,
                   "warning: cannot create frontier spill file %s; "
                   "running fully in-memory\n",
                   Store->path().c_str());
  }

  ActiveWorkers = NumWorkers; // Threads are not running yet.

  if (Opts.Resume) {
    std::string Why;
    bool Ok = false;
    if (Opts.CheckpointPath.empty()) {
      Why = "resume requested but no checkpoint path given";
    } else {
      ckpt::CheckpointData D;
      D.Fingerprint = Fingerprint; // What the file must match.
      Ok = ckpt::loadCheckpoint(Opts.CheckpointPath, D, Why) &&
           restoreCheckpoint(std::move(D), Why);
    }
    if (!Ok) {
      // Never fall back to a fresh search: silently restarting from
      // scratch is exactly the surprise a corrupt checkpoint should
      // not cause.
      CheckResult Failed;
      Failed.ResumeError = Why;
      Failed.Stats.WorkersUsed = static_cast<int>(NumWorkers);
      return Failed;
    }
  } else {
    Node Root;
    Root.Cfg = BaseExec.makeInitialConfig();
    Root.Cfg.MaxQueue = Opts.MaxQueue;
    Root.Cfg.Overflow = Opts.Overflow;
    Root.Sched.push_back(0);
    InFlight.store(1, std::memory_order_relaxed);
    Workers[0]->Frontier.push_back(std::move(Root));
    if (Spill)
      InMemNodes.store(1, std::memory_order_relaxed);
  }

  if (Spill) {
    // Size the spill trigger from a real node rather than a guess; the
    // slack term covers deque/trace bookkeeping the blob omits.
    for (const auto &WP : Workers)
      if (!WP->Frontier.empty()) {
        std::string Probe;
        ckpt::appendFrontierNode(toFrontierNode(WP->Frontier.front()),
                                 Probe);
        NodeBytesEstimate = std::max<uint64_t>(Probe.size() + 160, 256);
        break;
      }
  }

  if (NumWorkers == 1) {
    workerLoop(*Workers[0]);
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(NumWorkers - 1);
    for (unsigned I = 1; I != NumWorkers; ++I)
      Threads.emplace_back([this, I] { workerLoop(*Workers[I]); });
    workerLoop(*Workers[0]);
    for (std::thread &T : Threads)
      T.join();
  }

  // Work left in the frontier (interrupt, MaxNodes, error stop) means
  // the search is not exhausted *yet* — but unlike a depth cut it is
  // recoverable, so it must not poison the Exhausted flag that the
  // final checkpoint persists for the resumed run.
  const bool Pending = InFlight.load(std::memory_order_relaxed) != 0;

  // Final checkpoint: every way the search ends — completion,
  // interruption, MaxNodes, error stop — leaves the on-disk state
  // matching it. Resuming a completed checkpoint is a no-op that
  // reproduces the same final stats.
  if (!Opts.CheckpointPath.empty())
    performCheckpoint();

  CheckResult Result;
  CheckStats &Stats = Result.Stats;
  Stats.DistinctStates = DistinctStates.load(std::memory_order_relaxed);
  Stats.NodesExplored = NodesExplored.load(std::memory_order_relaxed);
  Stats.PrunedByIndependence =
      PrunedByIndependence.load(std::memory_order_relaxed);
  Stats.SymmetryCollapsed =
      SymmetryCollapsed.load(std::memory_order_relaxed);
  Stats.ErrorsFound = ErrorsFound.load(std::memory_order_relaxed);
  Stats.FaultsInjected = FaultsInjected.load(std::memory_order_relaxed);
  Stats.Exhausted = Exhausted.load(std::memory_order_relaxed) && !Pending;
  Stats.WorkersUsed = static_cast<int>(NumWorkers);
  Stats.Interrupted = Interrupted.load(std::memory_order_relaxed);
  Stats.Resumed = DidResume;
  Stats.CheckpointsWritten =
      CheckpointsWritten.load(std::memory_order_relaxed);
  Stats.LastCheckpointBytes =
      LastCheckpointBytes.load(std::memory_order_relaxed);
  Stats.FrontierSpilledNodes =
      PriorSpilledNodes + (Spill ? Spill->spilledNodes() : 0);
  Stats.FrontierSpillBytes =
      PriorSpillBytes + (Spill ? Spill->spilledBytes() : 0);
  for (const auto &W : Workers) {
    Stats.Slices += W->Slices.load(std::memory_order_relaxed);
    Stats.Terminals += W->Terminals.load(std::memory_order_relaxed);
    Stats.StealCount += W->StealCount.load(std::memory_order_relaxed);
    Stats.ContentionNs += W->ContentionNs.load(std::memory_order_relaxed);
    Stats.MaxDepth = std::max(
        Stats.MaxDepth, W->MaxDepth.load(std::memory_order_relaxed));
    Result.TerminalHashes.insert(Result.TerminalHashes.end(),
                                 W->TerminalHashes.begin(),
                                 W->TerminalHashes.end());
  }
  // Worker-count-independent order for the (set-valued) terminal list.
  std::sort(Result.TerminalHashes.begin(), Result.TerminalHashes.end());
  Stats.VisitedBytes = visitedBytes();
  Stats.OmissionPossible = Omission.load(std::memory_order_relaxed);
  Stats.HashMismatches = HashMismatches.load(std::memory_order_relaxed);
  Stats.PeakRssBytes = peakRssBytes();

  if (ProfileOn) {
    // Deterministic merge: worker-index order, plain sums. Totals of
    // deterministic stats (states) merge deterministically; node-side
    // splits inherit the scheduling races CheckStats documents.
    Result.Profile.init(Prog.Machines.size());
    for (const auto &W : Workers)
      Result.Profile.merge(W->Prof);
  }

  if (Opts.TrackCoverage) {
    Result.Coverage.Machines.resize(Prog.Machines.size());
    for (const auto &W : Workers)
      for (size_t M = 0; M != W->Coverage.Machines.size(); ++M) {
        auto &Into = Result.Coverage.Machines[M];
        const auto &From = W->Coverage.Machines[M];
        Into.StatesVisited.insert(From.StatesVisited.begin(),
                                  From.StatesVisited.end());
        Into.TransitionsFired.insert(From.TransitionsFired.begin(),
                                     From.TransitionsFired.end());
      }
  }

  if (Best.Found) {
    Result.ErrorFound = true;
    Result.Error = Best.Kind;
    Result.ErrorMessage = Best.Message;
    Result.Schedule = Best.Schedule;
    Result.DelaysUsedOnError = Best.DelaysUsed;
    Result.FaultsUsedOnError = Best.FaultsUsed;
    Result.Trace = renderTrace(Best.Schedule);
  }

  Stats.Seconds = PriorSeconds +
                  std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - StartTime)
                      .count();

  if (Opts.Metrics) {
    obs::MetricsRegistry &M = *Opts.Metrics;
    M.counter("p_check_nodes_total", "Search nodes expanded")
        .inc(Stats.NodesExplored);
    M.counter("p_check_states_total", "Distinct global configurations")
        .inc(Stats.DistinctStates);
    M.counter("p_check_slices_total", "Run-to-scheduling-point slices")
        .inc(Stats.Slices);
    M.counter("p_check_terminals_total", "Distinct quiescent configurations")
        .inc(Stats.Terminals);
    M.counter("p_check_errors_total", "Error transitions found")
        .inc(Stats.ErrorsFound);
    M.counter("p_check_steals_total", "Successful work-stealing operations")
        .inc(Stats.StealCount);
    M.counter("p_check_contention_ns_total",
              "Time blocked on shared-state locks (ns)")
        .inc(Stats.ContentionNs);
    M.gauge("p_check_visited_bytes", "Visited-table footprint of the run")
        .set(static_cast<double>(Stats.VisitedBytes));
    M.gauge("p_check_peak_rss_bytes",
            "Process peak resident set size after the run")
        .set(static_cast<double>(Stats.PeakRssBytes));
    M.gauge("p_check_omission_possible",
            "1 when the bounded visited set saturated (Compact mode)")
        .set(Stats.OmissionPossible ? 1 : 0);
    M.gauge("p_check_workers", "Resolved worker count of the run")
        .set(Stats.WorkersUsed);
    M.gauge("p_check_max_depth", "Deepest explored path")
        .set(Stats.MaxDepth);
    M.gauge("p_check_nodes_per_sec", "Exploration throughput of the run")
        .set(Stats.Seconds > 0 ? Stats.NodesExplored / Stats.Seconds : 0);
    M.counter("p_check_fault_injections_total",
              "Fault transitions explored (bounded-fault search)")
        .inc(Stats.FaultsInjected);
    M.gauge("p_check_fault_budget", "Fault budget of the run")
        .set(Opts.Faults.Budget);
    M.counter("p_check_pruned_independence_total",
              "Run branches pruned by sleep-set independence")
        .inc(Stats.PrunedByIndependence);
    M.counter("p_check_symmetry_collapsed_total",
              "Nodes collapsed onto a symmetric representative")
        .inc(Stats.SymmetryCollapsed);
    M.counter("p_check_checkpoints_total",
              "Checkpoints written across the logical run")
        .inc(Stats.CheckpointsWritten);
    M.gauge("p_check_checkpoint_bytes",
            "Size of the most recently written checkpoint")
        .set(static_cast<double>(Stats.LastCheckpointBytes));
    M.gauge("p_check_interrupted",
            "1 when the run stopped on an interrupt request")
        .set(Stats.Interrupted ? 1 : 0);
    M.gauge("p_check_resumed", "1 when the run resumed from a checkpoint")
        .set(Stats.Resumed ? 1 : 0);
    M.counter("p_check_frontier_spilled_nodes_total",
              "Frontier nodes spilled to disk across the logical run")
        .inc(Stats.FrontierSpilledNodes);
    M.counter("p_check_frontier_spill_bytes_total",
              "Bytes of frontier segments written to disk")
        .inc(Stats.FrontierSpillBytes);
  }

  return Result;
}

} // namespace

CheckResult p::runParallelSearch(const CompiledProgram &Prog,
                                 const CheckOptions &Opts, Executor *Exec) {
  ParallelSearch S(Prog, Opts, Exec);
  return S.run();
}
