//===- checker/StateHash.cpp -------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/StateHash.h"

#include "support/Hashing.h"

using namespace p;

namespace {

/// Little-endian append helpers over a std::string buffer. When a
/// permutation is attached (the symmetry reduction's π), machine-typed
/// values are renamed through it as they are written; without one the
/// bytes are exactly the canonical serialization.
class ByteSink {
public:
  explicit ByteSink(std::string &Out) : Out(Out) {}
  ByteSink(std::string &Out, const std::vector<int32_t> *Perm)
      : Out(Out), Perm(Perm) {}

  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void value(const Value &V) {
    u8(static_cast<uint8_t>(V.Kind));
    int64_t D = V.Data;
    if (Perm && V.Kind == ValueKind::Machine && D >= 0 &&
        D < static_cast<int64_t>(Perm->size()))
      D = (*Perm)[static_cast<size_t>(D)];
    u64(static_cast<uint64_t>(D));
  }

private:
  std::string &Out;
  const std::vector<int32_t> *Perm = nullptr;
};

void serializeExecFrame(ByteSink &Sink, const ExecFrame &F) {
  Sink.i32(F.Body);
  Sink.i32(F.PC);
  Sink.u8(static_cast<uint8_t>(F.Kind));
  Sink.u32(static_cast<uint32_t>(F.Operands.size()));
  for (const Value &V : F.Operands)
    Sink.value(V);
  Sink.u32(static_cast<uint32_t>(F.Params.size()));
  for (const Value &V : F.Params)
    Sink.value(V);
  Sink.value(F.Result);
}

void serializeStateFrame(ByteSink &Sink, const StateFrame &F) {
  Sink.i32(F.State);
  Sink.u32(static_cast<uint32_t>(F.Inherit.size()));
  for (int32_t H : F.Inherit)
    Sink.i32(H);
  Sink.u32(static_cast<uint32_t>(F.SavedCont.size()));
  for (const ExecFrame &E : F.SavedCont)
    serializeExecFrame(Sink, E);
}

/// Seed for the config-level combination; any fixed odd constant works,
/// but it must never change once state counts are recorded.
constexpr uint64_t ConfigHashSeed = 0x50434647u; // "PCFG"

void serializeMachineImpl(ByteSink &Sink, const MachineState &M) {
  Sink.i32(M.MachineIndex);
  // 0 = deleted, 1 = alive, 2 = crashed (a fault, restartable): a
  // crashed machine must not merge with a deleted one, but without
  // fault exploration the byte is 0/1 exactly as before.
  Sink.u8(M.Alive ? 1 : (M.Crashed ? 2 : 0));
  if (!M.Alive)
    return;
  Sink.u32(static_cast<uint32_t>(M.Frames.size()));
  for (const StateFrame &F : M.Frames)
    serializeStateFrame(Sink, F);
  Sink.u32(static_cast<uint32_t>(M.Exec.size()));
  for (const ExecFrame &F : M.Exec)
    serializeExecFrame(Sink, F);
  Sink.u32(static_cast<uint32_t>(M.Vars.size()));
  for (const Value &V : M.Vars)
    Sink.value(V);
  Sink.value(M.Msg);
  Sink.value(M.Arg);
  Sink.u8(M.HasRaise ? 1 : 0);
  Sink.i32(M.RaiseEvent);
  Sink.value(M.RaiseArg);
  Sink.u8(static_cast<uint8_t>(M.Transfer));
  Sink.i32(M.TransferTarget);
  Sink.u32(static_cast<uint32_t>(M.Queue.size()));
  for (const auto &[E, V] : M.Queue) {
    Sink.i32(E);
    Sink.value(V);
  }
  // Packs both checker resumption registers into one byte; without
  // fault exploration InjectedForeignFail is always unset, so the
  // byte equals the pre-fault encoding of InjectedChoice alone.
  Sink.u8(static_cast<uint8_t>(
      (M.InjectedChoice ? (*M.InjectedChoice ? 2 : 1) : 0) +
      3 * (M.InjectedForeignFail ? (*M.InjectedForeignFail ? 2 : 1)
                                 : 0)));
}

} // namespace

void p::serializeMachine(const MachineState &M, std::string &Out) {
  ByteSink Sink(Out);
  serializeMachineImpl(Sink, M);
}

void p::serializeMachineMapped(const MachineState &M,
                               const std::vector<int32_t> &Perm,
                               std::string &Out) {
  ByteSink Sink(Out, &Perm);
  serializeMachineImpl(Sink, M);
}

void p::serializeConfig(const Config &Cfg, std::string &Out) {
  ByteSink Sink(Out);
  Sink.u8(static_cast<uint8_t>(Cfg.Error));
  Sink.u32(static_cast<uint32_t>(Cfg.Machines.size()));
  for (const CowMachine &M : Cfg.Machines)
    serializeMachine(*M, Out);
}

void p::serializeConfigPermuted(const Config &Cfg,
                                const std::vector<int32_t> &Perm,
                                const std::vector<int32_t> &InvPerm,
                                std::string &Out) {
  ByteSink Sink(Out, &Perm);
  Sink.u8(static_cast<uint8_t>(Cfg.Error));
  Sink.u32(static_cast<uint32_t>(Cfg.Machines.size()));
  // Slot k of π·Cfg holds the (value-renamed) state of machine π⁻¹(k).
  for (size_t K = 0; K != Cfg.Machines.size(); ++K)
    serializeMachineImpl(Sink, *Cfg.Machines[InvPerm[K]]);
}

uint64_t p::machineFingerprintFresh(const MachineState &M,
                                    std::string &Scratch) {
  Scratch.clear();
  serializeMachine(M, Scratch);
  uint64_t F = hashBytes(Scratch.data(), Scratch.size());
  // 0 is the cache's "not computed" sentinel; remap so a valid
  // fingerprint is never mistaken for it.
  return F ? F : 0x9e3779b97f4a7c15ULL;
}

uint64_t p::machineFingerprint(const CowMachine &M, std::string &Scratch) {
  if (uint64_t F = M.cachedFingerprint())
    return F;
  uint64_t F = machineFingerprintFresh(*M, Scratch);
  M.cacheFingerprint(F);
  return F;
}

namespace {

template <typename PerMachineFp>
uint64_t combineConfigHash(const Config &Cfg, PerMachineFp Fp) {
  uint64_t H = hashCombine(ConfigHashSeed,
                           static_cast<uint64_t>(Cfg.Error));
  H = hashCombine(H, static_cast<uint64_t>(Cfg.Machines.size()));
  for (const CowMachine &M : Cfg.Machines)
    H = hashCombine(H, Fp(M));
  return H;
}

} // namespace

uint64_t p::hashConfig(const Config &Cfg, std::string &Scratch) {
  return combineConfigHash(Cfg, [&](const CowMachine &M) {
    return machineFingerprint(M, Scratch);
  });
}

uint64_t p::hashConfig(const Config &Cfg) {
  std::string Scratch;
  Scratch.reserve(256);
  return hashConfig(Cfg, Scratch);
}

uint64_t p::hashConfigFresh(const Config &Cfg, std::string &Scratch) {
  return combineConfigHash(Cfg, [&](const CowMachine &M) {
    return machineFingerprintFresh(*M, Scratch);
  });
}

//===----------------------------------------------------------------------===//
// Symmetry support
//===----------------------------------------------------------------------===//

namespace {

void noteRef(uint64_t &Mask, const Value &V) {
  if (V.Kind != ValueKind::Machine)
    return;
  if (V.Data >= 0 && V.Data < 62)
    Mask |= 1ull << V.Data;
  else
    Mask |= RefsOverflowBit;
}

void noteRefs(uint64_t &Mask, const ExecFrame &F) {
  for (const Value &V : F.Operands)
    noteRef(Mask, V);
  for (const Value &V : F.Params)
    noteRef(Mask, V);
  noteRef(Mask, F.Result);
}

} // namespace

uint64_t p::machineRefsMaskFresh(const MachineState &M) {
  // Mirrors serializeMachine: the mask covers exactly the ids that can
  // appear in the serialized bytes (a dead machine serializes as a
  // header only, so it references nothing).
  uint64_t Mask = RefsComputedBit;
  if (!M.Alive)
    return Mask;
  for (const StateFrame &F : M.Frames)
    for (const ExecFrame &E : F.SavedCont)
      noteRefs(Mask, E);
  for (const ExecFrame &F : M.Exec)
    noteRefs(Mask, F);
  for (const Value &V : M.Vars)
    noteRef(Mask, V);
  noteRef(Mask, M.Msg);
  noteRef(Mask, M.Arg);
  noteRef(Mask, M.RaiseArg);
  for (const auto &[E, V] : M.Queue)
    noteRef(Mask, V);
  return Mask;
}

uint64_t p::machineRefsMask(const CowMachine &M) {
  if (uint64_t R = M.cachedRefsMask())
    return R;
  uint64_t R = machineRefsMaskFresh(*M);
  M.cacheRefsMask(R);
  return R;
}

uint64_t p::hashConfigPermuted(const Config &Cfg,
                               const std::vector<int32_t> &Perm,
                               const std::vector<int32_t> &InvPerm,
                               uint64_t Support, std::string &Scratch) {
  uint64_t H = hashCombine(ConfigHashSeed,
                           static_cast<uint64_t>(Cfg.Error));
  H = hashCombine(H, static_cast<uint64_t>(Cfg.Machines.size()));
  for (size_t K = 0; K != Cfg.Machines.size(); ++K) {
    const CowMachine &M = Cfg.Machines[InvPerm[K]];
    uint64_t F;
    if ((machineRefsMask(M) & Support) == 0) {
      // No renamed id appears in the bytes (the slot move is encoded by
      // the combination order, not the bytes) — reuse the cache.
      F = machineFingerprint(M, Scratch);
    } else {
      Scratch.clear();
      serializeMachineMapped(*M, Perm, Scratch);
      uint64_t Raw = hashBytes(Scratch.data(), Scratch.size());
      F = Raw ? Raw : 0x9e3779b97f4a7c15ULL;
    }
    H = hashCombine(H, F);
  }
  return H;
}
