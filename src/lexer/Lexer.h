//===- lexer/Lexer.h - Tokenizer for the P language ------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer. Supports `//` line comments and `/* */` block
/// comments. Produces an Error token (with a message in Text) for
/// unrecognized characters; the parser reports it through the
/// DiagnosticEngine.
///
//===----------------------------------------------------------------------===//

#ifndef P_LEXER_LEXER_H
#define P_LEXER_LEXER_H

#include "lexer/Token.h"

#include <string>
#include <vector>

namespace p {

/// Tokenizes one P source buffer.
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Lexes and returns the next token (Eof at end of input, repeatedly).
  Token next();

  /// Lexes the whole buffer; the last element is always Eof.
  std::vector<Token> lexAll();

private:
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  void skipTrivia();
  SourceLoc loc() const { return SourceLoc(Line, Col); }

  Token makeToken(TokenKind Kind);
  Token lexIdentifierOrKeyword();
  Token lexNumber();

  std::string Source;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace p

#endif // P_LEXER_LEXER_H
