//===- lexer/Lexer.cpp ------------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace p;

const char *p::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwEvent:
    return "'event'";
  case TokenKind::KwMachine:
    return "'machine'";
  case TokenKind::KwGhost:
    return "'ghost'";
  case TokenKind::KwMain:
    return "'main'";
  case TokenKind::KwSymmetric:
    return "'symmetric'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwState:
    return "'state'";
  case TokenKind::KwAction:
    return "'action'";
  case TokenKind::KwEntry:
    return "'entry'";
  case TokenKind::KwExit:
    return "'exit'";
  case TokenKind::KwDefer:
    return "'defer'";
  case TokenKind::KwPostpone:
    return "'postpone'";
  case TokenKind::KwOn:
    return "'on'";
  case TokenKind::KwGoto:
    return "'goto'";
  case TokenKind::KwPush:
    return "'push'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwDelete:
    return "'delete'";
  case TokenKind::KwSend:
    return "'send'";
  case TokenKind::KwRaise:
    return "'raise'";
  case TokenKind::KwLeave:
    return "'leave'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwAssert:
    return "'assert'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwCall:
    return "'call'";
  case TokenKind::KwSkip:
    return "'skip'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwThis:
    return "'this'";
  case TokenKind::KwMsg:
    return "'msg'";
  case TokenKind::KwArg:
    return "'arg'";
  case TokenKind::KwForeign:
    return "'foreign'";
  case TokenKind::KwFun:
    return "'fun'";
  case TokenKind::KwModel:
    return "'model'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwId:
    return "'id'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Not:
    return "'!'";
  case TokenKind::AndAnd:
    return "'&&'";
  case TokenKind::OrOr:
    return "'||'";
  case TokenKind::Error:
    return "lexical error";
  }
  return "<token>";
}

static const std::unordered_map<std::string, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string, TokenKind> Table = {
      {"event", TokenKind::KwEvent},     {"machine", TokenKind::KwMachine},
      {"ghost", TokenKind::KwGhost},     {"main", TokenKind::KwMain},
      {"symmetric", TokenKind::KwSymmetric},
      {"var", TokenKind::KwVar},         {"state", TokenKind::KwState},
      {"action", TokenKind::KwAction},   {"entry", TokenKind::KwEntry},
      {"exit", TokenKind::KwExit},       {"defer", TokenKind::KwDefer},
      {"postpone", TokenKind::KwPostpone}, {"on", TokenKind::KwOn},
      {"goto", TokenKind::KwGoto},       {"push", TokenKind::KwPush},
      {"do", TokenKind::KwDo},           {"new", TokenKind::KwNew},
      {"delete", TokenKind::KwDelete},   {"send", TokenKind::KwSend},
      {"raise", TokenKind::KwRaise},     {"leave", TokenKind::KwLeave},
      {"return", TokenKind::KwReturn},   {"assert", TokenKind::KwAssert},
      {"if", TokenKind::KwIf},           {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},     {"call", TokenKind::KwCall},
      {"skip", TokenKind::KwSkip},       {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},     {"null", TokenKind::KwNull},
      {"this", TokenKind::KwThis},       {"msg", TokenKind::KwMsg},
      {"arg", TokenKind::KwArg},         {"foreign", TokenKind::KwForeign},
      {"fun", TokenKind::KwFun},         {"model", TokenKind::KwModel},
      {"void", TokenKind::KwVoid},       {"bool", TokenKind::KwBool},
      {"int", TokenKind::KwInt},         {"id", TokenKind::KwId},
  };
  return Table;
}

Lexer::Lexer(std::string Source) : Source(std::move(Source)) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (!atEnd()) {
        advance();
        advance();
      }
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(TokenKind Kind) {
  Token T;
  T.Kind = Kind;
  T.Loc = loc();
  return T;
}

Token Lexer::lexIdentifierOrKeyword() {
  Token T = makeToken(TokenKind::Identifier);
  std::string Text;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    Text += advance();
  const auto &Table = keywordTable();
  auto It = Table.find(Text);
  if (It != Table.end()) {
    T.Kind = It->second;
    return T;
  }
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexNumber() {
  Token T = makeToken(TokenKind::IntLiteral);
  int64_t Value = 0;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
    Value = Value * 10 + (advance() - '0');
  T.IntValue = Value;
  return T;
}

Token Lexer::next() {
  skipTrivia();
  if (atEnd())
    return makeToken(TokenKind::Eof);

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();

  Token T = makeToken(TokenKind::Error);
  advance();
  switch (C) {
  case '{':
    T.Kind = TokenKind::LBrace;
    break;
  case '}':
    T.Kind = TokenKind::RBrace;
    break;
  case '(':
    T.Kind = TokenKind::LParen;
    break;
  case ')':
    T.Kind = TokenKind::RParen;
    break;
  case ',':
    T.Kind = TokenKind::Comma;
    break;
  case ';':
    T.Kind = TokenKind::Semi;
    break;
  case ':':
    T.Kind = TokenKind::Colon;
    break;
  case '+':
    T.Kind = TokenKind::Plus;
    break;
  case '-':
    T.Kind = TokenKind::Minus;
    break;
  case '*':
    T.Kind = TokenKind::Star;
    break;
  case '/':
    T.Kind = TokenKind::Slash;
    break;
  case '=':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::EqEq;
    } else {
      T.Kind = TokenKind::Assign;
    }
    break;
  case '!':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::NotEq;
    } else {
      T.Kind = TokenKind::Not;
    }
    break;
  case '<':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::LessEq;
    } else {
      T.Kind = TokenKind::Less;
    }
    break;
  case '>':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::GreaterEq;
    } else {
      T.Kind = TokenKind::Greater;
    }
    break;
  case '&':
    if (peek() == '&') {
      advance();
      T.Kind = TokenKind::AndAnd;
    } else {
      T.Text = "stray '&'; did you mean '&&'?";
    }
    break;
  case '|':
    if (peek() == '|') {
      advance();
      T.Kind = TokenKind::OrOr;
    } else {
      T.Text = "stray '|'; did you mean '||'?";
    }
    break;
  default:
    T.Text = std::string("unexpected character '") + C + "'";
    break;
  }
  return T;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::Eof))
      return Tokens;
  }
}
