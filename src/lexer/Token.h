//===- lexer/Token.h - Token definitions for the P language ---------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the lexer. `*` is a single TokenKind (Star);
/// the parser decides from context whether it is the nondeterministic
/// choice expression or the multiplication operator.
///
//===----------------------------------------------------------------------===//

#ifndef P_LEXER_TOKEN_H
#define P_LEXER_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace p {

/// All token kinds of the surface language.
enum class TokenKind {
  Eof,
  Identifier,
  IntLiteral,

  // Keywords.
  KwEvent,
  KwMachine,
  KwGhost,
  KwMain,
  KwSymmetric,
  KwVar,
  KwState,
  KwAction,
  KwEntry,
  KwExit,
  KwDefer,
  KwPostpone,
  KwOn,
  KwGoto,
  KwPush,
  KwDo,
  KwNew,
  KwDelete,
  KwSend,
  KwRaise,
  KwLeave,
  KwReturn,
  KwAssert,
  KwIf,
  KwElse,
  KwWhile,
  KwCall,
  KwSkip,
  KwTrue,
  KwFalse,
  KwNull,
  KwThis,
  KwMsg,
  KwArg,
  KwForeign,
  KwFun,
  KwModel,
  KwVoid,
  KwBool,
  KwInt,
  KwId,

  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  Comma,
  Semi,
  Colon,
  Assign,    // =
  EqEq,      // ==
  NotEq,     // !=
  Less,      // <
  LessEq,    // <=
  Greater,   // >
  GreaterEq, // >=
  Plus,      // +
  Minus,     // -
  Star,      // * (mul or nondet, by context)
  Slash,     // /
  Not,       // !
  AndAnd,    // &&
  OrOr,      // ||

  Error, ///< Lexical error; Text holds the message.
};

/// Returns a human-readable name for \p Kind (used in parse errors).
const char *tokenKindName(TokenKind Kind);

/// One lexed token.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;    ///< Identifier spelling or error message.
  int64_t IntValue = 0; ///< Valid when Kind == IntLiteral.
  SourceLoc Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace p

#endif // P_LEXER_TOKEN_H
