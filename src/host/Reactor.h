//===- host/Reactor.h - Thread-pool reactor pump for the host --------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-threaded event pump behind Host::startReactor. N worker
/// threads run ready machines; every machine has a lock-free MPSC
/// mailbox (host/Mailbox.h) for its ingress and an ownership word that
/// guarantees at most one worker executes a machine's handlers at a
/// time — the paper's per-machine run-to-completion discipline, scaled
/// out.
///
/// ## Ownership-by-worker invariant
///
/// Each machine slot carries a four-state word:
///
///   Idle ──notify──> Queued ──worker──> Running ──> Idle
///                                          │  ▲
///                                 notify   ▼  │ worker re-runs
///                                     RunningPending
///
/// Producers (host threads, workers forwarding sends, the timer
/// thread) push into the mailbox first and then call notify(), which
/// CASes Idle→Queued (scheduling the machine) or Running→
/// RunningPending (the owner re-runs before releasing). A worker
/// releases ownership with a Running→Idle CAS that fails if a
/// notification arrived after its last empty-mailbox check, so wakeups
/// cannot be lost. Only the owning worker touches the machine's
/// semantic state (MachineState), its pending-latency list, and its
/// credit bookkeeping; everything shared is atomic or behind a mutex.
///
/// Cross-machine sends executed inside a handler are rerouted by an
/// Executor send hook into the target's mailbox before the executor
/// can read the target's state, so workers never dereference machines
/// they do not own. ⊎ dedup and MaxQueue overflow policies are applied
/// owner-side when the mailbox transfers into the semantic queue — the
/// queue itself remains exactly the semantics' FIFO.
///
/// OverflowPolicy::Block remains a host-boundary-only wait: producers
/// acquire per-machine credits (mailbox + semantic-queue occupancy
/// ≤ MaxQueue) before pushing, and the owner releases credits when
/// credited events are deduped, shed, or dequeued. Timer deliveries
/// bypass credits (the tick thread must never block).
///
/// Quiescence: an Active counter tracks machines in Queued/Running;
/// waitQuiesce() returns when it reaches zero, which is when every
/// event accepted by a returned addEvent call has been fully processed
/// (or the config errored — fail-stop drains the schedule).
///
//===----------------------------------------------------------------------===//

#ifndef P_HOST_REACTOR_H
#define P_HOST_REACTOR_H

#include "host/Mailbox.h"
#include "host/TimerWheel.h"
#include "obs/Metrics.h"
#include "runtime/Executor.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace p {

struct ReactorOptions {
  /// Worker threads; 0 = hardware_concurrency (min 1).
  int Workers = 0;
  /// Ring slots per machine mailbox (rounded up to a power of two);
  /// overflow spills to a mutex-guarded side list, preserving order.
  size_t MailboxCapacity = 1024;
  /// Pre-reserved machine-table capacity. The table cannot grow while
  /// workers read it lock-free, so `new` past this bound fail-stops
  /// with ErrorKind::ResourceExhausted.
  size_t MaxMachines = size_t(1) << 16;
  /// Cap on the per-machine latency matcher FIFO (overflow counted in
  /// latencyDropped / p_host_latency_dropped_total).
  size_t LatencyPendingCap = 4096;
  /// Mailbox entries transferred into the semantic queue per pump
  /// iteration (the batch-dequeue knob).
  size_t TransferBatch = 256;
  /// Run-to-completion slices per ownership before the machine is
  /// requeued for fairness.
  size_t SliceBatch = 1024;
};

class Reactor {
public:
  /// Lifecycle of a machine id as the lock-free readers see it.
  enum class Life : uint8_t {
    Empty = 0,  ///< Id not yet published.
    Live = 1,
    Dead = 2,   ///< Deleted itself (`delete`); sends are program errors.
    Crashed = 3 ///< Fail-stopped; sends vanish, restart possible.
  };

  Reactor(Executor &Exec, Config &Cfg, TimerWheel &Wheel,
          obs::Histogram &Latency, ReactorOptions Opt);
  ~Reactor();

  /// Installs the executor hooks, publishes the existing machines, and
  /// launches the worker pool + timer thread. Call with no other
  /// threads driving the host.
  void start();
  /// Stops all threads and folds leftover mailbox contents back into
  /// the semantic queues so serial mode can resume. Idempotent.
  void stop();
  bool running() const { return Started && !Stopped; }

  int32_t machineCount() const {
    return static_cast<int32_t>(NMachines.load(std::memory_order_acquire));
  }
  Life life(int32_t Id) const {
    if (Id < 0 || Id >= machineCount())
      return Life::Empty;
    return Slots[Id]->LifeState.load(std::memory_order_acquire);
  }

  /// Host-boundary delivery: waits for a Block credit when the policy
  /// demands it, pushes to the target's mailbox, schedules the target.
  /// \p T is the producer-side timestamp for the latency histogram.
  /// Always returns having accepted the event (crashed targets swallow
  /// it downstream, matching serial addEvent).
  void postEvent(int32_t Target, int32_t Event, const Value &Arg,
                 std::chrono::steady_clock::time_point T);

  /// Asynchronous fail-stop: enqueues a crash control message; the
  /// owning worker kills the machine, cancels its timers, drains its
  /// mailbox, and releases blocked producers.
  void postCrash(int32_t Target);

  /// Restarts a crashed machine (acquires exclusive ownership from the
  /// calling thread, then schedules the entry statement).
  bool restartMachine(int32_t Id,
                      const std::vector<std::pair<int32_t, Value>> &Inits);

  /// Schedules machine \p Id if it is idle (mailbox-push-then-notify
  /// protocol; see file comment).
  void notify(int32_t Id);

  /// Wakes the timer thread after TimerWheel::schedule.
  void timerArmed() { TimerCv.notify_all(); }

  /// Advances the wheel to now and delivers expired entries to their
  /// mailboxes (also the tick thread's body).
  void flushDueTimers();

  /// Blocks until no machine is queued or running.
  void waitQuiesce();

  /// Dequeue-observer body, called by the owning worker via the host:
  /// releases a Block credit and closes the oldest matching latency
  /// sample.
  void onDequeue(int32_t Machine, int32_t Event);

  // Counters folded into HostStats by the host.
  uint64_t slicesRun() const {
    return SlicesRunA.load(std::memory_order_relaxed);
  }
  uint64_t latencyDropped() const {
    return LatencyDroppedA.load(std::memory_order_relaxed);
  }
  uint64_t timersExpired() const {
    return TimersExpiredA.load(std::memory_order_relaxed);
  }
  uint64_t mailboxSpills() const;
  uint64_t queueHighWaterMax() const;
  uint32_t queueHighWater(int32_t Id) const {
    if (Id < 0 || Id >= machineCount())
      return 0;
    return Slots[Id]->HighWater.load(std::memory_order_relaxed);
  }
  int workers() const { return NWorkers; }

private:
  enum RunState : uint32_t {
    IdleState = 0,
    QueuedState = 1,
    RunningState = 2,
    RunningPendingState = 3,
  };

  /// Crash control message event id (never a real event: real ids >= 0).
  static constexpr int32_t ControlCrash = -2;

  struct PendingLatency {
    int32_t Event;
    std::chrono::steady_clock::time_point T;
  };

  struct Slot {
    explicit Slot(size_t MailboxCap) : Box(MailboxCap) {}
    Mailbox Box;
    std::atomic<uint32_t> State{IdleState};
    std::atomic<Life> LifeState{Life::Empty};
    /// OverflowPolicy::Block credits currently held by events in the
    /// mailbox or the semantic queue.
    std::atomic<uint32_t> InFlight{0};
    std::atomic<uint32_t> HighWater{0};

    // ---- owner-only state (guarded by the ownership invariant) ----
    uint32_t CreditedInQueue = 0; ///< Credits owed at dequeue time.
    bool HasHeld = false;         ///< Transfer stalled on a full queue.
    MailboxEntry Held;
    std::vector<PendingLatency> PendingLat;
  };

  void installSlot(int32_t Id, Life L);
  void readyPush(int32_t Id);
  int32_t readyPop(); ///< Blocks; -1 on shutdown.
  void workerMain();
  void timerMain();
  void runMachine(int32_t Id, Slot &S);
  /// Moves up to TransferBatch mailbox entries into the semantic queue
  /// (⊎ dedup + overflow policy applied here). Owner only.
  void transferMailbox(int32_t Id, Slot &S);
  /// Enqueues one popped entry; returns false when the entry must be
  /// held (Block policy, full queue). Owner only.
  bool placeEntry(int32_t Id, Slot &S, MailboxEntry &E);
  void doCrash(int32_t Id, Slot &S);
  /// isEnabled without the Config::Machines bounds check (the vector's
  /// size field races with concurrent `new`; the owner already knows
  /// Id is published). Owner only.
  bool ownerEnabled(int32_t Id, Slot &S) const;
  void releaseCredit(Slot &S, const MailboxEntry &E);
  void creditNotify();
  void quiesceNotifyIfIdle();
  /// Self-send path of the send hook: the owner enqueues into its own
  /// semantic queue with serial-mode dedup/overflow semantics.
  void enqueueOwn(int32_t Id, int32_t Event, const Value &Arg);

  Executor &Exec;
  Config &Cfg;
  TimerWheel &Wheel;
  obs::Histogram &Latency;
  const ReactorOptions Opt;
  int NWorkers = 1;

  std::vector<std::unique_ptr<Slot>> Slots; ///< Pre-sized to MaxMachines.
  std::atomic<size_t> NMachines{0};

  std::mutex ReadyMu;
  std::condition_variable ReadyCv;
  std::deque<int32_t> Ready;

  std::atomic<uint64_t> Active{0}; ///< Machines queued or running.
  std::mutex QuiesceMu;
  std::condition_variable QuiesceCv;

  std::mutex CreditsMu;
  std::condition_variable CreditsCv;

  std::mutex ErrorMu;      ///< Installed on the executor.
  std::mutex StructuralMu; ///< Installed on the executor.

  std::mutex TimerMu; ///< Tick thread sleep/wake.
  std::condition_variable TimerCv;
  std::mutex TimerFlushMu; ///< Serializes expiry delivery batches.

  std::vector<std::thread> Workers;
  std::thread TimerThread;
  std::atomic<bool> Shutdown{false};
  bool Started = false;
  bool Stopped = false;

  std::atomic<uint64_t> SlicesRunA{0};
  std::atomic<uint64_t> LatencyDroppedA{0};
  std::atomic<uint64_t> TimersExpiredA{0};
};

} // namespace p

#endif // P_HOST_REACTOR_H
