//===- host/Reactor.cpp - Thread-pool reactor pump for the host ------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "host/Reactor.h"

#include <algorithm>
#include <chrono>

namespace p {

Reactor::Reactor(Executor &Exec, Config &Cfg, TimerWheel &Wheel,
                 obs::Histogram &Latency, ReactorOptions Opt)
    : Exec(Exec), Cfg(Cfg), Wheel(Wheel), Latency(Latency), Opt(Opt) {}

Reactor::~Reactor() { stop(); }

//===----------------------------------------------------------------------===//
// Slot setup and the ready deque
//===----------------------------------------------------------------------===//

void Reactor::installSlot(int32_t Id, Life L) {
  Slots[Id] = std::make_unique<Slot>(Opt.MailboxCapacity);
  Slots[Id]->LifeState.store(L, std::memory_order_release);
  // Publish the id after the slot is fully built: readers bounds-check
  // against machineCount(), so the acquire load pairs with this store.
  size_t Count = static_cast<size_t>(Id) + 1;
  size_t Cur = NMachines.load(std::memory_order_relaxed);
  while (Cur < Count &&
         !NMachines.compare_exchange_weak(Cur, Count,
                                          std::memory_order_release))
    ;
}

void Reactor::readyPush(int32_t Id) {
  {
    std::lock_guard<std::mutex> Lk(ReadyMu);
    Ready.push_back(Id);
  }
  ReadyCv.notify_one();
}

int32_t Reactor::readyPop() {
  std::unique_lock<std::mutex> Lk(ReadyMu);
  ReadyCv.wait(Lk, [&] {
    return Shutdown.load(std::memory_order_relaxed) || !Ready.empty();
  });
  if (Shutdown.load(std::memory_order_relaxed))
    return -1;
  int32_t Id = Ready.front();
  Ready.pop_front();
  return Id;
}

//===----------------------------------------------------------------------===//
// Notify protocol (see Reactor.h file comment)
//===----------------------------------------------------------------------===//

void Reactor::notify(int32_t Id) {
  if (Id < 0 || Id >= machineCount())
    return;
  Slot &S = *Slots[Id];
  uint32_t Cur = S.State.load(std::memory_order_relaxed);
  for (;;) {
    switch (Cur) {
    case IdleState:
      if (S.State.compare_exchange_weak(Cur, QueuedState,
                                        std::memory_order_acq_rel)) {
        Active.fetch_add(1, std::memory_order_acq_rel);
        readyPush(Id);
        return;
      }
      break; // Cur reloaded; retry.
    case RunningState:
      if (S.State.compare_exchange_weak(Cur, RunningPendingState,
                                        std::memory_order_acq_rel))
        return; // Owner re-runs before releasing.
      break;
    case QueuedState:
    case RunningPendingState:
      return; // Wakeup already pending.
    default:
      return;
    }
  }
}

//===----------------------------------------------------------------------===//
// Worker loop
//===----------------------------------------------------------------------===//

void Reactor::workerMain() {
  for (;;) {
    int32_t Id = readyPop();
    if (Id < 0)
      return;
    Slot &S = *Slots[Id];
    uint32_t Expected = QueuedState;
    if (!S.State.compare_exchange_strong(Expected, RunningState,
                                         std::memory_order_acq_rel))
      continue; // Stale entry; the notifier that re-queues re-pushes.
    runMachine(Id, S);
  }
}

bool Reactor::ownerEnabled(int32_t Id, Slot &S) const {
  if (S.LifeState.load(std::memory_order_relaxed) != Life::Live)
    return false;
  const MachineState &M = *Cfg.Machines[Id];
  if (!M.Alive)
    return false;
  if (!M.Exec.empty() || M.HasRaise || M.Transfer != TransferKind::None)
    return true;
  return Exec.findEligibleEvent(Cfg, M) >= 0;
}

void Reactor::runMachine(int32_t Id, Slot &S) {
  size_t Slices = 0;
  for (;;) {
    if (Shutdown.load(std::memory_order_relaxed) || Cfg.hasError()) {
      // Fail-stop / teardown: release ownership unconditionally. Any
      // pending notification is dropped — stop() folds leftover
      // mailboxes, and an errored config never runs again.
      S.State.store(IdleState, std::memory_order_release);
      if (Active.fetch_sub(1, std::memory_order_acq_rel) == 1)
        quiesceNotifyIfIdle();
      return;
    }

    transferMailbox(Id, S);

    bool Halted = false;
    while (Slices < Opt.SliceBatch && !Cfg.hasError() &&
           ownerEnabled(Id, S)) {
      ++Slices;
      SlicesRunA.fetch_add(1, std::memory_order_relaxed);
      Executor::StepResult R = Exec.step(Cfg, Id);
      if (R.Outcome == Executor::StepOutcome::Halted) {
        // `delete`: the machine is gone for good (sends now error).
        S.LifeState.store(Life::Dead, std::memory_order_release);
        Wheel.cancelFor(Id);
        Halted = true;
        creditNotify(); // Blocked producers must observe the death.
        break;
      }
      if (R.Outcome == Executor::StepOutcome::Error ||
          R.Outcome == Executor::StepOutcome::Blocked)
        break;
      // SchedulingPoint (send/new): the send hook already routed any
      // cross-machine traffic; keep draining this machine's slice
      // budget. ChoicePoint/ForeignCall do not occur in host mode.
    }

    if (Halted) {
      // Shed whatever the mailbox still holds (the serial equivalent:
      // those events would sit undeliverable in a dead machine's queue).
      transferMailbox(Id, S);
      if (S.HasHeld) {
        releaseCredit(S, S.Held);
        S.HasHeld = false;
      }
      S.PendingLat.clear();
    }

    bool HasMail = S.HasHeld || !S.Box.empty();
    bool Enabled = !Cfg.hasError() && ownerEnabled(Id, S);
    if ((HasMail || Enabled) && !Shutdown.load(std::memory_order_relaxed) &&
        !Cfg.hasError()) {
      if (Slices >= Opt.SliceBatch) {
        // Fairness: hand the machine back to the pool.
        S.State.store(QueuedState, std::memory_order_release);
        readyPush(Id); // Active stays held across the requeue.
        return;
      }
      if (Enabled || !S.Box.empty())
        continue;
      // Only a held entry remains and the machine is not enabled: a
      // dequeue is needed to free space, and dequeues only happen when
      // new eligible events arrive (which notify()s us). Go idle.
    }

    uint32_t Expected = RunningState;
    if (S.State.compare_exchange_strong(Expected, IdleState,
                                        std::memory_order_acq_rel)) {
      if (Active.fetch_sub(1, std::memory_order_acq_rel) == 1)
        quiesceNotifyIfIdle();
      return;
    }
    // RunningPending: a notification raced in; absorb it and re-run.
    S.State.store(RunningState, std::memory_order_release);
  }
}

//===----------------------------------------------------------------------===//
// Mailbox -> semantic queue transfer (owner side)
//===----------------------------------------------------------------------===//

void Reactor::transferMailbox(int32_t Id, Slot &S) {
  if (S.HasHeld) {
    MailboxEntry E = std::move(S.Held);
    S.HasHeld = false;
    if (!placeEntry(Id, S, E)) {
      S.Held = std::move(E);
      S.HasHeld = true;
      return; // Still stalled; preserve FIFO by not skipping ahead.
    }
  }
  MailboxEntry E;
  size_t Moved = 0;
  while (Moved < Opt.TransferBatch && S.Box.pop(E)) {
    ++Moved;
    if (!placeEntry(Id, S, E)) {
      S.Held = std::move(E);
      S.HasHeld = true;
      return;
    }
  }
}

bool Reactor::placeEntry(int32_t Id, Slot &S, MailboxEntry &E) {
  if (E.Event == ControlCrash) {
    doCrash(Id, S);
    return true;
  }
  if (S.LifeState.load(std::memory_order_relaxed) != Life::Live) {
    releaseCredit(S, E);
    return true; // Crashed/dead target swallows the event (serial parity).
  }
  {
    const MachineState &M = *Cfg.Machines[Id];
    // The ⊎ append: identical (event, payload) already queued is a no-op.
    for (const auto &[Ev, V] : M.Queue)
      if (Ev == E.Event && V == E.Arg) {
        releaseCredit(S, E);
        return true;
      }
    if (Cfg.MaxQueue != 0 && M.Queue.size() >= Cfg.MaxQueue) {
      switch (Cfg.Overflow) {
      case OverflowPolicy::DropNewest:
        Cfg.countOverflowDrop();
        releaseCredit(S, E);
        return true;
      case OverflowPolicy::Block:
        if (E.FromHost)
          return false; // Hold (credit kept) until a dequeue frees space.
        [[fallthrough]]; // Machine-to-machine Block behaves like Error.
      case OverflowPolicy::Error:
        Exec.reportError(Cfg, Id, ErrorKind::QueueOverflow,
                         "queue of machine id " + std::to_string(Id) +
                             " exceeded MaxQueue=" +
                             std::to_string(Cfg.MaxQueue));
        releaseCredit(S, E);
        return true;
      }
    }
  }
  Cfg.Machines[Id].mut().Queue.emplace_back(E.Event, E.Arg);
  if (E.Credited)
    ++S.CreditedInQueue;
  if (E.FromHost) {
    if (S.PendingLat.size() >= Opt.LatencyPendingCap) {
      S.PendingLat.erase(S.PendingLat.begin());
      LatencyDroppedA.fetch_add(1, std::memory_order_relaxed);
    }
    S.PendingLat.push_back({E.Event, E.T});
  }
  auto Depth = static_cast<uint32_t>(Cfg.Machines[Id]->Queue.size());
  if (Depth > S.HighWater.load(std::memory_order_relaxed))
    S.HighWater.store(Depth, std::memory_order_relaxed);
  return true;
}

void Reactor::enqueueOwn(int32_t Id, int32_t Event, const Value &Arg) {
  const MachineState &M = *Cfg.Machines[Id];
  for (const auto &[Ev, V] : M.Queue)
    if (Ev == Event && V == Arg)
      return;
  if (Cfg.MaxQueue != 0 && M.Queue.size() >= Cfg.MaxQueue) {
    if (Cfg.Overflow == OverflowPolicy::DropNewest) {
      Cfg.countOverflowDrop();
      return;
    }
    Exec.reportError(Cfg, Id, ErrorKind::QueueOverflow,
                     "queue of machine id " + std::to_string(Id) +
                         " exceeded MaxQueue=" +
                         std::to_string(Cfg.MaxQueue));
    return;
  }
  Cfg.Machines[Id].mut().Queue.emplace_back(Event, Arg);
  auto Depth = static_cast<uint32_t>(Cfg.Machines[Id]->Queue.size());
  Slot &S = *Slots[Id];
  if (Depth > S.HighWater.load(std::memory_order_relaxed))
    S.HighWater.store(Depth, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Crash / restart
//===----------------------------------------------------------------------===//

void Reactor::doCrash(int32_t Id, Slot &S) {
  if (Cfg.Machines[Id]->Alive)
    Exec.crashMachine(Cfg, Id);
  if (Cfg.Machines[Id]->Crashed)
    S.LifeState.store(Life::Crashed, std::memory_order_release);
  Wheel.cancelFor(Id);
  // Release everything the dead machine owed: credits held by queued
  // events, the stalled entry, and whatever is still in the mailbox.
  if (S.CreditedInQueue != 0) {
    S.InFlight.fetch_sub(S.CreditedInQueue, std::memory_order_acq_rel);
    S.CreditedInQueue = 0;
  }
  if (S.HasHeld) {
    releaseCredit(S, S.Held);
    S.HasHeld = false;
  }
  MailboxEntry E;
  while (S.Box.pop(E))
    if (E.Event != ControlCrash)
      releaseCredit(S, E);
  S.PendingLat.clear();
  creditNotify();
}

void Reactor::postCrash(int32_t Target) {
  if (Target < 0 || Target >= machineCount())
    return;
  Slot &S = *Slots[Target];
  MailboxEntry E;
  E.Event = ControlCrash;
  S.Box.push(std::move(E));
  notify(Target);
}

bool Reactor::restartMachine(
    int32_t Id, const std::vector<std::pair<int32_t, Value>> &Inits) {
  if (Id < 0 || Id >= machineCount())
    return false;
  Slot &S = *Slots[Id];
  // Acquire exclusive ownership exactly like a worker would, so no
  // worker can be touching the machine while we rebuild it.
  for (;;) {
    uint32_t Expected = IdleState;
    if (S.State.compare_exchange_weak(Expected, RunningState,
                                      std::memory_order_acq_rel))
      break;
    std::this_thread::yield();
  }
  bool Ok;
  {
    // restartMachine bounds-checks against Machines.size(), which races
    // with workers executing `new`; the structural mutex serializes it.
    std::lock_guard<std::mutex> Lk(StructuralMu);
    Ok = Exec.restartMachine(Cfg, Id, Inits);
  }
  if (Ok)
    S.LifeState.store(Life::Live, std::memory_order_release);
  // Hand the machine to the pool (entry statement pending on success;
  // harmless no-op run otherwise).
  S.State.store(QueuedState, std::memory_order_release);
  Active.fetch_add(1, std::memory_order_acq_rel);
  readyPush(Id);
  return Ok;
}

//===----------------------------------------------------------------------===//
// Credits (OverflowPolicy::Block) and latency samples
//===----------------------------------------------------------------------===//

void Reactor::releaseCredit(Slot &S, const MailboxEntry &E) {
  if (!E.Credited)
    return;
  S.InFlight.fetch_sub(1, std::memory_order_acq_rel);
  creditNotify();
}

void Reactor::creditNotify() {
  { std::lock_guard<std::mutex> Lk(CreditsMu); }
  CreditsCv.notify_all();
}

void Reactor::onDequeue(int32_t Machine, int32_t Event) {
  if (Machine < 0 || Machine >= machineCount())
    return;
  Slot &S = *Slots[Machine];
  if (S.CreditedInQueue != 0) {
    --S.CreditedInQueue;
    S.InFlight.fetch_sub(1, std::memory_order_acq_rel);
    creditNotify();
  }
  for (auto It = S.PendingLat.begin(); It != S.PendingLat.end(); ++It) {
    if (It->Event != Event)
      continue;
    Latency.observe(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - It->T)
                        .count());
    S.PendingLat.erase(It);
    return;
  }
}

//===----------------------------------------------------------------------===//
// Host-boundary ingress
//===----------------------------------------------------------------------===//

void Reactor::postEvent(int32_t Target, int32_t Event, const Value &Arg,
                        std::chrono::steady_clock::time_point T) {
  Slot &S = *Slots[Target];
  bool Credited = false;
  if (Cfg.MaxQueue != 0 && Cfg.Overflow == OverflowPolicy::Block) {
    std::unique_lock<std::mutex> Lk(CreditsMu);
    CreditsCv.wait(Lk, [&] {
      if (Shutdown.load(std::memory_order_relaxed) || Cfg.hasError())
        return true; // Give up waiting; deliver uncredited (it drains).
      if (S.LifeState.load(std::memory_order_acquire) != Life::Live)
        return true; // Dead/crashed target: the event vanishes anyway.
      uint32_t Cur = S.InFlight.load(std::memory_order_relaxed);
      while (Cur < Cfg.MaxQueue) {
        if (S.InFlight.compare_exchange_weak(Cur, Cur + 1,
                                             std::memory_order_acq_rel)) {
          Credited = true;
          return true;
        }
      }
      return false;
    });
  }
  MailboxEntry E;
  E.Event = Event;
  E.Arg = Arg;
  E.T = T;
  E.FromHost = true;
  E.Credited = Credited;
  S.Box.push(std::move(E));
  notify(Target);
}

//===----------------------------------------------------------------------===//
// Timers
//===----------------------------------------------------------------------===//

void Reactor::flushDueTimers() {
  std::lock_guard<std::mutex> Lk(TimerFlushMu);
  std::vector<TimerEntry> Out;
  Wheel.advanceTo(std::chrono::steady_clock::now(), Out);
  for (TimerEntry &E : Out) {
    TimersExpiredA.fetch_add(1, std::memory_order_relaxed);
    if (E.Target < 0 || E.Target >= machineCount())
      continue;
    Slot &S = *Slots[E.Target];
    if (S.LifeState.load(std::memory_order_acquire) != Life::Live)
      continue;
    MailboxEntry M;
    M.Event = E.Event;
    M.Arg = E.Arg;
    M.T = std::chrono::steady_clock::now();
    M.FromHost = E.FromHost;
    M.Credited = false; // The tick thread never blocks on credits.
    S.Box.push(std::move(M));
    notify(E.Target);
  }
}

void Reactor::timerMain() {
  while (!Shutdown.load(std::memory_order_acquire)) {
    {
      std::unique_lock<std::mutex> Lk(TimerMu);
      TimerCv.wait(Lk, [&] {
        return Shutdown.load(std::memory_order_relaxed) || !Wheel.empty();
      });
    }
    if (Shutdown.load(std::memory_order_relaxed))
      return;
    std::this_thread::sleep_for(Wheel.tick());
    flushDueTimers();
  }
}

//===----------------------------------------------------------------------===//
// Quiescence
//===----------------------------------------------------------------------===//

void Reactor::quiesceNotifyIfIdle() {
  { std::lock_guard<std::mutex> Lk(QuiesceMu); }
  QuiesceCv.notify_all();
}

void Reactor::waitQuiesce() {
  std::unique_lock<std::mutex> Lk(QuiesceMu);
  QuiesceCv.wait(Lk, [&] {
    return Active.load(std::memory_order_acquire) == 0 ||
           Shutdown.load(std::memory_order_relaxed);
  });
}

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

void Reactor::start() {
  if (Started)
    return;
  Started = true;
  NWorkers = Opt.Workers > 0
                 ? Opt.Workers
                 : static_cast<int>(
                       std::max(1u, std::thread::hardware_concurrency()));

  size_t MaxM = std::max(Opt.MaxMachines, Cfg.Machines.size());
  // The machine table must never reallocate while workers read it
  // lock-free: reserve up front, and createMachine (under the
  // structural mutex) fail-stops at capacity.
  Cfg.Machines.reserve(MaxM);
  Slots.resize(MaxM); // null slots; installed on publish
  for (size_t I = 0; I != Cfg.Machines.size(); ++I) {
    const MachineState &M = *Cfg.Machines[I];
    installSlot(static_cast<int32_t>(I),
                M.Alive ? Life::Live
                        : (M.Crashed ? Life::Crashed : Life::Dead));
  }

  Exec.setErrorMutex(&ErrorMu);
  Exec.setStructuralMutex(&StructuralMu);
  Exec.setSendHook([this](Config &C, int32_t From, int32_t To, int32_t Event,
                          const Value &Arg) -> bool {
    int32_t N = machineCount();
    if (To < 0 || To >= N) {
      Exec.reportError(C, From, ErrorKind::SendToNull,
                       "send to invalid machine id " + std::to_string(To));
      return true;
    }
    Slot &S = *Slots[To];
    Life L = S.LifeState.load(std::memory_order_acquire);
    if (L == Life::Crashed)
      return true; // Fault model: sends to crashed machines vanish.
    if (L != Life::Live) {
      Exec.reportError(C, From, ErrorKind::SendToDeleted,
                       "send to deleted machine id " + std::to_string(To));
      return true;
    }
    if (To == From) {
      enqueueOwn(To, Event, Arg);
      return true;
    }
    MailboxEntry E;
    E.Event = Event;
    E.Arg = Arg;
    E.T = std::chrono::steady_clock::now();
    E.FromHost = false;
    S.Box.push(std::move(E));
    notify(To);
    return true;
  });
  Exec.setCreateHook([this](Config &, int32_t Id) {
    // Runs under the structural mutex, right after push_back: build the
    // slot before any send can target the id, then schedule the entry
    // statement.
    installSlot(Id, Life::Live);
    notify(Id);
  });

  Shutdown.store(false, std::memory_order_release);

  // Schedule machines with pre-existing work before workers spin up
  // (safe to use isEnabled here: no concurrent structural mutation yet).
  std::vector<int32_t> Pending;
  for (int32_t I = 0, N = machineCount(); I != N; ++I)
    if (Exec.isEnabled(Cfg, I))
      Pending.push_back(I);

  for (int I = 0; I != NWorkers; ++I)
    Workers.emplace_back([this] { workerMain(); });
  TimerThread = std::thread([this] { timerMain(); });

  for (int32_t Id : Pending)
    notify(Id);
}

void Reactor::stop() {
  if (!Started || Stopped)
    return;
  Stopped = true;
  Shutdown.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> Lk(ReadyMu);
  }
  ReadyCv.notify_all();
  {
    std::lock_guard<std::mutex> Lk(TimerMu);
  }
  TimerCv.notify_all();
  creditNotify();
  for (std::thread &W : Workers)
    W.join();
  Workers.clear();
  if (TimerThread.joinable())
    TimerThread.join();

  Exec.setSendHook(nullptr);
  Exec.setCreateHook(nullptr);
  Exec.setErrorMutex(nullptr);
  Exec.setStructuralMutex(nullptr);

  // Fold leftover mailbox contents back into the semantic queues so a
  // serial pump (or observation APIs) sees every accepted event. Block
  // policy appends past the bound here rather than raising a spurious
  // teardown error; DropNewest still sheds and counts.
  for (int32_t Id = 0, N = machineCount(); Id != N; ++Id) {
    Slot &S = *Slots[Id];
    auto Fold = [&](MailboxEntry &E) {
      if (E.Event == ControlCrash) {
        if (Cfg.Machines[Id]->Alive) {
          Exec.crashMachine(Cfg, Id);
          S.LifeState.store(Life::Crashed, std::memory_order_relaxed);
        }
        return;
      }
      if (S.LifeState.load(std::memory_order_relaxed) != Life::Live)
        return;
      const MachineState &M = *Cfg.Machines[Id];
      for (const auto &[Ev, V] : M.Queue)
        if (Ev == E.Event && V == E.Arg)
          return;
      if (Cfg.MaxQueue != 0 && M.Queue.size() >= Cfg.MaxQueue &&
          Cfg.Overflow == OverflowPolicy::DropNewest) {
        Cfg.countOverflowDrop();
        return;
      }
      Cfg.Machines[Id].mut().Queue.emplace_back(E.Event, E.Arg);
    };
    if (S.HasHeld) {
      Fold(S.Held);
      S.HasHeld = false;
    }
    MailboxEntry E;
    while (S.Box.pop(E))
      Fold(E);
    S.InFlight.store(0, std::memory_order_relaxed);
    S.CreditedInQueue = 0;
    S.PendingLat.clear();
  }
}

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

uint64_t Reactor::mailboxSpills() const {
  uint64_t Total = 0;
  for (int32_t Id = 0, N = machineCount(); Id != N; ++Id)
    Total += Slots[Id]->Box.spillCount();
  return Total;
}

uint64_t Reactor::queueHighWaterMax() const {
  uint64_t Max = 0;
  for (int32_t Id = 0, N = machineCount(); Id != N; ++Id)
    Max = std::max<uint64_t>(
        Max, Slots[Id]->HighWater.load(std::memory_order_relaxed));
  return Max;
}

} // namespace p
