//===- host/TimerWheel.h - Sharded hierarchical timer wheel ----------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delayed deliveries for the host: FaultKind::DelayEvent and
/// Host::addEventAfter park events here instead of in the old
/// flush-after-next-pump vector, so a delay has a real duration and the
/// reactor's timer thread can expire thousands of them per tick without
/// scanning a sorted set.
///
/// Layout: the classic hierarchical timing wheel (four levels of 256
/// slots over a ~1ms tick, covering ~50 days before the far-future
/// overflow list is needed). An entry at delta d ticks lands in the
/// level whose span covers d, in the slot its absolute deadline tick
/// indexes at that level's granularity; when a level-0 lap completes,
/// the next level-1 slot cascades down, and so on up. Insertion and
/// expiry are O(1) amortized regardless of how many timers are pending
/// — the property a server-class host needs and a deadline-ordered
/// multiset does not have.
///
/// Sharding: entries hash by target machine (Target % NShards), one
/// mutex per shard, so producers scheduling delays for different
/// machines do not contend and cancelFor (crash fail-stop: a crashed
/// machine's pending deliveries vanish) locks exactly one shard.
///
/// Expiry order: advanceTo merges the shards and sorts the batch by
/// (Deadline, Seq) — earlier deadlines deliver first, ties break by
/// schedule order, so equal-delay events from one producer keep their
/// FIFO order. Resolution is one tick (default 1ms): deadlines within
/// the same tick may expire together, in Seq order.
///
//===----------------------------------------------------------------------===//

#ifndef P_HOST_TIMERWHEEL_H
#define P_HOST_TIMERWHEEL_H

#include "runtime/Value.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace p {

/// One delayed delivery. FromHost/Credited mirror MailboxEntry (the
/// expiry is pushed into the target's mailbox in reactor mode).
struct TimerEntry {
  int32_t Target = -1;
  int32_t Event = -1;
  Value Arg;
  std::chrono::steady_clock::time_point Deadline;
  uint64_t Seq = 0; ///< Assigned by schedule(); total order of scheduling.
  bool FromHost = true;
};

class TimerWheel {
public:
  using Clock = std::chrono::steady_clock;

  explicit TimerWheel(size_t NShards = 4,
                      Clock::duration Tick = std::chrono::milliseconds(1));

  /// Parks \p E until its Deadline; fills in E.Seq. Thread-safe.
  void schedule(TimerEntry E);

  /// Moves every entry whose deadline is <= \p Now into \p Out, sorted
  /// by (Deadline, Seq). Appends; does not clear \p Out. Thread-safe,
  /// but concurrent advanceTo calls may interleave batches — the host
  /// calls it from one place per mode (the pump or the tick thread).
  void advanceTo(Clock::time_point Now, std::vector<TimerEntry> &Out);

  /// Discards every pending entry for \p Target (crash fail-stop).
  /// Returns how many were dropped.
  size_t cancelFor(int32_t Target);

  /// Pending entries across all shards (approximate under concurrency).
  size_t size() const { return Count.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  Clock::duration tick() const { return TickLen; }

private:
  static constexpr int Levels = 4;
  static constexpr int SlotBits = 8;
  static constexpr size_t SlotsPerLevel = size_t(1) << SlotBits;
  static constexpr size_t SlotMask = SlotsPerLevel - 1;

  struct Shard {
    std::mutex Mu;
    uint64_t CurTick = 0;
    /// [level][slot] -> entries whose deadline tick lands there.
    std::vector<std::deque<TimerEntry>> Slots =
        std::vector<std::deque<TimerEntry>>(Levels * SlotsPerLevel);
    /// Deadlines beyond the wheel horizon (~50 days at 1ms).
    std::deque<TimerEntry> FarFuture;
    /// Entries already due when scheduled (FaultKind::DelayEvent uses a
    /// now() deadline): the next advanceTo delivers them even when no
    /// tick boundary has passed, so delay resolution never rounds a
    /// zero delay up to one tick.
    std::deque<TimerEntry> DueNow;
  };

  uint64_t tickOf(Clock::time_point T) const {
    if (T <= Start)
      return 0;
    return static_cast<uint64_t>((T - Start) / TickLen);
  }

  std::deque<TimerEntry> &slot(Shard &S, int Level, uint64_t Tick) {
    size_t Idx = (Tick >> (SlotBits * Level)) & SlotMask;
    return S.Slots[static_cast<size_t>(Level) * SlotsPerLevel + Idx];
  }

  /// Places \p E relative to S.CurTick, or straight into \p Expired when
  /// already due. Shard mutex held.
  void place(Shard &S, TimerEntry E, std::vector<TimerEntry> *Expired);

  /// Steps one shard forward to \p NowTick, cascading levels and
  /// collecting due entries. Shard mutex held.
  void advanceShard(Shard &S, uint64_t NowTick,
                    std::vector<TimerEntry> &Expired);

  const Clock::time_point Start = Clock::now();
  const Clock::duration TickLen;
  std::vector<std::unique_ptr<Shard>> Shards;
  std::atomic<uint64_t> NextSeq{0};
  std::atomic<size_t> Count{0};
};

} // namespace p

#endif // P_HOST_TIMERWHEEL_H
