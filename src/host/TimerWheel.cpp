//===- host/TimerWheel.cpp ---------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "host/TimerWheel.h"

#include <algorithm>

using namespace p;

TimerWheel::TimerWheel(size_t NShards, Clock::duration Tick)
    : TickLen(Tick.count() > 0 ? Tick : std::chrono::milliseconds(1)) {
  if (NShards == 0)
    NShards = 1;
  Shards.reserve(NShards);
  for (size_t I = 0; I != NShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

void TimerWheel::place(Shard &S, TimerEntry E,
                       std::vector<TimerEntry> *Expired) {
  uint64_t DeadTick = tickOf(E.Deadline);
  if (DeadTick <= S.CurTick) {
    if (Expired)
      Expired->push_back(std::move(E));
    else
      S.DueNow.push_back(std::move(E));
    return;
  }
  uint64_t Delta = DeadTick - S.CurTick;
  for (int L = 0; L != Levels; ++L) {
    // Level L spans 2^(8*(L+1)) ticks ahead of CurTick.
    uint64_t Span = uint64_t(1) << (SlotBits * (L + 1));
    if (Delta < Span) {
      slot(S, L, DeadTick).push_back(std::move(E));
      return;
    }
  }
  S.FarFuture.push_back(std::move(E));
}

void TimerWheel::schedule(TimerEntry E) {
  E.Seq = NextSeq.fetch_add(1, std::memory_order_relaxed);
  Shard &S = *Shards[static_cast<size_t>(
      static_cast<uint32_t>(E.Target < 0 ? 0 : E.Target) % Shards.size())];
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    place(S, std::move(E), nullptr);
  }
  Count.fetch_add(1, std::memory_order_release);
}

void TimerWheel::advanceShard(Shard &S, uint64_t NowTick,
                              std::vector<TimerEntry> &Expired) {
  while (S.CurTick < NowTick) {
    ++S.CurTick;
    // Cascade: whenever a coarser level's granularity boundary is
    // crossed, its current slot re-places one level finer (or expires).
    for (int L = 1; L != Levels; ++L) {
      if ((S.CurTick & ((uint64_t(1) << (SlotBits * L)) - 1)) != 0)
        break;
      std::deque<TimerEntry> Moved;
      Moved.swap(slot(S, L, S.CurTick));
      for (TimerEntry &E : Moved)
        place(S, std::move(E), &Expired);
      // Level-3 lap complete: far-future entries may be in range now.
      if (L == Levels - 1) {
        std::deque<TimerEntry> Far;
        Far.swap(S.FarFuture);
        for (TimerEntry &E : Far)
          place(S, std::move(E), &Expired);
      }
    }
    std::deque<TimerEntry> &Due = slot(S, 0, S.CurTick);
    while (!Due.empty()) {
      Expired.push_back(std::move(Due.front()));
      Due.pop_front();
    }
  }
}

void TimerWheel::advanceTo(Clock::time_point Now,
                           std::vector<TimerEntry> &Out) {
  const uint64_t NowTick = tickOf(Now);
  const size_t Before = Out.size();
  for (auto &SPtr : Shards) {
    Shard &S = *SPtr;
    std::lock_guard<std::mutex> Lock(S.Mu);
    while (!S.DueNow.empty()) {
      Out.push_back(std::move(S.DueNow.front()));
      S.DueNow.pop_front();
    }
    if (S.CurTick >= NowTick)
      continue;
    // Empty shards jump straight to NowTick: an idle host must not pay
    // one loop iteration per elapsed millisecond.
    bool HasWork = !S.FarFuture.empty();
    if (!HasWork)
      for (const auto &Q : S.Slots)
        if (!Q.empty()) {
          HasWork = true;
          break;
        }
    if (!HasWork) {
      S.CurTick = NowTick;
      continue;
    }
    advanceShard(S, NowTick, Out);
  }
  const size_t Expired = Out.size() - Before;
  if (Expired)
    Count.fetch_sub(Expired, std::memory_order_release);
  std::sort(Out.begin() + Before, Out.end(),
            [](const TimerEntry &A, const TimerEntry &B) {
              if (A.Deadline != B.Deadline)
                return A.Deadline < B.Deadline;
              return A.Seq < B.Seq;
            });
}

size_t TimerWheel::cancelFor(int32_t Target) {
  Shard &S = *Shards[static_cast<size_t>(
      static_cast<uint32_t>(Target < 0 ? 0 : Target) % Shards.size())];
  size_t Dropped = 0;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto Drop = [&](std::deque<TimerEntry> &Q) {
      for (auto It = Q.begin(); It != Q.end();) {
        if (It->Target == Target) {
          It = Q.erase(It);
          ++Dropped;
        } else {
          ++It;
        }
      }
    };
    for (auto &Q : S.Slots)
      Drop(Q);
    Drop(S.FarFuture);
    Drop(S.DueNow);
  }
  if (Dropped)
    Count.fetch_sub(Dropped, std::memory_order_release);
  return Dropped;
}
