//===- host/Mailbox.h - Lock-free MPSC mailbox per machine -----------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-machine ingress queue of the reactor host (see
/// host/Reactor.h): many producers — "OS" threads calling
/// Host::addEvent, workers forwarding cross-machine sends, the timer
/// thread — and exactly one consumer, the worker that currently owns
/// the machine. The hot path is a bounded ring with sequence-numbered
/// slots (the Vyukov bounded-queue discipline): producers claim a slot
/// with one CAS on the tail, the consumer walks the head with plain
/// atomic loads, and the slot's sequence number is the only
/// synchronization between the two sides.
///
/// Memory ordering (referenced from DESIGN.md "Host runtime"):
///
///   * A producer claims slot i by CAS(tail, t, t+1) (relaxed — the
///     claim only orders against other claims), writes the payload,
///     then publishes with Seq.store(t + 1, release).
///   * The consumer reads Seq with acquire; observing t + 1 makes the
///     payload write visible. After moving the payload out it retires
///     the slot with Seq.store(t + Capacity, release), which is what a
///     producer on the next lap acquires before reusing the slot.
///   * Consumer exclusivity is not provided here: it comes from the
///     reactor's ownership-by-worker invariant (a machine's state is
///     QUEUED/RUNNING for at most one worker, and the hand-off CASes on
///     that state form a release/acquire chain).
///
/// A bounded ring must shed or block when full. Blocking is only
/// allowed at the host boundary (OverflowPolicy::Block, enforced by the
/// reactor's credit counter before the push), and shedding would break
/// delivery guarantees, so a full ring spills into a mutex-guarded
/// side list. Per-producer FIFO survives the spill: once a producer has
/// spilled, every later push (any producer) also spills until the
/// consumer has drained the side list, and the consumer only reads the
/// side list when the ring is empty — so an older ring entry can never
/// be overtaken by a younger spilled one, or vice versa.
///
//===----------------------------------------------------------------------===//

#ifndef P_HOST_MAILBOX_H
#define P_HOST_MAILBOX_H

#include "runtime/Value.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace p {

/// One event in flight between a producer and the machine's semantic
/// queue. `T` is the producer-side enqueue timestamp the dispatch
/// latency histogram is matched against; `FromHost` marks host-boundary
/// deliveries (Host::addEvent, duplicates, timer expiries) as opposed
/// to forwarded machine-to-machine sends; `Credited` records that the
/// producer acquired an OverflowPolicy::Block credit which the consumer
/// must release when the event leaves the mailbox for any reason.
struct MailboxEntry {
  int32_t Event = -1;
  Value Arg;
  std::chrono::steady_clock::time_point T;
  bool FromHost = false;
  bool Credited = false;
};

/// Bounded multi-producer single-consumer ring with an unbounded
/// mutex-guarded spill list (see file comment for the FIFO argument).
/// The ring is the lock-free hot path; the spill list only exists so a
/// send never has to block or shed inside the runtime.
class Mailbox {
public:
  explicit Mailbox(size_t CapacityPow2) : Cap(roundUpPow2(CapacityPow2)) {
    Cells.reset(new Cell[Cap]);
    for (size_t I = 0; I != Cap; ++I)
      Cells[I].Seq.store(I, std::memory_order_relaxed);
  }

  size_t capacity() const { return Cap; }

  /// Multi-producer push; never fails and never blocks. Returns true
  /// when the entry took the lock-free ring, false when it spilled (a
  /// perf signal, not an error).
  bool push(MailboxEntry E) {
    // Once anything has spilled, later pushes must follow it into the
    // side list or the consumer would reorder them ahead of it.
    if (SpillActive.load(std::memory_order_acquire))
      return pushSpill(std::move(E));
    size_t T = Tail.load(std::memory_order_relaxed);
    for (;;) {
      Cell &C = Cells[T & (Cap - 1)];
      size_t Seq = C.Seq.load(std::memory_order_acquire);
      intptr_t Diff = static_cast<intptr_t>(Seq) - static_cast<intptr_t>(T);
      if (Diff == 0) {
        if (Tail.compare_exchange_weak(T, T + 1,
                                       std::memory_order_relaxed))
          break;
        // T was reloaded by the failed CAS; retry.
      } else if (Diff < 0) {
        // The slot is still occupied from the previous lap: ring full.
        return pushSpill(std::move(E));
      } else {
        T = Tail.load(std::memory_order_relaxed);
      }
    }
    Cell &C = Cells[T & (Cap - 1)];
    C.E = std::move(E);
    C.Seq.store(T + 1, std::memory_order_release);
    Size.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Single-consumer pop. Ring first; the spill list only when the
  /// ring is momentarily empty (the order the FIFO argument needs).
  bool pop(MailboxEntry &Out) {
    size_t H = Head.load(std::memory_order_relaxed);
    Cell &C = Cells[H & (Cap - 1)];
    size_t Seq = C.Seq.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(Seq) - static_cast<intptr_t>(H + 1) == 0) {
      Out = std::move(C.E);
      C.E = MailboxEntry{}; // Drop any payload the Value may hold.
      C.Seq.store(H + Cap, std::memory_order_release);
      Head.store(H + 1, std::memory_order_relaxed);
      Size.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    return popSpill(Out);
  }

  /// Events currently buffered (ring + spill); exact for the consumer,
  /// a floor for producers (their own push is already counted).
  size_t size() const {
    return Size.load(std::memory_order_acquire) +
           SpillSize.load(std::memory_order_acquire);
  }

  bool empty() const { return size() == 0; }

  /// Times push() fell back to the side list (perf counter).
  uint64_t spillCount() const {
    return Spills.load(std::memory_order_relaxed);
  }

private:
  struct Cell {
    std::atomic<size_t> Seq{0};
    MailboxEntry E;
  };

  static size_t roundUpPow2(size_t N) {
    size_t P = 1;
    while (P < N)
      P <<= 1;
    return P < 2 ? 2 : P;
  }

  bool pushSpill(MailboxEntry E) {
    std::lock_guard<std::mutex> Lock(SpillMu);
    Spill.push_back(std::move(E));
    SpillSize.fetch_add(1, std::memory_order_release);
    SpillActive.store(true, std::memory_order_release);
    Spills.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  bool popSpill(MailboxEntry &Out) {
    if (!SpillActive.load(std::memory_order_acquire))
      return false;
    std::lock_guard<std::mutex> Lock(SpillMu);
    if (Spill.empty()) {
      // Producers that sample SpillActive before this store keep
      // spilling; that is harmless (order still preserved).
      SpillActive.store(false, std::memory_order_release);
      return false;
    }
    Out = std::move(Spill.front());
    Spill.pop_front();
    SpillSize.fetch_sub(1, std::memory_order_release);
    if (Spill.empty())
      SpillActive.store(false, std::memory_order_release);
    return true;
  }

  const size_t Cap;
  std::unique_ptr<Cell[]> Cells;
  alignas(64) std::atomic<size_t> Tail{0}; ///< Producers CAS this.
  alignas(64) std::atomic<size_t> Head{0}; ///< Single consumer only.
  alignas(64) std::atomic<size_t> Size{0};

  std::mutex SpillMu;
  std::deque<MailboxEntry> Spill;
  std::atomic<size_t> SpillSize{0};
  std::atomic<bool> SpillActive{false};
  std::atomic<uint64_t> Spills{0};
};

} // namespace p

#endif // P_HOST_MAILBOX_H
