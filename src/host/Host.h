//===- host/Host.h - Execution host (KMDF interface-code substitute) -------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution host of Section 4. In the paper, generated code runs
/// inside a Windows KMDF driver: skeletal *interface code* translates OS
/// callbacks into events on P machine queues through a three-call
/// runtime API — SMCreateMachine, SMAddEvent, SMGetContext — and the
/// calling thread runs the target machine to completion under a
/// per-machine lock. This class is the portable substitute: the same
/// three-call API, a run-to-completion scheduler, per-machine mutexes
/// when driven from multiple threads, and a per-machine external-memory
/// pointer for foreign code.
///
/// The host runs the *erased* program: ghost machines do not exist here;
/// the caller (the "OS") produces the events the ghost environment
/// produced during verification.
///
//===----------------------------------------------------------------------===//

#ifndef P_HOST_HOST_H
#define P_HOST_HOST_H

#include "runtime/Executor.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <random>
#include <string>
#include <vector>

namespace p {

namespace obs {
class MetricsRegistry;
class TraceRecorder;
} // namespace obs

/// Statistics of one host run.
struct HostStats {
  uint64_t EventsDelivered = 0; ///< SMAddEvent calls accepted.
  uint64_t SlicesRun = 0;       ///< Run-to-completion slices executed.
  uint64_t MachinesCreated = 0;
};

/// Runs a compiled (normally ghost-erased) P program.
class Host {
public:
  /// \p Seed drives any `*` expressions left in the program (there are
  /// none after erasure of a well-typed program; the provider exists for
  /// experimentation).
  explicit Host(const CompiledProgram &Prog, uint64_t Seed = 0);

  /// Registers a native foreign function (Section 4, "Foreign
  /// functions").
  void registerForeign(const std::string &Machine, const std::string &Fun,
                       ForeignFn Fn);

  /// SMCreateMachine: creates an instance of \p MachineName; returns its
  /// id, or -1 when the machine is unknown. The new machine's entry
  /// statement runs to completion before this returns.
  int32_t createMachine(const std::string &MachineName,
                        const std::vector<std::pair<std::string, Value>>
                            &Inits = {});

  /// SMAddEvent: enqueues \p EventName on machine \p Target and runs the
  /// system to completion. Returns false on an invalid target/event or
  /// when the program entered an error configuration.
  bool addEvent(int32_t Target, const std::string &EventName,
                Value Arg = Value::null());

  /// SMGetContext: the external-memory pointer foreign code may attach
  /// to a machine (the paper's StateMachineContext void*).
  void *getContext(int32_t Id) const;
  void setContext(int32_t Id, void *Context);

  /// Runs every enabled machine until the system quiesces. Returns
  /// false when an error configuration was reached.
  bool runToCompletion();

  /// True once the configuration entered an error state.
  bool hasError() const { return Cfg.hasError(); }
  ErrorKind error() const { return Cfg.Error; }
  const std::string &errorMessage() const { return Cfg.ErrorMessage; }

  /// Current state name of machine \p Id (top of its call stack), or ""
  /// when dead; handy for tests and demos.
  std::string currentStateName(int32_t Id) const;

  /// Reads a machine variable by name (⊥ when unknown).
  Value readVar(int32_t Id, const std::string &VarName) const;

  const Config &config() const { return Cfg; }
  const HostStats &stats() const { return Stats; }
  Executor &executor() { return Exec; }

  /// Attaches structured-event tracing (see obs/Trace.h): opens one
  /// sink on \p Recorder and records every send/dequeue/raise/new/
  /// state/halt/error the pump executes, plus a slice marker per
  /// run-to-completion slice. The host's entry points are serialized
  /// by PumpMutex, so a single sink is safe even when multiple "OS"
  /// threads drive the host. The recorder must outlive the host (or
  /// call detachTrace() first).
  void attachTrace(obs::TraceRecorder &Recorder);
  void detachTrace();

  /// Writes the host counters into \p Registry as p_host_* metrics.
  void exportMetrics(obs::MetricsRegistry &Registry) const;

private:
  /// Runs the scheduler stack to quiescence (the d = 0 causal
  /// discipline; see Host.cpp).
  void drain();
  /// Puts machine \p Id on top of the scheduler stack if absent.
  void arm(int32_t Id);

  const CompiledProgram &Prog;
  Executor Exec;
  Config Cfg;
  HostStats Stats;
  std::vector<void *> Contexts;
  std::deque<int32_t> Sched; ///< The d = 0 scheduler stack.
  std::mt19937_64 Rng;
  mutable std::mutex PumpMutex; ///< Serializes host entry points.
};

} // namespace p

#endif // P_HOST_HOST_H
