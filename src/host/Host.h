//===- host/Host.h - Execution host (KMDF interface-code substitute) -------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution host of Section 4. In the paper, generated code runs
/// inside a Windows KMDF driver: skeletal *interface code* translates OS
/// callbacks into events on P machine queues through a three-call
/// runtime API — SMCreateMachine, SMAddEvent, SMGetContext — and the
/// calling thread runs the target machine to completion under a
/// per-machine lock. This class is the portable substitute: the same
/// three-call API, a run-to-completion scheduler, per-machine mutexes
/// when driven from multiple threads, and a per-machine external-memory
/// pointer for foreign code.
///
/// The host runs the *erased* program: ghost machines do not exist here;
/// the caller (the "OS") produces the events the ghost environment
/// produced during verification.
///
//===----------------------------------------------------------------------===//

#ifndef P_HOST_HOST_H
#define P_HOST_HOST_H

#include "fault/FaultPlan.h"
#include "host/Reactor.h"
#include "host/TimerWheel.h"
#include "obs/Metrics.h"
#include "runtime/Executor.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <tuple>
#include <vector>

namespace p {

namespace obs {
class MetricsRegistry;
class TraceRecorder;
} // namespace obs

/// Statistics of one host run.
struct HostStats {
  uint64_t EventsDelivered = 0; ///< SMAddEvent calls accepted.
  uint64_t SlicesRun = 0;       ///< Run-to-completion slices executed.
  uint64_t MachinesCreated = 0;
  // Fault-plan actions taken (all zero without a FaultPlan).
  uint64_t EventsDropped = 0;    ///< SMAddEvent calls swallowed.
  uint64_t EventsDuplicated = 0; ///< SMAddEvent calls delivered twice.
  uint64_t EventsDelayed = 0;    ///< Deliveries deferred to a later pump.
  uint64_t MachinesCrashed = 0;  ///< Crash faults (plan or crashMachine).
  uint64_t MachinesRestarted = 0;
  /// Deepest any machine queue ever got (observed at enqueue and at
  /// send scheduling points inside the pump).
  uint64_t QueueDepthHighWater = 0;
  /// Dispatch-latency samples evicted because the pending-match FIFO
  /// hit HostOptions::LatencyPendingCap (p_host_latency_dropped_total).
  uint64_t LatencyDropped = 0;
  /// Reactor mode: mailbox ring overflows that took the spill list.
  uint64_t MailboxSpills = 0;
  /// Timer-wheel entries scheduled (addEventAfter + delay faults).
  uint64_t TimersScheduled = 0;
  /// Timer-wheel entries that expired and were delivered.
  uint64_t TimersExpired = 0;
};

/// Construction-time host tuning (the Seed parameter grown up).
struct HostOptions {
  /// Drives any `*` expressions left in the program.
  uint64_t Seed = 0;
  /// Cap on the serial pump's dispatch-latency matching FIFO (the
  /// oldest open enqueue is dropped past it and counted in
  /// HostStats::LatencyDropped). The reactor's per-machine cap lives in
  /// ReactorOptions::LatencyPendingCap.
  size_t LatencyPendingCap = 4096;
};

/// Why the last host API call was rejected before touching the program
/// (API misuse, not program errors — those surface via error()).
enum class HostError : uint8_t {
  None,
  UnknownMachine, ///< createMachine: no such machine type; addEvent:
                  ///< target id was never a machine.
  UnknownEvent,   ///< addEvent: no such event name.
  DeadTarget,     ///< addEvent: target machine deleted itself.
};

/// Short identifier, e.g. "unknown-event".
const char *hostErrorName(HostError E);

/// Runs a compiled (normally ghost-erased) P program.
class Host {
public:
  /// \p Seed drives any `*` expressions left in the program (there are
  /// none after erasure of a well-typed program; the provider exists for
  /// experimentation).
  explicit Host(const CompiledProgram &Prog, uint64_t Seed = 0)
      : Host(Prog, HostOptions{Seed, 4096}) {}
  Host(const CompiledProgram &Prog, HostOptions Options);
  ~Host();

  /// Registers a native foreign function (Section 4, "Foreign
  /// functions").
  void registerForeign(const std::string &Machine, const std::string &Fun,
                       ForeignFn Fn);

  /// SMCreateMachine: creates an instance of \p MachineName; returns its
  /// id, or -1 when the machine is unknown. The new machine's entry
  /// statement runs to completion before this returns.
  int32_t createMachine(const std::string &MachineName,
                        const std::vector<std::pair<std::string, Value>>
                            &Inits = {});

  /// SMAddEvent: enqueues \p EventName on machine \p Target and runs the
  /// system to completion. Returns false on an invalid target/event or
  /// when the program entered an error configuration.
  bool addEvent(int32_t Target, const std::string &EventName,
                Value Arg = Value::null());

  /// Schedules \p EventName for delivery to \p Target after \p Delay on
  /// the hierarchical timer wheel (resolution: TimerWheel's tick, 1ms).
  /// Serial mode delivers due timers at the next pump (addEvent /
  /// runToCompletion); reactor mode delivers from the tick thread.
  /// Timer deliveries are not counted in EventsDelivered — see
  /// HostStats::TimersScheduled / TimersExpired.
  bool addEventAfter(int32_t Target, const std::string &EventName,
                     Value Arg, std::chrono::nanoseconds Delay);

  /// Switches the host to the multi-threaded reactor pump (see
  /// host/Reactor.h): per-machine lock-free mailboxes, N workers, and a
  /// timer tick thread. Call from a quiescent host (no concurrent API
  /// calls during the switch). Differences from the serial contract,
  /// documented in DESIGN.md "Host runtime":
  ///  - addEvent/createMachine return on *acceptance*; processing is
  ///    asynchronous. runToCompletion (= waitQuiesce) is the barrier.
  ///  - observation APIs (currentStateName, readVar, config()) are
  ///    meaningful after a barrier, not mid-flight.
  ///  - attachTrace is serial-mode only (startReactor detaches).
  /// Returns false if a reactor is already running.
  bool startReactor(ReactorOptions Options = {});

  /// Stops the reactor, folds its counters into stats(), moves leftover
  /// mailbox events back into the semantic queues, and resumes the
  /// serial pump (draining whatever became runnable). Returns
  /// !hasError(). No-op returning true when no reactor is running.
  bool stopReactor();

  bool reactorActive() const {
    return ReactorOn.load(std::memory_order_acquire);
  }
  /// The reactor instance while active (tests/benchmarks), else null.
  Reactor *reactor() { return R.get(); }

  /// SMGetContext: the external-memory pointer foreign code may attach
  /// to a machine (the paper's StateMachineContext void*).
  void *getContext(int32_t Id) const;
  void setContext(int32_t Id, void *Context);

  /// Runs every enabled machine until the system quiesces. Returns
  /// false when an error configuration was reached.
  bool runToCompletion();

  /// True once the configuration entered an error state.
  bool hasError() const { return Cfg.hasError(); }
  ErrorKind error() const { return Cfg.errorKind(); }
  /// Valid once error() has been observed non-None (the reactor's
  /// release/acquire pair orders the message before the flag).
  const std::string &errorMessage() const { return Cfg.ErrorMessage; }

  /// Why the most recent createMachine/addEvent call was rejected
  /// (HostError::None after a call that reached the program). Unified
  /// API misuse reporting: callers no longer have to guess between the
  /// boolean result and the error configuration. The verdict is per
  /// calling thread: each thread reads the outcome of its *own* most
  /// recent call on this host, never a concurrent caller's.
  HostError lastHostError() const;

  /// Installs a seeded fault plan (see fault/FaultPlan.h): every
  /// accepted addEvent consults it and may be dropped, duplicated,
  /// delayed to a later pump, or turn into a crash of the target.
  /// Resets the plan's RNG, so two hosts given the same plan replay the
  /// same fault schedule. Pass a default-constructed plan to disable.
  void setFaultPlan(FaultPlan P);

  /// Bounds every machine queue (Config::MaxQueue; 0 = unbounded).
  /// Under OverflowPolicy::Block, addEvent blocks the calling thread
  /// until space frees up (another thread must pump or crash the
  /// target) — the host boundary is the only place that may wait.
  void setQueueLimit(uint32_t MaxQueue,
                     OverflowPolicy Policy = OverflowPolicy::Error);

  /// Fault model: kills a live machine in place (the process died; see
  /// Executor::crashMachine). Pending queue contents are lost; sends to
  /// it silently vanish. Wakes any addEvent blocked on its queue.
  bool crashMachine(int32_t Id);

  /// Restarts a crashed machine with the variable initializers of its
  /// original creation (host-created machines; machines created by `new`
  /// restart with default-initialized variables). Its entry statement
  /// runs to completion before this returns, like createMachine.
  bool restartMachine(int32_t Id);

  /// Current state name of machine \p Id (top of its call stack), or ""
  /// when dead; handy for tests and demos.
  std::string currentStateName(int32_t Id) const;

  /// Reads a machine variable by name (⊥ when unknown).
  Value readVar(int32_t Id, const std::string &VarName) const;

  const Config &config() const { return Cfg; }
  /// Current statistics; while a reactor runs, its live counters are
  /// folded in (the returned reference stays valid until the next call).
  const HostStats &stats() const;
  Executor &executor() { return Exec; }

  /// Attaches structured-event tracing (see obs/Trace.h): opens one
  /// sink on \p Recorder and records every send/dequeue/raise/new/
  /// state/halt/error the pump executes, plus a slice marker per
  /// run-to-completion slice. The host's entry points are serialized
  /// by PumpMutex, so a single sink is safe even when multiple "OS"
  /// threads drive the host. The recorder must outlive the host (or
  /// call detachTrace() first).
  void attachTrace(obs::TraceRecorder &Recorder);
  void detachTrace();

  /// Writes the host counters into \p Registry as p_host_* metrics,
  /// including the enqueue→dispatch latency histogram
  /// (p_host_dispatch_latency_seconds), the queue-depth high-water
  /// gauge, and the events/sec rate.
  void exportMetrics(obs::MetricsRegistry &Registry) const;

  /// Enqueue→dispatch latency of host-delivered events: the wall-clock
  /// time between addEvent placing an event on the target queue and
  /// the pump dequeuing it. Matching is FIFO per (target, event) pair,
  /// so an internally re-sent identical event can be credited the host
  /// enqueue's timestamp — best-effort attribution, like any sampler.
  const obs::Histogram &dispatchLatency() const { return DispatchLatency; }

  /// Accepted deliveries per wall-clock second since construction.
  double eventsPerSecond() const;

  /// Per-machine-id queue-depth high-water marks (index = machine id;
  /// ids the host never saw an enqueue for read 0).
  std::vector<uint32_t> queueHighWater() const;

  const CompiledProgram &program() const { return Prog; }

private:
  /// Runs the scheduler stack to quiescence (the d = 0 causal
  /// discipline; see Host.cpp).
  void drain();
  /// Puts machine \p Id on top of the scheduler stack if absent.
  void arm(int32_t Id);
  /// Delivers events a fault plan postponed (PumpMutex held).
  void flushDelayed();
  /// Enqueues + pumps one delivery (PumpMutex held); the shared tail of
  /// addEvent and the duplicate/delayed fault paths.
  bool deliver(int32_t Target, int32_t Event, const Value &Arg);
  /// Records a host enqueue for latency matching and updates the queue
  /// high-water marks (PumpMutex held).
  void noteEnqueue(int32_t Target, int32_t Event);
  /// Folds machine \p Id's current queue depth into the high-water
  /// marks (PumpMutex held).
  void noteQueueDepth(int32_t Id);
  /// Dequeue-observer body: closes the oldest matching pending enqueue
  /// into DispatchLatency (runs inside the pump, PumpMutex held).
  void noteDequeue(int32_t Machine, int32_t Event);
  double eventsPerSecondLocked() const;
  /// addEvent's reactor-mode body: lock-free acceptance path (no
  /// PumpMutex, so producers scale).
  bool addEventReactor(int32_t Target, int32_t Event, const Value &Arg);
  /// Stats plus the running reactor's counters (PumpMutex held).
  HostStats foldedStatsLocked() const;

  /// HostStats fields touched by concurrent reactor-mode producers go
  /// through these (plain fields otherwise, so serial stays free).
  static void bumpStat(uint64_t &F, uint64_t N = 1) {
    std::atomic_ref<uint64_t>(F).fetch_add(N, std::memory_order_relaxed);
  }
  static uint64_t readStat(const uint64_t &F) {
    return std::atomic_ref<uint64_t>(const_cast<uint64_t &>(F))
        .load(std::memory_order_relaxed);
  }

  const CompiledProgram &Prog;
  const HostOptions Opt;
  Executor Exec;
  Config Cfg;
  HostStats Stats;
  mutable HostStats Folded; ///< stats() scratch (PumpMutex held).
  std::vector<void *> Contexts;
  std::deque<int32_t> Sched; ///< The d = 0 scheduler stack.
  std::mt19937_64 Rng;
  std::mutex RngMu; ///< Reactor workers share the choice provider.
  mutable std::mutex PumpMutex; ///< Serializes host entry points.
  /// Wakes addEvent calls blocked on a full queue (OverflowPolicy::
  /// Block) whenever a pump ran or a machine crashed/restarted.
  std::condition_variable QueueCv;

  /// Records the calling thread's verdict for its most recent
  /// createMachine/addEvent on *this* host (thread-local storage; see
  /// Host.cpp). A shared field would race: with the reactor on, two
  /// threads adding events concurrently would each read whichever
  /// verdict last won the race instead of their own.
  void setLastError(HostError E) const;
  FaultPlan Plan;
  bool HasPlan = false;
  uint64_t AddEventCalls = 0; ///< Accepted calls; the plan's ordinal.
  std::mutex PlanMu; ///< Guards Plan/AddEventCalls in reactor mode.
  /// Deliveries postponed by FaultKind::DelayEvent (deadline = now) and
  /// addEventAfter timers. Serial mode delivers due entries after the
  /// next pump (flushDelayed == advance the wheel); reactor mode
  /// delivers from the tick thread.
  TimerWheel Wheel;
  std::unique_ptr<Reactor> R;
  std::atomic<bool> ReactorOn{false};
  /// Original variable initializers per host-created machine id, used
  /// by restartMachine.
  std::vector<std::vector<std::pair<int32_t, Value>>> CreationInits;

  /// A host enqueue whose dequeue has not been observed yet.
  struct PendingDispatch {
    int32_t Target;
    int32_t Event;
    std::chrono::steady_clock::time_point T;
  };
  /// FIFO of open enqueues, capped (oldest dropped) so a machine that
  /// never drains cannot grow it without bound.
  std::vector<PendingDispatch> Pending;
  obs::Histogram DispatchLatency;
  std::vector<uint32_t> QueueHighWater; ///< Index = machine id.
  const std::chrono::steady_clock::time_point StartTime =
      std::chrono::steady_clock::now();
};

} // namespace p

#endif // P_HOST_HOST_H
