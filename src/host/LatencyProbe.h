//===- host/LatencyProbe.h - Canned live host run for reports --------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained live Host run whose metrics a run report can cite:
/// the Section 4.1 Switch-and-LED driver (ghost-erased), pumped through
/// a fixed number of on/ok/off/ok cycles. Every bench that writes a
/// `--report` uses this probe so the report's host section — dispatch
/// latency p50/p99, queue high-water, events/sec — comes from a real
/// pump, not synthetic numbers.
///
//===----------------------------------------------------------------------===//

#ifndef P_HOST_LATENCYPROBE_H
#define P_HOST_LATENCYPROBE_H

#include "host/Host.h"
#include "pir/Program.h"

#include <memory>

namespace p {

namespace obs {
class RunReport;
} // namespace obs

/// Compiles the erased SwitchLed driver, creates one instance, and
/// pumps \p Cycles switch cycles through addEvent. The probe owns both
/// the program and the host (the host keeps a reference into the
/// program, so their lifetimes must be tied).
class HostLatencyProbe {
public:
  explicit HostLatencyProbe(int Cycles = 500);

  const Host &host() const { return *H; }
  Host &host() { return *H; }

private:
  CompiledProgram Prog;
  std::unique_ptr<Host> H;
};

/// The shared `--report` tail of every bench/example: runs a probe,
/// attaches its host section and a p_host_* metrics dump to \p Report,
/// and writes `<Base>.{json,html}` (schema-validated before writing).
/// Prints the reason to stderr and returns false on failure — callers
/// exit nonzero, so a report that got written is valid by construction.
bool writeReportWithProbe(obs::RunReport &Report, const std::string &Base);

} // namespace p

#endif // P_HOST_LATENCYPROBE_H
