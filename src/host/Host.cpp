//===- host/Host.cpp ----------------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The host's event pump deliberately follows the causal discipline of
// the delaying scheduler with d = 0 (Section 5): a stack of runnable
// machines where `new` and `send` push the child/receiver on top, so
// the receiver of an event runs next. This makes the paper's claim —
// "for d = 0, the real part of schedules explored by the delay bounded
// scheduler are exactly the same as the one executed by the P runtime"
// — literally true of this implementation, and our property tests
// compare the two executions step by step.
//
//===----------------------------------------------------------------------===//

#include "host/Host.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>

using namespace p;

const char *p::hostErrorName(HostError E) {
  switch (E) {
  case HostError::None:
    return "none";
  case HostError::UnknownMachine:
    return "unknown-machine";
  case HostError::UnknownEvent:
    return "unknown-event";
  case HostError::DeadTarget:
    return "dead-target";
  }
  return "unknown";
}

Host::Host(const CompiledProgram &Prog, HostOptions Options)
    : Prog(Prog), Opt(Options), Exec(Prog), Rng(Options.Seed),
      DispatchLatency(obs::exponentialBounds(1e-7, 4, 16)) {
  // Reactor workers share the provider, hence the lock; serial mode
  // pays one uncontended acquire per `*`.
  Exec.setChoiceProvider([this] {
    std::lock_guard<std::mutex> Lk(RngMu);
    return (Rng() & 1) != 0;
  });
  // Serial mode: fires inside the pump with PumpMutex held, so the
  // pending list needs no lock of its own. Reactor mode: fires on the
  // owning worker, which routes to its per-machine slot state.
  Exec.addDequeueObserver([this](int32_t Machine, int32_t Event) {
    if (ReactorOn.load(std::memory_order_acquire)) {
      R->onDequeue(Machine, Event);
      return;
    }
    noteDequeue(Machine, Event);
  });
}

namespace {
/// The last API verdict, per (thread, host). A plain member — even an
/// atomic one — races semantically: with the reactor running, two
/// threads calling addEvent concurrently would each read whichever
/// verdict last won the store race instead of their own call's.
struct ThreadErrorSlot {
  const void *H = nullptr;
  HostError E = HostError::None;
};
thread_local ThreadErrorSlot LastErrorSlot;
} // namespace

void Host::setLastError(HostError E) const {
  LastErrorSlot.H = this;
  LastErrorSlot.E = E;
}

HostError Host::lastHostError() const {
  // A slot written by a call on a different host — or never written on
  // this thread — reads as None.
  return LastErrorSlot.H == this ? LastErrorSlot.E : HostError::None;
}

Host::~Host() {
  if (R)
    R->stop();
  // Best-effort: keep a future host constructed at this address from
  // inheriting this thread's stale verdict.
  if (LastErrorSlot.H == this)
    LastErrorSlot = ThreadErrorSlot{};
}

void Host::noteEnqueue(int32_t Target, int32_t Event) {
  if (Pending.size() >= Opt.LatencyPendingCap) {
    Pending.erase(Pending.begin());
    ++Stats.LatencyDropped;
  }
  Pending.push_back({Target, Event, std::chrono::steady_clock::now()});
  noteQueueDepth(Target);
}

void Host::noteQueueDepth(int32_t Id) {
  if (Id < 0 || Id >= static_cast<int32_t>(Cfg.Machines.size()))
    return;
  if (QueueHighWater.size() < Cfg.Machines.size())
    QueueHighWater.resize(Cfg.Machines.size(), 0);
  const auto Depth =
      static_cast<uint32_t>(Cfg.Machines[Id]->Queue.size());
  QueueHighWater[Id] = std::max(QueueHighWater[Id], Depth);
  Stats.QueueDepthHighWater =
      std::max<uint64_t>(Stats.QueueDepthHighWater, Depth);
}

void Host::noteDequeue(int32_t Machine, int32_t Event) {
  for (auto It = Pending.begin(); It != Pending.end(); ++It) {
    if (It->Target != Machine || It->Event != Event)
      continue;
    DispatchLatency.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      It->T)
            .count());
    Pending.erase(It);
    return;
  }
}

void Host::registerForeign(const std::string &Machine,
                           const std::string &Fun, ForeignFn Fn) {
  Exec.registerForeign(Machine, Fun, std::move(Fn));
}

void Host::drain() {
  while (!Cfg.hasError() && !Sched.empty()) {
    int32_t Id = Sched.front();
    if (!Exec.isEnabled(Cfg, Id)) {
      Sched.pop_front();
      continue;
    }
    ++Stats.SlicesRun;
    if (obs::TraceSink *T = Exec.traceSink())
      T->record(obs::TraceKind::Slice, Id);
    Executor::StepResult R = Exec.step(Cfg, Id);
    Contexts.resize(Cfg.Machines.size(), nullptr);
    switch (R.Outcome) {
    case Executor::StepOutcome::SchedulingPoint: {
      noteQueueDepth(R.Other); // Internal sends deepen queues too.
      bool InSched =
          std::find(Sched.begin(), Sched.end(), R.Other) != Sched.end();
      if (!InSched)
        Sched.push_front(R.Other);
      break;
    }
    case Executor::StepOutcome::Blocked:
      Sched.pop_front();
      break;
    case Executor::StepOutcome::Halted:
      Sched.erase(std::remove(Sched.begin(), Sched.end(), Id), Sched.end());
      break;
    case Executor::StepOutcome::ChoicePoint:
      // Unreachable: the host installs a choice provider.
      break;
    case Executor::StepOutcome::ForeignCall:
      // Unreachable: the host never enables foreign fault points.
      break;
    case Executor::StepOutcome::Error:
      return;
    }
  }
}

void Host::arm(int32_t Id) {
  if (std::find(Sched.begin(), Sched.end(), Id) == Sched.end())
    Sched.push_front(Id);
}

int32_t Host::createMachine(
    const std::string &MachineName,
    const std::vector<std::pair<std::string, Value>> &Inits) {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  int MachineIndex = Prog.findMachine(MachineName);
  if (MachineIndex < 0) {
    setLastError(HostError::UnknownMachine);
    return -1;
  }
  const MachineInfo &Info = Prog.Machines[MachineIndex];

  std::vector<std::pair<int32_t, Value>> Resolved;
  for (const auto &[Name, V] : Inits) {
    for (size_t I = 0; I != Info.Vars.size(); ++I)
      if (Info.Vars[I].Name == Name)
        Resolved.emplace_back(static_cast<int32_t>(I), V);
  }

  // The executor appends under the reactor's structural mutex when one
  // is installed; the create hook builds the mailbox slot and schedules
  // the entry statement on a worker.
  int32_t Id = Exec.createMachine(Cfg, MachineIndex, Resolved);
  if (Id < 0) // ResourceExhausted: reactor machine table full.
    return -1;
  if (ReactorOn.load(std::memory_order_acquire)) {
    CreationInits[Id] = Resolved; // Pre-sized by startReactor.
    bumpStat(Stats.MachinesCreated);
    setLastError(HostError::None);
    return Id;
  }
  Contexts.resize(Cfg.Machines.size(), nullptr);
  CreationInits.resize(Cfg.Machines.size());
  CreationInits[Id] = Resolved;
  ++Stats.MachinesCreated;
  setLastError(HostError::None);
  arm(Id);
  drain();
  QueueCv.notify_all();
  return Id;
}

void Host::flushDelayed() {
  // Advance the wheel and deliver what fell due (delay faults schedule
  // with deadline = now, so "flushed after the next pump" still holds;
  // addEventAfter timers wait for their real deadline).
  std::vector<TimerEntry> Due;
  Wheel.advanceTo(std::chrono::steady_clock::now(), Due);
  for (TimerEntry &E : Due) {
    ++Stats.TimersExpired;
    if (Cfg.hasError())
      break; // Fail-stop; the rest stays undelivered, like before.
    deliver(E.Target, E.Event, E.Arg);
  }
}

bool Host::deliver(int32_t Target, int32_t Event, const Value &Arg) {
  if (!Exec.enqueueEvent(Cfg, Target, Event, Arg))
    return false;
  noteEnqueue(Target, Event);
  arm(Target);
  drain();
  QueueCv.notify_all();
  return !Cfg.hasError();
}

bool Host::addEvent(int32_t Target, const std::string &EventName,
                    Value Arg) {
  if (ReactorOn.load(std::memory_order_acquire)) {
    int Event = Prog.findEvent(EventName);
    if (Event < 0) {
      setLastError(HostError::UnknownEvent);
      return false;
    }
    return addEventReactor(Target, Event, Arg);
  }
  std::unique_lock<std::mutex> Lock(PumpMutex);
  int Event = Prog.findEvent(EventName);
  if (Event < 0) {
    setLastError(HostError::UnknownEvent);
    return false;
  }
  // Classify API misuse and reject it before the semantics can raise an
  // error config: the caller ("OS") naming a bad target is its mistake,
  // not a P program error, so the configuration stays healthy and the
  // boolean result no longer conflates the two.
  if (Target < 0 || Target >= static_cast<int32_t>(Cfg.Machines.size())) {
    setLastError(HostError::UnknownMachine);
    return false;
  }
  if (!Cfg.Machines[Target]->Alive && !Cfg.Machines[Target]->Crashed) {
    setLastError(HostError::DeadTarget);
    return false;
  }
  setLastError(HostError::None);

  // Back-pressure (OverflowPolicy::Block): wait until the full queue
  // has room, the target dies, or the system errors. Another thread
  // must pump (its drain notifies) — the paper's run-to-completion
  // discipline means this thread cannot drain the queue itself.
  if (Cfg.MaxQueue != 0 && Cfg.Overflow == OverflowPolicy::Block) {
    auto WouldBlock = [&] {
      if (Cfg.hasError() || !Cfg.isLive(Target))
        return false;
      const MachineState &M = *Cfg.Machines[Target];
      if (M.Queue.size() < Cfg.MaxQueue)
        return false;
      for (const auto &[E, V] : M.Queue) // ⊎ no-op needs no room.
        if (E == Event && V == Arg)
          return false;
      return true;
    };
    QueueCv.wait(Lock, [&] { return !WouldBlock(); });
  }

  ++AddEventCalls;
  if (HasPlan) {
    FaultAction A = Plan.decide(AddEventCalls, Event);
    if (A.Inject && Cfg.isLive(Target)) {
      obs::TraceSink *T = Exec.traceSink();
      switch (A.Kind) {
      case FaultKind::DropEvent:
        // The wire ate it: the call "succeeds" and nothing arrives.
        ++Stats.EventsDropped;
        if (T)
          T->record(obs::TraceKind::FaultInjected, Target,
                    static_cast<int32_t>(FaultKind::DropEvent), Event);
        return !Cfg.hasError();
      case FaultKind::DuplicateEvent: {
        // Delivered twice: once now, once after the first pump (the
        // run-to-completion discipline empties the queue in between,
        // so the second copy is not a ⊎ no-op).
        ++Stats.EventsDuplicated;
        if (T)
          T->record(obs::TraceKind::FaultInjected, Target,
                    static_cast<int32_t>(FaultKind::DuplicateEvent),
                    Event);
        ++Stats.EventsDelivered;
        bool Ok = deliver(Target, Event, Arg);
        if (Ok && Cfg.isLive(Target))
          Ok = deliver(Target, Event, Arg);
        flushDelayed();
        return Ok && !Cfg.hasError();
      }
      case FaultKind::DelayEvent: {
        ++Stats.EventsDelayed;
        ++Stats.TimersScheduled;
        if (T)
          T->record(obs::TraceKind::FaultInjected, Target,
                    static_cast<int32_t>(FaultKind::DelayEvent), Event);
        TimerEntry D;
        D.Target = Target;
        D.Event = Event;
        D.Arg = Arg;
        D.Deadline = std::chrono::steady_clock::now();
        Wheel.schedule(std::move(D));
        return !Cfg.hasError();
      }
      case FaultKind::CrashMachine:
        // The process died before the delivery: both vanish.
        ++Stats.MachinesCrashed;
        Exec.crashMachine(Cfg, Target);
        Sched.erase(std::remove(Sched.begin(), Sched.end(), Target),
                    Sched.end());
        // Its queue is gone: open enqueues can never be dequeued.
        Pending.erase(std::remove_if(Pending.begin(), Pending.end(),
                                     [&](const PendingDispatch &P) {
                                       return P.Target == Target;
                                     }),
                      Pending.end());
        QueueCv.notify_all();
        return !Cfg.hasError();
      case FaultKind::RestartMachine:
      case FaultKind::FailForeign:
        break; // Not produced by FaultPlan::decide.
      }
    }
  }

  if (!Exec.enqueueEvent(Cfg, Target, Event, Arg))
    return false;
  ++Stats.EventsDelivered;
  noteEnqueue(Target, Event);
  arm(Target);
  drain();
  QueueCv.notify_all();
  flushDelayed();
  return !Cfg.hasError();
}

bool Host::addEventReactor(int32_t Target, int32_t Event,
                           const Value &Arg) {
  if (Target < 0 || Target >= R->machineCount()) {
    setLastError(HostError::UnknownMachine);
    return false;
  }
  Reactor::Life L = R->life(Target);
  if (L == Reactor::Life::Dead) {
    setLastError(HostError::DeadTarget);
    return false;
  }
  setLastError(HostError::None);
  std::atomic_ref<uint64_t>(AddEventCalls)
      .fetch_add(1, std::memory_order_relaxed);
  if (HasPlan) {
    FaultAction A;
    {
      std::lock_guard<std::mutex> Lk(PlanMu);
      A = Plan.decide(
          std::atomic_ref<uint64_t>(AddEventCalls)
              .load(std::memory_order_relaxed),
          Event);
    }
    if (A.Inject && L == Reactor::Life::Live) {
      switch (A.Kind) {
      case FaultKind::DropEvent:
        bumpStat(Stats.EventsDropped);
        return !Cfg.hasError();
      case FaultKind::DuplicateEvent: {
        bumpStat(Stats.EventsDuplicated);
        bumpStat(Stats.EventsDelivered);
        auto Now = std::chrono::steady_clock::now();
        R->postEvent(Target, Event, Arg, Now);
        // Unlike the serial pump (which empties the queue between the
        // two copies), the second copy may still coalesce under ⊎ if
        // the first has not been dequeued by transfer time.
        R->postEvent(Target, Event, Arg, Now);
        return !Cfg.hasError();
      }
      case FaultKind::DelayEvent: {
        bumpStat(Stats.EventsDelayed);
        bumpStat(Stats.TimersScheduled);
        TimerEntry D;
        D.Target = Target;
        D.Event = Event;
        D.Arg = Arg;
        D.Deadline = std::chrono::steady_clock::now();
        Wheel.schedule(std::move(D));
        R->timerArmed();
        return !Cfg.hasError();
      }
      case FaultKind::CrashMachine:
        bumpStat(Stats.MachinesCrashed);
        R->postCrash(Target);
        return !Cfg.hasError();
      case FaultKind::RestartMachine:
      case FaultKind::FailForeign:
        break; // Not produced by FaultPlan::decide.
      }
    }
  }
  bumpStat(Stats.EventsDelivered);
  R->postEvent(Target, Event, Arg, std::chrono::steady_clock::now());
  return !Cfg.hasError();
}

bool Host::addEventAfter(int32_t Target, const std::string &EventName,
                         Value Arg, std::chrono::nanoseconds Delay) {
  const bool OnReactor = ReactorOn.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> Lock(PumpMutex, std::defer_lock);
  if (!OnReactor)
    Lock.lock();
  int Event = Prog.findEvent(EventName);
  if (Event < 0) {
    setLastError(HostError::UnknownEvent);
    return false;
  }
  if (OnReactor) {
    if (Target < 0 || Target >= R->machineCount()) {
      setLastError(HostError::UnknownMachine);
      return false;
    }
    if (R->life(Target) == Reactor::Life::Dead) {
      setLastError(HostError::DeadTarget);
      return false;
    }
  } else {
    if (Target < 0 ||
        Target >= static_cast<int32_t>(Cfg.Machines.size())) {
      setLastError(HostError::UnknownMachine);
      return false;
    }
    if (!Cfg.Machines[Target]->Alive && !Cfg.Machines[Target]->Crashed) {
      setLastError(HostError::DeadTarget);
      return false;
    }
  }
  setLastError(HostError::None);
  TimerEntry E;
  E.Target = Target;
  E.Event = Event;
  E.Arg = std::move(Arg);
  E.Deadline = std::chrono::steady_clock::now() + Delay;
  Wheel.schedule(std::move(E));
  if (OnReactor) {
    bumpStat(Stats.TimersScheduled);
    R->timerArmed();
  } else {
    ++Stats.TimersScheduled;
  }
  return true;
}

bool Host::startReactor(ReactorOptions Options) {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  if (R)
    return false;
  // Tracing is serial-mode only: sinks are single-writer and workers
  // would race on one.
  Exec.setTraceSink(nullptr);
  Sched.clear(); // The reactor schedules enabled machines itself.
  size_t MaxM = std::max(Options.MaxMachines, Cfg.Machines.size());
  Options.MaxMachines = MaxM;
  // Pre-size host bookkeeping indexed by machine id: worker-side `new`
  // must not force a resize under readers.
  Contexts.resize(MaxM, nullptr);
  CreationInits.resize(MaxM);
  R = std::make_unique<Reactor>(Exec, Cfg, Wheel, DispatchLatency,
                                Options);
  ReactorOn.store(true, std::memory_order_release);
  R->start();
  if (!Wheel.empty())
    R->timerArmed(); // Timers scheduled while serial carry over.
  return true;
}

bool Host::stopReactor() {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  if (!R)
    return true;
  R->stop(); // Joins every worker; mailboxes fold into the queues.
  Stats.SlicesRun += R->slicesRun();
  Stats.LatencyDropped += R->latencyDropped();
  Stats.TimersExpired += R->timersExpired();
  Stats.MailboxSpills += R->mailboxSpills();
  Stats.QueueDepthHighWater =
      std::max(Stats.QueueDepthHighWater, R->queueHighWaterMax());
  if (QueueHighWater.size() < Cfg.Machines.size())
    QueueHighWater.resize(Cfg.Machines.size(), 0);
  for (int32_t Id = 0, N = R->machineCount(); Id != N; ++Id)
    QueueHighWater[Id] = std::max(QueueHighWater[Id], R->queueHighWater(Id));
  ReactorOn.store(false, std::memory_order_release);
  R.reset();
  // Resume the serial pump on whatever the folded mailboxes left.
  for (int32_t Id = static_cast<int32_t>(Cfg.Machines.size()); Id-- > 0;)
    if (Exec.isEnabled(Cfg, Id))
      arm(Id);
  drain();
  QueueCv.notify_all();
  return !Cfg.hasError();
}

bool Host::runToCompletion() {
  if (ReactorOn.load(std::memory_order_acquire)) {
    // Deliver every already-due timer, then wait for the workers to
    // drain all accepted events (the reactor-mode barrier).
    R->flushDueTimers();
    R->waitQuiesce();
    return !Cfg.hasError();
  }
  std::lock_guard<std::mutex> Lock(PumpMutex);
  flushDelayed();
  for (int32_t Id = static_cast<int32_t>(Cfg.Machines.size()); Id-- > 0;)
    if (Exec.isEnabled(Cfg, Id))
      arm(Id);
  drain();
  QueueCv.notify_all();
  return !Cfg.hasError();
}

void Host::setFaultPlan(FaultPlan P) {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  Plan = std::move(P);
  Plan.reset();
  HasPlan = Plan.enabled();
}

void Host::setQueueLimit(uint32_t MaxQueue, OverflowPolicy Policy) {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  Cfg.MaxQueue = MaxQueue;
  Cfg.Overflow = Policy;
  QueueCv.notify_all();
}

bool Host::crashMachine(int32_t Id) {
  if (ReactorOn.load(std::memory_order_acquire)) {
    if (R->life(Id) != Reactor::Life::Live)
      return false;
    bumpStat(Stats.MachinesCrashed);
    // Asynchronous fail-stop: the owning worker executes the crash
    // (cancels timers, drains the mailbox, releases blocked senders).
    R->postCrash(Id);
    return true;
  }
  std::lock_guard<std::mutex> Lock(PumpMutex);
  if (!Cfg.isLive(Id))
    return false;
  Exec.crashMachine(Cfg, Id);
  Sched.erase(std::remove(Sched.begin(), Sched.end(), Id), Sched.end());
  ++Stats.MachinesCrashed;
  Wheel.cancelFor(Id); // Fail-stop cancels its pending timers too.
  Pending.erase(std::remove_if(Pending.begin(), Pending.end(),
                               [&](const PendingDispatch &P) {
                                 return P.Target == Id;
                               }),
                Pending.end());
  QueueCv.notify_all(); // A blocked send to this queue can stop waiting.
  return true;
}

double Host::eventsPerSecondLocked() const {
  const double Secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    StartTime)
          .count();
  if (Secs <= 0)
    return 0;
  return static_cast<double>(readStat(Stats.EventsDelivered)) / Secs;
}

double Host::eventsPerSecond() const {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  return eventsPerSecondLocked();
}

HostStats Host::foldedStatsLocked() const {
  // Field-by-field atomic reads: reactor-mode producers bump these
  // concurrently through bumpStat.
  HostStats S;
  S.EventsDelivered = readStat(Stats.EventsDelivered);
  S.SlicesRun = readStat(Stats.SlicesRun);
  S.MachinesCreated = readStat(Stats.MachinesCreated);
  S.EventsDropped = readStat(Stats.EventsDropped);
  S.EventsDuplicated = readStat(Stats.EventsDuplicated);
  S.EventsDelayed = readStat(Stats.EventsDelayed);
  S.MachinesCrashed = readStat(Stats.MachinesCrashed);
  S.MachinesRestarted = readStat(Stats.MachinesRestarted);
  S.QueueDepthHighWater = readStat(Stats.QueueDepthHighWater);
  S.LatencyDropped = readStat(Stats.LatencyDropped);
  S.MailboxSpills = readStat(Stats.MailboxSpills);
  S.TimersScheduled = readStat(Stats.TimersScheduled);
  S.TimersExpired = readStat(Stats.TimersExpired);
  if (R) {
    S.SlicesRun += R->slicesRun();
    S.LatencyDropped += R->latencyDropped();
    S.TimersExpired += R->timersExpired();
    S.MailboxSpills += R->mailboxSpills();
    S.QueueDepthHighWater =
        std::max(S.QueueDepthHighWater, R->queueHighWaterMax());
  }
  return S;
}

const HostStats &Host::stats() const {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  Folded = foldedStatsLocked();
  return Folded;
}

std::vector<uint32_t> Host::queueHighWater() const {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  std::vector<uint32_t> Out = QueueHighWater;
  if (R) {
    int32_t N = R->machineCount();
    Out.resize(std::max<size_t>(Out.size(), N), 0);
    for (int32_t Id = 0; Id != N; ++Id)
      Out[Id] = std::max(Out[Id], R->queueHighWater(Id));
    return Out;
  }
  Out.resize(Cfg.Machines.size(), 0);
  return Out;
}

bool Host::restartMachine(int32_t Id) {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  const std::vector<std::pair<int32_t, Value>> NoInits;
  const auto &Inits = Id >= 0 &&
                              Id < static_cast<int32_t>(CreationInits.size())
                          ? CreationInits[Id]
                          : NoInits;
  if (ReactorOn.load(std::memory_order_acquire)) {
    // Requires the crash to have been processed (postCrash is async;
    // runToCompletion between crash and restart makes it determinate).
    if (!R->restartMachine(Id, Inits))
      return false;
    bumpStat(Stats.MachinesRestarted);
    return !Cfg.hasError();
  }
  if (!Exec.restartMachine(Cfg, Id, Inits))
    return false;
  ++Stats.MachinesRestarted;
  arm(Id);
  drain();
  QueueCv.notify_all();
  return !Cfg.hasError();
}

void *Host::getContext(int32_t Id) const {
  if (Id < 0 || Id >= static_cast<int32_t>(Contexts.size()))
    return nullptr;
  return Contexts[Id];
}

void Host::setContext(int32_t Id, void *Context) {
  if (Id >= 0 && Id < static_cast<int32_t>(Contexts.size()))
    Contexts[Id] = Context;
}

std::string Host::currentStateName(int32_t Id) const {
  if (!Cfg.isLive(Id))
    return "";
  const MachineState &M = *Cfg.Machines[Id];
  if (M.Frames.empty())
    return "";
  return Prog.Machines[M.MachineIndex].States[M.Frames.back().State].Name;
}

void Host::attachTrace(obs::TraceRecorder &Recorder) {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  Exec.setTraceSink(&Recorder.openSink());
}

void Host::detachTrace() {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  Exec.setTraceSink(nullptr);
}

void Host::exportMetrics(obs::MetricsRegistry &Registry) const {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  const HostStats S = foldedStatsLocked();
  Registry.counter("p_host_events_total", "SMAddEvent calls accepted")
      .inc(S.EventsDelivered);
  Registry
      .counter("p_host_slices_total", "Run-to-completion slices executed")
      .inc(S.SlicesRun);
  Registry.counter("p_host_machines_total", "Machines created")
      .inc(S.MachinesCreated);
  if (!R) // Racy against worker-side `new` while the reactor runs.
    Registry.gauge("p_host_machines_live", "Machines currently alive")
        .set(static_cast<double>(
            std::count_if(Cfg.Machines.begin(), Cfg.Machines.end(),
                          [](const CowMachine &M) { return M->Alive; })));
  Registry
      .counter("p_host_faults_dropped_total",
               "SMAddEvent calls swallowed by the fault plan")
      .inc(S.EventsDropped);
  Registry
      .counter("p_host_faults_duplicated_total",
               "SMAddEvent calls delivered twice by the fault plan")
      .inc(S.EventsDuplicated);
  Registry
      .counter("p_host_faults_delayed_total",
               "Deliveries deferred to a later pump by the fault plan")
      .inc(S.EventsDelayed);
  Registry
      .counter("p_host_faults_crashed_total",
               "Machines crashed (fault plan or crashMachine)")
      .inc(S.MachinesCrashed);
  Registry.counter("p_host_restarts_total", "Machines restarted")
      .inc(S.MachinesRestarted);
  Registry
      .counter("p_host_overflow_dropped_total",
               "Events discarded by OverflowPolicy::DropNewest")
      .inc(std::atomic_ref<uint64_t>(
               const_cast<uint64_t &>(Cfg.OverflowDropped))
               .load(std::memory_order_relaxed));
  Registry
      .counter("p_host_latency_dropped_total",
               "Dispatch-latency samples evicted past the pending cap")
      .inc(S.LatencyDropped);
  Registry
      .counter("p_host_mailbox_spills_total",
               "Mailbox ring overflows that took the spill list")
      .inc(S.MailboxSpills);
  Registry
      .counter("p_host_timers_scheduled_total",
               "Timer-wheel entries scheduled")
      .inc(S.TimersScheduled);
  Registry
      .counter("p_host_timers_expired_total",
               "Timer-wheel entries expired and delivered")
      .inc(S.TimersExpired);
  Registry
      .gauge("p_host_queue_depth_highwater",
             "Deepest any machine queue ever got")
      .set(static_cast<double>(S.QueueDepthHighWater));
  Registry
      .gauge("p_host_events_per_sec",
             "Accepted deliveries per wall-clock second")
      .set(eventsPerSecondLocked());
  Registry
      .histogram("p_host_dispatch_latency_seconds",
                 DispatchLatency.bounds(),
                 "Enqueue-to-dispatch latency of host-delivered events")
      .merge(DispatchLatency);
}

Value Host::readVar(int32_t Id, const std::string &VarName) const {
  if (!Cfg.isLive(Id))
    return Value::null();
  const MachineState &M = *Cfg.Machines[Id];
  const MachineInfo &Info = Prog.Machines[M.MachineIndex];
  for (size_t I = 0; I != Info.Vars.size(); ++I)
    if (Info.Vars[I].Name == VarName)
      return M.Vars[I];
  return Value::null();
}
