//===- host/Host.cpp ----------------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The host's event pump deliberately follows the causal discipline of
// the delaying scheduler with d = 0 (Section 5): a stack of runnable
// machines where `new` and `send` push the child/receiver on top, so
// the receiver of an event runs next. This makes the paper's claim —
// "for d = 0, the real part of schedules explored by the delay bounded
// scheduler are exactly the same as the one executed by the P runtime"
// — literally true of this implementation, and our property tests
// compare the two executions step by step.
//
//===----------------------------------------------------------------------===//

#include "host/Host.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>

using namespace p;

Host::Host(const CompiledProgram &Prog, uint64_t Seed)
    : Prog(Prog), Exec(Prog), Rng(Seed) {
  Exec.setChoiceProvider([this] { return (Rng() & 1) != 0; });
}

void Host::registerForeign(const std::string &Machine,
                           const std::string &Fun, ForeignFn Fn) {
  Exec.registerForeign(Machine, Fun, std::move(Fn));
}

void Host::drain() {
  while (!Cfg.hasError() && !Sched.empty()) {
    int32_t Id = Sched.front();
    if (!Exec.isEnabled(Cfg, Id)) {
      Sched.pop_front();
      continue;
    }
    ++Stats.SlicesRun;
    if (obs::TraceSink *T = Exec.traceSink())
      T->record(obs::TraceKind::Slice, Id);
    Executor::StepResult R = Exec.step(Cfg, Id);
    Contexts.resize(Cfg.Machines.size(), nullptr);
    switch (R.Outcome) {
    case Executor::StepOutcome::SchedulingPoint: {
      bool InSched =
          std::find(Sched.begin(), Sched.end(), R.Other) != Sched.end();
      if (!InSched)
        Sched.push_front(R.Other);
      break;
    }
    case Executor::StepOutcome::Blocked:
      Sched.pop_front();
      break;
    case Executor::StepOutcome::Halted:
      Sched.erase(std::remove(Sched.begin(), Sched.end(), Id), Sched.end());
      break;
    case Executor::StepOutcome::ChoicePoint:
      // Unreachable: the host installs a choice provider.
      break;
    case Executor::StepOutcome::Error:
      return;
    }
  }
}

void Host::arm(int32_t Id) {
  if (std::find(Sched.begin(), Sched.end(), Id) == Sched.end())
    Sched.push_front(Id);
}

int32_t Host::createMachine(
    const std::string &MachineName,
    const std::vector<std::pair<std::string, Value>> &Inits) {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  int MachineIndex = Prog.findMachine(MachineName);
  if (MachineIndex < 0)
    return -1;
  const MachineInfo &Info = Prog.Machines[MachineIndex];

  std::vector<std::pair<int32_t, Value>> Resolved;
  for (const auto &[Name, V] : Inits) {
    for (size_t I = 0; I != Info.Vars.size(); ++I)
      if (Info.Vars[I].Name == Name)
        Resolved.emplace_back(static_cast<int32_t>(I), V);
  }

  int32_t Id = Exec.createMachine(Cfg, MachineIndex, Resolved);
  Contexts.resize(Cfg.Machines.size(), nullptr);
  ++Stats.MachinesCreated;
  arm(Id);
  drain();
  return Id;
}

bool Host::addEvent(int32_t Target, const std::string &EventName,
                    Value Arg) {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  int Event = Prog.findEvent(EventName);
  if (Event < 0)
    return false;
  if (!Exec.enqueueEvent(Cfg, Target, Event, Arg))
    return false;
  ++Stats.EventsDelivered;
  arm(Target);
  drain();
  return !Cfg.hasError();
}

bool Host::runToCompletion() {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  for (int32_t Id = static_cast<int32_t>(Cfg.Machines.size()); Id-- > 0;)
    if (Exec.isEnabled(Cfg, Id))
      arm(Id);
  drain();
  return !Cfg.hasError();
}

void *Host::getContext(int32_t Id) const {
  if (Id < 0 || Id >= static_cast<int32_t>(Contexts.size()))
    return nullptr;
  return Contexts[Id];
}

void Host::setContext(int32_t Id, void *Context) {
  if (Id >= 0 && Id < static_cast<int32_t>(Contexts.size()))
    Contexts[Id] = Context;
}

std::string Host::currentStateName(int32_t Id) const {
  if (!Cfg.isLive(Id))
    return "";
  const MachineState &M = Cfg.Machines[Id];
  if (M.Frames.empty())
    return "";
  return Prog.Machines[M.MachineIndex].States[M.Frames.back().State].Name;
}

void Host::attachTrace(obs::TraceRecorder &Recorder) {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  Exec.setTraceSink(&Recorder.openSink());
}

void Host::detachTrace() {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  Exec.setTraceSink(nullptr);
}

void Host::exportMetrics(obs::MetricsRegistry &Registry) const {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  Registry.counter("p_host_events_total", "SMAddEvent calls accepted")
      .inc(Stats.EventsDelivered);
  Registry
      .counter("p_host_slices_total", "Run-to-completion slices executed")
      .inc(Stats.SlicesRun);
  Registry.counter("p_host_machines_total", "Machines created")
      .inc(Stats.MachinesCreated);
  Registry.gauge("p_host_machines_live", "Machines currently alive")
      .set(static_cast<double>(
          std::count_if(Cfg.Machines.begin(), Cfg.Machines.end(),
                        [](const MachineState &M) { return M.Alive; })));
}

Value Host::readVar(int32_t Id, const std::string &VarName) const {
  if (!Cfg.isLive(Id))
    return Value::null();
  const MachineState &M = Cfg.Machines[Id];
  const MachineInfo &Info = Prog.Machines[M.MachineIndex];
  for (size_t I = 0; I != Info.Vars.size(); ++I)
    if (Info.Vars[I].Name == VarName)
      return M.Vars[I];
  return Value::null();
}
