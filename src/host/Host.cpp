//===- host/Host.cpp ----------------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The host's event pump deliberately follows the causal discipline of
// the delaying scheduler with d = 0 (Section 5): a stack of runnable
// machines where `new` and `send` push the child/receiver on top, so
// the receiver of an event runs next. This makes the paper's claim —
// "for d = 0, the real part of schedules explored by the delay bounded
// scheduler are exactly the same as the one executed by the P runtime"
// — literally true of this implementation, and our property tests
// compare the two executions step by step.
//
//===----------------------------------------------------------------------===//

#include "host/Host.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>

using namespace p;

const char *p::hostErrorName(HostError E) {
  switch (E) {
  case HostError::None:
    return "none";
  case HostError::UnknownMachine:
    return "unknown-machine";
  case HostError::UnknownEvent:
    return "unknown-event";
  case HostError::DeadTarget:
    return "dead-target";
  }
  return "unknown";
}

Host::Host(const CompiledProgram &Prog, uint64_t Seed)
    : Prog(Prog), Exec(Prog), Rng(Seed),
      DispatchLatency(obs::exponentialBounds(1e-7, 4, 16)) {
  Exec.setChoiceProvider([this] { return (Rng() & 1) != 0; });
  // The dequeue observer fires inside the pump with PumpMutex held, so
  // the pending list needs no lock of its own.
  Exec.addDequeueObserver([this](int32_t Machine, int32_t Event) {
    noteDequeue(Machine, Event);
  });
}

void Host::noteEnqueue(int32_t Target, int32_t Event) {
  constexpr size_t MaxPending = 4096;
  if (Pending.size() >= MaxPending)
    Pending.erase(Pending.begin());
  Pending.push_back({Target, Event, std::chrono::steady_clock::now()});
  noteQueueDepth(Target);
}

void Host::noteQueueDepth(int32_t Id) {
  if (Id < 0 || Id >= static_cast<int32_t>(Cfg.Machines.size()))
    return;
  if (QueueHighWater.size() < Cfg.Machines.size())
    QueueHighWater.resize(Cfg.Machines.size(), 0);
  const auto Depth =
      static_cast<uint32_t>(Cfg.Machines[Id]->Queue.size());
  QueueHighWater[Id] = std::max(QueueHighWater[Id], Depth);
  Stats.QueueDepthHighWater =
      std::max<uint64_t>(Stats.QueueDepthHighWater, Depth);
}

void Host::noteDequeue(int32_t Machine, int32_t Event) {
  for (auto It = Pending.begin(); It != Pending.end(); ++It) {
    if (It->Target != Machine || It->Event != Event)
      continue;
    DispatchLatency.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      It->T)
            .count());
    Pending.erase(It);
    return;
  }
}

void Host::registerForeign(const std::string &Machine,
                           const std::string &Fun, ForeignFn Fn) {
  Exec.registerForeign(Machine, Fun, std::move(Fn));
}

void Host::drain() {
  while (!Cfg.hasError() && !Sched.empty()) {
    int32_t Id = Sched.front();
    if (!Exec.isEnabled(Cfg, Id)) {
      Sched.pop_front();
      continue;
    }
    ++Stats.SlicesRun;
    if (obs::TraceSink *T = Exec.traceSink())
      T->record(obs::TraceKind::Slice, Id);
    Executor::StepResult R = Exec.step(Cfg, Id);
    Contexts.resize(Cfg.Machines.size(), nullptr);
    switch (R.Outcome) {
    case Executor::StepOutcome::SchedulingPoint: {
      noteQueueDepth(R.Other); // Internal sends deepen queues too.
      bool InSched =
          std::find(Sched.begin(), Sched.end(), R.Other) != Sched.end();
      if (!InSched)
        Sched.push_front(R.Other);
      break;
    }
    case Executor::StepOutcome::Blocked:
      Sched.pop_front();
      break;
    case Executor::StepOutcome::Halted:
      Sched.erase(std::remove(Sched.begin(), Sched.end(), Id), Sched.end());
      break;
    case Executor::StepOutcome::ChoicePoint:
      // Unreachable: the host installs a choice provider.
      break;
    case Executor::StepOutcome::ForeignCall:
      // Unreachable: the host never enables foreign fault points.
      break;
    case Executor::StepOutcome::Error:
      return;
    }
  }
}

void Host::arm(int32_t Id) {
  if (std::find(Sched.begin(), Sched.end(), Id) == Sched.end())
    Sched.push_front(Id);
}

int32_t Host::createMachine(
    const std::string &MachineName,
    const std::vector<std::pair<std::string, Value>> &Inits) {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  int MachineIndex = Prog.findMachine(MachineName);
  if (MachineIndex < 0) {
    LastError = HostError::UnknownMachine;
    return -1;
  }
  const MachineInfo &Info = Prog.Machines[MachineIndex];

  std::vector<std::pair<int32_t, Value>> Resolved;
  for (const auto &[Name, V] : Inits) {
    for (size_t I = 0; I != Info.Vars.size(); ++I)
      if (Info.Vars[I].Name == Name)
        Resolved.emplace_back(static_cast<int32_t>(I), V);
  }

  int32_t Id = Exec.createMachine(Cfg, MachineIndex, Resolved);
  Contexts.resize(Cfg.Machines.size(), nullptr);
  CreationInits.resize(Cfg.Machines.size());
  CreationInits[Id] = Resolved;
  ++Stats.MachinesCreated;
  LastError = HostError::None;
  arm(Id);
  drain();
  QueueCv.notify_all();
  return Id;
}

void Host::flushDelayed() {
  while (!Delayed.empty() && !Cfg.hasError()) {
    auto [Target, Event, Arg] = std::move(Delayed.front());
    Delayed.erase(Delayed.begin());
    deliver(Target, Event, Arg);
  }
}

bool Host::deliver(int32_t Target, int32_t Event, const Value &Arg) {
  if (!Exec.enqueueEvent(Cfg, Target, Event, Arg))
    return false;
  noteEnqueue(Target, Event);
  arm(Target);
  drain();
  QueueCv.notify_all();
  return !Cfg.hasError();
}

bool Host::addEvent(int32_t Target, const std::string &EventName,
                    Value Arg) {
  std::unique_lock<std::mutex> Lock(PumpMutex);
  int Event = Prog.findEvent(EventName);
  if (Event < 0) {
    LastError = HostError::UnknownEvent;
    return false;
  }
  // Classify API misuse and reject it before the semantics can raise an
  // error config: the caller ("OS") naming a bad target is its mistake,
  // not a P program error, so the configuration stays healthy and the
  // boolean result no longer conflates the two.
  if (Target < 0 || Target >= static_cast<int32_t>(Cfg.Machines.size())) {
    LastError = HostError::UnknownMachine;
    return false;
  }
  if (!Cfg.Machines[Target]->Alive && !Cfg.Machines[Target]->Crashed) {
    LastError = HostError::DeadTarget;
    return false;
  }
  LastError = HostError::None;

  // Back-pressure (OverflowPolicy::Block): wait until the full queue
  // has room, the target dies, or the system errors. Another thread
  // must pump (its drain notifies) — the paper's run-to-completion
  // discipline means this thread cannot drain the queue itself.
  if (Cfg.MaxQueue != 0 && Cfg.Overflow == OverflowPolicy::Block) {
    auto WouldBlock = [&] {
      if (Cfg.hasError() || !Cfg.isLive(Target))
        return false;
      const MachineState &M = *Cfg.Machines[Target];
      if (M.Queue.size() < Cfg.MaxQueue)
        return false;
      for (const auto &[E, V] : M.Queue) // ⊎ no-op needs no room.
        if (E == Event && V == Arg)
          return false;
      return true;
    };
    QueueCv.wait(Lock, [&] { return !WouldBlock(); });
  }

  ++AddEventCalls;
  if (HasPlan) {
    FaultAction A = Plan.decide(AddEventCalls, Event);
    if (A.Inject && Cfg.isLive(Target)) {
      obs::TraceSink *T = Exec.traceSink();
      switch (A.Kind) {
      case FaultKind::DropEvent:
        // The wire ate it: the call "succeeds" and nothing arrives.
        ++Stats.EventsDropped;
        if (T)
          T->record(obs::TraceKind::FaultInjected, Target,
                    static_cast<int32_t>(FaultKind::DropEvent), Event);
        return !Cfg.hasError();
      case FaultKind::DuplicateEvent: {
        // Delivered twice: once now, once after the first pump (the
        // run-to-completion discipline empties the queue in between,
        // so the second copy is not a ⊎ no-op).
        ++Stats.EventsDuplicated;
        if (T)
          T->record(obs::TraceKind::FaultInjected, Target,
                    static_cast<int32_t>(FaultKind::DuplicateEvent),
                    Event);
        ++Stats.EventsDelivered;
        bool Ok = deliver(Target, Event, Arg);
        if (Ok && Cfg.isLive(Target))
          Ok = deliver(Target, Event, Arg);
        flushDelayed();
        return Ok && !Cfg.hasError();
      }
      case FaultKind::DelayEvent:
        ++Stats.EventsDelayed;
        if (T)
          T->record(obs::TraceKind::FaultInjected, Target,
                    static_cast<int32_t>(FaultKind::DelayEvent), Event);
        Delayed.emplace_back(Target, Event, Arg);
        return !Cfg.hasError();
      case FaultKind::CrashMachine:
        // The process died before the delivery: both vanish.
        ++Stats.MachinesCrashed;
        Exec.crashMachine(Cfg, Target);
        Sched.erase(std::remove(Sched.begin(), Sched.end(), Target),
                    Sched.end());
        // Its queue is gone: open enqueues can never be dequeued.
        Pending.erase(std::remove_if(Pending.begin(), Pending.end(),
                                     [&](const PendingDispatch &P) {
                                       return P.Target == Target;
                                     }),
                      Pending.end());
        QueueCv.notify_all();
        return !Cfg.hasError();
      case FaultKind::RestartMachine:
      case FaultKind::FailForeign:
        break; // Not produced by FaultPlan::decide.
      }
    }
  }

  if (!Exec.enqueueEvent(Cfg, Target, Event, Arg))
    return false;
  ++Stats.EventsDelivered;
  noteEnqueue(Target, Event);
  arm(Target);
  drain();
  QueueCv.notify_all();
  flushDelayed();
  return !Cfg.hasError();
}

bool Host::runToCompletion() {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  flushDelayed();
  for (int32_t Id = static_cast<int32_t>(Cfg.Machines.size()); Id-- > 0;)
    if (Exec.isEnabled(Cfg, Id))
      arm(Id);
  drain();
  QueueCv.notify_all();
  return !Cfg.hasError();
}

HostError Host::lastHostError() const {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  return LastError;
}

void Host::setFaultPlan(FaultPlan P) {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  Plan = std::move(P);
  Plan.reset();
  HasPlan = Plan.enabled();
}

void Host::setQueueLimit(uint32_t MaxQueue, OverflowPolicy Policy) {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  Cfg.MaxQueue = MaxQueue;
  Cfg.Overflow = Policy;
  QueueCv.notify_all();
}

bool Host::crashMachine(int32_t Id) {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  if (!Cfg.isLive(Id))
    return false;
  Exec.crashMachine(Cfg, Id);
  Sched.erase(std::remove(Sched.begin(), Sched.end(), Id), Sched.end());
  ++Stats.MachinesCrashed;
  Pending.erase(std::remove_if(Pending.begin(), Pending.end(),
                               [&](const PendingDispatch &P) {
                                 return P.Target == Id;
                               }),
                Pending.end());
  QueueCv.notify_all(); // A blocked send to this queue can stop waiting.
  return true;
}

double Host::eventsPerSecondLocked() const {
  const double Secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    StartTime)
          .count();
  if (Secs <= 0)
    return 0;
  return static_cast<double>(Stats.EventsDelivered) / Secs;
}

double Host::eventsPerSecond() const {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  return eventsPerSecondLocked();
}

std::vector<uint32_t> Host::queueHighWater() const {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  std::vector<uint32_t> Out = QueueHighWater;
  Out.resize(Cfg.Machines.size(), 0);
  return Out;
}

bool Host::restartMachine(int32_t Id) {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  const std::vector<std::pair<int32_t, Value>> NoInits;
  const auto &Inits = Id >= 0 &&
                              Id < static_cast<int32_t>(CreationInits.size())
                          ? CreationInits[Id]
                          : NoInits;
  if (!Exec.restartMachine(Cfg, Id, Inits))
    return false;
  ++Stats.MachinesRestarted;
  arm(Id);
  drain();
  QueueCv.notify_all();
  return !Cfg.hasError();
}

void *Host::getContext(int32_t Id) const {
  if (Id < 0 || Id >= static_cast<int32_t>(Contexts.size()))
    return nullptr;
  return Contexts[Id];
}

void Host::setContext(int32_t Id, void *Context) {
  if (Id >= 0 && Id < static_cast<int32_t>(Contexts.size()))
    Contexts[Id] = Context;
}

std::string Host::currentStateName(int32_t Id) const {
  if (!Cfg.isLive(Id))
    return "";
  const MachineState &M = *Cfg.Machines[Id];
  if (M.Frames.empty())
    return "";
  return Prog.Machines[M.MachineIndex].States[M.Frames.back().State].Name;
}

void Host::attachTrace(obs::TraceRecorder &Recorder) {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  Exec.setTraceSink(&Recorder.openSink());
}

void Host::detachTrace() {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  Exec.setTraceSink(nullptr);
}

void Host::exportMetrics(obs::MetricsRegistry &Registry) const {
  std::lock_guard<std::mutex> Lock(PumpMutex);
  Registry.counter("p_host_events_total", "SMAddEvent calls accepted")
      .inc(Stats.EventsDelivered);
  Registry
      .counter("p_host_slices_total", "Run-to-completion slices executed")
      .inc(Stats.SlicesRun);
  Registry.counter("p_host_machines_total", "Machines created")
      .inc(Stats.MachinesCreated);
  Registry.gauge("p_host_machines_live", "Machines currently alive")
      .set(static_cast<double>(
          std::count_if(Cfg.Machines.begin(), Cfg.Machines.end(),
                        [](const CowMachine &M) { return M->Alive; })));
  Registry
      .counter("p_host_faults_dropped_total",
               "SMAddEvent calls swallowed by the fault plan")
      .inc(Stats.EventsDropped);
  Registry
      .counter("p_host_faults_duplicated_total",
               "SMAddEvent calls delivered twice by the fault plan")
      .inc(Stats.EventsDuplicated);
  Registry
      .counter("p_host_faults_delayed_total",
               "Deliveries deferred to a later pump by the fault plan")
      .inc(Stats.EventsDelayed);
  Registry
      .counter("p_host_faults_crashed_total",
               "Machines crashed (fault plan or crashMachine)")
      .inc(Stats.MachinesCrashed);
  Registry.counter("p_host_restarts_total", "Machines restarted")
      .inc(Stats.MachinesRestarted);
  Registry
      .counter("p_host_overflow_dropped_total",
               "Events discarded by OverflowPolicy::DropNewest")
      .inc(Cfg.OverflowDropped);
  Registry
      .gauge("p_host_queue_depth_highwater",
             "Deepest any machine queue ever got")
      .set(static_cast<double>(Stats.QueueDepthHighWater));
  Registry
      .gauge("p_host_events_per_sec",
             "Accepted deliveries per wall-clock second")
      .set(eventsPerSecondLocked());
  Registry
      .histogram("p_host_dispatch_latency_seconds",
                 DispatchLatency.bounds(),
                 "Enqueue-to-dispatch latency of host-delivered events")
      .merge(DispatchLatency);
}

Value Host::readVar(int32_t Id, const std::string &VarName) const {
  if (!Cfg.isLive(Id))
    return Value::null();
  const MachineState &M = *Cfg.Machines[Id];
  const MachineInfo &Info = Prog.Machines[M.MachineIndex];
  for (size_t I = 0; I != Info.Vars.size(); ++I)
    if (Info.Vars[I].Name == VarName)
      return M.Vars[I];
  return Value::null();
}
