//===- host/LatencyProbe.cpp --------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "host/LatencyProbe.h"

#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "obs/Report.h"

#include <cstdio>
#include <cstdlib>

using namespace p;

HostLatencyProbe::HostLatencyProbe(int Cycles) {
  LowerOptions Opts;
  Opts.EraseGhosts = true;
  CompileResult R = compileString(corpus::switchLed(), Opts);
  if (!R.ok()) {
    // The corpus program is compiled throughout the test suite; failing
    // here means the build is broken, not the caller's input.
    std::fprintf(stderr, "latency probe: corpus SwitchLed failed to compile\n");
    std::abort();
  }
  Prog = std::move(*R.Program);
  H.reset(new Host(Prog));
  int32_t Id = H->createMachine("SwitchLedDriver");
  for (int I = 0; I < Cycles && Id >= 0; ++I) {
    H->addEvent(Id, "SwitchedOn");
    H->addEvent(Id, "LedOk");
    H->addEvent(Id, "SwitchedOff");
    H->addEvent(Id, "LedOk");
  }
}

bool p::writeReportWithProbe(obs::RunReport &Report,
                             const std::string &Base) {
  HostLatencyProbe Probe;
  Report.setHost(Probe.host());
  obs::MetricsRegistry Registry;
  Probe.host().exportMetrics(Registry);
  Report.setMetrics(Registry);
  std::string Why;
  if (!Report.writeTo(Base, &Why)) {
    std::fprintf(stderr, "cannot write report %s: %s\n", Base.c_str(),
                 Why.c_str());
    return false;
  }
  return true;
}
