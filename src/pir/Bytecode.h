//===- pir/Bytecode.h - Compiled body representation ----------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Entry/exit/action/model bodies are compiled to a tiny stack bytecode.
/// Lowering to a flat instruction array (rather than interpreting the AST
/// directly) is what makes machine configurations *values*: the remaining
/// statement of the operational semantics (Figure 4) is just a
/// (body, pc, operand stack) triple, so the model checker can copy, hash
/// and restore whole global configurations exactly.
///
//===----------------------------------------------------------------------===//

#ifndef P_PIR_BYTECODE_H
#define P_PIR_BYTECODE_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace p {

/// Opcodes of the body bytecode. Stack effects are noted as
/// `[before] -> [after]`.
enum class Opcode : uint8_t {
  // Constants and loads.
  PushNull,  ///< [] -> [null]
  PushBool,  ///< [] -> [bool A]
  PushInt,   ///< [] -> [int A]
  PushEvent, ///< [] -> [event A]
  LoadVar,   ///< [] -> [vars[A]]
  StoreVar,  ///< [v] -> [] ; vars[A] = v
  LoadThis,  ///< [] -> [this]
  LoadMsg,   ///< [] -> [msg]
  LoadArg,   ///< [] -> [arg]
  LoadParam, ///< [] -> [params[A]] (model bodies only)
  StoreResult, ///< [v] -> [] ; model result = v
  Nondet,    ///< [] -> [bool] ; branch point during checking
  UnOp,      ///< [v] -> [op v] ; A = UnaryOp
  BinOp,     ///< [l r] -> [l op r] ; A = BinaryOp
  Pop,       ///< [v] -> []

  // Control flow within a body.
  Jump,        ///< pc = A
  JumpIfFalse, ///< [c] -> [] ; if !c then pc = A (⊥ counts as false)

  // Machine operations (Figures 4 and 5).
  New,         ///< [v1..vk] -> [id] ; A = machine, B = init-table index
  Send,        ///< [target event payload] -> [] ; scheduling point
  Raise,       ///< [event payload] -> aborts the body
  CallForeign, ///< [a1..ak] -> [result] ; A = fun index, B = argc
  CallState,   ///< save continuation, push state A
  Assert,      ///< [c] -> [] ; error transition when !c
  Delete,      ///< terminate the executing machine
  Leave,       ///< finish the entry statement
  Return,      ///< run exit, pop the call stack
  Halt,        ///< end of body
};

/// Returns the mnemonic of \p Op.
const char *opcodeName(Opcode Op);

/// One bytecode instruction.
struct Instr {
  Opcode Op;
  int32_t A = 0;
  int32_t B = 0;

  bool operator==(const Instr &O) const = default;
};

/// A compiled statement body (entry, exit, action or model).
struct Body {
  std::string Name; ///< e.g. "Elevator.Opening.entry"; for debugging.
  std::vector<Instr> Code;
  std::vector<SourceLoc> Locs; ///< Parallel to Code; for error traces.

  void emit(Instr I, SourceLoc Loc) {
    Code.push_back(I);
    Locs.push_back(Loc);
  }
};

/// Renders \p B as an assembly-style listing (one instruction per line).
std::string disassemble(const Body &B);

} // namespace p

#endif // P_PIR_BYTECODE_H
