//===- pir/Lowering.h - AST to compiled-program lowering -------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a Sema-annotated AST to the table-driven CompiledProgram.
///
/// The ghost-erasure transform of Section 3.3 is implemented here: with
/// `EraseGhosts` set, ghost machines keep their table slot (so machine
/// and event indices agree between the verification build and the
/// execution build — that is what makes erasure testable) but none of
/// their code is lowered, and inside real machines every ghost statement
/// is dropped: assignments to ghost variables, `new` of ghost machines,
/// sends whose target is ghost, and asserts whose condition reads ghost
/// state. Sema has already guaranteed these drops cannot change real
/// behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef P_PIR_LOWERING_H
#define P_PIR_LOWERING_H

#include "ast/AST.h"
#include "pir/Program.h"

namespace p {

/// Options controlling lowering.
struct LowerOptions {
  /// Apply the ghost-erasure transform (the "compilation" configuration
  /// of the paper). When false, ghost code is kept (the "verification"
  /// configuration).
  bool EraseGhosts = false;
};

/// Lowers \p Prog (which must have passed Sema) to a CompiledProgram.
CompiledProgram lower(const Program &Prog, const LowerOptions &Opts = {});

} // namespace p

#endif // P_PIR_LOWERING_H
