//===- pir/Dot.cpp -------------------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pir/Dot.h"

using namespace p;

namespace {

/// Emits the nodes and edges of one machine. \p Prefix namespaces node
/// ids when several machines share a file.
void emitMachine(std::string &Out, const CompiledProgram &Prog,
                 const MachineInfo &M, const std::string &Prefix) {
  auto nodeId = [&](int State) {
    return "\"" + Prefix + M.States[State].Name + "\"";
  };

  for (size_t S = 0; S != M.States.size(); ++S) {
    const StateInfo &St = M.States[S];
    std::string Label = St.Name;
    std::string Deferred;
    for (size_t E = 0; E != Prog.Events.size(); ++E)
      if (St.Deferred.test(static_cast<int>(E))) {
        if (!Deferred.empty())
          Deferred += ", ";
        Deferred += Prog.Events[E].Name;
      }
    if (!Deferred.empty())
      Label += "\\ndefer: " + Deferred;
    Out += "  " + nodeId(static_cast<int>(S)) + " [label=\"" + Label +
           "\", shape=box, style=rounded];\n";

    for (size_t E = 0; E != St.OnEvent.size(); ++E) {
      const Transition &T = St.OnEvent[E];
      const std::string &Event = Prog.Events[E].Name;
      switch (T.Kind) {
      case TransitionKind::None:
        break;
      case TransitionKind::Step:
        Out += "  " + nodeId(static_cast<int>(S)) + " -> " +
               nodeId(T.Target) + " [label=\"" + Event + "\"];\n";
        break;
      case TransitionKind::Call:
        // The paper draws call transitions as double edges; bold +
        // color is the closest portable DOT idiom.
        Out += "  " + nodeId(static_cast<int>(S)) + " -> " +
               nodeId(T.Target) + " [label=\"" + Event +
               "\", style=bold, color=\"black:black\"];\n";
        break;
      case TransitionKind::Action:
        Out += "  " + nodeId(static_cast<int>(S)) + " -> " +
               nodeId(static_cast<int>(S)) + " [label=\"" + Event + " / " +
               M.ActionNames[T.Target] + "\", style=dashed];\n";
        break;
      }
    }
  }

  // Entry marker into the initial state.
  Out += "  \"" + Prefix + "__init\" [shape=point];\n";
  Out += "  \"" + Prefix + "__init\" -> " + nodeId(0) + ";\n";
}

} // namespace

std::string p::toDot(const CompiledProgram &Prog, int MachineIndex) {
  const MachineInfo &M = Prog.Machines[MachineIndex];
  std::string Out = "digraph \"" + M.Name + "\" {\n";
  Out += "  rankdir=TB;\n";
  emitMachine(Out, Prog, M, "");
  Out += "}\n";
  return Out;
}

std::string p::toDot(const CompiledProgram &Prog) {
  std::string Out = "digraph P {\n  rankdir=TB;\n";
  for (size_t I = 0; I != Prog.Machines.size(); ++I) {
    const MachineInfo &M = Prog.Machines[I];
    Out += "  subgraph \"cluster_" + M.Name + "\" {\n";
    Out += "    label=\"" + std::string(M.Ghost ? "ghost machine " :
                                                  "machine ") +
           M.Name + "\";\n";
    std::string Body;
    emitMachine(Body, Prog, M, M.Name + ".");
    Out += Body;
    Out += "  }\n";
  }
  Out += "}\n";
  return Out;
}
