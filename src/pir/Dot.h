//===- pir/Dot.h - Graphviz rendering of P machines ------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a machine's state graph in Graphviz DOT, in the visual
/// vocabulary of the paper's Figure 1: step transitions as plain edges,
/// call transitions as bold double-line edges, action bindings as dashed
/// self-loops, with each state's deferred set listed inside the node.
///
//===----------------------------------------------------------------------===//

#ifndef P_PIR_DOT_H
#define P_PIR_DOT_H

#include "pir/Program.h"

#include <string>

namespace p {

/// Renders machine \p MachineIndex of \p Prog as a DOT digraph.
std::string toDot(const CompiledProgram &Prog, int MachineIndex);

/// Renders every machine of \p Prog as one DOT file with clusters.
std::string toDot(const CompiledProgram &Prog);

} // namespace p

#endif // P_PIR_DOT_H
