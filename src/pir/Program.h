//===- pir/Program.h - Compiled P program tables ---------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled form of a P program: the indexed, statically-allocated
/// table structures that Section 4 of the paper describes for the
/// generated C code — an event table, per-machine variable/state tables,
/// and per-state transition, deferred-event and action tables — plus the
/// compiled bytecode bodies. Both the runtime and the model checker
/// execute this representation; the C code generator prints it.
///
//===----------------------------------------------------------------------===//

#ifndef P_PIR_PROGRAM_H
#define P_PIR_PROGRAM_H

#include "ast/Types.h"
#include "pir/Bytecode.h"

#include <cstdint>
#include <string>
#include <vector>

namespace p {

using EventId = int32_t;

/// A dynamically sized bitset over event ids.
class EventSet {
public:
  EventSet() = default;
  explicit EventSet(int NumEvents) : Words((NumEvents + 63) / 64, 0) {}

  void set(int Index) { Words[Index / 64] |= uint64_t(1) << (Index % 64); }
  bool test(int Index) const {
    unsigned Word = Index / 64;
    if (Word >= Words.size())
      return false;
    return (Words[Word] >> (Index % 64)) & 1;
  }
  bool operator==(const EventSet &O) const = default;

private:
  std::vector<uint64_t> Words;
};

/// One entry in the global event table.
struct EventInfo {
  std::string Name;
  TypeKind PayloadType = TypeKind::Void;
  bool Ghost = false;
};

/// How a state reacts to an event (statically).
enum class TransitionKind : uint8_t {
  None,   ///< Unhandled here; defer/inherit/pop applies.
  Step,   ///< Step transition to Target state.
  Call,   ///< Call transition pushing Target state.
  Action, ///< Action binding running action Target.
};

/// One slot of a state's transition table.
struct Transition {
  TransitionKind Kind = TransitionKind::None;
  int32_t Target = -1; ///< State index (Step/Call) or action index.

  bool operator==(const Transition &O) const = default;
};

/// One entry in a machine's state table.
struct StateInfo {
  std::string Name;
  EventSet Deferred;  ///< Deferred(m, n) of the semantics.
  EventSet Postponed; ///< Liveness annotation (Section 3.2).
  int32_t EntryBody = -1; ///< Body index; -1 means `skip`.
  int32_t ExitBody = -1;  ///< Body index; -1 means `skip`.
  std::vector<Transition> OnEvent; ///< Indexed by EventId.
};

/// One entry in a machine's variable table.
struct VarInfo {
  std::string Name;
  TypeKind Type = TypeKind::Int;
  bool Ghost = false;
};

/// One entry in a machine's foreign-function table.
struct ForeignFunInfo {
  std::string Name;
  std::vector<std::string> ParamNames;
  std::vector<TypeKind> ParamTypes;
  TypeKind ReturnType = TypeKind::Void;
  int32_t ModelBody = -1; ///< Body index; -1 when no model is given.
};

/// One entry in the machine-type table.
struct MachineInfo {
  std::string Name;
  bool Ghost = false;
  /// Declared `symmetric`: instances are interchangeable, so the
  /// checker's symmetry reduction may canonicalize permutations of
  /// them (see CheckOptions::Reduce).
  bool Symmetric = false;
  std::vector<VarInfo> Vars;
  std::vector<StateInfo> States;
  std::vector<std::string> ActionNames;
  std::vector<int32_t> ActionBodies; ///< ActionId -> body index.
  std::vector<ForeignFunInfo> Funs;
  std::vector<Body> Bodies;
  /// Field lists for `new` initializers: New's B operand indexes this
  /// table; each entry lists the target var indices, in stack order.
  std::vector<std::vector<int32_t>> InitTables;

  /// Total step/call/action bindings across states; reported by benches
  /// as the paper's "P transitions" metric.
  int countTransitions() const;
};

/// A compiled P program. Index 0 of States is Init(m) for each machine.
struct CompiledProgram {
  std::vector<EventInfo> Events;
  std::vector<MachineInfo> Machines;
  int32_t MainMachine = -1;

  int findEvent(const std::string &Name) const;
  int findMachine(const std::string &Name) const;

  /// Human-readable summary (machines, states, transitions); used by
  /// tools and the Figure 8 bench.
  std::string summary() const;
};

} // namespace p

#endif // P_PIR_PROGRAM_H
