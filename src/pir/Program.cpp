//===- pir/Program.cpp ------------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pir/Program.h"

using namespace p;

const char *p::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::PushNull:
    return "push_null";
  case Opcode::PushBool:
    return "push_bool";
  case Opcode::PushInt:
    return "push_int";
  case Opcode::PushEvent:
    return "push_event";
  case Opcode::LoadVar:
    return "load_var";
  case Opcode::StoreVar:
    return "store_var";
  case Opcode::LoadThis:
    return "load_this";
  case Opcode::LoadMsg:
    return "load_msg";
  case Opcode::LoadArg:
    return "load_arg";
  case Opcode::LoadParam:
    return "load_param";
  case Opcode::StoreResult:
    return "store_result";
  case Opcode::Nondet:
    return "nondet";
  case Opcode::UnOp:
    return "unop";
  case Opcode::BinOp:
    return "binop";
  case Opcode::Pop:
    return "pop";
  case Opcode::Jump:
    return "jump";
  case Opcode::JumpIfFalse:
    return "jump_if_false";
  case Opcode::New:
    return "new";
  case Opcode::Send:
    return "send";
  case Opcode::Raise:
    return "raise";
  case Opcode::CallForeign:
    return "call_foreign";
  case Opcode::CallState:
    return "call_state";
  case Opcode::Assert:
    return "assert";
  case Opcode::Delete:
    return "delete";
  case Opcode::Leave:
    return "leave";
  case Opcode::Return:
    return "return";
  case Opcode::Halt:
    return "halt";
  }
  return "<op>";
}

std::string p::disassemble(const Body &B) {
  std::string Out = B.Name + ":\n";
  for (size_t I = 0; I != B.Code.size(); ++I) {
    const Instr &Ins = B.Code[I];
    Out += "  " + std::to_string(I) + ": " + opcodeName(Ins.Op);
    Out += " " + std::to_string(Ins.A) + " " + std::to_string(Ins.B);
    Out += '\n';
  }
  return Out;
}

int MachineInfo::countTransitions() const {
  int Count = 0;
  for (const StateInfo &St : States)
    for (const Transition &T : St.OnEvent)
      if (T.Kind != TransitionKind::None)
        ++Count;
  return Count;
}

int CompiledProgram::findEvent(const std::string &Name) const {
  for (size_t I = 0; I != Events.size(); ++I)
    if (Events[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

int CompiledProgram::findMachine(const std::string &Name) const {
  for (size_t I = 0; I != Machines.size(); ++I)
    if (Machines[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

std::string CompiledProgram::summary() const {
  std::string Out;
  Out += "events: " + std::to_string(Events.size()) + "\n";
  for (const MachineInfo &M : Machines) {
    Out += std::string(M.Ghost ? "ghost " : "") + "machine " + M.Name +
           ": " + std::to_string(M.States.size()) + " states, " +
           std::to_string(M.countTransitions()) + " transitions, " +
           std::to_string(M.Vars.size()) + " vars\n";
  }
  return Out;
}
