//===- pir/Lowering.cpp ------------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pir/Lowering.h"

#include "support/Casting.h"

#include <cassert>

using namespace p;

namespace {

/// Lowers the bodies of one machine.
class BodyLowerer {
public:
  BodyLowerer(const Program &Prog, const MachineDecl &M, MachineInfo &Out,
              bool EraseGhosts)
      : Prog(Prog), M(M), Out(Out), EraseGhosts(EraseGhosts) {}

  /// Lowers \p S into a new body named \p Name; returns its index, or -1
  /// when the body lowers to nothing (pure skip).
  int lowerBody(const Stmt *S, std::string Name) {
    if (!S)
      return -1;
    Body B;
    B.Name = std::move(Name);
    Cur = &B;
    lowerStmt(*S);
    Cur = nullptr;
    if (B.Code.empty())
      return -1;
    B.emit({Opcode::Halt}, SourceLoc());
    Out.Bodies.push_back(std::move(B));
    return static_cast<int>(Out.Bodies.size()) - 1;
  }

private:
  void emit(Opcode Op, SourceLoc Loc, int32_t A = 0, int32_t B = 0) {
    Cur->emit({Op, A, B}, Loc);
  }
  int here() const { return static_cast<int>(Cur->Code.size()); }
  void patch(int Index, int Target) { Cur->Code[Index].A = Target; }

  void lowerStmt(const Stmt &S);
  void lowerExpr(const Expr &E);

  /// True when \p S must be dropped under erasure.
  bool erased(const Stmt &S) const;

  const Program &Prog;
  const MachineDecl &M;
  MachineInfo &Out;
  const bool EraseGhosts;
  Body *Cur = nullptr;
};

} // namespace

bool BodyLowerer::erased(const Stmt &S) const {
  if (!EraseGhosts || M.Ghost)
    return false;
  switch (S.getKind()) {
  case Stmt::Kind::Assign: {
    const auto &A = *cast<AssignStmt>(&S);
    return A.VarIndex >= 0 && M.Vars[A.VarIndex].Ghost;
  }
  case Stmt::Kind::New: {
    const auto &N = *cast<NewStmt>(&S);
    return N.MachineIndex >= 0 && Prog.Machines[N.MachineIndex].Ghost;
  }
  case Stmt::Kind::Send: {
    const auto &Snd = *cast<SendStmt>(&S);
    return Snd.Target->Ghost;
  }
  case Stmt::Kind::Assert: {
    const auto &A = *cast<AssertStmt>(&S);
    return A.Cond->Ghost;
  }
  default:
    return false;
  }
}

void BodyLowerer::lowerExpr(const Expr &E) {
  SourceLoc Loc = E.getLoc();
  switch (E.getKind()) {
  case Expr::Kind::NullLit:
    emit(Opcode::PushNull, Loc);
    return;
  case Expr::Kind::BoolLit:
    emit(Opcode::PushBool, Loc, cast<BoolLitExpr>(&E)->Value ? 1 : 0);
    return;
  case Expr::Kind::IntLit: {
    int64_t V = cast<IntLitExpr>(&E)->Value;
    assert(V >= INT32_MIN && V <= INT32_MAX &&
           "integer literal out of 32-bit range");
    emit(Opcode::PushInt, Loc, static_cast<int32_t>(V));
    return;
  }
  case Expr::Kind::EventLit: {
    const auto &Lit = *cast<EventLitExpr>(&E);
    assert(Lit.EventId >= 0 && "unresolved event literal");
    emit(Opcode::PushEvent, Loc, Lit.EventId);
    return;
  }
  case Expr::Kind::VarRef: {
    const auto &Ref = *cast<VarRefExpr>(&E);
    if (Ref.ParamIndex >= 0) {
      emit(Opcode::LoadParam, Loc, Ref.ParamIndex);
      return;
    }
    assert(Ref.VarIndex >= 0 && "unresolved variable reference");
    emit(Opcode::LoadVar, Loc, Ref.VarIndex);
    return;
  }
  case Expr::Kind::This:
    emit(Opcode::LoadThis, Loc);
    return;
  case Expr::Kind::Msg:
    emit(Opcode::LoadMsg, Loc);
    return;
  case Expr::Kind::Arg:
    emit(Opcode::LoadArg, Loc);
    return;
  case Expr::Kind::Nondet:
    emit(Opcode::Nondet, Loc);
    return;
  case Expr::Kind::Unary: {
    const auto &U = *cast<UnaryExpr>(&E);
    lowerExpr(*U.Operand);
    emit(Opcode::UnOp, Loc, static_cast<int32_t>(U.Op));
    return;
  }
  case Expr::Kind::Binary: {
    const auto &B = *cast<BinaryExpr>(&E);
    lowerExpr(*B.LHS);
    lowerExpr(*B.RHS);
    emit(Opcode::BinOp, Loc, static_cast<int32_t>(B.Op));
    return;
  }
  case Expr::Kind::ForeignCall: {
    const auto &C = *cast<ForeignCallExpr>(&E);
    assert(C.FunIndex >= 0 && "unresolved foreign call");
    for (const ExprPtr &Arg : C.Args)
      lowerExpr(*Arg);
    emit(Opcode::CallForeign, Loc, C.FunIndex,
         static_cast<int32_t>(C.Args.size()));
    return;
  }
  }
}

void BodyLowerer::lowerStmt(const Stmt &S) {
  if (erased(S))
    return;
  SourceLoc Loc = S.getLoc();
  switch (S.getKind()) {
  case Stmt::Kind::Skip:
    return;
  case Stmt::Kind::Block:
    for (const StmtPtr &Sub : cast<BlockStmt>(&S)->Stmts)
      lowerStmt(*Sub);
    return;
  case Stmt::Kind::Assign: {
    const auto &A = *cast<AssignStmt>(&S);
    lowerExpr(*A.Value);
    if (A.IsResult) {
      emit(Opcode::StoreResult, Loc);
      return;
    }
    assert(A.VarIndex >= 0 && "unresolved assignment target");
    emit(Opcode::StoreVar, Loc, A.VarIndex);
    return;
  }
  case Stmt::Kind::New: {
    const auto &N = *cast<NewStmt>(&S);
    assert(N.MachineIndex >= 0 && "unresolved machine in new");
    std::vector<int32_t> Fields;
    for (const Initializer &Init : N.Inits) {
      lowerExpr(*Init.Value);
      assert(Init.VarIndex >= 0 && "unresolved initializer field");
      Fields.push_back(Init.VarIndex);
    }
    Out.InitTables.push_back(std::move(Fields));
    emit(Opcode::New, Loc, N.MachineIndex,
         static_cast<int32_t>(Out.InitTables.size()) - 1);
    if (N.VarIndex >= 0)
      emit(Opcode::StoreVar, Loc, N.VarIndex);
    else
      emit(Opcode::Pop, Loc);
    return;
  }
  case Stmt::Kind::Delete:
    emit(Opcode::Delete, Loc);
    return;
  case Stmt::Kind::Send: {
    const auto &Snd = *cast<SendStmt>(&S);
    lowerExpr(*Snd.Target);
    lowerExpr(*Snd.Event);
    if (Snd.Payload)
      lowerExpr(*Snd.Payload);
    else
      emit(Opcode::PushNull, Loc);
    emit(Opcode::Send, Loc);
    return;
  }
  case Stmt::Kind::Raise: {
    const auto &R = *cast<RaiseStmt>(&S);
    lowerExpr(*R.Event);
    if (R.Payload)
      lowerExpr(*R.Payload);
    else
      emit(Opcode::PushNull, Loc);
    emit(Opcode::Raise, Loc);
    return;
  }
  case Stmt::Kind::Leave:
    emit(Opcode::Leave, Loc);
    return;
  case Stmt::Kind::Return:
    emit(Opcode::Return, Loc);
    return;
  case Stmt::Kind::Assert: {
    const auto &A = *cast<AssertStmt>(&S);
    lowerExpr(*A.Cond);
    emit(Opcode::Assert, Loc);
    return;
  }
  case Stmt::Kind::If: {
    const auto &I = *cast<IfStmt>(&S);
    lowerExpr(*I.Cond);
    int JumpToElse = here();
    emit(Opcode::JumpIfFalse, Loc);
    lowerStmt(*I.Then);
    if (I.Else) {
      int JumpToEnd = here();
      emit(Opcode::Jump, Loc);
      patch(JumpToElse, here());
      lowerStmt(*I.Else);
      patch(JumpToEnd, here());
    } else {
      patch(JumpToElse, here());
    }
    return;
  }
  case Stmt::Kind::While: {
    const auto &W = *cast<WhileStmt>(&S);
    int Top = here();
    lowerExpr(*W.Cond);
    int JumpOut = here();
    emit(Opcode::JumpIfFalse, Loc);
    lowerStmt(*W.Body);
    emit(Opcode::Jump, Loc, Top);
    patch(JumpOut, here());
    return;
  }
  case Stmt::Kind::CallState: {
    const auto &C = *cast<CallStateStmt>(&S);
    assert(C.StateIndex >= 0 && "unresolved call-state target");
    emit(Opcode::CallState, Loc, C.StateIndex);
    return;
  }
  case Stmt::Kind::ExprStmt: {
    const auto &E = *cast<ExprStmt>(&S);
    lowerExpr(*E.E);
    emit(Opcode::Pop, Loc);
    return;
  }
  }
}

CompiledProgram p::lower(const Program &Prog, const LowerOptions &Opts) {
  CompiledProgram Out;

  for (const EventDecl &E : Prog.Events)
    Out.Events.push_back({E.Name, E.PayloadType, E.Ghost});

  const int NumEvents = static_cast<int>(Out.Events.size());

  for (const MachineDecl &M : Prog.Machines) {
    MachineInfo Info;
    Info.Name = M.Name;
    Info.Ghost = M.Ghost;
    Info.Symmetric = M.Symmetric;
    for (const VarDecl &V : M.Vars)
      Info.Vars.push_back({V.Name, V.Type, V.Ghost});

    const bool LowerCode = !(Opts.EraseGhosts && M.Ghost);
    BodyLowerer Lowerer(Prog, M, Info, Opts.EraseGhosts);

    // Actions first so states can reference any body index order; the
    // indices are independent anyway.
    for (const ActionDecl &A : M.Actions) {
      Info.ActionNames.push_back(A.Name);
      int BodyId = LowerCode
                       ? Lowerer.lowerBody(A.Body.get(),
                                           M.Name + "." + A.Name + ".action")
                       : -1;
      Info.ActionBodies.push_back(BodyId);
    }

    for (const StateDecl &St : M.States) {
      StateInfo SI;
      SI.Name = St.Name;
      SI.Deferred = EventSet(NumEvents);
      SI.Postponed = EventSet(NumEvents);
      for (int Id : St.DeferredIds)
        SI.Deferred.set(Id);
      for (int Id : St.PostponedIds)
        SI.Postponed.set(Id);
      SI.OnEvent.assign(NumEvents, Transition());
      for (const HandlerDecl &H : St.Handlers) {
        if (H.EventId < 0 || H.TargetIndex < 0)
          continue;
        Transition &Slot = SI.OnEvent[H.EventId];
        switch (H.Kind) {
        case HandlerKind::Step:
          Slot = {TransitionKind::Step, H.TargetIndex};
          break;
        case HandlerKind::Call:
          Slot = {TransitionKind::Call, H.TargetIndex};
          break;
        case HandlerKind::Do:
          // A transition on the same event takes priority (see Sema's
          // dead-action warning); do not overwrite one.
          if (Slot.Kind == TransitionKind::None)
            Slot = {TransitionKind::Action, H.TargetIndex};
          break;
        }
      }
      if (LowerCode) {
        SI.EntryBody = Lowerer.lowerBody(St.Entry.get(),
                                         M.Name + "." + St.Name + ".entry");
        SI.ExitBody = Lowerer.lowerBody(St.Exit.get(),
                                        M.Name + "." + St.Name + ".exit");
      }
      Info.States.push_back(std::move(SI));
    }

    for (const ForeignFunDecl &F : M.Funs) {
      ForeignFunInfo FI;
      FI.Name = F.Name;
      for (const ParamDecl &Param : F.Params) {
        FI.ParamNames.push_back(Param.Name);
        FI.ParamTypes.push_back(Param.Type);
      }
      FI.ReturnType = F.ReturnType;
      if (!Opts.EraseGhosts && F.ModelBody)
        FI.ModelBody = Lowerer.lowerBody(F.ModelBody.get(),
                                         M.Name + "." + F.Name + ".model");
      Info.Funs.push_back(std::move(FI));
    }

    Out.Machines.push_back(std::move(Info));
  }

  int Main = Prog.mainMachine();
  if (Main >= 0 && !(Opts.EraseGhosts && Prog.Machines[Main].Ghost))
    Out.MainMachine = Main;
  return Out;
}
