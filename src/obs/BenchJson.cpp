//===- obs/BenchJson.cpp -----------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/BenchJson.h"

#include "checker/Checker.h"
#include "obs/Report.h"
#include "support/AtomicFile.h"

#include <cstdio>
#include <fstream>
#include <iostream>

using namespace p;
using namespace p::obs;

Json p::obs::checkStatsToJson(const CheckStats &Stats) {
  Json J = Json::object();
  J.set("distinct_states", Stats.DistinctStates);
  J.set("nodes_explored", Stats.NodesExplored);
  J.set("slices", Stats.Slices);
  J.set("terminals", Stats.Terminals);
  J.set("errors_found", Stats.ErrorsFound);
  J.set("max_depth", Stats.MaxDepth);
  J.set("exhausted", Stats.Exhausted);
  J.set("visited_bytes", Stats.VisitedBytes);
  J.set("peak_rss_bytes", Stats.PeakRssBytes);
  J.set("omission_possible", Stats.OmissionPossible);
  J.set("workers_used", Stats.WorkersUsed);
  J.set("steal_count", Stats.StealCount);
  J.set("contention_ns", Stats.ContentionNs);
  J.set("faults_injected", Stats.FaultsInjected);
  J.set("pruned_by_independence", Stats.PrunedByIndependence);
  J.set("symmetry_collapsed", Stats.SymmetryCollapsed);
  J.set("interrupted", Stats.Interrupted);
  J.set("resumed", Stats.Resumed);
  J.set("checkpoints_written", Stats.CheckpointsWritten);
  J.set("checkpoint_bytes", Stats.LastCheckpointBytes);
  J.set("frontier_spilled_nodes", Stats.FrontierSpilledNodes);
  J.set("frontier_spill_bytes", Stats.FrontierSpillBytes);
  return J;
}

void BenchReport::addRun(Json Config, const CheckStats &Stats) {
  Json R = Json::object();
  R.set("bench", Bench);
  R.set("config", std::move(Config));
  R.set("stats", checkStatsToJson(Stats));
  R.set("seconds", Stats.Seconds);
  Runs.push(std::move(R));
}

void BenchReport::addRun(Json Config, const CompiledProgram &Prog,
                         const CheckResult &R) {
  Json Rec = Json::object();
  Rec.set("bench", Bench);
  Rec.set("config", std::move(Config));
  Rec.set("stats", checkStatsToJson(R.Stats));
  Rec.set("seconds", R.Stats.Seconds);
  if (!R.Coverage.Machines.empty())
    Rec.set("coverage", coverageToJson(Prog, R.Coverage));
  Runs.push(std::move(Rec));
}

void BenchReport::addRun(Json Config, Json Stats, double Seconds) {
  Json R = Json::object();
  R.set("bench", Bench);
  R.set("config", std::move(Config));
  R.set("stats", std::move(Stats));
  R.set("seconds", Seconds);
  Runs.push(std::move(R));
}

std::string BenchReport::str() const { return Runs.str(2) + "\n"; }

bool BenchReport::writeTo(const std::string &PathOrDash) const {
  if (PathOrDash == "-") {
    std::cout << str();
    std::cout.flush();
    return true;
  }
  // Temp+rename so an interrupted bench leaves either the previous
  // report or the complete new one, never a torn prefix.
  return writeFileAtomic(PathOrDash, str());
}

bool p::obs::validateBenchReport(const Json &Report, std::string &Why,
                                 bool RequireCheckerStats) {
  if (!Report.isArray()) {
    Why = "report is not a JSON array";
    return false;
  }
  if (Report.size() == 0) {
    Why = "report has no run records";
    return false;
  }
  static const char *CheckerKeys[] = {"distinct_states",
                                      "nodes_explored",
                                      "workers_used",
                                      "steal_count",
                                      "contention_ns",
                                      "visited_bytes",
                                      "peak_rss_bytes",
                                      "pruned_by_independence",
                                      "symmetry_collapsed"};
  for (size_t I = 0; I != Report.size(); ++I) {
    const Json &R = Report.at(I);
    std::string At = "record " + std::to_string(I) + ": ";
    if (!R.isObject()) {
      Why = At + "not an object";
      return false;
    }
    if (!R.get("bench").isString() || R.get("bench").asString().empty()) {
      Why = At + "missing string 'bench'";
      return false;
    }
    if (!R.get("config").isObject()) {
      Why = At + "missing object 'config'";
      return false;
    }
    if (!R.get("stats").isObject()) {
      Why = At + "missing object 'stats'";
      return false;
    }
    if (!R.get("seconds").isNumber() || R.get("seconds").asNumber() < 0) {
      Why = At + "missing non-negative number 'seconds'";
      return false;
    }
    if (RequireCheckerStats) {
      for (const char *Key : CheckerKeys)
        if (!R.get("stats").get(Key).isNumber()) {
          Why = At + "stats missing numeric '" + Key + "'";
          return false;
        }
    }
    if (R.has("coverage") &&
        !validateCoverageJson(R.get("coverage"), Why, At))
      return false;
  }
  Why.clear();
  return true;
}
