//===- obs/BenchJson.h - Machine-readable bench output ---------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one stable schema behind every bench binary's `--json` flag.
/// The report is a JSON array of run records:
///
///   [{"bench": "fig7_delaybound",
///     "config": {"program": "elevator", "delay_bound": 3, ...},
///     "stats":  {"distinct_states": ..., "nodes_explored": ...,
///                "workers_used": ..., "steal_count": ...,
///                "contention_ns": ..., ...},
///     "seconds": 1.234}, ...]
///
/// `bench`, `config`, `stats`, `seconds` are required in every record;
/// the keys inside config/stats vary per bench but stay snake_case and
/// stable. validateBenchReport is the schema check the smoke test (and
/// any trajectory tooling) runs against a parsed report.
///
//===----------------------------------------------------------------------===//

#ifndef P_OBS_BENCHJSON_H
#define P_OBS_BENCHJSON_H

#include "obs/Json.h"

#include <string>

namespace p {
struct CheckResult;
struct CheckStats;
struct CompiledProgram;
} // namespace p

namespace p::obs {

/// Renders a CheckStats as the canonical stats{} object (all fields,
/// including WorkersUsed/StealCount/ContentionNs).
Json checkStatsToJson(const CheckStats &Stats);

/// Collects run records and writes the report.
class BenchReport {
public:
  explicit BenchReport(std::string BenchName)
      : Bench(std::move(BenchName)) {}

  /// Adds a record for a check() run; seconds comes from the stats.
  void addRun(Json Config, const CheckStats &Stats);

  /// Adds a record for a check() run, attaching a named coverage block
  /// (see obs/Report.h) when the result carries one
  /// (CheckOptions::TrackCoverage).
  void addRun(Json Config, const CompiledProgram &Prog,
              const CheckResult &R);

  /// Adds a record with free-form stats (non-checker benches).
  void addRun(Json Config, Json Stats, double Seconds);

  size_t size() const { return Runs.size(); }

  /// The report as pretty-printed JSON text.
  std::string str() const;

  /// Writes to \p PathOrDash; "-" means stdout. Returns false when the
  /// file cannot be opened.
  bool writeTo(const std::string &PathOrDash) const;

private:
  std::string Bench;
  Json Runs = Json::array();
};

/// Schema check for a parsed report: a non-empty array whose records
/// all carry bench/config/stats/seconds with the right types, and —
/// when \p RequireCheckerStats — the checker stat keys every perf
/// trajectory needs (distinct_states, nodes_explored, workers_used,
/// steal_count, contention_ns, visited_bytes, peak_rss_bytes). Records
/// with a coverage block must pass the obs/Report.h coverage shape
/// check. On failure returns false and puts a
/// human-readable reason in \p Why.
bool validateBenchReport(const Json &Report, std::string &Why,
                         bool RequireCheckerStats = false);

} // namespace p::obs

#endif // P_OBS_BENCHJSON_H
