//===- obs/Profile.cpp --------------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Profile.h"

#include "obs/Metrics.h"
#include "pir/Program.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace p;
using namespace p::obs;

void ProfileHistogram::init(std::vector<double> UpperBounds) {
  Bounds = std::move(UpperBounds);
  Counts.assign(Bounds.size() + 1, 0);
  N = 0;
  Sum = 0;
}

void ProfileHistogram::observe(double X) {
  size_t I = 0;
  while (I != Bounds.size() && X > Bounds[I])
    ++I;
  Counts[I] += 1;
  N += 1;
  Sum += X;
}

void ProfileHistogram::merge(const ProfileHistogram &O) {
  if (Counts.empty()) {
    *this = O;
    return;
  }
  assert(Counts.size() == O.Counts.size() && "merging mismatched bounds");
  for (size_t I = 0; I != Counts.size() && I != O.Counts.size(); ++I)
    Counts[I] += O.Counts[I];
  N += O.N;
  Sum += O.Sum;
}

double ProfileHistogram::quantile(double Q) const {
  if (N == 0 || Counts.empty())
    return 0;
  Q = std::min(std::max(Q, 0.0), 1.0);
  const double Rank = Q * static_cast<double>(N);
  uint64_t Cum = 0;
  for (size_t I = 0; I != Counts.size(); ++I) {
    const uint64_t Prev = Cum;
    Cum += Counts[I];
    if (static_cast<double>(Cum) < Rank)
      continue;
    // The +Inf bucket has no upper edge: clamp to the last finite bound.
    if (I >= Bounds.size())
      return Bounds.empty() ? 0 : Bounds.back();
    const double Lo = I == 0 ? 0 : Bounds[I - 1];
    const double Hi = Bounds[I];
    if (Counts[I] == 0)
      return Hi;
    const double Frac =
        (Rank - static_cast<double>(Prev)) / static_cast<double>(Counts[I]);
    return Lo + (Hi - Lo) * std::min(std::max(Frac, 0.0), 1.0);
  }
  return Bounds.empty() ? 0 : Bounds.back();
}

Json ProfileHistogram::toJson() const {
  Json J = Json::object();
  J.set("count", N);
  J.set("sum", Sum);
  J.set("p50", quantile(0.5));
  J.set("p99", quantile(0.99));
  Json B = Json::array();
  for (double Bound : Bounds)
    B.push(Bound);
  Json C = Json::array();
  for (uint64_t Count : Counts)
    C.push(Count);
  J.set("bounds", std::move(B));
  J.set("counts", std::move(C));
  return J;
}

void SearchProfile::init(size_t NumTypes) {
  Enabled = true;
  Machines.assign(NumTypes + 1, MachineProfile{});
  Depth.init(exponentialBounds(1, 2, 16));
  DelaysUsed.init(exponentialBounds(1, 2, 8));
  FaultsUsed.init(exponentialBounds(1, 2, 8));
  SliceSeconds.init(exponentialBounds(1e-7, 4, 12));
  Transitions.clear();
  for (uint64_t &K : FaultKinds)
    K = 0;
}

void SearchProfile::merge(const SearchProfile &O) {
  for (size_t I = 0; I != Machines.size() && I != O.Machines.size(); ++I) {
    Machines[I].Nodes += O.Machines[I].Nodes;
    Machines[I].States += O.Machines[I].States;
    Machines[I].Slices += O.Machines[I].Slices;
    Machines[I].SliceNs += O.Machines[I].SliceNs;
    Machines[I].SleepPruned += O.Machines[I].SleepPruned;
    Machines[I].SymmetryCollapsed += O.Machines[I].SymmetryCollapsed;
  }
  Depth.merge(O.Depth);
  DelaysUsed.merge(O.DelaysUsed);
  FaultsUsed.merge(O.FaultsUsed);
  SliceSeconds.merge(O.SliceSeconds);
  for (const auto &[K, V] : O.Transitions)
    Transitions[K] += V;
  for (size_t I = 0; I != 4; ++I)
    FaultKinds[I] += O.FaultKinds[I];
}

uint64_t SearchProfile::attributedNodes() const {
  uint64_t T = 0;
  for (size_t I = 0; I + 1 < Machines.size(); ++I)
    T += Machines[I].Nodes;
  return T;
}

uint64_t SearchProfile::totalNodes() const {
  uint64_t T = 0;
  for (const MachineProfile &M : Machines)
    T += M.Nodes;
  return T;
}

/// The display name of attribution row \p I: a machine type's name, or
/// "(root)" for the trailing unattributed row.
static std::string rowName(const CompiledProgram &Prog, size_t I,
                           size_t Rows) {
  if (I + 1 == Rows)
    return "(root)";
  if (I < Prog.Machines.size())
    return Prog.Machines[I].Name;
  return "type" + std::to_string(I);
}

Json SearchProfile::toJson(const CompiledProgram &Prog,
                           size_t MaxTransitions) const {
  Json J = Json::object();
  J.set("enabled", Enabled);
  if (!Enabled)
    return J;
  J.set("nodes_attributed", attributedNodes());
  J.set("nodes_total", totalNodes());

  Json Rows = Json::array();
  for (size_t I = 0; I != Machines.size(); ++I) {
    const MachineProfile &M = Machines[I];
    // The root row is all zeros except its single node; skip fully-empty
    // rows of machine types the program never ran.
    if (M.Nodes == 0 && M.States == 0 && M.Slices == 0 &&
        M.SleepPruned == 0 && M.SymmetryCollapsed == 0)
      continue;
    Json R = Json::object();
    R.set("machine", rowName(Prog, I, Machines.size()));
    R.set("nodes", M.Nodes);
    R.set("states", M.States);
    R.set("slices", M.Slices);
    R.set("slice_seconds", static_cast<double>(M.SliceNs) * 1e-9);
    R.set("sleep_pruned", M.SleepPruned);
    R.set("symmetry_collapsed", M.SymmetryCollapsed);
    Rows.push(std::move(R));
  }
  J.set("machines", std::move(Rows));

  J.set("depth", Depth.toJson());
  J.set("delays_used", DelaysUsed.toJson());
  if (FaultsUsed.N > 0)
    J.set("faults_used", FaultsUsed.toJson());
  J.set("slice_seconds", SliceSeconds.toJson());

  // Hottest dispatches first; the key tiebreak keeps the order stable
  // across runs with equal counts.
  std::vector<std::pair<std::tuple<int32_t, int32_t, int32_t>, uint64_t>>
      Hot(Transitions.begin(), Transitions.end());
  std::sort(Hot.begin(), Hot.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });
  if (Hot.size() > MaxTransitions)
    Hot.resize(MaxTransitions);
  Json T = Json::array();
  for (const auto &[K, Count] : Hot) {
    const auto [Type, State, Event] = K;
    Json R = Json::object();
    R.set("machine", Type >= 0 &&
                             Type < static_cast<int32_t>(Prog.Machines.size())
                         ? Prog.Machines[Type].Name
                         : std::to_string(Type));
    const bool KnownState =
        Type >= 0 && Type < static_cast<int32_t>(Prog.Machines.size()) &&
        State >= 0 &&
        State < static_cast<int32_t>(Prog.Machines[Type].States.size());
    R.set("state", KnownState ? Prog.Machines[Type].States[State].Name
                              : std::to_string(State));
    R.set("event", Event >= 0 &&
                           Event < static_cast<int32_t>(Prog.Events.size())
                       ? Prog.Events[Event].Name
                       : std::to_string(Event));
    R.set("count", Count);
    T.push(std::move(R));
  }
  J.set("hot_transitions", std::move(T));

  Json F = Json::object();
  F.set("drop", FaultKinds[0]);
  F.set("duplicate", FaultKinds[1]);
  F.set("crash", FaultKinds[2]);
  F.set("foreign", FaultKinds[3]);
  J.set("fault_kinds", std::move(F));
  return J;
}

std::string SearchProfile::str(const CompiledProgram &Prog) const {
  if (!Enabled)
    return "profile: off\n";
  std::string Out;
  char Buf[256];
  const uint64_t Total = std::max<uint64_t>(totalNodes(), 1);
  std::snprintf(Buf, sizeof(Buf), "  %-18s %12s %6s %12s %10s %10s %10s\n",
                "machine", "nodes", "%", "states", "slices", "slice_ms",
                "pruned");
  Out += Buf;
  for (size_t I = 0; I != Machines.size(); ++I) {
    const MachineProfile &M = Machines[I];
    if (M.Nodes == 0 && M.States == 0 && M.Slices == 0 &&
        M.SleepPruned == 0 && M.SymmetryCollapsed == 0)
      continue;
    std::snprintf(Buf, sizeof(Buf),
                  "  %-18s %12llu %5.1f%% %12llu %10llu %10.1f %10llu\n",
                  rowName(Prog, I, Machines.size()).c_str(),
                  static_cast<unsigned long long>(M.Nodes),
                  100.0 * static_cast<double>(M.Nodes) /
                      static_cast<double>(Total),
                  static_cast<unsigned long long>(M.States),
                  static_cast<unsigned long long>(M.Slices),
                  static_cast<double>(M.SliceNs) * 1e-6,
                  static_cast<unsigned long long>(M.SleepPruned +
                                                 M.SymmetryCollapsed));
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "  depth p50=%.0f p99=%.0f; delays p50=%.0f; slice p99=%.2gs\n",
                Depth.quantile(0.5), Depth.quantile(0.99),
                DelaysUsed.quantile(0.5), SliceSeconds.quantile(0.99));
  Out += Buf;
  return Out;
}
