//===- obs/TraceExport.h - Trace exporters and re-parsers ------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a recorded trace three ways:
///
///  * JSONL — one JSON object per line, the archival format; round-
///    trips through parseJsonl (tests reconcile per-kind counts with
///    CheckStats).
///  * Chrome trace-event JSON — loadable in Perfetto / chrome://tracing
///    (each sink renders as a thread track of instant events).
///  * Text message-sequence chart — machines as columns, sends as
///    arrows; the human-readable view of a counterexample.
///
/// renderScheduleMsc re-executes a checker schedule (the counter-
/// example's SchedDecisions) with tracing attached and renders the MSC
/// of exactly that path.
///
//===----------------------------------------------------------------------===//

#ifndef P_OBS_TRACEEXPORT_H
#define P_OBS_TRACEEXPORT_H

#include "obs/Trace.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace p {
struct CompiledProgram;
struct SchedDecision;
} // namespace p

namespace p::obs {

/// Writes one JSON object per event:
///   {"ts":<ns>,"tid":<sink>,"kind":"send","m":<id>,"a":<a>,"b":<b>}
/// Returns the number of lines written.
size_t exportJsonl(const std::vector<TraceEvent> &Events,
                   std::ostream &Out);

/// Parses exportJsonl output back. Returns false on the first
/// malformed line (and reports its 1-based number via \p BadLine).
bool parseJsonl(std::istream &In, std::vector<TraceEvent> &Out,
                size_t *BadLine = nullptr);

/// Writes the Chrome trace-event format (JSON object with a
/// "traceEvents" array of instant events, one Perfetto track per
/// sink). \p Prog, when given, resolves machine/event/state names
/// into the event args.
void exportChromeTrace(const std::vector<TraceEvent> &Events,
                       std::ostream &Out,
                       const CompiledProgram *Prog = nullptr);

/// Renders a text message-sequence chart: one column per machine,
/// sends as labelled arrows, state entries and errors as annotations.
/// At most \p MaxRows event rows are rendered (a trailing note says
/// how many were elided).
std::string renderMsc(const std::vector<TraceEvent> &Events,
                      const CompiledProgram *Prog = nullptr,
                      size_t MaxRows = 200);

/// Re-executes \p Schedule (e.g. CheckResult::Schedule) against a
/// fresh initial configuration of \p Prog with tracing attached, and
/// returns the MSC of that single path. \p UseModelBodies must match
/// the producing check() run.
std::string renderScheduleMsc(const CompiledProgram &Prog,
                              const std::vector<SchedDecision> &Schedule,
                              bool UseModelBodies = true);

} // namespace p::obs

#endif // P_OBS_TRACEEXPORT_H
