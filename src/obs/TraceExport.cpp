//===- obs/TraceExport.cpp ---------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceExport.h"

#include "checker/Checker.h"
#include "obs/Json.h"
#include "pir/Program.h"
#include "runtime/Executor.h"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

using namespace p;
using namespace p::obs;

//===----------------------------------------------------------------------===//
// JSONL
//===----------------------------------------------------------------------===//

size_t p::obs::exportJsonl(const std::vector<TraceEvent> &Events,
                           std::ostream &Out) {
  std::string Line;
  for (const TraceEvent &E : Events) {
    Line.clear();
    Line += "{\"ts\":";
    Line += std::to_string(E.TimeNs);
    Line += ",\"tid\":";
    Line += std::to_string(E.Tid);
    Line += ",\"kind\":\"";
    Line += traceKindName(E.Kind);
    Line += "\",\"m\":";
    Line += std::to_string(E.Machine);
    Line += ",\"a\":";
    Line += std::to_string(E.A);
    Line += ",\"b\":";
    Line += std::to_string(E.B);
    Line += "}\n";
    Out << Line;
  }
  return Events.size();
}

bool p::obs::parseJsonl(std::istream &In, std::vector<TraceEvent> &Out,
                        size_t *BadLine) {
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    Json J;
    if (!Json::parse(Line, J) || !J.isObject() || !J.get("ts").isNumber() ||
        !J.get("kind").isString()) {
      if (BadLine)
        *BadLine = LineNo;
      return false;
    }
    TraceEvent E;
    E.TimeNs = static_cast<uint64_t>(J.get("ts").asNumber());
    E.Tid = static_cast<uint16_t>(J.get("tid").asInt());
    E.Machine = static_cast<int32_t>(J.get("m").asInt());
    E.A = static_cast<int32_t>(J.get("a").asInt());
    E.B = static_cast<int32_t>(J.get("b").asInt());
    if (!traceKindFromName(J.get("kind").asString().c_str(), E.Kind)) {
      if (BadLine)
        *BadLine = LineNo;
      return false;
    }
    Out.push_back(E);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Chrome trace-event JSON (Perfetto)
//===----------------------------------------------------------------------===//

namespace {

std::string eventName(const CompiledProgram *Prog, int32_t Event) {
  if (Prog && Event >= 0 &&
      Event < static_cast<int32_t>(Prog->Events.size()))
    return Prog->Events[Event].Name;
  return "ev" + std::to_string(Event);
}

std::string stateName(const CompiledProgram *Prog, int32_t TypeIndex,
                      int32_t State) {
  if (Prog && TypeIndex >= 0 &&
      TypeIndex < static_cast<int32_t>(Prog->Machines.size()) &&
      State >= 0 &&
      State <
          static_cast<int32_t>(Prog->Machines[TypeIndex].States.size()))
    return Prog->Machines[TypeIndex].States[State].Name;
  return "s" + std::to_string(State);
}

std::string machineTypeName(const CompiledProgram *Prog,
                            int32_t TypeIndex) {
  if (Prog && TypeIndex >= 0 &&
      TypeIndex < static_cast<int32_t>(Prog->Machines.size()))
    return Prog->Machines[TypeIndex].Name;
  return "machine" + std::to_string(TypeIndex);
}

/// Human label for an event's A/B payload, used in Chrome-trace args
/// and MSC annotations.
std::string describeArgs(const TraceEvent &E, const CompiledProgram *Prog) {
  switch (E.Kind) {
  case TraceKind::Send:
    return eventName(Prog, E.A) + " -> #" + std::to_string(E.B);
  case TraceKind::Dequeue:
  case TraceKind::Raise:
    return eventName(Prog, E.A);
  case TraceKind::New:
    return machineTypeName(Prog, E.A);
  case TraceKind::StateEnter:
  case TraceKind::StateExit:
    return stateName(Prog, E.B, E.A);
  case TraceKind::Error:
    return errorKindName(static_cast<ErrorKind>(E.A));
  case TraceKind::FaultInjected: {
    std::string Out = faultKindName(static_cast<FaultKind>(E.A));
    if (E.B >= 0) // Queue faults carry the affected event in B.
      Out += " " + eventName(Prog, E.B);
    return Out;
  }
  case TraceKind::QueueOverflow:
    return eventName(Prog, E.A);
  case TraceKind::Delay:
  case TraceKind::Slice:
  case TraceKind::Halt:
    return "";
  }
  return "";
}

} // namespace

void p::obs::exportChromeTrace(const std::vector<TraceEvent> &Events,
                               std::ostream &Out,
                               const CompiledProgram *Prog) {
  uint64_t Base = Events.empty() ? 0 : Events.front().TimeNs;
  Json Root = Json::object();
  Json Arr = Json::array();
  for (const TraceEvent &E : Events) {
    Json O = Json::object();
    std::string Name = traceKindName(E.Kind);
    std::string Detail = describeArgs(E, Prog);
    if (!Detail.empty())
      Name += " " + Detail;
    O.set("name", Name);
    O.set("ph", "i");
    O.set("s", "t"); // Thread-scoped instant.
    // Microseconds with nanosecond precision, relative to the first
    // event so the timeline starts at zero.
    O.set("ts", static_cast<double>(E.TimeNs - Base) / 1000.0);
    O.set("pid", 1);
    O.set("tid", static_cast<int64_t>(E.Tid));
    Json Args = Json::object();
    Args.set("machine", static_cast<int64_t>(E.Machine));
    Args.set("a", static_cast<int64_t>(E.A));
    Args.set("b", static_cast<int64_t>(E.B));
    O.set("args", std::move(Args));
    Arr.push(std::move(O));
  }
  Root.set("traceEvents", std::move(Arr));
  Root.set("displayTimeUnit", "ns");
  Out << Root.str();
}

//===----------------------------------------------------------------------===//
// Text message-sequence chart
//===----------------------------------------------------------------------===//

namespace {

/// Column id -1 is the external environment ("env": host SMAddEvent).
struct MscLayout {
  std::vector<int32_t> MachineIds; ///< Column order.
  std::map<int32_t, size_t> ColOf;
  size_t Width = 14;

  size_t center(size_t Col) const { return Col * Width + Width / 2; }
};

void put(std::string &Row, size_t Pos, const std::string &Text) {
  if (Row.size() < Pos + Text.size())
    Row.resize(Pos + Text.size(), ' ');
  for (size_t I = 0; I != Text.size(); ++I)
    Row[Pos + I] = Text[I];
}

std::string lifelineRow(const MscLayout &L) {
  std::string Row(L.MachineIds.size() * L.Width, ' ');
  for (size_t C = 0; C != L.MachineIds.size(); ++C)
    Row[L.center(C)] = '|';
  return Row;
}

} // namespace

std::string p::obs::renderMsc(const std::vector<TraceEvent> &Events,
                              const CompiledProgram *Prog,
                              size_t MaxRows) {
  // Participants: every machine an event mentions, plus "env" when an
  // external send appears. Machine types come from new/state events.
  MscLayout L;
  std::map<int32_t, int32_t> TypeOf;
  bool HasEnv = false;
  auto note = [&](int32_t Id) {
    if (Id < 0) {
      HasEnv = true;
      return;
    }
    if (!L.ColOf.count(Id)) {
      L.ColOf[Id] = 0; // Placeholder; assigned after collection.
      L.MachineIds.push_back(Id);
    }
  };
  for (const TraceEvent &E : Events) {
    note(E.Machine);
    if (E.Kind == TraceKind::Send)
      note(E.B);
    if (E.Kind == TraceKind::New)
      TypeOf[E.Machine] = E.A;
    if (E.Kind == TraceKind::StateEnter || E.Kind == TraceKind::StateExit)
      TypeOf[E.Machine] = E.B;
  }
  std::sort(L.MachineIds.begin(), L.MachineIds.end());
  if (HasEnv)
    L.MachineIds.insert(L.MachineIds.begin(), -1);

  std::vector<std::string> Labels;
  for (int32_t Id : L.MachineIds) {
    std::string Label =
        Id < 0 ? "env"
               : (TypeOf.count(Id) ? machineTypeName(Prog, TypeOf[Id])
                                   : std::string("machine")) +
                     "#" + std::to_string(Id);
    Labels.push_back(Label);
    L.Width = std::max(L.Width, Label.size() + 2);
  }
  for (size_t C = 0; C != L.MachineIds.size(); ++C)
    L.ColOf[L.MachineIds[C]] = C;

  std::string Out;
  // Header: centered labels over the lifelines.
  {
    std::string Row(L.MachineIds.size() * L.Width, ' ');
    for (size_t C = 0; C != Labels.size(); ++C) {
      size_t Pos = L.center(C) >= Labels[C].size() / 2
                       ? L.center(C) - Labels[C].size() / 2
                       : 0;
      put(Row, Pos, Labels[C]);
    }
    Out += Row + "\n";
  }

  size_t Rows = 0, Elided = 0;
  for (const TraceEvent &E : Events) {
    // The MSC shows communication and control structure; scheduling
    // noise (slices, state exits) stays in the JSONL/Chrome views.
    if (E.Kind == TraceKind::Slice || E.Kind == TraceKind::StateExit)
      continue;
    if (Rows >= MaxRows) {
      ++Elided;
      continue;
    }
    std::string Row = lifelineRow(L);
    size_t Col = L.ColOf.count(E.Machine) ? L.ColOf[E.Machine] : 0;
    size_t C = L.center(Col);
    switch (E.Kind) {
    case TraceKind::Send: {
      size_t To = L.ColOf.count(E.B) ? L.ColOf[E.B] : Col;
      std::string Label = eventName(Prog, E.A);
      if (To == Col) {
        put(Row, C + 1, "(self " + Label + ")");
        break;
      }
      size_t Lo = std::min(C, L.center(To));
      size_t Hi = std::max(C, L.center(To));
      for (size_t P = Lo + 1; P < Hi; ++P)
        Row[P] = '-';
      if (To > Col)
        Row[Hi - 1] = '>';
      else
        Row[Lo + 1] = '<';
      size_t Mid = Lo + (Hi - Lo) / 2;
      size_t LPos = Mid >= Label.size() / 2 ? Mid - Label.size() / 2 : Lo + 2;
      put(Row, LPos, Label);
      break;
    }
    case TraceKind::Dequeue:
      put(Row, C + 1, "? " + eventName(Prog, E.A));
      break;
    case TraceKind::Raise:
      put(Row, C + 1, "^ " + eventName(Prog, E.A));
      break;
    case TraceKind::New:
      put(Row, C + 1, "* new " + machineTypeName(Prog, E.A));
      break;
    case TraceKind::StateEnter:
      put(Row, C + 1, "[" + stateName(Prog, E.B, E.A) + "]");
      break;
    case TraceKind::Delay:
      put(Row, C + 1, "~ delayed");
      break;
    case TraceKind::Halt:
      Row[C] = 'X';
      break;
    case TraceKind::Error:
      put(Row, C + 1,
          std::string("!! ") + errorKindName(static_cast<ErrorKind>(E.A)));
      break;
    case TraceKind::FaultInjected:
      put(Row, C + 1,
          std::string("%% ") + faultKindName(static_cast<FaultKind>(E.A)) +
              (E.B >= 0 ? " " + eventName(Prog, E.B) : std::string()));
      break;
    case TraceKind::QueueOverflow:
      put(Row, C + 1,
          std::string("%% queue-overflow ") + eventName(Prog, E.A));
      break;
    case TraceKind::Slice:
    case TraceKind::StateExit:
      break;
    }
    // Trim trailing spaces for tidy output.
    while (!Row.empty() && Row.back() == ' ')
      Row.pop_back();
    Out += Row + "\n";
    ++Rows;
  }
  if (Elided)
    Out += "... (" + std::to_string(Elided) + " more events elided)\n";
  return Out;
}

std::string
p::obs::renderScheduleMsc(const CompiledProgram &Prog,
                          const std::vector<SchedDecision> &Schedule,
                          bool UseModelBodies) {
  Executor::Options EO;
  EO.UseModelBodies = UseModelBodies;
  // Fault-carrying schedules deduce the foreign-fault-point flag the
  // same way Replay does (it moves slice boundaries).
  for (const SchedDecision &D : Schedule)
    if (D.K == SchedDecision::Kind::ForeignFault) {
      EO.ForeignFaultPoints = true;
      break;
    }
  Executor Exec(Prog, EO);
  TraceRecorder Recorder;
  TraceSink &Sink = Recorder.openSink();
  Exec.setTraceSink(&Sink);

  Config Cfg = Exec.makeInitialConfig();
  int32_t LastRun = -1;
  for (const SchedDecision &D : Schedule) {
    switch (D.K) {
    case SchedDecision::Kind::Delay:
      Sink.record(TraceKind::Delay, D.Machine);
      break;
    case SchedDecision::Kind::Choose:
      if (LastRun >= 0 && LastRun < static_cast<int32_t>(Cfg.Machines.size()))
        Cfg.mutableMachine(LastRun).InjectedChoice = D.Choice;
      break;
    case SchedDecision::Kind::DropEvent:
    case SchedDecision::Kind::DupEvent: {
      auto &Q = Cfg.mutableMachine(D.Machine).Queue;
      if (D.Aux < 0 || D.Aux >= static_cast<int32_t>(Q.size()))
        break;
      const bool Dup = D.K == SchedDecision::Kind::DupEvent;
      Sink.record(TraceKind::FaultInjected, D.Machine,
                  static_cast<int32_t>(Dup ? FaultKind::DuplicateEvent
                                           : FaultKind::DropEvent),
                  Q[D.Aux].first);
      if (Dup)
        Q.push_back(Q[D.Aux]);
      else
        Q.erase(Q.begin() + D.Aux);
      break;
    }
    case SchedDecision::Kind::Crash:
      Exec.crashMachine(Cfg, D.Machine); // Records FaultInjected itself.
      break;
    case SchedDecision::Kind::ForeignFault:
      // The executor records FaultInjected itself when it consumes the
      // injected failure at the next Run.
      if (D.Machine >= 0 &&
          D.Machine < static_cast<int32_t>(Cfg.Machines.size()))
        Cfg.mutableMachine(D.Machine).InjectedForeignFail = D.Choice;
      break;
    case SchedDecision::Kind::Run: {
      LastRun = D.Machine;
      Executor::StepResult R = Exec.step(Cfg, D.Machine);
      (void)R;
      break;
    }
    }
    if (Cfg.hasError())
      break;
  }
  return renderMsc(Recorder.snapshot(), &Prog);
}
