//===- obs/Profile.h - Search profiler: where states and time go -----------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The opt-in search profiler behind CheckOptions::Profile: attributes
/// the exploration's cost to the program being explored. Every search
/// node and distinct state is credited to the machine *type* whose
/// slice produced it (which machine's interleavings drive the blow-up),
/// slices are timed per type, reduction savings (sleep prunes, symmetry
/// collapses) are credited to the types that earned them, and hot
/// (state, event) dispatches are counted over the same keys the
/// coverage layer uses.
///
/// Each worker accumulates into its own SearchProfile with no locks or
/// atomics (single-writer, like the worker stat counters); the engine
/// merges them in worker-index order after the join, so the merged
/// totals are as deterministic as the counters they reconcile with
/// (states exactly; nodes up to the scheduling races CheckStats already
/// documents for Workers > 1). Profiling is an observer: with the flag
/// off nothing here is touched and CheckStats stays bit-identical.
///
//===----------------------------------------------------------------------===//

#ifndef P_OBS_PROFILE_H
#define P_OBS_PROFILE_H

#include "obs/Json.h"

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace p {
struct CompiledProgram;
} // namespace p

namespace p::obs {

/// A plain (non-atomic) histogram over fixed upper bounds with an
/// implicit +Inf bucket — the single-writer sibling of obs::Histogram,
/// mergeable and copyable so per-worker instances can fold into one.
struct ProfileHistogram {
  std::vector<double> Bounds;
  std::vector<uint64_t> Counts; ///< Bounds.size() + 1 once initialized.
  uint64_t N = 0;
  double Sum = 0;

  void init(std::vector<double> UpperBounds);
  void observe(double X);
  /// Adds \p O bucket-wise; bounds must match (both come from init with
  /// the same shape).
  void merge(const ProfileHistogram &O);
  /// Linearly interpolated quantile (0 <= Q <= 1) from the cumulative
  /// buckets; the +Inf bucket clamps to the last finite bound. 0 when
  /// empty.
  double quantile(double Q) const;
  Json toJson() const;
};

/// One machine type's share of the search (see SearchProfile::Machines).
struct MachineProfile {
  uint64_t Nodes = 0;  ///< Search nodes whose producing slice ran this type.
  uint64_t States = 0; ///< Distinct states credited the same way.
  uint64_t Slices = 0; ///< Slices of this type executed.
  uint64_t SliceNs = 0; ///< Wall time inside those slices.
  uint64_t SleepPruned = 0; ///< Sleep-set prunes of this type's Run branch.
  uint64_t SymmetryCollapsed = 0; ///< Collapses of nodes this type produced.
};

/// The merged profile of one check() run (CheckResult::Profile).
struct SearchProfile {
  /// False when CheckOptions::Profile was off: every field below is
  /// default-initialized and meaningless.
  bool Enabled = false;

  /// Indexed by machine type; one extra trailing row holds the root
  /// node and anything else no slice produced (see rowOf). With the
  /// profiler on, Nodes summed over all rows equals
  /// CheckStats::NodesExplored exactly, and the trailing row holds only
  /// the root — ≥99% attribution by construction.
  std::vector<MachineProfile> Machines;

  ProfileHistogram Depth;         ///< Depth of each explored node.
  ProfileHistogram DelaysUsed;    ///< Delay budget spent per node.
  ProfileHistogram FaultsUsed;    ///< Fault budget spent per node (only
                                  ///< observed when faults are enabled).
  ProfileHistogram SliceSeconds;  ///< Duration of individual slices.

  /// Dispatches per (machine type, state, event) coverage key — the
  /// hot-transition table. std::map keeps merge and rendering order
  /// deterministic.
  std::map<std::tuple<int32_t, int32_t, int32_t>, uint64_t> Transitions;

  /// Fault children pushed, by kind: drop, duplicate, crash, foreign.
  uint64_t FaultKinds[4] = {0, 0, 0, 0};

  /// Sizes Machines to \p NumTypes + 1 rows and the histograms to their
  /// standard bounds; sets Enabled.
  void init(size_t NumTypes);

  /// Row index for an attribution type (-1, the root, and anything out
  /// of range land on the trailing row).
  size_t rowOf(int32_t Type) const {
    return Type >= 0 && Type + 1 < static_cast<int32_t>(Machines.size())
               ? static_cast<size_t>(Type)
               : Machines.size() - 1;
  }

  /// Hot path: credit one explored node (depth/delay/fault histograms
  /// included; pass FaultsUsed < 0 to skip the fault histogram).
  void noteNode(int32_t Type, int Depth, int Delays, int Faults) {
    Machines[rowOf(Type)].Nodes += 1;
    this->Depth.observe(Depth);
    DelaysUsed.observe(Delays);
    if (Faults >= 0)
      FaultsUsed.observe(Faults);
  }

  /// Folds \p O into this profile (init must have run on both with the
  /// same type count).
  void merge(const SearchProfile &O);

  /// Nodes credited to real machine types (everything except the
  /// trailing root row).
  uint64_t attributedNodes() const;
  /// Nodes over every row including the root row; reconciles with
  /// CheckStats::NodesExplored.
  uint64_t totalNodes() const;

  /// The profile as a JSON object (machine/state/event names resolved
  /// from \p Prog; the hot-transition table is sorted by count
  /// descending, key ascending, and capped at \p MaxTransitions).
  Json toJson(const CompiledProgram &Prog, size_t MaxTransitions = 32) const;

  /// Human-readable table for bench/example stderr output.
  std::string str(const CompiledProgram &Prog) const;
};

} // namespace p::obs

#endif // P_OBS_PROFILE_H
