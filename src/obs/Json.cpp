//===- obs/Json.cpp ----------------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace p::obs;

void Json::set(const std::string &Key, Json V) {
  for (auto &[K, Existing] : Members)
    if (K == Key) {
      Existing = std::move(V);
      return;
    }
  Members.emplace_back(Key, std::move(V));
}

const Json *Json::find(const std::string &Key) const {
  for (const auto &[K, V] : Members)
    if (K == Key)
      return &V;
  return nullptr;
}

const Json &Json::get(const std::string &Key) const {
  static const Json Null;
  const Json *V = find(Key);
  return V ? *V : Null;
}

std::string p::obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

static void writeNumber(std::string &Out, double N) {
  // Integers (the common case: counters, ids) print without a decimal
  // point so the output is stable and compact.
  if (std::isfinite(N) && N == std::floor(N) && std::abs(N) < 9.0e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(N));
    Out += Buf;
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", N);
  Out += Buf;
}

void Json::write(std::string &Out, int Indent, int Depth) const {
  auto newline = [&](int D) {
    if (Indent <= 0)
      return;
    Out += '\n';
    Out.append(static_cast<size_t>(Indent) * D, ' ');
  };
  switch (Ty) {
  case Type::Null:
    Out += "null";
    return;
  case Type::Bool:
    Out += BoolV ? "true" : "false";
    return;
  case Type::Number:
    writeNumber(Out, NumV);
    return;
  case Type::String:
    Out += '"';
    Out += jsonEscape(StrV);
    Out += '"';
    return;
  case Type::Array: {
    if (Items.empty()) {
      Out += "[]";
      return;
    }
    Out += '[';
    for (size_t I = 0; I != Items.size(); ++I) {
      if (I)
        Out += ',';
      newline(Depth + 1);
      Items[I].write(Out, Indent, Depth + 1);
    }
    newline(Depth);
    Out += ']';
    return;
  }
  case Type::Object: {
    if (Members.empty()) {
      Out += "{}";
      return;
    }
    Out += '{';
    for (size_t I = 0; I != Members.size(); ++I) {
      if (I)
        Out += ',';
      newline(Depth + 1);
      Out += '"';
      Out += jsonEscape(Members[I].first);
      Out += Indent > 0 ? "\": " : "\":";
      Members[I].second.write(Out, Indent, Depth + 1);
    }
    newline(Depth);
    Out += '}';
    return;
  }
  }
}

std::string Json::str(int Indent) const {
  std::string Out;
  write(Out, Indent, 0);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

struct Parser {
  const std::string &Text;
  size_t Pos = 0;
  std::string Error;

  explicit Parser(const std::string &Text) : Text(Text) {}

  bool fail(const std::string &Msg) {
    Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && std::isspace(
                                    static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool parseValue(Json &Out) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Json(std::move(S));
      return true;
    }
    case 't':
      if (!Text.compare(Pos, 4, "true")) {
        Pos += 4;
        Out = Json(true);
        return true;
      }
      return fail("bad literal");
    case 'f':
      if (!Text.compare(Pos, 5, "false")) {
        Pos += 5;
        Out = Json(false);
        return true;
      }
      return fail("bad literal");
    case 'n':
      if (!Text.compare(Pos, 4, "null")) {
        Pos += 4;
        Out = Json();
        return true;
      }
      return fail("bad literal");
    default:
      return parseNumber(Out);
    }
  }

  bool parseString(std::string &Out) {
    if (Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        if (Pos + 1 >= Text.size())
          return fail("dangling escape");
        char E = Text[++Pos];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (Pos + 4 >= Text.size())
            return fail("truncated \\u escape");
          unsigned V = 0;
          for (int I = 0; I != 4; ++I) {
            char H = Text[Pos + 1 + I];
            V <<= 4;
            if (H >= '0' && H <= '9')
              V |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              V |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              V |= static_cast<unsigned>(H - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          Pos += 4;
          // UTF-8 encode (no surrogate pairs; our producers never emit
          // them).
          if (V < 0x80) {
            Out += static_cast<char>(V);
          } else if (V < 0x800) {
            Out += static_cast<char>(0xc0 | (V >> 6));
            Out += static_cast<char>(0x80 | (V & 0x3f));
          } else {
            Out += static_cast<char>(0xe0 | (V >> 12));
            Out += static_cast<char>(0x80 | ((V >> 6) & 0x3f));
            Out += static_cast<char>(0x80 | (V & 0x3f));
          }
          break;
        }
        default:
          return fail("unknown escape");
        }
        ++Pos;
        continue;
      }
      Out += C;
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseNumber(Json &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    if (Pos == Start)
      return fail("expected value");
    char *End = nullptr;
    double V = std::strtod(Text.c_str() + Start, &End);
    if (End != Text.c_str() + Pos)
      return fail("bad number");
    Out = Json(V);
    return true;
  }

  bool parseArray(Json &Out) {
    Out = Json::array();
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      Json V;
      if (!parseValue(V))
        return false;
      Out.push(std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseObject(Json &Out) {
    Out = Json::object();
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      std::string Key;
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':'");
      ++Pos;
      Json V;
      if (!parseValue(V))
        return false;
      Out.set(Key, std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

} // namespace

bool Json::parse(const std::string &Text, Json &Out, std::string *ErrorMsg) {
  Parser P(Text);
  if (!P.parseValue(Out)) {
    if (ErrorMsg)
      *ErrorMsg = P.Error;
    return false;
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    if (ErrorMsg)
      *ErrorMsg = "trailing garbage at offset " + std::to_string(P.Pos);
    return false;
  }
  return true;
}
