//===- obs/Report.cpp ---------------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Report.h"

#include "checker/Checker.h"
#include "host/Host.h"
#include "obs/BenchJson.h"
#include "obs/Metrics.h"
#include "pir/Program.h"
#include "runtime/Errors.h"
#include "support/AtomicFile.h"

#include <cstdio>
#include <fstream>

using namespace p;
using namespace p::obs;

Json p::obs::coverageToJson(const CompiledProgram &Prog,
                            const CoverageReport &Cov) {
  Json Out = Json::array();
  for (size_t T = 0; T != Cov.Machines.size() && T != Prog.Machines.size();
       ++T) {
    const CoverageReport::MachineCoverage &MC = Cov.Machines[T];
    // A type the run never instantiated has no coverage story to tell.
    if (MC.StatesVisited.empty() && MC.TransitionsFired.empty())
      continue;
    const MachineInfo &Info = Prog.Machines[T];
    Json M = Json::object();
    M.set("machine", Info.Name);
    M.set("states_covered", static_cast<uint64_t>(MC.StatesVisited.size()));
    M.set("states_total", static_cast<uint64_t>(Info.States.size()));
    M.set("transitions_covered",
          static_cast<uint64_t>(MC.TransitionsFired.size()));
    M.set("transitions_total",
          static_cast<uint64_t>(Info.countTransitions()));

    Json Unreached = Json::array();
    for (size_t S = 0; S != Info.States.size(); ++S)
      if (!MC.StatesVisited.count(static_cast<int32_t>(S)))
        Unreached.push(Info.States[S].Name);
    M.set("unreached_states", std::move(Unreached));

    // Every handler the schedules never dispatched, by name. After an
    // exhausted search these are dead handlers: events that can never
    // arrive in that state.
    Json Uncovered = Json::array();
    for (size_t S = 0; S != Info.States.size(); ++S) {
      const StateInfo &St = Info.States[S];
      for (size_t E = 0; E != St.OnEvent.size(); ++E) {
        if (St.OnEvent[E].Kind == TransitionKind::None)
          continue;
        if (MC.TransitionsFired.count({static_cast<int32_t>(S),
                                       static_cast<int32_t>(E)}))
          continue;
        Json U = Json::object();
        U.set("state", St.Name);
        U.set("event", E < Prog.Events.size() ? Prog.Events[E].Name
                                              : std::to_string(E));
        switch (St.OnEvent[E].Kind) {
        case TransitionKind::Step:
          U.set("kind", "step");
          break;
        case TransitionKind::Call:
          U.set("kind", "call");
          break;
        case TransitionKind::Action:
          U.set("kind", "action");
          break;
        case TransitionKind::None:
          break;
        }
        Uncovered.push(std::move(U));
      }
    }
    M.set("uncovered_transitions", std::move(Uncovered));
    Out.push(std::move(M));
  }
  return Out;
}

Json p::obs::hostToJson(const Host &H) {
  const HostStats &S = H.stats();
  Json J = Json::object();
  J.set("events_delivered", S.EventsDelivered);
  J.set("slices_run", S.SlicesRun);
  J.set("machines_created", S.MachinesCreated);
  J.set("machines_crashed", S.MachinesCrashed);
  J.set("events_per_sec", H.eventsPerSecond());
  J.set("queue_depth_highwater", S.QueueDepthHighWater);

  Json PerMachine = Json::array();
  const std::vector<uint32_t> HighWater = H.queueHighWater();
  const Config &Cfg = H.config();
  const CompiledProgram &Prog = H.program();
  for (size_t Id = 0; Id != HighWater.size(); ++Id) {
    if (HighWater[Id] == 0)
      continue;
    Json R = Json::object();
    R.set("id", static_cast<uint64_t>(Id));
    const int32_t T =
        Id < Cfg.Machines.size() ? Cfg.Machines[Id]->MachineIndex : -1;
    R.set("machine", T >= 0 &&
                             T < static_cast<int32_t>(Prog.Machines.size())
                         ? Prog.Machines[T].Name
                         : std::string("?"));
    R.set("highwater", static_cast<uint64_t>(HighWater[Id]));
    PerMachine.push(std::move(R));
  }
  J.set("per_machine_queue_highwater", std::move(PerMachine));

  const Histogram &L = H.dispatchLatency();
  Json D = Json::object();
  D.set("count", L.count());
  D.set("sum_seconds", L.sum());
  D.set("p50_seconds", histogramQuantile(L, 0.5));
  D.set("p99_seconds", histogramQuantile(L, 0.99));
  Json B = Json::array();
  for (double Bound : L.bounds())
    B.push(Bound);
  Json C = Json::array();
  for (size_t I = 0; I != L.bounds().size() + 1; ++I)
    C.push(L.bucketCount(I));
  D.set("bounds", std::move(B));
  D.set("counts", std::move(C));
  J.set("dispatch_latency", std::move(D));
  return J;
}

void RunReport::addCheckRun(const CompiledProgram &Prog, Json Config,
                            const CheckResult &R) {
  Json Run = Json::object();
  Run.set("config", std::move(Config));
  Run.set("stats", checkStatsToJson(R.Stats));
  Run.set("seconds", R.Stats.Seconds);
  if (R.ErrorFound) {
    Json E = Json::object();
    E.set("kind", errorKindName(R.Error));
    E.set("message", R.ErrorMessage);
    E.set("delays_used", R.DelaysUsedOnError);
    E.set("faults_used", R.FaultsUsedOnError);
    Run.set("error", std::move(E));
  }
  if (R.Profile.Enabled)
    Run.set("profile", R.Profile.toJson(Prog));
  if (!R.Coverage.Machines.empty())
    Run.set("coverage", coverageToJson(Prog, R.Coverage));
  Runs.push(std::move(Run));
}

void RunReport::setHost(const Host &H) { HostJson = hostToJson(H); }

void RunReport::setMetrics(const MetricsRegistry &Registry) {
  MetricsText = Registry.renderPrometheus();
}

Json RunReport::json() const {
  Json J = Json::object();
  J.set("schema", "p-run-report-v1");
  J.set("tool", Tool);
  J.set("runs", Runs);
  if (!HostJson.isNull())
    J.set("host", HostJson);
  if (!MetricsText.isNull())
    J.set("metrics", MetricsText);
  return J;
}

//===----------------------------------------------------------------------===//
// HTML rendering (from the JSON document, so both artifacts agree).
//===----------------------------------------------------------------------===//

static std::string htmlEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '&':
      Out += "&amp;";
      break;
    case '<':
      Out += "&lt;";
      break;
    case '>':
      Out += "&gt;";
      break;
    case '"':
      Out += "&quot;";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

static std::string fmtNumber(const Json &V) {
  if (!V.isNumber())
    return V.isString() ? V.asString() : V.str();
  const double N = V.asNumber();
  char Buf[64];
  if (N == static_cast<double>(static_cast<int64_t>(N)) &&
      N < 9.0e15 && N > -9.0e15)
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(N));
  else
    std::snprintf(Buf, sizeof(Buf), "%.6g", N);
  return Buf;
}

/// "key=value key=value" one-liner of a config object.
static std::string configLine(const Json &Config) {
  std::string Out;
  if (!Config.isObject())
    return Out;
  for (const auto &[K, V] : Config.members()) {
    if (!Out.empty())
      Out += ' ';
    Out += K + "=" +
           (V.isString() ? V.asString() : fmtNumber(V));
  }
  return Out;
}

std::string RunReport::html() const {
  const Json J = json();
  std::string H;
  H += "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n";
  H += "<title>" + htmlEscape(Tool) + " run report</title>\n";
  H += "<style>\n"
       "body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;"
       "max-width:72em;padding:0 1em;color:#222}\n"
       "h1{font-size:1.4em}h2{font-size:1.1em;margin-top:2em}\n"
       "table{border-collapse:collapse;margin:0.5em 0}\n"
       "th,td{border:1px solid #ccc;padding:0.25em 0.6em;text-align:left}\n"
       "th{background:#f2f2f2}\n"
       "td.num,th.num{text-align:right;font-variant-numeric:tabular-nums}\n"
       ".ok{color:#2a7a2a}.bad{color:#b00020}\n"
       ".cfg{color:#666;font-size:0.9em}\n"
       "pre{background:#f7f7f7;border:1px solid #ddd;padding:0.6em;"
       "overflow-x:auto}\n"
       "</style></head><body>\n";
  H += "<h1>" + htmlEscape(Tool) + " run report</h1>\n";
  H += "<p class=\"cfg\">schema " + htmlEscape(J.get("schema").asString()) +
       "</p>\n";

  const Json &Runs = J.get("runs");

  // Per-run summary table.
  if (Runs.isArray() && Runs.size() > 0) {
    H += "<h2>Check runs</h2>\n<table id=\"runs\">\n"
         "<tr><th>#</th><th>config</th><th class=\"num\">states</th>"
         "<th class=\"num\">nodes</th><th class=\"num\">max depth</th>"
         "<th class=\"num\">seconds</th><th>exhausted</th>"
         "<th>result</th></tr>\n";
    for (size_t I = 0; I != Runs.size(); ++I) {
      const Json &R = Runs.at(I);
      const Json &S = R.get("stats");
      H += "<tr><td class=\"num\">" + std::to_string(I) + "</td><td>" +
           htmlEscape(configLine(R.get("config"))) + "</td>";
      H += "<td class=\"num\">" + fmtNumber(S.get("distinct_states")) +
           "</td>";
      H += "<td class=\"num\">" + fmtNumber(S.get("nodes_explored")) +
           "</td>";
      H += "<td class=\"num\">" + fmtNumber(S.get("max_depth")) + "</td>";
      H += "<td class=\"num\">" + fmtNumber(R.get("seconds")) + "</td>";
      H += std::string("<td>") +
           (S.get("exhausted").isBool() && S.get("exhausted").asBool()
                ? "yes"
                : "no") +
           "</td>";
      if (R.has("error"))
        H += "<td class=\"bad\">error: " +
             htmlEscape(R.get("error").get("kind").asString()) + "</td>";
      else
        H += "<td class=\"ok\">clean</td>";
      H += "</tr>\n";
    }
    H += "</table>\n";
  }

  // Profile tables (one per run that has one).
  for (size_t I = 0; I != Runs.size(); ++I) {
    const Json &R = Runs.at(I);
    if (!R.has("profile"))
      continue;
    const Json &P = R.get("profile");
    H += "<h2>Search profile (run " + std::to_string(I) + ")</h2>\n";
    H += "<p class=\"cfg\">nodes attributed " +
         fmtNumber(P.get("nodes_attributed")) + " / " +
         fmtNumber(P.get("nodes_total")) + "</p>\n";
    const Json &Machines = P.get("machines");
    if (Machines.isArray() && Machines.size() > 0) {
      H += "<table><tr><th>machine</th><th class=\"num\">nodes</th>"
           "<th class=\"num\">states</th><th class=\"num\">slices</th>"
           "<th class=\"num\">slice s</th><th class=\"num\">sleep "
           "pruned</th><th class=\"num\">symmetry collapsed</th></tr>\n";
      for (size_t M = 0; M != Machines.size(); ++M) {
        const Json &Row = Machines.at(M);
        H += "<tr><td>" + htmlEscape(Row.get("machine").asString()) +
             "</td><td class=\"num\">" + fmtNumber(Row.get("nodes")) +
             "</td><td class=\"num\">" + fmtNumber(Row.get("states")) +
             "</td><td class=\"num\">" + fmtNumber(Row.get("slices")) +
             "</td><td class=\"num\">" +
             fmtNumber(Row.get("slice_seconds")) +
             "</td><td class=\"num\">" +
             fmtNumber(Row.get("sleep_pruned")) +
             "</td><td class=\"num\">" +
             fmtNumber(Row.get("symmetry_collapsed")) + "</td></tr>\n";
      }
      H += "</table>\n";
    }
    const Json &Hot = P.get("hot_transitions");
    if (Hot.isArray() && Hot.size() > 0) {
      H += "<h2>Hot transitions (run " + std::to_string(I) + ")</h2>\n";
      H += "<table><tr><th>machine</th><th>state</th><th>event</th>"
           "<th class=\"num\">dispatches</th></tr>\n";
      for (size_t T = 0; T != Hot.size(); ++T) {
        const Json &Row = Hot.at(T);
        H += "<tr><td>" + htmlEscape(Row.get("machine").asString()) +
             "</td><td>" + htmlEscape(Row.get("state").asString()) +
             "</td><td>" + htmlEscape(Row.get("event").asString()) +
             "</td><td class=\"num\">" + fmtNumber(Row.get("count")) +
             "</td></tr>\n";
      }
      H += "</table>\n";
    }
  }

  // Coverage: one table, all runs, uncovered transitions named.
  bool CoverageHeader = false;
  for (size_t I = 0; I != Runs.size(); ++I) {
    const Json &R = Runs.at(I);
    if (!R.has("coverage"))
      continue;
    if (!CoverageHeader) {
      H += "<h2>Coverage</h2>\n<table id=\"coverage\">\n"
           "<tr><th>run</th><th>machine</th><th class=\"num\">states</th>"
           "<th class=\"num\">transitions</th><th>unreached states</th>"
           "<th>uncovered transitions</th></tr>\n";
      CoverageHeader = true;
    }
    const Json &Cov = R.get("coverage");
    for (size_t M = 0; M != Cov.size(); ++M) {
      const Json &Row = Cov.at(M);
      H += "<tr><td class=\"num\">" + std::to_string(I) + "</td><td>" +
           htmlEscape(Row.get("machine").asString()) + "</td>";
      H += "<td class=\"num\">" + fmtNumber(Row.get("states_covered")) +
           "/" + fmtNumber(Row.get("states_total")) + "</td>";
      H += "<td class=\"num\">" +
           fmtNumber(Row.get("transitions_covered")) + "/" +
           fmtNumber(Row.get("transitions_total")) + "</td>";
      std::string Unreached;
      const Json &U = Row.get("unreached_states");
      for (size_t K = 0; K != U.size(); ++K)
        Unreached += (K ? ", " : "") + U.at(K).asString();
      H += "<td>" + htmlEscape(Unreached) + "</td>";
      std::string Uncov;
      const Json &UT = Row.get("uncovered_transitions");
      for (size_t K = 0; K != UT.size(); ++K) {
        const Json &Pair = UT.at(K);
        Uncov += (K ? ", " : "") + Pair.get("state").asString() + " on " +
                 Pair.get("event").asString();
      }
      H += "<td>" +
           (Uncov.empty() ? std::string("<span class=\"ok\">full</span>")
                          : htmlEscape(Uncov)) +
           "</td></tr>\n";
    }
  }
  if (CoverageHeader)
    H += "</table>\n";

  // Host section.
  if (J.has("host")) {
    const Json &Ho = J.get("host");
    const Json &D = Ho.get("dispatch_latency");
    H += "<h2>Host</h2>\n<table id=\"host\">\n";
    H += "<tr><th>events delivered</th><td class=\"num\">" +
         fmtNumber(Ho.get("events_delivered")) + "</td></tr>\n";
    H += "<tr><th>slices run</th><td class=\"num\">" +
         fmtNumber(Ho.get("slices_run")) + "</td></tr>\n";
    H += "<tr><th>events/sec</th><td class=\"num\">" +
         fmtNumber(Ho.get("events_per_sec")) + "</td></tr>\n";
    H += "<tr><th>queue depth high-water</th><td class=\"num\">" +
         fmtNumber(Ho.get("queue_depth_highwater")) + "</td></tr>\n";
    H += "<tr><th>dispatch latency p50</th><td class=\"num\">" +
         fmtNumber(D.get("p50_seconds")) + " s</td></tr>\n";
    H += "<tr><th>dispatch latency p99</th><td class=\"num\">" +
         fmtNumber(D.get("p99_seconds")) + " s</td></tr>\n";
    H += "<tr><th>dispatches timed</th><td class=\"num\">" +
         fmtNumber(D.get("count")) + "</td></tr>\n";
    H += "</table>\n";
  }

  // Raw metrics dump, when attached.
  if (J.has("metrics"))
    H += "<h2>Metrics</h2>\n<pre>" +
         htmlEscape(J.get("metrics").asString()) + "</pre>\n";

  H += "</body></html>\n";
  return H;
}

static std::string stripReportExt(std::string Base) {
  for (const char *Ext : {".json", ".html"}) {
    const size_t N = std::string(Ext).size();
    if (Base.size() > N && Base.compare(Base.size() - N, N, Ext) == 0)
      return Base.substr(0, Base.size() - N);
  }
  return Base;
}

bool RunReport::writeTo(const std::string &Base, std::string *Why) const {
  const Json J = json();
  std::string Reason;
  if (!validateRunReport(J, Reason)) {
    if (Why)
      *Why = "schema violation: " + Reason;
    return false;
  }
  const std::string Stem = stripReportExt(Base);
  // Atomic temp+rename emission: a reader (or a crash — reports are
  // written right when interrupted runs wind down) never observes a
  // half-written report, only the old file or the new one.
  if (!writeFileAtomic(Stem + ".json", J.str(2) + "\n", Why))
    return false;
  if (!writeFileAtomic(Stem + ".html", html(), Why))
    return false;
  if (Why)
    Why->clear();
  return true;
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

bool p::obs::validateCoverageJson(const Json &Cov, std::string &Why,
                                  const std::string &At) {
  if (!Cov.isArray()) {
    Why = At + "coverage is not an array";
    return false;
  }
  for (size_t M = 0; M != Cov.size(); ++M) {
    const Json &Row = Cov.at(M);
    const std::string Here =
        At + "coverage[" + std::to_string(M) + "]: ";
    if (!Row.isObject() || !Row.get("machine").isString()) {
      Why = Here + "missing string 'machine'";
      return false;
    }
    for (const char *Key :
         {"states_covered", "states_total", "transitions_covered",
          "transitions_total"})
      if (!Row.get(Key).isNumber()) {
        Why = Here + "missing numeric '" + Key + "'";
        return false;
      }
    if (!Row.get("unreached_states").isArray() ||
        !Row.get("uncovered_transitions").isArray()) {
      Why = Here + "missing unreached_states/uncovered_transitions arrays";
      return false;
    }
    const Json &UT = Row.get("uncovered_transitions");
    for (size_t K = 0; K != UT.size(); ++K)
      if (!UT.at(K).get("state").isString() ||
          !UT.at(K).get("event").isString()) {
        Why = Here + "uncovered transition without state/event names";
        return false;
      }
  }
  return true;
}

bool p::obs::validateRunReport(const Json &Report, std::string &Why) {
  if (!Report.isObject()) {
    Why = "report is not a JSON object";
    return false;
  }
  if (!Report.get("schema").isString() ||
      Report.get("schema").asString() != "p-run-report-v1") {
    Why = "missing schema tag 'p-run-report-v1'";
    return false;
  }
  if (!Report.get("tool").isString() ||
      Report.get("tool").asString().empty()) {
    Why = "missing string 'tool'";
    return false;
  }
  const Json &Runs = Report.get("runs");
  if (!Runs.isArray()) {
    Why = "missing array 'runs'";
    return false;
  }
  if (Runs.size() == 0 && !Report.has("host")) {
    Why = "empty runs array without a host section";
    return false;
  }
  static const char *StatKeys[] = {"distinct_states", "nodes_explored",
                                   "max_depth",       "workers_used",
                                   "visited_bytes",   "symmetry_collapsed",
                                   "pruned_by_independence"};
  for (size_t I = 0; I != Runs.size(); ++I) {
    const Json &R = Runs.at(I);
    const std::string At = "run " + std::to_string(I) + ": ";
    if (!R.isObject() || !R.get("config").isObject()) {
      Why = At + "missing object 'config'";
      return false;
    }
    const Json &S = R.get("stats");
    if (!S.isObject()) {
      Why = At + "missing object 'stats'";
      return false;
    }
    for (const char *Key : StatKeys)
      if (!S.get(Key).isNumber()) {
        Why = At + "stats missing numeric '" + Key + "'";
        return false;
      }
    if (!R.get("seconds").isNumber() || R.get("seconds").asNumber() < 0) {
      Why = At + "missing non-negative number 'seconds'";
      return false;
    }
    if (R.has("profile")) {
      if (!R.get("profile").isObject() ||
          !R.get("profile").get("enabled").isBool()) {
        Why = At + "profile without boolean 'enabled'";
        return false;
      }
      if (R.get("profile").get("enabled").asBool() &&
          !R.get("profile").get("machines").isArray()) {
        Why = At + "enabled profile without 'machines' array";
        return false;
      }
    }
    if (R.has("coverage") &&
        !validateCoverageJson(R.get("coverage"), Why, At))
      return false;
  }
  if (Report.has("host")) {
    const Json &Ho = Report.get("host");
    if (!Ho.isObject() || !Ho.get("events_delivered").isNumber()) {
      Why = "host section without numeric 'events_delivered'";
      return false;
    }
    const Json &D = Ho.get("dispatch_latency");
    if (!D.isObject() || !D.get("p50_seconds").isNumber() ||
        !D.get("p99_seconds").isNumber() || !D.get("count").isNumber()) {
      Why = "host dispatch_latency without numeric p50/p99/count";
      return false;
    }
  }
  if (Report.has("metrics") && !Report.get("metrics").isString()) {
    Why = "metrics section is not a string";
    return false;
  }
  Why.clear();
  return true;
}
