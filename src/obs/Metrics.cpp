//===- obs/Metrics.cpp -------------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace p::obs;

Histogram::Histogram(std::vector<double> UpperBounds)
    : Bounds(std::move(UpperBounds)),
      Buckets(new std::atomic<uint64_t>[Bounds.size() + 1]) {
  for (size_t I = 0; I != Bounds.size() + 1; ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double X) {
  size_t I = 0;
  while (I != Bounds.size() && X > Bounds[I])
    ++I;
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
  N.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(X, std::memory_order_relaxed);
}

void Histogram::merge(const Histogram &O) {
  if (Bounds != O.Bounds)
    return;
  for (size_t I = 0; I != Bounds.size() + 1; ++I)
    Buckets[I].fetch_add(O.bucketCount(I), std::memory_order_relaxed);
  N.fetch_add(O.count(), std::memory_order_relaxed);
  Sum.fetch_add(O.sum(), std::memory_order_relaxed);
}

double p::obs::histogramQuantile(const Histogram &H, double Q) {
  const uint64_t Total = H.count();
  if (Total == 0)
    return 0;
  Q = std::min(std::max(Q, 0.0), 1.0);
  const double Rank = Q * static_cast<double>(Total);
  const std::vector<double> &Bounds = H.bounds();
  uint64_t Cum = 0;
  for (size_t I = 0; I != Bounds.size() + 1; ++I) {
    const uint64_t Prev = Cum;
    const uint64_t Here = H.bucketCount(I);
    Cum += Here;
    if (static_cast<double>(Cum) < Rank)
      continue;
    if (I >= Bounds.size()) // +Inf bucket: clamp to the last edge.
      return Bounds.empty() ? 0 : Bounds.back();
    const double Lo = I == 0 ? 0 : Bounds[I - 1];
    const double Hi = Bounds[I];
    if (Here == 0)
      return Hi;
    const double Frac =
        (Rank - static_cast<double>(Prev)) / static_cast<double>(Here);
    return Lo + (Hi - Lo) * std::min(std::max(Frac, 0.0), 1.0);
  }
  return Bounds.empty() ? 0 : Bounds.back();
}

std::vector<double> p::obs::exponentialBounds(double Start, double Factor,
                                              size_t Count) {
  std::vector<double> Bounds;
  Bounds.reserve(Count);
  double B = Start;
  for (size_t I = 0; I != Count; ++I, B *= Factor)
    Bounds.push_back(B);
  return Bounds;
}

Counter &MetricsRegistry::counter(const std::string &Name,
                                  const std::string &Help) {
  std::lock_guard<std::mutex> L(Mu);
  Entry &E = Entries[Name];
  if (!E.C) {
    E.C.reset(new Counter());
    if (E.Help.empty())
      E.Help = Help;
  }
  return *E.C;
}

Gauge &MetricsRegistry::gauge(const std::string &Name,
                              const std::string &Help) {
  std::lock_guard<std::mutex> L(Mu);
  Entry &E = Entries[Name];
  if (!E.G) {
    E.G.reset(new Gauge());
    if (E.Help.empty())
      E.Help = Help;
  }
  return *E.G;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      std::vector<double> UpperBounds,
                                      const std::string &Help) {
  std::lock_guard<std::mutex> L(Mu);
  Entry &E = Entries[Name];
  if (!E.H) {
    E.H.reset(new Histogram(std::move(UpperBounds)));
    if (E.Help.empty())
      E.Help = Help;
  }
  return *E.H;
}

const Counter *MetricsRegistry::findCounter(const std::string &Name) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Entries.find(Name);
  return It == Entries.end() ? nullptr : It->second.C.get();
}

const Gauge *MetricsRegistry::findGauge(const std::string &Name) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Entries.find(Name);
  return It == Entries.end() ? nullptr : It->second.G.get();
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &Name) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Entries.find(Name);
  return It == Entries.end() ? nullptr : It->second.H.get();
}

static void appendNumber(std::string &Out, double V) {
  char Buf[64];
  if (std::isfinite(V) && V == std::floor(V) && std::abs(V) < 9.0e15)
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
  else
    std::snprintf(Buf, sizeof(Buf), "%g", V);
  Out += Buf;
}

std::string MetricsRegistry::renderPrometheus() const {
  std::lock_guard<std::mutex> L(Mu);
  std::string Out;
  for (const auto &[Name, E] : Entries) {
    if (!E.Help.empty())
      Out += "# HELP " + Name + " " + E.Help + "\n";
    if (E.C) {
      Out += "# TYPE " + Name + " counter\n" + Name + " ";
      appendNumber(Out, static_cast<double>(E.C->value()));
      Out += '\n';
    }
    if (E.G) {
      Out += "# TYPE " + Name + " gauge\n" + Name + " ";
      appendNumber(Out, E.G->value());
      Out += '\n';
    }
    if (E.H) {
      Out += "# TYPE " + Name + " histogram\n";
      uint64_t Cum = 0;
      for (size_t I = 0; I != E.H->bounds().size(); ++I) {
        Cum += E.H->bucketCount(I);
        Out += Name + "_bucket{le=\"";
        appendNumber(Out, E.H->bounds()[I]);
        Out += "\"} ";
        appendNumber(Out, static_cast<double>(Cum));
        Out += '\n';
      }
      Cum += E.H->bucketCount(E.H->bounds().size());
      Out += Name + "_bucket{le=\"+Inf\"} ";
      appendNumber(Out, static_cast<double>(Cum));
      Out += '\n';
      Out += Name + "_sum ";
      appendNumber(Out, E.H->sum());
      Out += '\n';
      Out += Name + "_count ";
      appendNumber(Out, static_cast<double>(E.H->count()));
      Out += '\n';
    }
  }
  return Out;
}
