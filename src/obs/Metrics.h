//===- obs/Metrics.h - Counters, gauges, histograms ------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small metrics registry in the Prometheus model: named counters
/// (monotonic), gauges (set-to-current), and histograms (fixed upper
/// bounds, cumulative buckets). All instruments are lock-free on the
/// hot path (plain atomics); the registry mutex guards registration
/// and rendering only.
///
/// The checker fills a registry per check() run (nodes, states,
/// frontier-depth distribution, steal/contention counters — see
/// CheckOptions::Metrics), the Host exports its HostStats, and
/// renderPrometheus() dumps everything in the text exposition format
/// so a scrape endpoint or a bench log can consume it unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef P_OBS_METRICS_H
#define P_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace p::obs {

/// Monotonically increasing counter.
class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-write-wins gauge.
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<double> V{0};
};

/// Histogram over fixed upper bounds (ascending; an implicit +Inf
/// bucket is appended). observe() is two relaxed atomic adds plus a
/// linear bound scan — bounds lists are short by construction.
class Histogram {
public:
  explicit Histogram(std::vector<double> UpperBounds);

  void observe(double X);

  /// Adds \p O's buckets, count, and sum into this histogram. Both
  /// sides must have identical bounds (mismatched merges are ignored);
  /// used to copy a privately-owned histogram into a registry one.
  void merge(const Histogram &O);

  const std::vector<double> &bounds() const { return Bounds; }
  /// Non-cumulative count of bucket \p I (I == bounds().size() is the
  /// +Inf bucket).
  uint64_t bucketCount(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }

private:
  std::vector<double> Bounds;
  std::unique_ptr<std::atomic<uint64_t>[]> Buckets;
  std::atomic<uint64_t> N{0};
  std::atomic<double> Sum{0};
};

/// Exponentially spaced bounds {Start, Start*Factor, ...} with
/// \p Count entries — the usual shape for depth/size distributions.
std::vector<double> exponentialBounds(double Start, double Factor,
                                      size_t Count);

/// Linearly interpolated quantile (0 <= Q <= 1) of \p H from its
/// cumulative buckets; observations in the +Inf bucket clamp to the
/// last finite bound. 0 for an empty histogram. The host's p50/p99
/// latency figures come from here.
double histogramQuantile(const Histogram &H, double Q);

/// Named instruments. Lookup-or-create is idempotent: asking for an
/// existing name returns the same instrument (the help text of the
/// first registration wins), so layers can share a registry without
/// coordination.
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name, const std::string &Help = "");
  Gauge &gauge(const std::string &Name, const std::string &Help = "");
  Histogram &histogram(const std::string &Name,
                       std::vector<double> UpperBounds,
                       const std::string &Help = "");

  /// Looks up an instrument without creating it.
  const Counter *findCounter(const std::string &Name) const;
  const Gauge *findGauge(const std::string &Name) const;
  const Histogram *findHistogram(const std::string &Name) const;

  /// The Prometheus text exposition format, instruments sorted by name.
  std::string renderPrometheus() const;

private:
  struct Entry {
    std::string Help;
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
  };
  mutable std::mutex Mu;
  std::map<std::string, Entry> Entries; ///< Sorted render for free.
};

} // namespace p::obs

#endif // P_OBS_METRICS_H
