//===- obs/Json.h - Minimal JSON value, parser, and writer -----------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON library for the observability layer: the
/// bench `--json` reports, the JSONL/Chrome trace exporters, and the
/// tests that re-parse both. No external dependency (the container may
/// not have one); covers the full JSON grammar minus surrogate-pair
/// \u escapes, which none of our producers emit.
///
//===----------------------------------------------------------------------===//

#ifndef P_OBS_JSON_H
#define P_OBS_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace p::obs {

/// A JSON value. Objects keep insertion order (schema output stays
/// readable and diffable); lookup is linear, which is fine at our
/// sizes.
class Json {
public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : Ty(Type::Null) {}
  Json(bool B) : Ty(Type::Bool), BoolV(B) {}
  Json(double N) : Ty(Type::Number), NumV(N) {}
  Json(int64_t N) : Ty(Type::Number), NumV(static_cast<double>(N)) {}
  Json(uint64_t N) : Ty(Type::Number), NumV(static_cast<double>(N)) {}
  Json(int N) : Ty(Type::Number), NumV(N) {}
  Json(const char *S) : Ty(Type::String), StrV(S) {}
  Json(std::string S) : Ty(Type::String), StrV(std::move(S)) {}

  static Json array() {
    Json J;
    J.Ty = Type::Array;
    return J;
  }
  static Json object() {
    Json J;
    J.Ty = Type::Object;
    return J;
  }

  Type type() const { return Ty; }
  bool isNull() const { return Ty == Type::Null; }
  bool isBool() const { return Ty == Type::Bool; }
  bool isNumber() const { return Ty == Type::Number; }
  bool isString() const { return Ty == Type::String; }
  bool isArray() const { return Ty == Type::Array; }
  bool isObject() const { return Ty == Type::Object; }

  bool asBool() const { return BoolV; }
  double asNumber() const { return NumV; }
  int64_t asInt() const { return static_cast<int64_t>(NumV); }
  const std::string &asString() const { return StrV; }

  /// Array access.
  size_t size() const {
    return Ty == Type::Array ? Items.size() : Members.size();
  }
  const Json &at(size_t I) const { return Items[I]; }
  void push(Json V) { Items.push_back(std::move(V)); }

  /// Object access. get() returns a shared null for missing keys.
  void set(const std::string &Key, Json V);
  const Json *find(const std::string &Key) const;
  const Json &get(const std::string &Key) const;
  bool has(const std::string &Key) const { return find(Key) != nullptr; }
  const std::vector<std::pair<std::string, Json>> &members() const {
    return Members;
  }

  /// Serializes; \p Indent > 0 pretty-prints with that many spaces.
  std::string str(int Indent = 0) const;

  /// Parses \p Text. Returns false (and fills \p ErrorMsg with a
  /// position-annotated message) on malformed input.
  static bool parse(const std::string &Text, Json &Out,
                    std::string *ErrorMsg = nullptr);

private:
  Type Ty;
  bool BoolV = false;
  double NumV = 0;
  std::string StrV;
  std::vector<Json> Items;
  std::vector<std::pair<std::string, Json>> Members;

  void write(std::string &Out, int Indent, int Depth) const;
};

/// Escapes \p S as the *inside* of a JSON string literal (no quotes).
std::string jsonEscape(const std::string &S);

} // namespace p::obs

#endif // P_OBS_JSON_H
