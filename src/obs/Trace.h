//===- obs/Trace.h - Structured event tracing ------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Low-overhead structured event tracing for every execution layer
/// (Executor, Host, checker). The paper's methodology — run the
/// program, watch the events, count the states — needs a way to *see*
/// an execution; this is it.
///
/// Design: a TraceRecorder owns one fixed-capacity ring buffer per
/// writer thread (a TraceSink). Recording an event is lock-free — the
/// sink is owned by exactly one thread, so a record() is a clock read
/// plus a store into the ring. When the ring is full the oldest events
/// are overwritten (the recent tail is what matters for debugging);
/// total and dropped counts are kept so exporters can say what was
/// lost. Sinks are registered under a mutex once per thread, not per
/// event.
///
/// Snapshots (merge + time-sort of all sinks) are taken after the
/// traced run has quiesced — e.g. after check() returns or the Host
/// drained — the recorder does not support concurrent export while
/// writers are still recording.
///
/// Exporters (JSONL, Chrome trace-event JSON, text message-sequence
/// chart) live in obs/TraceExport.h.
///
//===----------------------------------------------------------------------===//

#ifndef P_OBS_TRACE_H
#define P_OBS_TRACE_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace p::obs {

/// What happened. The kinds mirror the operational semantics: the
/// communication rules (send/new), the queue rules (dequeue/raise),
/// control-flow structure (state entry/exit, halt), the checker's
/// scheduling decisions (slice/delay), and the error transitions.
enum class TraceKind : uint8_t {
  Send,       ///< SEND: Machine=sender (-1: external/host), A=event, B=target.
  Dequeue,    ///< DEQUEUE: Machine, A=event.
  Raise,      ///< RAISE: Machine, A=event.
  New,        ///< NEW: Machine=child id, A=machine type index.
  StateEnter, ///< A state frame became the top: A=state, B=type index.
  StateExit,  ///< A state frame left the top: A=state, B=type index.
  Delay,      ///< Delaying scheduler spent a delay: Machine moved to bottom.
  Slice,      ///< A run-to-scheduling-point slice started: Machine ran.
  Halt,       ///< DELETE: Machine executed delete.
  Error,      ///< Error transition: Machine, A=(int)ErrorKind.
  FaultInjected, ///< Fault layer acted: Machine, A=(int)FaultKind, B=event
                 ///< (or -1 for machine-level faults like crash/restart).
  QueueOverflow, ///< Bounded queue overflowed: Machine=target, A=event,
                 ///< B=(int)OverflowPolicy that handled it.
};

inline constexpr size_t NumTraceKinds = 12;

/// Short stable identifier, e.g. "state-enter"; used by the exporters
/// and re-parsed by the JSONL reader.
const char *traceKindName(TraceKind Kind);

/// Parses a traceKindName back; returns false on an unknown name.
bool traceKindFromName(const char *Name, TraceKind &Out);

/// One recorded event. 24 bytes; the ring is a flat array of these.
struct TraceEvent {
  uint64_t TimeNs = 0; ///< steady_clock nanoseconds (monotonic).
  int32_t Machine = -1;
  int32_t A = -1;
  int32_t B = -1;
  TraceKind Kind = TraceKind::Send;
  uint16_t Tid = 0; ///< Recording sink (worker/thread) id.
};

class TraceRecorder;

/// One thread's ring buffer. Obtained from TraceRecorder::openSink and
/// written by exactly one thread; record() takes no locks.
class TraceSink {
public:
  void record(TraceKind Kind, int32_t Machine, int32_t A = -1,
              int32_t B = -1);

  uint16_t tid() const { return Tid; }
  uint64_t recorded() const { return Count; }
  uint64_t dropped() const {
    return Count > Ring.size() ? Count - Ring.size() : 0;
  }

private:
  friend class TraceRecorder;
  TraceSink(uint16_t Tid, size_t Capacity) : Tid(Tid), Ring(Capacity) {}

  uint16_t Tid;
  uint64_t Count = 0; ///< Total recorded (incl. overwritten).
  std::vector<TraceEvent> Ring;
};

/// Owns the per-thread sinks of one traced run.
class TraceRecorder {
public:
  /// \p CapacityPerSink is the ring size of each sink; the default
  /// keeps ~1.5 MB per writer thread.
  explicit TraceRecorder(size_t CapacityPerSink = 1u << 16);

  /// Registers a new sink (mutex-protected; once per writer thread).
  /// The returned reference stays valid for the recorder's lifetime.
  TraceSink &openSink();

  /// All events of all sinks, oldest-first by timestamp. Call only
  /// after the traced run has quiesced.
  std::vector<TraceEvent> snapshot() const;

  /// Per-kind totals over the surviving events (snapshot()). Only a
  /// complete tally when dropped() == 0 — the reconciliation tests
  /// assert that before comparing against checker stats.
  std::array<uint64_t, NumTraceKinds> countsByKind() const;

  uint64_t recorded() const;
  uint64_t dropped() const;
  size_t sinkCount() const;

private:
  size_t CapacityPerSink;
  mutable std::mutex Mu; ///< Guards sink registration only.
  std::vector<std::unique_ptr<TraceSink>> Sinks;
  friend class TraceSink;
};

} // namespace p::obs

#endif // P_OBS_TRACE_H
